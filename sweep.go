package spandex

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"spandex/internal/stats"
	"spandex/internal/workload"
)

// Cell is one (workload, configuration) measurement within a sweep.
type Cell struct {
	Workload string
	Config   string
	Result   Result
	Err      error
	// Wall is the host wall-clock time the cell took to simulate. It is
	// the only non-deterministic field: everything in Result is a pure
	// function of (workload, config, Options), so comparisons between
	// serial and parallel sweeps must ignore Wall (see CellsEquivalent).
	Wall time.Duration
}

// MatrixOptions controls how RunMatrix schedules the (workload, config)
// cells of a sweep.
type MatrixOptions struct {
	// Workers is the number of concurrent simulations; <= 0 means
	// GOMAXPROCS. Each cell runs on its own fully-isolated System, so any
	// worker count produces bit-identical Results (only Wall varies).
	Workers int
	// Progress, when non-nil, is called after each cell completes with
	// the number of cells done so far and the total. Calls are serialized
	// (never concurrent) but arrive in completion order, which under
	// parallelism is not matrix order.
	Progress func(done, total int, c Cell)
}

// RunMatrix fans the full workloads × configs matrix out across a worker
// pool, each cell simulated on its own isolated System. Results come back
// densely in (workload, config) matrix order regardless of completion
// order, so the output is independent of scheduling.
//
// Cancelling ctx stops cells that have not started (they come back with
// Err = ctx.Err()); cells already simulating run to completion, since the
// discrete-event engine is not preemptible. A cell that fails — unknown
// workload, unknown configuration, deadlock, validation failure — only
// marks its own Cell.Err; sibling cells are unaffected.
func RunMatrix(ctx context.Context, workloads, configs []string, opt Options, mo MatrixOptions) []Cell {
	if ctx == nil {
		ctx = context.Background()
	}
	cells := make([]Cell, 0, len(workloads)*len(configs))
	for _, wn := range workloads {
		for _, cn := range configs {
			cells = append(cells, Cell{Workload: wn, Config: cn})
		}
	}
	if len(cells) == 0 {
		return nil
	}
	workers := mo.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes Progress and the done count
		done int
		jobs = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runCell(ctx, &cells[i], opt)
				if mo.Progress != nil {
					mu.Lock()
					done++
					mo.Progress(done, len(cells), cells[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return cells
}

// runCell simulates one cell in place.
func runCell(ctx context.Context, c *Cell, opt Options) {
	if err := ctx.Err(); err != nil {
		c.Err = err
		return
	}
	w, err := WorkloadByName(c.Workload)
	if err != nil {
		c.Err = err
		return
	}
	o := opt
	o.ConfigName = c.Config
	start := time.Now()
	c.Result, c.Err = Run(w, o)
	c.Wall = time.Since(start)
}

// Sweep runs every named workload on every named configuration across
// GOMAXPROCS workers. Results come back in (workload, config) order and
// are bit-identical to a serial sweep (Run is isolated; see its doc).
// Use RunMatrix directly for cancellation, progress, or worker control.
func Sweep(workloads, configs []string, opt Options) []Cell {
	return RunMatrix(context.Background(), workloads, configs, opt, MatrixOptions{})
}

// Aggregate merges every successful cell's measurements into one mergeable
// snapshot: total traffic, summed counters, and the maximum simulated
// exec time across cells.
func Aggregate(cells []Cell) stats.Snapshot {
	agg := stats.Snapshot{Counters: map[string]uint64{}}
	for _, c := range cells {
		if c.Err != nil {
			continue
		}
		agg = agg.Merge(stats.Snapshot{
			Traffic:  c.Result.Traffic,
			ExecTime: c.Result.ExecTime,
			Counters: c.Result.Counters,
		})
	}
	return agg
}

// fingerprintedResultFields and fingerprintExemptResultFields partition
// every Result field: a field is either folded into Fingerprint (value =
// what it contributes) or deliberately excluded (value = why). The split
// is the single source of truth for what "bit-identical runs" means —
// TestFingerprintFieldPartition walks Result by reflection and fails when
// a new field is added without choosing a side, so an observability
// field can never silently leak into the fingerprint (or a measurement
// silently escape it).
var fingerprintedResultFields = map[string]string{
	"Config":   "run identity: the Table V configuration name",
	"Workload": "run identity: the workload name",
	"ExecTime": "simulated behaviour: completion time",
	"Traffic":  "simulated behaviour: per-class interconnect traffic",
	"Counters": "simulated behaviour: protocol event counts",
	"Ops":      "simulated behaviour: device operations executed",
	"MemHash":  "simulated behaviour: final DRAM image",
}

var fingerprintExemptResultFields = map[string]string{
	"Events":            "engine throughput denominator; pooling/event-structure changes alter it while the machine stays bit-identical",
	"Violations":        "checker diagnostics, populated only when invariants already failed",
	"ViolationsDropped": "checker diagnostics overflow count",
	"Transitions":       "coverage recorder output; a diagnostic view of behaviour already hashed via Counters",
	"Latency":           "observability: latency attribution observes the run, it is not part of it",
	"Metrics":           "observability: the metrics registry observes the run, it is not part of it",
}

// Fingerprint returns a deterministic hash of everything a run measures:
// workload and configuration names, execution time, the per-class traffic
// breakdown, all protocol counters, operation count, and the final DRAM
// image hash. Wall-clock time and every observability product are
// deliberately excluded — see fingerprintedResultFields /
// fingerprintExemptResultFields for the full, test-enforced partition.
// Two runs of the same cell are bit-identical iff their fingerprints
// match.
func (r Result) Fingerprint() uint64 {
	h := stats.Snapshot{Traffic: r.Traffic, ExecTime: r.ExecTime, Counters: r.Counters}.Fingerprint()
	h = stats.FNVAddString(h, r.Config)
	h = stats.FNVAddString(h, r.Workload)
	h = stats.FNVAdd(h, r.Ops)
	h = stats.FNVAdd(h, r.MemHash)
	return h
}

// DiffResults explains the first difference between two runs of what
// should be the same cell, or returns nil if they are bit-identical. The
// explanation names the first divergent measurement in a deterministic
// order (stats.Snapshot.FirstDiff: exec time, traffic classes, counters
// sorted by name) — never a raw fingerprint hash, which would name
// nothing. The fuzzer and the determinism verifier both report through
// this, so a nondeterminism failure always points at a counter.
func DiffResults(a, b Result) error {
	if a.Ops != b.Ops {
		return fmt.Errorf("operation count differs: %d vs %d", a.Ops, b.Ops)
	}
	sa := stats.Snapshot{Traffic: a.Traffic, ExecTime: a.ExecTime, Counters: a.Counters}
	sb := stats.Snapshot{Traffic: b.Traffic, ExecTime: b.ExecTime, Counters: b.Counters}
	if d := sa.FirstDiff(sb); d != "" {
		return fmt.Errorf("%s", d)
	}
	if a.MemHash != b.MemHash {
		return fmt.Errorf("final DRAM image differs: %#x vs %#x", a.MemHash, b.MemHash)
	}
	if a.Fingerprint() != b.Fingerprint() {
		// Every measured quantity matched, so the identity fields folded
		// into the fingerprint must differ.
		return fmt.Errorf("run identity differs: %s/%s vs %s/%s",
			a.Workload, a.Config, b.Workload, b.Config)
	}
	return nil
}

// CellsEquivalent reports whether two sweeps of the same matrix produced
// bit-identical measurements, ignoring wall-clock time. It returns the
// first difference found.
func CellsEquivalent(a, b []Cell) error {
	if len(a) != len(b) {
		return fmt.Errorf("cell count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Workload != b[i].Workload || a[i].Config != b[i].Config {
			return fmt.Errorf("cell %d identity differs: %s/%s vs %s/%s",
				i, a[i].Workload, a[i].Config, b[i].Workload, b[i].Config)
		}
		if (a[i].Err == nil) != (b[i].Err == nil) {
			return fmt.Errorf("cell %s/%s error state differs: %v vs %v",
				a[i].Workload, a[i].Config, a[i].Err, b[i].Err)
		}
		if a[i].Err != nil {
			continue
		}
		if err := DiffResults(a[i].Result, b[i].Result); err != nil {
			return fmt.Errorf("cell %s/%s: %w", a[i].Workload, a[i].Config, err)
		}
	}
	return nil
}

// DeterminismReport describes one cell checked by VerifyDeterminism.
type DeterminismReport struct {
	Workload, Config string
	// SerialWall and ContendedWall are the host wall-clock times of the
	// reference run and the rerun under contention.
	SerialWall, ContendedWall time.Duration
	// Fingerprint is the (identical) fingerprint of both runs.
	Fingerprint uint64
}

// VerifyDeterminism samples up to `samples` cells of the workloads ×
// configs matrix and runs each twice: once alone (serial reference) and
// once while sibling cells simulate concurrently on every other core
// (contention). The two Results must be bit-identical — exec time, traffic
// breakdown, counters, op count, and final DRAM hash — otherwise an error
// describing the first divergence is returned. Sampling is deterministic
// in opt.Seed.
func VerifyDeterminism(ctx context.Context, workloads, configs []string, opt Options, samples int) ([]DeterminismReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type key struct{ wn, cn string }
	var cells []key
	for _, wn := range workloads {
		for _, cn := range configs {
			cells = append(cells, key{wn, cn})
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("spandex: empty matrix")
	}
	if samples <= 0 || samples > len(cells) {
		samples = len(cells)
	}
	rng := workload.NewRand(opt.Seed ^ 0xdec0de)
	order := rng.Perm(len(cells))

	var reports []DeterminismReport
	for _, idx := range order[:samples] {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		wn, cn := cells[idx].wn, cells[idx].cn

		ref := Cell{Workload: wn, Config: cn}
		runCell(ctx, &ref, opt)
		if ref.Err != nil {
			return reports, fmt.Errorf("spandex: reference run of %s/%s failed: %w", wn, cn, ref.Err)
		}

		// Rerun the same cell while sibling cells load the scheduler, so
		// goroutines interleave as adversarially as they will in a real
		// parallel sweep. At least one contender even on GOMAXPROCS=1:
		// the coroutine handshakes still interleave across simulations.
		contenders := runtime.GOMAXPROCS(0) - 1
		if contenders < 1 {
			contenders = 1
		}
		if contenders > 3 {
			contenders = 3
		}
		var wg sync.WaitGroup
		for i := 0; i < contenders; i++ {
			bg := cells[(idx+1+i)%len(cells)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := Cell{Workload: bg.wn, Config: bg.cn}
				runCell(ctx, &c, opt)
			}()
		}
		rerun := Cell{Workload: wn, Config: cn}
		runCell(ctx, &rerun, opt)
		wg.Wait()
		if rerun.Err != nil {
			return reports, fmt.Errorf("spandex: contended run of %s/%s failed: %w", wn, cn, rerun.Err)
		}

		if err := DiffResults(ref.Result, rerun.Result); err != nil {
			return reports, fmt.Errorf("spandex: %s/%s is not deterministic under contention: %w", wn, cn, err)
		}
		reports = append(reports, DeterminismReport{
			Workload: wn, Config: cn,
			SerialWall: ref.Wall, ContendedWall: rerun.Wall,
			Fingerprint: ref.Result.Fingerprint(),
		})
	}
	return reports, nil
}
