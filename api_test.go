package spandex

import (
	"strings"
	"testing"

	"spandex/internal/workload"
)

func TestRenderTables(t *testing.T) {
	expects := map[string][]string{
		"I":   {"MESI", "GPU Coherence", "DeNovo", "self-invalidation", "write-through"},
		"II":  {"ReqV", "ReqWT+data", "ReqO+data", "flexible", "Owned Repl"},
		"III": {"ReqWT+data", "RvkO (blocking)", "non-owner"},
		"IV":  {"RspRvkO to LLC", "NackV", "Ack to LLC"},
		"V":   {"HMG", "SDD", "H-MESI", "Spandex"},
		"VI":  {"2 GHz", "700 MHz", "32 KB", "8 MB"},
		"VII": {"bc", "pr", "hsti", "trns", "rsct", "tqh", "fine-grain"},
	}
	for name, frags := range expects {
		out, err := RenderTable(name)
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		for _, f := range frags {
			if !strings.Contains(out, f) {
				t.Errorf("table %s missing %q", name, f)
			}
		}
	}
	// Arabic numerals work too; bogus names do not.
	if _, err := RenderTable("3"); err != nil {
		t.Error("numeral alias broken")
	}
	if _, err := RenderTable("VIII"); err == nil {
		t.Error("bogus table accepted")
	}
}

func TestBuildFigureFromSyntheticCells(t *testing.T) {
	mk := func(cfg string, ns uint64, reqV uint64) Cell {
		c := Cell{Workload: "w", Config: cfg}
		c.Result.ExecTime = Time(ns)
		c.Result.Traffic.Add(0 /* ClassReqV */, int(reqV))
		return c
	}
	var cells []Cell
	times := map[string]uint64{"HMG": 100, "HMD": 90, "SMG": 80, "SMD": 70, "SDG": 60, "SDD": 50}
	for _, cn := range ConfigNames() {
		cells = append(cells, mk(cn, times[cn], times[cn]*10))
	}
	f, err := BuildFigure("test", []string{"w"}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if f.Time["w"]["HMG"] != 1.0 {
		t.Fatalf("HMG not normalized to 1: %f", f.Time["w"]["HMG"])
	}
	if f.Time["w"]["SDD"] != 0.5 {
		t.Fatalf("SDD = %f, want 0.5", f.Time["w"]["SDD"])
	}
	h := f.ComputeHeadline()
	// Hbest = 0.9 (HMD), Sbest = 0.5 (SDD) → reduction 1-0.5/0.9 ≈ 0.444.
	if h.TimeReduction["w"] < 0.44 || h.TimeReduction["w"] > 0.45 {
		t.Fatalf("reduction = %f", h.TimeReduction["w"])
	}
	out := f.Render()
	for _, frag := range []string{"Execution time", "Network traffic", "AVERAGE", "ReqV"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestBuildFigureMissingBaseline(t *testing.T) {
	cells := []Cell{{Workload: "w", Config: "SDD"}}
	if _, err := BuildFigure("t", []string{"w"}, cells); err == nil {
		t.Fatal("missing HMG baseline accepted")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	cells := Sweep([]string{"not-a-workload"}, []string{"SDD"}, Options{})
	if len(cells) != 1 || cells[0].Err == nil {
		t.Fatal("bad workload not reported")
	}
}

func TestOptionsConfigResolution(t *testing.T) {
	if _, err := NewSystem(Options{ConfigName: "nope"}); err == nil {
		t.Fatal("bad config name accepted")
	}
	// ConfigName wins over Config.
	cfgSDD, _ := ConfigByName("SDD")
	s, err := NewSystem(Options{Config: cfgSDD, ConfigName: "HMG"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir == nil || s.LLC != nil {
		t.Fatal("ConfigName did not win")
	}
}

func TestSystemShapeSpandex(t *testing.T) {
	p := FastParams()
	s, err := NewSystem(Options{ConfigName: "SMD", Params: &p, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.LLC == nil || s.Dir != nil || s.GPUL2 != nil {
		t.Fatal("Spandex shape wrong")
	}
	if len(s.CPUL1s) != p.CPUCores || len(s.GPUL1s) != p.GPUCUs {
		t.Fatalf("L1 counts %d/%d", len(s.CPUL1s), len(s.GPUL1s))
	}
	if s.Checker == nil {
		t.Fatal("checker not installed")
	}
	m := s.Machine()
	if m.CPUThreads != p.CPUCores || m.GPUCUs != p.GPUCUs || m.WarpsPerCU != p.WarpsPerCU {
		t.Fatalf("machine shape %+v", m)
	}
}

func TestSystemShapeHierarchical(t *testing.T) {
	p := FastParams()
	s, err := NewSystem(Options{ConfigName: "HMD", Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	if s.LLC != nil || s.Dir == nil || s.GPUL2 == nil {
		t.Fatal("hierarchical shape wrong")
	}
}

func TestAttachRejectsOversizedProgram(t *testing.T) {
	p := FastParams()
	s, _ := NewSystem(Options{ConfigName: "SDD", Params: &p})
	prog := &Program{}
	for i := 0; i < p.CPUCores+1; i++ {
		prog.CPU = append(prog.CPU, nil)
	}
	if err := s.Attach(prog); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestReaderSeesInitAndWrites(t *testing.T) {
	p := FastParams()
	s, err := NewSystem(Options{ConfigName: "SDD", Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	lay := NewLayout()
	data := lay.Words(4)
	prog := &Program{
		Init: []WordInit{
			{Addr: WordAddr(data, 0), Val: 11},
			{Addr: WordAddr(data, 3), Val: 44},
		},
	}
	prog.CPU = append(prog.CPU, GoThread(func(t *Thread) {
		t.Store(WordAddr(data, 1), 22)
	}))
	defer prog.Close()
	if err := s.Attach(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	read := s.Reader()
	if read(WordAddr(data, 0)) != 11 || read(WordAddr(data, 1)) != 22 || read(WordAddr(data, 3)) != 44 {
		t.Fatal("reader returned wrong values")
	}
}

func TestTraceMessagesFires(t *testing.T) {
	p := FastParams()
	s, err := NewSystem(Options{ConfigName: "SDD", Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	s.TraceMessages(func(tick uint64, msg string) { n++ })
	prog := &Program{}
	prog.CPU = append(prog.CPU, GoThread(func(t *Thread) {
		t.FetchAdd(0x40000, 1, false, false)
	}))
	defer prog.Close()
	s.Attach(prog)
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("trace never fired")
	}
}

// TestParamVariations runs litmus on non-default geometries to catch
// size/associativity assumptions.
func TestParamVariations(t *testing.T) {
	if testing.Short() {
		t.Skip("param sweep in -short mode")
	}
	lit := workload.DefaultLitmus()
	variants := []func(*SystemParams){
		func(p *SystemParams) { p.L1SizeBytes = 8 * 1024; p.L1Ways = 4 },
		func(p *SystemParams) { p.SpandexLLCBytes = 64 * 1024; p.L3Bytes = 64 * 1024; p.GPUL2Bytes = 64 * 1024 },
		func(p *SystemParams) { p.StoreBufferEntries = 8; p.MSHREntries = 8 },
		func(p *SystemParams) { p.NoCBytesPerCyc = 4; p.NoCHopCycles = 10 },
		func(p *SystemParams) { p.WarpsPerCU = 1; p.GPUCUs = 4 },
		func(p *SystemParams) { p.MemLatencyCycles = 500 },
	}
	for i, v := range variants {
		for _, cn := range []string{"HMD", "SMG", "SDD"} {
			p := FastParams()
			v(&p)
			if _, err := Run(lit, Options{ConfigName: cn, Params: &p, Seed: uint64(i + 1),
				CheckInvariants: true, Validate: true}); err != nil {
				t.Errorf("variant %d on %s: %v", i, cn, err)
			}
		}
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	r.ExecTime = 2_500_000_000 // 2.5 ms in ps
	if r.ExecMillis() != 2.5 {
		t.Fatalf("ExecMillis = %f", r.ExecMillis())
	}
}

func TestConfigNamesOrder(t *testing.T) {
	names := ConfigNames()
	want := []string{"HMG", "HMD", "SMG", "SMD", "SDG", "SDD"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
	if len(Figure2Workloads()) != 3 || len(Figure3Workloads()) != 6 {
		t.Fatal("figure workload lists wrong")
	}
}
