package spandex

import "testing"

// TestDeNovoRegionsRecoverReuse validates the regions extension (paper
// §II-C): on the SDD configuration, ReuseS with region-scoped acquires
// must beat the full-flash variant on both time and traffic, approach the
// MESI-CPU configurations, and still produce a correct final state.
func TestDeNovoRegionsRecoverReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("region sweep in -short mode")
	}
	plain, err := WorkloadByName("reuses")
	if err != nil {
		t.Fatal(err)
	}
	regions, err := WorkloadByName("reuses-regions")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(plain, Options{ConfigName: "SDD", Seed: 42,
		Validate: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Run(regions, Options{ConfigName: "SDD", Seed: 42,
		Validate: true, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if reg.ExecTime >= full.ExecTime {
		t.Errorf("regions did not speed up ReuseS: %d vs %d ticks", reg.ExecTime, full.ExecTime)
	}
	if reg.Traffic.TotalBytes(false) >= full.Traffic.TotalBytes(false) {
		t.Errorf("regions did not cut traffic: %d vs %d bytes",
			reg.Traffic.TotalBytes(false), full.Traffic.TotalBytes(false))
	}
	// Regions must not help MESI CPUs (they never self-invalidate) —
	// sanity that the hint is inert elsewhere.
	mFull, err := Run(plain, Options{ConfigName: "SMG", Seed: 42, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	mReg, err := Run(regions, Options{ConfigName: "SMG", Seed: 42, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(mReg.ExecTime) / float64(mFull.ExecTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("region hint perturbed a writer-invalidated config by %.2fx", ratio)
	}
}
