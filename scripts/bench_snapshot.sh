#!/bin/sh
# Produce a checked-in benchmark snapshot at the repository root:
#
#   BENCH_<yyyymmdd>_<shortsha>.json
#
# measuring single-worker headline-sweep throughput (cells/sec,
# events/sec, per-workload wall time, allocations per sweep). Commit the
# file to extend the performance trajectory; the CI bench-gate
# (scripts/bench_gate.sh) compares every push against the newest one.
#
#   BENCH_ROUNDS=5 ./scripts/bench_snapshot.sh   # more rounds (default 3)
set -eu
cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD)
stamp=$(date -u +%Y%m%d)
out="BENCH_${stamp}_${sha}.json"

go run ./cmd/spandex-bench -perf "$out" -perf-rounds "${BENCH_ROUNDS:-3}" -git-sha "$sha"
echo "bench_snapshot: wrote $out"
