#!/usr/bin/env bash
# Report-only tracing overhead guard (make trace-overhead / CI trace-smoke).
#
# Two measurements land in the job log:
#
#  1. The in-tree BenchmarkRunTracingDisabled / BenchmarkRunTracingEnabled
#     pair (what enabling every Trace* knob costs one headline cell) and
#     the BenchmarkRunMetricsDisabled / BenchmarkRunMetricsEnabled pair
#     (what the metrics engine costs when on).
#  2. The headline sweep's wall time at HEAD versus the parent commit,
#     both with tracing and metrics disabled (the default every user
#     gets). This is the number the < 2% disabled-overhead target applies
#     to: the instrumented sites must reduce to nil checks.
#
# The guard never fails the build — shared-runner noise makes a hard 2%
# gate flaky — it reports for humans (and trend tooling) to watch.
set -u
cd "$(dirname "$0")/.."

work=$(mktemp -d)
trap 'git worktree remove --force "$work/base-src" >/dev/null 2>&1 || true; rm -rf "$work"' EXIT

run_ms() { # run_ms <bench-binary> -> best-of-3 wall ms for the headline sweep
	local bin=$1 best=0 t0 t1 dt i
	for i in 1 2 3; do
		t0=$(date +%s%3N)
		"$bin" -headline -parallel 4 >/dev/null 2>&1 || return 1
		t1=$(date +%s%3N)
		dt=$((t1 - t0))
		if [ "$best" -eq 0 ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
	done
	echo "$best"
}

echo "== tracing disabled vs enabled (one cell, in-tree benchmarks) =="
go test -run '^$' -bench BenchmarkRunTracing -benchtime 3x . || true
echo

echo "== metrics disabled vs enabled (one cell, in-tree benchmarks) =="
go test -run '^$' -bench BenchmarkRunMetrics -benchtime 3x . || true
echo

if ! go build -o "$work/bench-head" ./cmd/spandex-bench; then
	echo "trace-overhead: HEAD build failed" >&2
	exit 1
fi

base=$(git rev-parse --quiet --verify 'HEAD~1^{commit}' || true)
if [ -z "$base" ]; then
	echo "trace-overhead: no parent commit available; skipping baseline comparison"
	exit 0
fi
if ! git worktree add --detach "$work/base-src" "$base" >/dev/null 2>&1; then
	echo "trace-overhead: cannot materialize baseline $base; skipping comparison"
	exit 0
fi
if ! (cd "$work/base-src" && go build -o "$work/bench-base" ./cmd/spandex-bench); then
	echo "trace-overhead: baseline build failed; skipping comparison"
	exit 0
fi

head_ms=$(run_ms "$work/bench-head") || { echo "trace-overhead: HEAD sweep failed"; exit 0; }
base_ms=$(run_ms "$work/bench-base") || { echo "trace-overhead: baseline sweep failed"; exit 0; }

echo "== headline sweep wall time, tracing disabled (best of 3) =="
echo "baseline (${base}): ${base_ms} ms"
echo "head:                                              ${head_ms} ms"
awk -v h="$head_ms" -v b="$base_ms" 'BEGIN {
	printf "overhead: %+.2f%%  (target: < 2%% with tracing disabled; report-only)\n",
		(h - b) * 100.0 / b
}'
exit 0
