#!/bin/sh
# CI perf-regression gate: re-measure single-worker headline-sweep
# throughput on this host and fail if cells/sec or events/sec regressed
# more than BENCH_TOLERANCE (default 10%) against the newest checked-in
# BENCH_*.json, or if allocations per sweep grew by more than the same
# margin. Leaves /tmp/bench_now.json plus CPU and heap profiles behind
# for artifact upload.
#
# The newest baseline is the snapshot most recently added to git history
# (the <shortsha> part of BENCH_<yyyymmdd>_<shortsha> makes same-day
# names sort arbitrarily, so lexicographic order alone is only a
# fallback for non-git checkouts; CI checks the repo out with full
# history for this job).
set -eu
cd "$(dirname "$0")/.."

base=$(git log --format= --name-only --diff-filter=A -- 'BENCH_*.json' 2>/dev/null |
	grep '^BENCH_.*\.json$' | head -n 1 || true)
if [ -z "$base" ] || [ ! -f "$base" ]; then
	base=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
fi
if [ -z "$base" ]; then
	echo "bench_gate: no BENCH_*.json baseline checked in" >&2
	exit 1
fi
echo "bench_gate: baseline $base"

go run ./cmd/spandex-bench -perf /tmp/bench_now.json \
	-perf-rounds "${BENCH_ROUNDS:-3}" \
	-perf-baseline "$base" -perf-tolerance "${BENCH_TOLERANCE:-0.10}" \
	-perf-cpuprofile /tmp/bench_cpu.pprof -perf-memprofile /tmp/bench_mem.pprof \
	-git-sha "$(git rev-parse --short HEAD)"
