package spandex

import (
	"fmt"
	"io"

	"spandex/internal/config"
	"spandex/internal/obs"
)

// This file exposes the ready-made trace exporters (internal/obs) and the
// System-side niceties for them: a JSONL event stream, a Chrome
// trace-event (Perfetto-loadable) timeline, and per-node track naming.

// JSONLTraceSink streams events as one JSON object per line.
type JSONLTraceSink = obs.JSONLSink

// ChromeTraceSink accumulates a Chrome trace-event timeline.
type ChromeTraceSink = obs.ChromeSink

// NewJSONLTraceSink returns a sink that writes one JSON object per event
// to w. Call Close to flush.
func NewJSONLTraceSink(w io.Writer) *JSONLTraceSink { return obs.NewJSONLSink(w) }

// NewChromeTraceSink returns a sink that accumulates a Chrome trace-event
// timeline (one track per node) loadable in Perfetto or chrome://tracing.
// Call Close(w) after the run to emit the JSON file.
func NewChromeTraceSink() *ChromeTraceSink { return obs.NewChromeSink() }

// ValidateChromeTrace checks that r holds a well-formed Chrome trace-event
// file: parseable JSON, non-empty, every async begin matched by an end on
// the same track with non-decreasing timestamps.
func ValidateChromeTrace(r io.Reader) error { return obs.ValidateChromeTrace(r) }

// nameNodes labels each simulated node on consumers that support naming
// (the Chrome exporter, the metrics registry), so tracks and reports read
// "cpu0"/"cu1"/"llc" instead of bare node numbers.
func (s *System) nameNodes(sink any) {
	n, ok := sink.(interface{ SetNodeName(int, string) })
	if !ok {
		return
	}
	p := s.params
	for i, id := range s.cpuIDs {
		n.SetNodeName(int(id), fmt.Sprintf("cpu%d", i))
	}
	for i, id := range s.gpuIDs {
		n.SetNodeName(int(id), fmt.Sprintf("cu%d", i))
	}
	nDev := p.NumDevices()
	if s.cfg.LLC == config.LLCHierarchicalMESI {
		n.SetNodeName(nDev, "gpuL2")
		n.SetNodeName(nDev+1, "dir")
		n.SetNodeName(nDev+2, "mem")
	} else {
		banks := p.Banks()
		if banks == 1 {
			n.SetNodeName(nDev, "llc")
		} else {
			for b := 0; b < banks; b++ {
				n.SetNodeName(nDev+b, fmt.Sprintf("llc%d", b))
			}
		}
		n.SetNodeName(nDev+banks, "mem")
	}
}
