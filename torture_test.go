package spandex

import (
	"fmt"
	"testing"
)

// tortureWorkload hammers a small set of contended words with atomics from
// every thread while asserting two per-thread properties inside the
// generators: (1) fetch-add return values on a private lane reconstruct a
// gap-free sequence, and (2) values observed on a shared counter never
// decrease (atomics are globally serialized). The final sums must be
// exact. This is the pure-atomics complement to the litmus DRF program.
type tortureWorkload struct {
	words   int
	perThr  int
	threads int
}

func (w *tortureWorkload) Meta() Meta {
	return Meta{Name: "atomic-torture", Suite: "Conformance",
		Pattern:      "contended fetch-add serialization",
		Partitioning: "data", Synchronization: "fine-grain",
		Sharing: "flat", Locality: "high",
		Params: fmt.Sprintf("%d hot words", w.words)}
}

func (w *tortureWorkload) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	hot := lay.Words(w.words)
	bad := lay.Words(16)
	p := &Program{}

	body := func(tid int, rng *Rand) func(*Thread) {
		return func(t *Thread) {
			last := make([]uint32, w.words)
			for i := 0; i < w.perThr; i++ {
				k := rng.Intn(w.words)
				old := t.FetchAdd(WordAddr(hot, k), 1, false, false)
				// Monotonicity: a later atomic on the same word must see a
				// strictly larger pre-value than any earlier one we did.
				if last[k] > 0 && old < last[k] {
					t.FetchAdd(bad, 1, false, false)
					return
				}
				last[k] = old + 1
			}
		}
	}

	rng := NewRand(seed)
	tid := 0
	for i := 0; i < m.CPUThreads && tid < w.threads; i++ {
		p.CPU = append(p.CPU, GoThread(body(tid, NewRand(rng.Uint64()))))
		tid++
	}
	for cu := 0; cu < m.GPUCUs && tid < w.threads; cu++ {
		var warps []OpStream
		for wp := 0; wp < m.WarpsPerCU && tid < w.threads; wp++ {
			warps = append(warps, GoThread(body(tid, NewRand(rng.Uint64()))))
			tid++
		}
		p.GPU = append(p.GPU, warps)
	}
	total := uint32(tid * w.perThr)

	p.Validate = func(read func(Addr) uint32) error {
		if n := read(bad); n != 0 {
			return fmt.Errorf("atomic-torture: %d monotonicity violations", n)
		}
		var sum uint32
		for k := 0; k < w.words; k++ {
			sum += read(WordAddr(hot, k))
		}
		if sum != total {
			return fmt.Errorf("atomic-torture: sum = %d, want %d (lost or duplicated atomics)", sum, total)
		}
		return nil
	}
	return p
}

// TestAtomicTorture runs the contended-atomics conformance program on
// every configuration; it catches lost updates, duplicated updates, and
// serialization violations in all three atomic implementations (local
// RMW under MESI ownership, DeNovo word ownership, and LLC/L2-performed
// updates). The variants × configurations table covers the contention
// extremes (one hot word vs. spread), a CPU-only and a GPU-heavy machine,
// and runs every Spandex transition through the per-transition invariant
// audit.
func TestAtomicTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture in -short mode")
	}
	variants := []struct {
		name               string
		words, perThr, thr int
		cpuCores, gpuCUs   int
		seed               uint64
	}{
		{"baseline", 4, 60, 20, 4, 4, 77},
		{"single-hot-word", 1, 80, 20, 4, 4, 78},
		{"spread", 16, 40, 20, 4, 4, 79},
		{"cpu-only", 4, 60, 8, 4, 0, 80},
		{"gpu-heavy", 4, 40, 24, 1, 8, 81},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			w := &tortureWorkload{words: v.words, perThr: v.perThr, threads: v.thr}
			for _, cn := range ConfigNames() {
				cn := cn
				t.Run(cn, func(t *testing.T) {
					t.Parallel()
					params := FastParams()
					params.CPUCores = v.cpuCores
					params.GPUCUs = v.gpuCUs
					if _, err := Run(w, Options{ConfigName: cn, Params: &params,
						Seed: v.seed, CheckInvariants: true,
						CheckEveryTransition: true, Validate: true}); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}
