package spandex

import (
	"fmt"
	"testing"
)

// byteWorkload has four threads each own one byte lane of every word in a
// shared region, writing their lane repeatedly while others write theirs.
// Any protocol that performs byte stores as plain word writes would clobber
// the other lanes; the paper's §III-B rule (byte stores become
// word-granularity ReqWT+data / ReqO+data) makes it safe.
type byteWorkload struct{ words, iters int }

func (w *byteWorkload) Meta() Meta {
	return Meta{Name: "bytelanes", Suite: "Conformance",
		Pattern:      "per-thread byte lanes of shared words",
		Partitioning: "data", Synchronization: "coarse-grain",
		Sharing: "flat", Locality: "low", Params: "conformance"}
}

func (w *byteWorkload) Build(m Machine, seed uint64) *Program {
	lay := NewLayout()
	region := lay.Words(w.words)
	p := &Program{}
	body := func(lane int) func(*Thread) {
		return func(t *Thread) {
			for it := 1; it <= w.iters; it++ {
				for k := 0; k < w.words; k++ {
					t.StoreByte(WordAddr(region, k), lane, uint8(0x10*lane+it))
				}
			}
		}
	}
	// Four writers: two CPU threads, two GPU warps, one lane each.
	p.CPU = append(p.CPU, GoThread(body(0)), GoThread(body(1)))
	for i := 2; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, nil)
	}
	p.GPU = append(p.GPU, []OpStream{GoThread(body(2)), GoThread(body(3))})

	p.Validate = func(read func(Addr) uint32) error {
		var want uint32
		for lane := 0; lane < 4; lane++ {
			want |= uint32(0x10*lane+w.iters) << (8 * lane)
		}
		for k := 0; k < w.words; k++ {
			if got := read(WordAddr(region, k)); got != want {
				return fmt.Errorf("bytelanes: word %d = %#08x, want %#08x", k, got, want)
			}
		}
		return nil
	}
	return p
}

// TestByteGranularityStores runs the byte-lane conformance program on every
// configuration: concurrent byte stores to the same words must never
// clobber each other's lanes (paper §III-B).
func TestByteGranularityStores(t *testing.T) {
	w := &byteWorkload{words: 32, iters: 4}
	for _, cn := range ConfigNames() {
		cn := cn
		t.Run(cn, func(t *testing.T) {
			params := FastParams()
			if _, err := Run(w, Options{Config: mustCfg(t, cn), Params: &params,
				Seed: 5, CheckInvariants: true, Validate: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func mustCfg(t *testing.T, name string) CacheConfig {
	t.Helper()
	c, err := ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
