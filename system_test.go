package spandex

import (
	"testing"

	"spandex/internal/workload"
)

// TestLitmusAllConfigurations runs the randomized DRF conformance program
// on every Table V configuration with full invariant checking and final-
// state validation. This is the system-level SC-for-DRF oracle
// (paper §III-E): any stale read or lost write in any protocol fails here.
func TestLitmusAllConfigurations(t *testing.T) {
	lit := workload.DefaultLitmus()
	for _, cfg := range Configurations() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			params := FastParams()
			res, err := Run(lit, Options{
				Config:          cfg,
				Params:          &params,
				Seed:            42,
				CheckInvariants: true,
				Validate:        true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExecTime == 0 || res.Ops == 0 {
				t.Fatalf("suspicious result: %+v", res)
			}
			if res.Traffic.TotalBytes(false) == 0 {
				t.Fatal("no interconnect traffic recorded")
			}
		})
	}
}

// TestLitmusSeeds varies the random seed on two representative configs.
func TestLitmusSeeds(t *testing.T) {
	lit := workload.DefaultLitmus()
	for _, name := range []string{"HMG", "SDD"} {
		for seed := uint64(1); seed <= 5; seed++ {
			params := FastParams()
			_, err := Run(lit, Options{
				ConfigName:      name,
				Params:          &params,
				Seed:            seed,
				CheckInvariants: true,
				Validate:        true,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestDeterminism: identical options produce bit-identical results.
func TestDeterminism(t *testing.T) {
	lit := workload.DefaultLitmus()
	run := func() Result {
		params := FastParams()
		res, err := Run(lit, Options{ConfigName: "SMD", Params: &params, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.Traffic != b.Traffic || a.Ops != b.Ops {
		t.Fatalf("nondeterministic: %v vs %v", a.ExecTime, b.ExecTime)
	}
}

// TestHierarchicalRejectsDeNovoCPU: Table V constraint.
func TestHierarchicalRejectsDeNovoCPU(t *testing.T) {
	cfg := CacheConfig{Name: "HDG", LLC: 1, CPU: 1, GPU: 0}
	if _, err := NewSystem(Options{Config: cfg}); err == nil {
		t.Fatal("H-MESI with DeNovo CPU must be rejected")
	}
}
