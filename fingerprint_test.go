package spandex

import (
	"reflect"
	"testing"
)

// TestFingerprintFieldPartition enforces the exclude-from-fingerprint
// contract: every exported Result field must appear in exactly one of
// fingerprintedResultFields / fingerprintExemptResultFields, and neither
// map may name a field that no longer exists. Adding a Result field
// without choosing a side fails here with instructions.
func TestFingerprintFieldPartition(t *testing.T) {
	rt := reflect.TypeOf(Result{})
	seen := make(map[string]bool, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		seen[name] = true
		_, fp := fingerprintedResultFields[name]
		_, ex := fingerprintExemptResultFields[name]
		switch {
		case fp && ex:
			t.Errorf("Result.%s is in both fingerprint partitions; pick one", name)
		case !fp && !ex:
			t.Errorf("Result.%s is in neither partition: add it to fingerprintedResultFields (and Fingerprint) or to fingerprintExemptResultFields with the reason it is excluded", name)
		}
	}
	for name := range fingerprintedResultFields {
		if !seen[name] {
			t.Errorf("fingerprintedResultFields names %q, which is not a Result field", name)
		}
	}
	for name := range fingerprintExemptResultFields {
		if !seen[name] {
			t.Errorf("fingerprintExemptResultFields names %q, which is not a Result field", name)
		}
	}
}

// TestFingerprintIgnoresExemptFields verifies the exemption holds at
// runtime, not just in documentation: zeroing every exempt field of a
// fully-instrumented run's Result leaves the fingerprint unchanged, and
// the instrumented fingerprint matches a bare run's.
func TestFingerprintIgnoresExemptFields(t *testing.T) {
	traced, err := runObsCell(obsCell{"indirection", "SDD"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Latency == nil || traced.Metrics == nil {
		t.Fatal("instrumented run missing latency/metrics reports")
	}
	stripped := traced
	stripped.Events = 0
	stripped.Violations = nil
	stripped.ViolationsDropped = 0
	stripped.Transitions = nil
	stripped.Latency = nil
	stripped.Metrics = nil
	if stripped.Fingerprint() != traced.Fingerprint() {
		t.Error("zeroing exempt fields changed the fingerprint — an exempt field leaked in")
	}
	bare, err := runObsCell(obsCell{"indirection", "SDD"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Fingerprint() != traced.Fingerprint() {
		t.Error("bare and instrumented fingerprints differ")
	}
}
