package spandex

import (
	"io"

	"spandex/internal/obs"
)

// This file exposes the system-level metrics engine (internal/obs):
// deterministic cycle-bucketed time series, contention telemetry, and the
// per-line sharing heatmaps, enabled per-run via Options.Metrics and
// reported in Result.Metrics.

type (
	// MetricsOptions selects what the metrics engine collects and how the
	// series/table sizing behaves (Options.Metrics).
	MetricsOptions = obs.MetricsConfig
	// MetricsReport is one run's exported metrics (Result.Metrics). It is
	// excluded from Result.Fingerprint, like Result.Latency.
	MetricsReport = obs.MetricsReport
	// MetricsTimeSeries is one cycle-bucketed series of a MetricsReport.
	MetricsTimeSeries = obs.TimeSeries
	// LineHistory is one cache line's sharing/contention history entry.
	LineHistory = obs.LineMetrics
)

// AllMetrics enables every metrics collector with default sizing — the
// common case for Options.Metrics.
func AllMetrics() *MetricsOptions {
	m := obs.DefaultMetricsConfig()
	return &m
}

// ValidateMetricsJSONL checks a metrics JSONL export (MetricsReport.
// WriteJSONL) for structural validity and returns record counts per kind.
func ValidateMetricsJSONL(r io.Reader) (map[string]int, error) {
	return obs.ValidateMetricsJSONL(r)
}
