package spandex

import (
	"strings"
	"testing"
)

// TestFigure1MessageSequence drives the protocoltrace example's scenario
// on the SDG configuration and asserts the canonical Figure-1 message
// orderings appear on the contended line:
//
//	1a: ReqO → data-less RspO; disjoint-word ReqWT with no probe;
//	1b: ReqWT+data → RvkO → RspRvkO → RspWT+data;
//	1c: line ReqV → forwarded word ReqV → partial RspVs.
func TestFigure1MessageSequence(t *testing.T) {
	sys, err := NewSystem(Options{ConfigName: "SDG", CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}

	lay := NewLayout()
	line := lay.Words(16)
	flag := lay.Words(16)

	prog := &Program{}
	prog.CPU = append(prog.CPU, GoThread(func(th *Thread) {
		th.Store(WordAddr(line, 0), 11)
		th.Store(WordAddr(line, 1), 22)
		th.Fence(false, true)
		th.AtomicStore(flag, 1, true)
		th.SpinUntilGE(flag, 2)
	}))
	for i := 1; i < sys.Machine().CPUThreads; i++ {
		prog.CPU = append(prog.CPU, nil)
	}
	var observed uint32
	prog.GPU = append(prog.GPU, []OpStream{GoThread(func(th *Thread) {
		th.SpinUntilGE(flag, 1)
		th.Store(WordAddr(line, 2), 33)
		th.Fence(false, true)
		old := th.FetchAdd(WordAddr(line, 0), 100, false, false)
		v := th.Load(WordAddr(line, 1))
		observed = old*1000 + v
		th.AtomicStore(flag, 2, true)
	})})
	defer prog.Close()

	var seq []string
	sys.TraceMessages(func(tick uint64, msg string) {
		if strings.Contains(msg, "line=0x10000 ") {
			// Keep only the type token.
			seq = append(seq, strings.Fields(msg)[0])
		}
	})
	if err := sys.Attach(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	if observed != 11*1000+22 {
		t.Fatalf("values wrong: %d (want old=11, v=22)", observed)
	}

	// The canonical subsequences must appear in order.
	mustSubsequence(t, seq, []string{"ReqO", "RspO"})                                     // 1a
	mustSubsequence(t, seq, []string{"ReqWT+data", "RvkO", "RspRvkO+data", "RspWT+data"}) // 1b
	mustSubsequence(t, seq, []string{"ReqV", "RspV+data"})                                // 1c
	// 1a: the data-less grant — RspO must appear WITHOUT a +data suffix.
	foundPlainRspO := false
	for _, s := range seq {
		if s == "RspO" {
			foundPlainRspO = true
		}
	}
	if !foundPlainRspO {
		t.Errorf("no data-less RspO in %v", seq)
	}
	// 1a: the disjoint-word ReqWT must not probe anyone (word 2 unowned).
	// (The only RvkO allowed is 1b's, for word 0.)
	rvks := 0
	for _, s := range seq {
		if s == "RvkO" {
			rvks++
		}
	}
	if rvks != 1 {
		t.Errorf("expected exactly one RvkO (1b), got %d in %v", rvks, seq)
	}
}

// mustSubsequence asserts want appears within seq in order (not
// necessarily contiguous).
func mustSubsequence(t *testing.T, seq, want []string) {
	t.Helper()
	i := 0
	for _, s := range seq {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Errorf("subsequence %v not found in %v", want, seq)
	}
}
