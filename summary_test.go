package spandex

import (
	"bytes"
	"strings"
	"testing"

	"spandex/internal/stats"
)

func sampleSummary() RunSummary {
	s := RunSummary{
		Workload: "indirection", Config: "SDD", Seed: 42,
		Ops: 100, MemHash: 0xabc, Fingerprint: 0xdef,
		Snapshot: stats.Snapshot{
			ExecTime: 5000,
			Counters: map[string]uint64{"llc.hit": 10, "llc.blocked": 3},
		},
	}
	s.Snapshot.Traffic.Bytes[0] = 640
	s.Snapshot.Traffic.Messages[0] = 10
	return s
}

func TestSummaryJSONLRoundTrip(t *testing.T) {
	a := sampleSummary()
	b := sampleSummary()
	b.Config = "GPU-coh"
	b.Snapshot.Counters["llc.hit"] = 20

	var buf bytes.Buffer
	if err := WriteSummaryJSONL(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummaryJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d summaries, want 2", len(got))
	}
	if got[0].Workload != "indirection" || got[0].Snapshot.Counters["llc.hit"] != 10 ||
		got[0].Snapshot.Traffic.Bytes[0] != 640 || got[0].Fingerprint != 0xdef {
		t.Errorf("round-trip lost fields: %+v", got[0])
	}
	if got[1].Config != "GPU-coh" || got[1].Snapshot.Counters["llc.hit"] != 20 {
		t.Errorf("second summary wrong: %+v", got[1])
	}
}

func TestMatchSummary(t *testing.T) {
	a := sampleSummary()
	b := sampleSummary()
	b.Config = "GPU-coh"
	sums := []RunSummary{a, b}

	got, err := MatchSummary(sums, "indirection", "GPU-coh", 42)
	if err != nil || got.Config != "GPU-coh" {
		t.Errorf("exact match: %+v, %v", got, err)
	}
	// Seed mismatch falls back to (workload, config).
	got, err = MatchSummary(sums, "indirection", "SDD", 7)
	if err != nil || got.Config != "SDD" {
		t.Errorf("config match: %+v, %v", got, err)
	}
	// No match across several entries is an error naming what exists.
	if _, err = MatchSummary(sums, "stencil", "MESI", 1); err == nil ||
		!strings.Contains(err.Error(), "indirection/SDD") {
		t.Errorf("mismatch error = %v", err)
	}
	// A single-entry file matches anything (the common baseline case).
	if got, err = MatchSummary(sums[:1], "stencil", "MESI", 1); err != nil || got.Config != "SDD" {
		t.Errorf("single-entry fallback: %+v, %v", got, err)
	}
}

func TestDiffSummariesIdentical(t *testing.T) {
	a := sampleSummary()
	out := DiffSummaries(a, a)
	if !strings.Contains(out, "bit-identical") {
		t.Errorf("identical summaries should collapse:\n%s", out)
	}
}

func TestDiffSummariesNamesCounters(t *testing.T) {
	a := sampleSummary()
	b := sampleSummary()
	b.Snapshot.ExecTime = 6000
	b.Snapshot.Counters["llc.hit"] = 25
	b.Snapshot.Counters["tu.nack"] = 4 // present only in b
	delete(b.Snapshot.Counters, "llc.blocked")
	b.Snapshot.Traffic.Bytes[0] = 1000
	b.Ops = 120

	out := DiffSummaries(a, b)
	for _, frag := range []string{
		"first divergence: exec time differs: 5000 vs 6000",
		"llc.hit", "+15",
		"tu.nack", "+4",
		"llc.blocked", "-3",
		"ops", "+20",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("diff missing %q:\n%s", frag, out)
		}
	}
	// Unchanged measurements must not appear as rows.
	if strings.Contains(out, "memHash") {
		t.Errorf("unchanged memHash rendered:\n%s", out)
	}
}

// TestDiffSummariesViaSnapshotDiff pins the construction: both operands
// diffed against their elementwise floor must reproduce the absolute
// values (floor + delta), including counters monotone in neither
// direction between the two runs.
func TestDiffSummariesViaSnapshotDiff(t *testing.T) {
	a := sampleSummary()
	b := sampleSummary()
	a.Snapshot.Counters["x"] = 9
	b.Snapshot.Counters["x"] = 2 // b below a: would underflow a naive b.Diff(a)
	out := DiffSummaries(a, b)
	if !strings.Contains(out, "x") || !strings.Contains(out, "-7") {
		t.Errorf("non-monotone counter mishandled:\n%s", out)
	}
}

func TestSummarizeFromRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full cell run")
	}
	res, err := runObsCell(obsCell{"indirection", "SDD"}, false)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(res, 42)
	if sum.Workload != "indirection" || sum.Config != "SDD" || sum.Seed != 42 {
		t.Errorf("identity: %+v", sum)
	}
	if sum.Fingerprint != res.Fingerprint() {
		t.Error("summary fingerprint differs from result")
	}
	if sum.Snapshot.ExecTime != res.ExecTime || len(sum.Snapshot.Counters) == 0 {
		t.Error("snapshot not captured")
	}
	if DiffSummaries(sum, Summarize(res, 42)) == "" ||
		!strings.Contains(DiffSummaries(sum, Summarize(res, 42)), "bit-identical") {
		t.Error("self-diff should be bit-identical")
	}
}
