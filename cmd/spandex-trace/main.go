// Command spandex-trace runs one (workload, config) cell with the
// observability layer enabled and renders what happened: a latency
// attribution summary, a filtered JSONL event stream, or a Chrome
// trace-event timeline loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Usage:
//
//	spandex-trace -workload indirection -config SDD             # summarize
//	spandex-trace -summary-out base.jsonl                       # save a baseline summary
//	spandex-trace -diff base.jsonl                              # compare against a baseline
//	spandex-trace -mode export -o trace.json                    # Perfetto timeline
//	spandex-trace -mode jsonl -o events.jsonl -addr 0x10000     # event stream
//	spandex-trace -mode validate -in trace.json                 # check a trace file
//
// The summary's phase breakdown attributes each request's latency to
// network serialization, LLC service, LLC blocking (transient-state
// waits), owner indirection (forwarded requests), and DRAM — the
// mechanisms behind the paper's Figure 7 discussion. Tracing is passive:
// the traced run's Result.Fingerprint is bit-identical to a bare run's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"spandex"
	"spandex/internal/memaddr"
	"spandex/internal/obs"
)

func main() {
	mode := flag.String("mode", "summarize", "summarize | jsonl | export | validate")
	workloadName := flag.String("workload", "indirection", "workload to run (see spandex-bench)")
	configName := flag.String("config", "SDD", "cache configuration (Table V name)")
	seed := flag.Uint64("seed", 42, "workload input seed")
	fast := flag.Bool("fast", true, "use the shrunken FastParams system (full Table VI otherwise)")
	out := flag.String("o", "", "output file (jsonl/export modes; default stdout)")
	in := flag.String("in", "", "input trace file (validate mode)")
	addrFlag := flag.String("addr", "", "jsonl mode: keep only events touching this address's cache line (e.g. 0x10000)")
	summaryOut := flag.String("summary-out", "", "summarize mode: append this run's measurement summary (JSONL) for later -diff")
	diffPath := flag.String("diff", "", "summarize mode: diff this run against a summary JSONL written by -summary-out")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "spandex-trace:", err)
		os.Exit(1)
	}

	if *mode == "validate" {
		if *in == "" {
			die(fmt.Errorf("validate mode needs -in <trace.json>"))
		}
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		if err := spandex.ValidateChromeTrace(f); err != nil {
			die(fmt.Errorf("%s: %w", *in, err))
		}
		fmt.Printf("%s: well-formed Chrome trace\n", *in)
		return
	}

	w, err := spandex.WorkloadByName(*workloadName)
	if err != nil {
		die(err)
	}
	opt := spandex.Options{
		ConfigName:     *configName,
		Seed:           *seed,
		TraceLatency:   true,
		TraceOccupancy: true,
	}
	if *fast {
		p := spandex.FastParams()
		opt.Params = &p
	}

	output := func() *os.File {
		if *out == "" {
			return os.Stdout
		}
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		return f
	}

	switch *mode {
	case "summarize":
		res, err := spandex.Run(w, opt)
		if err != nil {
			die(err)
		}
		fmt.Print(spandex.RenderLatency(res))
		sum := spandex.Summarize(res, *seed)
		if *diffPath != "" {
			f, err := os.Open(*diffPath)
			if err != nil {
				die(err)
			}
			base, err := spandex.ReadSummaryJSONL(f)
			f.Close()
			if err != nil {
				die(fmt.Errorf("%s: %w", *diffPath, err))
			}
			match, err := spandex.MatchSummary(base, *workloadName, *configName, *seed)
			if err != nil {
				die(fmt.Errorf("%s: %w", *diffPath, err))
			}
			fmt.Println()
			fmt.Print(spandex.DiffSummaries(match, sum))
		}
		if *summaryOut != "" {
			f, err := os.OpenFile(*summaryOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				die(err)
			}
			if err := spandex.WriteSummaryJSONL(f, sum); err != nil {
				die(err)
			}
			if err := f.Close(); err != nil {
				die(err)
			}
			fmt.Fprintf(os.Stderr, "spandex-trace: summary appended to %s\n", *summaryOut)
		}

	case "jsonl":
		f := output()
		sink := spandex.NewJSONLTraceSink(f)
		var traceSink spandex.TraceEventSink = sink
		if *addrFlag != "" {
			a, err := strconv.ParseUint(*addrFlag, 0, 64)
			if err != nil {
				die(fmt.Errorf("bad -addr %q: %w", *addrFlag, err))
			}
			line := memaddr.Addr(a).Line()
			traceSink = obs.FuncSink(func(ev obs.Event) {
				switch {
				case ev.Msg != nil && ev.Msg.Line == line:
				case ev.Msg == nil && ev.Addr != 0 && ev.Addr.Line() == line:
				default:
					return
				}
				sink.Event(ev)
			})
		}
		opt.TraceSink = traceSink
		if _, err := spandex.Run(w, opt); err != nil {
			die(err)
		}
		if err := sink.Close(); err != nil {
			die(err)
		}
		if f != os.Stdout {
			if err := f.Close(); err != nil {
				die(err)
			}
		}

	case "export":
		sink := spandex.NewChromeTraceSink()
		opt.TraceSink = sink
		res, err := spandex.Run(w, opt)
		if err != nil {
			die(err)
		}
		f := output()
		if err := sink.Close(f); err != nil {
			die(err)
		}
		if f != os.Stdout {
			if err := f.Close(); err != nil {
				die(err)
			}
			fmt.Fprintf(os.Stderr, "spandex-trace: %s/%s timeline (%d requests, exec %.3f ms) -> %s\n",
				*workloadName, *configName, res.Latency.Requests, res.ExecMillis(), *out)
		}

	default:
		die(fmt.Errorf("unknown mode %q (valid: summarize, jsonl, export, validate)", *mode))
	}
}
