// Command spandex-metrics runs one (workload, config) cell with the
// metrics engine enabled and renders the system-level telemetry the trace
// tools don't show: per-link utilization timelines, LLC set conflicts and
// queue occupancy, DRAM row traffic, and per-line sharing/contention
// history with an address-space heatmap.
//
// Usage:
//
//	spandex-metrics -workload indirection -config SDD            # summary tables
//	spandex-metrics -mode timeline                               # utilization sparklines
//	spandex-metrics -mode lines -top 20                          # most contended lines
//	spandex-metrics -mode heatmap                                # address-space heat (text)
//	spandex-metrics -mode heatmap -format dot -o heat.dot        # Graphviz heatmap
//	spandex-metrics -mode export -format jsonl -o metrics.jsonl  # machine-readable dump
//	spandex-metrics -mode validate -in metrics.jsonl             # check an export
//
// Metrics collection is passive: the instrumented run's
// Result.Fingerprint is bit-identical to an uninstrumented run's.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"spandex"
)

func main() {
	mode := flag.String("mode", "summary", "summary | timeline | lines | heatmap | export | validate")
	workloadName := flag.String("workload", "indirection", "workload to run (see spandex-bench)")
	configName := flag.String("config", "SDD", "cache configuration (Table V name)")
	seed := flag.Uint64("seed", 42, "workload input seed")
	fast := flag.Bool("fast", true, "use the shrunken FastParams system (full Table VI otherwise)")
	out := flag.String("o", "", "output file (default stdout)")
	in := flag.String("in", "", "input metrics file (validate mode)")
	format := flag.String("format", "text", "heatmap: text|dot|csv; export: jsonl|csv")
	top := flag.Int("top", 10, "lines mode: how many lines/sets/rows to show")
	cols := flag.Int("cols", 64, "timeline/heatmap width in columns")
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "spandex-metrics:", err)
		os.Exit(1)
	}

	if *mode == "validate" {
		if *in == "" {
			die(fmt.Errorf("validate mode needs -in <metrics.jsonl>"))
		}
		f, err := os.Open(*in)
		if err != nil {
			die(err)
		}
		defer f.Close()
		counts, err := spandex.ValidateMetricsJSONL(f)
		if err != nil {
			die(fmt.Errorf("%s: %w", *in, err))
		}
		kinds := make([]string, 0, len(counts))
		total := 0
		for k, n := range counts {
			kinds = append(kinds, k)
			total += n
		}
		sort.Strings(kinds)
		fmt.Printf("%s: well-formed metrics export, %d records (", *in, total)
		for i, k := range kinds {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %d", k, counts[k])
		}
		fmt.Println(")")
		return
	}

	w, err := spandex.WorkloadByName(*workloadName)
	if err != nil {
		die(err)
	}
	opt := spandex.Options{
		ConfigName: *configName,
		Seed:       *seed,
		Metrics:    spandex.AllMetrics(),
	}
	if *fast {
		p := spandex.FastParams()
		opt.Params = &p
	}
	res, err := spandex.Run(w, opt)
	if err != nil {
		die(err)
	}
	rep := res.Metrics
	if rep == nil {
		die(fmt.Errorf("run produced no metrics report"))
	}

	var output io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				die(err)
			}
		}()
		output = f
	}

	switch *mode {
	case "summary":
		fmt.Fprintf(output, "%s/%s seed %d  exec %.3f ms\n\n", *workloadName, *configName, *seed, res.ExecMillis())
		rep.RenderSummary(output)

	case "timeline":
		fmt.Fprintf(output, "%s/%s utilization timelines (full run, %d cols)\n\n", *workloadName, *configName, *cols)
		rep.RenderTimeline(output, *cols)

	case "lines":
		rep.RenderTopLines(output, *top)

	case "heatmap":
		switch *format {
		case "text":
			rep.RenderHeatmap(output, *cols)
		case "dot":
			if err := rep.WriteHeatmapDOT(output); err != nil {
				die(err)
			}
		case "csv":
			if err := rep.WriteHeatmapCSV(output); err != nil {
				die(err)
			}
		default:
			die(fmt.Errorf("unknown heatmap format %q (valid: text, dot, csv)", *format))
		}

	case "export":
		switch *format {
		case "jsonl", "text":
			if err := rep.WriteJSONL(output); err != nil {
				die(err)
			}
		case "csv":
			if err := rep.WriteCSV(output); err != nil {
				die(err)
			}
		default:
			die(fmt.Errorf("unknown export format %q (valid: jsonl, csv)", *format))
		}

	default:
		die(fmt.Errorf("unknown mode %q (valid: summary, timeline, lines, heatmap, export, validate)", *mode))
	}
}
