// Command spandex-flow stitches the per-unit transition graphs into the
// whole-system message-flow graph and verifies three global properties:
// completeness (every emitted message has a handler at every possible
// receiver state, or a //spandex:unreachable proof), deadlock-freedom
// (no message-dependency cycle in which every hop may be deferred), and
// stall-safety (every declared blocking wait has a statically identified
// progress supplier).
//
// Usage:
//
//	spandex-flow [-dir .] [-out docs/msgflow] [-check] [-mutate name] [-v]
//
// Default mode regenerates docs/msgflow/flow.{json,dot} and exits
// nonzero on violations. -check verifies the artifacts are fresh without
// writing (the CI gate). -mutate applies a named graph mutation
// mirroring a -tags spandexmut protocol mutant (dropinvack, skiprvko)
// and inverts the exit status: 0 when the checker flags the mutant, 1
// when the mutant slips through.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"spandex/internal/analysis/msgflow"
)

func main() {
	dir := flag.String("dir", ".", "repository root to analyze")
	out := flag.String("out", "docs/msgflow", "artifact directory")
	check := flag.Bool("check", false, "verify artifacts are fresh instead of writing")
	mutate := flag.String("mutate", "", "apply a named graph mutation and expect the checks to flag it")
	verbose := flag.Bool("v", false, "print the edge list")
	flag.Parse()

	g, err := msgflow.Build(*dir)
	if err != nil {
		fatal(err)
	}
	if *mutate != "" {
		mut, ok := msgflow.Mutations[*mutate]
		if !ok {
			names := make([]string, 0, len(msgflow.Mutations))
			for n := range msgflow.Mutations {
				names = append(names, n)
			}
			sort.Strings(names)
			fatal(fmt.Errorf("unknown mutation %q (have %v)", *mutate, names))
		}
		if err := mut(g); err != nil {
			fatal(err)
		}
	}
	r := msgflow.Verify(g)

	if *verbose {
		for _, e := range r.Graph.Edges {
			fmt.Printf("  %-15s --%-11s--> %-15s [%s via %s]\n", e.Src, e.Msg, e.Dst, e.Class, e.Via)
		}
	}
	for _, v := range r.Violations {
		fmt.Printf("%s: %s\n", v.Check, v.Text)
	}
	fmt.Printf("msgflow: %d units, %d edges, %d blockable; %d state pairs checked, %d proven-unreachable exceptions, %d violations\n",
		len(r.Graph.Units), len(r.Graph.Edges), r.BlockableEdges, r.CheckedPairs, r.ProvenExceptions, len(r.Violations))

	if *mutate != "" {
		if len(r.Violations) == 0 {
			fmt.Printf("MISS: mutation %s produced no violation — the checker cannot see this bug class\n", *mutate)
			os.Exit(1)
		}
		fmt.Printf("detected: mutation %s surfaces as %d violation(s)\n", *mutate, len(r.Violations))
		return
	}

	jsonOut, err := msgflow.JSON(r)
	if err != nil {
		fatal(err)
	}
	dotOut := msgflow.DOT(r)
	files := map[string][]byte{"flow.json": jsonOut, "flow.dot": dotOut}
	if *check {
		stale := false
		for name, want := range files {
			path := filepath.Join(*out, name)
			have, err := os.ReadFile(path)
			if err != nil || string(have) != string(want) {
				fmt.Printf("stale: %s (re-run spandex-flow)\n", path)
				stale = true
			}
		}
		if stale {
			os.Exit(1)
		}
		fmt.Printf("%s is fresh\n", *out)
	} else {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if len(r.Violations) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spandex-flow:", err)
	os.Exit(1)
}
