// Command spandex-lint runs the project's custom static analyzers over the
// tree and exits nonzero on findings. It is the multichecker for the
// internal/analysis suite:
//
//	determinism  — no wall-clock, global rand, order-sensitive map ranges
//	               or goroutines on the deterministic sim path
//	protostate   — switches over protocol/state enums must be exhaustive
//	               or end in a panicking default
//	mutafter     — no mutating a *Message after Send/Schedule
//	poolret      — no using a pooled object after Pool.Put/free* released it
//	annref       — spandex:transition/unreachable/flow directives must
//	               reference real message types and states
//
// Usage:
//
//	spandex-lint [-analyzers determinism,protostate] [packages]
//	spandex-lint -list
//
// Packages default to ./... resolved from the current directory. Findings
// print as file:line:col: message (analyzer). Suppress a finding with a
// justified //spandex:<directive> comment on or above the flagged line;
// see the analyzer docs for each directive name.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/annref"
	"spandex/internal/analysis/determinism"
	"spandex/internal/analysis/mutafter"
	"spandex/internal/analysis/poolret"
	"spandex/internal/analysis/protostate"
)

var suite = []*analysis.Analyzer{
	determinism.Analyzer,
	protostate.Analyzer,
	mutafter.Analyzer,
	poolret.Analyzer,
	annref.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spandex-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spandex-lint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		return
	}
	diags, err := analysis.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spandex-lint:", err)
		os.Exit(2)
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spandex-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}
