// Command spandex-fuzz is the differential conformance fuzzer: it
// generates seeded random data-race-free programs (internal/conform),
// runs each on every cache configuration, and requires observationally
// identical behaviour — identical per-thread load logs, identical final
// memory, no deadlocks, no coherence-invariant violations. Any divergence
// is minimized by the delta-debugging shrinker and emitted as a
// replayable JSON case plus a runnable Go reproducer.
//
// Usage:
//
//	spandex-fuzz                          # fuzz the default seed range
//	spandex-fuzz -seeds 100:600           # explicit half-open seed range
//	spandex-fuzz -banks 2 -pressure       # bank-sharded LLC, tiny per-bank capacity
//	spandex-fuzz -replay case.json        # replay a saved case
//	spandex-fuzz -coverage-out cov.json   # record observed LLC transitions
//	spandex-fuzz -mutate dropinvack       # (with -tags spandexmut) expect a
//	                                      # seeded bug; exit 0 iff caught
//
// With -mutate the exit convention inverts: the run succeeds only if the
// armed protocol mutation is detected within the seed budget (and, with
// shrinking on, minimized and re-confirmed) — the fuzzer proving its teeth.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spandex"
	"spandex/internal/conform"
	"spandex/internal/core"
)

func main() {
	seeds := flag.String("seeds", "0:200", "half-open seed range lo:hi to fuzz")
	threads := flag.Int("threads", 0, "max threads per case (0 = generator default)")
	phases := flag.Int("phases", 0, "max phases per case (0 = generator default)")
	ops := flag.Int("ops", 0, "mean ops per thread per phase (0 = generator default)")
	configs := flag.String("configs", "", "comma-separated configurations (default: all six)")
	replay := flag.String("replay", "", "replay a saved JSON case instead of fuzzing")
	out := flag.String("out", "testdata/conform", "directory for minimized failure reproducers")
	shrink := flag.Bool("shrink", true, "minimize failures before emitting them")
	shrinkBudget := flag.Int("shrink-budget", 400, "max property evaluations while shrinking")
	noCheck := flag.Bool("no-check", false, "disable the per-transition invariant audit")
	pressure := flag.Bool("pressure", false,
		"shrink every cache to a few lines (conform.PressureParams) so evictions and write-backs dominate")
	banks := flag.Int("banks", 0,
		"shard the Spandex LLC into N address-interleaved banks on a mesh NoC (0 = flat; combines with -pressure for tiny per-bank capacity)")
	covOut := flag.String("coverage-out", "",
		"write the (LLC state, message) pairs observed across every run as JSON, for the spandex-transgraph cross-check")
	mutate := flag.String("mutate", "", "arm a seeded protocol mutation (dropinvack, skiprvko); requires -tags spandexmut")
	writeCorpus := flag.String("write-corpus", "", "regenerate the checked-in litmus corpus under the given directory and exit")
	verbose := flag.Bool("v", false, "per-seed progress on stderr")
	flag.Parse()

	die := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "spandex-fuzz: "+format+"\n", args...)
		os.Exit(1)
	}

	if *writeCorpus != "" {
		for _, c := range conform.CorpusCases() {
			jsonPath, goPath, err := conform.WriteCaseFiles(c, *writeCorpus)
			if err != nil {
				die("%v", err)
			}
			fmt.Printf("wrote %s, %s\n", jsonPath, goPath)
		}
		return
	}

	lo, hi, err := parseSeeds(*seeds)
	if err != nil {
		die("%v", err)
	}
	var cfgList []string
	if *configs != "" {
		cfgList = strings.Split(*configs, ",")
	}
	gp := conform.GenParams{MaxThreads: *threads, MaxPhases: *phases, OpsPerPhase: *ops}
	ro := conform.RunOpts{NoCheck: *noCheck}
	switch {
	case *pressure && *banks > 0:
		ro.Params = conform.BankedPressureParams()
		ro.Params.LLCBanks = *banks
	case *pressure:
		ro.Params = conform.PressureParams()
	case *banks > 0:
		ro.Params = conform.BankedParams()
		ro.Params.LLCBanks = *banks
	}

	if *mutate != "" {
		disarm, err := armMutant(*mutate)
		if err != nil {
			die("%v", err)
		}
		defer disarm()
	}

	cov := core.NewTransitionCoverage()
	record := func(rep *conform.Report) {
		for _, o := range rep.Outcomes {
			cov.AddSnapshot(o.Res.Transitions)
		}
	}
	writeCoverage := func() {
		if *covOut == "" {
			return
		}
		snap := cov.Snapshot()
		data := mustJSON(snap)
		if err := os.WriteFile(*covOut, data, 0o644); err != nil {
			die("%v", err)
		}
		fmt.Fprintf(os.Stderr, "coverage: %d distinct (state, msg) pairs -> %s\n", len(snap), *covOut)
	}

	if *replay != "" {
		c, err := conform.LoadCaseFile(*replay)
		if err != nil {
			die("%v", err)
		}
		rep := conform.CheckCase(c, cfgList, ro)
		record(rep)
		writeCoverage()
		if rep.Failed() {
			fmt.Fprintln(os.Stderr, rep.Err())
			os.Exit(1)
		}
		fmt.Printf("case %s passed on %d configurations\n", c.Name, len(rep.Outcomes))
		return
	}

	start := time.Now()
	for seed := lo; seed < hi; seed++ {
		c := conform.Generate(seed, gp)
		rep := conform.CheckCase(c, cfgList, ro)
		record(rep)
		if *verbose {
			fmt.Fprintf(os.Stderr, "seed %d: %d threads, %d phases, %d ops: %s\n",
				seed, len(c.Threads), c.Phases, c.NumOps(), rep.Kind)
		}
		if !rep.Failed() {
			continue
		}

		fmt.Fprintf(os.Stderr, "seed %d FAILED (%s):\n", seed, rep.Kind)
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		// Confirm the failure replays bit-identically before shrinking
		// against it; a nondeterministic failure is reported by the first
		// divergent counter, not a fingerprint hash.
		for _, cn := range failingConfigs(rep) {
			if err := conform.RecheckDeterminism(c, cn, ro); err != nil {
				fmt.Fprintf(os.Stderr, "  warning: %s failure is nondeterministic: %v\n", cn, err)
			}
		}
		min := c
		if *shrink {
			// Shrink against the configurations that actually failed —
			// one or two runs per candidate instead of six — then
			// re-confirm the minimized case against the full oracle.
			failing := failingConfigs(rep)
			min = shrinkCase(c, failing, ro, *shrinkBudget)
			if final := conform.CheckCase(min, cfgList, ro); !final.Failed() {
				fmt.Fprintf(os.Stderr, "  (shrunken case no longer fails the full oracle; emitting the original)\n")
				min = c
			}
		}
		jsonPath, goPath, err := conform.WriteCaseFiles(min, *out)
		if err != nil {
			die("writing reproducer: %v", err)
		}
		fmt.Fprintf(os.Stderr, "  minimized to %d threads / %d ops / %d phases\n",
			len(min.Threads), min.NumOps(), min.Phases)
		fmt.Fprintf(os.Stderr, "  reproducers: %s (spandex-fuzz -replay) and %s (go run)\n", jsonPath, goPath)
		writeCoverage()
		if *mutate != "" {
			fmt.Printf("mutation %s detected at seed %d (%d seeds tried, %s)\n",
				*mutate, seed, seed-lo+1, time.Since(start).Round(time.Millisecond))
			return // exit 0: the seeded bug was caught
		}
		os.Exit(1)
	}
	writeCoverage()
	if *mutate != "" {
		die("mutation %s went UNDETECTED across seeds [%d,%d)", *mutate, lo, hi)
	}
	fmt.Printf("seeds [%d,%d): all cases conform on %d configurations (%s)\n",
		lo, hi, nConfigs(cfgList), time.Since(start).Round(time.Millisecond))
}

// shrinkCase minimizes c against the failing configuration subset.
func shrinkCase(c *Case, failing []string, ro conform.RunOpts, budget int) *Case {
	fails := func(cand *Case) bool {
		return conform.CheckCase(cand, failing, ro).Failed()
	}
	min, evals := conform.Shrink(c, fails, budget)
	fmt.Fprintf(os.Stderr, "  shrink: %d property evaluations\n", evals)
	min.Name = c.Name + "-min"
	return min
}

// Case aliases the conform type for local signatures.
type Case = conform.Case

// failingConfigs lists the configurations a report implicates: those whose
// run errored, plus every config once any observational divergence exists
// (a divergence only manifests between two configs, so the subset check
// must keep both sides).
func failingConfigs(rep *conform.Report) []string {
	var out []string
	for _, o := range rep.Outcomes {
		if o.RunErr != nil {
			out = append(out, o.Config)
		}
	}
	if len(out) == 0 || rep.Kind == conform.KindDivergence {
		return rep.Configs
	}
	return out
}

func nConfigs(cfgList []string) int {
	if len(cfgList) == 0 {
		return len(spandex.ConfigNames())
	}
	return len(cfgList)
}

func parseSeeds(s string) (lo, hi uint64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -seeds %q (want lo:hi)", s)
	}
	if lo, err = strconv.ParseUint(parts[0], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	if hi, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %v", s, err)
	}
	if hi <= lo {
		return 0, 0, fmt.Errorf("bad -seeds %q (empty range)", s)
	}
	return lo, hi, nil
}

func mustJSON(v interface{}) []byte {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}
