//go:build !spandexmut

package main

import "fmt"

// armMutant in the stock build: fault injection is compiled out, so
// -mutate can only report how to get it.
func armMutant(name string) (func(), error) {
	return nil, fmt.Errorf("-mutate %s requires a build with -tags spandexmut", name)
}
