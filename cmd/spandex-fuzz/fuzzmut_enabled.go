//go:build spandexmut

package main

import (
	"fmt"

	"spandex/internal/core"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// armMutant enables one of the seeded protocol faults for the whole run.
// Compiled only under the spandexmut build tag; the stock build refuses
// -mutate (fuzzmut_disabled.go).
func armMutant(name string) (disarm func(), err error) {
	switch name {
	case "dropinvack":
		// Lose every invalidation ack. The hook must be a pure function of
		// the message (it is shared by the concurrently running per-config
		// Systems), and any single lost ack already stalls its txnInv
		// forever, so the all-drop fault is both the simplest deterministic
		// choice and the easiest to minimize against.
		core.SetMutDropInvAck(func(m *proto.Message) bool { return true })
		return func() { core.SetMutDropInvAck(nil) }, nil
	case "skiprvko":
		// Forget the RvkO forward entirely: any ReqS hitting words owned
		// by a self-invalidating device waits on a revocation that never
		// arrives.
		core.SetMutSkipRvkOFwd(func(mask memaddr.WordMask) memaddr.WordMask {
			return 0
		})
		return func() { core.SetMutSkipRvkOFwd(nil) }, nil
	}
	return nil, fmt.Errorf("unknown -mutate %q (want dropinvack or skiprvko)", name)
}
