// Command spandex-indep derives the static independence facts the model
// checker's partial-order reduction consumes — the forwardable request
// types that solicit device→device direct responses (guardMsgTypes), the
// LLC types whose settled-state handling is line-local
// (settledLocalMsgTypes), and whether the LLC is DRAM's sole client
// (memSoleClient) — from the transition and message-flow graphs, and
// keeps three artifacts in sync: docs/indep/indep.json,
// docs/indep/indep.dot, and the generated Go tables in
// internal/mcheck/indep_tables.go.
//
// Usage:
//
//	spandex-indep [-dir .] [-out docs/indep] [-tables internal/mcheck/indep_tables.go] [-check] [-v]
//
// Default mode regenerates all three artifacts. -check verifies they are
// fresh without writing (the CI gate): a protocol change that alters the
// derived facts then fails CI until the artifacts — and with them the
// reduction's soundness assumptions — are regenerated and re-reviewed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spandex/internal/analysis/indep"
)

func main() {
	dir := flag.String("dir", ".", "repository root to analyze")
	out := flag.String("out", "docs/indep", "artifact directory")
	tables := flag.String("tables", "internal/mcheck/indep_tables.go", "generated Go table file")
	check := flag.Bool("check", false, "verify artifacts are fresh instead of writing")
	verbose := flag.Bool("v", false, "print the derived facts and their evidence")
	flag.Parse()

	f, err := indep.Build(*dir)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, m := range f.Guard {
			fmt.Printf("guard %-10s %v\n", m, f.GuardEvidence[m])
		}
		for _, m := range f.SettledLocal {
			fmt.Printf("settled-local %-10s %s\n", m, f.SettledEvidence[m])
		}
		fmt.Printf("mem clients: %v\n", f.MemClients)
	}
	fmt.Printf("indep: %d guard types, %d settled-local types, memSoleClient=%v\n",
		len(f.Guard), len(f.SettledLocal), f.MemSoleClient)

	jsonOut, err := indep.JSON(f)
	if err != nil {
		fatal(err)
	}
	goOut, err := indep.GoSource(f)
	if err != nil {
		fatal(err)
	}
	files := map[string][]byte{
		filepath.Join(*out, "indep.json"): jsonOut,
		filepath.Join(*out, "indep.dot"):  indep.DOT(f),
		*tables:                           goOut,
	}
	if *check {
		stale := false
		for path, want := range files {
			have, err := os.ReadFile(path)
			if err != nil || string(have) != string(want) {
				fmt.Printf("stale: %s (re-run spandex-indep)\n", path)
				stale = true
			}
		}
		if stale {
			os.Exit(1)
		}
		fmt.Printf("%s and %s are fresh\n", *out, *tables)
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for path, data := range files {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spandex-indep:", err)
	os.Exit(1)
}
