// Command spandex-transgraph extracts each protocol controller's static
// transition graph — (state, incoming message) → (next states, emitted
// messages) — and keeps the checked-in copies under docs/transitions/
// honest against both the source (freshness) and reality (the dynamic
// coverage cross-check).
//
// Usage:
//
//	spandex-transgraph [packages]            # write JSON+DOT to -out
//	spandex-transgraph -check [packages]     # fail if docs/transitions is stale
//	spandex-transgraph -diff cov.json[,...]  # cross-check observed coverage
//
// Packages default to the protocol packages (core, mesi, denovo, gpucoh,
// hmesi). -diff compares coverage snapshots (written by spandex-mcheck
// -coverage-out or spandex-bench -coverage-out) against the LLC's
// annotated graph: an observed (state, message) pair missing from the
// static graph is an extraction bug and exits nonzero, as is an observed
// pair the source declares unreachable (a contradicted proof); static
// pairs never observed are classified as "proven unreachable" (covered by
// a //spandex:unreachable declaration) or "untested" (a real coverage
// hole).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/transgraph"
)

// defaultPackages are the protocol packages with message-handling units.
var defaultPackages = []string{
	"./internal/core", "./internal/mesi", "./internal/denovo",
	"./internal/gpucoh", "./internal/hmesi",
}

// diffUnit is the unit the dynamic coverage recorder observes.
const diffUnit = "core-llc"

func main() {
	out := flag.String("out", "docs/transitions", "output directory for JSON+DOT graphs")
	check := flag.Bool("check", false, "verify the checked-in graphs match the source; write nothing")
	diff := flag.String("diff", "", "comma-separated coverage snapshots to cross-check against the "+diffUnit+" graph")
	graphFile := flag.String("graph", "", "graph JSON for -diff (default: <out>/"+diffUnit+".json)")
	flag.Parse()

	die := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "spandex-transgraph: "+format+"\n", args...)
		os.Exit(1)
	}

	if *diff != "" {
		if *graphFile == "" {
			*graphFile = filepath.Join(*out, diffUnit+".json")
		}
		if err := runDiff(*graphFile, strings.Split(*diff, ",")); err != nil {
			die("%v", err)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = defaultPackages
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		die("%v", err)
	}

	stale := false
	produced := map[string]bool{}
	for _, pkg := range pkgs {
		graphs, err := transgraph.Extract(pkg)
		if err != nil {
			die("%v", err)
		}
		for _, g := range graphs {
			files := map[string][]byte{
				filepath.Join(*out, g.Name()+".json"): g.JSON(),
				filepath.Join(*out, g.Name()+".dot"):  g.DOT(),
			}
			for path, want := range files {
				produced[filepath.Base(path)] = true
				if *check {
					have, err := os.ReadFile(path)
					if err != nil || !bytes.Equal(have, want) {
						fmt.Fprintf(os.Stderr, "stale: %s (re-run spandex-transgraph)\n", path)
						stale = true
					}
					continue
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					die("%v", err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					die("%v", err)
				}
			}
			if !*check {
				fmt.Printf("%-16s %s: %d states, %d messages, %d transitions (%s)\n",
					g.Name(), g.Source, len(g.States), len(g.Messages), len(g.Transitions), *out)
			}
		}
	}
	// Orphans — checked-in artifacts no extracted unit produces — mean a
	// unit silently vanished from extraction (e.g. a dispatch-idiom change
	// the extractor no longer follows). Without this, -check passes while
	// the on-disk graph rots.
	if entries, err := os.ReadDir(*out); err == nil {
		for _, ent := range entries {
			name := ent.Name()
			ext := filepath.Ext(name)
			if ent.IsDir() || (ext != ".json" && ext != ".dot") || produced[name] {
				continue
			}
			if *check {
				fmt.Fprintf(os.Stderr, "orphan: %s (no extracted unit produces it — extraction regression or leftover; re-run spandex-transgraph)\n", filepath.Join(*out, name))
				stale = true
				continue
			}
			if err := os.Remove(filepath.Join(*out, name)); err != nil {
				die("%v", err)
			}
			fmt.Printf("removed orphan %s\n", filepath.Join(*out, name))
		}
	}
	if stale {
		os.Exit(1)
	}
	if *check {
		fmt.Println("docs/transitions is fresh")
	}
}

// runDiff cross-checks coverage snapshots against the static LLC graph.
func runDiff(graphPath string, covPaths []string) error {
	data, err := os.ReadFile(graphPath)
	if err != nil {
		return err
	}
	var g transgraph.UnitGraph
	if err := json.Unmarshal(data, &g); err != nil {
		return fmt.Errorf("%s: %v", graphPath, err)
	}

	observed := make(map[string]uint64)
	for _, p := range covPaths {
		data, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		var snap map[string]uint64
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("%s: %v", p, err)
		}
		for k, n := range snap {
			observed[k] += n
		}
	}

	res := transgraph.DiffCoverage(&g, observed)
	fmt.Printf("cross-check %s: %d observed pairs vs %d static pairs\n", g.Name(), res.Observed, res.Static)
	proven := make([]string, 0, len(res.Proven))
	for pair := range res.Proven {
		proven = append(proven, pair)
	}
	sort.Strings(proven)
	for _, pair := range proven {
		fmt.Printf("  proven unreachable: %-18s — %s\n", pair, res.Proven[pair])
	}
	for _, gap := range res.Gaps {
		fmt.Printf("  untested (static, never observed): %s\n", gap)
	}
	if len(res.Unknown) > 0 {
		for _, u := range res.Unknown {
			fmt.Printf("  UNKNOWN (observed, not in static graph): %s\n", u)
		}
		return fmt.Errorf("%d observed transitions missing from the static graph", len(res.Unknown))
	}
	if len(res.Contradicted) > 0 {
		for _, c := range res.Contradicted {
			fmt.Printf("  CONTRADICTED (observed but declared unreachable): %s\n", c)
		}
		return fmt.Errorf("%d observed transitions contradict //spandex:unreachable declarations", len(res.Contradicted))
	}
	fmt.Printf("ok: every observed transition is in the static graph (%d proven unreachable, %d untested)\n",
		len(res.Proven), len(res.Gaps))
	return nil
}
