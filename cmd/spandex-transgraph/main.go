// Command spandex-transgraph extracts each protocol controller's static
// transition graph — (state, incoming message) → (next states, emitted
// messages) — and keeps the checked-in copies under docs/transitions/
// honest against both the source (freshness) and reality (the dynamic
// coverage cross-check).
//
// Usage:
//
//	spandex-transgraph [packages]            # write JSON+DOT to -out
//	spandex-transgraph -check [packages]     # fail if docs/transitions is stale
//	spandex-transgraph -diff cov.json[,...]  # cross-check observed coverage
//
// Packages default to the protocol packages (core, mesi, denovo, gpucoh,
// hmesi). -diff compares coverage snapshots (written by spandex-mcheck
// -coverage-out or spandex-bench -coverage-out) against the LLC's
// annotated graph: an observed (state, message) pair missing from the
// static graph is an extraction bug and exits nonzero; static pairs never
// observed are printed as coverage gaps.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/transgraph"
)

// defaultPackages are the protocol packages with message-handling units.
var defaultPackages = []string{
	"./internal/core", "./internal/mesi", "./internal/denovo",
	"./internal/gpucoh", "./internal/hmesi",
}

// diffUnit is the unit the dynamic coverage recorder observes.
const diffUnit = "core-llc"

func main() {
	out := flag.String("out", "docs/transitions", "output directory for JSON+DOT graphs")
	check := flag.Bool("check", false, "verify the checked-in graphs match the source; write nothing")
	diff := flag.String("diff", "", "comma-separated coverage snapshots to cross-check against the "+diffUnit+" graph")
	graphFile := flag.String("graph", "", "graph JSON for -diff (default: <out>/"+diffUnit+".json)")
	flag.Parse()

	die := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "spandex-transgraph: "+format+"\n", args...)
		os.Exit(1)
	}

	if *diff != "" {
		if *graphFile == "" {
			*graphFile = filepath.Join(*out, diffUnit+".json")
		}
		if err := runDiff(*graphFile, strings.Split(*diff, ",")); err != nil {
			die("%v", err)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = defaultPackages
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		die("%v", err)
	}

	stale := false
	for _, pkg := range pkgs {
		graphs, err := transgraph.Extract(pkg)
		if err != nil {
			die("%v", err)
		}
		for _, g := range graphs {
			files := map[string][]byte{
				filepath.Join(*out, g.Name()+".json"): g.JSON(),
				filepath.Join(*out, g.Name()+".dot"):  g.DOT(),
			}
			for path, want := range files {
				if *check {
					have, err := os.ReadFile(path)
					if err != nil || !bytes.Equal(have, want) {
						fmt.Fprintf(os.Stderr, "stale: %s (re-run spandex-transgraph)\n", path)
						stale = true
					}
					continue
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					die("%v", err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					die("%v", err)
				}
			}
			if !*check {
				fmt.Printf("%-16s %s: %d states, %d messages, %d transitions (%s)\n",
					g.Name(), g.Source, len(g.States), len(g.Messages), len(g.Transitions), *out)
			}
		}
	}
	if stale {
		os.Exit(1)
	}
	if *check {
		fmt.Println("docs/transitions is fresh")
	}
}

// runDiff cross-checks coverage snapshots against the static LLC graph.
func runDiff(graphPath string, covPaths []string) error {
	data, err := os.ReadFile(graphPath)
	if err != nil {
		return err
	}
	var g transgraph.UnitGraph
	if err := json.Unmarshal(data, &g); err != nil {
		return fmt.Errorf("%s: %v", graphPath, err)
	}

	observed := make(map[string]uint64)
	for _, p := range covPaths {
		data, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		var snap map[string]uint64
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("%s: %v", p, err)
		}
		for k, n := range snap {
			observed[k] += n
		}
	}

	res := transgraph.DiffCoverage(&g, observed)
	fmt.Printf("cross-check %s: %d observed pairs vs %d static pairs\n", g.Name(), res.Observed, res.Static)
	for _, gap := range res.Gaps {
		fmt.Printf("  gap (static, never observed): %s\n", gap)
	}
	if len(res.Unknown) > 0 {
		for _, u := range res.Unknown {
			fmt.Printf("  UNKNOWN (observed, not in static graph): %s\n", u)
		}
		return fmt.Errorf("%d observed transitions missing from the static graph", len(res.Unknown))
	}
	fmt.Printf("ok: every observed transition is in the static graph (%d gaps)\n", len(res.Gaps))
	return nil
}
