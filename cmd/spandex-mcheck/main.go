// Command spandex-mcheck exhaustively model-checks tiny Spandex
// configurations: for every (CPU protocol, GPU protocol) pairing it
// enumerates all message-delivery/operation-issue interleavings of a set
// of litmus-style scenarios, auditing every explored state with the
// coherence checker's SWMR/disjointness invariants plus deadlock,
// data-value (out-of-thin-air) and terminal-quiescence checks. A found
// violation prints with the concrete interleaving trace that reaches it.
//
// Usage:
//
//	spandex-mcheck                       # every pairing x every scenario
//	spandex-mcheck -pairing mesi+denovo  # one pairing
//	spandex-mcheck -scenario share       # one scenario (where defined)
//	spandex-mcheck -max-states 50000     # per-scenario state budget
//	spandex-mcheck -coverage-out f.json  # dump observed (state,msg) pairs
//	spandex-mcheck -trace                # print traces for violations only
//
// Exit status is nonzero if any scenario reports a violation or fails to
// complete within its state budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spandex/internal/core"
	"spandex/internal/mcheck"
)

func main() {
	pairing := flag.String("pairing", "", "only one pairing, e.g. mesi+gpu (default: all)")
	scenario := flag.String("scenario", "", "only one scenario name (default: all defined for the pairing)")
	maxStates := flag.Int("max-states", 0, "per-scenario distinct-state budget (0 = default)")
	covOut := flag.String("coverage-out", "", "write observed (LLC state, message) pairs as JSON")
	flag.Parse()

	die := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "spandex-mcheck: "+format+"\n", args...)
		os.Exit(1)
	}

	pairings := mcheck.Pairings()
	if *pairing != "" {
		var sel []mcheck.Pairing
		for _, p := range pairings {
			if p.String() == *pairing {
				sel = append(sel, p)
			}
		}
		if len(sel) == 0 {
			var names []string
			for _, p := range pairings {
				names = append(names, p.String())
			}
			die("unknown pairing %q (have %s)", *pairing, strings.Join(names, ", "))
		}
		pairings = sel
	}

	var cov *core.TransitionCoverage
	if *covOut != "" {
		cov = core.NewTransitionCoverage()
	}

	failed := false
	totalStates := 0
	start := time.Now()
	for _, p := range pairings {
		scns := mcheck.Scenarios(p)
		if *scenario != "" {
			scn, err := mcheck.ScenarioByName(p, *scenario)
			if err != nil {
				// A scenario may exist only for some pairings (e.g. "share"
				// needs a MESI CPU); skip pairings that lack it unless the
				// name is unknown everywhere.
				continue
			}
			scns = []mcheck.Scenario{scn}
		}
		for _, scn := range scns {
			res := mcheck.Explore(mcheck.Config{Scenario: scn, MaxStates: *maxStates, Coverage: cov})
			totalStates += res.States
			status := "ok"
			if res.Violation != nil {
				status = "VIOLATION"
				failed = true
			} else if !res.Complete {
				status = "BUDGET EXCEEDED"
				failed = true
			}
			fmt.Printf("%-13s %-12s %7d states %8d transitions  depth %3d  %s\n",
				p, scn.Name, res.States, res.Transitions, res.MaxDepth, status)
			if res.Violation != nil {
				fmt.Printf("  %s violation: %s\n  interleaving:\n", res.Violation.Kind, res.Violation.Detail)
				for _, line := range res.Violation.Trace {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}
	fmt.Printf("total: %d states in %s\n", totalStates, time.Since(start).Round(time.Millisecond))

	if cov != nil {
		data, err := json.MarshalIndent(cov.Snapshot(), "", "  ")
		if err != nil {
			die("marshal coverage: %v", err)
		}
		if err := os.WriteFile(*covOut, append(data, '\n'), 0o644); err != nil {
			die("write coverage: %v", err)
		}
		fmt.Printf("coverage: %d distinct (state, msg) pairs -> %s\n", len(cov.Snapshot()), *covOut)
	}

	if failed {
		os.Exit(1)
	}
}
