// Command spandex-mcheck exhaustively model-checks tiny Spandex
// configurations: for every (CPU protocol, GPU protocol) pairing it
// enumerates all message-delivery/operation-issue interleavings of a set
// of litmus-style scenarios, auditing every explored state with the
// coherence checker's SWMR/disjointness invariants plus deadlock,
// data-value (out-of-thin-air) and terminal-quiescence checks. A found
// violation prints with the concrete interleaving trace that reaches it.
//
// Usage:
//
//	spandex-mcheck                       # every pairing x every scenario
//	spandex-mcheck -pairing mesi+denovo  # one pairing
//	spandex-mcheck -scenario share       # one scenario (where defined)
//	spandex-mcheck -max-states 50000     # per-scenario state budget
//	spandex-mcheck -coverage-out f.json  # dump observed (state,msg) pairs
//	spandex-mcheck -trace                # print traces for violations only
//	spandex-mcheck -json stats.json      # dump per-run state/reduction stats
//	spandex-mcheck -baseline docs/mcheck/baseline.json
//	                                     # fail on state-count/runtime growth
//
// The -baseline gate is the CI guard against silent state-space blowup:
// a protocol or reduction change that grows any scenario's state count by
// more than -tolerance (default 20%), or the suite's wall time by more
// than -time-tolerance (default 50%, looser because runtimes vary across
// hosts), fails the run until docs/mcheck/baseline.json is regenerated
// (make mcheck-baseline) and the growth reviewed. Scenarios added or
// removed relative to the baseline also fail it — the baseline must
// follow the suite.
//
// Exit status is nonzero if any scenario reports a violation or fails to
// complete within its state budget, or the baseline gate trips.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spandex/internal/core"
	"spandex/internal/mcheck"
)

func main() {
	pairing := flag.String("pairing", "", "only one pairing, e.g. mesi+gpu (default: all)")
	scenario := flag.String("scenario", "", "only one scenario name (default: all defined for the pairing)")
	maxStates := flag.Int("max-states", 0, "per-scenario distinct-state budget (0 = default)")
	covOut := flag.String("coverage-out", "", "write observed (LLC state, message) pairs as JSON")
	jsonOut := flag.String("json", "", "write per-run exploration stats as JSON")
	baseline := flag.String("baseline", "", "compare stats against this baseline JSON and fail on growth")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional per-run state-count growth vs baseline")
	timeTolerance := flag.Float64("time-tolerance", 0.50, "allowed fractional total-runtime growth vs baseline")
	flag.Parse()

	die := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "spandex-mcheck: "+format+"\n", args...)
		os.Exit(1)
	}

	pairings := mcheck.Pairings()
	if *pairing != "" {
		var sel []mcheck.Pairing
		for _, p := range pairings {
			if p.String() == *pairing {
				sel = append(sel, p)
			}
		}
		if len(sel) == 0 {
			var names []string
			for _, p := range pairings {
				names = append(names, p.String())
			}
			die("unknown pairing %q (have %s)", *pairing, strings.Join(names, ", "))
		}
		pairings = sel
	}

	var cov *core.TransitionCoverage
	if *covOut != "" {
		cov = core.NewTransitionCoverage()
	}

	failed := false
	totalStates := 0
	var stats suiteStats
	start := time.Now()
	for _, p := range pairings {
		scns := mcheck.Scenarios(p)
		if *scenario != "" {
			scn, err := mcheck.ScenarioByName(p, *scenario)
			if err != nil {
				// A scenario may exist only for some pairings (e.g. "share"
				// needs a MESI CPU); skip pairings that lack it unless the
				// name is unknown everywhere.
				continue
			}
			scns = []mcheck.Scenario{scn}
		}
		for _, scn := range scns {
			t0 := time.Now()
			res := mcheck.Explore(mcheck.Config{Scenario: scn, MaxStates: *maxStates, Coverage: cov})
			totalStates += res.States
			stats.Runs = append(stats.Runs, runStat{
				Pairing:      p.String(),
				Scenario:     scn.Name,
				States:       res.States,
				Transitions:  res.Transitions,
				MaxDepth:     res.MaxDepth,
				AmpleCommits: res.AmpleCommits,
				SleepSkips:   res.SleepSkips,
				Seconds:      time.Since(t0).Seconds(),
			})
			status := "ok"
			if res.Violation != nil {
				status = "VIOLATION"
				failed = true
			} else if !res.Complete {
				status = "BUDGET EXCEEDED"
				failed = true
			}
			fmt.Printf("%-13s %-12s %7d states %8d transitions  depth %3d  %s\n",
				p, scn.Name, res.States, res.Transitions, res.MaxDepth, status)
			if res.Violation != nil {
				fmt.Printf("  %s violation: %s\n  interleaving:\n", res.Violation.Kind, res.Violation.Detail)
				for _, line := range res.Violation.Trace {
					fmt.Printf("    %s\n", line)
				}
			}
		}
	}
	stats.TotalStates = totalStates
	stats.TotalSeconds = time.Since(start).Seconds()
	fmt.Printf("total: %d states in %s\n", totalStates, time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		data, err := json.MarshalIndent(&stats, "", "  ")
		if err != nil {
			die("marshal stats: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			die("write stats: %v", err)
		}
	}
	if *baseline != "" {
		if err := gate(&stats, *baseline, *tolerance, *timeTolerance); err != nil {
			fmt.Fprintf(os.Stderr, "spandex-mcheck: baseline gate: %v\n", err)
			failed = true
		}
	}

	if cov != nil {
		data, err := json.MarshalIndent(cov.Snapshot(), "", "  ")
		if err != nil {
			die("marshal coverage: %v", err)
		}
		if err := os.WriteFile(*covOut, append(data, '\n'), 0o644); err != nil {
			die("write coverage: %v", err)
		}
		fmt.Printf("coverage: %d distinct (state, msg) pairs -> %s\n", len(cov.Snapshot()), *covOut)
	}

	if failed {
		os.Exit(1)
	}
}

// runStat is one (pairing, scenario) exploration's stats. The state,
// transition, depth and reduction counters are deterministic; Seconds is
// informational per run and gated only in aggregate.
type runStat struct {
	Pairing      string  `json:"pairing"`
	Scenario     string  `json:"scenario"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	MaxDepth     int     `json:"max_depth"`
	AmpleCommits int     `json:"ample_commits"`
	SleepSkips   int     `json:"sleep_skips"`
	Seconds      float64 `json:"seconds"`
}

type suiteStats struct {
	Runs         []runStat `json:"runs"`
	TotalStates  int       `json:"total_states"`
	TotalSeconds float64   `json:"total_seconds"`
}

// gate compares the current suite stats against the checked-in baseline:
// every baseline run must still exist, no run's state count may grow past
// tol, no run may appear that the baseline lacks, and total wall time may
// not grow past timeTol. Any trip reports every offender, not just the
// first, so one regeneration review covers the whole diff.
func gate(cur *suiteStats, path string, tol, timeTol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base suiteStats
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	baseRuns := make(map[string]runStat, len(base.Runs))
	for _, r := range base.Runs {
		baseRuns[r.Pairing+"/"+r.Scenario] = r
	}
	var trips []string
	for _, r := range cur.Runs {
		key := r.Pairing + "/" + r.Scenario
		b, ok := baseRuns[key]
		if !ok {
			trips = append(trips, fmt.Sprintf("%s: not in baseline (new scenario? run make mcheck-baseline)", key))
			continue
		}
		delete(baseRuns, key)
		if limit := float64(b.States) * (1 + tol); float64(r.States) > limit {
			trips = append(trips, fmt.Sprintf("%s: %d states vs baseline %d (>%d%% growth)",
				key, r.States, b.States, int(tol*100)))
		}
	}
	leftover := make([]string, 0, len(baseRuns))
	for key := range baseRuns {
		leftover = append(leftover, key)
	}
	sort.Strings(leftover)
	for _, key := range leftover {
		trips = append(trips, fmt.Sprintf("%s: in baseline but not explored (scenario removed? run make mcheck-baseline)", key))
	}
	if limit := base.TotalSeconds * (1 + timeTol); cur.TotalSeconds > limit {
		trips = append(trips, fmt.Sprintf("suite took %.1fs vs baseline %.1fs (>%d%% growth)",
			cur.TotalSeconds, base.TotalSeconds, int(timeTol*100)))
	}
	if len(trips) > 0 {
		return fmt.Errorf("%d trip(s):\n  %s", len(trips), strings.Join(trips, "\n  "))
	}
	fmt.Printf("baseline gate: %d runs within %d%% of %s (%.1fs vs %.1fs)\n",
		len(cur.Runs), int(tol*100), path, cur.TotalSeconds, base.TotalSeconds)
	return nil
}
