// Command spandex-sim runs one workload on one cache configuration and
// prints detailed statistics.
//
// Usage:
//
//	spandex-sim -config SDD -workload bc
//	spandex-sim -config HMG -workload litmus -seed 3 -check
//	spandex-sim -config SDD -workload bc -verify-determinism
//	spandex-sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"spandex"
	"spandex/internal/proto"
)

func main() {
	cfg := flag.String("config", "SDD", "cache configuration (HMG HMD SMG SMD SDG SDD)")
	wl := flag.String("workload", "pr", "workload name (see -list)")
	seed := flag.Uint64("seed", 42, "workload input seed")
	check := flag.Bool("check", false, "enable coherence invariant checking, including the per-transition SWMR audit")
	validate := flag.Bool("validate", true, "validate final memory state")
	verifyDet := flag.Bool("verify-determinism", false,
		"run the cell twice (serial, then under contention) and require bit-identical results")
	list := flag.Bool("list", false, "list workloads and configurations")
	flag.Parse()

	if *list {
		fmt.Println("configurations:")
		for _, c := range spandex.Configurations() {
			fmt.Printf("  %-5s LLC=%s CPU=%s GPU=%s\n", c.Name, c.LLC, c.CPU, c.GPU)
		}
		fmt.Println("workloads:")
		for _, n := range spandex.WorkloadNames() {
			w, _ := spandex.WorkloadByName(n)
			fmt.Printf("  %-12s %s\n", n, w.Meta().Pattern)
		}
		return
	}

	w, err := spandex.WorkloadByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spandex-sim:", err)
		fmt.Fprintln(os.Stderr, "use -list to see available workloads")
		os.Exit(1)
	}
	opt := spandex.Options{
		ConfigName:           *cfg,
		Seed:                 *seed,
		CheckInvariants:      *check,
		CheckEveryTransition: *check,
		Validate:             *validate,
	}

	if *verifyDet {
		reports, err := spandex.VerifyDeterminism(context.Background(),
			[]string{*wl}, []string{*cfg}, opt, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spandex-sim:", err)
			os.Exit(1)
		}
		r := reports[0]
		fmt.Printf("determinism verified: %s/%s fingerprint=%#016x serial=%s contended=%s\n",
			r.Workload, r.Config, r.Fingerprint,
			r.SerialWall.Round(time.Millisecond), r.ContendedWall.Round(time.Millisecond))
		return
	}

	start := time.Now()
	res, err := spandex.Run(w, opt)
	wall := time.Since(start)
	if err != nil {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "spandex-sim: violation:", v)
		}
		fmt.Fprintln(os.Stderr, "spandex-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload:   %s (%s)\n", res.Workload, w.Meta().Pattern)
	fmt.Printf("config:     %s\n", res.Config)
	fmt.Printf("exec time:  %.3f ms simulated (%s wall)\n", res.ExecMillis(), wall.Round(time.Millisecond))
	fmt.Printf("operations: %d\n", res.Ops)
	fmt.Printf("traffic:    %d KB total (excluding DRAM)\n", res.Traffic.TotalBytes(false)/1024)
	for c := proto.Class(0); c < proto.NumClasses; c++ {
		if res.Traffic.Bytes[c] == 0 {
			continue
		}
		fmt.Printf("  %-8s %10d bytes %8d msgs\n", c, res.Traffic.Bytes[c], res.Traffic.Messages[c])
	}
	if *validate {
		fmt.Println("validation: final memory state matches the workload oracle")
	}
}
