// Command spandex-bench regenerates every table and figure of the Spandex
// paper's evaluation (Alsop, Sinclair, Adve — ISCA 2018).
//
// Usage:
//
//	spandex-bench                  # everything: tables, figures, headline
//	spandex-bench -figure 2        # only Figure 2 (microbenchmarks)
//	spandex-bench -figure 3        # only Figure 3 (applications)
//	spandex-bench -table III       # only one table
//	spandex-bench -headline        # only the Sbest-vs-Hbest summary
//	spandex-bench -seed 7 -check   # different input seed; invariant checks
package main

import (
	"flag"
	"fmt"
	"os"

	"spandex"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate only figure 2 or 3")
	table := flag.String("table", "", "regenerate only one table (I..VII)")
	headline := flag.Bool("headline", false, "print only the headline summary")
	seed := flag.Uint64("seed", 42, "workload input seed")
	check := flag.Bool("check", false, "enable coherence invariant checking (slower)")
	validate := flag.Bool("validate", true, "validate final memory state against each workload's oracle")
	flag.Parse()

	opt := spandex.Options{
		Seed:            *seed,
		CheckInvariants: *check,
		Validate:        *validate,
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "spandex-bench:", err)
		os.Exit(1)
	}

	if *table != "" {
		out, err := spandex.RenderTable(*table)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		return
	}

	runFig := func(n int) *spandex.FigureData {
		var f *spandex.FigureData
		var err error
		if n == 2 {
			f, err = spandex.RunFigure2(opt)
		} else {
			f, err = spandex.RunFigure3(opt)
		}
		if err != nil {
			die(err)
		}
		return f
	}

	if *figure == 2 || *figure == 3 {
		fmt.Println(runFig(*figure).Render())
		return
	}

	if *headline {
		printHeadline(runFig(2), runFig(3))
		return
	}

	// Everything.
	for _, t := range []string{"I", "II", "III", "IV", "V", "VI", "VII"} {
		out, err := spandex.RenderTable(t)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
	}
	f2 := runFig(2)
	fmt.Println(f2.Render())
	f3 := runFig(3)
	fmt.Println(f3.Render())
	printHeadline(f2, f3)
}

func printHeadline(f2, f3 *spandex.FigureData) {
	h2 := f2.ComputeHeadline()
	h3 := f3.ComputeHeadline()
	fmt.Println("Headline (best Spandex configuration vs best hierarchical configuration)")
	fmt.Println("========================================================================")
	fmt.Printf("Microbenchmarks: execution time -%.0f%% (max %.0f%%), network traffic -%.0f%% (max %.0f%%)\n",
		h2.AvgTime*100, h2.MaxTime*100, h2.AvgTraffic*100, h2.MaxTraffic*100)
	fmt.Printf("  paper reports: -18%% (max 31%%), -40%% (max 69%%)\n")
	fmt.Printf("Applications:    execution time -%.0f%% (max %.0f%%), network traffic -%.0f%% (max %.0f%%)\n",
		h3.AvgTime*100, h3.MaxTime*100, h3.AvgTraffic*100, h3.MaxTraffic*100)
	fmt.Printf("  paper reports: -16%% (max 29%%), -27%% (max 58%%)\n")
}
