// Command spandex-bench regenerates every table and figure of the Spandex
// paper's evaluation (Alsop, Sinclair, Adve — ISCA 2018).
//
// Usage:
//
//	spandex-bench                  # everything: tables, figures, headline
//	spandex-bench -figure 2        # only Figure 2 (microbenchmarks)
//	spandex-bench -figure 3        # only Figure 3 (applications)
//	spandex-bench -table III       # only one table
//	spandex-bench -headline        # only the Sbest-vs-Hbest summary
//	spandex-bench -seed 7 -check   # different input seed; invariant checks
//	spandex-bench -parallel 4 -progress    # 4 workers, per-cell progress
//	spandex-bench -verify-determinism      # serial vs contended bit-equality
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"spandex"
	"spandex/internal/core"
)

func main() {
	figure := flag.Int("figure", 0, "regenerate only figure 2 or 3")
	table := flag.String("table", "", "regenerate only one table (I..VII)")
	headline := flag.Bool("headline", false, "print only the headline summary")
	seed := flag.Uint64("seed", 42, "workload input seed")
	check := flag.Bool("check", false, "enable coherence invariant checking, including the per-transition SWMR audit (slower)")
	validate := flag.Bool("validate", true, "validate final memory state against each workload's oracle")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print per-cell progress to stderr")
	verifyDet := flag.Bool("verify-determinism", false,
		"run sampled cells serially and under contention and require bit-identical results")
	covOut := flag.String("coverage-out", "",
		"write the (LLC state, message) pairs observed across every simulated cell as JSON, for the spandex-transgraph cross-check")
	perfOut := flag.String("perf", "",
		"write a single-worker headline-sweep perf snapshot (BENCH JSON schema) to this path and exit")
	perfRounds := flag.Int("perf-rounds", 3, "perf mode: measurement rounds (throughput is best-of)")
	perfBaseline := flag.String("perf-baseline", "",
		"perf mode: compare against this BENCH_*.json and exit non-zero on regression")
	perfTolerance := flag.Float64("perf-tolerance", 0.10,
		"perf mode: allowed fractional regression vs the baseline")
	perfCPU := flag.String("perf-cpuprofile", "", "perf mode: write a CPU profile covering all rounds")
	perfMem := flag.String("perf-memprofile", "", "perf mode: write a heap profile after the last round")
	gitSHA := flag.String("git-sha", "", "git short SHA recorded in the perf snapshot")
	scale := flag.Bool("scale", false,
		"run the scalability sweep: scalemix on growing mesh systems (8..64 requestors), print exec-time/traffic-vs-device-count table")
	scaleConfigs := flag.String("scale-configs", "SDD,SMG", "scale mode: comma-separated configurations to sweep")
	scalePhases := flag.Int("scale-phases", 0, "scale mode: scalemix phase count (0 = workload default)")
	flag.Parse()

	opt := spandex.Options{
		Seed:                 *seed,
		CheckInvariants:      *check,
		CheckEveryTransition: *check,
		Validate:             *validate,
		RecordTransitions:    *covOut != "",
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "spandex-bench:", err)
		os.Exit(1)
	}

	if *scale {
		names, err := parseScaleConfigs(*scaleConfigs)
		if err != nil {
			die(err)
		}
		if err := runScale(names, *seed, *scalePhases, *validate); err != nil {
			die(err)
		}
		return
	}

	if *perfOut != "" {
		if err := runPerf(*perfOut, *perfRounds, *seed, *gitSHA, *perfCPU, *perfMem,
			*perfBaseline, *perfTolerance); err != nil {
			die(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mo := spandex.MatrixOptions{Workers: *parallel}
	if *progress {
		mo.Progress = func(done, total int, c spandex.Cell) {
			status := fmt.Sprintf("sim=%.3fms wall=%s", c.Result.ExecMillis(), c.Wall.Round(time.Millisecond))
			if c.Err != nil {
				status = "ERROR: " + c.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s %s\n", done, total, c.Workload, c.Config, status)
		}
	}

	if *verifyDet {
		workloads := append(append([]string{}, spandex.Figure2Workloads()...), spandex.Figure3Workloads()...)
		reports, err := spandex.VerifyDeterminism(ctx, workloads, spandex.ConfigNames(), opt, 3)
		if err != nil {
			die(err)
		}
		fmt.Printf("determinism verified on %d sampled cells (serial vs contended rerun):\n", len(reports))
		for _, r := range reports {
			fmt.Printf("  %-12s %-5s fingerprint=%#016x serial=%s contended=%s\n",
				r.Workload, r.Config, r.Fingerprint,
				r.SerialWall.Round(time.Millisecond), r.ContendedWall.Round(time.Millisecond))
		}
		return
	}

	if *table != "" {
		out, err := spandex.RenderTable(*table)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
		return
	}

	cov := core.NewTransitionCoverage()
	writeCoverage := func() {
		if *covOut == "" {
			return
		}
		data, err := json.MarshalIndent(cov.Snapshot(), "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*covOut, append(data, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "coverage: %d distinct (state, msg) pairs -> %s\n", len(cov.Snapshot()), *covOut)
	}

	runFig := func(n int) *spandex.FigureData {
		var f *spandex.FigureData
		var err error
		if n == 2 {
			f, err = spandex.RunFigure2Matrix(ctx, opt, mo)
		} else {
			f, err = spandex.RunFigure3Matrix(ctx, opt, mo)
		}
		if err != nil {
			die(err)
		}
		for _, c := range f.Raw {
			cov.AddSnapshot(c.Result.Transitions)
		}
		return f
	}

	if *figure != 0 {
		if *figure != 2 && *figure != 3 {
			die(fmt.Errorf("unknown figure %d (valid: 2, 3)", *figure))
		}
		fmt.Println(runFig(*figure).Render())
		writeCoverage()
		return
	}

	if *headline {
		start := time.Now()
		f2 := runFig(2)
		f3 := runFig(3)
		printHeadline(f2, f3)
		writeCoverage()
		if *progress {
			agg := spandex.Aggregate(append(append([]spandex.Cell{}, f2.Raw...), f3.Raw...))
			fmt.Fprintf(os.Stderr, "matrix wall time %s; %d KB simulated interconnect traffic\n",
				time.Since(start).Round(time.Millisecond), agg.Traffic.TotalBytes(false)/1024)
		}
		return
	}

	// Everything.
	for _, t := range []string{"I", "II", "III", "IV", "V", "VI", "VII"} {
		out, err := spandex.RenderTable(t)
		if err != nil {
			die(err)
		}
		fmt.Println(out)
	}
	f2 := runFig(2)
	fmt.Println(f2.Render())
	f3 := runFig(3)
	fmt.Println(f3.Render())
	printHeadline(f2, f3)
	writeCoverage()
}

func printHeadline(f2, f3 *spandex.FigureData) {
	h2 := f2.ComputeHeadline()
	h3 := f3.ComputeHeadline()
	fmt.Println("Headline (best Spandex configuration vs best hierarchical configuration)")
	fmt.Println("========================================================================")
	fmt.Printf("Microbenchmarks: execution time -%.0f%% (max %.0f%%), network traffic -%.0f%% (max %.0f%%)\n",
		h2.AvgTime*100, h2.MaxTime*100, h2.AvgTraffic*100, h2.MaxTraffic*100)
	fmt.Printf("  paper reports: -18%% (max 31%%), -40%% (max 69%%)\n")
	fmt.Printf("Applications:    execution time -%.0f%% (max %.0f%%), network traffic -%.0f%% (max %.0f%%)\n",
		h3.AvgTime*100, h3.MaxTime*100, h3.AvgTraffic*100, h3.MaxTraffic*100)
	fmt.Printf("  paper reports: -16%% (max 29%%), -27%% (max 58%%)\n")
}
