package main

import (
	"fmt"
	"strings"
	"time"

	spandex "spandex"
	"spandex/internal/config"
	"spandex/internal/workload"
)

// scalePoints is the device-count sweep: the paper's 24-requestor machine
// sits between the 16- and 32-requestor points; 64 is the directory
// sharer-bitset cap.
var scalePoints = []int{8, 16, 32, 48, 64}

// runScale sweeps the scalemix workload over growing mesh systems and
// prints the execution-time / traffic-vs-device-count table quoted in
// EXPERIMENTS.md. Devices split 1:3 CPU:GPU (the paper's 8:16 machine is
// 1:2; keeping GPUs in the majority preserves its throughput-dominated
// character as the system grows). Bank count and mesh width come from
// config.ScaleParams defaults, so the table also documents the geometry.
func runScale(configNames []string, seed uint64, phases int, validate bool) error {
	w := workload.DefaultScaleMix()
	if phases > 0 {
		w.Phases = phases
	}
	fmt.Printf("Scalability sweep: scalemix (%s), seed %d\n", w.Meta().Params, seed)
	fmt.Println("devices = CPU cores + GPU CUs; threads = cores + CUs*warps; traffic excludes hierarchical-internal hops")
	fmt.Println()
	fmt.Println("| config | devices | banks | mesh | threads | ops | exec (ms) | traffic (KB) | B/op | wall |")
	fmt.Println("|--------|---------|-------|------|---------|-----|-----------|--------------|------|------|")
	for _, cfgName := range configNames {
		for _, n := range scalePoints {
			nCPU := n / 4
			p := config.ScaleParams(nCPU, n-nCPU, 0)
			opt := spandex.Options{
				ConfigName: cfgName,
				Params:     &p,
				Seed:       seed,
				Validate:   validate,
			}
			start := time.Now()
			res, err := spandex.Run(w, opt)
			if err != nil {
				return fmt.Errorf("scale %s n=%d: %w", cfgName, n, err)
			}
			wall := time.Since(start)
			threads := nCPU + (n-nCPU)*p.WarpsPerCU
			bytes := res.Traffic.TotalBytes(false)
			fmt.Printf("| %s | %d | %d | %dx%d | %d | %d | %.3f | %d | %.1f | %s |\n",
				cfgName, n, p.Banks(), p.NoCMeshWidth, p.NoCMeshWidth, threads,
				res.Ops, res.ExecMillis(), bytes/1024,
				float64(bytes)/float64(res.Ops), wall.Round(time.Millisecond))
		}
	}
	return nil
}

// parseScaleConfigs splits the -scale-configs flag and validates every name.
func parseScaleConfigs(s string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := config.ByName(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no configurations in -scale-configs %q", s)
	}
	return names, nil
}
