package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"spandex"
)

// perfSnapshot is the schema of the checked-in BENCH_<date>_<shortsha>.json
// files at the repository root: one single-worker headline-sweep
// measurement. The newest checked-in snapshot is the baseline the CI
// bench-gate compares against (scripts/bench_gate.sh).
type perfSnapshot struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date"`
	GitSHA    string `json:"git_sha,omitempty"`
	GoVersion string `json:"go_version"`
	Seed      uint64 `json:"seed"`
	Rounds    int    `json:"rounds"`
	Cells     int    `json:"cells"`

	// Throughput of the best (minimum-wall) round. The sweep runs on a
	// single worker, so this is per-core cell throughput; min-of-rounds
	// discards transient host contention.
	WallSeconds  float64 `json:"wall_seconds"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Deterministic work content of one sweep: engine events fired and
	// device operations completed. Host-independent; a change here means
	// the simulated work itself changed, not the hardware.
	Events uint64 `json:"events"`
	Ops    uint64 `json:"ops"`

	// Heap allocation cost of one sweep (minimum across rounds, measured
	// from runtime.MemStats deltas).
	AllocsPerSweep     uint64 `json:"allocs_per_sweep"`
	AllocBytesPerSweep uint64 `json:"alloc_bytes_per_sweep"`

	// Wall seconds per figure workload (summed over its six
	// configuration cells) in the best round.
	WorkloadWallSeconds map[string]float64 `json:"workload_wall_seconds"`

	// Every round's wall time, for eyeballing host noise.
	RoundWallSeconds []float64 `json:"round_wall_seconds"`
}

// runPerf measures single-worker headline-sweep throughput over several
// rounds, writes the snapshot JSON to out, and — when baseline names a
// previous snapshot — enforces the regression gate against it.
func runPerf(out string, rounds int, seed uint64, gitSHA, cpuProfile, memProfile, baseline string, tolerance float64) error {
	if rounds < 1 {
		rounds = 1
	}
	workloads := append(append([]string{}, spandex.Figure2Workloads()...), spandex.Figure3Workloads()...)
	configs := spandex.ConfigNames()

	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	snap := perfSnapshot{
		Schema:    1,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GitSHA:    gitSHA,
		GoVersion: runtime.Version(),
		Seed:      seed,
		Rounds:    rounds,
	}
	best := -1
	var bestCells []spandex.Cell
	var ms0, ms1 runtime.MemStats
	for r := 0; r < rounds; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		cells := spandex.RunMatrix(nil, workloads, configs, spandex.Options{Seed: seed},
			spandex.MatrixOptions{Workers: 1})
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		for _, c := range cells {
			if c.Err != nil {
				return fmt.Errorf("%s/%s: %w", c.Workload, c.Config, c.Err)
			}
		}
		snap.RoundWallSeconds = append(snap.RoundWallSeconds, wall)
		allocs, bytes := ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc
		if r == 0 || allocs < snap.AllocsPerSweep {
			snap.AllocsPerSweep, snap.AllocBytesPerSweep = allocs, bytes
		}
		if best < 0 || wall < snap.WallSeconds {
			best, snap.WallSeconds, bestCells = r, wall, cells
		}
		fmt.Fprintf(os.Stderr, "perf: round %d/%d wall=%.3fs allocs=%d\n", r+1, rounds, wall, allocs)
	}

	snap.Cells = len(bestCells)
	snap.WorkloadWallSeconds = map[string]float64{}
	for _, c := range bestCells {
		snap.Events += c.Result.Events
		snap.Ops += c.Result.Ops
		snap.WorkloadWallSeconds[c.Workload] += c.Wall.Seconds()
	}
	snap.CellsPerSec = float64(snap.Cells) / snap.WallSeconds
	snap.EventsPerSec = float64(snap.Events) / snap.WallSeconds
	_ = best

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perf: %d cells in %.3fs (%.2f cells/sec, %.1fM events/sec, %d allocs/sweep) -> %s\n",
		snap.Cells, snap.WallSeconds, snap.CellsPerSec, snap.EventsPerSec/1e6, snap.AllocsPerSweep, out)

	if baseline == "" {
		return nil
	}
	return perfGate(snap, baseline, tolerance)
}

// perfGate compares a fresh snapshot against a checked-in baseline and
// fails on >tolerance regression in cells/sec or events/sec throughput,
// or >tolerance growth in allocations per sweep (the one metric that is
// host-independent and so gets no noise allowance beyond the tolerance).
func perfGate(now perfSnapshot, baseline string, tolerance float64) error {
	data, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("perf gate: %w", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("perf gate: %s: %w", baseline, err)
	}
	fail := false
	check := func(metric string, nowV, baseV float64, lowerIsBetter bool) {
		ratio := nowV / baseV
		var regressed bool
		var bound string
		if lowerIsBetter {
			regressed = ratio > 1+tolerance
			bound = fmt.Sprintf("ceiling %.2f", 1+tolerance)
		} else {
			regressed = ratio < 1-tolerance
			bound = fmt.Sprintf("floor %.2f", 1-tolerance)
		}
		status := "ok"
		if regressed {
			status, fail = "REGRESSED", true
		}
		fmt.Printf("perf gate: %-18s now=%.4g baseline=%.4g ratio=%.3f (%s) %s\n",
			metric, nowV, baseV, ratio, bound, status)
	}
	check("cells/sec", now.CellsPerSec, base.CellsPerSec, false)
	check("events/sec", now.EventsPerSec, base.EventsPerSec, false)
	check("allocs/sweep", float64(now.AllocsPerSweep), float64(base.AllocsPerSweep), true)
	if fail {
		return fmt.Errorf("perf gate: regression beyond %.0f%% vs %s", tolerance*100, baseline)
	}
	fmt.Printf("perf gate: within %.0f%% of %s\n", tolerance*100, baseline)
	return nil
}
