package spandex

import (
	"fmt"
	"strings"

	"spandex/internal/config"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/workload"
)

// RenderTable reproduces one of the paper's tables as text. Valid names:
// "I" (coherence strategies), "II" (device request mapping), "III" (LLC
// transitions), "IV" (device external transitions), "V" (cache
// configurations), "VI" (system parameters), "VII" (application
// communication patterns).
func RenderTable(name string) (string, error) {
	switch strings.ToUpper(name) {
	case "I", "1":
		return renderTableI(), nil
	case "II", "2":
		return renderTableII(), nil
	case "III", "3":
		return renderTableIII(), nil
	case "IV", "4":
		return renderTableIV(), nil
	case "V", "5":
		return renderTableV(), nil
	case "VI", "6":
		return renderTableVI(), nil
	case "VII", "7":
		return renderTableVII(), nil
	}
	return "", fmt.Errorf("spandex: unknown table %q (valid: I..VII)", name)
}

func renderTableI() string {
	var b strings.Builder
	b.WriteString("Table I: coherence strategy classification\n")
	fmt.Fprintf(&b, "%-15s %-20s %-15s %-22s\n",
		"Strategy", "Stale invalidation", "Write prop.", "Granularity")
	for _, s := range proto.TableI() {
		fmt.Fprintf(&b, "%-15s %-20s %-15s loads: %s, stores: %s\n",
			s.Name, s.StaleInvalidation, s.WritePropagation,
			s.LoadGranularity, s.StoreGranularity)
	}
	return b.String()
}

func renderTableII() string {
	var b strings.Builder
	b.WriteString("Table II: device request → Spandex request mapping\n")
	rows := []struct{ dev, req, spdx, gran string }{
		{"GPU coherence", "Read", "ReqV", "line"},
		{"GPU coherence", "Write", "ReqWT", "word"},
		{"GPU coherence", "RMW", "ReqWT+data", "word"},
		{"DeNovo", "Read", "ReqV", "flexible"},
		{"DeNovo", "Write", "ReqO", "word"},
		{"DeNovo", "RMW", "ReqO+data", "word"},
		{"DeNovo", "Owned Repl", "ReqWB", "word"},
		{"MESI", "Read", "ReqS", "line"},
		{"MESI", "Write", "ReqO+data", "line"},
		{"MESI", "RMW", "ReqO+data", "line"},
		{"MESI", "Owned Repl", "ReqWB", "line"},
	}
	fmt.Fprintf(&b, "%-15s %-12s %-12s %s\n", "Device", "Request", "Spandex", "Granularity")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-12s %-12s %s\n", r.dev, r.req, r.spdx, r.gran)
	}
	return b.String()
}

func renderTableIII() string {
	var b strings.Builder
	b.WriteString("Table III: Spandex LLC transitions (next state; forward when owned)\n")
	rows := []struct{ req, next, fwd string }{
		{"ReqV", "—", "ReqV"},
		{"ReqS (1)", "S", "ReqS (MESI owner) / RvkO (other owner)"},
		{"ReqS (3)", "O", "ReqO+data"},
		{"ReqWT", "V", "ReqWT"},
		{"ReqO", "O", "ReqO"},
		{"ReqWT+data", "V", "RvkO (blocking)"},
		{"ReqO+data", "O", "ReqO+data"},
		{"ReqWB from owner", "V", "—"},
		{"ReqWB from non-owner", "—", "—"},
	}
	fmt.Fprintf(&b, "%-22s %-6s %s\n", "Request", "Next", "Forward")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-6s %s\n", r.req, r.next, r.fwd)
	}
	return b.String()
}

func renderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: device transitions for external Spandex requests\n")
	rows := []struct{ req, expect, next, rsp string }{
		{"ReqV", "O", "O", "RspV to requestor (NackV if moved on)"},
		{"ReqO", "O", "I", "RspO to requestor"},
		{"ReqO+data", "O", "I", "RspO+data to requestor"},
		{"RvkO", "O", "I", "RspRvkO to LLC"},
		{"Inv", "S", "I", "Ack to LLC"},
		{"ReqS", "O", "S", "RspS to requestor + RspRvkO to LLC"},
	}
	fmt.Fprintf(&b, "%-10s %-9s %-6s %s\n", "Request", "Expected", "Next", "Response")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-9s %-6s %s\n", r.req, r.expect, r.next, r.rsp)
	}
	return b.String()
}

func renderTableV() string {
	var b strings.Builder
	b.WriteString("Table V: simulated cache configurations\n")
	fmt.Fprintf(&b, "%-6s %-10s %-10s %s\n", "Name", "LLC", "CPU L1", "GPU L1")
	for _, c := range Configurations() {
		fmt.Fprintf(&b, "%-6s %-10s %-10s %s\n", c.Name, c.LLC, c.CPU, c.GPU)
	}
	return b.String()
}

func renderTableVI() string {
	p := config.DefaultParams()
	var b strings.Builder
	b.WriteString("Table VI: simulated system parameters\n")
	fmt.Fprintf(&b, "CPU: %d cores @ 2 GHz\n", p.CPUCores)
	fmt.Fprintf(&b, "GPU: %d CUs @ 700 MHz, %d warps per CU\n", p.GPUCUs, p.WarpsPerCU)
	fmt.Fprintf(&b, "L1: %d KB, %d-way, hit %d cycle(s)\n",
		p.L1SizeBytes/1024, p.L1Ways, p.L1HitCPUCycles)
	fmt.Fprintf(&b, "Spandex LLC: %d MB, %d-way, %d cycles\n",
		p.SpandexLLCBytes/(1024*1024), p.SpandexLLCWays, p.L2HitCycles)
	fmt.Fprintf(&b, "Hierarchical: GPU L2 %d MB (%d cycles) + L3 %d MB (%d cycles)\n",
		p.GPUL2Bytes/(1024*1024), p.L2HitCycles, p.L3Bytes/(1024*1024), p.L3HitCycles)
	fmt.Fprintf(&b, "Store buffer: %d entries; MSHRs: %d entries\n",
		p.StoreBufferEntries, p.MSHREntries)
	fmt.Fprintf(&b, "Memory latency: %d cycles; TU lookup: %d cycle(s)\n",
		p.MemLatencyCycles, p.TULatencyCycles)
	fmt.Fprintf(&b, "NoC: %d-wide mesh, %d cycles/hop, %d B/cycle links\n",
		p.NoCMeshWidth, p.NoCHopCycles, p.NoCBytesPerCyc)
	b.WriteString("(Latency values are representative; the published table was corrupted\n" +
		" in the source text — see DESIGN.md §2.)\n")
	return b.String()
}

// RenderLatency renders a traced Result's latency attribution as text: a
// per-class quantile table (log-bucketed, so quantiles are bucket upper
// bounds) followed by the per-phase wait breakdown. The phase columns of
// each class sum exactly to its total cycles — the recorder closes one
// phase interval per event, so no wait time is dropped or double-counted.
// Requires Options.TraceLatency; occupancy series (Options.TraceOccupancy)
// are summarized by sample count only.
func RenderLatency(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Request latency: %s on %s\n", res.Workload, res.Config)
	r := res.Latency
	if r == nil {
		b.WriteString("(no data: run with Options.TraceLatency)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %10s %10s %12s\n",
		"class", "count", "mean", "p50", "p90", "p99", "max")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-8s %10d %12.0f %10d %10d %10d %12d\n",
			c.Class, c.Count, c.Mean, c.P50, c.P90, c.P99, c.Max)
	}
	if r.Unfinished > 0 {
		fmt.Fprintf(&b, "(%d requests still in flight at quiescence)\n", r.Unfinished)
	}
	b.WriteString("\nPhase breakdown (ticks; 1 CPU cycle = 500 ticks):\n")
	fmt.Fprintf(&b, "%-8s", "class")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fmt.Fprintf(&b, " %12s", p.String())
	}
	fmt.Fprintf(&b, " %14s\n", "total")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "%-8s", c.Class)
		for _, v := range c.Phases {
			fmt.Fprintf(&b, " %12d", v)
		}
		fmt.Fprintf(&b, " %14d\n", c.TotalTicks)
	}
	if len(r.Occupancy) > 0 {
		b.WriteString("\nOccupancy series (node/resource: samples, peak):\n")
		for _, s := range r.Occupancy {
			var peak uint64
			for _, pt := range s.Points {
				if pt.Value > peak {
					peak = pt.Value
				}
			}
			fmt.Fprintf(&b, "  node%-3d %-10s %6d samples, peak %d\n",
				s.Node, s.Res, len(s.Points), peak)
		}
	}
	return b.String()
}

func renderTableVII() string {
	var b strings.Builder
	b.WriteString("Table VII: workload communication patterns and parameters\n")
	names := append(append([]string{}, workload.Microbenchmarks()...), workload.Applications()...)
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			continue
		}
		m := w.Meta()
		fmt.Fprintf(&b, "%-12s %-10s part: %-5s sync: %-28s sharing: %-13s locality: %s\n",
			m.Name, m.Suite, m.Partitioning, m.Synchronization, m.Sharing, m.Locality)
		fmt.Fprintf(&b, "%-12s %-10s %s\n", "", "", m.Params)
	}
	return b.String()
}
