# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact gate
# contributors are held to on push/PR.

GO ?= go

.PHONY: ci build vet fmt test race smoke bench clean

ci: build vet fmt test race smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

# FastParams-sized race gate: -short skips the full-size figure sweeps but
# keeps the parallel sweep runner tests, which are the point.
race:
	$(GO) test -race -short ./...

# Full evaluation path: every (workload, config) cell validated against
# its oracle, then sampled cells re-checked for bit-identical results
# under contention.
smoke:
	$(GO) run ./cmd/spandex-bench -headline -parallel 4 -validate
	$(GO) run ./cmd/spandex-bench -verify-determinism -parallel 4

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
