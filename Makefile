# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact gate
# contributors are held to on push/PR.

GO ?= go

.PHONY: ci build vet fmt lint test race smoke check bench clean

ci: build vet fmt lint test race smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project analyzers (cmd/spandex-lint): determinism, protostate, mutafter.
lint:
	$(GO) run ./cmd/spandex-lint ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

# FastParams-sized race gate: -short skips the full-size figure sweeps but
# keeps the parallel sweep runner tests, which are the point.
race:
	$(GO) test -race -short ./...

# Full evaluation path: every (workload, config) cell validated against
# its oracle, then sampled cells re-checked for bit-identical results
# under contention.
smoke:
	$(GO) run ./cmd/spandex-bench -headline -parallel 4 -validate
	$(GO) run ./cmd/spandex-bench -verify-determinism -parallel 4

# Invariant-checked smoke: litmus plus one headline workload per figure
# under -check (per-transition SWMR/disjointness audit on every LLC state
# change); any violation exits non-zero.
check:
	$(GO) run ./cmd/spandex-sim -config SDD -workload litmus -check
	$(GO) run ./cmd/spandex-sim -config SMD -workload litmus -check
	$(GO) run ./cmd/spandex-sim -config SDD -workload pr -check

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
