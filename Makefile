# Local mirror of .github/workflows/ci.yml: `make ci` runs the exact gate
# contributors are held to on push/PR.

GO ?= go

.PHONY: ci build vet fmt lint test race smoke check bench bench-json \
	bench-gate clean \
	transgraph transgraph-check mcheck mcheck-smoke mcheck-baseline \
	mutants crosscheck \
	trace-smoke trace-overhead metrics-smoke fuzz fuzz-mutants corpus \
	flow flow-check flow-mutants indep indep-check scale-smoke

ci: build vet fmt lint test race smoke check transgraph-check flow-check \
	indep-check flow-mutants mcheck-smoke mutants trace-smoke metrics-smoke \
	fuzz fuzz-mutants scale-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project analyzers (cmd/spandex-lint): determinism, protostate, mutafter,
# poolret, annref.
lint:
	$(GO) run ./cmd/spandex-lint ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

# FastParams-sized race gate: -short skips the full-size figure sweeps but
# keeps the parallel sweep runner tests, which are the point.
race:
	$(GO) test -race -short ./...

# Full evaluation path: every (workload, config) cell validated against
# its oracle, then sampled cells re-checked for bit-identical results
# under contention.
smoke:
	$(GO) run ./cmd/spandex-bench -headline -parallel 4 -validate
	$(GO) run ./cmd/spandex-bench -verify-determinism -parallel 4

# Invariant-checked smoke: litmus plus one headline workload per figure
# under -check (per-transition SWMR/disjointness audit on every LLC state
# change); any violation exits non-zero.
check:
	$(GO) run ./cmd/spandex-sim -config SDD -workload litmus -check
	$(GO) run ./cmd/spandex-sim -config SMD -workload litmus -check
	$(GO) run ./cmd/spandex-sim -config SDD -workload pr -check

bench:
	$(GO) test -bench=. -benchmem ./...

# Checked-in benchmark snapshot: measures single-worker headline-sweep
# throughput and writes BENCH_<date>_<shortsha>.json at the repo root.
# Commit the file to extend the performance trajectory.
bench-json:
	./scripts/bench_snapshot.sh

# Perf-regression gate (the CI bench-gate job): re-measure and fail on
# >10% regression vs the newest checked-in BENCH_*.json.
bench-gate:
	./scripts/bench_gate.sh

# Regenerate docs/transitions/ (static transition graphs, JSON + DOT).
transgraph:
	$(GO) run ./cmd/spandex-transgraph

# Freshness gate: the checked-in graphs must match the source byte-for-byte.
transgraph-check:
	$(GO) run ./cmd/spandex-transgraph -check

# Regenerate docs/msgflow/ (whole-system message-flow graph, JSON + DOT)
# and run the three global checks: completeness (every emitted message
# handled at every reachable receiver state or proven unreachable),
# deadlock-freedom (no dependency cycle made entirely of deferrable hops),
# and stall-safety (every blocking wait has a progress supplier).
flow:
	$(GO) run ./cmd/spandex-flow

# Freshness gate: checked-in flow graph must match the source, and the
# three checks must report zero violations.
flow-check:
	$(GO) run ./cmd/spandex-flow -check

# Regenerate the derived independence facts the model checker's
# partial-order reduction consumes (docs/indep + internal/mcheck/
# indep_tables.go).
indep:
	$(GO) run ./cmd/spandex-indep

# Freshness gate: a protocol change that moves the derived guard /
# settled-local / memSoleClient facts fails CI until the artifacts — and
# the reduction's soundness assumptions — are regenerated and re-reviewed.
indep-check:
	$(GO) run ./cmd/spandex-indep -check

# Static mutation detection: each seeded protocol bug, mirrored on the
# flow graph, must surface as at least one violation.
flow-mutants:
	$(GO) run ./cmd/spandex-flow -mutate dropinvack
	$(GO) run ./cmd/spandex-flow -mutate skiprvko

# Exhaustive model check: every CPU×GPU protocol pairing, every scenario,
# all message interleavings up to the state budget.
mcheck:
	$(GO) run ./cmd/spandex-mcheck

# CI-budgeted model check (~1 min): every pairing × scenario under the
# full reduction, gated against the checked-in state/runtime baseline,
# then the static-vs-dynamic coverage cross-check on what the runs
# observed.
mcheck-smoke:
	$(GO) run ./cmd/spandex-mcheck -coverage-out /tmp/mcheck-cov.json \
		-json /tmp/mcheck-stats.json -baseline docs/mcheck/baseline.json
	$(GO) run ./cmd/spandex-transgraph -diff /tmp/mcheck-cov.json

# Refresh the checked-in mcheck state/runtime baseline (docs/mcheck/).
# Run after a reviewed protocol or scenario change trips the gate.
mcheck-baseline:
	$(GO) run ./cmd/spandex-mcheck -json docs/mcheck/baseline.json

# Observability smoke: export a Perfetto/Chrome timeline from a traced
# run, re-validate the file (JSON loads, every async slice closed, ends
# after begins), and render a latency-attribution summary.
trace-smoke:
	$(GO) run ./cmd/spandex-trace -mode export -workload indirection -config SDD -o /tmp/spandex-trace.json
	$(GO) run ./cmd/spandex-trace -mode validate -in /tmp/spandex-trace.json
	$(GO) run ./cmd/spandex-trace -mode summarize -workload indirection -config SDD

# Report-only perf guard: tracing-disabled runs must stay within ~2% of
# the parent commit's wall time (instrumentation reduces to nil checks).
trace-overhead:
	./scripts/trace_overhead.sh

# Metrics-engine smoke: run a cell with every metrics knob on, render the
# summary and heatmap, export the JSONL dump, re-validate it, and check
# two runs against each other with the summary differ (must report
# bit-identical measurements).
metrics-smoke:
	$(GO) run ./cmd/spandex-metrics -workload indirection -config SDD
	$(GO) run ./cmd/spandex-metrics -mode heatmap -workload indirection -config SDD
	$(GO) run ./cmd/spandex-metrics -mode export -format jsonl -workload indirection -config SDD -o /tmp/spandex-metrics.jsonl
	$(GO) run ./cmd/spandex-metrics -mode validate -in /tmp/spandex-metrics.jsonl
	rm -f /tmp/spandex-summary.jsonl
	$(GO) run ./cmd/spandex-trace -mode summarize -workload indirection -config SDD -summary-out /tmp/spandex-summary.jsonl
	$(GO) run ./cmd/spandex-trace -mode summarize -workload indirection -config SDD -diff /tmp/spandex-summary.jsonl | grep -q "bit-identical"

# Scalability smoke: the N-device/banked-LLC/mesh test surface (64-device
# serial-vs-parallel determinism, legacy 9x6 fingerprint pins, per-bank
# determinism, topology timing-only), then a validated scalemix sweep of
# one Spandex config across the 8..64-device ScaleParams points.
scale-smoke:
	$(GO) test -run 'TestScale|TestLegacyFingerprintsPinned|TestBankedDeterminism|TestTopologyChangesTimingOnly' .
	$(GO) run ./cmd/spandex-bench -scale -scale-configs SDD -validate

# Mutation detection: re-arm two seeded protocol bugs (drop invalidation
# ack, skip RvkO forward) behind the spandexmut build tag and require the
# model checker to catch each with a concrete interleaving trace.
mutants:
	$(GO) test -tags spandexmut ./internal/mcheck -run TestMutation

# Differential conformance fuzzing (CI-budgeted): a fixed seed range of
# random DRF programs, each run on all six configurations and required to
# behave observationally identically; a second pass shrinks every cache to
# a few lines (-pressure) so evictions and write-backs dominate — the
# regime that exposed the stale-RspRvkO, MPutM-window, and Inv-overtaking-
# grant races. Every (state, message) pair either pass observed is then
# cross-checked against the static transition graph.
fuzz:
	$(GO) run ./cmd/spandex-fuzz -seeds 0:2000 -coverage-out /tmp/fuzz-cov.json
	$(GO) run ./cmd/spandex-fuzz -seeds 0:500 -pressure -coverage-out /tmp/fuzz-pressure-cov.json
	$(GO) run ./cmd/spandex-fuzz -seeds 0:500 -banks 2 -pressure -coverage-out /tmp/fuzz-banked-cov.json
	$(GO) run ./cmd/spandex-transgraph -diff /tmp/fuzz-cov.json,/tmp/fuzz-pressure-cov.json,/tmp/fuzz-banked-cov.json

# Fuzzer mutation detection: with each seeded protocol bug armed, the
# fuzzer must find, shrink, and deterministically replay a failing case
# within the seed budget (also asserted as go tests for CI visibility).
fuzz-mutants:
	$(GO) run -tags spandexmut ./cmd/spandex-fuzz -mutate dropinvack -seeds 0:500 -out /tmp/conform-mutants
	$(GO) run -tags spandexmut ./cmd/spandex-fuzz -mutate skiprvko -seeds 0:500 -out /tmp/conform-mutants
	$(GO) test -tags spandexmut ./internal/conform -run TestMutant

# Regenerate the checked-in litmus corpus (testdata/conform/) from
# internal/conform/corpus.go.
corpus:
	$(GO) run ./cmd/spandex-fuzz -write-corpus testdata/conform

# Full cross-check: headline sweep coverage + mcheck coverage vs the
# statically extracted LLC graph.
crosscheck:
	$(GO) run ./cmd/spandex-bench -headline -parallel 4 -coverage-out /tmp/sweep-cov.json
	$(GO) run ./cmd/spandex-mcheck -coverage-out /tmp/mcheck-cov.json
	$(GO) run ./cmd/spandex-transgraph -diff /tmp/sweep-cov.json,/tmp/mcheck-cov.json

clean:
	$(GO) clean ./...
