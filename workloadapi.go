package spandex

import (
	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/workload"
)

// This file re-exports the workload-authoring API so users can define
// their own access-pattern programs against the simulated machines (see
// examples/customworkload).

type (
	// Thread is the handle a program body uses to issue memory operations.
	Thread = workload.Thread
	// Meta describes a workload's communication pattern (Table VII form).
	Meta = workload.Meta
	// Barrier is a sense-reversing barrier over two memory words.
	Barrier = workload.Barrier
	// Layout carves the simulated address space into regions.
	Layout = workload.Layout
	// WordInit seeds one word of memory before execution.
	WordInit = workload.WordInit
	// Addr is a byte address in the simulated address space.
	Addr = memaddr.Addr
	// OpStream is a per-thread operation stream.
	OpStream = device.OpStream
	// Rand is the deterministic PRNG used by workloads.
	Rand = workload.Rand
	// AtomicKind selects an RMW operation.
	AtomicKind = proto.AtomicKind
	// Time is simulated time in ticks (1 tick = 1 ps).
	Time = sim.Time
)

// RMW operation kinds.
const (
	AtomicFetchAdd = proto.AtomicFetchAdd
	AtomicExchange = proto.AtomicExchange
	AtomicCAS      = proto.AtomicCAS
	AtomicRead     = proto.AtomicRead
	AtomicMin      = proto.AtomicMin
)

// GoThread runs body as a coroutine and returns its operation stream.
func GoThread(body func(t *Thread)) OpStream { return workload.Go(body) }

// NewLayout starts a fresh address-space layout.
func NewLayout() *Layout { return workload.NewLayout() }

// NewRand seeds a deterministic generator.
func NewRand(seed uint64) *Rand { return workload.NewRand(seed) }

// WordAddr returns the address of word i in a region starting at base.
func WordAddr(base Addr, i int) Addr { return workload.Word(base, i) }

// RegisterWorkload adds a workload to the registry used by WorkloadByName
// and the benchmark harness.
func RegisterWorkload(w Workload) { workload.Register(w) }

// Observe installs a structured event sink on the system's observability
// recorder, creating the recorder on first use. Multiple sinks compose
// (each receives every event). Install before running. Observation is
// passive: it cannot change simulated behaviour or Result.Fingerprint.
func (s *System) Observe(sink TraceEventSink) {
	r := s.ensureObserver()
	s.nameNodes(sink)
	if cur := r.Sink(); cur != nil {
		r.SetSink(obs.Tee(cur, sink))
	} else {
		r.SetSink(sink)
	}
}

// TraceMessages installs fn to observe every coherence message at its
// delivery time — the hook behind examples/protocoltrace. Install before
// running; msg is the message's human-readable form.
//
// Deprecated: TraceMessages is a thin string-formatting adapter kept for
// compatibility; it now rides on the structured sink. New code should use
// Observe and watch EvMsgDeliver events (or Options.TraceSink), which
// avoids formatting a string per message and carries the full message.
func (s *System) TraceMessages(fn func(tick uint64, msg string)) {
	s.Observe(obs.FuncSink(func(ev obs.Event) {
		if ev.Kind != obs.EvMsgDeliver {
			return
		}
		// The string form is built here, inside the installed sink, so
		// runs without a trace pay nothing per message.
		fn(uint64(ev.At), ev.Msg.String())
	}))
}
