package spandex

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"

	"spandex/internal/obs"
)

// obsCell is one (workload, config) cell of the headline matrix.
type obsCell struct{ workload, config string }

// obsMatrix returns the full headline matrix: every Figure 2 and Figure 3
// workload across every Table V configuration (9×6). In -short mode it
// shrinks to one microbenchmark and one application across all configs.
func obsMatrix() []obsCell {
	workloads := append(append([]string{}, Figure2Workloads()...), Figure3Workloads()...)
	if testing.Short() {
		workloads = []string{"indirection", "tqh"}
	}
	var cells []obsCell
	for _, w := range workloads {
		for _, c := range ConfigNames() {
			cells = append(cells, obsCell{w, c})
		}
	}
	return cells
}

// runObsCell runs one cell. When traced, every observability knob is on —
// the latency phase machine, occupancy sampling, a JSONL sink streaming to
// io.Discard so the full event-serialization path executes, and every
// metrics collector.
func runObsCell(cl obsCell, traced bool) (Result, error) {
	w, err := WorkloadByName(cl.workload)
	if err != nil {
		return Result{}, err
	}
	p := FastParams()
	opt := Options{ConfigName: cl.config, Params: &p, Seed: 7}
	if traced {
		opt.TraceLatency = true
		opt.TraceOccupancy = true
		opt.TraceSink = NewJSONLTraceSink(io.Discard)
		opt.Metrics = AllMetrics()
	}
	return Run(w, opt)
}

// runObsMatrix runs every cell concurrently (one goroutine per cell,
// bounded by GOMAXPROCS) and returns the results in cell order.
func runObsMatrix(t *testing.T, cells []obsCell, traced bool) []Result {
	t.Helper()
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, cl := range cells {
		wg.Add(1)
		go func(i int, cl obsCell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = runObsCell(cl, traced)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("%s/%s: %v", cells[i].workload, cells[i].config, err)
		}
	}
	return results
}

// TestObserverNeutrality is the acceptance gate for the observability
// layer: enabling every Trace* knob must leave Result.Fingerprint
// bit-identical to a bare run, for every cell of the full headline matrix,
// with traced cells executed both under goroutine contention and serially.
// Tracing observes; it never perturbs.
func TestObserverNeutrality(t *testing.T) {
	cells := obsMatrix()
	bare := runObsMatrix(t, cells, false)
	traced := runObsMatrix(t, cells, true)
	for i, cl := range cells {
		if bare[i].Fingerprint() != traced[i].Fingerprint() {
			t.Errorf("%s/%s: traced fingerprint %#x != bare %#x — tracing perturbed the run",
				cl.workload, cl.config, traced[i].Fingerprint(), bare[i].Fingerprint())
		}
		if traced[i].Latency == nil {
			t.Errorf("%s/%s: traced run has no latency report", cl.workload, cl.config)
		} else if traced[i].Latency.Requests == 0 {
			t.Errorf("%s/%s: latency report tracked zero requests", cl.workload, cl.config)
		}
		if bare[i].Latency != nil {
			t.Errorf("%s/%s: bare run unexpectedly produced a latency report", cl.workload, cl.config)
		}
		if traced[i].Metrics == nil {
			t.Errorf("%s/%s: traced run has no metrics report", cl.workload, cl.config)
		} else if len(traced[i].Metrics.Links) == 0 {
			t.Errorf("%s/%s: metrics report saw no link traffic", cl.workload, cl.config)
		}
		if bare[i].Metrics != nil {
			t.Errorf("%s/%s: bare run unexpectedly produced a metrics report", cl.workload, cl.config)
		}
	}
	// Serial spot-check: parallel execution of the traced runs above must
	// not have influenced them either — re-running a sample of cells alone
	// in this goroutine yields the same fingerprints.
	sample := []int{0, len(cells) / 2, len(cells) - 1}
	for _, i := range sample {
		res, err := runObsCell(cells[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fingerprint() != traced[i].Fingerprint() {
			t.Errorf("%s/%s: serial traced fingerprint differs from parallel traced run",
				cells[i].workload, cells[i].config)
		}
	}
}

// TestPhaseReconciliation checks the central latency-attribution
// invariant: for every operation class, the per-phase breakdown sums
// exactly to the end-to-end latency total — the phase machine closes one
// interval per event, so no tick is dropped or double-counted — and no
// request is left unfinished at quiescence.
func TestPhaseReconciliation(t *testing.T) {
	for _, wname := range []string{"indirection", "tqh"} {
		for _, cname := range ConfigNames() {
			t.Run(wname+"/"+cname, func(t *testing.T) {
				res, err := runObsCell(obsCell{wname, cname}, true)
				if err != nil {
					t.Fatal(err)
				}
				r := res.Latency
				if r == nil {
					t.Fatal("no latency report")
				}
				if r.Unfinished != 0 {
					t.Errorf("%d requests unfinished at quiescence", r.Unfinished)
				}
				var total uint64
				for _, c := range r.Classes {
					if got, want := c.PhaseSum(), c.TotalTicks; got != want {
						t.Errorf("class %s: phase sum %d != total %d (off by %d)",
							c.Class, got, want, int64(got)-int64(want))
					}
					if c.Count == 0 {
						t.Errorf("class %s present with zero count", c.Class)
					}
					if c.Max < c.P99 || c.P99 < c.P50 {
						t.Errorf("class %s: quantiles not monotonic: p50=%d p99=%d max=%d",
							c.Class, c.P50, c.P99, c.Max)
					}
					total += c.Count
				}
				if total != r.Requests {
					t.Errorf("class counts sum to %d, report says %d requests", total, r.Requests)
				}
			})
		}
	}
}

// TestChromeExportValidates runs traced cells with the Chrome trace-event
// sink and requires the exported file to pass the same well-formedness
// validation CI applies: valid JSON, every async slice closed, ends after
// begins. It also checks the node-name metadata made it in.
func TestChromeExportValidates(t *testing.T) {
	for _, cl := range []obsCell{{"indirection", "SDD"}, {"tqh", "HMG"}} {
		t.Run(cl.workload+"/"+cl.config, func(t *testing.T) {
			w, err := WorkloadByName(cl.workload)
			if err != nil {
				t.Fatal(err)
			}
			p := FastParams()
			sink := NewChromeTraceSink()
			_, err = Run(w, Options{ConfigName: cl.config, Params: &p, Seed: 7,
				TraceLatency: true, TraceOccupancy: true, TraceSink: sink})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sink.Close(&buf); err != nil {
				t.Fatal(err)
			}
			if err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("exported trace fails validation: %v", err)
			}
			for _, label := range []string{"process_name", "cpu0"} {
				if !strings.Contains(buf.String(), label) {
					t.Errorf("exported trace missing %q", label)
				}
			}
		})
	}
}

// TestObserveTees checks that System.Observe composes: two sinks
// installed one after the other both see the full event stream.
func TestObserveTees(t *testing.T) {
	run := func(nsinks int) []int {
		sys, err := NewSystem(Options{ConfigName: "SDD"})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, nsinks)
		for i := 0; i < nsinks; i++ {
			i := i
			sys.Observe(obs.FuncSink(func(obs.Event) { counts[i]++ }))
		}
		prog := &Program{}
		lay := NewLayout()
		addr := lay.Words(4)
		prog.CPU = append(prog.CPU, GoThread(func(th *Thread) {
			th.Store(WordAddr(addr, 0), 1)
			th.Fence(true, true)
			_ = th.Load(WordAddr(addr, 1))
		}))
		defer prog.Close()
		if err := sys.Attach(prog); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(0); err != nil {
			t.Fatal(err)
		}
		return counts
	}
	counts := run(2)
	if counts[0] == 0 {
		t.Fatal("observer saw no events")
	}
	if counts[0] != counts[1] {
		t.Fatalf("teed sinks diverge: %d vs %d events", counts[0], counts[1])
	}
}

// TestRenderLatency smoke-checks the report renderer on a traced and an
// untraced result.
func TestRenderLatency(t *testing.T) {
	res, err := runObsCell(obsCell{"indirection", "SDD"}, true)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderLatency(res)
	for _, frag := range []string{"Request latency", "indirection", "SDD", "load", "Phase breakdown", "DRAM"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered latency report missing %q:\n%s", frag, out)
		}
	}
	bare, err := runObsCell(obsCell{"indirection", "SDD"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderLatency(bare); !strings.Contains(out, "no data") {
		t.Errorf("untraced render should point at Options.TraceLatency:\n%s", out)
	}
}

// TestJSONLExportShape runs one traced cell through the JSONL sink and
// checks the stream is one well-formed JSON object per line with the
// documented field names.
func TestJSONLExportShape(t *testing.T) {
	w, err := WorkloadByName("indirection")
	if err != nil {
		t.Fatal(err)
	}
	p := FastParams()
	var buf bytes.Buffer
	sink := NewJSONLTraceSink(&buf)
	if _, err := Run(w, Options{ConfigName: "SDD", Params: &p, Seed: 7, TraceSink: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("suspiciously few events: %d", len(lines))
	}
	var sawIssue, sawDeliver bool
	for i, ln := range lines {
		if !strings.HasPrefix(ln, `{"at":`) {
			t.Fatalf("line %d does not open with the at field: %s", i, ln)
		}
		if strings.Contains(ln, `"ev":"OpIssue"`) {
			sawIssue = true
		}
		if strings.Contains(ln, `"ev":"MsgDeliver"`) {
			sawDeliver = true
		}
	}
	if !sawIssue || !sawDeliver {
		t.Fatalf("stream missing event kinds: issue=%v deliver=%v", sawIssue, sawDeliver)
	}
}

// benchTracing times one headline cell with the observability layer in a
// given state. The Disabled/Enabled pair is what the CI overhead guard
// reports: disabled must stay within noise of the pre-instrumentation
// baseline (the instrumented sites reduce to nil checks), enabled shows
// the cost a user opts into.
func benchTracing(b *testing.B, traced bool) {
	w, err := WorkloadByName("indirection")
	if err != nil {
		b.Fatal(err)
	}
	p := FastParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := Options{ConfigName: "SDD", Params: &p, Seed: 7}
		if traced {
			opt.TraceLatency = true
			opt.TraceOccupancy = true
			opt.TraceSink = NewJSONLTraceSink(io.Discard)
		}
		if _, err := Run(w, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunTracingDisabled(b *testing.B) { benchTracing(b, false) }
func BenchmarkRunTracingEnabled(b *testing.B)  { benchTracing(b, true) }

// benchMetrics times the same cell with only the metrics engine toggled
// (no latency machine, no sink), isolating its cost: the disabled case is
// the near-zero-overhead guarantee (nil-check sites only), the enabled
// case is what a metrics run opts into.
func benchMetrics(b *testing.B, on bool) {
	w, err := WorkloadByName("indirection")
	if err != nil {
		b.Fatal(err)
	}
	p := FastParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := Options{ConfigName: "SDD", Params: &p, Seed: 7}
		if on {
			opt.Metrics = AllMetrics()
		}
		if _, err := Run(w, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMetricsDisabled(b *testing.B) { benchMetrics(b, false) }
func BenchmarkRunMetricsEnabled(b *testing.B)  { benchMetrics(b, true) }
