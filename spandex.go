// Package spandex is a simulator-backed reproduction of "Spandex: A
// Flexible Interface for Efficient Heterogeneous Coherence" (Alsop,
// Sinclair, Adve — ISCA 2018).
//
// The package assembles heterogeneous CPU-GPU systems in any of the
// paper's six cache configurations (Table V): a flat Spandex LLC directly
// interfacing MESI, DeNovo and GPU-coherence caches through per-device
// translation units, or the conventional hierarchical MESI baseline (CPU
// MESI L1s and an intermediate GPU L2 under a MESI L3 directory). Systems
// execute workload programs — the paper's microbenchmarks and
// collaborative applications live in internal/workload — on a
// deterministic discrete-event simulator, reporting execution time and
// network traffic broken down by request class exactly as the paper's
// Figures 2 and 3 do.
//
// Basic use:
//
//	w, _ := spandex.WorkloadByName("pr")
//	res, err := spandex.Run(w, spandex.Options{ConfigName: "SDD"})
//	fmt.Println(res.ExecTime, res.Traffic.TotalBytes(false))
package spandex

import (
	"fmt"

	"spandex/internal/config"
	"spandex/internal/core"
	"spandex/internal/denovo"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/gpucoh"
	"spandex/internal/hmesi"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
	"spandex/internal/workload"
)

// Re-exported configuration types.
type (
	// CacheConfig selects the LLC organization and L1 protocols (Table V).
	CacheConfig = config.CacheConfig
	// SystemParams sets sizes and latencies (Table VI).
	SystemParams = config.SystemParams
	// DeviceSpec is one homogeneous group of requestor devices
	// (SystemParams.Devices).
	DeviceSpec = config.DeviceSpec
	// DeviceClass names the kind of requestor a DeviceSpec instantiates.
	DeviceClass = config.DeviceClass
	// NoCTopology selects the interconnect model (SystemParams.Topology).
	NoCTopology = config.NoCTopology
	// Workload builds runnable programs.
	Workload = workload.Workload
	// Program is a built per-thread program.
	Program = workload.Program
	// Machine describes the simulated machine shape.
	Machine = workload.Machine

	// TraceEvent is one observability event (internal/obs): an operation
	// issue/completion, a message send/delivery, an LLC block/unblock/
	// forward, or an occupancy sample.
	TraceEvent = obs.Event
	// TraceEventSink consumes observability events as the simulation runs.
	TraceEventSink = obs.Sink
	// LatencyReport is the per-run latency attribution (Result.Latency).
	LatencyReport = obs.LatencyReport
)

// Configurations returns the paper's six cache configurations.
func Configurations() []CacheConfig { return config.TableV() }

// ConfigByName resolves a Table V configuration name (HMG … SDD).
func ConfigByName(name string) (CacheConfig, error) { return config.ByName(name) }

// DefaultParams returns the Table VI system parameters.
func DefaultParams() SystemParams { return config.DefaultParams() }

// FastParams returns a shrunken system for quick tests.
func FastParams() SystemParams { return config.FastParams() }

// Re-exported device-class and topology selectors.
const (
	ClassCPU = config.ClassCPU
	ClassGPU = config.ClassGPU

	TopoDirect = config.TopoDirect
	TopoMesh   = config.TopoMesh
	TopoRing   = config.TopoRing
)

// ScaleParams builds a scaled system: nCPU CPU-class and nGPU GPU-class
// requestors on a 2D-mesh NoC over a bank-sharded LLC (banks <= 0 picks
// one bank per 8 requestors, minimum 2).
func ScaleParams(nCPU, nGPU, banks int) SystemParams {
	return config.ScaleParams(nCPU, nGPU, banks)
}

// WorkloadByName resolves a registered workload ("indirection", "bc", …).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// WorkloadNames lists all registered workloads.
func WorkloadNames() []string { return workload.Names() }

// Options configures a run.
type Options struct {
	// Config selects the cache configuration; ConfigName is a convenient
	// alternative and wins when non-empty.
	Config     CacheConfig
	ConfigName string
	// Params defaults to DefaultParams().
	Params *SystemParams
	// Seed feeds the workload's deterministic PRNG.
	Seed uint64
	// CheckInvariants enables the Spandex LLC coherence checker and the
	// post-run quiescence audit (Spandex configurations only).
	CheckInvariants bool
	// CheckEveryTransition additionally audits SWMR single-owner and
	// owned/sharer disjointness on every LLC state change, and the MESI
	// TUs' transient bookkeeping after every message. Implies
	// CheckInvariants. Violations are collected into Result.Violations
	// (and fail the run) instead of panicking mid-simulation, so a sweep
	// reports them per-point. Measured cost is a few percent of CPU time
	// on the headline matrix; see EXPERIMENTS.md.
	CheckEveryTransition bool
	// ReqSOption2 switches the Spandex LLC to Table III's ReqS option (2)
	// (treat reads as ReqV; requestors downgrade after reading). The
	// evaluation default is options (1)/(3); this knob drives the
	// ReqS-policy ablation.
	ReqSOption2 bool
	// RecordTransitions piggy-backs a (state, message) coverage recorder on
	// the LLC's transition auditing: every pair the LLC processes is
	// counted into Result.Transitions, the dynamic half of the
	// transition-graph cross-check (cmd/spandex-transgraph -diff). Also
	// enabled implicitly by CheckEveryTransition.
	RecordTransitions bool
	// Validate runs the workload's final-state oracle after the run.
	Validate bool
	// MaxTime aborts runs that exceed this simulated time (0 = 100 ms).
	MaxTime sim.Time
	// TraceLatency enables request-lifecycle tracking: every core/CU memory
	// operation gets a request id threaded through the protocol messages it
	// generates, and the per-phase wait breakdown (network, LLC, blocked,
	// owner indirection, DRAM) is aggregated into Result.Latency. Tracing
	// observes and never perturbs: Result.Fingerprint is bit-identical with
	// every Trace* knob on or off (test-enforced).
	TraceLatency bool
	// TraceOccupancy additionally samples L1 MSHR and LLC transaction-table
	// occupancy into Result.Latency.Occupancy time series.
	TraceOccupancy bool
	// TraceSink, when non-nil, receives every observability event as the
	// simulation runs (see NewJSONLTraceSink and NewChromeTraceSink for
	// ready-made exporters). Independent of TraceLatency/TraceOccupancy.
	TraceSink TraceEventSink
	// Metrics, when non-nil, enables the system-level metrics engine:
	// deterministic cycle-bucketed time series (NoC utilization and
	// queuing, LLC occupancy and contention, DRAM bandwidth and row
	// counts) plus the per-line sharing history behind the heatmaps, all
	// aggregated into Result.Metrics. Use AllMetrics() to enable every
	// collector with default sizing. Like tracing, metrics observe and
	// never perturb: Result.Fingerprint is bit-identical with any
	// combination of collectors on or off (test-enforced).
	Metrics *MetricsOptions
}

// Result reports one run's measurements.
type Result struct {
	Config   string
	Workload string
	// ExecTime is when the last thread finished.
	ExecTime sim.Time
	// Traffic is interconnect traffic by request class (Figures 2 and 3).
	Traffic stats.Traffic
	// Counters carries protocol-internal event counts.
	Counters map[string]uint64
	// Ops is the total device operations executed.
	Ops uint64
	// Events is the number of engine events fired during the run. It is a
	// throughput denominator (events/sec in BENCH_*.json), not simulated
	// behaviour, so it is excluded from Fingerprint: pooling and event-
	// structure changes in the engine may alter it while the simulated
	// machine stays bit-identical.
	Events uint64
	// MemHash is a deterministic hash of the final DRAM image (captured
	// at quiescence, before any validation reads). Together with ExecTime,
	// Traffic, Counters and Ops it fingerprints a run for determinism
	// verification; see Result.Fingerprint.
	MemHash uint64
	// Violations lists every coherence invariant the checker saw broken
	// during the run (CheckInvariants/CheckEveryTransition), each carrying
	// the cycle, line address and (LLC state, message) context needed to
	// reproduce it standalone. A non-empty list also makes Run return an
	// error; the list is carried here so callers can report each violation,
	// not just the first. The list is capped (core.DefaultMaxViolations);
	// ViolationsDropped counts the overflow.
	Violations []Violation
	// ViolationsDropped counts violations discarded past the cap.
	ViolationsDropped int
	// Transitions maps "state|msg" to the number of times the LLC
	// processed that (state, message) pair (Options.RecordTransitions).
	Transitions map[string]uint64
	// Latency is the request-latency attribution (Options.TraceLatency /
	// TraceOccupancy). It is deliberately excluded from Fingerprint: the
	// fingerprint hashes simulated behaviour, and tracing must not change
	// it.
	Latency *LatencyReport
	// Metrics is the system-level metrics report (Options.Metrics): time
	// series, contention telemetry and the per-line sharing history. Like
	// Latency it is excluded from Fingerprint — metrics observe simulated
	// behaviour, they are not part of it.
	Metrics *MetricsReport
}

// Violation is one failed coherence invariant with reproduction context.
type Violation = core.Violation

// ExecMillis returns the execution time in milliseconds of simulated time.
func (r Result) ExecMillis() float64 { return float64(r.ExecTime) / 1e9 }

// System is an assembled simulated machine. Most callers use Run; building
// a System directly allows custom devices and instrumentation (see
// examples/customworkload and examples/protocoltrace).
type System struct {
	Engine *sim.Engine
	Stats  *stats.Stats
	Net    *noc.Network
	Mem    *dram.Memory

	cfg    CacheConfig
	params SystemParams

	// Spandex organization. LLC is bank 0; Banks lists every bank of the
	// address-interleaved LLC array (length 1 for the paper's flat LLC).
	LLC      *core.LLC
	Banks    []*core.LLC
	Checker  *core.Checker
	Coverage *core.TransitionCoverage
	// Hierarchical organization.
	Dir   *hmesi.Directory
	GPUL2 *hmesi.GPUL2

	CPUL1s []device.L1Cache
	GPUL1s []device.L1Cache

	// cpuIDs/gpuIDs are the NodeIDs of the CPU- and GPU-class devices in
	// construction order (CPUL1s[i] is node cpuIDs[i]); with a legacy
	// device list these are 0..CPUCores-1 and CPUCores..CPUCores+GPUCUs-1.
	cpuIDs []proto.NodeID
	gpuIDs []proto.NodeID

	cores    []*device.CPUCore
	cus      []*device.GPUCU
	doneAt   sim.Time
	liveDevs int

	obs *obs.Recorder
}

// NewSystem assembles a machine for the given options (without a program).
func NewSystem(opt Options) (*System, error) {
	cfg := opt.Config
	if opt.ConfigName != "" {
		c, err := config.ByName(opt.ConfigName)
		if err != nil {
			return nil, err
		}
		cfg = c
	}
	params := config.DefaultParams()
	if opt.Params != nil {
		params = *opt.Params
	}
	if cfg.LLC == config.LLCHierarchicalMESI && cfg.CPU != config.CPUMESI {
		return nil, fmt.Errorf("spandex: the hierarchical MESI LLC only supports MESI CPU caches (paper §IV-A)")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	s := &System{
		Engine: sim.New(),
		Stats:  stats.New(),
		cfg:    cfg,
		params: params,
	}

	nDev := params.NumDevices()
	extra := params.Banks() + 1 // LLC banks + memory
	if cfg.LLC == config.LLCHierarchicalMESI {
		extra = 3 // GPU L2 + L3 + memory (never banked)
	}
	var topo noc.Topology
	switch params.Topology {
	case config.TopoDirect:
		topo = noc.TopoDirect
	case config.TopoMesh:
		topo = noc.TopoMesh
	case config.TopoRing:
		topo = noc.TopoRing
	default:
		panic("spandex: unknown topology") // unreachable: Params.Validate ran
	}
	s.Net = noc.New(s.Engine, s.Stats, noc.Config{
		HopLatency:   sim.CPUCycles(params.NoCHopCycles),
		TicksPerByte: params.NoCTicksPerByte(),
		MeshWidth:    params.NoCMeshWidth,
		Topology:     topo,
	}, nDev+extra)

	switch cfg.LLC {
	case config.LLCSpandex:
		s.buildSpandex(opt)
	case config.LLCHierarchicalMESI:
		s.buildHierarchical(opt)
	}
	if opt.TraceLatency || opt.TraceOccupancy || opt.TraceSink != nil || opt.Metrics != nil {
		var m *obs.Metrics
		if opt.Metrics != nil {
			m = obs.NewMetrics(*opt.Metrics)
		}
		s.installObserver(obs.Config{
			Latency:   opt.TraceLatency,
			Occupancy: opt.TraceOccupancy,
			Sink:      opt.TraceSink,
			Metrics:   m,
		})
	}
	return s, nil
}

// l1Observable is implemented by every L1 protocol controller that supports
// request tracing and occupancy sampling.
type l1Observable interface{ SetObserver(*obs.Recorder) }

// installObserver creates the recorder and threads it through the NoC, the
// LLC and every L1. Cores and CUs attach later (Attach). The recorder is
// purely passive: it never schedules events, touches stats, or alters any
// message, so an instrumented run is cycle-identical to a bare one.
func (s *System) installObserver(cfg obs.Config) {
	nDev := s.params.NumDevices()
	if s.cfg.LLC == config.LLCHierarchicalMESI {
		// GPU L2 and the L3 directory both act as "the LLC" for phase
		// attribution; memory is one node further.
		cfg.LLCNodes = []proto.NodeID{proto.NodeID(nDev), proto.NodeID(nDev + 1)}
		cfg.MemID = proto.NodeID(nDev + 2)
	} else {
		banks := s.params.Banks()
		for b := 0; b < banks; b++ {
			cfg.LLCNodes = append(cfg.LLCNodes, proto.NodeID(nDev+b))
		}
		cfg.MemID = proto.NodeID(nDev + banks)
	}
	s.obs = obs.New(cfg)
	if cfg.Sink != nil {
		s.nameNodes(cfg.Sink)
	}
	if cfg.Metrics != nil {
		s.nameNodes(cfg.Metrics)
	}
	s.Net.SetObserver(s.obs)
	s.Mem.SetObserver(s.obs)
	for _, bank := range s.Banks {
		bank.SetObserver(s.obs)
	}
	for _, l1 := range s.CPUL1s {
		if o, ok := l1.(l1Observable); ok {
			o.SetObserver(s.obs)
		}
	}
	for _, l1 := range s.GPUL1s {
		if o, ok := l1.(l1Observable); ok {
			o.SetObserver(s.obs)
		}
	}
}

// ensureObserver returns the system's recorder, creating a sink-less,
// aggregation-less one on first use (Observe relies on this).
func (s *System) ensureObserver() *obs.Recorder {
	if s.obs == nil {
		s.installObserver(obs.Config{})
	}
	return s.obs
}

func (s *System) buildSpandex(opt Options) {
	p := s.params
	nDev := p.NumDevices()
	banks := p.Banks()
	llcID := proto.NodeID(nDev)
	memID := proto.NodeID(nDev + banks)

	for b := 0; b < banks; b++ {
		bank := core.NewLLC(llcID+proto.NodeID(b), memID, s.Engine, s.Net, s.Stats, core.Config{
			SizeBytes:     p.SpandexLLCBytes / banks,
			Ways:          p.SpandexLLCWays,
			AccessLatency: sim.CPUCycles(p.L2HitCycles),
			ReqSOption2:   opt.ReqSOption2,
			BankStride:    banks,
			BankIndex:     b,
		})
		s.Banks = append(s.Banks, bank)
	}
	s.LLC = s.Banks[0]
	s.Mem = dram.New(memID, s.Engine, s.Net, sim.CPUCycles(p.MemLatencyCycles))
	if opt.CheckInvariants || opt.CheckEveryTransition {
		s.Checker = core.NewChecker()
		// Collect instead of panicking so violations reach Result.Violations
		// with the run's measurements intact. One checker spans every bank:
		// lines are partitioned across banks, so per-line records never
		// collide, and device bookkeeping is naturally shared.
		s.Checker.Collect = true
		s.Checker.CheckEveryTransition = opt.CheckEveryTransition
		for _, bank := range s.Banks {
			bank.SetChecker(s.Checker)
		}
	}
	if opt.RecordTransitions || opt.CheckEveryTransition {
		s.Coverage = core.NewTransitionCoverage()
		for _, bank := range s.Banks {
			bank.SetCoverage(s.Coverage)
		}
	}

	registerAll := func(id proto.NodeID, isMESI bool) {
		for _, bank := range s.Banks {
			bank.RegisterDevice(id, isMESI)
		}
	}
	buildCPU := func(id proto.NodeID) {
		switch s.cfg.CPU {
		case config.CPUMESI:
			tu := core.NewMESITU(id, s.Engine, s.Net, s.Stats, llcID, p.TUTicks())
			tu.SetLLCBanks(banks)
			mc := mesi.DefaultConfig(llcID)
			mc.ParentBanks = banks
			mc.SizeBytes, mc.Ways = p.L1SizeBytes, p.L1Ways
			mc.MSHREntries, mc.StoreBufferEntries = p.MSHREntries, p.StoreBufferEntries
			l1 := mesi.New(id, s.Engine, tu, s.Stats, mc)
			tu.Bind(l1)
			registerAll(id, true)
			if s.Checker != nil {
				s.Checker.AttachDevice(id, tu)
				tu.SetChecker(s.Checker)
			}
			s.CPUL1s = append(s.CPUL1s, l1)
		case config.CPUDeNovo:
			tu := core.NewPassTU(id, s.Engine, s.Net, p.TUTicks())
			dc := denovo.DefaultConfig(llcID, false)
			dc.ParentBanks = banks
			dc.SizeBytes, dc.Ways = p.L1SizeBytes, p.L1Ways
			dc.MSHREntries, dc.WriteBufferEntries = p.MSHREntries, p.StoreBufferEntries
			// SDG: CPU atomics are performed at the LLC (ReqWT+data) to
			// match the GPU-coherence strategy and avoid blocking states
			// on inter-device synchronization (paper §IV-A).
			dc.AtomicsAtLLC = s.cfg.GPU == config.GPUCoherence
			l1 := denovo.New(id, s.Engine, tu, s.Stats, dc)
			tu.Bind(l1)
			registerAll(id, false)
			if s.Checker != nil {
				s.Checker.AttachDevice(id, l1)
			}
			s.CPUL1s = append(s.CPUL1s, l1)
		}
	}
	buildGPU := func(id proto.NodeID) {
		tu := core.NewPassTU(id, s.Engine, s.Net, p.TUTicks())
		switch s.cfg.GPU {
		case config.GPUCoherence:
			gc := gpucoh.DefaultConfig(llcID)
			gc.ParentBanks = banks
			gc.SizeBytes, gc.Ways = p.L1SizeBytes, p.L1Ways
			gc.MSHREntries, gc.WriteBufferEntries = p.MSHREntries, p.StoreBufferEntries
			l1 := gpucoh.New(id, s.Engine, tu, s.Stats, gc)
			tu.Bind(l1)
			registerAll(id, false)
			if s.Checker != nil {
				s.Checker.AttachDevice(id, l1)
			}
			s.GPUL1s = append(s.GPUL1s, l1)
		case config.GPUDeNovo:
			dc := denovo.DefaultConfig(llcID, true)
			dc.ParentBanks = banks
			dc.SizeBytes, dc.Ways = p.L1SizeBytes, p.L1Ways
			dc.MSHREntries, dc.WriteBufferEntries = p.MSHREntries, p.StoreBufferEntries
			l1 := denovo.New(id, s.Engine, tu, s.Stats, dc)
			tu.Bind(l1)
			registerAll(id, false)
			if s.Checker != nil {
				s.Checker.AttachDevice(id, l1)
			}
			s.GPUL1s = append(s.GPUL1s, l1)
		}
	}
	id := proto.NodeID(0)
	for _, spec := range p.DeviceList() {
		for k := 0; k < spec.Count; k++ {
			switch spec.Class {
			case config.ClassCPU:
				buildCPU(id)
				s.cpuIDs = append(s.cpuIDs, id)
			case config.ClassGPU:
				buildGPU(id)
				s.gpuIDs = append(s.gpuIDs, id)
			}
			id++
		}
	}
}

func (s *System) buildHierarchical(opt Options) {
	p := s.params
	nDev := p.NumDevices()
	l2ID := proto.NodeID(nDev)
	dirID := proto.NodeID(nDev + 1)
	memID := proto.NodeID(nDev + 2)

	s.Dir = hmesi.NewDirectory(dirID, memID, s.Engine, s.Net, s.Stats, hmesi.DirConfig{
		SizeBytes:     p.L3Bytes,
		Ways:          p.L3Ways,
		AccessLatency: sim.CPUCycles(p.L3HitCycles),
	})
	s.Mem = dram.New(memID, s.Engine, s.Net, sim.CPUCycles(p.MemLatencyCycles))
	s.GPUL2 = hmesi.NewGPUL2(l2ID, s.Engine, s.Net, s.Stats, hmesi.L2Config{
		SizeBytes:     p.GPUL2Bytes,
		Ways:          p.GPUL2Ways,
		AccessLatency: sim.CPUCycles(p.L2HitCycles),
		ParentID:      dirID,
	})
	s.Dir.RegisterDevice(l2ID)

	buildCPU := func(id proto.NodeID) {
		mc := mesi.DefaultConfig(dirID)
		mc.SizeBytes, mc.Ways = p.L1SizeBytes, p.L1Ways
		mc.MSHREntries, mc.StoreBufferEntries = p.MSHREntries, p.StoreBufferEntries
		l1 := mesi.New(id, s.Engine, s.Net.PortFor(id), s.Stats, mc)
		s.Net.Register(id, l1)
		s.Dir.RegisterDevice(id)
		s.CPUL1s = append(s.CPUL1s, l1)
	}
	buildGPU := func(id proto.NodeID) {
		switch s.cfg.GPU {
		case config.GPUCoherence:
			gc := gpucoh.DefaultConfig(l2ID)
			gc.SizeBytes, gc.Ways = p.L1SizeBytes, p.L1Ways
			gc.MSHREntries, gc.WriteBufferEntries = p.MSHREntries, p.StoreBufferEntries
			l1 := gpucoh.New(id, s.Engine, s.Net.PortFor(id), s.Stats, gc)
			s.Net.Register(id, l1)
			s.GPUL1s = append(s.GPUL1s, l1)
		case config.GPUDeNovo:
			dc := denovo.DefaultConfig(l2ID, true)
			dc.SizeBytes, dc.Ways = p.L1SizeBytes, p.L1Ways
			dc.MSHREntries, dc.WriteBufferEntries = p.MSHREntries, p.StoreBufferEntries
			l1 := denovo.New(id, s.Engine, s.Net.PortFor(id), s.Stats, dc)
			s.Net.Register(id, l1)
			s.GPUL1s = append(s.GPUL1s, l1)
		}
		s.GPUL2.RegisterChild(id)
	}
	id := proto.NodeID(0)
	for _, spec := range p.DeviceList() {
		for k := 0; k < spec.Count; k++ {
			switch spec.Class {
			case config.ClassCPU:
				buildCPU(id)
				s.cpuIDs = append(s.cpuIDs, id)
			case config.ClassGPU:
				buildGPU(id)
				s.gpuIDs = append(s.gpuIDs, id)
			}
			id++
		}
	}
}

// Machine reports the shape workloads should be built for.
func (s *System) Machine() Machine {
	return Machine{
		CPUThreads: s.params.NumCPUs(),
		GPUCUs:     s.params.NumGPUs(),
		WarpsPerCU: s.params.WarpsPerCU,
		L1Bytes:    s.params.L1SizeBytes,
	}
}

// Attach binds a program's op streams to the machine's cores and seeds
// its initial data into memory.
func (s *System) Attach(prog *Program) error {
	if len(prog.CPU) > len(s.CPUL1s) || len(prog.GPU) > len(s.GPUL1s) {
		return fmt.Errorf("spandex: program shaped for a larger machine")
	}
	for _, init := range prog.Init {
		line := s.Mem.Peek(init.Addr.Line())
		line[init.Addr.WordIndex()] = init.Val
		s.Mem.Poke(init.Addr.Line(), line)
	}
	done := func() {
		s.liveDevs--
		if s.liveDevs == 0 {
			s.doneAt = s.Engine.Now()
		}
	}
	for i, stream := range prog.CPU {
		if stream == nil {
			continue
		}
		s.liveDevs++
		c := device.NewCPUCore(fmt.Sprintf("cpu%d", i), s.Engine, s.CPUL1s[i], stream, done)
		if s.obs != nil {
			c.SetObserver(s.obs, s.cpuIDs[i])
		}
		s.cores = append(s.cores, c)
	}
	for i, warps := range prog.GPU {
		var streams []device.OpStream
		for _, w := range warps {
			if w != nil {
				streams = append(streams, w)
			}
		}
		if len(streams) == 0 {
			continue
		}
		s.liveDevs++
		cu := device.NewGPUCU(fmt.Sprintf("cu%d", i), s.Engine, s.GPUL1s[i], streams, done)
		if s.obs != nil {
			cu.SetObserver(s.obs, s.gpuIDs[i])
		}
		s.cus = append(s.cus, cu)
	}
	return nil
}

// Run executes the attached program to completion and returns measurements.
func (s *System) Run(maxTime sim.Time) (Result, error) {
	if maxTime == 0 {
		maxTime = 100_000_000_000 // 100 ms of simulated time
	}
	for _, c := range s.cores {
		c.Start()
	}
	for _, cu := range s.cus {
		cu.Start()
	}
	if !s.Engine.RunUntil(maxTime) {
		stuck := ""
		for _, bank := range s.Banks {
			if r := bank.StuckReport(); r != "" {
				stuck += "; stuck LLC transactions:\n" + r
			}
		}
		return Result{}, fmt.Errorf("spandex: %s run exceeded %d ticks (possible deadlock or undersized MaxTime); %d threads unfinished%s",
			s.cfg.Name, maxTime, s.liveDevs, stuck)
	}
	if s.liveDevs != 0 {
		return Result{}, fmt.Errorf("spandex: event queue drained with %d threads unfinished (protocol deadlock)", s.liveDevs)
	}
	if s.Checker != nil {
		for _, bank := range s.Banks {
			if err := s.Checker.CheckQuiescent(bank); err != nil {
				return Result{}, err
			}
		}
	}
	var ops uint64
	for _, c := range s.cores {
		ops += c.Ops()
	}
	for _, cu := range s.cus {
		ops += cu.Ops()
	}
	counters := make(map[string]uint64, len(s.Stats.Counters))
	for k, v := range s.Stats.Counters {
		counters[k] = *v
	}
	res := Result{
		Config:   s.cfg.Name,
		ExecTime: s.doneAt,
		Traffic:  s.Stats.Traffic,
		Counters: counters,
		Ops:      ops,
		Events:   s.Engine.Fired(),
		MemHash:  s.Mem.Fingerprint(),
	}
	if s.Coverage != nil {
		res.Transitions = s.Coverage.Snapshot()
	}
	if s.obs != nil {
		res.Latency = s.obs.Report()
		if m := s.obs.Metrics(); m != nil {
			res.Metrics = m.Report()
		}
	}
	if s.Checker != nil && len(s.Checker.Violations) > 0 {
		res.Violations = append([]Violation(nil), s.Checker.Violations...)
		res.ViolationsDropped = s.Checker.Dropped
		return res, fmt.Errorf("spandex: %d coherence invariant violation(s); first: %s",
			len(res.Violations), res.Violations[0])
	}
	return res, nil
}

// Reader returns a coherent word-reader for post-run validation. Reads go
// through CPU core 0's cache (self-invalidating first), so they exercise
// the real protocol rather than peeking at simulator state.
func (s *System) Reader() func(memaddr.Addr) uint32 {
	l1 := s.CPUL1s[0]
	return func(a memaddr.Addr) uint32 {
		l1.SelfInvalidate()
		var v uint32
		ok := false
		op := device.Op{Kind: device.OpLoad, Addr: a}
		for tries := 0; !l1.Access(op, func(x uint32) { v = x; ok = true }); tries++ {
			if !s.Engine.Step() || tries > 1<<20 {
				panic("spandex: validation read stalled")
			}
		}
		if !s.Engine.RunUntil(s.Engine.Now() + 1<<40) {
			panic("spandex: validation read did not drain")
		}
		if !ok {
			panic("spandex: validation read never completed")
		}
		return v
	}
}

// Run builds a system, runs the workload, optionally validates the final
// state, and returns the measurements. This is the main entry point.
//
// Run is safe for concurrent use: every call assembles a fully-isolated
// System (its own sim.Engine, Stats, Network, Memory, caches and program
// coroutines) and touches no package-level mutable state — the workload
// registry is read-locked, and Workload.Build implementations are
// stateless by contract (see workload.Register). Consequently a Run's
// Result is bit-identical whether it executes alone or concurrently with
// any number of other Runs; RunMatrix and VerifyDeterminism rely on this
// invariant, and `go test -race ./...` guards it in CI.
func Run(w Workload, opt Options) (Result, error) {
	s, err := NewSystem(opt)
	if err != nil {
		return Result{}, err
	}
	prog := w.Build(s.Machine(), opt.Seed)
	defer prog.Close()
	if err := s.Attach(prog); err != nil {
		return Result{}, err
	}
	res, err := s.Run(opt.MaxTime)
	if err != nil {
		return Result{}, fmt.Errorf("%s on %s: %w", w.Meta().Name, s.cfg.Name, err)
	}
	res.Workload = w.Meta().Name
	if opt.Validate && prog.Validate != nil {
		if err := prog.Validate(s.Reader()); err != nil {
			return Result{}, fmt.Errorf("%s on %s: validation failed: %w", w.Meta().Name, s.cfg.Name, err)
		}
	}
	return res, nil
}
