// Graphanalytics sweeps the two Pannotia graph workloads (BC and PR)
// across all six cache configurations and prints a comparison report —
// a self-contained slice of the paper's Figure 3.
package main

import (
	"fmt"
	"log"

	"spandex"
)

func main() {
	workloads := []string{"bc", "pr"}
	cells := spandex.Sweep(workloads, spandex.ConfigNames(), spandex.Options{
		Seed:     42,
		Validate: true,
	})
	fig, err := spandex.BuildFigure("Graph analytics (BC + PR) across Table V configurations",
		workloads, cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.Render())

	fmt.Println("Reading the result:")
	fmt.Println("- BC pushes updates through atomics with high temporal locality;")
	fmt.Println("  DeNovo GPU caches (HMD/SMD/SDD) own the hot words and win big.")
	fmt.Println("- PR pulls ranks with plain loads and is throughput-bound; the flat")
	fmt.Println("  Spandex LLC saves the hierarchy's extra level on every miss.")
}
