// Customworkload shows how to define a new device access pattern against
// the library's simulated machines: implement the Workload interface with
// coroutine thread bodies, register it, and run it on any Table V
// configuration. The example models a producer-consumer ring buffer
// between one CPU core and the GPU — the kind of emerging fine-grained
// collaboration pattern the paper's introduction motivates.
package main

import (
	"fmt"
	"log"

	"spandex"
)

// ringWorkload: a CPU producer writes items into a ring buffer and bumps a
// tail counter with release semantics; GPU warps claim items with a
// fetch-add head counter and check the payloads.
type ringWorkload struct {
	Items    int
	RingSlot int // words per item
}

func (w *ringWorkload) Meta() spandex.Meta {
	return spandex.Meta{
		Name:            "ringbuffer",
		Suite:           "Custom",
		Pattern:         "CPU→GPU producer/consumer ring with fine-grained sync",
		Partitioning:    "task",
		Synchronization: "fine-grain",
		Sharing:         "flat",
		Locality:        "low",
		Params:          fmt.Sprintf("items: %d", w.Items),
	}
}

func (w *ringWorkload) Build(m spandex.Machine, seed uint64) *spandex.Program {
	lay := spandex.NewLayout()
	ring := lay.Words(w.Items * w.RingSlot)
	tail := lay.Words(16)
	head := lay.Words(16)
	bad := lay.Words(16)

	p := &spandex.Program{}

	// CPU producer.
	p.CPU = append(p.CPU, spandex.GoThread(func(t *spandex.Thread) {
		for i := 0; i < w.Items; i++ {
			for s := 0; s < w.RingSlot; s++ {
				t.Store(spandex.WordAddr(ring, i*w.RingSlot+s), uint32(i*1000+s))
			}
			// Publish: release makes the payload visible before the bump.
			t.FetchAdd(tail, 1, false, true)
		}
	}))
	for i := 1; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, nil)
	}

	// GPU consumers: every warp claims items until the ring drains.
	consumer := func(t *spandex.Thread) {
		for {
			item := t.FetchAdd(head, 1, true, false)
			if int(item) >= w.Items {
				return
			}
			t.SpinUntilGE(tail, item+1)
			for s := 0; s < w.RingSlot; s++ {
				got := t.Load(spandex.WordAddr(ring, int(item)*w.RingSlot+s))
				if got != uint32(int(item)*1000+s) {
					t.FetchAdd(bad, 1, false, false)
					return
				}
			}
		}
	}
	for cu := 0; cu < m.GPUCUs; cu++ {
		var warps []spandex.OpStream
		for wp := 0; wp < m.WarpsPerCU; wp++ {
			warps = append(warps, spandex.GoThread(consumer))
		}
		p.GPU = append(p.GPU, warps)
	}

	p.Validate = func(read func(spandex.Addr) uint32) error {
		if n := read(bad); n != 0 {
			return fmt.Errorf("ringbuffer: %d consumers saw stale payloads", n)
		}
		if n := read(tail); int(n) != w.Items {
			return fmt.Errorf("ringbuffer: produced %d items, want %d", n, w.Items)
		}
		return nil
	}
	return p
}

func main() {
	w := &ringWorkload{Items: 256, RingSlot: 8}
	spandex.RegisterWorkload(w) // now also visible to spandex-sim/-bench

	fmt.Println("ring buffer producer/consumer across all configurations:")
	for _, cfg := range spandex.Configurations() {
		res, err := spandex.Run(w, spandex.Options{
			Config: cfg, Seed: 1, Validate: true, CheckInvariants: cfg.LLC == 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s exec=%7.3f ms  traffic=%5d KB\n",
			cfg.Name, res.ExecMillis(), res.Traffic.TotalBytes(false)/1024)
	}
	fmt.Println("validation: every consumed payload matched; no stale reads")
}
