// Quickstart: run one workload on one cache configuration and print the
// paper's two metrics — simulated execution time and network traffic.
package main

import (
	"fmt"
	"log"

	"spandex"
)

func main() {
	// Pick a workload (Pannotia PageRank) and a configuration (SDD: flat
	// Spandex LLC, DeNovo CPU and GPU L1s).
	w, err := spandex.WorkloadByName("pr")
	if err != nil {
		log.Fatal(err)
	}
	res, err := spandex.Run(w, spandex.Options{
		ConfigName:      "SDD",
		Seed:            42,
		Validate:        true, // check the final memory state against PR's oracle
		CheckInvariants: true, // audit Spandex coherence invariants throughout
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:  %s — %s\n", res.Workload, w.Meta().Pattern)
	fmt.Printf("config:    %s\n", res.Config)
	fmt.Printf("exec time: %.3f ms (simulated)\n", res.ExecMillis())
	fmt.Printf("ops:       %d memory operations\n", res.Ops)
	fmt.Printf("traffic:   %d KB on the interconnect\n", res.Traffic.TotalBytes(false)/1024)

	// Compare against the conventional hierarchical MESI baseline.
	base, err := spandex.Run(w, spandex.Options{ConfigName: "HMG", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs HMG baseline: %.2fx time, %.2fx traffic\n",
		float64(res.ExecTime)/float64(base.ExecTime),
		float64(res.Traffic.TotalBytes(false))/float64(base.Traffic.TotalBytes(false)))
}
