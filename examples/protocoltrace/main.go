// Protocoltrace reproduces the flavor of the paper's Figure 1 walkthroughs
// (1a-1d): it builds a Spandex system, runs a tiny three-device program
// whose accesses exercise word-granularity ownership transfer, forwarding,
// and revocation, and prints every coherence message touching the target
// line in delivery order.
package main

import (
	"fmt"
	"log"
	"strings"

	"spandex"
)

// scenario is a miniature workload: an "accelerator" thread (CPU core 0,
// standing in for Fig. 1's custom accelerator) takes word ownership, a GPU
// warp writes through disparate words of the same line, then performs an
// atomic on an owned word (Fig. 1b), and finally reads the whole line
// (Fig. 1c).
type scenario struct{ base spandex.Addr }

func (s *scenario) Meta() spandex.Meta {
	return spandex.Meta{Name: "fig1", Suite: "Trace",
		Pattern: "Figure 1 message walkthroughs"}
}

func (s *scenario) Build(m spandex.Machine, seed uint64) *spandex.Program {
	lay := spandex.NewLayout()
	line := lay.Words(16)
	s.base = line
	flag := lay.Words(16)

	p := &spandex.Program{}
	// Accelerator: own words 0-1 (Fig. 1a step 1-2), then wait.
	p.CPU = append(p.CPU, spandex.GoThread(func(t *spandex.Thread) {
		t.Store(spandex.WordAddr(line, 0), 11)
		t.Store(spandex.WordAddr(line, 1), 22)
		t.Fence(false, true) // drain: ReqO goes out
		t.AtomicStore(flag, 1, true)
		t.SpinUntilGE(flag, 2)
	}))
	for i := 1; i < m.CPUThreads; i++ {
		p.CPU = append(p.CPU, nil)
	}
	// GPU warp: write-through words 2-3 (Fig. 1a steps 3-4), atomic on the
	// accelerator-owned word 0 (Fig. 1b), then a full-line read (Fig. 1c).
	warp := spandex.GoThread(func(t *spandex.Thread) {
		t.SpinUntilGE(flag, 1)
		t.Store(spandex.WordAddr(line, 2), 33)
		t.Store(spandex.WordAddr(line, 3), 44)
		t.Fence(false, true)                                     // drain: ReqWT goes out
		t.FetchAdd(spandex.WordAddr(line, 0), 100, false, false) // Fig. 1b
		v := t.Load(spandex.WordAddr(line, 1))                   // Fig. 1c (fill)
		_ = v
		t.AtomicStore(flag, 2, true)
	})
	p.GPU = append(p.GPU, []spandex.OpStream{warp})
	return p
}

func main() {
	sc := &scenario{}
	sys, err := spandex.NewSystem(spandex.Options{ConfigName: "SDG"})
	if err != nil {
		log.Fatal(err)
	}
	prog := sc.Build(sys.Machine(), 0)
	defer prog.Close()

	var lines []string
	sys.TraceMessages(func(tick uint64, msg string) {
		// Only the interesting line (its address appears in the text).
		if strings.Contains(msg, fmt.Sprintf("line=%#x", uint64(sc.base))) {
			lines = append(lines, fmt.Sprintf("%10d ps  %s", tick, msg))
		}
	})
	if err := sys.Attach(prog); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Coherence messages for the contended line (cf. paper Figure 1):")
	fmt.Println("  node ids: 0..7 = CPU cores (0 is the 'accelerator'),")
	fmt.Println("            8..23 = GPU CUs, 24 = Spandex LLC, 25 = memory")
	for _, l := range lines {
		fmt.Println(l)
	}
}
