package spandex

import (
	"context"
	"errors"
	"testing"
)

// fastOpt returns Options sized for quick matrix tests.
func fastOpt() Options {
	p := FastParams()
	return Options{Params: &p, Seed: 1}
}

// fastMatrix is a small but representative matrix: one microbenchmark, one
// application, and the litmus programs, across all six configurations.
func fastMatrix() (workloads, configs []string) {
	return []string{"indirection", "tqh", "litmus"}, ConfigNames()
}

// TestSweepSerialParallelIdentical is the core determinism guarantee: a
// parallel sweep must produce bit-identical measurements to a serial one,
// cell for cell, in the same matrix order.
func TestSweepSerialParallelIdentical(t *testing.T) {
	workloads, configs := fastMatrix()
	opt := fastOpt()
	serial := RunMatrix(context.Background(), workloads, configs, opt, MatrixOptions{Workers: 1})
	parallel := RunMatrix(context.Background(), workloads, configs, opt, MatrixOptions{Workers: 8})
	if err := CellsEquivalent(serial, parallel); err != nil {
		t.Fatalf("parallel sweep diverged from serial: %v", err)
	}
	for i := range serial {
		if serial[i].Err == nil && serial[i].Result.Fingerprint() != parallel[i].Result.Fingerprint() {
			t.Fatalf("cell %s/%s fingerprint mismatch", serial[i].Workload, serial[i].Config)
		}
	}
}

// TestFigureSerialParallelByteIdentical renders the same figure from a
// serial and a parallel sweep and requires byte-identical output.
func TestFigureSerialParallelByteIdentical(t *testing.T) {
	workloads := []string{"indirection"}
	opt := fastOpt()
	build := func(workers int) string {
		cells := RunMatrix(context.Background(), workloads, ConfigNames(), opt, MatrixOptions{Workers: workers})
		f, err := BuildFigure("t", workloads, cells)
		if err != nil {
			t.Fatal(err)
		}
		return f.Render()
	}
	if s, p := build(1), build(6); s != p {
		t.Fatalf("rendered figure differs between serial and parallel sweeps:\n--- serial\n%s\n--- parallel\n%s", s, p)
	}
}

// TestRunMatrixWorkerCounts exercises the worker-count edge cases: 0
// (defaults to GOMAXPROCS), 1, and more workers than cells.
func TestRunMatrixWorkerCounts(t *testing.T) {
	workloads := []string{"litmus"}
	configs := []string{"HMG", "SDD"}
	opt := fastOpt()
	ref := RunMatrix(context.Background(), workloads, configs, opt, MatrixOptions{Workers: 1})
	for _, workers := range []int{0, 1, 64} {
		cells := RunMatrix(context.Background(), workloads, configs, opt, MatrixOptions{Workers: workers})
		if len(cells) != len(workloads)*len(configs) {
			t.Fatalf("workers=%d: got %d cells, want %d", workers, len(cells), len(workloads)*len(configs))
		}
		if err := CellsEquivalent(ref, cells); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	if cells := RunMatrix(context.Background(), nil, configs, opt, MatrixOptions{}); cells != nil {
		t.Fatalf("empty matrix returned %d cells", len(cells))
	}
}

// TestRunMatrixErrorIsolation checks that a failing cell (unknown config
// or workload) does not abort its siblings.
func TestRunMatrixErrorIsolation(t *testing.T) {
	cells := RunMatrix(context.Background(),
		[]string{"litmus", "not-a-workload"}, []string{"SDD", "not-a-config"},
		fastOpt(), MatrixOptions{Workers: 4})
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		bad := c.Workload == "not-a-workload" || c.Config == "not-a-config"
		if bad && c.Err == nil {
			t.Errorf("%s/%s: expected error", c.Workload, c.Config)
		}
		if !bad && c.Err != nil {
			t.Errorf("%s/%s: sibling failed: %v", c.Workload, c.Config, c.Err)
		}
	}
}

// TestRunMatrixCancellation cancels mid-sweep and checks that cells not
// yet started come back with the context error while completed cells keep
// their results.
func TestRunMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := RunMatrix(ctx, []string{"litmus"}, ConfigNames(), fastOpt(), MatrixOptions{
		Workers: 1,
		Progress: func(done, total int, c Cell) {
			if done == 1 {
				cancel()
			}
		},
	})
	var ok, canceled int
	for _, c := range cells {
		switch {
		case c.Err == nil:
			ok++
		case errors.Is(c.Err, context.Canceled):
			canceled++
		default:
			t.Errorf("%s/%s: unexpected error %v", c.Workload, c.Config, c.Err)
		}
	}
	if ok == 0 {
		t.Error("no cell completed before cancellation")
	}
	if canceled == 0 {
		t.Error("no cell observed the cancellation")
	}
}

// TestRunMatrixProgress checks the progress callback fires exactly once
// per cell with a monotonically increasing done count.
func TestRunMatrixProgress(t *testing.T) {
	var calls []int
	cells := RunMatrix(context.Background(), []string{"litmus"}, ConfigNames(), fastOpt(), MatrixOptions{
		Workers: 4,
		Progress: func(done, total int, c Cell) {
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			calls = append(calls, done)
		},
	})
	if len(calls) != len(cells) {
		t.Fatalf("progress fired %d times for %d cells", len(calls), len(cells))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done counts %v not monotonic", calls)
		}
	}
}

// TestVerifyDeterminism runs the verification mode on the fast matrix.
func TestVerifyDeterminism(t *testing.T) {
	reports, err := VerifyDeterminism(context.Background(),
		[]string{"litmus", "indirection"}, []string{"HMG", "SDD"}, fastOpt(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.Fingerprint == 0 {
			t.Errorf("%s/%s: zero fingerprint", r.Workload, r.Config)
		}
	}
}

// TestAggregate checks matrix-level snapshot merging: the aggregate's
// traffic equals the sum of the cells', exec time the max.
func TestAggregate(t *testing.T) {
	cells := RunMatrix(context.Background(), []string{"litmus"}, []string{"HMG", "SDD"},
		fastOpt(), MatrixOptions{Workers: 2})
	agg := Aggregate(cells)
	var wantBytes, wantMax uint64
	for _, c := range cells {
		if c.Err != nil {
			t.Fatalf("%s/%s: %v", c.Workload, c.Config, c.Err)
		}
		wantBytes += c.Result.Traffic.TotalBytes(true)
		if uint64(c.Result.ExecTime) > wantMax {
			wantMax = uint64(c.Result.ExecTime)
		}
	}
	if got := agg.Traffic.TotalBytes(true); got != wantBytes {
		t.Errorf("aggregate traffic %d, want %d", got, wantBytes)
	}
	if uint64(agg.ExecTime) != wantMax {
		t.Errorf("aggregate exec time %d, want max %d", agg.ExecTime, wantMax)
	}
}

// TestResultFingerprintSensitivity: different cells must (overwhelmingly)
// fingerprint differently; the same cell twice must match exactly.
func TestResultFingerprintSensitivity(t *testing.T) {
	opt := fastOpt()
	w, err := WorkloadByName("litmus")
	if err != nil {
		t.Fatal(err)
	}
	o := opt
	o.ConfigName = "SDD"
	a, err := Run(w, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical runs produced different fingerprints")
	}
	o.Seed = 2
	c, err := Run(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds produced identical fingerprints")
	}
}
