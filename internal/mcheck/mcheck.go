package mcheck

import (
	"fmt"

	"spandex/internal/core"
)

// DefaultMaxStates bounds exploration when Config.MaxStates is zero. The
// standard scenarios complete well under it (see EXPERIMENTS.md for
// measured state counts); hitting the budget marks the result incomplete
// rather than failing.
const DefaultMaxStates = 200_000

// Config selects what to explore.
type Config struct {
	Scenario Scenario
	// MaxStates caps distinct states explored (0 = DefaultMaxStates).
	MaxStates int
	// Coverage, when non-nil, accumulates every (LLC state, message) pair
	// processed during exploration — including along replayed prefixes —
	// for the transition-graph cross-check.
	Coverage *core.TransitionCoverage
}

// Violation is one property failure, with the interleaving that reaches it.
type Violation struct {
	// Kind is "invariant" (core.Checker), "data" (out-of-thin-air load),
	// "deadlock" (quiescent with unfinished operations), or "quiescence"
	// (terminal-state ownership audit).
	Kind   string
	Detail string
	// Trace lists every action of the violating interleaving in order:
	// device operation issues and message deliveries.
	Trace []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mcheck: %s violation after %d actions: %s", v.Kind, len(v.Trace), v.Detail)
}

// Result reports one scenario's exploration.
type Result struct {
	Scenario string
	// States counts distinct canonical states expanded.
	States int
	// Transitions counts state-graph edges applied (excluding replays).
	Transitions int
	// MaxDepth is the longest action sequence explored.
	MaxDepth int
	// Complete is true when the full reachable state space was explored
	// within MaxStates and no violation cut exploration short.
	Complete bool
	// Violation is the first property failure found, or nil.
	Violation *Violation
}

type explorer struct {
	cfg      Config
	visited  map[uint64]struct{}
	res      Result
	limitHit bool
	stop     bool
}

// Explore exhaustively enumerates the scenario's reachable states via
// depth-first search over delivery/issue interleavings. Backtracking is
// replay-based: sibling branches rebuild the world from a fresh system by
// re-applying the action prefix (world construction is deterministic), so
// no state snapshotting is needed. Distinct states are detected with a
// canonical structural hash and expanded once. Exploration stops at the
// first violation, which carries its full interleaving trace.
func Explore(cfg Config) Result {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	x := &explorer{
		cfg:     cfg,
		visited: make(map[uint64]struct{}),
		res:     Result{Scenario: cfg.Scenario.Name},
	}
	x.dfs(newWorld(cfg.Scenario, cfg.Coverage), nil)
	x.res.Complete = !x.limitHit && x.res.Violation == nil
	return x.res
}

// replay rebuilds the world at the end of path from scratch.
func (x *explorer) replay(path []int) *world {
	w := newWorld(x.cfg.Scenario, x.cfg.Coverage)
	for _, a := range path {
		w.apply(a)
	}
	return w
}

func (x *explorer) report(kind, detail string, w *world) {
	x.res.Violation = &Violation{
		Kind: kind, Detail: detail,
		Trace: append([]string(nil), w.trace...),
	}
	x.stop = true
}

func (x *explorer) dfs(w *world, path []int) {
	if x.stop {
		return
	}
	fp := w.fingerprint()
	if _, seen := x.visited[fp]; seen {
		return
	}
	x.visited[fp] = struct{}{}
	x.res.States++
	if len(path) > x.res.MaxDepth {
		x.res.MaxDepth = len(path)
	}
	if kind, detail, bad := w.violation(); bad {
		x.report(kind, detail, w)
		return
	}
	if x.res.States >= x.cfg.MaxStates {
		x.limitHit = true
		x.stop = true
		return
	}

	acts := w.actions()
	if len(acts) == 0 {
		if !w.terminal() {
			x.report("deadlock",
				"no message in flight and no operation can issue, but scripts are unfinished: "+w.pendingOps(), w)
			return
		}
		if err := w.chk.CheckQuiescent(w.llc); err != nil {
			x.report("quiescence", err.Error(), w)
		}
		return
	}

	for i, a := range acts {
		cw := w
		if i > 0 {
			// The first child consumes w; siblings replay the prefix.
			cw = x.replay(path)
		}
		cw.apply(a)
		x.res.Transitions++
		x.dfs(cw, append(append([]int(nil), path...), a))
		if x.stop {
			return
		}
	}
}
