package mcheck

import (
	"fmt"

	"spandex/internal/core"
)

// DefaultMaxStates bounds exploration when Config.MaxStates is zero. The
// standard scenarios complete well under it (see EXPERIMENTS.md for
// measured state counts); hitting the budget marks the result incomplete
// rather than failing.
const DefaultMaxStates = 200_000

// Reduction selects which sound state-space reductions Explore applies.
// All three preserve every violation verdict (DESIGN.md §10 gives the
// argument; reduction_test.go checks it mode-against-mode); they differ
// only in how much of the interleaving explosion they collapse.
type Reduction struct {
	// Canon canonicalizes fingerprints: pending messages hash per
	// (src, dst) FIFO instead of in flat send order, and the hash is
	// minimized over the scenario's device symmetry group, merging states
	// that differ only by a renaming of identical devices.
	Canon bool
	// Sleep prunes actions with sleep sets: after exploring action a at a
	// state, sibling branches need not re-run a while only actions
	// independent of it have fired. Sleep-set pruning removes transitions
	// but reaches the exact same state set.
	Sleep bool
	// Ample commits exploration at a state to a single unit's action group
	// when that group is provably persistent (reduce.go), skipping the
	// interleavings of unrelated units entirely.
	Ample bool
}

// FullReduction is the default: all reductions on.
func FullReduction() Reduction { return Reduction{Canon: true, Sleep: true, Ample: true} }

// NoReduction reproduces the PR 3 exhaustive exploration exactly.
func NoReduction() Reduction { return Reduction{} }

// Config selects what to explore.
type Config struct {
	Scenario Scenario
	// MaxStates caps distinct states explored (0 = DefaultMaxStates).
	MaxStates int
	// Coverage, when non-nil, accumulates every (LLC state, message) pair
	// processed during exploration — including along replayed prefixes —
	// for the transition-graph cross-check.
	Coverage *core.TransitionCoverage
	// Reduction selects the reductions applied; nil means FullReduction.
	Reduction *Reduction
}

// Violation is one property failure, with the interleaving that reaches it.
type Violation struct {
	// Kind is "invariant" (core.Checker), "data" (out-of-thin-air load),
	// "deadlock" (quiescent with unfinished operations), or "quiescence"
	// (terminal-state ownership audit).
	Kind   string
	Detail string
	// Trace lists every action of the violating interleaving in order:
	// device operation issues and message deliveries.
	Trace []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mcheck: %s violation after %d actions: %s", v.Kind, len(v.Trace), v.Detail)
}

// Result reports one scenario's exploration.
type Result struct {
	Scenario string
	// States counts distinct canonical states expanded.
	States int
	// Transitions counts state-graph edges applied (excluding replays).
	Transitions int
	// MaxDepth is the longest action sequence explored.
	MaxDepth int
	// Complete is true when the full reachable state space was explored
	// within MaxStates and no violation cut exploration short.
	Complete bool
	// AmpleCommits counts expanded states where exploration soundly
	// committed to one unit's persistent action group instead of the full
	// enabled set.
	AmpleCommits int
	// SleepSkips counts enabled actions pruned by sleep sets.
	SleepSkips int
	// Violation is the first property failure found, or nil.
	Violation *Violation
}

// visitEntry is the per-canonical-state record: the sleep set the state
// was (last) explored under, in the state's canonical device coordinates,
// and whether its DFS frame is still open (the ample cycle proviso).
type visitEntry struct {
	// sleep holds the action keys NOT explored from this state (nil =
	// none: everything enabled was explored). A revisit arriving with a
	// sleep set S may be pruned only when sleep ⊆ S — everything we would
	// skip now was already skipped-and-covered then; otherwise the state
	// is re-expanded under the intersection and the record tightened
	// (strictly shrinking, so re-expansion terminates).
	sleep map[actKey]struct{}
	// onStack marks an open DFS frame. An ample-committed action leading
	// to an on-stack state could postpone the deferred actions around that
	// cycle forever (the ignoring problem); the explorer then widens the
	// state to full expansion.
	onStack bool
}

type explorer struct {
	cfg      Config
	red      Reduction
	visited  map[uint64]*visitEntry
	res      Result
	limitHit bool
	stop     bool
}

// Explore enumerates the scenario's reachable states via depth-first
// search over delivery/issue interleavings. Backtracking is replay-based:
// sibling branches rebuild the world from a fresh system by re-applying
// the action prefix (world construction is deterministic), so no state
// snapshotting is needed. Distinct states are detected with a canonical
// structural hash and expanded once. Under the default FullReduction the
// search additionally merges symmetric states and prunes provably
// redundant interleavings (see Reduction); exploration remains exhaustive
// up to those equivalences, and stops at the first violation, which
// carries its full interleaving trace.
func Explore(cfg Config) Result {
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	red := FullReduction()
	if cfg.Reduction != nil {
		red = *cfg.Reduction
	}
	x := &explorer{
		cfg:     cfg,
		red:     red,
		visited: make(map[uint64]*visitEntry),
		res:     Result{Scenario: cfg.Scenario.Name},
	}
	x.dfs(newWorld(cfg.Scenario, cfg.Coverage, red), nil, nil)
	x.res.Complete = !x.limitHit && x.res.Violation == nil
	return x.res
}

// replay rebuilds the world at the end of path from scratch.
func (x *explorer) replay(path []int) *world {
	w := newWorld(x.cfg.Scenario, x.cfg.Coverage, x.red)
	for _, a := range path {
		w.apply(a)
	}
	return w
}

func (x *explorer) report(kind, detail string, w *world) {
	x.res.Violation = &Violation{
		Kind: kind, Detail: detail,
		Trace: append([]string(nil), w.trace...),
	}
	x.stop = true
}

// translateSleep maps a sleep set through a device renaming (nil = keep;
// the map is shared, never copied — sleep sets are immutable once built).
func translateSleep(s map[actKey]struct{}, idmap []int8) map[actKey]struct{} {
	if idmap == nil || len(s) == 0 {
		return s
	}
	out := make(map[actKey]struct{}, len(s))
	for k := range s {
		out[canonKey(k, idmap)] = struct{}{}
	}
	return out
}

// subsetOf reports a ⊆ b (nil = empty).
func subsetOf(a, b map[actKey]struct{}) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func intersect(a, b map[actKey]struct{}) map[actKey]struct{} {
	out := make(map[actKey]struct{})
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

// dfs expands w, whose action prefix is path, under the given sleep set
// (action keys in real device coordinates that need not be explored from
// here: every state they lead to is covered by an already-explored
// sibling). It returns w's fingerprint so the caller can run the ample
// cycle proviso against its own stack.
func (x *explorer) dfs(w *world, path []int, sleep map[actKey]struct{}) uint64 {
	if x.stop {
		return 0
	}
	fp := w.fingerprint()
	idmap, inv := w.canonMaps()
	ent, seen := x.visited[fp]
	if seen {
		if !x.red.Sleep {
			return fp
		}
		cur := translateSleep(sleep, idmap)
		if subsetOf(ent.sleep, cur) {
			return fp
		}
		// The state was previously explored under a sleep set that skipped
		// actions we are no longer entitled to skip: re-expand under the
		// intersection. The state is not re-counted.
		ent.sleep = intersect(ent.sleep, cur)
		sleep = translateSleep(ent.sleep, inv)
	} else {
		ent = &visitEntry{sleep: translateSleep(sleep, idmap)}
		x.visited[fp] = ent
		x.res.States++
		if len(path) > x.res.MaxDepth {
			x.res.MaxDepth = len(path)
		}
		if kind, detail, bad := w.violation(); bad {
			x.report(kind, detail, w)
			return fp
		}
		if x.res.States >= x.cfg.MaxStates {
			x.limitHit = true
			x.stop = true
			return fp
		}
	}

	acts := w.enumActions()
	if len(acts) == 0 {
		if !w.terminal() {
			x.report("deadlock",
				"no message in flight and no operation can issue, but scripts are unfinished: "+w.pendingOps(), w)
			return fp
		}
		for _, llc := range w.llcs {
			if err := w.chk.CheckQuiescent(llc); err != nil {
				x.report("quiescence", err.Error(), w)
				break
			}
		}
		return fp
	}

	ample := len(acts)
	if x.red.Ample {
		acts, ample = w.ampleOrder(acts)
	}

	ent.onStack = true
	widen := false
	committed := false
	var explored []action
	first := true
	for i, a := range acts {
		if i >= ample && !widen {
			committed = true
			break
		}
		if x.red.Sleep {
			if _, slept := sleep[a.key()]; slept {
				x.res.SleepSkips++
				continue
			}
		}
		cw := w
		if !first {
			// The first explored child consumes w; siblings replay the
			// prefix, yielding an identical pre-action copy of this state.
			cw = x.replay(path)
		}
		first = false
		var childSleep map[actKey]struct{}
		if x.red.Sleep {
			// Sleep inheritance (evaluated against cw, this state, before a
			// fires — the state the conditional independence relation is
			// valid in): slept actions stay asleep past an independent a,
			// and previously explored siblings go to sleep for a's subtree
			// when independent of a.
			childSleep = make(map[actKey]struct{}, len(sleep)+len(explored))
			for k := range sleep {
				if b, ok := cw.actionOfKey(k); ok && cw.indep(a, b) {
					childSleep[k] = struct{}{}
				}
			}
			for _, e := range explored {
				if cw.indep(a, e) {
					childSleep[e.key()] = struct{}{}
				}
			}
			explored = append(explored, a)
		}
		cw.apply(a.flat)
		x.res.Transitions++
		childFp := x.dfs(cw, append(append([]int(nil), path...), a.flat), childSleep)
		if x.stop {
			ent.onStack = false
			return fp
		}
		if x.red.Ample && !widen && i < ample {
			// Cycle proviso: an ample action closing a cycle back onto the
			// open DFS stack could defer the non-ample actions forever;
			// widen this state to full expansion.
			if ce, ok := x.visited[childFp]; ok && ce.onStack {
				widen = true
			}
		}
	}
	ent.onStack = false
	if committed {
		x.res.AmpleCommits++
	}
	return fp
}
