//go:build spandexmut

// Mutation tests: re-introduce two historical protocol bug shapes through
// the core fault-injection hooks and assert exhaustive exploration catches
// each one with a concrete interleaving trace, well inside the default
// state budget. Run with:
//
//	go test -tags spandexmut ./internal/mcheck -run TestMutation
package mcheck

import (
	"strings"
	"testing"

	"spandex/internal/core"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// TestMutationDropInvAckDetected arms the lost-InvAck fault: the LLC
// drops every sharer invalidation ack, so the invalidation transaction a
// GPU write starts against two MESI sharers can never complete. The
// "share" scenario reaches Shared state via two MESI readers; the checker
// must report the resulting deadlock.
func TestMutationDropInvAckDetected(t *testing.T) {
	core.SetMutDropInvAck(func(m *proto.Message) bool { return true })
	defer core.SetMutDropInvAck(nil)

	for _, p := range []Pairing{
		{CPU: ProtoMESI, GPU: ProtoGPU},
		{CPU: ProtoMESI, GPU: ProtoDeNovo},
	} {
		scn, err := ScenarioByName(p, "share")
		if err != nil {
			t.Fatal(err)
		}
		res := Explore(Config{Scenario: scn})
		if res.Violation == nil {
			t.Fatalf("%s/share: dropped InvAcks went undetected (%d states explored)", p, res.States)
		}
		if res.Violation.Kind != "deadlock" {
			t.Errorf("%s/share: expected a deadlock, got %s: %s", p, res.Violation.Kind, res.Violation.Detail)
		}
		if len(res.Violation.Trace) == 0 {
			t.Errorf("%s/share: violation carries no interleaving trace", p)
		}
		if res.States >= DefaultMaxStates {
			t.Errorf("%s/share: detection blew the state budget (%d states)", p, res.States)
		}
		t.Logf("%s/share: caught after %d states: %v", p, res.States, res.Violation)
		for _, line := range res.Violation.Trace {
			t.Logf("  %s", line)
		}
	}
}

// TestMutationSkipRvkOFwdDetected arms the missing-RvkO fault: handleReqS
// creates a revocation transaction covering every other-owned word but
// forgets to forward the RvkO probe to self-invalidating owners, so the
// transaction waits on a revocation that never happens. The "mixed-owner"
// scenario (MESI CPU owns word 0, DeNovo GPU owns word 1, second CPU
// issues a line-granularity ReqS) exercises exactly that path.
func TestMutationSkipRvkOFwdDetected(t *testing.T) {
	core.SetMutSkipRvkOFwd(func(mask memaddr.WordMask) memaddr.WordMask { return 0 })
	defer core.SetMutSkipRvkOFwd(nil)

	p := Pairing{CPU: ProtoMESI, GPU: ProtoDeNovo}
	scn, err := ScenarioByName(p, "mixed-owner")
	if err != nil {
		t.Fatal(err)
	}
	res := Explore(Config{Scenario: scn})
	if res.Violation == nil {
		t.Fatalf("%s/mixed-owner: skipped RvkO forward went undetected (%d states explored)", p, res.States)
	}
	if res.Violation.Kind != "deadlock" {
		t.Errorf("%s/mixed-owner: expected a deadlock, got %s: %s", p, res.Violation.Kind, res.Violation.Detail)
	}
	if len(res.Violation.Trace) == 0 {
		t.Error("violation carries no interleaving trace")
	}
	if res.States >= DefaultMaxStates {
		t.Errorf("detection blew the state budget (%d states)", res.States)
	}
	// The trace must include the ReqS delivery whose handling dropped the
	// probe — otherwise the interleaving doesn't explain the bug.
	found := false
	for _, line := range res.Violation.Trace {
		if strings.Contains(line, "ReqS") {
			found = true
		}
	}
	if !found {
		t.Errorf("trace never delivers a ReqS:\n  %s", strings.Join(res.Violation.Trace, "\n  "))
	}
	t.Logf("%s/mixed-owner: caught after %d states: %v", p, res.States, res.Violation)
	for _, line := range res.Violation.Trace {
		t.Logf("  %s", line)
	}
}

// TestMutationHooksDisarmed asserts a disarmed world is clean again —
// guarding against hook state leaking between tests.
func TestMutationHooksDisarmed(t *testing.T) {
	core.SetMutDropInvAck(nil)
	core.SetMutSkipRvkOFwd(nil)
	p := Pairing{CPU: ProtoMESI, GPU: ProtoDeNovo}
	scn, err := ScenarioByName(p, "mixed-owner")
	if err != nil {
		t.Fatal(err)
	}
	if res := Explore(Config{Scenario: scn}); res.Violation != nil {
		t.Fatalf("clean run after disarm found a violation: %v", res.Violation)
	}
}
