package mcheck

// reduce.go implements the partial-order machinery the explorer uses to
// prune interleavings without losing violations: a conditional
// independence relation between actions, persistent ("ample") action
// groups, and the action-key plumbing sleep sets are stored under. The
// static facts it leans on (guardMsgTypes, settledLocalMsgTypes,
// memSoleClient) are derived from the checked-in transition/message-flow
// graphs by cmd/spandex-indep into indep_tables.go; the soundness argument
// lives in DESIGN.md §10.
//
// The ground truth both reductions rest on: an action is one delivery (or
// issue) plus a full engine drain, so all its effects are (1) mutations of
// exactly one unit's state — the delivery destination or issuing device —
// and (2) appends to per-(src,dst) FIFO *tails* of the pending pool.
// Deliveries consume only FIFO *heads*. Two actions on different units
// therefore commute exactly: neither reads the other's unit state, and a
// FIFO's appends all originate from its source unit's handling, so two
// actions on different units never append to the same FIFO — their tail
// appends land on disjoint pairs and are order-invariant under the
// canonical per-pair serialization.

import (
	"spandex/internal/core"
	"spandex/internal/proto"
)

// action is one enabled transition, in both the flat world.apply encoding
// and the unit coordinates the reductions reason about. Unit indices
// coincide with NodeIDs: devices are [0, n), the LLC banks [n, n+B),
// DRAM n+B (B = 1 for every flat scenario).
type action struct {
	// flat is the world.apply/replay encoding: a device index for issues,
	// len(devs)+k for delivery of pending[k]. Valid for the exact state it
	// was enumerated in (and any deterministic replay of it).
	flat  int
	issue bool
	// unit is the acting unit: the issuing device, or the delivery
	// destination.
	unit int8
	// src is the delivery source unit, -1 for issues.
	src int8
	// msg is the delivered message (nil for issues). Its Line/Type/
	// Requestor fields refine LLC and DRAM dependence.
	msg *proto.Message
}

// actKey names an action independently of the flat pending index: an
// issue is named by its device, a delivery by its (src, dst) pair — the
// pair's head is unique in any state. Keys stay meaningful across
// independent actions (which never consume another pair's head), which is
// what lets sleep sets carry them between states; visited-set storage
// translates them into the state's canonical device coordinates.
type actKey struct {
	issue     bool
	unit, src int8
}

func (a action) key() actKey { return actKey{issue: a.issue, unit: a.unit, src: a.src} }

// canonKey translates a key's device coordinates by idmap (nil = identity).
// LLC/DRAM indices and the -1 issue source lie outside the device range
// and pass through unchanged.
func canonKey(k actKey, idmap []int8) actKey {
	if idmap == nil {
		return k
	}
	t := func(u int8) int8 {
		if u >= 0 && int(u) < len(idmap) {
			return idmap[u]
		}
		return u
	}
	return actKey{issue: k.issue, unit: t(k.unit), src: t(k.src)}
}

// actionOfKey resolves a key against the current state: the named issue if
// still enabled, or the current head of the named FIFO pair. ok is false
// when nothing matches (a defensively impossible case for keys carried in
// sleep sets — independence preserves their enabledness — which callers
// treat as "dependent").
func (w *world) actionOfKey(k actKey) (action, bool) {
	if k.issue {
		d := w.devs[k.unit]
		if d.inflight || d.next >= len(d.ops) {
			return action{}, false
		}
		return action{flat: int(k.unit), issue: true, unit: k.unit, src: -1}, true
	}
	for i, m := range w.pending {
		if int8(m.Src) == k.src && int8(m.Dst) == k.unit {
			return action{flat: len(w.devs) + i, unit: k.unit, src: k.src, msg: m}, true
		}
	}
	return action{}, false
}

// indep reports whether two actions enabled in w's current state commute
// exactly: executing them in either order yields the same canonical state,
// and neither disables the other. Different units always commute (see the
// file comment); same-unit pairs are dependent, except at the LLC and DRAM
// where message-level refinement can still separate them. The relation is
// conditional — llcIndep consults w's live directory state — and is only
// meaningful for the state it is evaluated in, which is exactly how the
// explorer uses it (sleep-set filtering at the state the first action
// fires from).
func (w *world) indep(a, b action) bool {
	if a.issue || b.issue {
		if a.issue && b.issue {
			return a.unit != b.unit
		}
		// Issue vs delivery: the issue touches its device and FIFO tails;
		// the delivery touches its destination unit and FIFO tails. They
		// conflict only when that is the same unit. (A delivery *from* the
		// issuing device is fine: it consumes a head the issue never sees.)
		return a.unit != b.unit
	}
	if a.unit != b.unit {
		return true
	}
	n := len(w.devs)
	switch u := int(a.unit); {
	case u >= n && u < n+len(w.llcs): // one LLC bank
		return w.llcIndep(w.llcs[u-n], a.msg, b.msg)
	case u == n+len(w.llcs): // DRAM
		// Heads from different banks always commute: bank interleaving makes
		// their lines disjoint, and each bank's MemReadRsp traffic rides its
		// own DRAM→bank FIFO. Same-bank heads cannot coexist (per-pair FIFO)
		// — this arm only fires for keys carried across states. Same line: a
		// write reorders against a read's data. Different lines, same bank:
		// memory words disjoint, but MemReadRsp emission order onto the
		// shared DRAM→bank FIFO still matters when both are reads.
		if a.msg.Src != b.msg.Src {
			return true
		}
		if a.msg.Line == b.msg.Line {
			return false
		}
		return a.msg.Type != proto.MemRead || b.msg.Type != proto.MemRead
	}
	return false
}

// llcIndep refines same-destination dependence for two deliveries to the
// same LLC bank on different lines. Statically, *any* LLC handler may ripple into global
// structure — a miss allocates, allocation may evict a victim line, and
// resolving any transaction retries parked fetches — so a sound static
// line-locality set is empty. Instead settledLocalMsgTypes names the
// types whose handling is line-local *provided* the line is present and
// settled, and the rest is checked dynamically against the live
// directory: both lines settled (present, fetched, no open transaction),
// no fetch parked on allocation anywhere (its retry is woken by
// transaction resolution on an unrelated line), and the two handlers'
// possible emission targets — each message's requestor/sender plus the
// current sharers and owners of its line — disjoint, so no send order on
// a shared outgoing FIFO is at stake.
func (w *world) llcIndep(llc *core.LLC, a, b *proto.Message) bool {
	if a.Line == b.Line {
		return false
	}
	if !settledLocalMsgTypes[a.Type] || !settledLocalMsgTypes[b.Type] {
		return false
	}
	if llc.AllocWaiting() {
		return false
	}
	if !llc.LineSettled(a.Line) || !llc.LineSettled(b.Line) {
		return false
	}
	return w.llcDestBits(llc, a)&w.llcDestBits(llc, b) == 0
}

// llcDestBits over-approximates the devices an LLC bank may message while
// handling m at a settled line: the requestor (responses), the sender
// (write-back acks), and every current sharer or owner of the line
// (invalidations, revocations, forwards).
func (w *world) llcDestBits(llc *core.LLC, m *proto.Message) uint64 {
	bits := llc.ProbeTargets(m.Line)
	if i := int(m.Requestor); i >= 0 && i < len(w.devs) {
		bits |= 1 << uint(i)
	}
	if i := int(m.Src); i >= 0 && i < len(w.devs) {
		bits |= 1 << uint(i)
	}
	return bits
}

// ampleOrder tries to commit exploration to a single unit's action group —
// a persistent set: no execution using only actions outside the group can
// enable or perform anything dependent on it. When a committable unit
// exists, acts is reordered group-first and the group length returned;
// the explorer then expands only that prefix (unless the cycle proviso
// widens it). Otherwise ample = len(acts): full expansion.
//
// DRAM's group is committable whenever it is nonempty: the LLC is its only
// client (memSoleClient, checked by spandex-indep), so every future
// MemRead/MemWrite queues behind the head already in the group, and its
// responses flow only to the LLC.
//
// A device u's group (all deliveries to u, plus u's issue if ready) is
// committable iff outside execution cannot place a fresh message at the
// head of a previously empty FIFO toward u. Three sources could:
//
//  1. A forwardable request of u's (guardMsgTypes, Requestor=u) sitting
//     anywhere outside u — in the pending pool not yet at u, parked in an
//     LLC transaction queue (QueuedRequestorBits), or held inside another
//     device's controller behind a grant, probe, or atomic
//     (HoldsExternalFor). Any of these can reach an owner device whose
//     direct response to u lands on a possibly empty device→u FIFO.
//     These are disqualifying unconditionally.
//  2. An LLC bank emitting to u. A bank whose bank→u FIFO is nonempty is
//     harmless: every such emission queues behind a head already in u's
//     group and creates no fresh action — condition 1 alone suffices. A
//     bank whose FIFO to u is empty must be provably unable to emit to u:
//     no pending message anywhere names u as requestor or sender (refd —
//     its delivery could draw a response), no parked transaction request
//     names u (QueuedRequestorBits again), and that bank's directory holds
//     no sharer or owner record of u (DirectoryMentions — an unrelated
//     request could probe it). Under those, u's identity exists nowhere
//     outside u, and only u's own actions can reintroduce it — outside
//     execution keeps the property inductively.
//  3. Another device emitting to u spontaneously — impossible: devices
//     emit device→device only when answering a forward, covered by 1.
//
// The LLC banks themselves are never committable: they converse with
// everyone. Among committable units DRAM wins (its group touches no
// device — with banks it holds at most one head per bank, all mutually
// commuting), then the smallest device group, lowest index on ties.
func (w *world) ampleOrder(acts []action) ([]action, int) {
	n := len(w.devs)
	nb := len(w.llcs)
	memUnit := int8(n + nb)
	// llcHead[b*n+u]: the bank-b→device-u FIFO is nonempty.
	llcHead := make([]bool, nb*n)
	guarded := make([]bool, n)
	refd := make([]bool, n)
	for _, m := range w.pending {
		if b := int(m.Src) - n; b >= 0 && b < nb && int(m.Dst) < n {
			llcHead[b*n+int(m.Dst)] = true
		}
		if guardMsgTypes[m.Type] && int(m.Requestor) >= 0 && int(m.Requestor) < n &&
			m.Dst != m.Requestor {
			guarded[m.Requestor] = true
		}
		if r := int(m.Requestor); r >= 0 && r < n && int(m.Dst) != r {
			refd[r] = true
		}
		if s := int(m.Src); s >= 0 && s < n && int(m.Dst) != s {
			refd[s] = true
		}
	}
	sizes := make([]int, n+nb+1)
	for _, a := range acts {
		sizes[a.unit]++
	}
	best := int8(-1)
	if memSoleClient && sizes[memUnit] > 0 {
		best = memUnit
	}
	if best < 0 {
		var queued uint64
		for _, llc := range w.llcs {
			queued |= llc.QueuedRequestorBits()
		}
		held := func(u int) bool {
			for x, d := range w.devs {
				if x != u && d.holds != nil && d.holds(proto.NodeID(u)) {
					return true
				}
			}
			return false
		}
		for u := 0; u < n; u++ {
			if sizes[u] == 0 || guarded[u] || queued&(1<<uint(u)) != 0 {
				continue
			}
			okLLC := true
			for b, llc := range w.llcs {
				if llcHead[b*n+u] {
					continue
				}
				if refd[u] || llc.DirectoryMentions(u) {
					okLLC = false
					break
				}
			}
			if !okLLC || held(u) {
				continue
			}
			if best < 0 || sizes[u] < sizes[best] {
				best = int8(u)
			}
		}
	}
	if best < 0 {
		return acts, len(acts)
	}
	ordered := make([]action, 0, len(acts))
	for _, a := range acts {
		if a.unit == best {
			ordered = append(ordered, a)
		}
	}
	ample := len(ordered)
	for _, a := range acts {
		if a.unit != best {
			ordered = append(ordered, a)
		}
	}
	return ordered, ample
}
