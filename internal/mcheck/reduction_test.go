package mcheck

import (
	"testing"
)

// originalScenarios is the pre-reduction scenario corpus: every pairing's
// mp/race/samword/evict/share/atomic shapes, all small enough to explore
// exhaustively with NO reduction inside the default state budget. That
// makes them the mode-against-mode soundness corpus — the unreduced
// exploration is ground truth, and each reduction layer is checked
// against it. The 4–6-device scenarios exist precisely because they are
// not feasible unreduced; TestReductionLargeScenarios compares them
// reduced-mode-against-reduced-mode instead.
var originalScenarios = map[string]bool{
	"mp":            true,
	"race":          true,
	"samword":       true,
	"evict-owned":   true,
	"share":         true,
	"evict-shared":  true,
	"shared-atomic": true,
	"mixed-owner":   true,
}

// exploreSet mirrors Explore but exposes the visited canonical-state set,
// so modes sharing a fingerprint function can be compared state-for-state
// rather than only by count.
func exploreSet(scn Scenario, red Reduction) (Result, map[uint64]bool) {
	x := &explorer{
		cfg:     Config{Scenario: scn, MaxStates: DefaultMaxStates},
		red:     red,
		visited: make(map[uint64]*visitEntry),
		res:     Result{Scenario: scn.Name},
	}
	x.dfs(newWorld(scn, nil, red), nil, nil)
	x.res.Complete = !x.limitHit && x.res.Violation == nil
	set := make(map[uint64]bool, len(x.visited))
	for k := range x.visited {
		set[k] = true
	}
	return x.res, set
}

// TestReductionSoundness checks every reduction layer against the
// unreduced ground truth on the original corpus:
//
//   - Verdict equality: all five modes (none, sleep-only, canon,
//     canon+sleep, full) agree on clean/violating and complete.
//   - Containment: the states a sleep-set run visits are a subset of the
//     states the corresponding run without sleep sets visits (compared
//     under the same fingerprint function). Sleep sets prune transitions;
//     a run that visits a fingerprint the exhaustive run never reaches
//     would mean replay nondeterminism or fingerprint corruption. Exact
//     set equality does NOT hold: the flat (non-canonical) fingerprint
//     hashes pending messages in send order, so commuted interleavings of
//     the same physical state count as distinct fingerprints, and sleep
//     sets prune exactly those duplicates.
//   - Monotonic shrinkage: canon <= none, full <= canon+sleep.
//   - Aggregate effectiveness: full reduction collapses the corpus's
//     total state count by at least 3x — the scaling headroom the
//     4–6-device scenarios spend.
//
// -short (the -race lane) restricts to the first pairing.
func TestReductionSoundness(t *testing.T) {
	pairings := Pairings()
	if testing.Short() {
		pairings = pairings[:1]
	}
	sleepOnly := Reduction{Sleep: true}
	canonOnly := Reduction{Canon: true}
	canonSleep := Reduction{Canon: true, Sleep: true}
	full := FullReduction()

	var noneTotal, fullTotal int
	for _, p := range pairings {
		for _, scn := range Scenarios(p) {
			if !originalScenarios[scn.Name] {
				continue
			}
			none, noneSet := exploreSet(scn, NoReduction())
			sleep, sleepSet := exploreSet(scn, sleepOnly)
			canon, canonSet := exploreSet(scn, canonOnly)
			cs, csSet := exploreSet(scn, canonSleep)
			fl, _ := exploreSet(scn, full)
			noneTotal += none.States
			fullTotal += fl.States

			for _, r := range []Result{none, sleep, canon, cs, fl} {
				if r.Violation != nil {
					t.Errorf("%s/%s: violation under %+v: %v", p, scn.Name, r, r.Violation)
				}
				if !r.Complete {
					t.Errorf("%s/%s: incomplete exploration (%d states)", p, scn.Name, r.States)
				}
			}

			if !subset(sleepSet, noneSet) {
				t.Errorf("%s/%s: sleep-only run visited states the exhaustive run never reached",
					p, scn.Name)
			}
			if !subset(csSet, canonSet) {
				t.Errorf("%s/%s: canon+sleep run visited states the canon-only run never reached",
					p, scn.Name)
			}
			if canon.States > none.States {
				t.Errorf("%s/%s: canonicalization grew the state count (%d > %d)",
					p, scn.Name, canon.States, none.States)
			}
			if fl.States > cs.States {
				t.Errorf("%s/%s: ample sets grew the state count (%d > %d)",
					p, scn.Name, fl.States, cs.States)
			}
			if sleep.SleepSkips == 0 && none.States > 100 {
				t.Errorf("%s/%s: sleep sets pruned nothing on a %d-state space", p, scn.Name, none.States)
			}
			t.Logf("%s/%s: none=%d sleep=%d canon=%d canon+sleep=%d full=%d (ample=%d sleep-skips=%d)",
				p, scn.Name, none.States, sleep.States, canon.States, cs.States, fl.States,
				fl.AmpleCommits, fl.SleepSkips)
		}
	}
	ratio := float64(noneTotal) / float64(fullTotal)
	t.Logf("aggregate: %d unreduced states vs %d fully reduced (%.2fx)", noneTotal, fullTotal, ratio)
	if ratio < 3.0 {
		t.Errorf("full reduction achieves only %.2fx on the original corpus, want >= 3x", ratio)
	}
}

// TestReductionLargeScenarios cross-checks the reduced modes against each
// other on multi-device scenarios where unreduced exploration is
// unaffordable: canon+sleep (no ample commitment) must reach the same
// verdict as the full reduction, and ample sets must not grow the
// canonical state count. Scenarios whose canon+sleep exploration exceeds
// the budget are skipped — that infeasibility is exactly why the full
// reduction exists.
//
// -short (the -race lane) drops fan6: its canon+sleep exploration is
// ~98% of this test's runtime (6 devices, ~10x per-state replay cost
// under the race detector), and the race lane's job is data races, not
// reduction ratios — the full cross-check runs race-free in CI.
func TestReductionLargeScenarios(t *testing.T) {
	names := []string{"samword4", "fan6", "wb-race"}
	if testing.Short() {
		names = []string{"samword4", "wb-race"}
	}
	p := Pairing{CPU: ProtoMESI, GPU: ProtoGPU}
	for _, name := range names {
		scn, err := ScenarioByName(p, name)
		if err != nil {
			t.Fatal(err)
		}
		cs, _ := exploreSet(scn, Reduction{Canon: true, Sleep: true})
		fl, _ := exploreSet(scn, FullReduction())
		if !cs.Complete && cs.Violation == nil {
			t.Logf("%s/%s: canon+sleep exceeds the state budget (full reduction: %d states); skipping", p, name, fl.States)
			continue
		}
		if (cs.Violation != nil) != (fl.Violation != nil) {
			t.Errorf("%s/%s: verdict mismatch: canon+sleep=%v full=%v", p, name, cs.Violation, fl.Violation)
		}
		if fl.Violation != nil {
			t.Errorf("%s/%s: unexpected violation: %v", p, name, fl.Violation)
		}
		if fl.States > cs.States {
			t.Errorf("%s/%s: ample sets grew the state count (%d > %d)", p, name, fl.States, cs.States)
		}
		t.Logf("%s/%s: canon+sleep=%d full=%d (%.2fx)", p, name, cs.States, fl.States,
			float64(cs.States)/float64(fl.States))
	}
}

// subset reports whether every fingerprint in a was also visited in b.
func subset(a, b map[uint64]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
