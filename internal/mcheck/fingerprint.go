package mcheck

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"spandex/internal/proto"
	"spandex/internal/stats"
)

// fingerprint.go canonicalizes a world's protocol state into a 64-bit
// structural hash, the memoization key of the DFS. Two worlds reached by
// different interleavings must hash equal iff their protocol-visible state
// is equal, so the walk:
//
//   - skips the simulation scaffolding (engine, network, stats, checker,
//     coverage recorder) and every sim.Time-typed field — absolute times
//     differ between interleavings without affecting protocol behaviour;
//   - skips cache LRU bookkeeping (field names "lru"/"lastUse"), which
//     counts accesses and would otherwise split logically equal states;
//   - skips per-scenario configuration that is identical in every world of
//     a scenario (the LLC's device registration tables, the scripted
//     device names);
//   - skips sim.Pool fields and collapses nil and empty slices: object
//     pools and recycled backing arrays are allocator state, and which of
//     two logically equal worlds happened to recycle a record is an
//     interleaving-history artifact;
//   - hashes cache.MSHR and cache.WriteBuffer by their live entries only
//     (sorted by line, resp. FIFO seq order): slot indices, free bitmaps,
//     stale content in freed slots, and raw allocation stamps all differ
//     between interleavings that reach the same protocol state;
//   - hashes pointers by first-visit traversal index, never by address, so
//     aliasing structure is captured but heap layout is not;
//   - hashes func values as nil/non-nil only (completion callbacks; which
//     operation they belong to is captured by the device script cursors);
//   - serializes map entries and sorts them, removing iteration order.
//
// Under Reduction.Canon the walk additionally canonicalizes two identity
// artifacts (see world.fingerprint):
//
//   - the pending message pool is serialized per (src, dst) FIFO with the
//     pairs sorted, not in flat send order — the network only ever
//     delivers per-pair heads, so the interleaving of different pairs in
//     the flat slice is history residue, not state;
//   - interchangeable devices (same protocol, identical scripts) are
//     renamed: the hash is minimized over every permutation within the
//     scenario's device symmetry classes, translating each proto.NodeID
//     value, the LLC directory's sharer bitset and per-word owner indices,
//     and walking the devices in canonical order. Two states that differ
//     only by a swap of identical devices then hash equal.
//
// The hash is FNV-1a over the canonical byte string. A 64-bit collision
// would wrongly prune a reachable state; with the tiny state counts mcheck
// explores (≤ millions) the probability is negligible.

// skipTypes are pointer types whose referents are simulation scaffolding,
// not protocol state.
var skipTypes = map[string]bool{
	"*sim.Engine":              true,
	"*noc.Network":             true,
	"*stats.Stats":             true,
	"*core.Checker":            true,
	"*core.TransitionCoverage": true,
}

// skipFields are struct field names holding replacement-policy tick
// counters (cache.Array/Entry): pure access counts, irrelevant to
// protocol state.
var skipFields = map[string]bool{
	"lru":  true,
	"tick": true,
}

// skipStructFields drops per-scenario configuration that is bit-identical
// in every world of a scenario and would otherwise defeat the symmetry
// renaming: the LLC's registration tables list devices in registration
// order, a device's display name embeds its original index, and its holds
// query is a method value bound at construction (not data at all).
var skipStructFields = map[string]map[string]bool{
	"core.LLC":    {"devices": true, "devIdx": true, "isMESI": true},
	"mcheck.mdev": {"name": true, "holds": true},
}

type hasher struct {
	visited map[uintptr]int
	// idmap, when non-nil, renames device identities: every proto.NodeID
	// value v with 0 <= v < len(idmap) hashes as idmap[v], the LLC sharer
	// bitset is bit-permuted and per-word owner indices are mapped.
	// Device indices and NodeIDs coincide in mcheck worlds (devices are
	// registered in id order), so one table serves both encodings.
	idmap []int8
}

func (h *hasher) mapID(id int64) int64 {
	if h.idmap != nil && id >= 0 && id < int64(len(h.idmap)) {
		return int64(h.idmap[id])
	}
	return id
}

func (h *hasher) walk(v reflect.Value, buf *bytes.Buffer) {
	if h.idmap != nil && v.Type().String() == "proto.NodeID" {
		fmt.Fprintf(buf, "i%d", h.mapID(v.Int()))
		return
	}
	switch v.Kind() {
	case reflect.Invalid:
		buf.WriteString("<inv>")
	case reflect.Bool:
		if v.Bool() {
			buf.WriteByte('T')
		} else {
			buf.WriteByte('F')
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(buf, "i%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(buf, "u%d", v.Uint())
	case reflect.String:
		fmt.Fprintf(buf, "s%q", v.String())
	case reflect.Func:
		if v.IsNil() {
			buf.WriteString("f0")
		} else {
			buf.WriteString("f1")
		}
	case reflect.Ptr:
		if v.IsNil() {
			buf.WriteString("p0")
			return
		}
		if skipTypes[v.Type().String()] {
			buf.WriteString("p_")
			return
		}
		if idx, ok := h.visited[v.Pointer()]; ok {
			fmt.Fprintf(buf, "p@%d", idx)
			return
		}
		h.visited[v.Pointer()] = len(h.visited)
		buf.WriteString("p{")
		h.walk(v.Elem(), buf)
		buf.WriteByte('}')
	case reflect.Interface:
		if v.IsNil() {
			buf.WriteString("n0")
			return
		}
		elem := v.Elem()
		fmt.Fprintf(buf, "n<%s>", elem.Type().String())
		h.walk(elem, buf)
	case reflect.Slice:
		// nil and empty collapse: a recycled record holds non-nil empty
		// queues ([:0] over the old backing array) where a fresh record
		// holds nil — the same logical state either way.
		if v.Len() == 0 {
			buf.WriteString("l0")
			return
		}
		fmt.Fprintf(buf, "l%d[", v.Len())
		for i := 0; i < v.Len(); i++ {
			h.walk(v.Index(i), buf)
			buf.WriteByte(',')
		}
		buf.WriteByte(']')
	case reflect.Array:
		buf.WriteString("a[")
		for i := 0; i < v.Len(); i++ {
			h.walk(v.Index(i), buf)
			buf.WriteByte(',')
		}
		buf.WriteByte(']')
	case reflect.Map:
		if v.IsNil() {
			buf.WriteString("m0")
			return
		}
		entries := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			var eb bytes.Buffer
			h.walk(iter.Key(), &eb)
			eb.WriteByte(':')
			h.walk(iter.Value(), &eb)
			entries = append(entries, eb.String())
		}
		sort.Strings(entries)
		fmt.Fprintf(buf, "m%d{", len(entries))
		for _, e := range entries {
			buf.WriteString(e)
			buf.WriteByte(';')
		}
		buf.WriteByte('}')
	case reflect.Struct:
		t := v.Type()
		if strings.HasPrefix(t.String(), "cache.MSHR[") {
			h.walkMSHR(v, buf)
			return
		}
		if t.String() == "cache.WriteBuffer" {
			h.walkWriteBuffer(v, buf)
			return
		}
		skip := skipStructFields[t.String()]
		llcLine := h.idmap != nil && t.String() == "core.llcLine"
		fmt.Fprintf(buf, "t<%s>{", t.String())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if skipFields[f.Name] || skip[f.Name] || f.Type.String() == "sim.Time" ||
				strings.HasPrefix(f.Type.String(), "sim.Pool[") {
				continue
			}
			// The sendV/l1V scratch slots hold a copy of the last message
			// sent — pure history residue, never read after the Send.
			if (f.Name == "out" || f.Name == "toL1") && f.Type.String() == "proto.Message" {
				continue
			}
			buf.WriteString(f.Name)
			buf.WriteByte('=')
			if llcLine && f.Name == "sharers" {
				// Bitset of device indices: permute the device bits.
				old := v.Field(i).Uint()
				var renamed uint64
				for d := 0; d < len(h.idmap); d++ {
					if old&(1<<d) != 0 {
						renamed |= 1 << uint(h.idmap[d])
					}
				}
				renamed |= old &^ (1<<uint(len(h.idmap)) - 1)
				fmt.Fprintf(buf, "u%d", renamed)
				buf.WriteByte(';')
				continue
			}
			if llcLine && f.Name == "owner" {
				// Per-word owner device indices (-1 = none): map each.
				ow := v.Field(i)
				buf.WriteString("a[")
				for w := 0; w < ow.Len(); w++ {
					fmt.Fprintf(buf, "i%d,", h.mapID(ow.Index(w).Int()))
				}
				buf.WriteByte(']')
				buf.WriteByte(';')
				continue
			}
			h.walk(v.Field(i), buf)
			buf.WriteByte(';')
		}
		buf.WriteByte('}')
	case reflect.Chan, reflect.UnsafePointer, reflect.Complex64, reflect.Complex128,
		reflect.Float32, reflect.Float64:
		panic("mcheck: unhashable kind " + v.Kind().String() + " in protocol state")
	}
}

// walkMSHR hashes a cache.MSHR by its live entries, sorted by line. Slot
// indices, the free bitmap, and stale content left in freed slots are
// allocation-history artifacts: two interleavings that reach the same set
// of outstanding transactions may place them in different slots.
func (h *hasher) walkMSHR(v reflect.Value, buf *bytes.Buffer) {
	byLine := v.FieldByName("byLine")
	slots := v.FieldByName("slots")
	entries := make([]string, 0, byLine.Len())
	iter := byLine.MapRange()
	for iter.Next() {
		var eb bytes.Buffer
		h.walk(iter.Key(), &eb)
		eb.WriteByte(':')
		h.walk(slots.Index(int(iter.Value().Int())), &eb)
		entries = append(entries, eb.String())
	}
	sort.Strings(entries)
	fmt.Fprintf(buf, "mshr%d{", len(entries))
	for _, e := range entries {
		buf.WriteString(e)
		buf.WriteByte(';')
	}
	buf.WriteByte('}')
}

// walkWriteBuffer hashes a cache.WriteBuffer by its live entries in FIFO
// (seq) order. Emission order captures the protocol-visible age ordering;
// the raw seq stamps, nextSeq counter, slot indices and occupancy bitmaps
// all advance with interleaving history without changing protocol state.
func (h *hasher) walkWriteBuffer(v reflect.Value, buf *bytes.Buffer) {
	byLine := v.FieldByName("byLine")
	slots := v.FieldByName("slots")
	type live struct {
		seq uint64
		idx int
	}
	lives := make([]live, 0, byLine.Len())
	iter := byLine.MapRange()
	for iter.Next() {
		idx := int(iter.Value().Int())
		lives = append(lives, live{slots.Index(idx).FieldByName("seq").Uint(), idx})
	}
	sort.Slice(lives, func(i, j int) bool { return lives[i].seq < lives[j].seq })
	fmt.Fprintf(buf, "wb%d{", len(lives))
	for _, l := range lives {
		e := slots.Index(l.idx)
		t := e.Type()
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).Name == "seq" {
				continue
			}
			h.walk(e.Field(i), buf)
			buf.WriteByte(';')
		}
		buf.WriteByte('|')
	}
	buf.WriteByte('}')
}

// fnv folds a canonical byte string into the 64-bit FNV-1a hash.
func fnv(b []byte) uint64 {
	out := stats.FNVOffset()
	for _, c := range b {
		out = stats.FNVAdd(out, uint64(c))
	}
	return out
}

// structuralHash canonicalizes and hashes the given roots with no device
// renaming — the Reduction.Canon=false (PR 3) representation.
func structuralHash(roots ...interface{}) uint64 {
	h := &hasher{visited: make(map[uintptr]int)}
	var buf bytes.Buffer
	for _, r := range roots {
		h.walk(reflect.ValueOf(r), &buf)
		buf.WriteByte('|')
	}
	return fnv(buf.Bytes())
}

// hashWithPerm computes the canonical hash of w under one device renaming:
// idmap[i] is the canonical identity of device i, inv its inverse. The
// pending pool is serialized per renamed (src, dst) FIFO with pairs
// sorted, and devices are walked in canonical order, so two worlds equal
// up to a renaming of interchangeable devices produce identical byte
// strings.
func (w *world) hashWithPerm(idmap []int8, inv []int8) uint64 {
	h := &hasher{visited: make(map[uintptr]int), idmap: idmap}
	var buf bytes.Buffer
	for _, llc := range w.llcs {
		h.walk(reflect.ValueOf(llc), &buf)
		buf.WriteByte('|')
	}
	h.walk(reflect.ValueOf(w.mem), &buf)
	buf.WriteByte('|')

	// Pending, grouped per renamed (src, dst) FIFO in send order. The flat
	// interleaving of different pairs is unobservable: only per-pair heads
	// are ever deliverable.
	type fifo struct {
		src, dst int64
		msgs     []*proto.Message
	}
	var fifos []fifo
	index := make(map[[2]int64]int)
	for _, m := range w.pending {
		key := [2]int64{h.mapID(int64(m.Src)), h.mapID(int64(m.Dst))}
		i, ok := index[key]
		if !ok {
			i = len(fifos)
			index[key] = i
			fifos = append(fifos, fifo{src: key[0], dst: key[1]})
		}
		fifos[i].msgs = append(fifos[i].msgs, m)
	}
	sort.Slice(fifos, func(i, j int) bool {
		if fifos[i].src != fifos[j].src {
			return fifos[i].src < fifos[j].src
		}
		return fifos[i].dst < fifos[j].dst
	})
	for _, f := range fifos {
		fmt.Fprintf(&buf, "q%d>%d[", f.src, f.dst)
		for _, m := range f.msgs {
			h.walk(reflect.ValueOf(m).Elem(), &buf)
			buf.WriteByte(',')
		}
		buf.WriteByte(']')
	}
	buf.WriteByte('|')

	// Devices in canonical order: position j holds the device renamed to j.
	for j := range w.devs {
		h.walk(reflect.ValueOf(w.devs[inv[j]]), &buf)
		buf.WriteByte('|')
	}
	return fnv(buf.Bytes())
}
