// Package mcheck is an exhaustive explicit-state model checker for tiny
// Spandex configurations (2–3 devices, one or two cache lines, a couple of
// words). It enumerates every interleaving of message deliveries and
// device operation issues — subject to the network's per-(src,dst) FIFO
// ordering guarantee, which the protocols assume — memoizing canonicalized
// states so each distinct protocol state is expanded once. Every explored
// state is audited with core.Checker's SWMR/disjointness invariants; on
// top of those, mcheck adds deadlock detection (quiescent system with
// unfinished operations), a data-value check (every loaded value must have
// been written to that word by someone, ruling out out-of-thin-air and
// cross-word corruption), and the quiescent-state ownership audit at every
// terminal state. Violations are reported with the concrete interleaving
// trace that reaches them.
package mcheck

import (
	"fmt"

	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// Proto names an L1 protocol a scripted device speaks.
type Proto string

const (
	// ProtoMESI is a MESI L1 behind a MESI translation unit.
	ProtoMESI Proto = "mesi"
	// ProtoDeNovo is a DeNovo L1 (word-granularity ownership).
	ProtoDeNovo Proto = "denovo"
	// ProtoGPU is a GPU-coherence L1 (write-through, no ownership).
	ProtoGPU Proto = "gpu"
)

// Pairing is one (CPU protocol, GPU protocol) combination from the
// paper's Spandex configurations.
type Pairing struct {
	CPU Proto // ProtoMESI or ProtoDeNovo
	GPU Proto // ProtoGPU or ProtoDeNovo
}

func (p Pairing) String() string { return string(p.CPU) + "+" + string(p.GPU) }

// Pairings enumerates every CPU×GPU protocol combination the Spandex LLC
// must compose: {MESI, DeNovo} × {GPU coherence, DeNovo}.
func Pairings() []Pairing {
	return []Pairing{
		{CPU: ProtoMESI, GPU: ProtoGPU},
		{CPU: ProtoMESI, GPU: ProtoDeNovo},
		{CPU: ProtoDeNovo, GPU: ProtoGPU},
		{CPU: ProtoDeNovo, GPU: ProtoDeNovo},
	}
}

// DeviceScript is one scripted device: its protocol and its (in-order)
// operation sequence. Scripts are restricted to loads, stores, fetch-adds
// and release fences — fences are required after stores because every L1
// buffers writes lazily (drain happens under occupancy pressure or at a
// release), so an unfenced store generates no protocol traffic to explore.
// The data-value check derives each word's legal value set from the stores
// and the subset-sum closure of the fetch-adds.
type DeviceScript struct {
	Proto Proto
	Ops   []device.Op
}

// InitVal seeds one word of backing memory before the run.
type InitVal struct {
	Addr memaddr.Addr
	Val  uint32
}

// Scenario is a tiny closed system to model-check.
type Scenario struct {
	Name    string
	Devices []DeviceScript
	Init    []InitVal
	// LLCBytes/LLCWays size the LLC array (per bank when LLCBanks > 1);
	// zero means 8 lines × 2 ways, plenty for the one- or two-line
	// scenarios (no evictions). The evict-* scenarios shrink this to a
	// single line to force victimization.
	LLCBytes, LLCWays int
	// LLCBanks shards the LLC into address-interleaved banks on their own
	// NoC nodes (proto.BankOf line homing, like the full simulator's
	// bank-sharded LLC). 0 or 1 is the flat single LLC every pre-banking
	// scenario uses. The bank-* scenarios set 2 to explore concurrent
	// transactions on independent directories.
	LLCBanks int
	// DevBytes/DevWays size every device L1; zero means 4 lines × 2 ways
	// (no device-side evictions). The wb-* scenarios shrink this to a
	// single line so device evictions race LLC revocations.
	DevBytes, DevWays int
	// Heavy marks scenarios whose exploration is expensive even fully
	// reduced (thousands of states over deep replay chains). The -race CI
	// lane (`go test -race -short`) skips them; the plain test suite and
	// the CI mcheck-smoke coverage run still explore them.
	Heavy bool
}

// word returns the address of word i of line 0.
func word(i int) memaddr.Addr { return memaddr.Addr(i * 4) }

func load(a memaddr.Addr) device.Op {
	return device.Op{Kind: device.OpLoad, Addr: a}
}

func store(a memaddr.Addr, v uint32) device.Op {
	return device.Op{Kind: device.OpStore, Addr: a, Value: v}
}

// fence is a release: it drains the write buffer and pending ownership
// requests before the next operation issues.
func fence() device.Op {
	return device.Op{Kind: device.OpFence, Rel: true}
}

// fetchadd atomically adds v to a word and returns the old value (the GPU
// path issues it as ReqWTData).
func fetchadd(a memaddr.Addr, v uint32) device.Op {
	return device.Op{Kind: device.OpAtomic, Atomic: proto.AtomicFetchAdd, Addr: a, Value: v}
}

// lineWord returns the address of word i of line n.
func lineWord(n, i int) memaddr.Addr {
	return memaddr.Addr(n*memaddr.LineBytes + i*4)
}

// Scenarios returns the standard scenario set for a pairing. All pairings
// get the two-device message-passing and racing-store shapes; MESI CPUs
// additionally get three-device shapes that reach the Shared state (two
// MESI readers force ReqS option (1)) and, with a DeNovo GPU, the
// mixed-ownership ReqS whose revocation forwards RvkO to a
// self-invalidating owner — the paths the seeded mutations break.
func Scenarios(p Pairing) []Scenario {
	cpu, gpu := p.CPU, p.GPU
	scns := []Scenario{
		{
			// Producer/consumer on one line: CPU writes data then flag, GPU
			// reads flag then data. No fences, so any written value (or the
			// initial zero) is legal; the checks are coherence and deadlock
			// freedom, not ordering.
			Name: "mp",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 42), fence(), store(word(1), 1), fence()}},
				{Proto: gpu, Ops: []device.Op{load(word(1)), load(word(0))}},
			},
		},
		{
			// Cross write-read race on two words of one line (false
			// sharing): exercises ownership transfer against write-through
			// under every delivery order.
			Name: "race",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 5), fence(), load(word(1))}},
				{Proto: gpu, Ops: []device.Op{store(word(1), 7), fence(), load(word(0))}},
			},
		},
		{
			// Same-word write/write/read race: both devices store to word 0
			// then read it back.
			Name: "samword",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 1), fence(), load(word(0))}},
				{Proto: gpu, Ops: []device.Op{store(word(0), 2), fence(), load(word(0))}},
			},
		},
	}
	// Capacity pressure: a one-line LLC forces the GPU's second-line touch
	// to evict whatever the CPU's traffic installed, covering the
	// eviction-revocation handshake (O+evict → RspRvkO resolution) the
	// no-eviction scenarios never reach.
	scns = append(scns, Scenario{
		Name:     "evict-owned",
		LLCBytes: memaddr.LineBytes, LLCWays: 1,
		Devices: []DeviceScript{
			{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 5), fence()}},
			{Proto: gpu, Ops: []device.Op{load(lineWord(1, 0))}},
		},
	})
	if cpu == ProtoMESI {
		// Two MESI readers reach Shared state via ReqS option (1); the GPU
		// write then drives the sharer-invalidation (Inv/InvAck) path the
		// drop-InvAck mutation breaks.
		scns = append(scns, Scenario{
			Name: "share",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{load(word(0))}},
				{Proto: cpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{store(word(0), 9), fence(), load(word(0))}},
			},
		})
	}
	if cpu == ProtoMESI {
		// Shared-line eviction: two MESI readers put line 0 in Shared, then
		// the GPU's touch of line 1 evicts it from a one-line LLC — the
		// sharer-invalidating eviction whose acks resolve at V+evict.
		scns = append(scns, Scenario{
			Name:     "evict-shared",
			LLCBytes: memaddr.LineBytes, LLCWays: 1,
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{load(lineWord(0, 0))}},
				{Proto: cpu, Ops: []device.Op{load(lineWord(0, 0))}},
				{Proto: gpu, Ops: []device.Op{load(lineWord(1, 0))}},
			},
		})
	}
	if cpu == ProtoMESI && gpu == ProtoGPU {
		// GPU atomic on a line two MESI CPUs hold Shared (false sharing of
		// the atomic word with read data): the ReqWTData must invalidate the
		// sharers before performing the RMW at the LLC — the S|ReqWTData
		// row no other scenario or conformance case can produce (conform
		// line-aligns its atomic region away from plain data).
		scns = append(scns, Scenario{
			Name: "shared-atomic",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{load(word(0))}},
				{Proto: cpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{fetchadd(word(1), 3), load(word(1))}},
			},
		})
	}
	if cpu == ProtoMESI && gpu == ProtoDeNovo {
		// Mixed per-word ownership: CPU0 (MESI) owns word 0, the DeNovo GPU
		// owns word 1, and CPU1's line-granularity ReqS hits both — option
		// (1) forwards ReqS to the MESI owner and RvkO to the DeNovo owner
		// (the probe the skip-RvkO mutation drops).
		scns = append(scns, Scenario{
			Name: "mixed-owner",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 5), fence()}},
				{Proto: cpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{store(word(1), 3), fence(), load(word(1))}},
			},
		})
	}
	// Four-device shapes: feasible only under the partial-order and
	// symmetry reductions — full interleaving exploration of these blows
	// the state budget.
	scns = append(scns,
		Scenario{
			// Mixed 2-CPU + 2-CU same-word race: four writers and readers
			// on one word, two per protocol. The two devices of each
			// protocol run symmetric scripts, so canonicalization folds
			// their permutations.
			Name: "samword4",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 1), fence()}},
				{Proto: cpu, Ops: []device.Op{store(word(0), 2), fence()}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
			},
		},
		Scenario{
			// Two independent producer/consumer handoffs on disjoint lines:
			// the cross-line action pairs are statically independent, so the
			// ample-set reduction explores the two handoffs near-additively
			// instead of multiplicatively.
			Name: "mp22",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 42), fence(), store(lineWord(0, 1), 1), fence()}},
				{Proto: cpu, Ops: []device.Op{store(lineWord(1, 0), 43), fence(), store(lineWord(1, 1), 1), fence()}},
				{Proto: gpu, Ops: []device.Op{load(lineWord(0, 1)), load(lineWord(0, 0))}},
				{Proto: gpu, Ops: []device.Op{load(lineWord(1, 1)), load(lineWord(1, 0))}},
			},
		},
		Scenario{
			// One writer fanning out to five identical readers (six devices):
			// the readers are fully interchangeable, the stress case for the
			// symmetry canonicalization.
			Name: "fan6",
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(word(0), 7), fence()}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
				{Proto: gpu, Ops: []device.Op{load(word(0))}},
			},
		},
	)
	// Device write-back racing LLC eviction. Device L1s evict at fill
	// time, so the evicting fill must target a line that misses in the
	// one-line L1 but does NOT conflict at the LLC: a two-set LLC maps
	// lines 0 and 2 to set 0 and line 1 to set 1. The CPU's line-1 fill
	// then evicts its owned line 0 (ReqWB in flight) while the LLC still
	// records the ownership; the GPU's line-2 touch evicts LLC line 0
	// (RvkO) concurrently. The crossing covers ReqWB arriving at an open
	// eviction (O+evict|ReqWB) and the stale RspRvkO — answering a
	// revocation the ReqWB already resolved — landing after the line is
	// gone or mid-refetch (I|RspRvkO, F+fetch|RspRvkO; with a DeNovo GPU
	// the GPU's own line-2 ownership blocks the refetch's victim eviction
	// long enough for I+fetch|RspRvkO).
	scns = append(scns, Scenario{
		Name:     "wb-race",
		LLCBytes: 2 * memaddr.LineBytes, LLCWays: 1,
		DevBytes: memaddr.LineBytes, DevWays: 1,
		Devices: []DeviceScript{
			{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 1), fence(), load(lineWord(1, 0))}},
			{Proto: gpu, Ops: []device.Op{store(lineWord(2, 0), 4), fence(), load(lineWord(0, 1))}},
		},
	})
	// Bank-crossing write-back race: with two banks, line 0 homes at bank
	// 0 and line 1 at bank 1, so the CPU's line-1 fill (ReqV to bank 1)
	// races its eviction write-back of owned line 0 (ReqWB to bank 0) on
	// disjoint directories — no single-bank serialization hides the
	// crossing. The GPU's line-2 store lands at bank 0 (2 mod 2) and, with
	// a one-line bank, evicts line 0 there (RvkO toward the CPU) while the
	// ReqWB is still in flight: the wb-race shape, but with the revocation
	// and the write-back resolving on banks that cannot observe each
	// other's transaction tables.
	scns = append(scns, Scenario{
		Name:     "bank-wb",
		LLCBanks: 2,
		LLCBytes: memaddr.LineBytes, LLCWays: 1,
		DevBytes: memaddr.LineBytes, DevWays: 1,
		Devices: []DeviceScript{
			{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 1), fence(), load(lineWord(1, 0))}},
			{Proto: gpu, Ops: []device.Op{store(lineWord(2, 0), 4), fence(), load(lineWord(0, 1))}},
		},
	})
	// Cross-bank ownership migration: the CPU acquires word ownership of
	// line 0 (bank 0) and line 1 (bank 1); the GPU then writes through to a
	// different word of line 0 (false sharing → RvkO at bank 0) while
	// loading line 1 (owner forward at bank 1). Both banks concurrently run
	// ownership-transfer transactions against the same two devices, in
	// every delivery order — the directories must converge independently
	// and the terminal quiescence audit must hold per bank.
	scns = append(scns, Scenario{
		Name:     "bank-migrate",
		LLCBanks: 2,
		Devices: []DeviceScript{
			{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 1), fence(), store(lineWord(1, 0), 2), fence()}},
			{Proto: gpu, Ops: []device.Op{store(lineWord(0, 1), 3), fence(), load(lineWord(1, 0))}},
		},
	})
	if cpu == ProtoMESI {
		// Stale write-back outliving its ownership epoch: CPU0 owns line 0
		// and its line-1 fill evicts it (full-line ReqWB in flight); CPU1's
		// full-line ReqOData transfers the whole line away from CPU0 at
		// forward time — no CPU0 input — and CPU1's own eviction
		// write-back then clears the last owner. CPU0's ReqWB is still
		// undelivered while line 0 passes through V, an LLC eviction (I,
		// via the GPU's conflicting line-2 store) and a refetch
		// (F+fetch, and I+fetch when a DeNovo GPU's line-2 ownership
		// blocks the victim eviction) — the non-owner rows of the stale
		// write-back contract.
		scns = append(scns, Scenario{
			Name:     "wb-stale",
			Heavy:    true,
			LLCBytes: 2 * memaddr.LineBytes, LLCWays: 1,
			DevBytes: memaddr.LineBytes, DevWays: 1,
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 1), fence(), load(lineWord(1, 0))}},
				{Proto: cpu, Ops: []device.Op{store(lineWord(0, 1), 2), fence(), load(lineWord(1, 0))}},
				{Proto: gpu, Ops: []device.Op{store(lineWord(2, 0), 4), fence(), load(lineWord(0, 2))}},
			},
		})
	}
	// Stale write-back meeting a shared line: CPU1's full-line ReqOData
	// steals line 0 from CPU0 while CPU0's eviction ReqWB is in flight;
	// CPU2's ReqS then demotes CPU1 to sharer (option 1), so the line is
	// Shared with the stale ReqWB still undelivered (S|ReqWB). The GPU's
	// write-through opens the sharer invalidation under it (V+inv|ReqWB)
	// and its conflicting line-2 load the sharer-invalidating eviction
	// (V+evict|ReqWB, V+evict|RspRvkO). Gated to the plain-GPU pairing:
	// the DeNovo-GPU variant costs nearly 3x the states and observes no
	// additional (state, msg) pairs.
	if cpu == ProtoMESI && gpu == ProtoGPU {
		scns = append(scns, Scenario{
			Name:     "wb-share",
			Heavy:    true,
			LLCBytes: 2 * memaddr.LineBytes, LLCWays: 1,
			DevBytes: memaddr.LineBytes, DevWays: 1,
			Devices: []DeviceScript{
				{Proto: cpu, Ops: []device.Op{store(lineWord(0, 0), 1), fence(), load(lineWord(1, 0))}},
				{Proto: cpu, Ops: []device.Op{store(lineWord(0, 1), 2), fence()}},
				{Proto: cpu, Ops: []device.Op{load(lineWord(0, 3))}},
				{Proto: gpu, Ops: []device.Op{store(lineWord(0, 2), 3), fence(), load(lineWord(2, 0))}},
			},
		})
	}
	return scns
}

// ScenarioByName resolves one of a pairing's scenarios.
func ScenarioByName(p Pairing, name string) (Scenario, error) {
	for _, s := range Scenarios(p) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("mcheck: pairing %s has no scenario %q", p, name)
}
