package mcheck

import (
	"testing"

	"spandex/internal/core"
)

// TestExploreCleanPairings exhaustively explores every scenario of every
// (CPU, GPU) protocol pairing and asserts the unmutated protocols are
// violation-free with the full state space covered.
func TestExploreCleanPairings(t *testing.T) {
	for _, p := range Pairings() {
		for _, scn := range Scenarios(p) {
			if testing.Short() && scn.Heavy {
				continue
			}
			res := Explore(Config{Scenario: scn})
			t.Logf("%s/%s: %d states, %d transitions, depth %d",
				p, scn.Name, res.States, res.Transitions, res.MaxDepth)
			if res.Violation != nil {
				t.Errorf("%s/%s: unexpected violation: %v\ntrace:\n  %s",
					p, scn.Name, res.Violation, traceLines(res.Violation))
			}
			if !res.Complete {
				t.Errorf("%s/%s: exploration incomplete (budget hit at %d states)",
					p, scn.Name, res.States)
			}
			if res.States < 10 {
				t.Errorf("%s/%s: implausibly small state space (%d states)", p, scn.Name, res.States)
			}
		}
	}
}

func traceLines(v *Violation) string {
	s := ""
	for _, line := range v.Trace {
		s += line + "\n  "
	}
	return s
}

// TestExploreDeterministic asserts two explorations of the same scenario
// agree exactly — the property replay-based backtracking depends on.
func TestExploreDeterministic(t *testing.T) {
	scn, err := ScenarioByName(Pairing{CPU: ProtoMESI, GPU: ProtoDeNovo}, "race")
	if err != nil {
		t.Fatal(err)
	}
	a := Explore(Config{Scenario: scn})
	b := Explore(Config{Scenario: scn})
	if a.States != b.States || a.Transitions != b.Transitions || a.MaxDepth != b.MaxDepth {
		t.Fatalf("non-deterministic exploration: %+v vs %+v", a, b)
	}
}

// TestExploreBudget asserts the state cap is honored and reported.
func TestExploreBudget(t *testing.T) {
	scn, _ := ScenarioByName(Pairing{CPU: ProtoMESI, GPU: ProtoGPU}, "mp")
	res := Explore(Config{Scenario: scn, MaxStates: 25})
	if res.Complete {
		t.Fatal("exploration with a 25-state budget reported complete")
	}
	if res.States > 25 {
		t.Fatalf("explored %d states past the 25-state budget", res.States)
	}
}

// TestExploreRecordsCoverage asserts exploration feeds the transition
// coverage recorder with the cold-miss pair every scenario must hit.
func TestExploreRecordsCoverage(t *testing.T) {
	cov := core.NewTransitionCoverage()
	scn, _ := ScenarioByName(Pairing{CPU: ProtoDeNovo, GPU: ProtoGPU}, "mp")
	res := Explore(Config{Scenario: scn, Coverage: cov})
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	snap := cov.Snapshot()
	if len(snap) == 0 {
		t.Fatal("exploration recorded no transition coverage")
	}
	found := false
	for k := range snap {
		if k == "I|ReqV" || k == "I|ReqS" || k == "I|ReqWT" || k == "I|ReqO" || k == "I|ReqOData" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cold-miss (I, request) pair recorded; got %v", snap)
	}
}
