package mcheck

import (
	"fmt"
	"reflect"

	"spandex/internal/core"
	"spandex/internal/denovo"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/gpucoh"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// world is one concrete instantiation of a scenario: a full simulated
// system whose network sends are intercepted into a pending pool instead
// of being delivered, so the explorer chooses the delivery order. Between
// actions the engine is drained, making each action an atomic protocol
// step: (deliver one message | issue one device op) plus every internal
// event it triggers.
type world struct {
	eng *sim.Engine
	st  *stats.Stats
	net *noc.Network
	// llcs holds the LLC banks at NodeIDs [len(devs), len(devs)+len(llcs)).
	// A flat scenario (LLCBanks ≤ 1) has exactly one; a banked one has
	// Scenario.LLCBanks, each homing the lines proto.BankOf maps to it.
	llcs []*core.LLC
	mem  *dram.Memory
	chk  *core.Checker
	devs []*mdev

	// pending holds captured, not-yet-delivered messages in send order.
	pending []*proto.Message

	// allowed maps each scripted address to the set of values a load of it
	// may legally return: the initial value plus everything any script
	// stores there (out-of-thin-air check).
	allowed map[memaddr.Addr]map[uint32]bool

	// trace describes every action applied so far, in order.
	trace []string

	// dataViol and stuck record violations found inside an action.
	dataViol string
	stuck    string

	// red selects the state-space reductions this world's fingerprints and
	// action enumeration support.
	red Reduction

	// perms/invs enumerate the scenario's device symmetry group when
	// red.Canon is set: every renaming of devices that maps each device to
	// one with the same protocol and identical script. perms[k][i] is the
	// canonical identity device i takes under renaming k; invs[k] is the
	// inverse. perms[0] is the identity. curPerm records which renaming
	// minimized the last fingerprint() call — the coordinate system sleep
	// sets are stored in for that state.
	perms   [][]int8
	invs    [][]int8
	curPerm int
}

// mdev is one scripted device: an L1 controller plus an in-order script
// cursor. A device issues its next operation only after the previous one's
// completion callback fired (stores complete when buffered).
type mdev struct {
	id       proto.NodeID
	name     string
	l1       device.L1Cache
	ops      []device.Op
	next     int
	inflight bool
	// holds, when non-nil, reports whether this device's controller is
	// internally holding a deferred external whose eventual direct
	// response targets the given device (ampleOrder's persistence check).
	// GPU-coherence devices never hold externals and leave it nil.
	holds func(proto.NodeID) bool
}

func (d *mdev) finished() bool { return d.next == len(d.ops) && !d.inflight }

// newWorld builds a fresh system for the scenario. Construction is fully
// deterministic, so replaying the same action sequence from a fresh world
// reproduces the same state bit-for-bit — the property the DFS's
// replay-based backtracking and the violation traces rely on.
func newWorld(scn Scenario, cov *core.TransitionCoverage, red Reduction) *world {
	n := len(scn.Devices)
	banks := scn.LLCBanks
	if banks < 1 {
		banks = 1
	}
	llcID := proto.NodeID(n) // first bank; line l lives at proto.HomeOf(llcID, banks, l)
	memID := proto.NodeID(n + banks)

	w := &world{
		eng:     sim.New(),
		st:      stats.New(),
		allowed: make(map[memaddr.Addr]map[uint32]bool),
		red:     red,
	}
	if red.Canon {
		w.perms, w.invs = symPerms(scn.Devices)
	}
	w.net = noc.New(w.eng, w.st, noc.Config{HopLatency: 1, TicksPerByte: 0, MeshWidth: 4}, n+banks+1)
	w.net.SetInterceptor(func(m *proto.Message) { w.pending = append(w.pending, m) })

	llcBytes, llcWays := scn.LLCBytes, scn.LLCWays
	if llcBytes == 0 {
		llcBytes, llcWays = 8*memaddr.LineBytes, 2
	}
	w.mem = dram.New(memID, w.eng, w.net, 1)
	w.chk = core.NewChecker()
	w.chk.Collect = true
	w.chk.CheckEveryTransition = true
	for b := 0; b < banks; b++ {
		llc := core.NewLLC(llcID+proto.NodeID(b), memID, w.eng, w.net, w.st, core.Config{
			SizeBytes: llcBytes, Ways: llcWays, AccessLatency: 1,
			BankStride: banks, BankIndex: b,
		})
		llc.SetChecker(w.chk)
		if cov != nil {
			llc.SetCoverage(cov)
		}
		w.llcs = append(w.llcs, llc)
	}
	devBytes, devWays := scn.DevBytes, scn.DevWays
	if devBytes == 0 {
		devBytes, devWays = 4*memaddr.LineBytes, 2
	}

	for i, spec := range scn.Devices {
		id := proto.NodeID(i)
		d := &mdev{id: id, name: fmt.Sprintf("%s%d", spec.Proto, i), ops: spec.Ops}
		for _, op := range spec.Ops {
			switch op.Kind {
			case device.OpLoad, device.OpStore, device.OpFence:
			case device.OpAtomic:
				// Only fetch-add: its commutativity keeps the legal-value
				// model below exact (any subset of the adds may have hit).
				if op.Atomic != proto.AtomicFetchAdd {
					panic("mcheck: atomic scripts are restricted to fetch-add")
				}
			default:
				panic("mcheck: scripts are restricted to loads, stores, fetch-adds and fences")
			}
		}
		registerAll := func(isMESI bool) {
			for _, llc := range w.llcs {
				llc.RegisterDevice(id, isMESI)
			}
		}
		switch spec.Proto {
		case ProtoMESI:
			tu := core.NewMESITU(id, w.eng, w.net, w.st, llcID, 1)
			tu.SetLLCBanks(banks)
			mc := mesi.DefaultConfig(llcID)
			mc.ParentBanks = banks
			mc.SizeBytes, mc.Ways = devBytes, devWays
			mc.MSHREntries, mc.StoreBufferEntries = 8, 8
			mc.HitLatency = 1
			l1 := mesi.New(id, w.eng, tu, w.st, mc)
			tu.Bind(l1)
			registerAll(true)
			w.chk.AttachDevice(id, tu)
			tu.SetChecker(w.chk)
			d.l1 = l1
			d.holds = tu.HoldsExternalFor
		case ProtoDeNovo:
			tu := core.NewPassTU(id, w.eng, w.net, 1)
			dc := denovo.DefaultConfig(llcID, false)
			dc.ParentBanks = banks
			dc.SizeBytes, dc.Ways = devBytes, devWays
			dc.MSHREntries, dc.WriteBufferEntries = 8, 8
			dc.HitLatency = 1
			l1 := denovo.New(id, w.eng, tu, w.st, dc)
			tu.Bind(l1)
			registerAll(false)
			w.chk.AttachDevice(id, l1)
			d.l1 = l1
			d.holds = l1.HoldsExternalFor
		case ProtoGPU:
			tu := core.NewPassTU(id, w.eng, w.net, 1)
			gc := gpucoh.DefaultConfig(llcID)
			gc.ParentBanks = banks
			gc.SizeBytes, gc.Ways = devBytes, devWays
			gc.MSHREntries, gc.WriteBufferEntries = 8, 8
			gc.HitLatency = 1
			l1 := gpucoh.New(id, w.eng, tu, w.st, gc)
			tu.Bind(l1)
			registerAll(false)
			w.chk.AttachDevice(id, l1)
			d.l1 = l1
		default:
			panic("mcheck: unknown protocol " + string(spec.Proto))
		}
		w.devs = append(w.devs, d)
	}

	for _, iv := range scn.Init {
		line := w.mem.Peek(iv.Addr.Line())
		line[iv.Addr.WordIndex()] = iv.Val
		w.mem.Poke(iv.Addr.Line(), line)
		w.allow(iv.Addr, iv.Val)
	}
	adds := make(map[memaddr.Addr][]uint32)
	for _, spec := range scn.Devices {
		for _, op := range spec.Ops {
			if op.Kind == device.OpFence {
				continue
			}
			w.allow(op.Addr, 0) // pre-init value of every touched word
			if op.Kind == device.OpStore {
				w.allow(op.Addr, op.Value)
			}
			if op.Kind == device.OpAtomic {
				adds[op.Addr] = append(adds[op.Addr], op.Value)
			}
		}
	}
	// Close each fetch-add target's legal set under subset sums of the
	// scripted deltas: a read (or an atomic's returned old value) may
	// observe any base value with any subset of the adds applied.
	for a, deltas := range adds {
		for _, d := range deltas {
			for _, v := range keysOf(w.allowed[a]) {
				w.allow(a, v+d)
			}
		}
	}
	return w
}

func keysOf(set map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

func (w *world) allow(a memaddr.Addr, v uint32) {
	set := w.allowed[a]
	if set == nil {
		set = make(map[uint32]bool)
		w.allowed[a] = set
	}
	set[v] = true
}

// enumActions enumerates the enabled actions: an issue of each ready
// device's next op, and a delivery of the oldest pending message of each
// (src, dst) pair. Only per-pair heads are deliverable — the network
// guarantees point-to-point FIFO ordering and the protocols' race handling
// assumes it, so other orders are unreachable in real executions and
// exploring them would report false violations. Each action carries the
// unit coordinates the reduction machinery reasons about (see reduce.go).
func (w *world) enumActions() []action {
	var acts []action
	for i, d := range w.devs {
		if !d.inflight && d.next < len(d.ops) {
			acts = append(acts, action{flat: i, issue: true, unit: int8(i), src: -1})
		}
	}
	headSeen := make(map[[2]proto.NodeID]bool)
	for k, m := range w.pending {
		pair := [2]proto.NodeID{m.Src, m.Dst}
		if !headSeen[pair] {
			headSeen[pair] = true
			acts = append(acts, action{
				flat: len(w.devs) + k, unit: int8(m.Dst), src: int8(m.Src), msg: m,
			})
		}
	}
	return acts
}

// terminal reports whether the system is quiescent with all scripts done.
func (w *world) terminal() bool {
	if len(w.pending) != 0 {
		return false
	}
	for _, d := range w.devs {
		if !d.finished() {
			return false
		}
	}
	return true
}

// apply executes one action and drains the engine. The action id must
// come from actions() on this exact state.
func (w *world) apply(a int) {
	if a < len(w.devs) {
		w.issue(a)
	} else {
		w.deliver(a - len(w.devs))
	}
	w.eng.Run()
}

func (w *world) issue(di int) {
	d := w.devs[di]
	op := d.ops[d.next]
	idx := d.next
	if op.Kind == device.OpFence {
		// A release fence drains the write buffer (how the device drivers
		// implement Rel). Flush is never rejected; its done callback may
		// fire synchronously when nothing is buffered.
		d.next++
		d.inflight = true
		w.trace = append(w.trace, fmt.Sprintf("%s: release fence", d.name))
		d.l1.Flush(func() { d.inflight = false })
		return
	}
	// inflight is set before Access: stores (and hits) may invoke the
	// completion callback synchronously.
	d.inflight = true
	accepted := d.l1.Access(op, func(v uint32) {
		d.inflight = false
		// An atomic's return is the pre-op value: checked against the same
		// legal set (it is closed under subsets of the scripted adds).
		if op.Kind == device.OpLoad || op.Kind == device.OpAtomic {
			if !w.allowed[op.Addr][v] {
				w.dataViol = fmt.Sprintf(
					"%s: op %d load of word %d returned %d, a value never written to that word",
					d.name, idx, op.Addr.WordIndex(), v)
			}
		}
	})
	if !accepted {
		d.inflight = false
		w.trace = append(w.trace, fmt.Sprintf("%s: op %d (%s w%d) rejected by L1",
			d.name, idx, op.Kind, op.Addr.WordIndex()))
		// A rejected issue with no message in flight and every other
		// device idle cannot ever be accepted: nothing remains to free
		// the controller's resources.
		if len(w.pending) == 0 {
			blocked := true
			for _, o := range w.devs {
				if o != d && !o.finished() {
					blocked = false
				}
			}
			if blocked {
				w.stuck = fmt.Sprintf("%s: op %d permanently rejected by quiescent L1", d.name, idx)
			}
		}
		return
	}
	d.next++
	switch op.Kind {
	case device.OpStore:
		w.trace = append(w.trace, fmt.Sprintf("%s: store w%d=%d", d.name, op.Addr.WordIndex(), op.Value))
	case device.OpAtomic:
		w.trace = append(w.trace, fmt.Sprintf("%s: fetchadd w%d+=%d", d.name, op.Addr.WordIndex(), op.Value))
	case device.OpLoad:
		w.trace = append(w.trace, fmt.Sprintf("%s: load w%d", d.name, op.Addr.WordIndex()))
	default:
		// Fences returned above; mcheck scripts contain no compute ops.
		panic("mcheck: unexpected op kind " + op.Kind.String())
	}
}

func (w *world) deliver(k int) {
	m := w.pending[k]
	rest := make([]*proto.Message, 0, len(w.pending)-1)
	rest = append(rest, w.pending[:k]...)
	rest = append(rest, w.pending[k+1:]...)
	w.pending = rest
	w.trace = append(w.trace, fmt.Sprintf("deliver %s", m))
	w.net.Deliver(m)
}

// fingerprint canonicalizes the protocol-visible state: LLC (lines, txns,
// queued requests), every device controller (through its TU, reached via
// the l1's port back-reference), DRAM contents, script cursors, and the
// pending message pool. With red.Canon the hash is additionally minimized
// over the device symmetry group, with pending serialized per (src, dst)
// FIFO — two states equal up to a renaming of interchangeable devices (or
// a reshuffle of unobservable cross-pair send order) then hash equal. The
// renaming that won the minimization is recorded in curPerm so sleep sets
// can be stored in the state's canonical coordinates.
func (w *world) fingerprint() uint64 {
	if !w.red.Canon {
		roots := make([]interface{}, 0, 2+len(w.llcs)+len(w.devs))
		for _, llc := range w.llcs {
			roots = append(roots, llc)
		}
		roots = append(roots, w.mem, w.pending)
		for _, d := range w.devs {
			roots = append(roots, d)
		}
		return structuralHash(roots...)
	}
	best := uint64(0)
	w.curPerm = 0
	for pi := range w.perms {
		h := w.hashWithPerm(w.perms[pi], w.invs[pi])
		if pi == 0 || h < best {
			best = h
			w.curPerm = pi
		}
	}
	return best
}

// canonMaps returns the renaming that canonicalized the last fingerprint()
// call and its inverse, or (nil, nil) when state is already canonical (no
// translation needed for action keys).
func (w *world) canonMaps() (idmap, inv []int8) {
	if !w.red.Canon || w.curPerm == 0 {
		return nil, nil
	}
	return w.perms[w.curPerm], w.invs[w.curPerm]
}

// symPerms enumerates the device symmetry group of a scenario: all
// renamings mapping each device to one of the same protocol with a
// deep-equal script. Two such devices are fully interchangeable — they are
// configured identically and their observable behaviour differs only by
// their NodeID — so the system's dynamics commute with any renaming in
// this group and orbit-minimizing the fingerprint merges states that
// differ only by which twin did what. The identity is always perms[0].
// The group's size is the product of the class sizes' factorials; scenario
// authors keep classes small (≤4 twins ⇒ ≤24 renamings per hash).
func symPerms(devs []DeviceScript) (perms, invs [][]int8) {
	n := len(devs)
	class := make([]int, n)
	var reps []DeviceScript
	for i, d := range devs {
		class[i] = -1
		for r, rep := range reps {
			if rep.Proto == d.Proto && reflect.DeepEqual(rep.Ops, d.Ops) {
				class[i] = r
				break
			}
		}
		if class[i] < 0 {
			class[i] = len(reps)
			reps = append(reps, d)
		}
	}
	perm := make([]int8, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			p := append([]int8(nil), perm...)
			inv := make([]int8, n)
			for from, to := range p {
				inv[to] = int8(from)
			}
			perms = append(perms, p)
			invs = append(invs, inv)
			return
		}
		for j := 0; j < n; j++ {
			if !used[j] && class[j] == class[i] {
				used[j] = true
				perm[i] = int8(j)
				rec(i + 1)
				used[j] = false
			}
		}
	}
	rec(0)
	return perms, invs
}

// violation returns the first violation recorded in this state, if any.
func (w *world) violation() (kind, detail string, ok bool) {
	if len(w.chk.Violations) > 0 {
		return "invariant", w.chk.Violations[0].String(), true
	}
	if w.dataViol != "" {
		return "data", w.dataViol, true
	}
	if w.stuck != "" {
		return "deadlock", w.stuck, true
	}
	return "", "", false
}

// pendingOps describes unfinished scripts, for deadlock reports.
func (w *world) pendingOps() string {
	s := ""
	for _, d := range w.devs {
		if d.finished() {
			continue
		}
		if s != "" {
			s += ", "
		}
		state := "ready"
		if d.inflight {
			state = "in flight"
			s += fmt.Sprintf("%s op %d %s", d.name, d.next-1, state)
			continue
		}
		s += fmt.Sprintf("%s op %d %s", d.name, d.next, state)
	}
	return s
}
