// Package mesi implements a line-granularity MESI L1 cache (paper §II-A):
// writer-initiated invalidation, ownership (write-back) caching, and
// read-for-ownership stores. It exploits temporal and spatial locality
// aggressively but pays for it with invalidation traffic, indirection, and
// transient blocking states — the trade-off the paper quantifies.
//
// The controller speaks the MESI-native directory vocabulary (MGetS, MGetM,
// MPutM, MFwd*, MInv, MData*). Under the hierarchical baseline it attaches
// directly to the MESI L3 directory; under a Spandex LLC the per-device
// translation unit (core.MESITU) converts to and from the Spandex
// interface, including word-granularity external requests (paper §III-D).
package mesi

import (
	"fmt"

	"spandex/internal/cache"
	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// State is a stable MESI state.
type State uint8

const (
	I State = iota
	S
	E
	M
)

func (s State) String() string { return [...]string{"I", "S", "E", "M"}[s] }

// Config parameterizes a MESI L1.
type Config struct {
	SizeBytes          int
	Ways               int
	MSHREntries        int
	StoreBufferEntries int
	HitLatency         sim.Time
	ParentID           proto.NodeID
	// ParentBanks makes the parent an address-interleaved bank array at
	// NodeIDs ParentID..ParentID+ParentBanks-1; requests go to the target
	// line's home bank. 0 or 1 is the flat single parent.
	ParentBanks int
}

// DefaultConfig returns the paper's Table VI CPU L1 parameters.
func DefaultConfig(parent proto.NodeID) Config {
	return Config{
		SizeBytes: 32 * 1024, Ways: 8,
		MSHREntries: 128, StoreBufferEntries: 128,
		HitLatency: sim.CPUCycle,
		ParentID:   parent,
	}
}

type line struct {
	state State
	data  memaddr.LineData
}

type loadWaiter struct {
	word int
	done func(uint32)
}

type atomicCtx struct {
	op   device.Op
	done func(uint32)
}

// missEntry tracks one outstanding line transaction (IS_D / IM_D / SM_D).
type missEntry struct {
	reqID   uint64
	needM   bool
	waiters []loadWaiter
	// applyStores: drain the line's store-buffer entry on grant.
	applyStores bool
	atomics     []atomicCtx
	// deferred forwards that arrived before the grant's data (paper
	// §III-C1 / the MESI TU's "pending O request" case 2).
	deferred []*proto.Message
	// escalate: a store or atomic arrived while a GetS was outstanding;
	// a GetM follows the read grant before the entry completes.
	escalate bool
	// trace is the observability request id of the operation that opened
	// the entry, stamped on the entry's directory requests.
	trace uint64
}

// pendingWB retains an evicted line until the directory acks (races are
// answered from this record, §III-D case 3).
type pendingWB struct {
	data  memaddr.LineData
	dirty bool
}

// L1 is a MESI L1 cache controller.
type L1 struct {
	ID  proto.NodeID
	eng *sim.Engine
	st  *stats.Stats
	cfg Config

	port noc.Port

	// out is the sendV scratch slot (see sendV).
	out proto.Message

	array *cache.Array[line]
	miss  *cache.MSHR[missEntry]
	sb    *cache.WriteBuffer
	wbs   map[memaddr.LineAddr]*pendingWB

	flushWaiters []func()
	reqSeq       uint64

	obs *obs.Recorder
	// curTrace is the trace id of the operation currently inside Access,
	// copied into any MSHR entry that operation opens.
	curTrace uint64
}

// SetObserver installs the observability recorder; nil disables
// instrumentation (MSHR occupancy samples and request-trace threading).
func (l *L1) SetObserver(r *obs.Recorder) { l.obs = r }

// mshrOcc samples the MSHR occupancy (caller checks l.obs != nil).
func (l *L1) mshrOcc() {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvOccupancy,
		Node: l.ID, Res: "mshr", Arg: uint64(l.miss.Len())})
}

// New creates a MESI L1.
func New(id proto.NodeID, eng *sim.Engine, port noc.Port, st *stats.Stats, cfg Config) *L1 {
	return &L1{
		ID: id, eng: eng, st: st, cfg: cfg, port: port,
		array: cache.NewArray[line](cfg.SizeBytes, cfg.Ways),
		miss:  cache.NewMSHR[missEntry](cfg.MSHREntries),
		sb:    cache.NewWriteBuffer(cfg.StoreBufferEntries),
		wbs:   make(map[memaddr.LineAddr]*pendingWB),
	}
}

var _ device.L1Cache = (*L1)(nil)

// sendV transmits a by-value message through the port. Every port Send
// copies the message synchronously before anything downstream can run, so
// a single scratch slot per sender is safe and avoids a heap allocation
// per send (the &proto.Message{...} literal idiom escapes through the
// Port interface).
func (l *L1) sendV(m proto.Message) {
	l.out = m
	l.port.Send(&l.out)
}

// parent returns line's home node: ParentID for a flat parent, the
// line's bank for an interleaved one (see Config.ParentBanks).
func (l *L1) parent(line memaddr.LineAddr) proto.NodeID {
	return proto.HomeOf(l.cfg.ParentID, l.cfg.ParentBanks, line)
}

func (l *L1) nextReq() uint64 {
	l.reqSeq++
	return l.reqSeq
}

// Access implements device.L1Cache.
func (l *L1) Access(op device.Op, done func(uint32)) bool {
	l.curTrace = op.Trace
	switch op.Kind {
	case device.OpLoad:
		return l.load(op.Addr, done)
	case device.OpStore:
		if op.IsSubWordStore() {
			// Byte-granularity stores become word-granularity RMWs so the
			// unmodified bytes stay up-to-date (paper §III-B).
			return l.atomic(op.AsByteMerge(), done)
		}
		return l.store(op.Addr, op.Value, done)
	case device.OpAtomic:
		return l.atomic(op, done)
	default:
		panic(fmt.Sprintf("mesi: bad op %v", op.Kind))
	}
}

func (l *L1) load(addr memaddr.Addr, done func(uint32)) bool {
	la, w := addr.Line(), addr.WordIndex()
	if v, ok := l.sb.ReadForward(addr); ok {
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if e := l.array.Lookup(la); e != nil && e.State.state != I {
		v := e.State.data[w]
		l.st.Inc("mesil1.hit", 1)
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if me := l.miss.Lookup(la); me != nil {
		me.waiters = append(me.waiters, loadWaiter{word: w, done: done})
		return true
	}
	if l.miss.Full() {
		l.st.Inc("mesil1.mshr_stall", 1)
		return false
	}
	me := l.miss.AllocReuse(la)
	*me = missEntry{reqID: l.nextReq(), trace: l.curTrace,
		waiters: me.waiters[:0], atomics: me.atomics[:0], deferred: me.deferred[:0]}
	me.waiters = append(me.waiters, loadWaiter{word: w, done: done})
	l.st.Inc("mesil1.miss", 1)
	if l.obs != nil {
		l.mshrOcc()
	}
	l.sendV(proto.Message{
		Type: proto.MGetS, Dst: l.parent(la), Requestor: l.ID,
		ReqID: me.reqID, Line: la, Mask: memaddr.FullMask, Trace: me.trace,
	})
	return true
}

func (l *L1) store(addr memaddr.Addr, value uint32, done func(uint32)) bool {
	la := addr.Line()
	e := l.sb.Lookup(la)
	switch {
	case e != nil && !e.Issued:
		l.sb.Put(addr, value)
	case e != nil && e.Issued:
		l.st.Inc("mesil1.sb_conflict", 1)
		return false
	case l.sb.Full():
		l.st.Inc("mesil1.sb_stall", 1)
		return false
	default:
		l.sb.Put(addr, value)
		// Lazy drain: retire under occupancy pressure or at a release.
		l.drainPressure()
	}
	done(0)
	return true
}

// drainPressure retires the oldest buffered stores while the unissued
// population exceeds three quarters of capacity.
func (l *L1) drainPressure() {
	for l.sb.UnissuedCount() > l.cfg.StoreBufferEntries*3/4 {
		e := l.sb.NextUnissued()
		if e == nil {
			return
		}
		l.drainStore(e.Line)
	}
}

// drainStore retires a store-buffer entry: write hits in M/E commit
// immediately; otherwise read-for-ownership (GetM) is required.
func (l *L1) drainStore(la memaddr.LineAddr) {
	sbe := l.sb.Lookup(la)
	if sbe == nil || sbe.Issued {
		return
	}
	if e := l.array.Lookup(la); e != nil && (e.State.state == M || e.State.state == E) {
		e.State.state = M
		e.State.data.Merge(&sbe.Data, sbe.Mask)
		l.sb.Complete(la)
		l.st.Inc("mesil1.store_hit", 1)
		l.checkFlush()
		return
	}
	l.sb.MarkIssued(sbe)
	if me := l.miss.Lookup(la); me != nil {
		if !me.needM {
			// A GetS is already outstanding; escalate once it returns.
			me.needM = true
			me.escalate = true
		}
		me.applyStores = true
		return
	}
	l.requestM(la, func(me *missEntry) { me.applyStores = true })
}

func (l *L1) requestM(la memaddr.LineAddr, setup func(*missEntry)) {
	me := l.miss.AllocReuse(la)
	*me = missEntry{reqID: l.nextReq(), trace: l.curTrace, needM: true,
		waiters: me.waiters[:0], atomics: me.atomics[:0], deferred: me.deferred[:0]}
	setup(me)
	l.st.Inc("mesil1.getm", 1)
	if l.obs != nil {
		l.mshrOcc()
	}
	l.sendV(proto.Message{
		Type: proto.MGetM, Dst: l.parent(la), Requestor: l.ID,
		ReqID: me.reqID, Line: la, Mask: memaddr.FullMask, Trace: me.trace,
	})
}

func (l *L1) atomic(op device.Op, done func(uint32)) bool {
	la, w := op.Addr.Line(), op.Addr.WordIndex()
	if e := l.array.Lookup(la); e != nil && (e.State.state == M || e.State.state == E) {
		e.State.state = M
		old := e.State.data[w]
		nv, wrote := op.Atomic.Apply(old, op.Value, op.Compare)
		if wrote {
			e.State.data[w] = nv
		}
		l.st.Inc("mesil1.atomic_hit", 1)
		l.eng.ScheduleCall(l.cfg.HitLatency, done, old)
		return true
	}
	if me := l.miss.Lookup(la); me != nil {
		if !me.needM {
			me.needM = true
			me.escalate = true
		}
		me.atomics = append(me.atomics, atomicCtx{op: op, done: done})
		return true
	}
	if l.miss.Full() {
		return false
	}
	l.st.Inc("mesil1.atomic_miss", 1)
	l.requestM(la, func(me *missEntry) {
		me.atomics = append(me.atomics, atomicCtx{op: op, done: done})
	})
	return true
}

// SelfInvalidate is a no-op: MESI relies on writer-initiated invalidation,
// so synchronization does not flash the cache (paper §II-A, footnote 2).
func (l *L1) SelfInvalidate() {}

// Flush drains the store buffer (release semantics).
func (l *L1) Flush(done func()) {
	for _, e := range l.sb.Unissued() {
		l.drainStore(e.Line)
	}
	if l.sb.Empty() {
		done()
		return
	}
	l.flushWaiters = append(l.flushWaiters, done)
}

func (l *L1) checkFlush() {
	if !l.sb.Empty() {
		return
	}
	ws := l.flushWaiters
	l.flushWaiters = nil
	for _, w := range ws {
		w()
	}
}

// ProbeOwned reports M/E lines as fully-owned (their Spandex mapping,
// paper §III-D: "M and E both map to O state").
func (l *L1) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask {
	out := make(map[memaddr.LineAddr]memaddr.WordMask)
	l.array.ForEach(func(e *cache.Entry[line]) {
		if e.State.state == M || e.State.state == E {
			out[e.Line] = memaddr.FullMask
		}
	})
	return out
}

// State returns the MESI state of a line (probe; no LRU effect).
func (l *L1) State(la memaddr.LineAddr) State {
	if e := l.array.Peek(la); e != nil {
		return e.State.state
	}
	return I
}

// PeekLine returns the line's current data and state without any state or
// LRU effect. The translation unit uses it to answer forwarded ReqVs,
// which affect no coherence state at the owning core (paper §III-C3).
func (l *L1) PeekLine(la memaddr.LineAddr) (memaddr.LineData, State) {
	if e := l.array.Peek(la); e != nil {
		return e.State.data, e.State.state
	}
	return memaddr.LineData{}, I
}

// ensureFrame allocates a frame for la, evicting as needed.
func (l *L1) ensureFrame(la memaddr.LineAddr) *cache.Entry[line] {
	if e := l.array.Lookup(la); e != nil {
		return e
	}
	frame := l.array.Victim(la)
	if frame.Valid {
		l.evict(frame)
		frame = l.array.Victim(la)
		if frame.Valid {
			panic("mesi: victim not freed")
		}
	}
	l.array.Install(frame, la)
	return frame
}

// evict releases a victim: M lines write back dirty data, E lines announce
// the clean eviction (so the directory can drop the owner record), S lines
// drop silently.
func (l *L1) evict(frame *cache.Entry[line]) {
	st := frame.State
	la := frame.Line
	switch st.state {
	case M, E:
		l.wbs[la] = &pendingWB{data: st.data, dirty: st.state == M}
		l.st.Inc("mesil1.wb_evict", 1)
		l.sendV(proto.Message{
			Type: proto.MPutM, Dst: l.parent(la), Requestor: l.ID,
			ReqID: l.nextReq(), Line: la, Mask: memaddr.FullMask,
			HasData: true, Data: st.data,
		})
	case S:
		l.st.Inc("mesil1.s_evict", 1)
	default:
		panic("mesi: evicting a frame in state " + st.state.String())
	}
	l.array.Invalidate(la)
}
