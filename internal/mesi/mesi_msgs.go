package mesi

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// HandleMessage implements noc.Handler for MESI-native messages.
func (l *L1) HandleMessage(m *proto.Message) {
	// Flow facts (spandex-flow): forwards and invalidations that arrive
	// before an outstanding miss's data are deferred until the grant
	// lands; the grant itself is always consumed immediately.
	//
	//spandex:flow queue MFwdGetS,MFwdGetM,MInv
	//spandex:flow wait grant awaits=MDataS,MDataE,MDataM via=MGetS,MGetM opener=any
	switch m.Type {
	case proto.MDataS:
		l.handleData(m, S)
	case proto.MDataE:
		l.handleData(m, E)
	case proto.MDataM:
		l.handleData(m, M)
	case proto.MAckWB:
		delete(l.wbs, m.Line)
	case proto.MInv:
		l.handleInv(m)
	case proto.MFwdGetS:
		l.handleFwdGetS(m)
	case proto.MFwdGetM:
		l.handleFwdGetM(m)
	default:
		panic("mesi: unexpected message " + m.Type.String())
	}
}

// handleData completes an outstanding miss with the granted state.
func (l *L1) handleData(m *proto.Message, grant State) {
	me := l.miss.Lookup(m.Line)
	if me == nil {
		return
	}
	// A data-less grant relies on a valid local copy — a guarantee silent
	// S-eviction revokes, which is why the directory always sends data.
	// Assembling a line in a fresh zero-filled frame would later write
	// zeros back over memory, so fail loudly instead.
	if !m.HasData {
		if e := l.array.Lookup(m.Line); e == nil || e.State.state == I {
			panic("mesi: data-less grant without a valid copy")
		}
	}
	e := l.ensureFrame(m.Line)
	if m.HasData {
		e.State.data = m.Data
	}
	e.State.state = grant

	for _, w := range me.waiters {
		v := e.State.data[w.word]
		done := w.done
		l.eng.ScheduleCall(0, done, v)
	}
	me.waiters = me.waiters[:0]

	if grant == E || grant == M {
		if me.applyStores {
			if sbe := l.sb.Lookup(m.Line); sbe != nil {
				e.State.data.Merge(&sbe.Data, sbe.Mask)
				e.State.state = M
				l.sb.Complete(m.Line)
				l.checkFlush()
			}
			me.applyStores = false
		}
		for _, a := range me.atomics {
			w := a.op.Addr.WordIndex()
			old := e.State.data[w]
			nv, wrote := a.op.Atomic.Apply(old, a.op.Value, a.op.Compare)
			if wrote {
				e.State.data[w] = nv
			}
			e.State.state = M
			done := a.done
			l.eng.ScheduleCall(0, done, old)
		}
		me.atomics = me.atomics[:0]
		me.escalate = false
	}

	if me.escalate {
		// Stores/atomics arrived during the GetS: follow with a GetM.
		me.escalate = false
		me.reqID = l.nextReq()
		l.st.Inc("mesil1.getm", 1)
		l.sendV(proto.Message{
			Type: proto.MGetM, Dst: l.parent(m.Line), Requestor: l.ID,
			ReqID: me.reqID, Line: m.Line, Mask: memaddr.FullMask,
			Trace: me.trace,
		})
		return
	}

	deferred := me.deferred
	l.miss.Free(m.Line)
	if l.obs != nil {
		l.mshrOcc()
	}
	for _, d := range deferred {
		l.HandleMessage(d)
	}
}

func (l *L1) handleInv(m *proto.Message) {
	if e := l.array.Peek(m.Line); e != nil && e.State.state == S {
		l.array.Invalidate(m.Line)
	}
	l.st.Inc("mesil1.invalidated", 1)
	l.sendV(proto.Message{
		Type: proto.MInvAck, Dst: m.Src, Requestor: l.ID,
		ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, Trace: m.Trace,
	})
}

func (l *L1) handleFwdGetS(m *proto.Message) {
	if e := l.array.Peek(m.Line); e != nil && (e.State.state == M || e.State.state == E) {
		e.State.state = S
		l.sendFwdGetSRsp(m, e.State.data)
		return
	}
	if wb := l.wbs[m.Line]; wb != nil {
		// Pending write-back (§III-D case 3): answer from the record.
		l.sendFwdGetSRsp(m, wb.data)
		return
	}
	if me := l.miss.Lookup(m.Line); me != nil && me.needM {
		// Ownership grant in flight (case 2): defer until data arrives.
		cp := *m
		me.deferred = append(me.deferred, &cp)
		return
	}
	panic("mesi: FwdGetS for line in unexpected state")
}

func (l *L1) sendFwdGetSRsp(m *proto.Message, data memaddr.LineData) {
	l.sendV(proto.Message{
		Type: proto.MDataS, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		HasData: true, Data: data, Trace: m.Trace,
	})
	l.sendV(proto.Message{
		Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		HasData: true, Data: data, Trace: m.Trace,
	})
}

func (l *L1) handleFwdGetM(m *proto.Message) {
	if e := l.array.Peek(m.Line); e != nil && (e.State.state == M || e.State.state == E) {
		data := e.State.data
		l.array.Invalidate(m.Line)
		l.sendFwdGetMRsp(m, data)
		return
	}
	if wb := l.wbs[m.Line]; wb != nil {
		l.sendFwdGetMRsp(m, wb.data)
		return
	}
	if me := l.miss.Lookup(m.Line); me != nil && me.needM {
		cp := *m
		me.deferred = append(me.deferred, &cp)
		return
	}
	panic("mesi: FwdGetM for line in unexpected state")
}

// sendFwdGetMRsp transfers the line to the requestor (or back to the
// directory for a recall) and unblocks the directory.
func (l *L1) sendFwdGetMRsp(m *proto.Message, data memaddr.LineData) {
	if m.Requestor == m.Src {
		// Recall: the directory itself wants the data (LLC eviction).
		l.sendV(proto.Message{
			Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
			HasData: true, Data: data, Trace: m.Trace,
		})
		return
	}
	l.sendV(proto.Message{
		Type: proto.MDataM, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		HasData: true, Data: data, Trace: m.Trace,
	})
	l.sendV(proto.Message{
		Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		Trace: m.Trace,
	})
}
