package mesi

import (
	"testing"

	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// scriptPort captures the L1's outbound messages so tests can inspect them
// and inject responses by hand — exercising the state machine without a
// directory.
type scriptPort struct{ sent []proto.Message }

func (p *scriptPort) Send(m *proto.Message) { p.sent = append(p.sent, *m) }

func (p *scriptPort) last() *proto.Message {
	if len(p.sent) == 0 {
		return nil
	}
	return &p.sent[len(p.sent)-1]
}

func (p *scriptPort) take() []proto.Message {
	out := p.sent
	p.sent = nil
	return out
}

type mrig struct {
	t    *testing.T
	eng  *sim.Engine
	port *scriptPort
	l1   *L1
}

func newMRig(t *testing.T) *mrig {
	eng := sim.New()
	port := &scriptPort{}
	l1 := New(0, eng, port, stats.New(), DefaultConfig(99))
	return &mrig{t: t, eng: eng, port: port, l1: l1}
}

// grant injects a data response for the last outstanding request.
func (r *mrig) grant(typ proto.MsgType, line memaddr.LineAddr, data memaddr.LineData, hasData bool) {
	req := r.port.last()
	if req == nil {
		r.t.Fatal("no request to grant")
	}
	r.l1.HandleMessage(&proto.Message{
		Type: typ, Src: 99, Requestor: 0, ReqID: req.ReqID,
		Line: line, Mask: memaddr.FullMask, HasData: hasData, Data: data,
	})
	r.eng.Run()
}

func (r *mrig) load(a memaddr.Addr) (uint32, bool) {
	var v uint32
	done := false
	if !r.l1.Access(device.Op{Kind: device.OpLoad, Addr: a}, func(x uint32) { v = x; done = true }) {
		r.t.Fatal("load rejected")
	}
	r.eng.Run()
	return v, done
}

func (r *mrig) store(a memaddr.Addr, v uint32) {
	if !r.l1.Access(device.Op{Kind: device.OpStore, Addr: a, Value: v}, func(uint32) {}) {
		r.t.Fatal("store rejected")
	}
	r.l1.Flush(func() {})
	r.eng.Run()
}

func TestLoadMissIssuesGetS(t *testing.T) {
	r := newMRig(t)
	if _, done := r.load(0x40); done {
		t.Fatal("load completed without data")
	}
	req := r.port.last()
	if req == nil || req.Type != proto.MGetS || req.Line != 0x40 {
		t.Fatalf("request = %v", req)
	}
}

func TestDataSGrantCompletesLoad(t *testing.T) {
	r := newMRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x44}, func(x uint32) { got = x; done = true })
	r.eng.Run()
	var data memaddr.LineData
	data[1] = 77
	r.grant(proto.MDataS, 0x40, data, true)
	if !done || got != 77 {
		t.Fatalf("done=%v got=%d", done, got)
	}
	if r.l1.State(0x40) != S {
		t.Fatalf("state = %v", r.l1.State(0x40))
	}
}

func TestDataEGrantGivesExclusive(t *testing.T) {
	r := newMRig(t)
	r.load(0x80)
	r.grant(proto.MDataE, 0x80, memaddr.LineData{}, true)
	if r.l1.State(0x80) != E {
		t.Fatalf("state = %v", r.l1.State(0x80))
	}
	// A store to an E line silently upgrades to M without a new request.
	before := len(r.port.sent)
	r.store(0x80, 5)
	if len(r.port.sent) != before {
		t.Fatal("silent E→M upgrade issued a message")
	}
	if r.l1.State(0x80) != M {
		t.Fatalf("state = %v", r.l1.State(0x80))
	}
}

func TestStoreMissIssuesGetM(t *testing.T) {
	r := newMRig(t)
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0xc0, Value: 9}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	req := r.port.last()
	if req == nil || req.Type != proto.MGetM {
		t.Fatalf("request = %v", req)
	}
	r.grant(proto.MDataM, 0xc0, memaddr.LineData{}, true)
	if r.l1.State(0xc0) != M {
		t.Fatalf("state = %v", r.l1.State(0xc0))
	}
	if v, done := r.load(0xc0); !done || v != 9 {
		t.Fatalf("store lost: %d,%v", v, done)
	}
}

func TestGetSEscalatesToGetMWhenStoreArrives(t *testing.T) {
	r := newMRig(t)
	// A load miss is outstanding...
	r.load(0x100)
	// ...and a store to the same line arrives before the grant.
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x104, Value: 3}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	// Grant the read as Shared: the controller must follow with a GetM.
	r.grant(proto.MDataS, 0x100, memaddr.LineData{}, true)
	req := r.port.last()
	if req == nil || req.Type != proto.MGetM {
		t.Fatalf("no escalation GetM; last = %v", req)
	}
	r.grant(proto.MDataM, 0x100, memaddr.LineData{}, false)
	if r.l1.State(0x100) != M {
		t.Fatalf("state = %v", r.l1.State(0x100))
	}
	if v, done := r.load(0x104); !done || v != 3 {
		t.Fatalf("escalated store lost: %d,%v", v, done)
	}
}

func TestInvalidateSharedLine(t *testing.T) {
	r := newMRig(t)
	r.load(0x140)
	r.grant(proto.MDataS, 0x140, memaddr.LineData{}, true)
	r.port.take()
	r.l1.HandleMessage(&proto.Message{Type: proto.MInv, Src: 99, Line: 0x140, Mask: memaddr.FullMask})
	r.eng.Run()
	if r.l1.State(0x140) != I {
		t.Fatalf("state = %v", r.l1.State(0x140))
	}
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.MInvAck {
		t.Fatalf("ack = %v", sent)
	}
}

func TestStrayInvAcked(t *testing.T) {
	r := newMRig(t)
	r.l1.HandleMessage(&proto.Message{Type: proto.MInv, Src: 99, Line: 0xdead00, Mask: memaddr.FullMask})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.MInvAck {
		t.Fatalf("stray Inv not acked: %v", sent)
	}
}

func TestInvDuringUpgradeForcesDataGrant(t *testing.T) {
	r := newMRig(t)
	// Hold the line Shared.
	r.load(0x180)
	r.grant(proto.MDataS, 0x180, memaddr.LineData{}, true)
	// Upgrade in flight...
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x180, Value: 1}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	// ...when a racing writer invalidates us.
	r.l1.HandleMessage(&proto.Message{Type: proto.MInv, Src: 99, Line: 0x180, Mask: memaddr.FullMask})
	r.eng.Run()
	// The directory (which removed us from the sharer set) sends full data.
	var data memaddr.LineData
	data[1] = 42
	r.grant(proto.MDataM, 0x180, data, true)
	if r.l1.State(0x180) != M {
		t.Fatalf("state = %v", r.l1.State(0x180))
	}
	if v, done := r.load(0x184); !done || v != 42 {
		t.Fatalf("data grant lost: %d,%v", v, done)
	}
}

func TestFwdGetSSuppliesDataAndDowngrades(t *testing.T) {
	r := newMRig(t)
	r.store(0x1c0, 8)
	r.grant(proto.MDataM, 0x1c0, memaddr.LineData{}, true)
	r.port.take()
	r.l1.HandleMessage(&proto.Message{Type: proto.MFwdGetS, Src: 99, Requestor: 5,
		ReqID: 70, Line: 0x1c0, Mask: memaddr.FullMask})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 2 {
		t.Fatalf("sent %d messages", len(sent))
	}
	var toReq, toDir *proto.Message
	for i := range sent {
		switch sent[i].Type {
		case proto.MDataS:
			toReq = &sent[i]
		case proto.MWBData:
			toDir = &sent[i]
		}
	}
	if toReq == nil || toReq.Dst != 5 || toReq.Data[0] != 8 {
		t.Fatalf("requestor response wrong: %v", toReq)
	}
	if toDir == nil || toDir.Dst != 99 || !toDir.HasData {
		t.Fatalf("dir write-back wrong: %v", toDir)
	}
	if r.l1.State(0x1c0) != S {
		t.Fatalf("state = %v", r.l1.State(0x1c0))
	}
}

func TestFwdGetMInvalidatesAndTransfers(t *testing.T) {
	r := newMRig(t)
	r.store(0x200, 4)
	r.grant(proto.MDataM, 0x200, memaddr.LineData{}, true)
	r.port.take()
	r.l1.HandleMessage(&proto.Message{Type: proto.MFwdGetM, Src: 99, Requestor: 7,
		ReqID: 71, Line: 0x200, Mask: memaddr.FullMask})
	r.eng.Run()
	if r.l1.State(0x200) != I {
		t.Fatalf("state = %v", r.l1.State(0x200))
	}
	sent := r.port.take()
	var dataM bool
	for _, m := range sent {
		if m.Type == proto.MDataM && m.Dst == 7 && m.Data[0] == 4 {
			dataM = true
		}
	}
	if !dataM {
		t.Fatal("line not transferred to requestor")
	}
}

func TestRecallFwdGetM(t *testing.T) {
	r := newMRig(t)
	r.store(0x240, 6)
	r.grant(proto.MDataM, 0x240, memaddr.LineData{}, true)
	r.port.take()
	// Requestor == Src marks a directory recall (LLC eviction).
	r.l1.HandleMessage(&proto.Message{Type: proto.MFwdGetM, Src: 99, Requestor: 99,
		Line: 0x240, Mask: memaddr.FullMask})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.MWBData || !sent[0].HasData || sent[0].Data[0] != 6 {
		t.Fatalf("recall response = %v", sent)
	}
}

func TestFwdDuringPendingGetMIsDeferred(t *testing.T) {
	r := newMRig(t)
	// GetM outstanding.
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x280, Value: 2}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	r.port.take()
	// A forward arrives before the grant: must be deferred, not answered.
	r.l1.HandleMessage(&proto.Message{Type: proto.MFwdGetM, Src: 99, Requestor: 7,
		ReqID: 72, Line: 0x280, Mask: memaddr.FullMask})
	r.eng.Run()
	if len(r.port.take()) != 0 {
		t.Fatal("forward answered before the grant")
	}
	// Grant arrives: the store applies, then the deferred forward drains.
	var data memaddr.LineData
	r.l1.HandleMessage(&proto.Message{Type: proto.MDataM, Src: 99, ReqID: 0,
		Line: 0x280, Mask: memaddr.FullMask, HasData: true, Data: data})
	r.eng.Run()
	sent := r.port.take()
	seen := false
	for _, m := range sent {
		if m.Type == proto.MDataM && m.Dst == 7 && m.Data[0] == 2 {
			seen = true
		}
	}
	if !seen || r.l1.State(0x280) != I {
		t.Fatalf("deferred forward mishandled: %v state=%v", sent, r.l1.State(0x280))
	}
}

func TestEvictionSendsPutMAndServesRaces(t *testing.T) {
	r := newMRig(t)
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x100000 + i*64*64) }
	// Fill a set with M lines.
	for i := 0; i < 9; i++ {
		r.store(conflict(i), uint32(i+1))
		r.grant(proto.MDataM, conflict(i).Line(), memaddr.LineData{}, true)
	}
	// The 9th store evicted line 0: a PutM must be among the messages.
	var put *proto.Message
	for i := range r.port.sent {
		if r.port.sent[i].Type == proto.MPutM && r.port.sent[i].Line == conflict(0).Line() {
			put = &r.port.sent[i]
		}
	}
	if put == nil || !put.HasData || put.Data[0] != 1 {
		t.Fatalf("no PutM with data for the victim")
	}
	// A forward racing the write-back is served from the pending record.
	r.port.take()
	r.l1.HandleMessage(&proto.Message{Type: proto.MFwdGetS, Src: 99, Requestor: 3,
		ReqID: 73, Line: conflict(0).Line(), Mask: memaddr.FullMask})
	r.eng.Run()
	sent := r.port.take()
	ok := false
	for _, m := range sent {
		if m.Type == proto.MDataS && m.Dst == 3 && m.Data[0] == 1 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("race not served from pending write-back: %v", sent)
	}
	// The late AckWB clears the record.
	r.l1.HandleMessage(&proto.Message{Type: proto.MAckWB, Src: 99, Line: conflict(0).Line()})
	r.eng.Run()
	if len(r.l1.wbs) != 0 {
		t.Fatal("pending write-back record leaked")
	}
}

func TestAtomicOnMissGrantsAndApplies(t *testing.T) {
	r := newMRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0x2c0,
		Atomic: proto.AtomicFetchAdd, Value: 5}, func(v uint32) { got = v; done = true })
	r.eng.Run()
	var data memaddr.LineData
	data[0] = 10
	r.grant(proto.MDataM, 0x2c0, data, true)
	if !done || got != 10 {
		t.Fatalf("atomic got %d,%v", got, done)
	}
	if v, _ := r.load(0x2c0); v != 15 {
		t.Fatalf("post-atomic value %d", v)
	}
	// Locally-owned atomics now hit without traffic.
	r.port.take()
	r.l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0x2c0,
		Atomic: proto.AtomicFetchAdd, Value: 1}, func(uint32) {})
	r.eng.Run()
	if len(r.port.take()) != 0 {
		t.Fatal("owned atomic generated traffic")
	}
}

func TestProbeOwnedMapsMEToFullLine(t *testing.T) {
	r := newMRig(t)
	r.store(0x300, 1)
	r.grant(proto.MDataM, 0x300, memaddr.LineData{}, true)
	r.load(0x340)
	r.grant(proto.MDataS, 0x340, memaddr.LineData{}, true)
	owned := r.l1.ProbeOwned()
	if owned[0x300] != memaddr.FullMask {
		t.Fatalf("M line owned mask %#x", owned[0x300])
	}
	if _, ok := owned[0x340]; ok {
		t.Fatal("S line reported as owned")
	}
}

func TestSelfInvalidateIsNoOp(t *testing.T) {
	r := newMRig(t)
	r.load(0x380)
	r.grant(proto.MDataS, 0x380, memaddr.LineData{}, true)
	r.l1.SelfInvalidate()
	if r.l1.State(0x380) != S {
		t.Fatal("MESI self-invalidate must be a no-op (writer-invalidated)")
	}
}

func TestPeekLineHasNoLRUEffect(t *testing.T) {
	r := newMRig(t)
	r.load(0x3c0)
	var data memaddr.LineData
	data[2] = 9
	r.grant(proto.MDataS, 0x3c0, data, true)
	d, s := r.l1.PeekLine(0x3c0)
	if s != S || d[2] != 9 {
		t.Fatalf("peek = %v/%v", d[2], s)
	}
	if _, s := r.l1.PeekLine(0x9999c0); s != I {
		t.Fatal("absent line not I")
	}
}
