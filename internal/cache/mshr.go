package cache

import "spandex/internal/memaddr"

// MSHR is a miss-status holding register file: one entry per outstanding
// line transaction, with protocol-specific payload T.
type MSHR[T any] struct {
	cap     int
	entries map[memaddr.LineAddr]*T
}

// NewMSHR creates an MSHR file with the given capacity.
func NewMSHR[T any](capacity int) *MSHR[T] {
	return &MSHR[T]{cap: capacity, entries: make(map[memaddr.LineAddr]*T)}
}

// Full reports whether a new allocation would exceed capacity.
func (m *MSHR[T]) Full() bool { return len(m.entries) >= m.cap }

// Len returns the number of live entries.
func (m *MSHR[T]) Len() int { return len(m.entries) }

// Lookup returns the entry for line, or nil.
func (m *MSHR[T]) Lookup(line memaddr.LineAddr) *T { return m.entries[line] }

// Alloc creates and returns a new zero entry for line. It panics if the
// line already has an entry or the file is full; callers must check first.
func (m *MSHR[T]) Alloc(line memaddr.LineAddr) *T {
	if m.Full() {
		panic("cache: MSHR overflow")
	}
	if _, ok := m.entries[line]; ok {
		panic("cache: duplicate MSHR allocation")
	}
	e := new(T)
	m.entries[line] = e
	return e
}

// Free releases the entry for line.
func (m *MSHR[T]) Free(line memaddr.LineAddr) { delete(m.entries, line) }

// ForEach visits all entries (iteration order unspecified; callers needing
// determinism must not depend on order).
func (m *MSHR[T]) ForEach(fn func(line memaddr.LineAddr, e *T)) {
	for l, e := range m.entries {
		fn(l, e)
	}
}
