package cache

import (
	"math/bits"

	"spandex/internal/memaddr"
)

// MSHR is a miss-status holding register file: one entry per outstanding
// line transaction, with protocol-specific payload T. Entries live in a
// fixed slot array; allocation picks the first free slot by a
// trailing-zero scan over a free bitmap, so the steady state allocates
// nothing and entry pointers stay valid for the entry's lifetime (the
// slot array never grows).
type MSHR[T any] struct {
	slots  []T
	free   []uint64 // 1 = slot free
	byLine map[memaddr.LineAddr]int32
}

// NewMSHR creates an MSHR file with the given capacity.
func NewMSHR[T any](capacity int) *MSHR[T] {
	m := &MSHR[T]{
		slots:  make([]T, capacity),
		free:   make([]uint64, (capacity+63)/64),
		byLine: make(map[memaddr.LineAddr]int32, capacity),
	}
	for i := 0; i < capacity; i++ {
		m.free[i>>6] |= 1 << (i & 63)
	}
	return m
}

// Full reports whether a new allocation would exceed capacity.
func (m *MSHR[T]) Full() bool { return len(m.byLine) >= len(m.slots) }

// Len returns the number of live entries.
func (m *MSHR[T]) Len() int { return len(m.byLine) }

// Lookup returns the entry for line, or nil.
func (m *MSHR[T]) Lookup(line memaddr.LineAddr) *T {
	if i, ok := m.byLine[line]; ok {
		return &m.slots[i]
	}
	return nil
}

// Alloc returns a zeroed entry for line from the first free slot. It
// panics if the line already has an entry or the file is full; callers
// must check first.
func (m *MSHR[T]) Alloc(line memaddr.LineAddr) *T {
	if m.Full() {
		panic("cache: MSHR overflow")
	}
	if _, ok := m.byLine[line]; ok {
		panic("cache: duplicate MSHR allocation")
	}
	idx := -1
	for w, word := range m.free {
		if word != 0 {
			idx = w<<6 + bits.TrailingZeros64(word)
			break
		}
	}
	m.free[idx>>6] &^= 1 << (idx & 63)
	var zero T
	m.slots[idx] = zero
	m.byLine[line] = int32(idx)
	return &m.slots[idx]
}

// AllocReuse is Alloc without the slot zeroing: the returned entry still
// holds whatever the slot's previous occupant left behind. The caller must
// reinitialize every field — typically one struct-literal assignment that
// truncates slice fields to [:0] so their backing arrays are reused:
//
//	r := mshr.AllocReuse(line)
//	*r = entry{id: id, waiters: r.waiters[:0]}
//
// This keeps the per-miss waiter-list allocation out of the steady state.
func (m *MSHR[T]) AllocReuse(line memaddr.LineAddr) *T {
	if m.Full() {
		panic("cache: MSHR overflow")
	}
	if _, ok := m.byLine[line]; ok {
		panic("cache: duplicate MSHR allocation")
	}
	idx := -1
	for w, word := range m.free {
		if word != 0 {
			idx = w<<6 + bits.TrailingZeros64(word)
			break
		}
	}
	m.free[idx>>6] &^= 1 << (idx & 63)
	m.byLine[line] = int32(idx)
	return &m.slots[idx]
}

// Free releases the entry for line. The slot may be reused by the next
// Alloc; callers must not retain the entry pointer past this call.
func (m *MSHR[T]) Free(line memaddr.LineAddr) {
	if i, ok := m.byLine[line]; ok {
		delete(m.byLine, line)
		m.free[i>>6] |= 1 << (i & 63)
	}
}

// ForEach visits all entries (iteration order unspecified; callers needing
// determinism must not depend on order).
func (m *MSHR[T]) ForEach(fn func(line memaddr.LineAddr, e *T)) {
	for l, i := range m.byLine {
		fn(l, &m.slots[i])
	}
}
