package cache

import "spandex/internal/memaddr"

// WBEntry is one coalesced write-buffer slot: pending store data for one
// line. Stores to the same line coalesce into a single slot until the slot
// is issued to the memory system (paper §II-B, §II-C: "writes to the same
// line can be coalesced into a single request in the write buffer").
type WBEntry struct {
	Line   memaddr.LineAddr
	Mask   memaddr.WordMask
	Data   memaddr.LineData
	Issued bool
}

// WriteBuffer is a FIFO of coalescing store entries. The zero value is not
// usable; use NewWriteBuffer.
type WriteBuffer struct {
	cap      int
	fifo     []*WBEntry
	byLine   map[memaddr.LineAddr]*WBEntry
	unissued int
}

// NewWriteBuffer creates a write buffer holding up to capacity line slots.
func NewWriteBuffer(capacity int) *WriteBuffer {
	return &WriteBuffer{cap: capacity, byLine: make(map[memaddr.LineAddr]*WBEntry)}
}

// Full reports whether a store to a new line would overflow the buffer.
func (w *WriteBuffer) Full() bool { return len(w.fifo) >= w.cap }

// Empty reports whether no stores are pending.
func (w *WriteBuffer) Empty() bool { return len(w.fifo) == 0 }

// Len returns the number of occupied line slots.
func (w *WriteBuffer) Len() int { return len(w.fifo) }

// Put records a store of value to addr. It coalesces into an existing
// un-issued slot for the same line; otherwise it allocates a new slot
// (panicking if full — callers must check Full for new lines first).
// It reports whether a new slot was allocated.
func (w *WriteBuffer) Put(addr memaddr.Addr, value uint32) bool {
	line := addr.Line()
	if e, ok := w.byLine[line]; ok && !e.Issued {
		e.Mask |= addr.WordMaskOf()
		e.Data[addr.WordIndex()] = value
		return false
	}
	if w.Full() {
		panic("cache: write buffer overflow")
	}
	e := &WBEntry{Line: line, Mask: addr.WordMaskOf()}
	e.Data[addr.WordIndex()] = value
	w.fifo = append(w.fifo, e)
	w.byLine[line] = e
	w.unissued++
	return true
}

// UnissuedCount reports how many entries have not been issued yet.
func (w *WriteBuffer) UnissuedCount() int { return w.unissued }

// MarkIssued transitions an entry to issued state (callers must not set
// the Issued field directly once using pressure-based draining).
func (w *WriteBuffer) MarkIssued(e *WBEntry) {
	if !e.Issued {
		e.Issued = true
		w.unissued--
	}
}

// CanCoalesce reports whether a store to addr would coalesce (not needing
// a free slot).
func (w *WriteBuffer) CanCoalesce(addr memaddr.Addr) bool {
	e, ok := w.byLine[addr.Line()]
	return ok && !e.Issued
}

// NextUnissued returns the oldest entry not yet issued, or nil.
func (w *WriteBuffer) NextUnissued() *WBEntry {
	for _, e := range w.fifo {
		if !e.Issued {
			return e
		}
	}
	return nil
}

// Unissued returns every entry not yet issued, in FIFO order.
func (w *WriteBuffer) Unissued() []*WBEntry {
	var out []*WBEntry
	for _, e := range w.fifo {
		if !e.Issued {
			out = append(out, e)
		}
	}
	return out
}

// Complete removes the slot for line (its write has been acknowledged).
func (w *WriteBuffer) Complete(line memaddr.LineAddr) {
	e, ok := w.byLine[line]
	if !ok {
		return
	}
	if !e.Issued {
		w.unissued--
	}
	delete(w.byLine, line)
	for i, f := range w.fifo {
		if f == e {
			w.fifo = append(w.fifo[:i], w.fifo[i+1:]...)
			break
		}
	}
}

// Lookup returns the slot for line, or nil.
func (w *WriteBuffer) Lookup(line memaddr.LineAddr) *WBEntry { return w.byLine[line] }

// ReadForward returns the buffered value for addr if the buffer holds a
// store to that word (store→load forwarding), preserving read-your-writes
// even while the store is in flight.
func (w *WriteBuffer) ReadForward(addr memaddr.Addr) (uint32, bool) {
	e, ok := w.byLine[addr.Line()]
	if !ok || !e.Mask.Has(addr.WordIndex()) {
		return 0, false
	}
	return e.Data[addr.WordIndex()], true
}
