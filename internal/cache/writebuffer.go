package cache

import (
	"math/bits"

	"spandex/internal/memaddr"
)

// WBEntry is one coalesced write-buffer slot: pending store data for one
// line. Stores to the same line coalesce into a single slot until the slot
// is issued to the memory system (paper §II-B, §II-C: "writes to the same
// line can be coalesced into a single request in the write buffer").
type WBEntry struct {
	Line   memaddr.LineAddr
	Mask   memaddr.WordMask
	Data   memaddr.LineData
	Issued bool
	// seq is the allocation stamp: FIFO age order among live slots.
	seq uint64
}

// WriteBuffer holds coalescing store entries in a fixed slot array with
// occupancy and unissued bitmaps. Slot allocation and the oldest-unissued
// pick are trailing-zero scans over the bitmaps instead of linear walks
// over a FIFO slice; per-slot sequence stamps preserve the FIFO issue
// order the protocols' message emission (and thus the run fingerprint)
// depends on. The zero value is not usable; use NewWriteBuffer.
type WriteBuffer struct {
	slots []WBEntry
	// occ marks occupied slots; unissuedBits marks occupied slots whose
	// entry has not been issued (occ ⊇ unissuedBits).
	occ          []uint64
	unissuedBits []uint64
	byLine       map[memaddr.LineAddr]int32
	nextSeq      uint64
	count        int
	unissued     int
}

// NewWriteBuffer creates a write buffer holding up to capacity line slots.
func NewWriteBuffer(capacity int) *WriteBuffer {
	return &WriteBuffer{
		slots:        make([]WBEntry, capacity),
		occ:          make([]uint64, (capacity+63)/64),
		unissuedBits: make([]uint64, (capacity+63)/64),
		byLine:       make(map[memaddr.LineAddr]int32, capacity),
	}
}

// Full reports whether a store to a new line would overflow the buffer.
func (w *WriteBuffer) Full() bool { return w.count >= len(w.slots) }

// Empty reports whether no stores are pending.
func (w *WriteBuffer) Empty() bool { return w.count == 0 }

// Len returns the number of occupied line slots.
func (w *WriteBuffer) Len() int { return w.count }

// Put records a store of value to addr. It coalesces into an existing
// un-issued slot for the same line; otherwise it allocates a new slot
// (panicking if full — callers must check Full for new lines first).
// It reports whether a new slot was allocated.
func (w *WriteBuffer) Put(addr memaddr.Addr, value uint32) bool {
	line := addr.Line()
	if i, ok := w.byLine[line]; ok && !w.slots[i].Issued {
		e := &w.slots[i]
		e.Mask |= addr.WordMaskOf()
		e.Data[addr.WordIndex()] = value
		return false
	}
	if w.Full() {
		panic("cache: write buffer overflow")
	}
	idx := -1
	for wd, word := range w.occ {
		if free := ^word; free != 0 {
			idx = wd<<6 + bits.TrailingZeros64(free)
			break
		}
	}
	e := &w.slots[idx]
	w.nextSeq++
	*e = WBEntry{Line: line, Mask: addr.WordMaskOf(), seq: w.nextSeq}
	e.Data[addr.WordIndex()] = value
	w.occ[idx>>6] |= 1 << (idx & 63)
	w.unissuedBits[idx>>6] |= 1 << (idx & 63)
	w.byLine[line] = int32(idx)
	w.count++
	w.unissued++
	return true
}

// UnissuedCount reports how many entries have not been issued yet.
func (w *WriteBuffer) UnissuedCount() int { return w.unissued }

// MarkIssued transitions an entry to issued state (callers must not set
// the Issued field directly once using pressure-based draining).
func (w *WriteBuffer) MarkIssued(e *WBEntry) {
	if !e.Issued {
		e.Issued = true
		w.unissued--
		i := w.byLine[e.Line]
		w.unissuedBits[i>>6] &^= 1 << (i & 63)
	}
}

// CanCoalesce reports whether a store to addr would coalesce (not needing
// a free slot).
func (w *WriteBuffer) CanCoalesce(addr memaddr.Addr) bool {
	i, ok := w.byLine[addr.Line()]
	return ok && !w.slots[i].Issued
}

// NextUnissued returns the oldest entry not yet issued, or nil. "Oldest"
// is allocation order (the seq stamp), matching the FIFO semantics the
// issue order — and thus the run fingerprint — depends on.
func (w *WriteBuffer) NextUnissued() *WBEntry {
	var best *WBEntry
	for wd, word := range w.unissuedBits {
		for ; word != 0; word &= word - 1 {
			e := &w.slots[wd<<6+bits.TrailingZeros64(word)]
			if best == nil || e.seq < best.seq {
				best = e
			}
		}
	}
	return best
}

// Unissued returns every entry not yet issued, in FIFO (allocation) order.
func (w *WriteBuffer) Unissued() []*WBEntry {
	var out []*WBEntry
	for wd, word := range w.unissuedBits {
		for ; word != 0; word &= word - 1 {
			e := &w.slots[wd<<6+bits.TrailingZeros64(word)]
			// Insertion sort by seq: slot index order is not age order once
			// slots recycle, and the flush paths that call this are rare.
			pos := len(out)
			for pos > 0 && out[pos-1].seq > e.seq {
				pos--
			}
			out = append(out, nil)
			copy(out[pos+1:], out[pos:])
			out[pos] = e
		}
	}
	return out
}

// Complete removes the slot for line (its write has been acknowledged).
func (w *WriteBuffer) Complete(line memaddr.LineAddr) {
	i, ok := w.byLine[line]
	if !ok {
		return
	}
	if !w.slots[i].Issued {
		w.unissued--
	}
	delete(w.byLine, line)
	w.occ[i>>6] &^= 1 << (i & 63)
	w.unissuedBits[i>>6] &^= 1 << (i & 63)
	w.count--
}

// Lookup returns the slot for line, or nil.
func (w *WriteBuffer) Lookup(line memaddr.LineAddr) *WBEntry {
	if i, ok := w.byLine[line]; ok {
		return &w.slots[i]
	}
	return nil
}

// ReadForward returns the buffered value for addr if the buffer holds a
// store to that word (store→load forwarding), preserving read-your-writes
// even while the store is in flight.
func (w *WriteBuffer) ReadForward(addr memaddr.Addr) (uint32, bool) {
	i, ok := w.byLine[addr.Line()]
	if !ok || !w.slots[i].Mask.Has(addr.WordIndex()) {
		return 0, false
	}
	return w.slots[i].Data[addr.WordIndex()], true
}
