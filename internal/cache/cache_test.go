package cache

import (
	"testing"
	"testing/quick"

	"spandex/internal/memaddr"
)

func line(n uint64) memaddr.LineAddr { return memaddr.LineAddr(n << memaddr.LineShift) }

func TestArrayGeometry(t *testing.T) {
	a := NewArray[int](32*1024, 8)
	if a.Sets() != 64 || a.Ways() != 8 {
		t.Fatalf("geometry %dx%d", a.Sets(), a.Ways())
	}
}

func TestArrayBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	NewArray[int](3*memaddr.LineBytes*2, 2) // 3 sets
}

func TestLookupInstall(t *testing.T) {
	a := NewArray[string](4*1024, 4)
	l := line(5)
	if a.Lookup(l) != nil {
		t.Fatal("phantom hit")
	}
	v := a.Victim(l)
	if v == nil || v.Valid {
		t.Fatal("expected an invalid victim frame in empty set")
	}
	a.Install(v, l)
	e := a.Lookup(l)
	if e == nil || e.Line != l {
		t.Fatal("installed line not found")
	}
	e.State = "hello"
	if a.Peek(l).State != "hello" {
		t.Fatal("state lost")
	}
	a.Invalidate(l)
	if a.Lookup(l) != nil {
		t.Fatal("line survived invalidate")
	}
}

func TestLRUReplacement(t *testing.T) {
	a := NewArray[int](2*memaddr.LineBytes, 2) // 1 set, 2 ways
	l0, l1, l2 := line(0), line(1), line(2)
	a.Install(a.Victim(l0), l0)
	a.Install(a.Victim(l1), l1)
	a.Lookup(l0) // l0 now MRU; victim should be l1
	v := a.Victim(l2)
	if !v.Valid || v.Line != l1 {
		t.Fatalf("victim = %+v, want line %#x", v, l1)
	}
	a.Install(v, l2)
	if a.Lookup(l1) != nil || a.Lookup(l0) == nil || a.Lookup(l2) == nil {
		t.Fatal("replacement corrupted set")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	a := NewArray[int](2*memaddr.LineBytes, 2)
	l0, l1 := line(0), line(1)
	a.Install(a.Victim(l0), l0)
	a.Install(a.Victim(l1), l1)
	a.Peek(l0) // must NOT refresh l0
	v := a.Victim(line(2))
	if v.Line != l0 {
		t.Fatalf("Peek refreshed LRU: victim %#x", v.Line)
	}
}

func TestArraySetConflictsOnly(t *testing.T) {
	// Lines mapping to different sets never evict each other.
	a := NewArray[int](8*memaddr.LineBytes, 1) // 8 sets, direct mapped
	for i := uint64(0); i < 8; i++ {
		l := line(i)
		a.Install(a.Victim(l), l)
	}
	for i := uint64(0); i < 8; i++ {
		if a.Lookup(line(i)) == nil {
			t.Fatalf("line %d evicted by non-conflicting install", i)
		}
	}
	// line(8) conflicts with line(0) only.
	v := a.Victim(line(8))
	if v.Line != line(0) {
		t.Fatalf("victim %#x, want %#x", v.Line, line(0))
	}
}

func TestMSHR(t *testing.T) {
	type entry struct{ n int }
	m := NewMSHR[entry](2)
	e := m.Alloc(line(1))
	e.n = 42
	if m.Lookup(line(1)).n != 42 {
		t.Fatal("lookup mismatch")
	}
	m.Alloc(line(2))
	if !m.Full() {
		t.Fatal("should be full")
	}
	m.Free(line(1))
	if m.Full() || m.Len() != 1 {
		t.Fatal("free failed")
	}
	if m.Lookup(line(1)) != nil {
		t.Fatal("freed entry still visible")
	}
}

func TestMSHRDuplicatePanics(t *testing.T) {
	m := NewMSHR[int](4)
	m.Alloc(line(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate alloc did not panic")
		}
	}()
	m.Alloc(line(1))
}

func TestWriteBufferCoalescing(t *testing.T) {
	w := NewWriteBuffer(4)
	if !w.Put(memaddr.Addr(0x100), 1) {
		t.Fatal("first store should allocate")
	}
	if w.Put(memaddr.Addr(0x104), 2) {
		t.Fatal("same-line store should coalesce")
	}
	if w.Len() != 1 {
		t.Fatalf("len = %d", w.Len())
	}
	e := w.NextUnissued()
	if e.Mask != 0b11 || e.Data[0] != 1 || e.Data[1] != 2 {
		t.Fatalf("entry = %+v", e)
	}
	e.Issued = true
	if w.Put(memaddr.Addr(0x108), 3) != true {
		t.Fatal("store to issued entry must allocate a new slot")
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestWriteBufferForwarding(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Put(memaddr.Addr(0x40), 7)
	if v, ok := w.ReadForward(memaddr.Addr(0x40)); !ok || v != 7 {
		t.Fatalf("forward = %d,%v", v, ok)
	}
	if _, ok := w.ReadForward(memaddr.Addr(0x44)); ok {
		t.Fatal("forwarded a word that was never stored")
	}
	w.Complete(memaddr.Addr(0x40).Line())
	if _, ok := w.ReadForward(memaddr.Addr(0x40)); ok {
		t.Fatal("forwarded after completion")
	}
	if !w.Empty() {
		t.Fatal("not empty after complete")
	}
}

func TestWriteBufferFIFOOrder(t *testing.T) {
	w := NewWriteBuffer(8)
	w.Put(memaddr.Addr(0x40), 1)
	w.Put(memaddr.Addr(0x80), 2)
	w.Put(memaddr.Addr(0xc0), 3)
	e := w.NextUnissued()
	if e.Line != memaddr.Addr(0x40).Line() {
		t.Fatal("drain not FIFO")
	}
	w.MarkIssued(e)
	if w.NextUnissued().Line != memaddr.Addr(0x80).Line() {
		t.Fatal("drain not FIFO after issue")
	}
	w.Complete(memaddr.Addr(0x40).Line())
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
}

// Property: after any sequence of Puts, ReadForward returns exactly the
// last value written to each word that has an entry.
func TestWriteBufferProperty(t *testing.T) {
	f := func(ops []struct {
		Word uint8
		Val  uint32
	}) bool {
		w := NewWriteBuffer(1024)
		want := map[memaddr.Addr]uint32{}
		for _, op := range ops {
			addr := memaddr.Addr(op.Word%64) * 4 // 16 lines' worth of words
			if w.Full() && !w.CanCoalesce(addr) {
				break
			}
			w.Put(addr, op.Val)
			want[addr] = op.Val
		}
		for a, v := range want {
			got, ok := w.ReadForward(a)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
