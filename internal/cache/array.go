// Package cache provides the storage structures every cache controller is
// built from: a set-associative tag/data array with LRU replacement, a
// miss-status holding register (MSHR) file, and a coalescing write buffer.
// Protocol state machines live in the per-protocol packages; this package
// is purely structural.
package cache

import (
	"fmt"

	"spandex/internal/memaddr"
)

// Entry is one line frame in a set-associative array. State holds the
// protocol's per-line payload.
type Entry[S any] struct {
	Valid bool
	Line  memaddr.LineAddr
	State S

	lru uint64
}

// Array is a set-associative cache array with true-LRU replacement.
// Set frame storage is allocated lazily on first touch: configured arrays
// are often far larger than a workload's footprint, and eagerly zeroing
// hundreds of megabytes of untouched frames dominates construction cost.
type Array[S any] struct {
	sets, ways int
	// stride divides the line index before set selection. A bank of an
	// address-interleaved multi-bank cache only ever sees lines whose index
	// is congruent to its bank modulo the bank count; dividing by that
	// count first spreads them over every set instead of a 1/stride
	// subset. 0 and 1 both mean the ordinary single-bank mapping.
	stride uint64
	chunks [][]Entry[S]
	tick   uint64
}

// NewArray builds an array with the given geometry. sizeBytes must be a
// multiple of ways*LineBytes and the resulting set count a power of two.
func NewArray[S any](sizeBytes, ways int) *Array[S] {
	lines := sizeBytes / memaddr.LineBytes
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache: %d lines not divisible by %d ways", lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Array[S]{sets: sets, ways: ways, chunks: make([][]Entry[S], sets)}
}

// SetIndexStride makes set selection divide the line index by n first —
// the mapping a bank of an n-way interleaved multi-bank cache needs (see
// the stride field). Call before any line is installed.
func (a *Array[S]) SetIndexStride(n int) {
	if n < 0 {
		panic(fmt.Sprintf("cache: negative set-index stride %d", n))
	}
	a.stride = uint64(n)
}

// Sets returns the number of sets.
func (a *Array[S]) Sets() int { return a.sets }

// SetIndex returns the set a line maps to (telemetry and diagnostics).
func (a *Array[S]) SetIndex(line memaddr.LineAddr) int { return a.setOf(line) }

// Ways returns the associativity.
func (a *Array[S]) Ways() int { return a.ways }

func (a *Array[S]) setOf(line memaddr.LineAddr) int {
	idx := uint64(line) >> memaddr.LineShift
	if a.stride > 1 {
		idx /= a.stride
	}
	return int(idx) & (a.sets - 1)
}

// set returns setOf(line)'s frames, allocating them on first touch.
func (a *Array[S]) set(line memaddr.LineAddr) []Entry[S] {
	i := a.setOf(line)
	s := a.chunks[i]
	if s == nil {
		s = make([]Entry[S], a.ways)
		a.chunks[i] = s
	}
	return s
}

// Lookup returns the entry holding line, or nil. It refreshes LRU state.
func (a *Array[S]) Lookup(line memaddr.LineAddr) *Entry[S] {
	s := a.chunks[a.setOf(line)]
	for i := range s {
		e := &s[i]
		if e.Valid && e.Line == line {
			a.tick++
			e.lru = a.tick
			return e
		}
	}
	return nil
}

// Peek is Lookup without the LRU update (probes must not perturb reuse).
func (a *Array[S]) Peek(line memaddr.LineAddr) *Entry[S] {
	s := a.chunks[a.setOf(line)]
	for i := range s {
		e := &s[i]
		if e.Valid && e.Line == line {
			return e
		}
	}
	return nil
}

// Victim returns the frame that would hold line: an invalid frame in the
// set if one exists, otherwise the least recently used entry. The caller
// is responsible for evicting a valid victim before reusing the frame.
func (a *Array[S]) Victim(line memaddr.LineAddr) *Entry[S] {
	s := a.set(line)
	var victim *Entry[S]
	for i := range s {
		e := &s[i]
		if !e.Valid {
			return e
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// VictimWhere is Victim restricted to frames satisfying ok (invalid frames
// always satisfy). It returns nil when every frame in the set is excluded —
// the caller must retry later.
func (a *Array[S]) VictimWhere(line memaddr.LineAddr, ok func(e *Entry[S]) bool) *Entry[S] {
	s := a.set(line)
	var victim *Entry[S]
	for i := range s {
		e := &s[i]
		if !e.Valid {
			return e
		}
		if !ok(e) {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// Install claims frame e for line, resetting its state to the zero value
// and marking it most recently used. e must come from Victim for the same
// set as line.
func (a *Array[S]) Install(e *Entry[S], line memaddr.LineAddr) {
	var zero S
	a.tick++
	*e = Entry[S]{Valid: true, Line: line, State: zero, lru: a.tick}
}

// Invalidate releases the frame holding line, if any.
func (a *Array[S]) Invalidate(line memaddr.LineAddr) {
	if e := a.Peek(line); e != nil {
		var zero S
		*e = Entry[S]{State: zero}
	}
}

// ForEach visits every valid entry. The callback must not install or
// invalidate entries.
func (a *Array[S]) ForEach(fn func(e *Entry[S])) {
	for _, s := range a.chunks {
		for i := range s {
			if s[i].Valid {
				fn(&s[i])
			}
		}
	}
}

// InvalidateWhere visits every valid entry and releases those for which fn
// returns true. fn may mutate the entry's state in place, so acquire-flash
// sweeps (downgrade every line, drop the now-empty ones) run in one pass
// without collecting victim lines into a slice first.
func (a *Array[S]) InvalidateWhere(fn func(e *Entry[S]) bool) {
	for _, s := range a.chunks {
		for i := range s {
			if s[i].Valid && fn(&s[i]) {
				var zero S
				s[i] = Entry[S]{State: zero}
			}
		}
	}
}
