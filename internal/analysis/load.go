package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("spandex/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with `go list` from dir, then
// parses and type-checks every matched non-test file. Dependencies —
// including the standard library — are type-checked from source via the
// compiler-independent "source" importer, so the loader needs no export
// data, no module download and no network: everything it touches is the
// local tree plus GOROOT.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to the go tool for pattern resolution (the one part of
// package loading the standard library does not expose).
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// check parses and type-checks one package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
