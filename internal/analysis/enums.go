package analysis

import (
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumConst is one enumerator of a protocol/state enum.
type EnumConst struct {
	Name  string
	Value int64
}

// EnumOf reports the enumerators of a named type if it looks like a
// protocol or state enum, in declaration-value order. A type qualifies
// when it is a defined integer type with at least two package-level
// constants of exactly that type whose smallest value is zero — the iota
// pattern every enum in this repository uses (proto.MsgType, cache-state
// and transaction-kind enums, config selectors). Sentinel count constants
// (numMsgTypes, NumClasses, ...) are excluded by their num/Num prefix, so
// exhaustiveness means "every real enumerator".
//
// Scalar constant types fail the zero-minimum test (sim.Time's clock
// periods, proto.None == -1) and are not treated as enums.
func EnumOf(named *types.Named) []EnumConst {
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil { // universe types (error, ...) are not enums
		return nil
	}
	var consts []EnumConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if strings.HasPrefix(name, "num") || strings.HasPrefix(name, "Num") {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok {
			return nil
		}
		consts = append(consts, EnumConst{Name: name, Value: v})
	}
	if len(consts) < 2 {
		return nil
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Value < consts[j].Value })
	if consts[0].Value != 0 {
		return nil
	}
	return consts
}
