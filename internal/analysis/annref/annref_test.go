package annref_test

import (
	"testing"

	"spandex/internal/analysis/analysistest"
	"spandex/internal/analysis/annref"
)

func TestAnnref(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), annref.Analyzer, "anns")
}
