// Package anns exercises the annref analyzer: spandex protocol
// directives must reference enumerators of the visible MsgType enum, and
// at= lists and wait suffixes must name states the receiver's own
// //spandex:transition directives mention.
package anns

// MsgType mirrors the shape of the real proto.MsgType enum; annref finds
// it by name in the package under analysis.
type MsgType int

const (
	ReqV MsgType = iota
	ReqS
	RspV
	RvkO
	RspRvkO
	InvAck
	MemRead
	MemReadRsp
)

// LLC is an annotated unit: its transition directives define the state
// vocabulary the at= and wait-suffix checks resolve against.
type LLC struct{}

func (l *LLC) handle() {
	//spandex:transition ReqV from=I to=F+fetch emits=MemRead
	//spandex:transition ReqS from=V|F+fetch to=V emits=RspV
	//spandex:transition MemReadRsp from=F+fetch to=V
	//spandex:unreachable InvAck at=V solicited probes always find the open transaction
	//spandex:flow queue ReqV at=F+fetch
	//spandex:flow wait +fetch awaits=MemReadRsp via=MemRead
	//spandex:flow emit RvkO dst=some-device
}

func (l *LLC) bad() {
	//spandex:transition ReqX from=I // want `unknown message type "ReqX" in //spandex:transition`
	//spandex:transition ReqV from=I emits=RspX // want `unknown message type "RspX" in //spandex:transition emits=`
	//spandex:transition ReqV to=V // want `from= is required`
	//spandex:transition ReqV from=I bogus=V // want `unknown field "bogus=V"`
	//spandex:transition from=I // want `first field must be the message name`
	//spandex:unreachable InvAck at=Z never solicited // want `state "Z" in unreachable at= matches no //spandex:transition state of LLC`
	//spandex:unreachable InvAck at=V // want `a justification is required`
	//spandex:unreachable InvAck nowhere ever // want `at=<states> is required`
	//spandex:unreachable BadMsg at=V justified // want `unknown message type "BadMsg" in //spandex:unreachable`
	//spandex:flow queue ReqV at=Q+inv // want `state "Q\+inv" in flow queue at= matches no //spandex:transition state of LLC`
	//spandex:flow wait +rvk awaits=RspRvkO via=RvkO // want `wait suffix "\+rvk" matches no //spandex:transition state of LLC`
	//spandex:flow wait grant awaits=Nope via=MemRead // want `unknown message type "Nope" in //spandex:flow wait awaits=`
	//spandex:flow emit RvkO // want `dst= is required`
	//spandex:flow bogus x // want `unknown directive "bogus"`
	//spandex:flow queue // want `need a directive kind and operand`
}

// TU is an extracted-style unit: no transition annotations, so state
// references cannot be resolved and only message names are checked.
type TU struct{}

func (t *TU) handle() {
	//spandex:flow queue ReqV,ReqS
	//spandex:flow wait grant awaits=RspV via=ReqS opener=any
	//spandex:flow wait +probe awaits=RspV via=ReqS
}

//spandex:transition ReqV from=I // want `//spandex:transition directive outside a method body`
