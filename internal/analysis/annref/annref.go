// Package annref implements the spandex-lint analyzer that validates the
// protocol annotation directives — //spandex:transition,
// //spandex:unreachable and //spandex:flow — against the vocabularies
// they reference.
//
// The transgraph and msgflow extractors trust these directives: an
// annotated transition becomes part of the static graph the model
// checker's coverage accounting and the independence derivation consume,
// and an unreachability declaration silences a gap in the conformance
// diff. A typo in a message or state name therefore does not fail loudly
// — it either invents a phantom state ("V+evit") that makes the graph
// vacuously consistent, or claims unreachability for a pair that never
// existed while the real pair stays untested. This analyzer closes that
// hole at lint time:
//
//   - Every message identifier (the transition's message and emits= list,
//     the unreachable message list, flow queue messages, wait awaits=/via=
//     lists, and the emit message) must be an enumerator of the MsgType
//     enum — resolved from the package under analysis or any of its
//     direct imports, so both the real protocol packages (which import
//     internal/proto) and self-contained testdata validate.
//   - Every state in an at= list (unreachable and flow queue) must appear
//     as a from= or to= state of some //spandex:transition on the same
//     receiver: the claim is about the annotated graph, so a state the
//     graph never mentions is a typo, not a new state.
//   - A flow wait whose name is a state suffix ("+rvk") must match at
//     least one annotated state with that suffix.
//   - The directive grammar itself (required fields, field keys) is
//     checked with per-line diagnostics instead of the extractor's
//     whole-run abort, so a malformed directive is caught where it sits.
//
// State checks only apply to receivers that carry //spandex:transition
// annotations (the LLC). Extracted units (TUs, device L1s, the MESI
// directory) derive their graphs from the AST; their wait names are free
// labels and their directives carry no at= lists, so only message names
// are validated there.
package annref

import (
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/transgraph"
)

// Analyzer is the annref analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "annref",
	Doc:  "spandex:transition/unreachable/flow directives must reference real message types and states",
	Run:  run,
}

// stateRef is a deferred state-membership check: states named by an at=
// list or a wait suffix resolve against the receiver's full transition
// vocabulary, which is only complete after every file has been scanned.
type stateRef struct {
	pos    token.Pos
	recv   string
	where  string // directive the reference appears in, for the message
	states []string
	suffix string // wait-suffix check instead of state membership
}

func run(pass *analysis.Pass) error {
	msgs := msgVocabulary(pass)
	// states collects each receiver's from=/to= vocabulary across the
	// whole package (the LLC's transitions span llc.go and llc_fetch.go).
	states := map[string]map[string]bool{}
	var refs []stateRef

	checkMsgs := func(pos token.Pos, where string, names []string) {
		if msgs == nil {
			return // no MsgType enum in scope; nothing to resolve against
		}
		for _, m := range names {
			if m != "*" && !msgs[m] {
				pass.Reportf(pos, "unknown message type %q in //spandex:%s: not a MsgType enumerator", m, where)
			}
		}
	}

	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				// Strip a trailing comment so analyzer testdata can carry
				// // want expectations on the directive line itself.
				if i := strings.Index(text, "//"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				kind := strings.TrimPrefix(fields[0], "spandex:")
				if kind == fields[0] {
					continue
				}
				switch kind {
				case "transition", "unreachable", "flow":
				default:
					continue
				}
				recv := transgraph.EnclosingRecv(f, c.Pos())
				if recv == "" {
					pass.Reportf(c.Pos(), "//spandex:%s directive outside a method body", kind)
					continue
				}
				pos, rest := c.Pos(), fields[1:]
				switch kind {
				case "transition":
					transition(pass, pos, recv, rest, states, checkMsgs)
				case "unreachable":
					refs = append(refs, unreachable(pass, pos, recv, rest, checkMsgs)...)
				case "flow":
					refs = append(refs, flow(pass, pos, recv, rest, checkMsgs)...)
				}
			}
		}
	}

	for _, r := range refs {
		vocab := states[r.recv]
		if len(vocab) == 0 {
			continue // extracted unit: no annotated graph to resolve against
		}
		if r.suffix != "" {
			if !anySuffix(vocab, r.suffix) {
				pass.Reportf(r.pos, "wait suffix %q matches no //spandex:transition state of %s", r.suffix, r.recv)
			}
			continue
		}
		for _, s := range r.states {
			if s != "*" && !vocab[s] {
				pass.Reportf(r.pos, "state %q in %s matches no //spandex:transition state of %s", s, r.where, r.recv)
			}
		}
	}
	return nil
}

// transition checks one //spandex:transition directive and records its
// from=/to= states into the receiver's vocabulary.
func transition(pass *analysis.Pass, pos token.Pos, recv string, fields []string, states map[string]map[string]bool, checkMsgs func(token.Pos, string, []string)) {
	if len(fields) == 0 || strings.ContainsRune(fields[0], '=') {
		pass.Reportf(pos, "//spandex:transition: first field must be the message name")
		return
	}
	checkMsgs(pos, "transition", fields[:1])
	var from []string
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			pass.Reportf(pos, "//spandex:transition: malformed field %q", kv)
			continue
		}
		switch key {
		case "from", "to":
			if key == "from" {
				from = splitList(val)
			}
			if states[recv] == nil {
				states[recv] = map[string]bool{}
			}
			for _, s := range splitList(val) {
				states[recv][s] = true
			}
		case "emits":
			checkMsgs(pos, "transition emits=", splitList(val))
		default:
			pass.Reportf(pos, "//spandex:transition: unknown field %q", kv)
		}
	}
	if len(from) == 0 {
		pass.Reportf(pos, "//spandex:transition: from= is required")
	}
}

// unreachable checks one //spandex:unreachable directive and returns the
// deferred at= state check.
func unreachable(pass *analysis.Pass, pos token.Pos, recv string, fields []string, checkMsgs func(token.Pos, string, []string)) []stateRef {
	if len(fields) == 0 || strings.ContainsRune(fields[0], '=') {
		pass.Reportf(pos, "//spandex:unreachable: first field must be the message list")
		return nil
	}
	checkMsgs(pos, "unreachable", splitList(fields[0]))
	if len(fields) < 2 || !strings.HasPrefix(fields[1], "at=") {
		pass.Reportf(pos, "//spandex:unreachable: at=<states> is required")
		return nil
	}
	if len(fields) < 3 {
		pass.Reportf(pos, "//spandex:unreachable: a justification is required after at=")
	}
	return []stateRef{{pos: pos, recv: recv, where: "unreachable at=", states: splitList(strings.TrimPrefix(fields[1], "at="))}}
}

// flow checks one //spandex:flow directive (queue/wait/emit grammar, see
// msgflow) and returns any deferred state checks.
func flow(pass *analysis.Pass, pos token.Pos, recv string, fields []string, checkMsgs func(token.Pos, string, []string)) []stateRef {
	if len(fields) < 2 {
		pass.Reportf(pos, "//spandex:flow: need a directive kind and operand")
		return nil
	}
	kind, rest := fields[0], fields[1:]
	switch kind {
	case "queue":
		checkMsgs(pos, "flow queue", splitList(rest[0]))
		var refs []stateRef
		for _, kv := range rest[1:] {
			val, ok := strings.CutPrefix(kv, "at=")
			if !ok {
				pass.Reportf(pos, "//spandex:flow queue: unknown field %q", kv)
				continue
			}
			refs = append(refs, stateRef{pos: pos, recv: recv, where: "flow queue at=", states: splitList(val)})
		}
		return refs
	case "wait":
		for _, kv := range rest[1:] {
			switch {
			case strings.HasPrefix(kv, "awaits="):
				checkMsgs(pos, "flow wait awaits=", splitList(strings.TrimPrefix(kv, "awaits=")))
			case strings.HasPrefix(kv, "via="):
				checkMsgs(pos, "flow wait via=", splitList(strings.TrimPrefix(kv, "via=")))
			case kv == "opener=any":
			default:
				pass.Reportf(pos, "//spandex:flow wait: unknown field %q", kv)
			}
		}
		if strings.HasPrefix(rest[0], "+") {
			return []stateRef{{pos: pos, recv: recv, suffix: rest[0]}}
		}
	case "emit":
		checkMsgs(pos, "flow emit", rest[:1])
		hasDst := false
		for _, kv := range rest[1:] {
			if strings.HasPrefix(kv, "dst=") {
				hasDst = true // unit names live in msgflow's topology, not an enum
			} else {
				pass.Reportf(pos, "//spandex:flow emit: unknown field %q", kv)
			}
		}
		if !hasDst {
			pass.Reportf(pos, "//spandex:flow emit: dst= is required")
		}
	default:
		pass.Reportf(pos, "//spandex:flow: unknown directive %q", kind)
	}
	return nil
}

// msgVocabulary finds the MsgType enum visible to the package — declared
// in the package itself or in one of its direct imports — and returns its
// enumerator names. Nil when no such enum is in scope (message checks are
// then skipped: there is nothing to resolve against).
func msgVocabulary(pass *analysis.Pass) map[string]bool {
	pkgs := append([]*types.Package{pass.Pkg}, pass.Pkg.Imports()...)
	for _, p := range pkgs {
		tn, ok := p.Scope().Lookup("MsgType").(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		consts := analysis.EnumOf(named)
		if consts == nil {
			continue
		}
		vocab := make(map[string]bool, len(consts))
		for _, c := range consts {
			vocab[c.Name] = true
		}
		return vocab
	}
	return nil
}

// anySuffix reports whether any state in vocab ends with the suffix.
func anySuffix(vocab map[string]bool, suffix string) bool {
	names := make([]string, 0, len(vocab))
	for s := range vocab {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		if strings.HasSuffix(s, suffix) {
			return true
		}
	}
	return false
}

// splitList splits a comma- or pipe-separated operand, dropping empties.
func splitList(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '|' })
}
