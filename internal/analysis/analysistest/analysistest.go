// Package analysistest runs an analyzer over golden testdata packages and
// checks its diagnostics against expectations written in the source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// on the line the diagnostic is expected at. Every expectation must be
// matched by a diagnostic on that line, and every diagnostic must match an
// expectation, or the test fails. Testdata lives under
// testdata/src/<pkg>/, may import only the standard library, and is
// type-checked for real — an expectation on code that does not compile is
// a test bug, not a pass.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spandex/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each testdata/src/<pkg> package, applies the analyzer, and
// reports mismatches between diagnostics and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		pkg, err := loadPackage(filepath.Join(testdata, "src", name), name)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", name, err)
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, name, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// loadPackage parses and type-checks every .go file in dir as one package
// with import path name.
func loadPackage(dir, name string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Path: name, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// expectation is one // want entry.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkExpectations cross-matches diagnostics against // want comments.
func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				key := lineKey{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

// splitPatterns parses the sequence of quoted or backquoted regexps after
// "want".
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
