// Package mutafter implements the spandex-lint analyzer that enforces the
// message-ownership discipline: once a *Message has been handed to a
// Send-shaped call or captured by an Engine.Schedule closure, the sender
// must not mutate it.
//
// noc.Network.Send copies the message today, which makes post-send
// mutation merely latent rather than immediately wrong — but every direct
// Port/engine path that skips the copy turns the same code into a data
// hazard between the logical send time and the delivery event. The rule is
// therefore enforced at the source: the send owns the message; build a new
// one (or copy) if you need to keep writing.
//
// The analysis is lexical and per-function: after a statement that passes
// a variable of type *Message (any struct type named Message, so testdata
// and future message types qualify) to a call whose method name begins
// with Send/send, or captures it in a func literal passed to
// Schedule/ScheduleAt, later statements in the same or enclosing block
// sequence may not assign through that variable. Rebinding the variable
// (m = ...) ends tracking; publication inside a conditional branch does
// not leak past the branch (no false positives from speculative sends).
package mutafter

import (
	"go/ast"
	"go/types"

	"spandex/internal/analysis"
)

// Analyzer is the mutafter analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mutafter",
	Doc:  "forbid mutating a *Message after it was passed to Send/Schedule",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					tr := &tracker{pass: pass}
					tr.list(n.Body.List, map[types.Object]string{})
				}
			case *ast.FuncLit:
				tr := &tracker{pass: pass}
				tr.list(n.Body.List, map[types.Object]string{})
			}
			return true
		})
	}
	return nil
}

type tracker struct {
	pass *analysis.Pass
}

// list walks one statement sequence, threading the set of published
// message variables (object -> name of the call that published it).
func (tr *tracker) list(stmts []ast.Stmt, pub map[types.Object]string) {
	for _, s := range stmts {
		tr.stmt(s, pub)
	}
}

func (tr *tracker) stmt(s ast.Stmt, pub map[types.Object]string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		tr.list(s.List, clone(pub))
	case *ast.IfStmt:
		inner := clone(pub)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		tr.list(s.Body.List, clone(inner))
		if s.Else != nil {
			tr.stmt(s.Else, clone(inner))
		}
	case *ast.ForStmt:
		inner := clone(pub)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		if s.Post != nil {
			tr.stmt(s.Post, inner)
		}
		tr.list(s.Body.List, clone(inner))
	case *ast.RangeStmt:
		inner := clone(pub)
		tr.list(s.Body.List, clone(inner))
	case *ast.SwitchStmt:
		inner := clone(pub)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CaseClause).Body, clone(inner))
		}
	case *ast.TypeSwitchStmt:
		inner := clone(pub)
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CaseClause).Body, clone(inner))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CommClause).Body, clone(pub))
		}
	case *ast.LabeledStmt:
		tr.stmt(s.Stmt, pub)
	default:
		// Simple statement: report mutations through published messages,
		// then record any new publications it performs.
		tr.checkSimple(s, pub)
		tr.publishes(s, pub)
	}
}

// checkSimple inspects a non-control statement for writes through
// published message variables. Direct rebinding of the variable itself
// ends tracking instead of reporting.
func (tr *tracker) checkSimple(s ast.Stmt, pub map[types.Object]string) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			tr.checkWrite(lhs, pub)
		}
		return
	case *ast.IncDecStmt:
		tr.checkWrite(s.X, pub)
		return
	}
	// Other simple statements cannot write through a message variable
	// except via calls taking &m.Field; not modeled.
}

// checkWrite handles one assignment target.
func (tr *tracker) checkWrite(lhs ast.Expr, pub map[types.Object]string) {
	if id, ok := lhs.(*ast.Ident); ok {
		// m = ... rebinds: the published message is no longer reachable
		// through this variable.
		if obj := tr.obj(id); obj != nil {
			delete(pub, obj)
		}
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	if obj := tr.obj(root); obj != nil {
		if via, ok := pub[obj]; ok {
			tr.pass.Reportf(lhs.Pos(), "message %s mutated after being passed to %s: the send owns the message; copy it (or build a new one) before writing", root.Name, via)
		}
	}
}

// publishes records message variables published by statement s: passed to
// a [Ss]end*-named call, or captured by a func literal handed to
// Schedule/ScheduleAt.
func (tr *tracker) publishes(s ast.Stmt, pub map[types.Object]string) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a send inside a closure happens at call time, not here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case len(name) >= 4 && (name[:4] == "Send" || name[:4] == "send"):
			for _, arg := range call.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok {
					if obj := tr.obj(id); obj != nil && isMessagePtr(obj.Type()) {
						pub[obj] = name
					}
				}
			}
		case name == "Schedule" || name == "ScheduleAt":
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := tr.obj(id); obj != nil && isMessagePtr(obj.Type()) {
							pub[obj] = name + " closure"
						}
					}
					return true
				})
			}
		}
		return true
	})
}

func clone(pub map[types.Object]string) map[types.Object]string {
	out := make(map[types.Object]string, len(pub))
	for k, v := range pub {
		out[k] = v
	}
	return out
}

func (tr *tracker) obj(id *ast.Ident) types.Object {
	if o := tr.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return tr.pass.TypesInfo.Defs[id]
}

// isMessagePtr reports whether t is a pointer to a struct type named
// Message.
func isMessagePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Message" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// rootIdent peels selectors, indexes, stars and parens down to the base
// identifier of an lvalue, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
