package mutafter_test

import (
	"testing"

	"spandex/internal/analysis/analysistest"
	"spandex/internal/analysis/mutafter"
)

func TestMutafter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mutafter.Analyzer, "msgs")
}
