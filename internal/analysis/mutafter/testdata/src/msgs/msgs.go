// Package msgs is golden testdata for the mutafter analyzer.
package msgs

// Message stands in for proto.Message: the analyzer matches any pointer to
// a struct type named Message.
type Message struct {
	Line int
	Acks int
}

type Engine struct{}

func (e *Engine) Schedule(d int64, fn func()) { fn() }

type port struct{ eng *Engine }

func (p *port) Send(m *Message)    {}
func (p *port) sendNet(m *Message) {}

func mutateAfterSend(p *port, m *Message) {
	p.Send(m)
	m.Acks++ // want `message m mutated after being passed to Send`
}

func assignAfterSend(p *port, m *Message) {
	p.sendNet(m)
	m.Line = 7 // want `message m mutated after being passed to sendNet`
}

func compoundAfterSend(p *port, m *Message) {
	p.Send(m)
	m.Acks += 2 // want `message m mutated after being passed to Send`
}

func mutateBeforeSend(p *port, m *Message) {
	m.Acks++
	p.Send(m)
}

func rebindThenMutate(p *port, m *Message) {
	p.Send(m)
	m = &Message{}
	m.Acks++
	p.Send(m)
}

func mutateInBranch(p *port, m *Message, cond bool) {
	p.Send(m)
	if cond {
		m.Line = 9 // want `message m mutated after being passed to Send`
	}
}

// speculativeSend: publication inside a branch does not leak past it.
func speculativeSend(p *port, m *Message, cond bool) {
	if cond {
		p.Send(m)
	}
	m.Line = 9
}

func scheduleCapture(e *Engine, m *Message) {
	e.Schedule(3, func() { m.Acks = 0 })
	m.Line = 1 // want `message m mutated after being passed to Schedule closure`
}

// copyThenMutate is the blessed pattern: copy, then write the copy.
func copyThenMutate(p *port, m *Message) {
	p.Send(m)
	cp := *m
	cp.Acks++
	p.Send(&cp)
}

// readAfterSend: reads are fine, only writes are flagged.
func readAfterSend(p *port, m *Message) int {
	p.Send(m)
	return m.Acks
}
