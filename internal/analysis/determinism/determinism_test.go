package determinism_test

import (
	"testing"

	"spandex/internal/analysis/analysistest"
	"spandex/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	determinism.Packages = append(determinism.Packages, "detpath")
	defer func() {
		determinism.Packages = determinism.Packages[:len(determinism.Packages)-1]
	}()
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "detpath")
}

// TestOffPath proves the analyzer is scoped: the same violations in a
// package outside determinism.Packages produce no diagnostics (offpath has
// no want comments, so any diagnostic fails the test).
func TestOffPath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "offpath")
}
