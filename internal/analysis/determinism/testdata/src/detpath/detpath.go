// Package detpath is golden testdata for the determinism analyzer. The
// test appends "detpath" to determinism.Packages so this package counts as
// sim-path code.
package detpath

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Engine mimics sim.Engine closely enough for the callback checks, which
// match on the receiver type name.
type Engine struct{ now int64 }

func (e *Engine) Schedule(delay int64, fn func()) { fn() }
func (e *Engine) ScheduleAt(at int64, fn func())  { fn() }
func (e *Engine) Now() int64                      { return e.now }

type Msg struct{ ID int }

type handler struct {
	eng *Engine
	ch  chan int
}

func (h *handler) HandleMessage(m *Msg) {
	go drain(h.ch) // want `go statement inside an engine event callback`
	h.ch <- m.ID   // want `channel send inside an engine event callback`
	<-h.ch         // want `channel receive inside an engine event callback`
}

func drain(ch chan int) {}

// hotFormat formats per message inside HandleMessage: flagged, except the
// panic argument (a dying run may format freely).
type hotFormat struct{ last string }

func (h *hotFormat) HandleMessage(m *Msg) {
	h.last = fmt.Sprintf("msg %d", m.ID) // want `fmt\.Sprintf inside an engine event callback`
	fmt.Println(h.last)                  // want `fmt\.Println inside an engine event callback`
	if m.ID < 0 {
		panic(fmt.Sprintf("negative id %d", m.ID))
	}
	panic(fmt.Errorf("unreachable %s", h.last))
}

func scheduleFormat(e *Engine) {
	e.Schedule(5, func() {
		_ = fmt.Sprint(e.Now()) // want `fmt\.Sprint inside an engine event callback`
	})
}

// coldFormat is outside any event callback: formatting is fine there
// (setup, teardown, reports).
func coldFormat(id int) string {
	return fmt.Sprintf("node %d", id)
}

func scheduleBad(e *Engine, ch chan int) {
	e.Schedule(5, func() {
		ch <- 1 // want `channel send inside an engine event callback`
	})
	e.ScheduleAt(9, func() {
		go drain(ch) // want `go statement inside an engine event callback`
	})
}

// outsideCallback is the workload-coroutine pattern: goroutines and
// channels are fine outside event callbacks.
func outsideCallback(ch chan int) int {
	go drain(ch)
	ch <- 1
	return <-ch
}

func wallClock() time.Duration {
	t := time.Now()      // want `time\.Now on the deterministic sim path`
	return time.Since(t) // want `time\.Since on the deterministic sim path`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until on the deterministic sim path`
}

func wallClockTimers() {
	<-time.After(time.Second)        // want `time\.After on the deterministic sim path`
	_ = time.Tick(time.Second)       // want `time\.Tick on the deterministic sim path`
	t := time.NewTimer(time.Second)  // want `time\.NewTimer on the deterministic sim path`
	k := time.NewTicker(time.Second) // want `time\.NewTicker on the deterministic sim path`
	t.Stop()
	k.Stop()
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn on the deterministic sim path`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle on the deterministic sim path`
}

// seededRand is the blessed pattern: a locally seeded generator.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// sumCounts accumulates integers, which commutes: no diagnostic.
func sumCounts(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// maskOf or-folds bits, which commutes: no diagnostic.
func maskOf(m map[int]uint64) uint64 {
	var mask uint64
	for _, v := range m {
		mask |= v
	}
	return mask
}

// rewriteValues performs keyed writes into another map: no diagnostic.
func rewriteValues(m map[int]int, dst map[int]int) {
	for k, v := range m {
		dst[k] = v * 2
	}
}

// prune deletes while ranging, which Go permits and which commutes.
func prune(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// setFlag writes a loop-independent value, which is idempotent.
func setFlag(m map[int]int) bool {
	any := false
	for _, v := range m {
		if v > 0 {
			any = true
		}
	}
	return any
}

func keysUnsorted(m map[int]int) []int {
	var out []int
	for k := range m { // want `nondeterministic map iteration`
		out = append(out, k)
	}
	return out
}

func concat(m map[int]int) string {
	s := ""
	for k := range m { // want `nondeterministic map iteration`
		s += string(rune(k))
	}
	return s
}

func firstMatch(m map[int]int) int {
	for k, v := range m { // want `nondeterministic map iteration`
		if v > 0 {
			return k
		}
	}
	return -1
}

// suppressed carries a justified directive, so it is not flagged.
func suppressed(m map[int]int) []int {
	var out []int
	//spandex:maprange order normalized by the sort below
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// bareDirective lacks a justification, so the directive does not suppress.
func bareDirective(m map[int]int) []int {
	var out []int
	//spandex:maprange
	for k := range m { // want `nondeterministic map iteration`
		out = append(out, k)
	}
	return out
}

// sliceRange is not a map range: never flagged.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// syncMapOrderSensitive: sync.Map iterates in unspecified order just like
// a plain map; appending in the callback is order-dependent.
func syncMapOrderSensitive(m *sync.Map) []any {
	var out []any
	m.Range(func(k, v any) bool { // want `nondeterministic sync.Map.Range`
		out = append(out, v)
		return true
	})
	return out
}

// syncMapEarlyStop: `return false` stops the iteration at an
// order-dependent element even though the body otherwise commutes.
func syncMapEarlyStop(m *sync.Map, counts map[int]int) {
	m.Range(func(k, v any) bool { // want `nondeterministic sync.Map.Range`
		n, _ := v.(int)
		counts[n]++
		return n == 0
	})
}

// syncMapCommutative: keyed writes plus `return true` commute, exactly
// like the accepted plain-map range bodies.
func syncMapCommutative(m *sync.Map, counts map[int]int) {
	m.Range(func(k, v any) bool {
		n, _ := k.(int)
		counts[n]++
		return true
	})
}

// syncMapSuppressed carries a justified directive.
func syncMapSuppressed(m *sync.Map) []any {
	var out []any
	//spandex:maprange order normalized by the caller's sort
	m.Range(func(k, v any) bool {
		out = append(out, v)
		return true
	})
	return out
}

// valueMapRange: Range on a non-sync Map type is not flagged.
type registry struct{}

func (registry) Range(fn func(int) bool) {}

func notSyncMap(r registry) {
	var xs []int
	r.Range(func(i int) bool {
		xs = append(xs, i)
		return true
	})
	_ = xs
}
