// Package offpath is golden testdata proving the determinism analyzer
// stays silent outside the sim-path package list: everything here would be
// flagged in a sim-path package.
package offpath

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

type Msg struct{ ID int }

type handler struct{ last string }

func (h *handler) HandleMessage(m *Msg) {
	h.last = fmt.Sprintf("msg %d", m.ID)
}

func globalRand() int { return rand.Intn(10) }

func keysUnsorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
