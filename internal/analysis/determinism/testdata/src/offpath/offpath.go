// Package offpath is golden testdata proving the determinism analyzer
// stays silent outside the sim-path package list: everything here would be
// flagged in a sim-path package.
package offpath

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func globalRand() int { return rand.Intn(10) }

func keysUnsorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
