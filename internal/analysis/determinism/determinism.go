// Package determinism implements the spandex-lint analyzer that keeps the
// deterministic simulation path deterministic.
//
// PR 1 made the evaluation hinge on bit-identical parallel replay
// (Result.Fingerprint, -verify-determinism). Nothing in the language stops
// a future change from quietly breaking that property: Go randomizes map
// iteration order per execution, wall-clock reads differ per run, the
// global math/rand source is shared and unseeded, and goroutines inside
// event callbacks race with the single-threaded engine. Each of those
// surfaces — late — as a diverging fingerprint. This analyzer rejects them
// at lint time, but only inside the packages that make up the sim path
// (Packages); test files and off-path utilities are exempt.
//
// Checks:
//
//  1. time.Now / time.Since / time.Until — simulated time must come from
//     sim.Engine.Now.
//  2. Global math/rand functions (rand.Intn, rand.Shuffle, ...) — use a
//     locally seeded *rand.Rand (workloads use workload.NewRand(seed)).
//  3. range over a map whose body feeds an order-sensitive sink. Bodies
//     performing only commutative, order-insensitive work (keyed map
//     writes, delete, integer/bitmask accumulation, loop-independent flag
//     sets) are accepted; everything else must iterate sorted keys
//     (detsort.Keys) or carry a //spandex:maprange <why> directive.
//  4. go statements and channel operations lexically inside engine event
//     callbacks — func literals passed to Engine.Schedule/ScheduleAt and
//     HandleMessage bodies — which would hand event effects to the Go
//     scheduler instead of the deterministic event queue.
//  5. fmt formatting calls (Sprintf and friends) inside those same
//     callbacks. Event callbacks are the per-message hot path; formatting
//     there allocates and stringifies on every message even when no trace
//     sink is installed. Instrumentation must emit structured obs.Events
//     and let the sink (off the sim path) do the formatting. Arguments to
//     panic are exempt: a dying run may format freely.
//  6. sync.Map.Range with an order-sensitive callback. sync.Map iterates
//     in unspecified order exactly like a plain map, but hides behind a
//     method call the map-range syntax check cannot see. The callback
//     body is classified with the same commutativity rules as a range
//     body; `return true` (keep iterating) is accepted, `return false`
//     (early stop) is order-dependent. //spandex:maprange suppresses.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"spandex/internal/analysis"
)

// Packages lists the import paths forming the deterministic sim path.
// internal/conform (the differential oracle: case generation, execution
// order, shrinking) and internal/obs (event decimation, sink ordering)
// are deterministic-replay surfaces too — a nondeterministic iteration
// there diverges shrink results or trace files rather than fingerprints,
// which is just as corrosive and harder to notice. Tests may append to
// this to bring testdata packages in scope.
var Packages = []string{
	"spandex/internal/sim",
	"spandex/internal/noc",
	"spandex/internal/core",
	"spandex/internal/mesi",
	"spandex/internal/denovo",
	"spandex/internal/gpucoh",
	"spandex/internal/hmesi",
	"spandex/internal/device",
	"spandex/internal/workload",
	"spandex/internal/dram",
	"spandex/internal/conform",
	"spandex/internal/obs",
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are fine:
// they are how deterministic local generators are made.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, order-sensitive map iteration and goroutines on the deterministic sim path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !onSimPath(pass.Pkg.Path()) {
		return nil
	}
	d := &checker{pass: pass, info: pass.TypesInfo}
	for _, f := range pass.Files {
		ast.Inspect(f, d.node)
	}
	return nil
}

func onSimPath(path string) bool {
	for _, p := range Packages {
		if path == p {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	info *types.Info
	// callbackDepth > 0 while walking an engine event callback.
	callbackDepth int
	// panicDepth > 0 while walking the arguments of a panic call.
	panicDepth int
	// rangeCallbackDepth > 0 while classifying a sync.Map.Range callback
	// body, where `return true` means "keep iterating" and commutes.
	rangeCallbackDepth int
}

func (d *checker) node(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		d.call(n)
		d.syncMapRange(n)
		// panic arguments are exempt from the hot-path formatting check:
		// walk them with the exemption armed, then skip the default walk.
		if isPanic(d.info, n) {
			d.panicDepth++
			for _, arg := range n.Args {
				ast.Inspect(arg, d.node)
			}
			d.panicDepth--
			return false
		}
		// Func literals passed to Engine.Schedule/ScheduleAt run on the
		// event queue: walk them as callbacks, then skip the default walk.
		if isEngineSchedule(d.info, n) {
			for _, arg := range n.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					d.walkCallback(lit.Body)
				} else {
					ast.Inspect(arg, d.node)
				}
			}
			ast.Inspect(n.Fun, d.node)
			return false
		}
	case *ast.FuncDecl:
		if n.Recv != nil && n.Name.Name == "HandleMessage" && n.Body != nil {
			d.walkCallback(n.Body)
			return false
		}
	case *ast.RangeStmt:
		d.rangeStmt(n)
	case *ast.GoStmt:
		d.callbackOnly(n.Pos(), "go statement")
	case *ast.SendStmt:
		d.callbackOnly(n.Pos(), "channel send")
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			d.callbackOnly(n.Pos(), "channel receive")
		}
	case *ast.SelectStmt:
		d.callbackOnly(n.Pos(), "select statement")
	}
	return true
}

// walkCallback walks an event-callback body with the callback checks armed.
func (d *checker) walkCallback(body *ast.BlockStmt) {
	d.callbackDepth++
	ast.Inspect(body, d.node)
	d.callbackDepth--
}

// callbackOnly reports concurrency constructs when inside a callback.
func (d *checker) callbackOnly(pos token.Pos, what string) {
	if d.callbackDepth > 0 {
		d.pass.Reportf(pos, "%s inside an engine event callback: event handlers run on the deterministic event queue; hand work to Engine.Schedule instead", what)
	}
}

// call flags wall-clock and global-rand calls anywhere in the package.
func (d *checker) call(n *ast.CallExpr) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := d.info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			d.pass.Reportf(n.Pos(), "time.%s on the deterministic sim path: simulated time must come from sim.Engine.Now", sel.Sel.Name)
		case "After", "Tick", "NewTimer", "NewTicker":
			d.pass.Reportf(n.Pos(), "time.%s on the deterministic sim path: wall-clock timers race the event queue; schedule with sim.Engine.Schedule", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			d.pass.Reportf(n.Pos(), "global rand.%s on the deterministic sim path: use a locally seeded *rand.Rand (e.g. workload.NewRand(seed))", sel.Sel.Name)
		}
	case "fmt":
		if fmtFormatFuncs[sel.Sel.Name] && d.callbackDepth > 0 && d.panicDepth == 0 {
			d.pass.Reportf(n.Pos(), "fmt.%s inside an engine event callback: per-message formatting runs on the sim hot path even with tracing disabled; emit a structured obs.Event and format in the sink (panic arguments are exempt)", sel.Sel.Name)
		}
	}
}

// fmtFormatFuncs are the fmt functions that build or write a formatted
// string. Scanners are irrelevant; they never appear on the sim path.
var fmtFormatFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// isPanic reports whether call is the builtin panic.
func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "panic"
	}
	// In testdata fakes panic may be unresolved; match by name with no
	// other object bound.
	return id.Name == "panic" && info.Uses[id] == nil && info.Defs[id] == nil
}

// syncMapRange flags sync.Map.Range calls with an order-sensitive
// callback — the method-shaped twin of the map-range check, which the
// range-statement syntax walk cannot see.
func (d *checker) syncMapRange(n *ast.CallExpr) {
	sel, ok := n.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Range" {
		return
	}
	tv, ok := d.info.Types[sel.X]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Map" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return
	}
	if d.pass.HasDirective(n, "maprange") {
		return
	}
	if len(n.Args) == 1 {
		if lit, ok := n.Args[0].(*ast.FuncLit); ok {
			loopVars := make(map[types.Object]bool)
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if obj := d.info.Defs[name]; obj != nil {
						loopVars[obj] = true
					}
				}
			}
			d.rangeCallbackDepth++
			insensitive := d.orderInsensitive(lit.Body.List, loopVars)
			d.rangeCallbackDepth--
			if insensitive {
				return
			}
		}
	}
	d.pass.Reportf(n.Pos(), "nondeterministic sync.Map.Range feeds an order-sensitive sink: collect and sort the keys (detsort.Keys over a plain map) or add //spandex:maprange <why>")
}

// rangeStmt flags map iterations whose bodies are order-sensitive.
func (d *checker) rangeStmt(n *ast.RangeStmt) {
	tv, ok := d.info.Types[n.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if d.pass.HasDirective(n, "maprange") {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := d.info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := d.info.Uses[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if d.orderInsensitive(n.Body.List, loopVars) {
		return
	}
	d.pass.Reportf(n.Pos(), "nondeterministic map iteration over %s feeds an order-sensitive sink: iterate detsort.Keys(m) or add //spandex:maprange <why>", types.TypeString(tv.Type, types.RelativeTo(d.pass.Pkg)))
}

// orderInsensitive reports whether executing stmts once per map element
// yields the same state regardless of element order. The classification is
// conservative: only provably commutative statement forms are accepted.
func (d *checker) orderInsensitive(stmts []ast.Stmt, loopVars map[types.Object]bool) bool {
	for _, s := range stmts {
		if !d.stmtOK(s, loopVars) {
			return false
		}
	}
	return true
}

func (d *checker) stmtOK(s ast.Stmt, loopVars map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return d.assignOK(s, loopVars)
	case *ast.IncDecStmt:
		return d.lvalueOK(s.X, true)
	case *ast.ExprStmt:
		// delete(m, k) is the only call with commutative effect.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && d.info.Uses[id] == nil {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := d.info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !d.stmtOK(s.Init, loopVars) {
			return false
		}
		if !d.pureExpr(s.Cond) {
			return false
		}
		if !d.orderInsensitive(s.Body.List, loopVars) {
			return false
		}
		if s.Else != nil {
			return d.stmtOK(s.Else, loopVars)
		}
		return true
	case *ast.BlockStmt:
		return d.orderInsensitive(s.List, loopVars)
	case *ast.RangeStmt:
		return d.pureExpr(s.X) && d.orderInsensitive(s.Body.List, loopVars)
	case *ast.ForStmt:
		if s.Init != nil && !d.stmtOK(s.Init, loopVars) {
			return false
		}
		if s.Cond != nil && !d.pureExpr(s.Cond) {
			return false
		}
		if s.Post != nil && !d.stmtOK(s.Post, loopVars) {
			return false
		}
		return d.orderInsensitive(s.Body.List, loopVars)
	case *ast.SwitchStmt:
		if s.Init != nil && !d.stmtOK(s.Init, loopVars) {
			return false
		}
		if s.Tag != nil && !d.pureExpr(s.Tag) {
			return false
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				if !d.pureExpr(e) {
					return false
				}
			}
			if !d.orderInsensitive(cc.Body, loopVars) {
				return false
			}
		}
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !d.pureExpr(v) {
					return false
				}
			}
		}
		return true
	case *ast.BranchStmt:
		// continue skips an element, which commutes; break terminates
		// early and is order-dependent.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.ReturnStmt:
		// In a sync.Map.Range callback, `return true` is that loop's
		// continue; `return false` stops early and is order-dependent.
		if d.rangeCallbackDepth > 0 && len(s.Results) == 1 {
			if id, ok := unparen(s.Results[0]).(*ast.Ident); ok && id.Name == "true" {
				return true
			}
		}
		return false
	case *ast.EmptyStmt:
		return true
	}
	// return, break, append-into-slice via assignment (handled above),
	// sends, calls with effects, defer, ... — all order-sensitive.
	return false
}

// assignOK classifies one assignment as commutative-per-element or not.
func (d *checker) assignOK(s *ast.AssignStmt, loopVars map[types.Object]bool) bool {
	for _, rhs := range s.Rhs {
		if !d.pureExpr(rhs) {
			return false
		}
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			switch lhs := lhs.(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					continue
				}
				if s.Tok == token.DEFINE {
					continue // fresh per-iteration temp
				}
				// Writing the same loop-independent value every iteration
				// (found = true) is idempotent; anything keyed off the
				// element is last-write-wins and order-dependent.
				if i < len(s.Rhs) && d.referencesAny(s.Rhs[i], loopVars) {
					return false
				}
			case *ast.IndexExpr:
				// Keyed writes commute across distinct keys; same-key
				// rewrites only collide with themselves if the key is the
				// loop key, which maps visit once.
				if !d.lvalueOK(lhs, false) {
					return false
				}
			default:
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		// Accumulation commutes for integers; floating-point addition does
		// not associate and strings/slices concatenate in order.
		return len(s.Lhs) == 1 && d.lvalueOK(s.Lhs[0], true)
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN:
		return len(s.Lhs) == 1 && d.lvalueOK(s.Lhs[0], true)
	}
	return false
}

// lvalueOK accepts idents, selectors and index expressions as assignment
// targets; when needInt is set the element type must be an integer (the
// commutativity argument fails for floats and strings).
func (d *checker) lvalueOK(e ast.Expr, needInt bool) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	case *ast.IndexExpr:
		if !d.pureExpr(x.Index) || !d.pureExpr(x.X) {
			return false
		}
	case *ast.StarExpr:
		if !d.pureExpr(x.X) {
			return false
		}
	default:
		return false
	}
	if !needInt {
		return true
	}
	tv, ok := d.info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// referencesAny reports whether expr mentions any of the given objects.
func (d *checker) referencesAny(expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := d.info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// pureExpr reports whether evaluating e has no side effects and calls no
// functions (type conversions and len/cap/min/max excepted).
func (d *checker) pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return d.pureExpr(e.X)
	case *ast.SelectorExpr:
		return d.pureExpr(e.X)
	case *ast.IndexExpr:
		return d.pureExpr(e.X) && d.pureExpr(e.Index)
	case *ast.SliceExpr:
		return d.pureExpr(e.X) && d.pureExpr(e.Low) && d.pureExpr(e.High) && d.pureExpr(e.Max)
	case *ast.StarExpr:
		return d.pureExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && d.pureExpr(e.X)
	case *ast.BinaryExpr:
		return d.pureExpr(e.X) && d.pureExpr(e.Y)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if !d.pureExpr(kv.Key) || !d.pureExpr(kv.Value) {
					return false
				}
				continue
			}
			if !d.pureExpr(elt) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return d.pureExpr(e.Key) && d.pureExpr(e.Value)
	case *ast.TypeAssertExpr:
		return d.pureExpr(e.X)
	case *ast.CallExpr:
		// Conversions and pure builtins only.
		if tv, ok := d.info.Types[e.Fun]; ok && tv.IsType() {
			for _, a := range e.Args {
				if !d.pureExpr(a) {
					return false
				}
			}
			return true
		}
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := d.info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max", "real", "imag", "complex":
					for _, a := range e.Args {
						if !d.pureExpr(a) {
							return false
						}
					}
					return true
				}
			}
		}
		return false
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isEngineSchedule reports whether call is Engine.Schedule or
// Engine.ScheduleAt (matched structurally by method and receiver type
// name, so testdata fakes qualify too).
func isEngineSchedule(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Schedule" && sel.Sel.Name != "ScheduleAt" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}
