// Package enums is golden testdata for the protostate analyzer.
package enums

// State is an iota enum in the style of the cache-state enums.
type State int

const (
	Invalid State = iota
	Shared
	Owned
	Valid
)

// MsgType mimics proto.MsgType, sentinel included: numMsgTypes must not be
// required for exhaustiveness.
type MsgType int

const (
	ReqV MsgType = iota
	ReqS
	ReqWT
	numMsgTypes
)

// Period is a scalar-constant type (minimum value nonzero), not an enum.
type Period int

const (
	CPU Period = 500
	GPU Period = 1429
)

func exhaustive(s State) string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Valid:
		return "V"
	}
	return "?"
}

func panickingDefault(s State) string {
	switch s {
	case Invalid:
		return "I"
	default:
		panic("unhandled state")
	}
}

func missing(s State) string {
	switch s { // want `switch over State misses Owned, Shared, Valid and has no default`
	case Invalid:
		return "I"
	}
	return "?"
}

func softDefault(s State) string {
	switch s { // want `switch over State misses .* and has a non-panicking default`
	case Invalid:
		return "I"
	default:
		return "?"
	}
}

func directived(s State) string {
	//spandex:partialswitch only stable states reach this printer
	switch s {
	case Invalid:
		return "I"
	}
	return "?"
}

// sentinelFree covers every real enumerator; the numMsgTypes sentinel is
// excluded from the required set.
func sentinelFree(t MsgType) int {
	switch t {
	case ReqV:
		return 0
	case ReqS:
		return 1
	case ReqWT:
		return 2
	}
	return -1
}

func msgMissing(t MsgType) int {
	switch t { // want `switch over MsgType misses ReqS, ReqWT and has no default`
	case ReqV:
		return 0
	}
	return -1
}

// plainInt is not an enum type: never flagged.
func plainInt(x int) int {
	switch x {
	case 0:
		return 1
	}
	return 0
}

// period is a scalar-constant type, not an enum: never flagged.
func period(p Period) int {
	switch p {
	case CPU:
		return 1
	}
	return 0
}

// dynamicCase has a non-constant case expression, so coverage cannot be
// decided statically: the analyzer stays silent.
func dynamicCase(s, other State) bool {
	switch s {
	case other:
		return true
	}
	return false
}
