package protostate_test

import (
	"testing"

	"spandex/internal/analysis/analysistest"
	"spandex/internal/analysis/protostate"
)

func TestProtostate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), protostate.Analyzer, "enums")
}
