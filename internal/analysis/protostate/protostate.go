// Package protostate implements the spandex-lint analyzer that keeps
// switches over protocol enums honest.
//
// The Spandex LLC and TU dispatch on proto.MsgType (35 request/response
// kinds from Table III/IV) and on cache-state enums. A switch that silently
// falls through on an unhandled enumerator is how protocol holes are born:
// a new message type is added, one dispatch site is missed, and the message
// is dropped instead of rejected. This analyzer requires every switch over
// an enum type to either cover all enumerators, carry a default clause that
// panics (making the hole loud), or carry an explicit
// //spandex:partialswitch <why> directive.
//
// Enum types are detected structurally (see analysis.EnumOf): defined
// integer types with >= 2 same-typed package constants starting at zero —
// the iota pattern used by proto.MsgType, proto.Class, proto.AtomicKind and
// the controller state/transaction enums.
package protostate

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"spandex/internal/analysis"
)

// Analyzer is the protostate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "protostate",
	Doc:  "require switches over protocol/state enums to be exhaustive or end in a panicking default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	// Only police enums defined in this module: stdlib enums (go/token.Token,
	// reflect.Kind, ...) have dozens of enumerators and are not protocol
	// state. "Same module" is approximated as sharing the first import-path
	// segment with the analyzed package, or being the analyzed package.
	if named.Obj().Pkg() == nil {
		return
	}
	if !sameModule(pass.Pkg.Path(), named.Obj().Pkg().Path()) {
		return
	}
	enum := analysis.EnumOf(named)
	if enum == nil {
		return
	}
	if pass.HasDirective(sw, "partialswitch") {
		return
	}

	covered := make(map[int64]bool)
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			etv, ok := pass.TypesInfo.Types[e]
			if !ok || etv.Value == nil {
				// A non-constant case expression means coverage cannot be
				// reasoned about statically; stay silent rather than guess.
				return
			}
			if v, ok := constant.Int64Val(constant.ToInt(etv.Value)); ok {
				covered[v] = true
			}
		}
	}

	var missing []string
	for _, ec := range enum {
		if !covered[ec.Value] {
			missing = append(missing, ec.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	if defaultClause != nil && panics(defaultClause.Body) {
		return
	}
	sort.Strings(missing)
	shown := missing
	const maxShown = 4
	suffix := ""
	if len(shown) > maxShown {
		shown = shown[:maxShown]
		suffix = ", ..."
	}
	enumName := types.TypeString(named, types.RelativeTo(pass.Pkg))
	what := "no default"
	if defaultClause != nil {
		what = "a non-panicking default"
	}
	pass.Reportf(sw.Pos(), "switch over %s misses %s%s and has %s: cover every case, panic in default, or add //spandex:partialswitch <why>",
		enumName, strings.Join(shown, ", "), suffix, what)
}

func sameModule(analyzed, defining string) bool {
	if analyzed == defining {
		return true
	}
	first := func(p string) string {
		if i := strings.IndexByte(p, '/'); i >= 0 {
			return p[:i]
		}
		return p
	}
	return first(analyzed) == first(defining)
}

// panics reports whether stmts always reach a panic-like call: a builtin
// panic, or a log.Fatal*/t.Fatal*-shaped method whose name starts with
// Fatal or Panic.
func panics(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" {
					found = true
				}
			case *ast.SelectorExpr:
				if strings.HasPrefix(fun.Sel.Name, "Fatal") || strings.HasPrefix(fun.Sel.Name, "Panic") {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
