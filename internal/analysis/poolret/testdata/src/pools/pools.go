// Package pools is golden testdata for the poolret analyzer.
package pools

// Pool stands in for sim.Pool: the analyzer matches Put on any named type
// called Pool.
type Pool[T any] struct{ free []*T }

func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

func (p *Pool[T]) Put(x *T) { p.free = append(p.free, x) }

type txn struct {
	kind    int
	waiting []int
}

type llc struct {
	pool Pool[txn]
	txns map[int]*txn
}

// freeTxn is the wrapper shape the analyzer treats as a release.
func (l *llc) freeTxn(t *txn) { l.pool.Put(t) }

// Free with a non-pointer argument (the MSHR's Free(line)) is not a
// release of any tracked object.
func (l *llc) Free(line int) {}

func (l *llc) drain(t *txn) {}

func sched(fn func()) {}

func writeAfterPut(l *llc, t *txn) {
	l.pool.Put(t)
	t.kind = 1 // want `pooled t used after release to Put`
}

func readAfterPut(l *llc, t *txn) int {
	l.pool.Put(t)
	return t.kind // want `pooled t used after release to Put`
}

func useAfterFreeHelper(l *llc, t *txn) {
	l.freeTxn(t)
	l.drain(t) // want `pooled t used after release to freeTxn`
}

func doubleRelease(l *llc, t *txn) {
	l.freeTxn(t)
	l.pool.Put(t) // want `pooled t used after release to freeTxn`
}

func conditionAfterRelease(l *llc, t *txn) {
	l.pool.Put(t)
	if t.kind == 0 { // want `pooled t used after release to Put`
		return
	}
}

func captureAfterRelease(l *llc, t *txn) {
	l.pool.Put(t)
	sched(func() { t.kind = 2 }) // want `pooled t used after release to Put`
}

func rangeAfterRelease(l *llc, t *txn) {
	l.freeTxn(t)
	for i := range t.waiting { // want `pooled t used after release to freeTxn`
		_ = i
	}
}

// releaseLast is the blessed pattern: drain, read, then release.
func releaseLast(l *llc, t *txn) int {
	for i := range t.waiting {
		_ = t.waiting[i]
	}
	k := t.kind
	l.freeTxn(t)
	return k
}

// copyThenRelease: what outlives the release is copied out first.
func copyThenRelease(l *llc, t *txn) txn {
	cp := *t
	l.pool.Put(t)
	return cp
}

// rebindEndsTracking: t now names a different pooled object.
func rebindEndsTracking(l *llc, t *txn) {
	l.pool.Put(t)
	t = l.pool.Get()
	t.kind = 3
}

// branchReleaseDoesNotLeak: the common "if done { free; return }" shape.
func branchReleaseDoesNotLeak(l *llc, t *txn, done bool) {
	if done {
		l.freeTxn(t)
		return
	}
	t.kind = 4
}

// nonPointerFree: Free(line) releases nothing the analyzer tracks.
func nonPointerFree(l *llc, t *txn) {
	l.Free(t.kind)
	t.kind = 5
}

// releaseOtherVariable: releasing one txn says nothing about another.
func releaseOtherVariable(l *llc, a, b *txn) {
	l.freeTxn(a)
	b.kind = 6
}

// retire hands its parameter back to the pool but is not free*-named —
// the lexical false negative the depth-1 summary closes. Callers must
// treat a call to it as a release.
func (l *llc) retire(t *txn) {
	l.drain(t)
	l.pool.Put(t)
}

func useAfterHelperRelease(l *llc, t *txn) {
	l.retire(t)
	t.kind = 7 // want `pooled t used after release to retire`
}

// retireVia wraps a free*-named helper; the summary still sees the
// release at depth 1 (free* is a direct release inside retireVia).
func (l *llc) retireVia(t *txn) { l.freeTxn(t) }

func useAfterWrappedRelease(l *llc, t *txn) int {
	l.retireVia(t)
	return t.kind // want `pooled t used after release to retireVia`
}

// maybeRetire releases only on one branch, so its fall-through path does
// not release — calls to it are not releases, same rule as an inline
// "if done { free }".
func (l *llc) maybeRetire(t *txn, done bool) {
	if done {
		l.pool.Put(t)
	}
}

func helperBranchReleaseDoesNotLeak(l *llc, t *txn) {
	l.maybeRetire(t, false)
	t.kind = 8
}

// retireFirst releases only its first parameter; the summary carries the
// parameter index, so the second argument stays live at call sites.
func (l *llc) retireFirst(a, b *txn) {
	l.drain(b)
	l.pool.Put(a)
}

func releaseTracksArgumentIndex(l *llc, a, b *txn) {
	l.retireFirst(a, b)
	b.kind = 9
	a.kind = 10 // want `pooled a used after release to retireFirst`
}
