package poolret_test

import (
	"testing"

	"spandex/internal/analysis/analysistest"
	"spandex/internal/analysis/poolret"
)

func TestPoolret(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolret.Analyzer, "pools")
}
