// Package poolret implements the spandex-lint analyzer that enforces the
// object-pool ownership discipline introduced with the engine hot-path
// overhaul: once a pooled object has been released — handed back via
// Pool.Put or one of the free* helpers that wrap it (LLC.freeTxn,
// Directory.freeTxn, GPUL2.freeTxn, ...) — the releasing function must
// not touch it again.
//
// sim.Pool recycles objects without zeroing, so a released object can be
// handed to the next Get caller and overwritten at any later point; a
// read through the stale pointer then observes another transaction's
// state, and a write corrupts it. Unlike a leaked heap object this never
// crashes — it silently perturbs simulation results, which is exactly the
// class of bug the deterministic-fingerprint infrastructure exists to
// catch after the fact. The rule is therefore enforced at the source:
// release is the last touch; drain queues and read fields first, or copy
// what outlives the release.
//
// The analysis is lexical and per-function, in the same style as the
// mutafter analyzer: after a statement that passes a variable to
//
//   - a Put method on a receiver of a named type Pool (sim.Pool[T], and
//     any future pool with the same shape), or
//   - a call whose name begins with free/Free taking a pointer-to-struct
//     argument (the project's freeTxn-style wrappers), or
//   - a same-package function whose depth-1 summary says it releases the
//     corresponding parameter (see below),
//
// later statements in the same or enclosing block sequence may not
// mention that variable at all — read, write, call argument, or closure
// capture. Rebinding the variable (t = pool.Get(), t = ...) ends
// tracking; a release inside a conditional branch does not leak past the
// branch, so the common "if done { free; return }" shape stays clean.
//
// A purely lexical pass misses one level of indirection: a helper that
// hands its parameter back to the pool but is not free*-named hides the
// release from its callers. A pre-pass therefore summarizes every
// function declared in the package — which pointer-to-struct parameters
// its body releases on the fall-through path (branch-only releases do not
// count, matching the intraprocedural branch rule) — and calls to a
// summarized function release the corresponding arguments at the call
// site. Summaries are depth-1: they are computed from direct Pool.Put and
// free*-named calls only, so a chain of two unnamed helpers still hides a
// release (none exist in the tree; deepening the summary is mechanical if
// one appears).
//
// Suppress a deliberate violation with a justified //spandex:poolret
// comment on or above the flagged line.
package poolret

import (
	"go/ast"
	"go/types"
	"strings"

	"spandex/internal/analysis"
)

// Analyzer is the poolret analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolret",
	Doc:  "forbid using a pooled object after releasing it via Pool.Put/free*",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	sums := summarize(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					tr := &tracker{pass: pass, sums: sums}
					tr.list(n.Body.List, map[types.Object]string{})
				}
			case *ast.FuncLit:
				tr := &tracker{pass: pass, sums: sums}
				tr.list(n.Body.List, map[types.Object]string{})
			}
			return true
		})
	}
	return nil
}

// summarize computes the depth-1 release summaries: for every function
// declared in the package, the indices of the pointer-to-struct
// parameters its body releases on the fall-through path. The walk reuses
// the tracker with reporting off and no summaries of its own (that is
// what bounds the depth at one), so the branch-visibility rule is
// identical to the intraprocedural analysis: a release inside an if/for
// body stays inside it and does not make the function a releaser.
func summarize(pass *analysis.Pass) map[types.Object][]int {
	sums := map[types.Object][]int{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj := pass.TypesInfo.Defs[fd.Name]
			if fobj == nil {
				continue
			}
			rel := map[types.Object]string{}
			tr := &tracker{pass: pass, silent: true}
			tr.list(fd.Body.List, rel)
			var idxs []int
			i := 0
			for _, field := range fd.Type.Params.List {
				if len(field.Names) == 0 {
					i++
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						if _, released := rel[obj]; released {
							idxs = append(idxs, i)
						}
					}
					i++
				}
			}
			if len(idxs) > 0 {
				sums[fobj] = idxs
			}
		}
	}
	return sums
}

type tracker struct {
	pass *analysis.Pass
	// sums maps a function object to the parameter indices it releases;
	// nil while computing the summaries themselves.
	sums map[types.Object][]int
	// silent suppresses reporting (the summary pre-pass walks every body
	// a first time; diagnostics belong to the main pass only).
	silent bool
}

// list walks one statement sequence, threading the set of released
// variables (object -> name of the call that released it).
func (tr *tracker) list(stmts []ast.Stmt, rel map[types.Object]string) {
	for _, s := range stmts {
		tr.stmt(s, rel)
	}
}

func (tr *tracker) stmt(s ast.Stmt, rel map[types.Object]string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		tr.list(s.List, clone(rel))
	case *ast.IfStmt:
		inner := clone(rel)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		tr.checkExpr(s.Cond, inner)
		tr.list(s.Body.List, clone(inner))
		if s.Else != nil {
			tr.stmt(s.Else, clone(inner))
		}
	case *ast.ForStmt:
		inner := clone(rel)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			tr.checkExpr(s.Cond, inner)
		}
		if s.Post != nil {
			tr.stmt(s.Post, inner)
		}
		tr.list(s.Body.List, clone(inner))
	case *ast.RangeStmt:
		inner := clone(rel)
		tr.checkExpr(s.X, inner)
		tr.list(s.Body.List, clone(inner))
	case *ast.SwitchStmt:
		inner := clone(rel)
		if s.Init != nil {
			tr.stmt(s.Init, inner)
		}
		if s.Tag != nil {
			tr.checkExpr(s.Tag, inner)
		}
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CaseClause).Body, clone(inner))
		}
	case *ast.TypeSwitchStmt:
		inner := clone(rel)
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CaseClause).Body, clone(inner))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			tr.list(c.(*ast.CommClause).Body, clone(rel))
		}
	case *ast.LabeledStmt:
		tr.stmt(s.Stmt, rel)
	default:
		// Simple statement: report any mention of a released variable,
		// then record the releases it performs.
		tr.checkSimple(s, rel)
		tr.releases(s, rel)
	}
}

// checkSimple reports uses of released variables anywhere in a
// non-control statement. A plain-identifier assignment target rebinds the
// variable and ends tracking instead of reporting.
func (tr *tracker) checkSimple(s ast.Stmt, rel map[types.Object]string) {
	rebound := map[*ast.Ident]bool{}
	if a, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range a.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				rebound[id] = true
			}
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || rebound[id] {
			return true
		}
		tr.checkIdent(id, rel)
		return true
	})
	for id := range rebound {
		if obj := tr.obj(id); obj != nil {
			delete(rel, obj)
		}
	}
}

// checkExpr reports uses of released variables in a control-flow
// expression (if/for condition, switch tag, range operand).
func (tr *tracker) checkExpr(e ast.Expr, rel map[types.Object]string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			tr.checkIdent(id, rel)
		}
		return true
	})
}

func (tr *tracker) checkIdent(id *ast.Ident, rel map[types.Object]string) {
	obj := tr.obj(id)
	if obj == nil {
		return
	}
	via, ok := rel[obj]
	if !ok || tr.silent || tr.pass.HasDirective(id, "poolret") {
		return
	}
	tr.pass.Reportf(id.Pos(),
		"pooled %s used after release to %s: the pool owns it after release; drain queues and copy fields first",
		id.Name, via)
}

// releases records variables released by statement s: passed to Put on a
// Pool-typed receiver, or to a free*-named call as a pointer-to-struct
// argument.
func (tr *tracker) releases(s ast.Stmt, rel map[types.Object]string) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a release inside a closure happens at call time, not here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		isPut := name == "Put" && tr.poolReceiver(call)
		isFree := strings.HasPrefix(name, "free") || strings.HasPrefix(name, "Free")
		if isPut || isFree {
			for _, arg := range call.Args {
				id, ok := unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := tr.obj(id); obj != nil && isPtrToStruct(obj.Type()) {
					rel[obj] = name
				}
			}
			return true
		}
		// Depth-1 interprocedural: a call to a summarized releaser frees
		// exactly the arguments at its released-parameter indices.
		if tr.sums == nil {
			return true
		}
		callee := tr.calleeObj(call)
		if callee == nil {
			return true
		}
		for _, ix := range tr.sums[callee] {
			if ix >= len(call.Args) {
				continue
			}
			id, ok := unparen(call.Args[ix]).(*ast.Ident)
			if !ok {
				continue
			}
			if obj := tr.obj(id); obj != nil && isPtrToStruct(obj.Type()) {
				rel[obj] = name
			}
		}
		return true
	})
}

// poolReceiver reports whether call is a method call on a value whose
// type (after dereferencing) is a named type called Pool — sim.Pool[T]
// in the real tree, any Pool-shaped type in testdata.
func (tr *tracker) poolReceiver(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := tr.pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// calleeObj resolves the function object a direct call targets (plain
// function or method); nil for indirect calls through values.
func (tr *tracker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return tr.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return tr.pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func clone(rel map[types.Object]string) map[types.Object]string {
	out := make(map[types.Object]string, len(rel))
	for k, v := range rel {
		out[k] = v
	}
	return out
}

func (tr *tracker) obj(id *ast.Ident) types.Object {
	if o := tr.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return tr.pass.TypesInfo.Defs[id]
}

// isPtrToStruct reports whether t is a pointer to a struct type — the
// shape of every pooled object (txns, probes, write-back records).
func isPtrToStruct(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, isStruct := ptr.Elem().Underlying().(*types.Struct)
	return isStruct
}

func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
