// Package indep derives the static independence facts internal/mcheck's
// partial-order reduction consumes (generated into
// internal/mcheck/indep_tables.go by cmd/spandex-indep) from the same
// artifacts the other static checkers are built on: the per-unit
// transition graphs (internal/analysis/transgraph) and the whole-system
// message-flow graph (internal/analysis/msgflow). Three facts come out:
//
//   - guardMsgTypes — the forwardable device-request types whose handling
//     at a peer device emits a response directly to the original
//     requestor. Derived from the flow graph: every device→device edge
//     addressed via the requestor role, mapped back through the
//     response/request pairing to the request types that solicit it.
//     While such a request of device u's is pending anywhere other than
//     at u, a fresh message can appear on a previously empty device→u
//     FIFO, so u's action group is not persistent.
//
//   - settledLocalMsgTypes — the LLC-handled types whose handling against
//     a settled (V/S/O/SO) line is line-local. Derived from the LLC's
//     annotated transition blocks: a type qualifies iff it has at least
//     one block whose from-states include a bare settled state, and no
//     such block emits MemRead or MemWrite — memory traffic is precisely
//     the static signature of the non-local paths (allocation fetches,
//     victim evictions, ownership write-backs), since every allocating
//     block (from=I) emits MemRead and every flushing block emits
//     MemWrite. Types handled only inside transactions (vacuously
//     mem-silent at settled states) are excluded.
//
//   - memSoleClient — whether the LLC is the only Spandex-group unit with
//     a flow edge to or from main memory, which makes DRAM's action group
//     unconditionally committable in the model checker.
//
// The facts are deliberately conservative inputs to a dynamic check: the
// model checker still verifies line residency, open transactions, parked
// allocations and emission-target disjointness against the live directory
// before treating two LLC deliveries as independent (mcheck's llcIndep).
package indep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/format"
	"sort"
	"strings"

	"spandex/internal/analysis/msgflow"
	"spandex/internal/proto"
)

// llcUnit is the flow-graph name of the Spandex LLC.
const llcUnit = "core-llc"

// settledStates are the LLC's stable no-transaction state labels; a
// suffixed label (O+rvk, V+inv, …) is an open transaction, not settled.
var settledStates = map[string]bool{"V": true, "S": true, "O": true, "SO": true}

// Facts is the derived fact set plus the evidence each fact rests on.
type Facts struct {
	// Guard lists guardMsgTypes in proto enum order.
	Guard []string `json:"guard_msg_types"`
	// GuardEvidence maps each guarded request type to the device→device
	// response edges that implicate it ("src --rsp--> dst").
	GuardEvidence map[string][]string `json:"guard_evidence"`

	// SettledLocal lists settledLocalMsgTypes in proto enum order.
	SettledLocal []string `json:"settled_local_msg_types"`
	// SettledEvidence maps each LLC-handled type to the verdict detail:
	// the settled-state annotation blocks examined and why the type
	// qualified or not.
	SettledEvidence map[string]string `json:"settled_evidence"`

	// MemSoleClient reports that the LLC is DRAM's only Spandex client.
	MemSoleClient bool `json:"mem_sole_client"`
	// MemClients lists the Spandex-group units with a flow edge to or
	// from mem (expected: just the LLC).
	MemClients []string `json:"mem_clients"`
}

// Build loads the protocol packages and derives the fact set.
func Build(dir string) (*Facts, error) {
	g, err := msgflow.Build(dir)
	if err != nil {
		return nil, err
	}
	return Derive(g)
}

// Derive computes the facts from an already-built flow graph.
func Derive(g *msgflow.Graph) (*Facts, error) {
	f := &Facts{
		GuardEvidence:   map[string][]string{},
		SettledEvidence: map[string]string{},
	}

	devices := map[string]bool{}
	for _, d := range msgflow.Devices() {
		devices[d] = true
	}

	// guardMsgTypes: device→device requestor-role edges, mapped back to
	// the request types the response answers.
	guard := map[string]bool{}
	for _, e := range g.Edges {
		if e.Via != msgflow.RoleRequestor || !devices[e.Src] || !devices[e.Dst] {
			continue
		}
		reqs := msgflow.PairedRequests(e.Msg)
		if len(reqs) == 0 {
			return nil, fmt.Errorf("indep: device→device edge %s --%s--> %s has no paired request", e.Src, e.Msg, e.Dst)
		}
		ev := fmt.Sprintf("%s --%s--> %s", e.Src, e.Msg, e.Dst)
		for _, r := range reqs {
			guard[r] = true
			f.GuardEvidence[r] = append(f.GuardEvidence[r], ev)
		}
	}
	if len(guard) == 0 {
		return nil, fmt.Errorf("indep: no device→device requestor edges found; the forward/response protocol went missing")
	}
	f.Guard = enumSorted(guard)
	for _, evs := range f.GuardEvidence {
		sort.Strings(evs)
	}

	// settledLocalMsgTypes from the LLC's annotated blocks.
	llc := g.Units[llcUnit]
	if llc == nil {
		return nil, fmt.Errorf("indep: flow graph has no %s unit", llcUnit)
	}
	ug := llc.Graph()
	if ug.Source != "annotations" {
		return nil, fmt.Errorf("indep: %s transitions are %q, not annotated; the settled-local derivation needs the precise blocks", llcUnit, ug.Source)
	}
	local := map[string]bool{}
	for _, msg := range ug.Messages {
		settledBlocks, memEmitting := 0, 0
		var detail []string
		for _, t := range ug.Transitions {
			if t.Msg != msg || !touchesSettled(t.From) {
				continue
			}
			settledBlocks++
			if emitsMem(t.Emits) {
				memEmitting++
				detail = append(detail, fmt.Sprintf("%s emits memory traffic", t.Pos))
			}
		}
		switch {
		case settledBlocks == 0:
			f.SettledEvidence[msg] = "excluded: never handled at a settled state (transaction-only type)"
		case memEmitting > 0:
			f.SettledEvidence[msg] = "excluded: " + strings.Join(detail, "; ")
		default:
			local[msg] = true
			f.SettledEvidence[msg] = fmt.Sprintf("qualified: %d settled-state block(s), none emit MemRead/MemWrite", settledBlocks)
		}
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("indep: no settled-local LLC types derived; the annotation blocks changed shape")
	}
	f.SettledLocal = enumSorted(local)

	// memSoleClient: every Spandex-group unit with a mem edge is the LLC.
	clients := map[string]bool{}
	for _, e := range g.Edges {
		var peer string
		switch {
		case e.Dst == msgflow.Mem:
			peer = e.Src
		case e.Src == msgflow.Mem:
			peer = e.Dst
		default:
			continue
		}
		if inGroup(peer, "spandex") {
			clients[peer] = true
		}
	}
	f.MemClients = sortedSet(clients)
	f.MemSoleClient = len(f.MemClients) == 1 && f.MemClients[0] == llcUnit
	return f, nil
}

func inGroup(unit, group string) bool {
	for _, g := range msgflow.Groups(unit) {
		if g == group {
			return true
		}
	}
	return false
}

// touchesSettled reports whether a from-state list contains a bare
// settled state.
func touchesSettled(from []string) bool {
	for _, s := range from {
		if settledStates[s] {
			return true
		}
	}
	return false
}

func emitsMem(emits []string) bool {
	for _, e := range emits {
		if e == "MemRead" || e == "MemWrite" {
			return true
		}
	}
	return false
}

// enumSorted orders message-type identifiers by their proto enum ordinal
// (the order the generated Go tables list them in).
func enumSorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for m := range set {
		if _, ok := proto.MsgTypeFromIdent(m); !ok {
			panic("indep: unknown message identifier " + m)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := proto.MsgTypeFromIdent(out[i])
		b, _ := proto.MsgTypeFromIdent(out[j])
		return a < b
	})
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JSON renders the facts as the canonical docs/indep/indep.json artifact.
func JSON(f *Facts) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DOT renders the derivation as a graph: the device→device response edges
// behind guardMsgTypes, and the LLC's settled-local type verdicts.
func DOT(f *Facts) []byte {
	var b bytes.Buffer
	b.WriteString("// Generated by spandex-indep. DO NOT EDIT.\n")
	b.WriteString("digraph indep {\n  rankdir=LR;\n  node [fontname=\"Helvetica\" fontsize=10];\n")
	b.WriteString("  subgraph cluster_guard {\n    label=\"guardMsgTypes: device→device direct responses\";\n")
	seen := map[string]bool{}
	for _, req := range f.Guard {
		fmt.Fprintf(&b, "    %q [shape=box style=filled fillcolor=lightyellow];\n", req)
		for _, ev := range f.GuardEvidence[req] {
			parts := strings.Split(ev, " ")
			// "src --rsp--> dst"
			src, rsp, dst := parts[0], strings.Trim(parts[1], "->"), parts[2]
			key := req + ev
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "    %q -> %q [label=\"%s→%s\"];\n", req, dst, src, rsp)
		}
	}
	b.WriteString("  }\n")
	b.WriteString("  subgraph cluster_settled {\n    label=\"settledLocalMsgTypes: LLC handling local at V/S/O/SO\";\n")
	for _, m := range f.SettledLocal {
		fmt.Fprintf(&b, "    %q [shape=ellipse style=filled fillcolor=lightblue];\n", "llc:"+m)
	}
	b.WriteString("  }\n")
	fmt.Fprintf(&b, "  %q [shape=diamond];\n", fmt.Sprintf("memSoleClient=%v", f.MemSoleClient))
	b.WriteString("}\n")
	return b.Bytes()
}

// GoSource renders the facts as the generated internal/mcheck table file,
// gofmt-formatted. The derivation comments are part of the contract: they
// explain to a reader of the consuming package why each set is what it is.
func GoSource(f *Facts) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`// Code generated by spandex-indep. DO NOT EDIT.
//
// Static independence facts derived from the checked-in transition graphs
// (internal/analysis/transgraph) and the cross-unit message-flow graph
// (internal/analysis/msgflow). Regenerate with ` + "`make indep`; `make" + `
// indep-check` + "`" + ` fails if this file, docs/indep/indep.json, or
// docs/indep/indep.dot drifts from the controllers.

package mcheck

import "spandex/internal/proto"

// guardMsgTypes lists the forwardable device-request types whose handling
// at a peer device emits a response directly to the original requestor
// (paper Fig. 1c/1d): every message-flow edge from a device-kind unit to a
// requestor-role device destination, mapped back to the request types that
// solicit it. While such a request with Requestor=u is pending anywhere
// other than at u itself, a new message to u can appear on a previously
// empty device→u FIFO, so u's action group must not be committed as an
// ample set.
var guardMsgTypes = map[proto.MsgType]bool{
`)
	for _, m := range f.Guard {
		fmt.Fprintf(&b, "\tproto.%s: true,\n", m)
	}
	b.WriteString(`}

// settledLocalMsgTypes lists the LLC-handled message types whose every
// static transition out of a settled state (V, S, O, SO) emits no memory
// traffic and lands in a settled state or a same-line transaction state.
// Handling one against a dynamically settled line is line-local; types
// with any settled-state transition that may allocate, evict, or touch
// DRAM are excluded.
var settledLocalMsgTypes = map[proto.MsgType]bool{
`)
	for _, m := range f.SettledLocal {
		fmt.Fprintf(&b, "\tproto.%s: true,\n", m)
	}
	fmt.Fprintf(&b, `}

// memSoleClient records that the LLC is the only unit whose transition
// graph emits MemRead or MemWrite: every message to DRAM originates at the
// LLC, so the LLC→DRAM FIFO is DRAM's entire input and DRAM's action group
// is always a committable ample set.
const memSoleClient = %v
`, f.MemSoleClient)
	return format.Source(b.Bytes())
}
