package indep

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// TestDeriveRepo derives the facts from the real protocol packages and
// pins them: the guard and settled-local sets are soundness assumptions
// of mcheck's partial-order reduction, so a protocol change that moves
// them must be a conscious event, not silent drift. It also verifies the
// generated table file consumed by internal/mcheck matches the derivation
// byte-for-byte — the same freshness `spandex-indep -check` gates in CI,
// but enforced by `go test` too.
func TestDeriveRepo(t *testing.T) {
	f, err := Build("../../..")
	if err != nil {
		t.Fatal(err)
	}
	wantGuard := []string{"ReqV", "ReqS", "ReqWT", "ReqO", "ReqOData"}
	if !reflect.DeepEqual(f.Guard, wantGuard) {
		t.Errorf("guardMsgTypes = %v, want %v", f.Guard, wantGuard)
	}
	wantLocal := []string{"ReqV", "ReqS", "ReqWT", "ReqO", "ReqWTData", "ReqOData", "RspRvkO"}
	if !reflect.DeepEqual(f.SettledLocal, wantLocal) {
		t.Errorf("settledLocalMsgTypes = %v, want %v", f.SettledLocal, wantLocal)
	}
	if !f.MemSoleClient {
		t.Errorf("memSoleClient = false (clients %v); DRAM ample commits would be unsound to keep enabled", f.MemClients)
	}

	// ReqWB must stay excluded: its owner write-back block emits MemWrite
	// from settled states, the exact non-locality the set exists to avoid.
	for _, m := range f.SettledLocal {
		if m == "ReqWB" {
			t.Errorf("ReqWB classified settled-local; its settled-state blocks emit memory traffic")
		}
	}

	src, err := GoSource(f)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile("../../../internal/mcheck/indep_tables.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, disk) {
		t.Errorf("internal/mcheck/indep_tables.go is stale; re-run spandex-indep (make indep)")
	}
}
