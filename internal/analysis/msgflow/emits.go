package msgflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spandex/internal/analysis"
)

// emitSite is one classified proto.Message construction: the unit that
// owns the enclosing method may send any of msgs to the destination role.
// reqSelf records whether the message names the emitting unit as its
// Requestor (the literal's Requestor field is absent or anything other
// than a preserved m.Requestor) — the marker of an originated request, as
// opposed to a forward.
type emitSite struct {
	msgs    []string
	role    string
	reqSelf bool
	pos     string
}

// maxResolveDepth bounds how far resolveMsgExpr chases variables and
// parameters across call sites.
const maxResolveDepth = 4

// collectEmitSites walks every method of every unit type in pkg, finds
// proto.Message composite literals, resolves their Type field to message
// names and their Dst field (or sending wrapper) to a destination role.
// names maps receiver type name → canonical unit name; literals in other
// receivers (helpers of non-unit types) are ignored.
func collectEmitSites(pkg *analysis.Package, names map[string]string, out map[string][]emitSite) error {
	c := &emitCollector{pkg: pkg}
	c.indexFuncs()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			unit, ok := names[recvName(fd)]
			if !ok {
				continue
			}
			var err error
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if err != nil {
					return false
				}
				lit, ok := n.(*ast.CompositeLit)
				if !ok || !c.isProtoMessage(lit) {
					return true
				}
				site, serr := c.classify(fd, lit)
				if serr != nil {
					err = serr
					return false
				}
				out[unit] = append(out[unit], *site)
				return true
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

type emitCollector struct {
	pkg   *analysis.Package
	funcs map[string]*ast.FuncDecl // "Recv.Name" or "Name" → decl
}

func (c *emitCollector) indexFuncs() {
	c.funcs = map[string]*ast.FuncDecl{}
	for _, f := range c.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.funcs[funcKey(fd)] = fd
			}
		}
	}
}

func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return recvName(fd) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func recvName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func (c *emitCollector) isProtoMessage(lit *ast.CompositeLit) bool {
	tv, ok := c.pkg.Info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Message" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/proto")
}

// classify resolves one literal to an emitSite.
func (c *emitCollector) classify(fd *ast.FuncDecl, lit *ast.CompositeLit) (*emitSite, error) {
	var typeExpr, dstExpr, reqExpr ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return nil, fmt.Errorf("msgflow: %s: proto.Message literal with positional fields", c.pos(lit.Pos()))
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Type":
			typeExpr = kv.Value
		case "Dst":
			dstExpr = kv.Value
		case "Requestor":
			reqExpr = kv.Value
		}
	}
	if typeExpr == nil {
		return nil, fmt.Errorf("msgflow: %s: proto.Message literal without Type", c.pos(lit.Pos()))
	}
	msgs := map[string]bool{}
	c.resolveMsgExpr(typeExpr, fd, maxResolveDepth, msgs)
	if len(msgs) == 0 {
		return nil, fmt.Errorf("msgflow: %s: cannot resolve message Type statically", c.pos(lit.Pos()))
	}
	role, err := c.dstRole(fd, lit, dstExpr)
	if err != nil {
		return nil, err
	}
	site := &emitSite{msgs: sortedSet(msgs), role: role, reqSelf: true, pos: c.pos(lit.Pos())}
	// Requestor: m.Requestor (preserved from the handled message) marks a
	// forward; everything else — including omission — originates.
	if sel, ok := reqExpr.(*ast.SelectorExpr); ok && sel.Sel.Name == "Requestor" {
		site.reqSelf = false
	}
	return site, nil
}

// resolveMsgExpr accumulates the proto.MsgType constant names e can take:
// a constant directly, a variable via the constants assigned to it in the
// enclosing function, or a parameter via the arguments passed at every
// same-package call site.
func (c *emitCollector) resolveMsgExpr(e ast.Expr, fd *ast.FuncDecl, depth int, out map[string]bool) {
	if name, ok := c.msgConst(e); ok {
		out[name] = true
		return
	}
	if depth == 0 {
		return
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pkg.Info.Uses[id]
	if obj == nil {
		obj = c.pkg.Info.Defs[id]
	}
	if obj == nil {
		return
	}
	// Constants assigned to the variable anywhere in the function.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(asg.Rhs) {
				continue
			}
			lobj := c.pkg.Info.Uses[lid]
			if lobj == nil {
				lobj = c.pkg.Info.Defs[lid]
			}
			if lobj == obj {
				c.resolveMsgExpr(asg.Rhs[i], fd, depth-1, out)
			}
		}
		return true
	})
	// A parameter: chase every same-package call site's argument.
	if idx := paramIndex(fd, obj); idx >= 0 {
		key := funcKey(fd)
		for _, f := range c.pkg.Files {
			for _, d := range f.Decls {
				caller, ok := d.(*ast.FuncDecl)
				if !ok || caller.Body == nil {
					continue
				}
				ast.Inspect(caller.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || idx >= len(call.Args) {
						return true
					}
					if callee := c.calleeKey(call); callee == key {
						c.resolveMsgExpr(call.Args[idx], caller, depth-1, out)
					}
					return true
				})
			}
		}
	}
}

func paramIndex(fd *ast.FuncDecl, obj types.Object) int {
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == obj.Name() && name.Pos() == obj.Pos() {
				return idx
			}
			idx++
		}
	}
	return -1
}

// calleeKey resolves a call expression to the funcKey of a same-package
// function or method, or "".
func (c *emitCollector) calleeKey(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := c.pkg.Info.Uses[fun]; obj != nil {
			if _, ok := c.funcs[obj.Name()]; ok {
				return obj.Name()
			}
		}
	case *ast.SelectorExpr:
		// method call x.f(...): receiver type name from x's type
		tv, ok := c.pkg.Info.Types[fun.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fun.Sel.Name
		}
	}
	return ""
}

func (c *emitCollector) msgConst(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := c.pkg.Info.Uses[sel.Sel]
	cst, ok := obj.(*types.Const)
	if !ok {
		return "", false
	}
	named, ok := cst.Type().(*types.Named)
	if !ok || named.Obj().Name() != "MsgType" {
		return "", false
	}
	return cst.Name(), true
}

// dstRole classifies the destination of one literal. With no Dst field
// the enclosing sending wrapper decides: sendLLC*/sendNet-to-llc helpers
// imply the parent, l1V injects into the bound MESI L1.
func (c *emitCollector) dstRole(fd *ast.FuncDecl, lit *ast.CompositeLit, dst ast.Expr) (string, error) {
	if dst == nil {
		if wrap := c.enclosingCallName(fd, lit); wrap != "" {
			switch {
			case strings.HasPrefix(wrap, "sendLLC"):
				return RoleParent, nil
			case wrap == "l1V" || wrap == "toL1":
				return RoleL1, nil
			}
		}
		return "", fmt.Errorf("msgflow: %s: proto.Message literal without Dst outside a recognized sending wrapper", c.pos(lit.Pos()))
	}
	switch d := dst.(type) {
	case *ast.SelectorExpr:
		switch d.Sel.Name {
		case "Requestor":
			return RoleRequestor, nil
		case "Src":
			return RoleSender, nil
		case "ParentID", "llcID", "parentID":
			return RoleParent, nil
		case "MemID":
			return RoleMem, nil
		}
	case *ast.IndexExpr:
		if sel, ok := d.X.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "devices", "children", "l1s", "sharers":
				return RoleChild, nil
			}
		}
	case *ast.CallExpr:
		// Bank-homing helpers: the line's home bank is still the unit's
		// parent, just one of several interleaved instances of it.
		if sel, ok := d.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "parent", "HomeOf", "llcFor":
				return RoleParent, nil
			}
		}
	}
	return "", fmt.Errorf("msgflow: %s: unclassifiable Dst expression", c.pos(lit.Pos()))
}

// enclosingCallName returns the callee name of the innermost call the
// literal is a direct argument of, or "".
func (c *emitCollector) enclosingCallName(fd *ast.FuncDecl, lit *ast.CompositeLit) string {
	var name string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if arg == ast.Expr(lit) {
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				return false
			}
		}
		return true
	})
	return name
}

func (c *emitCollector) pos(p token.Pos) string {
	position := c.pkg.Fset.Position(p)
	name := position.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, position.Line)
}
