package msgflow

import (
	"strings"
	"testing"

	"spandex/internal/analysis/transgraph"
)

// synth builds a minimal extracted-style unit graph under a real unit
// name (the topology table is keyed by the production vocabulary; tests
// reuse it with synthetic contents).
func synth(pkg, unit string, transitions ...transgraph.Transition) *transgraph.UnitGraph {
	msgs := map[string]bool{}
	for _, t := range transitions {
		msgs[t.Msg] = true
	}
	return &transgraph.UnitGraph{
		Package:     pkg,
		Unit:        unit,
		Source:      "extracted",
		Messages:    sortedSet(msgs),
		Transitions: transitions,
	}
}

func tr(msg string, emits ...string) transgraph.Transition {
	return transgraph.Transition{Msg: msg, From: []string{"*"}, Emits: emits, Origin: "extracted"}
}

// emitTo wires unit→dst edges explicitly through //spandex:flow emit
// overrides, so synthetic systems don't depend on AST role resolution.
func emitTo(msgdst ...string) *flowAnn {
	fa := &flowAnn{}
	for i := 0; i+1 < len(msgdst); i += 2 {
		fa.emits = append(fa.emits, EmitOverride{Msg: msgdst[i], Dst: []string{msgdst[i+1]}})
	}
	return fa
}

func queue(fa *flowAnn, msgs ...string) *flowAnn {
	if fa == nil {
		fa = &flowAnn{}
	}
	fa.queues = append(fa.queues, QueueSpec{Msgs: msgs})
	return fa
}

func violations(r *Result, check string) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Check == check {
			out = append(out, v)
		}
	}
	return out
}

// TestSyntheticCleanDAG: request down, response back, everything handled,
// nothing deferrable — all three checks pass.
func TestSyntheticCleanDAG(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "RspV")),
		synth("spandex/internal/denovo", "L1", tr("RspV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  emitTo("RspV", "denovo-l1"),
		"denovo-l1": emitTo("ReqV", "core-llc"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	if len(r.Violations) != 0 {
		t.Fatalf("clean DAG produced violations: %+v", r.Violations)
	}
	if r.BlockableEdges != 0 {
		t.Fatalf("clean DAG has %d blockable edges, want 0", r.BlockableEdges)
	}
}

// TestSyntheticBrokenCycle: A and B emit requests at each other in a
// loop, but only A may defer — the cycle contains a guaranteed-sinkable
// hop and must not be flagged.
func TestSyntheticBrokenCycle(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "ReqO")),
		synth("spandex/internal/denovo", "L1", tr("ReqO", "ReqV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  queue(emitTo("ReqO", "denovo-l1"), "ReqV"),
		"denovo-l1": emitTo("ReqV", "core-llc"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	if dl := violations(r, "deadlock"); len(dl) != 0 {
		t.Fatalf("broken cycle flagged as deadlock: %+v", dl)
	}
	if r.BlockableEdges != 1 {
		t.Fatalf("got %d blockable edges, want 1", r.BlockableEdges)
	}
}

// TestSyntheticUnbrokenTwoCycle: the same loop with both hops deferrable
// must be flagged.
func TestSyntheticUnbrokenTwoCycle(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "ReqO")),
		synth("spandex/internal/denovo", "L1", tr("ReqO", "ReqV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  queue(emitTo("ReqO", "denovo-l1"), "ReqV"),
		"denovo-l1": queue(emitTo("ReqV", "core-llc"), "ReqO"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	dl := violations(r, "deadlock")
	if len(dl) != 1 {
		t.Fatalf("unbroken 2-cycle: got %d deadlock violations, want 1: %+v", len(dl), r.Violations)
	}
	if !strings.Contains(dl[0].Text, "ReqV") || !strings.Contains(dl[0].Text, "ReqO") {
		t.Fatalf("cycle report does not name both hops: %s", dl[0].Text)
	}
}

// TestSyntheticUnbrokenThreeCycle: a three-unit loop, every hop
// deferrable, exactly one cycle reported.
func TestSyntheticUnbrokenThreeCycle(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "ReqO")),
		synth("spandex/internal/denovo", "L1", tr("ReqO", "ReqWT")),
		synth("spandex/internal/gpucoh", "L1", tr("ReqWT", "ReqV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  queue(emitTo("ReqO", "denovo-l1"), "ReqV"),
		"denovo-l1": queue(emitTo("ReqWT", "gpucoh-l1"), "ReqO"),
		"gpucoh-l1": queue(emitTo("ReqV", "core-llc"), "ReqWT"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	if dl := violations(r, "deadlock"); len(dl) != 1 {
		t.Fatalf("unbroken 3-cycle: got %d deadlock violations, want 1: %+v", len(dl), r.Violations)
	}
}

// TestSyntheticOrphanedEmit: an emitted message with no handler at its
// destination is a completeness violation.
func TestSyntheticOrphanedEmit(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "RspV", "Inv")),
		synth("spandex/internal/denovo", "L1", tr("RspV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  emitTo("RspV", "denovo-l1", "Inv", "denovo-l1"),
		"denovo-l1": emitTo("ReqV", "core-llc"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	comp := violations(r, "completeness")
	if len(comp) != 1 || comp[0].Msg != "Inv" {
		t.Fatalf("orphaned Inv not flagged: %+v", r.Violations)
	}
	if !strings.Contains(comp[0].Text, "orphaned message") {
		t.Fatalf("unexpected violation text: %s", comp[0].Text)
	}
}

// TestSyntheticStatefulCompleteness: an annotated destination is checked
// per state — queue rules and unreachability proofs both discharge pairs,
// anything left is flagged.
func TestSyntheticStatefulCompleteness(t *testing.T) {
	llc := &transgraph.UnitGraph{
		Package:  "spandex/internal/core",
		Unit:     "LLC",
		Source:   "annotations",
		States:   []string{"I", "V", "V+inv"},
		Messages: []string{"ReqV"},
		Transitions: []transgraph.Transition{
			{Msg: "ReqV", From: []string{"I"}, To: []string{"V"}, Emits: []string{"RspV"}, Origin: "annotation"},
		},
		Unreachable: []transgraph.Unreachable{
			{Msgs: []string{"ReqV"}, At: []string{"V+inv"}, Why: "synthetic proof"},
		},
	}
	graphs := []*transgraph.UnitGraph{
		llc,
		synth("spandex/internal/denovo", "L1", tr("RspV")),
	}
	flows := map[string]*flowAnn{
		"core-llc":  emitTo("RspV", "denovo-l1"),
		"denovo-l1": emitTo("ReqV", "core-llc"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	comp := violations(r, "completeness")
	// State V is neither handled, queued, nor proven unreachable.
	if len(comp) != 1 || !strings.Contains(comp[0].Text, "state V of core-llc") {
		t.Fatalf("uncovered state V not flagged exactly once: %+v", comp)
	}
	if r.ProvenExceptions != 1 {
		t.Fatalf("got %d proven exceptions, want 1", r.ProvenExceptions)
	}

	// A queue rule for state V discharges the remaining pair.
	flows["core-llc"].queues = []QueueSpec{{Msgs: []string{"ReqV"}, At: []string{"V"}}}
	g, err = BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	if r := Verify(g); len(violations(r, "completeness")) != 0 {
		t.Fatalf("queue rule did not discharge the pair: %+v", r.Violations)
	}
}

// TestSyntheticStallNoSupply: a wait whose via messages never produce an
// awaited response is flagged.
func TestSyntheticStallNoSupply(t *testing.T) {
	graphs := []*transgraph.UnitGraph{
		synth("spandex/internal/core", "LLC", tr("ReqV", "ReqO"), tr("RspO")),
		synth("spandex/internal/denovo", "L1", tr("ReqO")), // handles ReqO, emits nothing
	}
	flows := map[string]*flowAnn{
		"core-llc": {
			emits: []EmitOverride{{Msg: "ReqO", Dst: []string{"denovo-l1"}}},
			waits: []WaitSpec{{Name: "rvk", Awaits: []string{"RspO"}, Via: []string{"ReqO"}, Opener: "any"}},
		},
		"denovo-l1": emitTo("ReqV", "core-llc"),
	}
	g, err := BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	stalls := violations(r, "stall")
	supply := false
	for _, v := range stalls {
		if strings.Contains(v.Text, "no dependency path") {
			supply = true
		}
	}
	if !supply {
		t.Fatalf("broken supply chain not flagged: %+v", r.Violations)
	}

	// Closing the chain (denovo answers ReqO with RspO) clears it.
	graphs[1] = synth("spandex/internal/denovo", "L1", tr("ReqO", "RspO"))
	flows["denovo-l1"] = emitTo("ReqV", "core-llc", "RspO", "core-llc")
	g, err = BuildFromGraphs(graphs, nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	if r := Verify(g); len(violations(r, "stall")) != 0 {
		t.Fatalf("supplied wait still flagged: %+v", r.Violations)
	}
}

// TestRealTreeVerifies: the production protocol stack builds into a flow
// graph with no violations — no orphaned messages, no unbroken cycles,
// no unsupplied waits — and with the expected analysis surface.
func TestRealTreeVerifies(t *testing.T) {
	g, err := Build("../../..")
	if err != nil {
		t.Fatal(err)
	}
	r := Verify(g)
	for _, v := range r.Violations {
		t.Errorf("%s: %s", v.Check, v.Text)
	}
	if len(g.Units) != 8 {
		t.Errorf("got %d units, want 8 (7 controllers + mem)", len(g.Units))
	}
	if len(g.Edges) < 100 {
		t.Errorf("got %d edges, want >= 100", len(g.Edges))
	}
	if r.BlockableEdges == 0 {
		t.Error("no blockable edges — queue annotations did not load")
	}
	if r.ProvenExceptions == 0 {
		t.Error("no proven exceptions — unreachability declarations did not load")
	}
}

// TestMutantsDetected: each flow-graph mutation mirroring a -tags
// spandexmut protocol mutant must surface as at least one violation of
// the expected class.
func TestMutantsDetected(t *testing.T) {
	expect := map[string]string{
		"dropinvack": "completeness",
		"skiprvko":   "stall",
	}
	for name, wantCheck := range expect {
		g, err := Build("../../..")
		if err != nil {
			t.Fatal(err)
		}
		if err := Mutations[name](g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := Verify(g)
		if len(r.Violations) == 0 {
			t.Errorf("%s: no violations — the checker cannot see this bug class", name)
			continue
		}
		if len(violations(r, wantCheck)) == 0 {
			t.Errorf("%s: no %s violation among %+v", name, wantCheck, r.Violations)
		}
	}
}
