// Package msgflow stitches the per-unit transition graphs extracted by
// transgraph into one whole-system message-flow graph and verifies three
// global properties no single-unit analysis can see:
//
//   - Completeness: every message a unit can emit must have a defined
//     handler at every possible state of every unit that can receive it,
//     or the (state, message) pair must be declared impossible with a
//     //spandex:unreachable proof (transgraph's grammar). An emitted
//     message with no receiver-side handler is an orphan: in simulation
//     it is a panic waiting for the right race, in hardware a dropped
//     coherence action.
//
//   - Deadlock-freedom: a message a receiver may defer (queue behind a
//     busy line, park behind an in-flight grant) occupies buffering until
//     the blocking condition clears. If the chain "handling M causes
//     emitting M', which its receiver may defer, whose handling causes
//     emitting M”…" closes into a cycle in which every hop is
//     deferrable, the system can deadlock: every queue in the cycle waits
//     for the next. The check builds the message-dependency graph over
//     flow edges, restricts it to deferrable hops, and requires the rest
//     to be acyclic — every cycle must be broken by a guaranteed-sinkable
//     hop (a message class its receiver always consumes immediately).
//
//   - Stall-safety: every blocking wait (a transaction suffix like the
//     LLC's +rvk, or an extracted unit's declared wait) must have a
//     statically identified progress supplier: the messages it awaits
//     must be handled and must be reachable consequences — through the
//     dependency graph, across units — of the messages the wait sends
//     out when it opens. A wait whose supply chain is broken stalls
//     forever the first time it opens.
//
// The flow graph's edges come from two static sources. The emitted-message
// vocabulary per (unit, incoming message) is transgraph's per-unit
// relation. The destination of each emission is classified by this
// package's own AST pass over the protocol packages, which resolves every
// proto.Message composite literal's Dst expression to a destination role
// (see emits.go) and the role to concrete unit kinds via the fixed
// system topology below.
//
// Units annotate their queueing/waiting behaviour with //spandex:flow
// directives inside their methods (see ann.go for the grammar); the
// //spandex:flow emit directive overrides the AST classification where
// the destination set is an invariant the code cannot express (e.g. the
// LLC only forwards requests to owner-capable device kinds).
//
// Artifacts (canonical JSON and DOT) live in docs/msgflow/ and are kept
// fresh by `spandex-flow -check` in CI. The spandexmut mutants dropinvack
// and skiprvko must each surface as at least one violation
// (`spandex-flow -mutate <name>`), which anchors the checker's power.
package msgflow

import (
	"fmt"
	"sort"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/transgraph"
	"spandex/internal/proto"
)

// Packages is the protocol package set the flow graph covers.
var Packages = []string{
	"spandex/internal/core",
	"spandex/internal/mesi",
	"spandex/internal/denovo",
	"spandex/internal/gpucoh",
	"spandex/internal/hmesi",
}

// Mem is the pseudo-unit modelling main memory (internal/dram): it sinks
// MemRead/MemWrite immediately and answers each MemRead with MemReadRsp.
const Mem = "mem"

// Destination roles an emit site resolves to (emits.go).
const (
	RoleRequestor = "requestor" // Dst: m.Requestor — the original requestor
	RoleSender    = "sender"    // Dst: m.Src — whoever delivered the handled message
	RoleParent    = "parent"    // Dst: cfg.ParentID / llcID — the unit's parent
	RoleChild     = "child"     // Dst: devices[i] / children[i] — a child unit
	RoleMem       = "mem"       // Dst: MemID — main memory
	RoleL1        = "l1"        // injected into the bound MESI L1 (TU l1V)
)

// topo fixes who can talk to whom. Two hierarchies exist: the Spandex
// configurations (group "spandex", rooted at the core LLC) and the
// hierarchical-MESI baseline (group "hmesi", rooted at the directory).
// mesi-l1 and the GPU L1s appear in both; a flow edge between two units
// requires a shared group.
type topo struct {
	parents  []string
	children []string
	groups   []string
}

var topology = map[string]topo{
	"core-llc":        {parents: []string{Mem}, children: []string{"core-mesitu", "denovo-l1", "gpucoh-l1"}, groups: []string{"spandex"}},
	"core-mesitu":     {parents: []string{"core-llc"}, children: []string{"mesi-l1"}, groups: []string{"spandex"}},
	"mesi-l1":         {parents: []string{"core-mesitu", "hmesi-directory"}, groups: []string{"spandex", "hmesi"}},
	"denovo-l1":       {parents: []string{"core-llc", "hmesi-gpul2"}, groups: []string{"spandex", "hmesi"}},
	"gpucoh-l1":       {parents: []string{"core-llc", "hmesi-gpul2"}, groups: []string{"spandex", "hmesi"}},
	"hmesi-directory": {parents: []string{Mem}, children: []string{"mesi-l1", "hmesi-gpul2"}, groups: []string{"hmesi"}},
	"hmesi-gpul2":     {parents: []string{"hmesi-directory"}, children: []string{"denovo-l1", "gpucoh-l1"}, groups: []string{"hmesi"}},
	Mem:               {children: []string{"core-llc", "hmesi-directory"}, groups: []string{"spandex", "hmesi"}},
}

// pairedReq maps each response message to the request types whose
// requestor it may be addressed to (Dst: m.Requestor). A unit is a
// requestor candidate when it emits one of the paired requests on its own
// behalf (Requestor set to itself, not preserved from an incoming
// message). RspV/NackV pair with ReqS too: the LLC answers a partial-line
// MESI ReqS like a ReqV (option 2), and RspOData with ReqS for the
// ownership-transfer variant (option 3).
var pairedReq = map[string][]string{
	"RspV":       {"ReqV", "ReqS"},
	"NackV":      {"ReqV", "ReqS"},
	"RspS":       {"ReqS"},
	"RspWT":      {"ReqWT"},
	"RspO":       {"ReqO"},
	"RspOData":   {"ReqOData", "ReqS"},
	"RspWTData":  {"ReqWTData"},
	"RspWB":      {"ReqWB"},
	"MDataS":     {"MGetS"},
	"MDataE":     {"MGetS"},
	"MDataM":     {"MGetM"},
	"MAckWB":     {"MPutM"},
	"MemReadRsp": {"MemRead"},
}

// Devices returns the Spandex network device units: the LLC's children in
// the topology table. These are the units that hold a NodeID on the
// Spandex network below the LLC (the MESI TU fronts its L1).
func Devices() []string {
	return append([]string(nil), topology["core-llc"].children...)
}

// Groups returns the topology groups a unit belongs to (nil for unknown
// units).
func Groups(unit string) []string {
	return append([]string(nil), topology[unit].groups...)
}

// PairedRequests returns the request types whose requestor a response
// message may be addressed to, per the pairedReq table (nil when msg is
// not a requestor-addressed response).
func PairedRequests(msg string) []string {
	return append([]string(nil), pairedReq[msg]...)
}

// Edge is one whole-system flow edge: Src may emit Msg to Dst.
type Edge struct {
	Src   string `json:"src"`
	Msg   string `json:"msg"`
	Dst   string `json:"dst"`
	Class string `json:"class"`
	// Via records how the destination was derived: a role constant,
	// "annotation" (//spandex:flow emit), or "builtin" (the mem model).
	Via string `json:"via"`
}

func (e Edge) key() string { return e.Src + "→" + e.Msg + "→" + e.Dst }

// Unit is one node of the flow graph.
type Unit struct {
	Name    string `json:"name"`
	Package string `json:"package"`
	// Source mirrors transgraph ("annotations"/"extracted"), or
	// "builtin" for mem.
	Source string `json:"source"`
	// Handled is the incoming-message vocabulary.
	Handled []string `json:"handled"`
	// Deferrable lists handled messages the unit may queue or defer
	// instead of consuming immediately (//spandex:flow queue). Everything
	// else is guaranteed-sinkable.
	Deferrable []string    `json:"deferrable,omitempty"`
	Queues     []QueueSpec `json:"queues,omitempty"`
	Waits      []WaitSpec  `json:"waits,omitempty"`

	graph *transgraph.UnitGraph
}

// Graph returns the unit's underlying per-unit transition graph.
func (u *Unit) Graph() *transgraph.UnitGraph { return u.graph }

// QueueSpec is one //spandex:flow queue directive: at the listed states
// (or any state, when At is empty) the listed messages are deferred
// rather than processed.
type QueueSpec struct {
	Msgs []string `json:"msgs"`
	At   []string `json:"at,omitempty"`
	Pos  string   `json:"pos"`
}

// WaitSpec is one //spandex:flow wait directive: a named blocking
// condition (a state suffix like "+rvk" for annotated units, a label for
// extracted ones) that resolves when one of Awaits arrives, and whose
// progress is supplied by the Via messages sent out when the wait opens.
// Opener "any" means the opening emission cannot be tied to a transition
// of this unit's own graph (e.g. the LLC opens +evict on the victim line
// while transitioning the requested line), so only the supply chain is
// checked.
type WaitSpec struct {
	Name   string   `json:"name"`
	Awaits []string `json:"awaits"`
	Via    []string `json:"via"`
	Opener string   `json:"opener,omitempty"`
	Pos    string   `json:"pos"`
}

// EmitOverride is one //spandex:flow emit directive.
type EmitOverride struct {
	Msg string
	Dst []string
	Pos string
}

// Graph is the whole-system flow graph plus everything the checks need.
type Graph struct {
	Units map[string]*Unit
	Edges []Edge

	// emits[unit][msg] is true when the AST pass or an override found an
	// emit site (used to cross-check transition emit vocabularies).
	emits map[string]map[string]bool
}

// Violation is one finding of any of the three checks.
type Violation struct {
	Check string `json:"check"` // "completeness" | "deadlock" | "stall"
	// Unit is the unit the finding is anchored to.
	Unit string `json:"unit"`
	Msg  string `json:"msg"`
	Text string `json:"text"`
}

// Result is what a full verification run produces.
type Result struct {
	Graph      *Graph
	Violations []Violation
	// ProvenExceptions counts (state, message) completeness holes
	// covered by //spandex:unreachable declarations.
	ProvenExceptions int
	// BlockableEdges / CyclesBroken summarize the deadlock analysis.
	BlockableEdges int
	CheckedPairs   int
}

// Build loads the protocol packages, extracts the per-unit graphs, runs
// the emit-classification pass and assembles the flow graph.
func Build(dir string) (*Graph, error) {
	pkgs, err := analysis.Load(dir, Packages...)
	if err != nil {
		return nil, err
	}
	var graphs []*transgraph.UnitGraph
	sites := map[string][]emitSite{}
	flows := map[string]*flowAnn{}
	for _, pkg := range pkgs {
		gs, err := transgraph.Extract(pkg)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, gs...)
		names := map[string]string{}
		for _, g := range gs {
			names[g.Unit] = g.Name()
		}
		if err := collectEmitSites(pkg, names, sites); err != nil {
			return nil, err
		}
		if err := collectFlowAnns(pkg, names, flows); err != nil {
			return nil, err
		}
	}
	return assemble(graphs, sites, flows)
}

// BuildFromGraphs assembles a flow graph from pre-built unit graphs and
// explicit emit sites — the test entry point for synthetic systems.
func BuildFromGraphs(graphs []*transgraph.UnitGraph, sites map[string][]emitSite, flows map[string]*flowAnn) (*Graph, error) {
	return assemble(graphs, sites, flows)
}

// assemble resolves every (unit, emitted message) pair to destination
// unit kinds and materializes the edge set.
func assemble(graphs []*transgraph.UnitGraph, sites map[string][]emitSite, flows map[string]*flowAnn) (*Graph, error) {
	g := &Graph{Units: map[string]*Unit{}, emits: map[string]map[string]bool{}}
	for _, ug := range graphs {
		name := ug.Name()
		u := &Unit{Name: name, Package: ug.Package, Source: ug.Source, Handled: ug.Messages, graph: ug}
		if fa := flows[name]; fa != nil {
			u.Queues = fa.queues
			u.Waits = fa.waits
			def := map[string]bool{}
			for _, q := range fa.queues {
				for _, m := range q.Msgs {
					def[m] = true
				}
			}
			u.Deferrable = sortedSet(def)
		}
		g.Units[name] = u
	}
	g.Units[Mem] = memUnit()

	// The topology table and the graph set must agree.
	for name := range g.Units {
		if _, ok := topology[name]; !ok {
			return nil, fmt.Errorf("msgflow: unit %s has no topology entry", name)
		}
	}

	edges := map[string]Edge{}
	addEdge := func(src, msg, dst, via string) {
		if g.Units[src] == nil || g.Units[dst] == nil {
			return // synthetic sub-systems omit units; never edge into a ghost
		}
		if !coexist(src, dst) {
			return
		}
		e := Edge{Src: src, Msg: msg, Dst: dst, Class: classOf(msg), Via: via}
		edges[e.key()] = e
	}

	// Pass 1: roles resolvable without the edge set.
	type senderSite struct{ unit, msg, pos string }
	var senders []senderSite
	reqSelf := map[string]map[string]bool{} // msg -> set of self-requesting units
	for unit, list := range sites {
		if _, ok := g.Units[unit]; !ok {
			continue // receiver type without a unit graph (e.g. pass-through)
		}
		over := map[string][]string{}
		if fa := flows[unit]; fa != nil {
			for _, o := range fa.emits {
				over[o.Msg] = o.Dst
			}
		}
		for _, s := range list {
			for _, msg := range s.msgs {
				g.markEmit(unit, msg)
				if s.reqSelf {
					if reqSelf[msg] == nil {
						reqSelf[msg] = map[string]bool{}
					}
					reqSelf[msg][unit] = true
				}
				if dsts, ok := over[msg]; ok {
					for _, d := range dsts {
						addEdge(unit, msg, d, "annotation")
					}
					continue
				}
				switch s.role {
				case RoleParent:
					for _, p := range topology[unit].parents {
						addEdge(unit, msg, p, RoleParent)
					}
				case RoleChild:
					for _, c := range topology[unit].children {
						addEdge(unit, msg, c, RoleChild)
					}
				case RoleMem:
					addEdge(unit, msg, Mem, RoleMem)
				case RoleL1:
					addEdge(unit, msg, "mesi-l1", RoleL1)
				case RoleRequestor:
					// resolved below, after reqSelf is complete
				case RoleSender:
					senders = append(senders, senderSite{unit, msg, s.pos})
				default:
					return nil, fmt.Errorf("msgflow: %s: unclassified emit of %s at %s", unit, msg, s.pos)
				}
			}
		}
	}
	// Annotation-only emits (overrides for messages whose sites could not
	// be classified at all, or builtin mem edges).
	for unit, fa := range flows {
		if fa == nil {
			continue
		}
		for _, o := range fa.emits {
			g.markEmit(unit, o.Msg)
			for _, d := range o.Dst {
				addEdge(unit, o.Msg, d, "annotation")
			}
		}
	}
	g.markEmit(Mem, "MemReadRsp")
	for _, rd := range topology[Mem].children {
		if g.emits[rd]["MemRead"] {
			addEdge(rd, "MemRead", Mem, "builtin")
			addEdge(Mem, "MemReadRsp", rd, "builtin")
		}
		if g.emits[rd]["MemWrite"] {
			addEdge(rd, "MemWrite", Mem, "builtin")
		}
	}

	// Requestor roles: the destination is whoever issued the paired
	// request on its own behalf.
	for unit, list := range sites {
		if _, ok := g.Units[unit]; !ok {
			continue
		}
		for _, s := range list {
			if s.role != RoleRequestor {
				continue
			}
			for _, msg := range s.msgs {
				reqs := pairedReq[msg]
				if reqs == nil {
					return nil, fmt.Errorf("msgflow: %s emits %s to m.Requestor at %s but %s has no paired request", unit, msg, s.pos, msg)
				}
				found := false
				for _, r := range reqs {
					for cand := range reqSelf[r] {
						addEdge(unit, msg, cand, RoleRequestor)
						found = true
					}
				}
				if !found {
					return nil, fmt.Errorf("msgflow: %s emits %s to m.Requestor at %s but no unit issues %v on its own behalf", unit, msg, s.pos, reqs)
				}
			}
		}
	}

	// Pass 2: sender roles. X sent to m.Src while handling M goes back to
	// whoever has an edge delivering M here. Iterate to a fixpoint since
	// sender-derived edges may feed other sender resolutions.
	for iter := 0; iter < 3; iter++ {
		for _, s := range senders {
			u := g.Units[s.unit]
			incoming := map[string]bool{}
			for _, t := range u.graph.Transitions {
				for _, em := range t.Emits {
					if em == s.msg {
						incoming[t.Msg] = true
					}
				}
			}
			if len(incoming) == 0 {
				return nil, fmt.Errorf("msgflow: %s emits %s to m.Src at %s outside any extracted transition", s.unit, s.msg, s.pos)
			}
			for _, e := range edges {
				if e.Dst == s.unit && incoming[e.Msg] {
					addEdge(s.unit, s.msg, e.Src, RoleSender)
				}
			}
		}
	}

	for _, e := range edges {
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool { return g.Edges[i].key() < g.Edges[j].key() })

	// Every message a transition claims to emit must have a resolved
	// destination, or the edge set silently under-approximates.
	for name, u := range g.Units {
		for _, t := range u.graph.Transitions {
			for _, em := range t.Emits {
				if !g.emits[name][em] {
					return nil, fmt.Errorf("msgflow: %s transition %s emits %s but no emit site or //spandex:flow emit override classifies its destination", name, t.Msg, em)
				}
			}
		}
	}
	return g, nil
}

func (g *Graph) markEmit(unit, msg string) {
	if g.emits[unit] == nil {
		g.emits[unit] = map[string]bool{}
	}
	g.emits[unit][msg] = true
}

// memUnit synthesizes the main-memory pseudo-unit: MemRead yields a
// MemReadRsp to the reader, MemWrite is absorbed.
func memUnit() *Unit {
	ug := &transgraph.UnitGraph{
		Package:  "spandex/internal/dram",
		Unit:     "Memory",
		Source:   "builtin",
		Messages: []string{"MemRead", "MemWrite"},
		Transitions: []transgraph.Transition{
			{Msg: "MemRead", From: []string{"*"}, Emits: []string{"MemReadRsp"}, Origin: "builtin"},
			{Msg: "MemWrite", From: []string{"*"}, Origin: "builtin"},
		},
	}
	return &Unit{Name: Mem, Package: ug.Package, Source: "builtin", Handled: ug.Messages, graph: ug}
}

func coexist(a, b string) bool {
	for _, ga := range topology[a].groups {
		for _, gb := range topology[b].groups {
			if ga == gb {
				return true
			}
		}
	}
	return false
}

func classOf(msg string) string {
	t, ok := proto.MsgTypeFromIdent(msg)
	if !ok {
		return "?"
	}
	return proto.ClassOf(t).String()
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// splitList splits a comma-separated list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
