package msgflow

import (
	"fmt"
	"strings"

	"spandex/internal/analysis"
	"spandex/internal/analysis/transgraph"
)

// flowAnn aggregates one unit's //spandex:flow directives. The grammar,
// with every directive inside a method body of the unit:
//
//	//spandex:flow queue <M1,M2,...> [at=<S1|S2|...>]
//
// The listed messages may be deferred (queued behind a busy line, parked
// behind an in-flight grant) instead of consumed; for annotated units the
// at= states say where (omitted = any state).
//
//	//spandex:flow wait <name> awaits=<A1,A2> via=<V1,V2> [opener=any]
//
// A blocking condition: for annotated units name is a state suffix
// ("+rvk") and the opener transitions — those entering a suffixed state
// from an unsuffixed one — must emit a via message; opener=any skips that
// per-transition obligation (used when the wait opens on a different line
// than the handled one, or the unit's graph is state-less). The via
// messages must, transitively through the system, produce one of the
// awaited messages back at this unit.
//
//	//spandex:flow emit <Msg> dst=<unit1,unit2>
//
// Overrides the AST destination classification for Msg: the emission only
// ever reaches the listed unit kinds (e.g. revocations only go to
// owner-capable device kinds).
type flowAnn struct {
	queues []QueueSpec
	waits  []WaitSpec
	emits  []EmitOverride
}

// collectFlowAnns parses every //spandex:flow directive in pkg, keyed by
// the canonical unit name of the enclosing method's receiver.
func collectFlowAnns(pkg *analysis.Package, names map[string]string, out map[string]*flowAnn) error {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "spandex:flow") {
					continue
				}
				recv := transgraph.EnclosingRecv(f, c.Pos())
				if recv == "" {
					return fmt.Errorf("%s: spandex:flow directive outside a method body", pkg.Path)
				}
				unit, ok := names[recv]
				if !ok {
					return fmt.Errorf("%s: spandex:flow directive in method of %s, which is not a message-handling unit", pkg.Path, recv)
				}
				pos := pkg.Fset.Position(c.Pos())
				posStr := fmt.Sprintf("%s:%d", trimPath(pos.Filename), pos.Line)
				if out[unit] == nil {
					out[unit] = &flowAnn{}
				}
				if err := parseFlow(out[unit], strings.TrimPrefix(text, "spandex:flow"), posStr); err != nil {
					return fmt.Errorf("%s: %s: %v", pkg.Path, posStr, err)
				}
			}
		}
	}
	return nil
}

func parseFlow(fa *flowAnn, s, pos string) error {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return fmt.Errorf("spandex:flow: need a directive kind and operand")
	}
	kind, rest := fields[0], fields[1:]
	switch kind {
	case "queue":
		q := QueueSpec{Msgs: splitList(rest[0]), Pos: pos}
		for _, kv := range rest[1:] {
			val, ok := strings.CutPrefix(kv, "at=")
			if !ok {
				return fmt.Errorf("spandex:flow queue: unknown field %q", kv)
			}
			q.At = strings.Split(val, "|")
		}
		if len(q.Msgs) == 0 {
			return fmt.Errorf("spandex:flow queue: no messages")
		}
		fa.queues = append(fa.queues, q)
	case "wait":
		w := WaitSpec{Name: rest[0], Pos: pos}
		for _, kv := range rest[1:] {
			switch {
			case strings.HasPrefix(kv, "awaits="):
				w.Awaits = splitList(strings.TrimPrefix(kv, "awaits="))
			case strings.HasPrefix(kv, "via="):
				w.Via = splitList(strings.TrimPrefix(kv, "via="))
			case kv == "opener=any":
				w.Opener = "any"
			default:
				return fmt.Errorf("spandex:flow wait: unknown field %q", kv)
			}
		}
		if len(w.Awaits) == 0 || len(w.Via) == 0 {
			return fmt.Errorf("spandex:flow wait %s: awaits= and via= are required", w.Name)
		}
		fa.waits = append(fa.waits, w)
	case "emit":
		o := EmitOverride{Msg: rest[0], Pos: pos}
		for _, kv := range rest[1:] {
			val, ok := strings.CutPrefix(kv, "dst=")
			if !ok {
				return fmt.Errorf("spandex:flow emit: unknown field %q", kv)
			}
			o.Dst = splitList(val)
		}
		if len(o.Dst) == 0 {
			return fmt.Errorf("spandex:flow emit %s: dst= is required", o.Msg)
		}
		fa.emits = append(fa.emits, o)
	default:
		return fmt.Errorf("spandex:flow: unknown directive %q", kind)
	}
	return nil
}

func trimPath(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}
