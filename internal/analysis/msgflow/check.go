package msgflow

import (
	"fmt"
	"sort"
	"strings"
)

// Verify runs the three whole-system checks and returns the findings.
func Verify(g *Graph) *Result {
	r := &Result{Graph: g}
	r.checkCompleteness()
	r.checkDeadlock()
	r.checkStalls()
	sort.Slice(r.Violations, func(i, j int) bool {
		a, b := r.Violations[i], r.Violations[j]
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		return a.Text < b.Text
	})
	return r
}

func (r *Result) add(check, unit, msg, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Check: check, Unit: unit, Msg: msg, Text: fmt.Sprintf(format, args...),
	})
}

// checkCompleteness: every flow edge's message must be consumable at its
// destination. For units with annotated (precise, stateful) graphs the
// obligation is per state: a transition covers it, a queue directive
// defers it, or a //spandex:unreachable declaration proves the pair
// impossible. For extracted (from="*") graphs the obligation is
// message-level.
func (r *Result) checkCompleteness() {
	g := r.Graph
	for _, e := range g.Edges {
		u := g.Units[e.Dst]
		handled := map[string]bool{}
		for _, m := range u.Handled {
			handled[m] = true
		}
		if !handled[e.Msg] {
			r.add("completeness", e.Dst, e.Msg,
				"orphaned message: %s emits %s to %s, which has no handler for it", e.Src, e.Msg, e.Dst)
			continue
		}
		if u.Source != "annotations" {
			r.CheckedPairs++
			continue
		}
		// Per-state obligation against the precise graph.
		unre := u.graph.UnreachablePairs()
		for _, st := range u.graph.States {
			r.CheckedPairs++
			if u.covers(e.Msg, st) {
				continue
			}
			if _, ok := unre[st+"|"+e.Msg]; ok {
				r.ProvenExceptions++
				continue
			}
			r.add("completeness", e.Dst, e.Msg,
				"unhandled pair: %s from %s has no transition, queue rule, or unreachability proof at state %s of %s",
				e.Msg, e.Src, st, e.Dst)
		}
	}
}

// covers reports whether msg is consumed (transition) or legally deferred
// (queue directive) at state st.
func (u *Unit) covers(msg, st string) bool {
	for _, t := range u.graph.Transitions {
		if t.Msg != msg {
			continue
		}
		for _, from := range t.From {
			if from == "*" || from == st {
				return true
			}
		}
	}
	for _, q := range u.Queues {
		if !contains(q.Msgs, msg) {
			continue
		}
		if len(q.At) == 0 || contains(q.At, st) {
			return true
		}
	}
	return false
}

// deferrableEdge reports whether the destination may defer the message
// instead of consuming it immediately — the hops a deadlock cycle is made
// of.
func (g *Graph) deferrableEdge(e Edge) bool {
	return contains(g.Units[e.Dst].Deferrable, e.Msg)
}

// successors returns the dependency successors of edge e: the edges e'
// whose emission is caused by handling e.Msg at e.Dst.
func (g *Graph) successors(e Edge) []Edge {
	emits := map[string]bool{}
	for _, t := range g.Units[e.Dst].graph.Transitions {
		if t.Msg == e.Msg {
			for _, em := range t.Emits {
				emits[em] = true
			}
		}
	}
	var out []Edge
	for _, e2 := range g.Edges {
		if e2.Src == e.Dst && emits[e2.Msg] {
			out = append(out, e2)
		}
	}
	return out
}

// checkDeadlock finds message-dependency cycles in which every hop is
// deferrable — nothing in the loop is guaranteed to drain, so every
// queue can end up waiting on the next. Cycles containing at least one
// guaranteed-sinkable hop are benign: that receiver always consumes,
// breaking the wait loop.
func (r *Result) checkDeadlock() {
	g := r.Graph
	var blockable []Edge
	index := map[string]int{}
	for _, e := range g.Edges {
		if g.deferrableEdge(e) {
			index[e.key()] = len(blockable)
			blockable = append(blockable, e)
		}
	}
	r.BlockableEdges = len(blockable)
	adj := make([][]int, len(blockable))
	for i, e := range blockable {
		for _, s := range g.successors(e) {
			if j, ok := index[s.key()]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	// Iterative DFS cycle detection with path recovery; each cycle is
	// reported once, anchored at its smallest edge key.
	state := make([]int, len(blockable)) // 0 white, 1 gray, 2 black
	parent := make([]int, len(blockable))
	seen := map[string]bool{}
	var dfs func(v int)
	dfs = func(v int) {
		state[v] = 1
		for _, w := range adj[v] {
			if state[w] == 0 {
				parent[w] = v
				dfs(w)
			} else if state[w] == 1 {
				cycle := []int{w}
				for x := v; x != w; x = parent[x] {
					cycle = append(cycle, x)
				}
				sort.Ints(cycle)
				names := make([]string, len(cycle))
				for i, idx := range cycle {
					names[i] = blockable[idx].key()
				}
				key := strings.Join(names, " ")
				if !seen[key] {
					seen[key] = true
					r.add("deadlock", blockable[w].Dst, blockable[w].Msg,
						"unbroken dependency cycle (every hop deferrable): %s", key)
				}
			}
		}
		state[v] = 2
	}
	for v := range blockable {
		if state[v] == 0 {
			parent[v] = -1
			dfs(v)
		}
	}
}

// checkStalls verifies every declared wait: the awaited messages must be
// handled here and arrive on some edge, the opener transitions must emit
// a via message, and following the dependency graph from each via
// emission must reach an awaited message arriving back at this unit.
func (r *Result) checkStalls() {
	g := r.Graph
	for _, name := range sortedUnits(g) {
		u := g.Units[name]
		for _, w := range u.Waits {
			// (a) every awaited message is handled and actually sent here.
			for _, a := range w.Awaits {
				if !contains(u.Handled, a) {
					r.add("stall", name, a, "wait %s awaits %s, which %s does not handle", w.Name, a, name)
				}
			}
			if !anyEdge(g, func(e Edge) bool { return e.Dst == name && contains(w.Awaits, e.Msg) }) {
				r.add("stall", name, w.Name, "wait %s: no unit ever sends any of %v to %s", w.Name, w.Awaits, name)
			}
			// (b) openers emit a via message.
			if w.Opener != "any" {
				for _, t := range u.graph.Transitions {
					if !opensWait(t.From, t.To, w.Name) {
						continue
					}
					emitsVia := false
					for _, em := range t.Emits {
						if contains(w.Via, em) {
							emitsVia = true
						}
					}
					if !emitsVia {
						r.add("stall", name, t.Msg,
							"wait %s: opener transition %s (%s) enters a %s state without emitting any of %v — the wait has no progress supplier",
							w.Name, t.Msg, t.Pos, w.Name, w.Via)
					}
				}
			} else {
				for _, v := range w.Via {
					if !anyEdge(g, func(e Edge) bool { return e.Src == name && e.Msg == v }) {
						r.add("stall", name, v, "wait %s: %s never emits via message %s", w.Name, name, v)
					}
				}
			}
			// (c) the via emissions transitively supply an awaited message.
			if !r.supplies(name, w) {
				r.add("stall", name, w.Name,
					"wait %s: no dependency path from via %v leads back to %v at %s",
					w.Name, w.Via, w.Awaits, name)
			}
		}
	}
}

// opensWait reports whether a transition from → to enters the wait's
// suffix states from outside them. A to-state that also appears in from
// is discounted: multi-state annotations are cross-products, and such a
// state is a self-loop (e.g. a partial revocation response leaving the
// line in +rvk), not an entry.
func opensWait(from, to []string, suffix string) bool {
	entered := false
	for _, s := range to {
		if strings.HasSuffix(s, suffix) && !contains(from, s) {
			entered = true
		}
	}
	if !entered {
		return false
	}
	for _, s := range from {
		if !strings.HasSuffix(s, suffix) {
			return true
		}
	}
	return false
}

// supplies BFSes the dependency graph from the unit's via emissions and
// accepts on any awaited message arriving back.
func (r *Result) supplies(unit string, w WaitSpec) bool {
	g := r.Graph
	var frontier []Edge
	visited := map[string]bool{}
	for _, e := range g.Edges {
		if e.Src == unit && contains(w.Via, e.Msg) {
			frontier = append(frontier, e)
			visited[e.key()] = true
		}
	}
	for len(frontier) > 0 {
		e := frontier[0]
		frontier = frontier[1:]
		if e.Dst == unit && contains(w.Awaits, e.Msg) {
			return true
		}
		for _, s := range g.successors(e) {
			if !visited[s.key()] {
				visited[s.key()] = true
				frontier = append(frontier, s)
			}
		}
	}
	return false
}

// Mutations mirror the -tags spandexmut protocol mutants on the flow
// graph, so the checker's power is testable: each must surface as at
// least one violation.
var Mutations = map[string]func(*Graph) error{
	// dropinvack: the LLC's handleInvAck ignores invalidation acks — in
	// the graph, the LLC no longer handles InvAck at all.
	"dropinvack": func(g *Graph) error {
		return dropHandler(g, "core-llc", "InvAck")
	},
	// skiprvko: the LLC's ReqS path skips the RvkO forward to owners — in
	// the graph, ReqS transitions lose their RvkO emission.
	"skiprvko": func(g *Graph) error {
		return dropEmit(g, "core-llc", "ReqS", "RvkO")
	},
}

func dropHandler(g *Graph, unit, msg string) error {
	u := g.Units[unit]
	if u == nil || !contains(u.Handled, msg) {
		return fmt.Errorf("msgflow: mutation target %s/%s not in graph", unit, msg)
	}
	u.Handled = remove(u.Handled, msg)
	kept := u.graph.Transitions[:0:0]
	for _, t := range u.graph.Transitions {
		if t.Msg != msg {
			kept = append(kept, t)
		}
	}
	u.graph.Transitions = kept
	return nil
}

func dropEmit(g *Graph, unit, onMsg, emit string) error {
	u := g.Units[unit]
	if u == nil {
		return fmt.Errorf("msgflow: mutation target %s not in graph", unit)
	}
	found := false
	for i := range u.graph.Transitions {
		t := &u.graph.Transitions[i]
		if t.Msg != onMsg {
			continue
		}
		for _, em := range t.Emits {
			if em == emit {
				found = true
			}
		}
		t.Emits = remove(t.Emits, emit)
	}
	if !found {
		return fmt.Errorf("msgflow: mutation target %s: no %s transition emits %s", unit, onMsg, emit)
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func remove(list []string, s string) []string {
	out := list[:0:0]
	for _, x := range list {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}

func anyEdge(g *Graph, pred func(Edge) bool) bool {
	for _, e := range g.Edges {
		if pred(e) {
			return true
		}
	}
	return false
}

func sortedUnits(g *Graph) []string {
	out := make([]string, 0, len(g.Units))
	for k := range g.Units {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
