// Package analysis is a self-contained static-analysis framework modeled
// on golang.org/x/tools/go/analysis, built only on the standard library's
// go/ast, go/parser and go/types packages (this repository vendors no
// third-party code). It powers the spandex-lint suite: project-specific
// analyzers that enforce the determinism and protocol-state invariants the
// parallel sweep runner (PR 1) and the coherence checker depend on.
//
// The API deliberately mirrors x/tools so analyzers can be ported to the
// upstream multichecker verbatim if the dependency ever becomes available:
// an Analyzer holds a name, a doc string and a Run function; Run receives a
// Pass with the type-checked syntax of one package and reports Diagnostics.
//
// Source-level suppression uses directive comments of the form
//
//	//spandex:<name> <justification>
//
// placed on the flagged line or the line directly above it. Each analyzer
// documents which directive it honors (e.g. //spandex:maprange for the
// determinism analyzer's map-iteration check). A justification is
// mandatory: a bare directive does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers filters.
	Name string
	// Doc is a short description, printed by spandex-lint -list.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Reportf. The returned error aborts the whole lint run and is
	// reserved for internal analyzer failures, not findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// directives maps file -> line -> directive name -> justification.
	directives map[string]map[int]map[string]string
	report     func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// HasDirective reports whether a //spandex:<name> directive with a
// non-empty justification appears on node's line or the line above it.
func (p *Pass) HasDirective(node ast.Node, name string) bool {
	pos := p.Fset.Position(node.Pos())
	lines, ok := p.directives[pos.Filename]
	if !ok {
		return false
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if just, ok := lines[ln][name]; ok && strings.TrimSpace(just) != "" {
			return true
		}
	}
	return false
}

// newPass assembles a Pass for one (package, analyzer) pair, indexing the
// package's //spandex: directives.
func newPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		directives: make(map[string]map[int]map[string]string),
		report:     report,
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//spandex:") {
					continue
				}
				rest := strings.TrimPrefix(text, "//spandex:")
				name, just, _ := strings.Cut(rest, " ")
				position := p.Fset.Position(c.Pos())
				lines := p.directives[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]string)
					p.directives[position.Filename] = lines
				}
				if lines[position.Line] == nil {
					lines[position.Line] = make(map[string]string)
				}
				lines[position.Line][name] = just
			}
		}
	}
	return p
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position then analyzer name, so output is stable.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := newPass(a, pkg, func(d Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
			return diags[i].Analyzer < diags[j].Analyzer
		})
	}
	return diags, nil
}
