// Package transgraph statically extracts each protocol controller's
// transition relation — (state, incoming message) → (next states, emitted
// messages) — from its Go source, for documentation (DOT graphs under
// docs/transitions/) and for the dynamic coverage cross-check: every
// (state, message) pair the Spandex LLC processes at runtime must appear
// in the statically extracted graph, or the graph (or the protocol) is
// wrong.
//
// A unit is any type in an analyzed package with a HandleMessage
// (*proto.Message) method. Two extraction sources feed a unit's graph:
//
//   - Automatic: the switch over m.Type in HandleMessage is walked; each
//     case body (following same-package calls to bounded depth) yields
//     from-states (comparisons and switches over state-enum constants),
//     to-states (assignments of state-enum constants, and state-enum
//     constants passed as call arguments — the handleData(m, S) idiom),
//     and emitted messages (proto.Message composite literals' Type field
//     and proto.MsgType constants passed as call arguments). Packages
//     whose state is bit-mask encoded rather than enum-typed produce
//     from="*" (any state) automatic entries.
//
//   - Annotations: //spandex:transition directives inside the unit's
//     methods declare transitions explicitly, in whatever canonical state
//     vocabulary the controller documents (the LLC's I/F/V/S/O/SO ±
//     transaction suffix — see core.stateLabel). Grammar:
//
//     //spandex:transition <Msg> from=<S1|S2> [to=<S3|S4>] [emits=<M1,M2>]
//
//     An omitted to= means the state is unchanged. When a unit has any
//     annotations they are authoritative and automatic entries are
//     dropped: annotated units opt into precision, and the cross-check
//     (DiffCoverage) is only meaningful against precise graphs.
//
// Annotated units may additionally declare (state, message) pairs that
// can never occur, with the argument why:
//
//	//spandex:unreachable <M1,M2> at=<S1|S2> <justification>
//
// Unreachable declarations serve two consumers. DiffCoverage splits the
// never-observed static pairs into "proven unreachable" (declared, with
// the recorded argument) and "untested" (a real coverage hole), and fails
// if a declared-unreachable pair is ever observed — a contradiction means
// the proof or the protocol is wrong. The msgflow whole-system checker
// (internal/analysis/msgflow) uses them as the authorized exceptions to
// its completeness rule: every message a peer can emit must be handled at
// every receiver state, or the pair must be declared unreachable here.
package transgraph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spandex/internal/analysis"
)

// maxCallDepth bounds how many levels of same-package calls the automatic
// extractor follows from a HandleMessage case body.
const maxCallDepth = 4

// Transition is one edge set of a unit's graph: for every state in From,
// receiving Msg may move the controller to any state in To (empty To =
// unchanged) while sending the message types in Emits.
type Transition struct {
	Msg   string   `json:"msg"`
	From  []string `json:"from"`
	To    []string `json:"to,omitempty"`
	Emits []string `json:"emits,omitempty"`
	// Origin is "annotation" or "extracted".
	Origin string `json:"origin"`
	// Pos is the file:line the transition was extracted from.
	Pos string `json:"pos"`
}

// Unreachable is one //spandex:unreachable declaration: the (state, msg)
// pairs At×Msgs are proven never to occur, for the recorded reason.
type Unreachable struct {
	Msgs []string `json:"msgs"`
	At   []string `json:"at"`
	Why  string   `json:"why"`
	// Pos is the file:line the declaration was parsed from.
	Pos string `json:"pos"`
}

// Pairs expands the declaration into its "State|Msg" pair set.
func (u *Unreachable) Pairs() []string {
	out := make([]string, 0, len(u.At)*len(u.Msgs))
	for _, at := range u.At {
		for _, m := range u.Msgs {
			out = append(out, at+"|"+m)
		}
	}
	return out
}

// UnitGraph is the transition relation of one message-handling unit.
type UnitGraph struct {
	// Package is the import path, Unit the handler's receiver type name.
	Package string `json:"package"`
	Unit    string `json:"unit"`
	// Source is "annotations" when the unit declares its relation with
	// //spandex:transition directives, else "extracted".
	Source string `json:"source"`
	// States and Messages are the vocabularies appearing in Transitions
	// ("*" excluded).
	States      []string     `json:"states"`
	Messages    []string     `json:"messages"`
	Transitions []Transition `json:"transitions"`
	// Unreachable holds the unit's //spandex:unreachable declarations.
	Unreachable []Unreachable `json:"unreachable,omitempty"`
}

// UnreachablePairs collects every declared-unreachable "State|Msg" pair.
func (g *UnitGraph) UnreachablePairs() map[string]*Unreachable {
	out := make(map[string]*Unreachable)
	for i := range g.Unreachable {
		u := &g.Unreachable[i]
		for _, p := range u.Pairs() {
			out[p] = u
		}
	}
	return out
}

// Name is the unit's canonical file basename: "<pkg>-<unit>", lowercased
// (core-llc, mesi-l1, ...).
func (g *UnitGraph) Name() string {
	base := g.Package
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return strings.ToLower(base + "-" + g.Unit)
}

// Extract builds the transition graph of every HandleMessage unit in pkg,
// sorted by unit name.
func Extract(pkg *analysis.Package) ([]*UnitGraph, error) {
	x := &extractor{pkg: pkg, funcs: indexFuncs(pkg)}
	x.delayq = x.indexDelayHandlers()
	ann, unre, err := x.annotations()
	if err != nil {
		return nil, err
	}
	var graphs []*UnitGraph
	for _, unit := range x.units() {
		g := &UnitGraph{Package: pkg.Path, Unit: unit.name}
		if list := ann[unit.name]; len(list) > 0 {
			g.Source = "annotations"
			g.Transitions = list
		} else {
			g.Source = "extracted"
			g.Transitions = x.extractUnit(unit)
		}
		if len(g.Transitions) == 0 {
			continue // stateless pass-through (e.g. PassTU): nothing to graph
		}
		if list := unre[unit.name]; len(list) > 0 {
			if g.Source != "annotations" {
				return nil, fmt.Errorf("%s: unit %s declares //spandex:unreachable but has no //spandex:transition annotations; unreachability claims are only checkable against a precise graph", pkg.Path, unit.name)
			}
			g.Unreachable = list
		}
		finish(g)
		graphs = append(graphs, g)
	}
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].Unit < graphs[j].Unit })
	return graphs, nil
}

// finish sorts transitions and derives the state/message vocabularies.
func finish(g *UnitGraph) {
	states, msgs := map[string]bool{}, map[string]bool{}
	for _, t := range g.Transitions {
		msgs[t.Msg] = true
		for _, s := range t.From {
			states[s] = true
		}
		for _, s := range t.To {
			states[s] = true
		}
	}
	delete(states, "*")
	g.States = sortedKeys(states)
	g.Messages = sortedKeys(msgs)
	sort.Slice(g.Transitions, func(i, j int) bool {
		a, b := g.Transitions[i], g.Transitions[j]
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		return strings.Join(a.From, "|") < strings.Join(b.From, "|")
	})
	sort.Slice(g.Unreachable, func(i, j int) bool {
		a, b := g.Unreachable[i], g.Unreachable[j]
		if am, bm := strings.Join(a.Msgs, ","), strings.Join(b.Msgs, ","); am != bm {
			return am < bm
		}
		return strings.Join(a.At, "|") < strings.Join(b.At, "|")
	})
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// unit is one HandleMessage-bearing type. send is the unit's optional
// second message face: a Send(*proto.Message) method (the noc.Port side a
// translation unit exposes to its bound L1) whose transitions merge into
// the same graph — the two faces dispatch disjoint message vocabularies.
type unit struct {
	name string
	decl *ast.FuncDecl
	send *ast.FuncDecl
}

type extractor struct {
	pkg   *analysis.Package
	funcs map[types.Object]*ast.FuncDecl
	// delayq maps a noc.DelayQueue struct field to the handler methods its
	// NewDelayQueue registration installs (a method value, or every
	// same-package call inside a closure handler), so call-following can
	// step through the Post-then-callback indirection the hot-path engine
	// uses in place of direct dispatch calls.
	delayq map[types.Object][]*ast.FuncDecl
}

// indexFuncs maps every package-level func/method object to its decl, for
// call following.
func indexFuncs(pkg *analysis.Package) map[types.Object]*ast.FuncDecl {
	idx := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					idx[obj] = fd
				}
			}
		}
	}
	return idx
}

// units finds every type with a HandleMessage(*proto.Message) method, in
// source order, pairing each with its Send(*proto.Message) port face when
// one exists.
func (x *extractor) units() []unit {
	var out []unit
	sends := map[string]*ast.FuncDecl{}
	for _, f := range x.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Type.Params.NumFields() != 1 || !x.isProtoMessagePtr(fd.Type.Params.List[0].Type) {
				continue
			}
			switch fd.Name.Name {
			case "HandleMessage":
				out = append(out, unit{name: recvTypeName(fd), decl: fd})
			case "Send":
				sends[recvTypeName(fd)] = fd
			}
		}
	}
	for i := range out {
		out[i].send = sends[out[i].name]
	}
	return out
}

func (x *extractor) isProtoMessagePtr(e ast.Expr) bool {
	tv, ok := x.pkg.Info.Types[e]
	return ok && tv.Type.String() == "*spandex/internal/proto.Message"
}

func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// pos renders a node position as "file.go:line".
func (x *extractor) pos(p token.Pos) string {
	position := x.pkg.Fset.Position(p)
	name := position.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, position.Line)
}

// --- automatic extraction ---

// facts accumulates what one case body (plus followed calls) reveals.
type facts struct {
	from, to, emits map[string]bool
}

func newFacts() *facts {
	return &facts{from: map[string]bool{}, to: map[string]bool{}, emits: map[string]bool{}}
}

// extractUnit finds the unit's primary m.Type switch — in HandleMessage
// itself or behind the Schedule-closure-calls-dispatch idiom — and walks
// each case. Cases with empty bodies fall through to the statements after
// the switch (the queue-or-process dispatcher idiom), which are analyzed
// in their place.
func (x *extractor) extractUnit(u unit) []Transition {
	out := x.extractFace(u.decl)
	if u.send != nil {
		// The Send port face dispatches a disjoint message vocabulary
		// (e.g. a translation unit's MESI side), so the merge is a plain
		// concatenation; finish() sorts.
		out = append(out, x.extractFace(u.send)...)
	}
	return out
}

// extractFace extracts the transitions behind one entry method.
func (x *extractor) extractFace(fd *ast.FuncDecl) []Transition {
	sw, cont := x.findMsgSwitch(fd, map[types.Object]bool{}, maxCallDepth)
	if sw == nil {
		return nil // stateless pass-through unit
	}
	var out []Transition
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			continue // default: reject/panic arm, not a transition
		}
		var msgs []string
		for _, e := range cc.List {
			if name, ok := x.msgConst(e); ok {
				msgs = append(msgs, name)
			}
		}
		body := cc.Body
		if len(body) == 0 {
			body = cont
		}
		f := newFacts()
		msgSet := map[string]bool{}
		for _, m := range msgs {
			msgSet[m] = true
		}
		seen := map[types.Object]bool{}
		for _, s := range body {
			x.collect(s, f, msgSet, seen, maxCallDepth)
		}
		for _, msg := range msgs {
			out = append(out, Transition{
				Msg:    msg,
				From:   orStar(sortedKeys(f.from)),
				To:     sortedKeys(f.to),
				Emits:  sortedKeys(f.emits),
				Origin: "extracted",
				Pos:    x.pos(cc.Pos()),
			})
		}
	}
	return out
}

// findMsgSwitch locates the first switch over a proto.MsgType expression
// reachable from fd, following same-package calls (including inside
// closures) to bounded depth. It returns the switch plus the statements
// that follow it in its enclosing block — the fall-through continuation.
func (x *extractor) findMsgSwitch(fd *ast.FuncDecl, seen map[types.Object]bool, depth int) (*ast.SwitchStmt, []ast.Stmt) {
	if fd.Body == nil {
		return nil, nil
	}
	var sw *ast.SwitchStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sw != nil {
			return false
		}
		if s, ok := n.(*ast.SwitchStmt); ok && s.Tag != nil && x.isMsgType(s.Tag) {
			sw = s
			return false
		}
		return true
	})
	if sw != nil {
		var cont []ast.Stmt
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if blk, ok := n.(*ast.BlockStmt); ok {
				for i, s := range blk.List {
					if s == ast.Stmt(sw) {
						cont = blk.List[i+1:]
						return false
					}
				}
			}
			return true
		})
		return sw, cont
	}
	if depth == 0 {
		return nil, nil
	}
	var calls []*ast.FuncDecl
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callees := x.postHandlers(call)
			if callee := x.calleeDecl(call); callee != nil {
				callees = append(callees, callee)
			}
			for _, callee := range callees {
				obj := x.pkg.Info.Defs[callee.Name]
				if !seen[obj] {
					seen[obj] = true
					calls = append(calls, callee)
				}
			}
		}
		return true
	})
	for _, callee := range calls {
		if s, cont := x.findMsgSwitch(callee, seen, depth-1); s != nil {
			return s, cont
		}
	}
	return nil, nil
}

func orStar(states []string) []string {
	if len(states) == 0 {
		return []string{"*"}
	}
	return states
}

func (x *extractor) isMsgType(e ast.Expr) bool {
	tv, ok := x.pkg.Info.Types[e]
	return ok && tv.Type.String() == "spandex/internal/proto.MsgType"
}

// msgConst reports the constant name when e is a proto.MsgType enumerator.
func (x *extractor) msgConst(e ast.Expr) (string, bool) {
	obj := x.constObj(e)
	if obj == nil || obj.Type().String() != "spandex/internal/proto.MsgType" {
		return "", false
	}
	return obj.Name(), true
}

// stateConst reports the constant name when e is an enumerator of a state
// enum: a defined integer type whose name contains "state" and whose
// package-level constants form a zero-based enum (analysis.EnumOf).
func (x *extractor) stateConst(e ast.Expr) (string, bool) {
	obj := x.constObj(e)
	if obj == nil {
		return "", false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || !strings.Contains(strings.ToLower(named.Obj().Name()), "state") {
		return "", false
	}
	if analysis.EnumOf(named) == nil {
		return "", false
	}
	return obj.Name(), true
}

// constObj resolves an ident or selector expression to a constant object.
func (x *extractor) constObj(e ast.Expr) *types.Const {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return nil
	}
	c, _ := x.pkg.Info.Uses[id].(*types.Const)
	return c
}

// collect gathers facts from one statement tree, following same-package
// calls up to depth levels (each callee visited once per case). msgSet
// names the incoming message(s) under analysis: nested switches over
// proto.MsgType (downstream dispatchers) are filtered to the matching
// cases, so one message's facts are not polluted by its siblings'.
func (x *extractor) collect(n ast.Node, f *facts, msgSet map[string]bool, seen map[types.Object]bool, depth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.EQL || v.Op == token.NEQ {
				for _, side := range [2]ast.Expr{v.X, v.Y} {
					if s, ok := x.stateConst(side); ok {
						f.from[s] = true
					}
				}
			}
		case *ast.SwitchStmt:
			if v.Tag != nil && x.isMsgType(v.Tag) {
				for _, stmt := range v.Body.List {
					cc := stmt.(*ast.CaseClause)
					match := cc.List == nil // default arm applies to any message
					for _, e := range cc.List {
						if name, ok := x.msgConst(e); ok && msgSet[name] {
							match = true
						}
					}
					if match {
						for _, s := range cc.Body {
							x.collect(s, f, msgSet, seen, depth)
						}
					}
				}
				return false
			}
			// A switch over a state-typed expression contributes its case
			// constants as from-states.
			for _, stmt := range v.Body.List {
				for _, e := range stmt.(*ast.CaseClause).List {
					if s, ok := x.stateConst(e); ok {
						f.from[s] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				if s, ok := x.stateConst(rhs); ok {
					f.to[s] = true
				}
			}
		case *ast.CompositeLit:
			if tv, ok := x.pkg.Info.Types[v]; ok && tv.Type.String() == "spandex/internal/proto.Message" {
				for _, el := range v.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Type" {
						if m, ok := x.msgConst(kv.Value); ok {
							f.emits[m] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range v.Args {
				if m, ok := x.msgConst(arg); ok {
					f.emits[m] = true
				}
				if s, ok := x.stateConst(arg); ok {
					// The handleData(m, S) idiom: a state constant handed to
					// a helper is (almost always) the state being granted.
					f.to[s] = true
				}
			}
			if depth > 0 {
				callees := x.postHandlers(v)
				if callee := x.calleeDecl(v); callee != nil {
					callees = append(callees, callee)
				}
				for _, callee := range callees {
					obj := x.pkg.Info.Defs[callee.Name]
					if !seen[obj] {
						seen[obj] = true
						if callee.Body != nil {
							x.collect(callee.Body, f, msgSet, seen, depth-1)
						}
					}
				}
			}
		}
		return true
	})
}

// indexDelayHandlers finds every `x.field = noc.NewDelayQueue(eng, d,
// handler)` registration in the package and maps the queue field to the
// handler declarations: the method itself for a method-value handler, or
// every same-package callee for a closure handler.
func (x *extractor) indexDelayHandlers() map[types.Object][]*ast.FuncDecl {
	out := make(map[types.Object][]*ast.FuncDecl)
	for _, f := range x.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || fn.Sel.Name != "NewDelayQueue" {
				return true
			}
			field := x.pkg.Info.Uses[lhs.Sel]
			if field == nil {
				return true
			}
			switch handler := call.Args[len(call.Args)-1].(type) {
			case *ast.SelectorExpr:
				if hobj := x.pkg.Info.Uses[handler.Sel]; hobj != nil {
					if decl := x.funcs[hobj]; decl != nil {
						out[field] = append(out[field], decl)
					}
				}
			case *ast.FuncLit:
				ast.Inspect(handler.Body, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						if decl := x.calleeDecl(c); decl != nil {
							out[field] = append(out[field], decl)
						}
					}
					return true
				})
			}
			return true
		})
	}
	return out
}

// postHandlers resolves a `x.field.Post(m)` call to the handlers
// registered on the field's DelayQueue (nil if the call is anything else).
func (x *extractor) postHandlers(call *ast.CallExpr) []*ast.FuncDecl {
	fn, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || fn.Sel.Name != "Post" {
		return nil
	}
	field, ok := fn.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := x.pkg.Info.Uses[field.Sel]
	if obj == nil {
		return nil
	}
	return x.delayq[obj]
}

// calleeDecl resolves a call to a same-package func/method declaration.
func (x *extractor) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	obj := x.pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	return x.funcs[obj]
}

// --- annotations ---

// annotations parses every //spandex:transition and //spandex:unreachable
// directive, keyed by the receiver type of the method the directive
// appears in.
func (x *extractor) annotations() (map[string][]Transition, map[string][]Unreachable, error) {
	out := make(map[string][]Transition)
	unre := make(map[string][]Unreachable)
	for _, f := range x.pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var isTrans bool
				switch {
				case strings.HasPrefix(text, "spandex:transition"):
					isTrans = true
				case strings.HasPrefix(text, "spandex:unreachable"):
				default:
					continue
				}
				unit := EnclosingRecv(f, c.Pos())
				if unit == "" {
					return nil, nil, fmt.Errorf("%s: spandex directive outside a method body", x.pos(c.Pos()))
				}
				if isTrans {
					t, err := parseAnnotation(strings.TrimPrefix(text, "spandex:transition"))
					if err != nil {
						return nil, nil, fmt.Errorf("%s: %v", x.pos(c.Pos()), err)
					}
					t.Pos = x.pos(c.Pos())
					out[unit] = append(out[unit], t)
					continue
				}
				u, err := parseUnreachable(strings.TrimPrefix(text, "spandex:unreachable"))
				if err != nil {
					return nil, nil, fmt.Errorf("%s: %v", x.pos(c.Pos()), err)
				}
				u.Pos = x.pos(c.Pos())
				unre[unit] = append(unre[unit], u)
			}
		}
	}
	return out, unre, nil
}

// EnclosingRecv names the receiver type of the method containing pos
// (empty when pos is not inside a method body). Exported for the msgflow
// checker, which keys its own //spandex:flow directives the same way.
func EnclosingRecv(f *ast.File, pos token.Pos) string {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			continue
		}
		if fd.Pos() <= pos && pos <= fd.End() {
			return recvTypeName(fd)
		}
	}
	return ""
}

// parseAnnotation parses "<Msg> from=<A|B> [to=<C|D>] [emits=<X,Y>]".
func parseAnnotation(s string) (Transition, error) {
	t := Transition{Origin: "annotation"}
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return t, fmt.Errorf("spandex:transition needs a message name")
	}
	t.Msg = fields[0]
	if strings.ContainsRune(t.Msg, '=') {
		return t, fmt.Errorf("spandex:transition: first field must be the message name, got %q", t.Msg)
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return t, fmt.Errorf("spandex:transition: malformed field %q", kv)
		}
		split := func(seps string) []string {
			return strings.FieldsFunc(val, func(r rune) bool { return strings.ContainsRune(seps, r) })
		}
		switch key {
		case "from":
			t.From = split("|,")
		case "to":
			t.To = split("|,")
		case "emits":
			t.Emits = split(",|")
		default:
			return t, fmt.Errorf("spandex:transition: unknown field %q", key)
		}
	}
	if len(t.From) == 0 {
		return t, fmt.Errorf("spandex:transition %s: from= is required", t.Msg)
	}
	sort.Strings(t.From)
	sort.Strings(t.To)
	sort.Strings(t.Emits)
	return t, nil
}

// parseUnreachable parses "<M1,M2> at=<S1|S2> <justification>". The
// justification is mandatory: an unreachability claim without its argument
// is unreviewable.
func parseUnreachable(s string) (Unreachable, error) {
	var u Unreachable
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return u, fmt.Errorf("spandex:unreachable needs a message list")
	}
	split := func(val string) []string {
		return strings.FieldsFunc(val, func(r rune) bool { return strings.ContainsRune("|,", r) })
	}
	u.Msgs = split(fields[0])
	if len(u.Msgs) == 0 || strings.ContainsRune(fields[0], '=') {
		return u, fmt.Errorf("spandex:unreachable: first field must be the message list, got %q", fields[0])
	}
	if len(fields) < 2 || !strings.HasPrefix(fields[1], "at=") {
		return u, fmt.Errorf("spandex:unreachable %s: at=<states> is required", fields[0])
	}
	u.At = split(strings.TrimPrefix(fields[1], "at="))
	if len(u.At) == 0 {
		return u, fmt.Errorf("spandex:unreachable %s: at=<states> is required", fields[0])
	}
	u.Why = strings.Join(fields[2:], " ")
	if u.Why == "" {
		return u, fmt.Errorf("spandex:unreachable %s: a justification is required after at=", fields[0])
	}
	sort.Strings(u.Msgs)
	sort.Strings(u.At)
	return u, nil
}

// --- serialization ---

// JSON renders the graph canonically (stable field and slice order, two-
// space indent, trailing newline) — the checked-in docs/transitions format
// whose freshness CI enforces byte-for-byte.
func (g *UnitGraph) JSON() []byte {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		panic("transgraph: marshal: " + err.Error())
	}
	return append(data, '\n')
}

// DOT renders the graph for graphviz. Transitions with an empty To draw
// self-loops (state unchanged); "*" is a node meaning "any state".
func (g *UnitGraph) DOT() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Generated by spandex-transgraph from %s; do not edit.\n", g.Package)
	fmt.Fprintf(&b, "digraph %q {\n", g.Name())
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for _, t := range g.Transitions {
		label := t.Msg
		if len(t.Emits) > 0 {
			label += " / " + strings.Join(t.Emits, ",")
		}
		for _, from := range t.From {
			tos := t.To
			if len(tos) == 0 {
				tos = []string{from}
			}
			for _, to := range tos {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", from, to, label)
			}
		}
	}
	b.WriteString("}\n")
	return b.Bytes()
}

// --- coverage cross-check ---

// DiffResult reports the static-vs-dynamic comparison for one unit.
type DiffResult struct {
	// Unknown are observed "State|Msg" pairs absent from the static graph:
	// extraction (or annotation) bugs, and a CI failure.
	Unknown []string
	// Contradicted are observed pairs the unit declares unreachable: the
	// unreachability proof (or the protocol) is wrong, and a CI failure.
	Contradicted []string
	// Gaps are static (state, msg) pairs never observed and not declared
	// unreachable: genuine test-coverage holes, reported but not fatal.
	Gaps []string
	// Proven are static pairs never observed but covered by a
	// //spandex:unreachable declaration, with the declared argument.
	Proven map[string]string
	// Observed and Static count the distinct pairs on each side.
	Observed, Static int
}

// DiffCoverage compares dynamically observed coverage (Snapshot format,
// "State|Msg" → count) against the unit's static graph. A transition with
// from "*" matches the message in any state.
func DiffCoverage(g *UnitGraph, observed map[string]uint64) DiffResult {
	static := make(map[string]bool)
	anyState := make(map[string]bool)
	for _, t := range g.Transitions {
		for _, from := range t.From {
			if from == "*" {
				anyState[t.Msg] = true
				continue
			}
			static[from+"|"+t.Msg] = true
		}
	}
	res := DiffResult{Observed: len(observed), Static: len(static)}
	unre := g.UnreachablePairs()
	seen := make(map[string]bool)
	for key := range observed {
		state, msg, ok := strings.Cut(key, "|")
		_ = state
		if !ok {
			res.Unknown = append(res.Unknown, key)
			continue
		}
		if unre[key] != nil {
			res.Contradicted = append(res.Contradicted, key)
		}
		if static[key] {
			seen[key] = true
			continue
		}
		if anyState[msg] {
			continue
		}
		res.Unknown = append(res.Unknown, key)
	}
	for key := range static {
		if seen[key] {
			continue
		}
		if u := unre[key]; u != nil {
			if res.Proven == nil {
				res.Proven = make(map[string]string)
			}
			res.Proven[key] = u.Why
			continue
		}
		res.Gaps = append(res.Gaps, key)
	}
	sort.Strings(res.Unknown)
	sort.Strings(res.Contradicted)
	sort.Strings(res.Gaps)
	return res
}
