package transgraph

import (
	"strings"
	"testing"

	"spandex/internal/analysis"
)

// loadGraphs extracts the transition graphs of one real protocol package,
// keyed by unit name. These tests run against the actual source tree: the
// extractor's contract is with the codebase, not a synthetic fixture.
func loadGraphs(t *testing.T, pattern string) map[string]*UnitGraph {
	t.Helper()
	pkgs, err := analysis.Load("../../..", pattern)
	if err != nil {
		t.Fatalf("load %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", pattern, len(pkgs))
	}
	graphs, err := Extract(pkgs[0])
	if err != nil {
		t.Fatalf("extract %s: %v", pattern, err)
	}
	out := make(map[string]*UnitGraph)
	for _, g := range graphs {
		out[g.Unit] = g
	}
	return out
}

// findTransition returns the transitions for msg, failing if none exist.
func findTransitions(t *testing.T, g *UnitGraph, msg string) []Transition {
	t.Helper()
	var out []Transition
	for _, tr := range g.Transitions {
		if tr.Msg == msg {
			out = append(out, tr)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s: no transition for %s", g.Name(), msg)
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestExtractCoreLLC checks the annotated LLC graph: annotations are
// authoritative, the canonical state vocabulary appears, and the headline
// ReqS transitions match the directives in llc.go.
func TestExtractCoreLLC(t *testing.T) {
	graphs := loadGraphs(t, "./internal/core")
	g, ok := graphs["LLC"]
	if !ok {
		t.Fatalf("no LLC unit extracted; got %v", unitNames(graphs))
	}
	if g.Source != "annotations" {
		t.Fatalf("LLC source = %q, want annotations (directives must win over extraction)", g.Source)
	}
	if g.Name() != "core-llc" {
		t.Fatalf("LLC graph name = %q, want core-llc", g.Name())
	}
	for _, tr := range g.Transitions {
		if tr.Origin != "annotation" {
			t.Errorf("LLC transition %s at %s has origin %q: extracted entries must be dropped when annotations exist", tr.Msg, tr.Pos, tr.Origin)
		}
	}
	for _, state := range []string{"I", "V", "S", "O", "SO", "F+fetch", "SO+rvk"} {
		if !contains(g.States, state) {
			t.Errorf("LLC state vocabulary missing %q (have %v)", state, g.States)
		}
	}
	// The blocking ReqS path: an owned line revokes before granting S.
	var blocking bool
	for _, tr := range findTransitions(t, g, "ReqS") {
		if contains(tr.To, "SO+rvk") && contains(tr.Emits, "RvkO") {
			blocking = true
		}
	}
	if !blocking {
		t.Errorf("LLC ReqS: no annotated transition to SO+rvk emitting RvkO")
	}
	// Every message the LLC can receive must be in the graph: the dynamic
	// cross-check is only sound if the static side is complete.
	for _, msg := range []string{"ReqV", "ReqS", "ReqWT", "ReqO", "ReqWTData", "ReqOData", "ReqWB", "RspRvkO", "InvAck", "MemReadRsp"} {
		findTransitions(t, g, msg)
	}
}

// TestExtractMesiL1 checks automatic extraction on an enum-state unit.
func TestExtractMesiL1(t *testing.T) {
	graphs := loadGraphs(t, "./internal/mesi")
	g, ok := graphs["L1"]
	if !ok {
		t.Fatalf("no L1 unit extracted; got %v", unitNames(graphs))
	}
	if g.Source != "extracted" {
		t.Fatalf("mesi L1 source = %q, want extracted", g.Source)
	}
	// An incoming MInv invalidates the line and acks: the extractor must see
	// the MInvAck emission.
	var acked bool
	for _, tr := range findTransitions(t, g, "MInv") {
		if contains(tr.Emits, "MInvAck") {
			acked = true
		}
	}
	if !acked {
		t.Errorf("mesi L1 MInv: expected MInvAck in emits")
	}
	for _, tr := range g.Transitions {
		if tr.Origin != "extracted" {
			t.Errorf("mesi L1 transition %s has origin %q, want extracted", tr.Msg, tr.Origin)
		}
		if len(tr.From) == 0 {
			t.Errorf("mesi L1 transition %s has empty From (orStar must substitute *)", tr.Msg)
		}
	}
}

func unitNames(graphs map[string]*UnitGraph) []string {
	var out []string
	for name := range graphs {
		out = append(out, name)
	}
	return out
}

func TestParseAnnotation(t *testing.T) {
	tr, err := parseAnnotation(" ReqS from=S|O to=SO+rvk emits=RspS,RvkO")
	if err != nil {
		t.Fatalf("parseAnnotation: %v", err)
	}
	if tr.Msg != "ReqS" {
		t.Errorf("Msg = %q, want ReqS", tr.Msg)
	}
	if strings.Join(tr.From, ",") != "O,S" {
		t.Errorf("From = %v, want sorted [O S]", tr.From)
	}
	if strings.Join(tr.To, ",") != "SO+rvk" {
		t.Errorf("To = %v, want [SO+rvk]", tr.To)
	}
	if strings.Join(tr.Emits, ",") != "RspS,RvkO" {
		t.Errorf("Emits = %v, want sorted [RspS RvkO]", tr.Emits)
	}
	if tr.Origin != "annotation" {
		t.Errorf("Origin = %q, want annotation", tr.Origin)
	}

	for _, bad := range []string{
		"",                    // no message
		"from=S",              // message missing, field first
		"ReqS",                // from= required
		"ReqS from=",          // empty value
		"ReqS from=S bogus=1", // unknown field
		"ReqS from=S to",      // malformed field
	} {
		if _, err := parseAnnotation(bad); err == nil {
			t.Errorf("parseAnnotation(%q): expected error", bad)
		}
	}
}

func TestDiffCoverage(t *testing.T) {
	g := &UnitGraph{
		Package: "test", Unit: "X",
		Transitions: []Transition{
			{Msg: "ReqS", From: []string{"V", "S"}},
			{Msg: "ReqWB", From: []string{"*"}},
		},
	}
	observed := map[string]uint64{
		"V|ReqS":    10, // statically predicted
		"I|ReqWB":   3,  // matched by the from=* wildcard
		"SO|ReqS":   1,  // NOT in the graph: unknown
		"malformed": 1,  // no separator: unknown
	}
	res := DiffCoverage(g, observed)
	if want := []string{"SO|ReqS", "malformed"}; strings.Join(res.Unknown, " ") != strings.Join(want, " ") {
		t.Errorf("Unknown = %v, want %v", res.Unknown, want)
	}
	if want := "S|ReqS"; strings.Join(res.Gaps, " ") != want {
		t.Errorf("Gaps = %v, want [%s]", res.Gaps, want)
	}
	if res.Observed != 4 || res.Static != 2 {
		t.Errorf("Observed/Static = %d/%d, want 4/2", res.Observed, res.Static)
	}
}

// TestDOTSelfLoop: transitions with empty To render as self-loops.
func TestDOTSelfLoop(t *testing.T) {
	g := &UnitGraph{
		Package: "p", Unit: "U",
		Transitions: []Transition{{Msg: "Ping", From: []string{"A"}, Emits: []string{"Pong"}}},
	}
	dot := string(g.DOT())
	if !strings.Contains(dot, `"A" -> "A" [label="Ping / Pong"]`) {
		t.Errorf("DOT missing self-loop edge:\n%s", dot)
	}
}
