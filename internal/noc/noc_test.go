package noc

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

type recorder struct {
	at   []sim.Time
	msgs []proto.Message
	eng  *sim.Engine
}

func (r *recorder) HandleMessage(m *proto.Message) {
	r.at = append(r.at, r.eng.Now())
	r.msgs = append(r.msgs, *m)
}

func setup(t *testing.T, n int, cfg Config) (*sim.Engine, *stats.Stats, *Network, []*recorder) {
	t.Helper()
	eng := sim.New()
	st := stats.New()
	nw := New(eng, st, cfg, n)
	recs := make([]*recorder, n)
	for i := range recs {
		recs[i] = &recorder{eng: eng}
		nw.Register(proto.NodeID(i), recs[i])
	}
	return eng, st, nw, recs
}

func TestDeliveryLatency(t *testing.T) {
	cfg := Config{HopLatency: 100, TicksPerByte: 1, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 8, cfg)
	m := &proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Line: 0x100, Mask: memaddr.FullMask}
	// size = 16 header (full mask, no data); hops = |0-1|+|0-0|+1 = 2.
	nw.Send(m)
	eng.Run()
	if len(recs[1].at) != 1 {
		t.Fatalf("delivered %d messages", len(recs[1].at))
	}
	want := sim.Time(16*1 + 100*2)
	if recs[1].at[0] != want {
		t.Fatalf("delivery at %d, want %d", recs[1].at[0], want)
	}
}

func TestEgressSerialization(t *testing.T) {
	cfg := Config{HopLatency: 0, TicksPerByte: 10, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 4, cfg)
	// Two 16-byte messages from node 0: second must wait for the first's
	// serialization (160 ticks each). Hop latency zero isolates the effect
	// except ingress also serializes; send to different destinations.
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 2, Mask: memaddr.FullMask})
	eng.Run()
	if recs[1].at[0] != 160 {
		t.Fatalf("first delivery at %d, want 160", recs[1].at[0])
	}
	if recs[2].at[0] != 320 {
		t.Fatalf("second delivery at %d, want 320 (egress serialized)", recs[2].at[0])
	}
}

func TestIngressSerialization(t *testing.T) {
	cfg := Config{HopLatency: 0, TicksPerByte: 10, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 4, cfg)
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 3, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 1, Dst: 3, Mask: memaddr.FullMask})
	eng.Run()
	if len(recs[3].at) != 2 {
		t.Fatalf("delivered %d", len(recs[3].at))
	}
	if recs[3].at[1] < recs[3].at[0]+160 {
		t.Fatalf("ingress not serialized: %v", recs[3].at)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, st, nw, _ := setup(t, 4, DefaultConfig())
	var data memaddr.LineData
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.RspV, Src: 1, Dst: 0, Mask: memaddr.FullMask, HasData: true, Data: data})
	nw.Send(&proto.Message{Type: proto.Inv, Src: 1, Dst: 2, Mask: 0x1})
	eng.Run()
	if st.Traffic.Messages[proto.ClassReqV] != 2 {
		t.Fatalf("ReqV msgs = %d", st.Traffic.Messages[proto.ClassReqV])
	}
	wantReqV := uint64(16 + 16 + 64) // header + (header+line data)
	if st.Traffic.Bytes[proto.ClassReqV] != wantReqV {
		t.Fatalf("ReqV bytes = %d, want %d", st.Traffic.Bytes[proto.ClassReqV], wantReqV)
	}
	// Partial-mask probe carries the 2-byte mask overhead.
	if st.Traffic.Bytes[proto.ClassProbe] != 18 {
		t.Fatalf("Probe bytes = %d, want 18", st.Traffic.Bytes[proto.ClassProbe])
	}
	if st.Traffic.TotalBytes(false) != wantReqV+18 {
		t.Fatalf("total = %d", st.Traffic.TotalBytes(false))
	}
}

func TestMessageCopied(t *testing.T) {
	eng, _, nw, recs := setup(t, 2, DefaultConfig())
	m := &proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Line: 0x40, Mask: 1}
	nw.Send(m)
	m.Line = 0xdead // mutation after Send must not affect delivery
	eng.Run()
	if recs[1].msgs[0].Line != 0x40 {
		t.Fatal("message not copied at send time")
	}
}

func TestPointToPointFIFO(t *testing.T) {
	// A large message followed by a small one between the same pair must
	// not be overtaken, even though the small one serializes faster.
	cfg := Config{HopLatency: 10, TicksPerByte: 100, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 2, cfg)
	var big memaddr.LineData
	nw.Send(&proto.Message{Type: proto.RspV, Src: 0, Dst: 1,
		Mask: memaddr.FullMask, HasData: true, Data: big})
	nw.Send(&proto.Message{Type: proto.Inv, Src: 0, Dst: 1, Mask: 1})
	eng.Run()
	if len(recs[1].msgs) != 2 {
		t.Fatalf("delivered %d", len(recs[1].msgs))
	}
	if recs[1].msgs[0].Type != proto.RspV || recs[1].msgs[1].Type != proto.Inv {
		t.Fatalf("pair reordered: %v then %v", recs[1].msgs[0].Type, recs[1].msgs[1].Type)
	}
}

func TestPortStampsSource(t *testing.T) {
	eng, _, nw, recs := setup(t, 2, DefaultConfig())
	p := nw.PortFor(0)
	p.Send(&proto.Message{Type: proto.ReqV, Dst: 1, Mask: 1})
	eng.Run()
	if recs[1].msgs[0].Src != 0 {
		t.Fatalf("src = %d", recs[1].msgs[0].Src)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		eng, _, nw, recs := setup(t, 9, Config{HopLatency: 7, TicksPerByte: 3, MeshWidth: 3})
		for i := 0; i < 50; i++ {
			src := proto.NodeID(i % 9)
			dst := proto.NodeID((i * 7) % 9)
			if src == dst {
				continue
			}
			nw.Send(&proto.Message{Type: proto.ReqWT, Src: src, Dst: dst, Mask: 1})
		}
		eng.Run()
		var all []sim.Time
		for _, r := range recs {
			all = append(all, r.at...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic delivery times")
		}
	}
}
