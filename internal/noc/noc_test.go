package noc

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

type recorder struct {
	at   []sim.Time
	msgs []proto.Message
	eng  *sim.Engine
}

func (r *recorder) HandleMessage(m *proto.Message) {
	r.at = append(r.at, r.eng.Now())
	r.msgs = append(r.msgs, *m)
}

func setup(t *testing.T, n int, cfg Config) (*sim.Engine, *stats.Stats, *Network, []*recorder) {
	t.Helper()
	eng := sim.New()
	st := stats.New()
	nw := New(eng, st, cfg, n)
	recs := make([]*recorder, n)
	for i := range recs {
		recs[i] = &recorder{eng: eng}
		nw.Register(proto.NodeID(i), recs[i])
	}
	return eng, st, nw, recs
}

func TestDeliveryLatency(t *testing.T) {
	cfg := Config{HopLatency: 100, TicksPerByte: 1, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 8, cfg)
	m := &proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Line: 0x100, Mask: memaddr.FullMask}
	// size = 16 header (full mask, no data); hops = |0-1|+|0-0|+1 = 2.
	nw.Send(m)
	eng.Run()
	if len(recs[1].at) != 1 {
		t.Fatalf("delivered %d messages", len(recs[1].at))
	}
	want := sim.Time(16*1 + 100*2)
	if recs[1].at[0] != want {
		t.Fatalf("delivery at %d, want %d", recs[1].at[0], want)
	}
}

func TestEgressSerialization(t *testing.T) {
	cfg := Config{HopLatency: 0, TicksPerByte: 10, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 4, cfg)
	// Two 16-byte messages from node 0: second must wait for the first's
	// serialization (160 ticks each). Hop latency zero isolates the effect
	// except ingress also serializes; send to different destinations.
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 2, Mask: memaddr.FullMask})
	eng.Run()
	if recs[1].at[0] != 160 {
		t.Fatalf("first delivery at %d, want 160", recs[1].at[0])
	}
	if recs[2].at[0] != 320 {
		t.Fatalf("second delivery at %d, want 320 (egress serialized)", recs[2].at[0])
	}
}

func TestIngressSerialization(t *testing.T) {
	cfg := Config{HopLatency: 0, TicksPerByte: 10, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 4, cfg)
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 3, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 1, Dst: 3, Mask: memaddr.FullMask})
	eng.Run()
	if len(recs[3].at) != 2 {
		t.Fatalf("delivered %d", len(recs[3].at))
	}
	if recs[3].at[1] < recs[3].at[0]+160 {
		t.Fatalf("ingress not serialized: %v", recs[3].at)
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng, st, nw, _ := setup(t, 4, DefaultConfig())
	var data memaddr.LineData
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.RspV, Src: 1, Dst: 0, Mask: memaddr.FullMask, HasData: true, Data: data})
	nw.Send(&proto.Message{Type: proto.Inv, Src: 1, Dst: 2, Mask: 0x1})
	eng.Run()
	if st.Traffic.Messages[proto.ClassReqV] != 2 {
		t.Fatalf("ReqV msgs = %d", st.Traffic.Messages[proto.ClassReqV])
	}
	wantReqV := uint64(16 + 16 + 64) // header + (header+line data)
	if st.Traffic.Bytes[proto.ClassReqV] != wantReqV {
		t.Fatalf("ReqV bytes = %d, want %d", st.Traffic.Bytes[proto.ClassReqV], wantReqV)
	}
	// Partial-mask probe carries the 2-byte mask overhead.
	if st.Traffic.Bytes[proto.ClassProbe] != 18 {
		t.Fatalf("Probe bytes = %d, want 18", st.Traffic.Bytes[proto.ClassProbe])
	}
	if st.Traffic.TotalBytes(false) != wantReqV+18 {
		t.Fatalf("total = %d", st.Traffic.TotalBytes(false))
	}
}

func TestMessageCopied(t *testing.T) {
	eng, _, nw, recs := setup(t, 2, DefaultConfig())
	m := &proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Line: 0x40, Mask: 1}
	nw.Send(m)
	m.Line = 0xdead // mutation after Send must not affect delivery
	eng.Run()
	if recs[1].msgs[0].Line != 0x40 {
		t.Fatal("message not copied at send time")
	}
}

func TestPointToPointFIFO(t *testing.T) {
	// A large message followed by a small one between the same pair must
	// not be overtaken, even though the small one serializes faster.
	cfg := Config{HopLatency: 10, TicksPerByte: 100, MeshWidth: 4}
	eng, _, nw, recs := setup(t, 2, cfg)
	var big memaddr.LineData
	nw.Send(&proto.Message{Type: proto.RspV, Src: 0, Dst: 1,
		Mask: memaddr.FullMask, HasData: true, Data: big})
	nw.Send(&proto.Message{Type: proto.Inv, Src: 0, Dst: 1, Mask: 1})
	eng.Run()
	if len(recs[1].msgs) != 2 {
		t.Fatalf("delivered %d", len(recs[1].msgs))
	}
	if recs[1].msgs[0].Type != proto.RspV || recs[1].msgs[1].Type != proto.Inv {
		t.Fatalf("pair reordered: %v then %v", recs[1].msgs[0].Type, recs[1].msgs[1].Type)
	}
}

func TestPortStampsSource(t *testing.T) {
	eng, _, nw, recs := setup(t, 2, DefaultConfig())
	p := nw.PortFor(0)
	p.Send(&proto.Message{Type: proto.ReqV, Dst: 1, Mask: 1})
	eng.Run()
	if recs[1].msgs[0].Src != 0 {
		t.Fatalf("src = %d", recs[1].msgs[0].Src)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		eng, _, nw, recs := setup(t, 9, Config{HopLatency: 7, TicksPerByte: 3, MeshWidth: 3})
		for i := 0; i < 50; i++ {
			src := proto.NodeID(i % 9)
			dst := proto.NodeID((i * 7) % 9)
			if src == dst {
				continue
			}
			nw.Send(&proto.Message{Type: proto.ReqWT, Src: src, Dst: dst, Mask: 1})
		}
		eng.Run()
		var all []sim.Time
		for _, r := range recs {
			all = append(all, r.at...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic delivery count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic delivery times")
		}
	}
}

func TestMeshUnloadedMatchesDirect(t *testing.T) {
	// A single message on an idle switched mesh must arrive exactly when
	// the direct model would deliver it: the topologies are comparable.
	for _, pair := range [][2]proto.NodeID{{0, 1}, {0, 7}, {5, 2}, {3, 3}} {
		var at [2]sim.Time
		for i, topo := range []Topology{TopoDirect, TopoMesh} {
			cfg := Config{HopLatency: 10, TicksPerByte: 10, MeshWidth: 4, Topology: topo}
			eng, _, nw, recs := setup(t, 8, cfg)
			nw.Send(&proto.Message{Type: proto.ReqV, Src: pair[0], Dst: pair[1], Mask: 1})
			eng.Run()
			at[i] = recs[pair[1]].at[0]
		}
		if at[0] != at[1] {
			t.Errorf("%d->%d: direct %d, mesh %d", pair[0], pair[1], at[0], at[1])
		}
	}
}

func TestMeshLinkContention(t *testing.T) {
	// 0->2 and 1->2 share the router-1 east link on a 4-wide mesh. The
	// direct model delivers the second message with only ingress queuing;
	// the switched mesh also charges the shared-link wait.
	cfg := Config{HopLatency: 10, TicksPerByte: 10, MeshWidth: 4, Topology: TopoMesh}
	eng, _, nw, recs := setup(t, 8, cfg)
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 2, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 1, Dst: 2, Mask: memaddr.FullMask})
	eng.Run()
	if len(recs[2].at) != 2 {
		t.Fatalf("delivered %d", len(recs[2].at))
	}
	// First: ser=160, links (0,E) then (1,E), eject: 160+3*10 = 190.
	if recs[2].at[0] != 190 {
		t.Fatalf("first delivery at %d, want 190", recs[2].at[0])
	}
	// Second serializes behind the first on link (1,E): claimed until
	// 170+160=330, so head advances at 330, arrives 350 (ingress is also
	// free exactly then). Unloaded it would have arrived at 180.
	if recs[2].at[1] != 350 {
		t.Fatalf("second delivery at %d, want 350 (link contention)", recs[2].at[1])
	}
}

func TestRingShortestPath(t *testing.T) {
	cfg := Config{HopLatency: 10, TicksPerByte: 10, Topology: TopoRing}
	eng, _, nw, recs := setup(t, 4, cfg)
	// 0->3 goes counter-clockwise (1 link): ser + 2 hops = 180.
	// 0->2 ties (2 links each way), clockwise: ser + 3 hops = 190.
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 3, Mask: memaddr.FullMask})
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 2, Mask: memaddr.FullMask})
	eng.Run()
	// Second send waits out the first's egress serialization (160).
	if got := recs[3].at[0]; got != 180 {
		t.Fatalf("ccw delivery at %d, want 180", got)
	}
	if got := recs[2].at[0]; got != 160+190 {
		t.Fatalf("cw delivery at %d, want %d", got, 160+190)
	}
}

func TestSwitchedFIFO(t *testing.T) {
	// Point-to-point ordering survives the switched topologies.
	for _, topo := range []Topology{TopoMesh, TopoRing} {
		cfg := Config{HopLatency: 10, TicksPerByte: 100, MeshWidth: 4, Topology: topo}
		eng, _, nw, recs := setup(t, 8, cfg)
		var big memaddr.LineData
		nw.Send(&proto.Message{Type: proto.RspV, Src: 0, Dst: 6,
			Mask: memaddr.FullMask, HasData: true, Data: big})
		nw.Send(&proto.Message{Type: proto.Inv, Src: 0, Dst: 6, Mask: 1})
		eng.Run()
		if len(recs[6].msgs) != 2 {
			t.Fatalf("topo %d: delivered %d", topo, len(recs[6].msgs))
		}
		if recs[6].msgs[0].Type != proto.RspV || recs[6].msgs[1].Type != proto.Inv {
			t.Fatalf("topo %d: pair reordered", topo)
		}
	}
}

func TestSwitchedDeterminism(t *testing.T) {
	for _, topo := range []Topology{TopoMesh, TopoRing} {
		run := func() []sim.Time {
			eng, _, nw, recs := setup(t, 9,
				Config{HopLatency: 7, TicksPerByte: 3, MeshWidth: 3, Topology: topo})
			for i := 0; i < 200; i++ {
				src := proto.NodeID(i % 9)
				dst := proto.NodeID((i * 7) % 9)
				if src == dst {
					continue
				}
				nw.Send(&proto.Message{Type: proto.ReqWT, Src: src, Dst: dst, Mask: 1})
			}
			eng.Run()
			var all []sim.Time
			for _, r := range recs {
				all = append(all, r.at...)
			}
			return all
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("topo %d: nondeterministic delivery count", topo)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("topo %d: nondeterministic delivery times", topo)
			}
		}
	}
}

func TestMeshPartialLastRow(t *testing.T) {
	// 6 endpoints on a 4-wide mesh: the last row holds only nodes 4 and
	// 5, but XY routes may cross the full router grid. Exercise a route
	// whose turn happens at a router with no endpoint behind it.
	cfg := Config{HopLatency: 10, TicksPerByte: 10, MeshWidth: 4, Topology: TopoMesh}
	eng, _, nw, recs := setup(t, 6, cfg)
	nw.Send(&proto.Message{Type: proto.ReqV, Src: 3, Dst: 5, Mask: memaddr.FullMask})
	eng.Run()
	// dx=2, dy=1: ser + 4 hops = 160+40.
	if got := recs[5].at[0]; got != 200 {
		t.Fatalf("delivery at %d, want 200", got)
	}
}
