// Package noc models the on-chip interconnect: per-endpoint link
// bandwidth serialization, per-class traffic accounting, and a choice of
// traversal models (Config.Topology) — the legacy point-to-point
// distance model, or switched 2D-mesh / ring topologies where every
// inter-router link serializes one message at a time and through-traffic
// queues at each hop.
//
// The model is deliberately simpler than a flit-level NoC simulator (the
// paper used Garnet) but preserves the two effects the evaluation depends
// on: (1) every message pays a distance-dependent latency, so hierarchical
// indirection costs extra hops, and (2) endpoints (and, in the switched
// topologies, every link along the route) have finite bandwidth, so
// protocols that move more bytes (line-granularity RfO, invalidation
// storms) suffer queuing delay at high request rates.
package noc

import (
	"fmt"

	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// Handler receives delivered messages.
type Handler interface {
	HandleMessage(m *proto.Message)
}

// Topology selects how messages traverse the interconnect.
type Topology uint8

const (
	// TopoDirect is the original point-to-point model: every message pays
	// a mesh-distance latency plus endpoint link serialization, but
	// through-traffic never contends. The paper's 9×6 matrix runs on this
	// model and its timing is bit-stable.
	TopoDirect Topology = iota
	// TopoMesh is a switched 2D mesh with XY (dimension-ordered) routing:
	// each inter-router link serializes one message at a time, so
	// through-traffic queues at every hop. Unloaded latency equals the
	// direct model's, making the two comparable.
	TopoMesh
	// TopoRing is a switched bidirectional ring with shortest-direction
	// routing (ties clockwise) and the same per-link contention model.
	TopoRing
)

// Config sets the interconnect timing parameters.
type Config struct {
	// HopLatency is the per-hop router+wire latency in ticks.
	HopLatency sim.Time
	// TicksPerByte is the inverse link bandwidth (serialization cost).
	TicksPerByte sim.Time
	// MeshWidth is the number of columns endpoints are laid out on.
	MeshWidth int
	// Topology selects the traversal model; the zero value is the legacy
	// direct model.
	Topology Topology
}

// DefaultConfig: 2-cycle (1 ns) hops, 32 B/CPU-cycle links, 6-wide mesh.
func DefaultConfig() Config {
	return Config{HopLatency: 1000, TicksPerByte: 16, MeshWidth: 6}
}

type endpoint struct {
	handler Handler
	x, y    int
	// egressFree / ingressFree are the times the endpoint's links become
	// available; messages serialize through them in order.
	egressFree  sim.Time
	ingressFree sim.Time
}

// Network connects endpoints and delivers messages with modeled latency.
// Delivery preserves point-to-point ordering: two messages with the same
// source and destination arrive in send order (the property a mesh with
// deterministic routing provides per virtual network, and which the
// protocols' race handling assumes for grant-before-probe ordering).
type Network struct {
	eng *sim.Engine
	st  *stats.Stats
	cfg Config
	eps []endpoint
	// pairLast is a dense src-major matrix of last delivery times, indexed
	// src*len(eps)+dst (a map here costs a hash per message send).
	pairLast []sim.Time
	// linkFree holds, for the switched topologies, the time each
	// inter-router link finishes serializing its current message: mesh
	// links index router*4+direction (E,W,N,S), ring links node*2+
	// direction (cw,ccw). Empty under TopoDirect.
	linkFree  []sim.Time
	trace     func(at sim.Time, m *proto.Message)
	intercept func(m *proto.Message)
	obs       *obs.Recorder
	pool      sim.Pool[deliverEvent]
}

// deliverEvent is a pooled in-flight message. The message payload is
// embedded by value and recycled as soon as the destination handler
// returns, so handlers (and observer sinks) must copy any message they
// retain past HandleMessage.
type deliverEvent struct {
	net *Network
	msg proto.Message
}

func (d *deliverEvent) Fire() {
	n := d.net
	m := &d.msg
	if n.trace != nil {
		n.trace(n.eng.Now(), m)
	}
	if n.obs != nil {
		n.obs.Emit(obs.Event{At: n.eng.Now(), Kind: obs.EvMsgDeliver,
			Node: m.Dst, Trace: m.Trace, Msg: m})
	}
	h := n.eps[m.Dst].handler
	if h == nil {
		panic(fmt.Sprintf("noc: no handler registered for node %d (msg %s)", m.Dst, m))
	}
	h.HandleMessage(m)
	n.pool.Put(d)
}

// DelayQueue defers messages by a fixed latency into a dispatch function.
// It is the pooled replacement for the Schedule-closure queuing idiom the
// translation units and LLC-like controllers share: Post copies the
// message into a recycled in-flight slot, so the steady state allocates
// nothing. The dispatch function must not retain the message past its
// return — it is recycled immediately after — so handlers clone at
// retention points (transaction origins, blocked-line queues).
type DelayQueue struct {
	eng   *sim.Engine
	d     sim.Time
	fn    func(*proto.Message)
	depth int
	pool  sim.Pool[delayedMsg]
}

type delayedMsg struct {
	q   *DelayQueue
	msg proto.Message
}

func (e *delayedMsg) Fire() {
	q := e.q
	q.depth--
	q.fn(&e.msg)
	q.pool.Put(e)
}

// NewDelayQueue creates a queue that hands each posted message to fn after
// d ticks. Messages posted at the same tick dispatch in post order.
func NewDelayQueue(eng *sim.Engine, d sim.Time, fn func(*proto.Message)) *DelayQueue {
	return &DelayQueue{eng: eng, d: d, fn: fn}
}

// Post schedules m's dispatch. The message is copied; the caller may reuse
// the struct.
func (q *DelayQueue) Post(m *proto.Message) {
	e := q.pool.Get()
	e.q = q
	e.msg = *m
	q.depth++
	q.eng.ScheduleEvent(q.d, e)
}

// Depth returns the number of messages posted but not yet dispatched —
// the queue's instantaneous occupancy.
func (q *DelayQueue) Depth() int { return q.depth }

// New creates a network with n endpoints laid out row-major on the mesh.
func New(eng *sim.Engine, st *stats.Stats, cfg Config, n int) *Network {
	if cfg.MeshWidth <= 0 {
		cfg.MeshWidth = 1
	}
	nw := &Network{eng: eng, st: st, cfg: cfg, eps: make([]endpoint, n),
		pairLast: make([]sim.Time, n*n)}
	for i := range nw.eps {
		nw.eps[i].x = i % cfg.MeshWidth
		nw.eps[i].y = i / cfg.MeshWidth
	}
	switch cfg.Topology {
	case TopoDirect:
		// Point-to-point: no inter-router links to track.
	case TopoMesh:
		// Router grid covers the full last row even when endpoints only
		// partially fill it: XY routes may cross routers with no endpoint.
		rows := (n + cfg.MeshWidth - 1) / cfg.MeshWidth
		nw.linkFree = make([]sim.Time, cfg.MeshWidth*rows*4)
	case TopoRing:
		nw.linkFree = make([]sim.Time, n*2)
	default:
		panic("noc: unknown topology")
	}
	return nw
}

// Register attaches the handler for node id. Every node must be registered
// before any message addressed to it is delivered.
func (n *Network) Register(id proto.NodeID, h Handler) {
	n.eps[id].handler = h
}

// SetTrace installs a callback invoked at each message's delivery time,
// used by the protocol-trace example and the Figure 1 tests.
//
// Deprecated: SetTrace predates the structured observability layer; new
// code should install an obs.Recorder via SetObserver (or
// System.Observe) and watch EvMsgDeliver events. The hook is kept for
// compatibility and still fires at delivery time.
func (n *Network) SetTrace(fn func(at sim.Time, m *proto.Message)) { n.trace = fn }

// SetObserver installs the observability recorder; nil disables
// instrumentation. Send emits EvMsgSend (with the computed delivery time
// in Arg) and EvMsgDeliver at the destination hand-off.
func (n *Network) SetObserver(r *obs.Recorder) { n.obs = r }

// NumNodes returns the number of endpoints.
func (n *Network) NumNodes() int { return len(n.eps) }

func (n *Network) hops(a, b proto.NodeID) sim.Time {
	ea, eb := &n.eps[a], &n.eps[b]
	dx := ea.x - eb.x
	if dx < 0 {
		dx = -dx
	}
	dy := ea.y - eb.y
	if dy < 0 {
		dy = -dy
	}
	return sim.Time(dx + dy + 1) // +1: local router traversal
}

// Mesh link directions (link index router*4+dir).
const (
	dirE = iota
	dirW
	dirN
	dirS
)

// claimLink advances the head time t across one switched link: wait for
// the link to finish its current message (emitting the wait as egress
// backlog at the upstream router), then occupy it for the message's own
// serialization time and pay the hop latency.
func (n *Network) claimLink(link, upstream int, now, t, ser sim.Time) sim.Time {
	if free := n.linkFree[link]; free > t {
		if n.obs != nil {
			n.obs.Emit(obs.Event{At: now, Kind: obs.EvLinkBacklog,
				Node: proto.NodeID(upstream), Res: "egress", Arg: uint64(free - t)})
		}
		t = free
	}
	n.linkFree[link] = t + ser
	return t + n.cfg.HopLatency
}

// routeMesh walks m's XY path (x dimension fully, then y), claiming each
// inter-router link, and returns the arrival time at the destination —
// one extra hop for ejection, so the unloaded latency matches the direct
// model's ser + HopLatency*(dx+dy+1).
func (n *Network) routeMesh(m *proto.Message, now, t, ser sim.Time) sim.Time {
	w := n.cfg.MeshWidth
	x, y := n.eps[m.Src].x, n.eps[m.Src].y
	tx, ty := n.eps[m.Dst].x, n.eps[m.Dst].y
	for x != tx || y != ty {
		var dir, nx, ny int
		switch {
		case x < tx:
			dir, nx, ny = dirE, x+1, y
		case x > tx:
			dir, nx, ny = dirW, x-1, y
		case y < ty:
			dir, nx, ny = dirS, x, y+1
		default:
			dir, nx, ny = dirN, x, y-1
		}
		router := y*w + x
		t = n.claimLink(router*4+dir, router, now, t, ser)
		x, y = nx, ny
	}
	return t + n.cfg.HopLatency
}

// routeRing walks m around the ring in the shortest direction (ties
// clockwise, toward increasing node ids), claiming each link.
func (n *Network) routeRing(m *proto.Message, now, t, ser sim.Time) sim.Time {
	sz := len(n.eps)
	fwd := int(m.Dst) - int(m.Src)
	if fwd < 0 {
		fwd += sz
	}
	cw := fwd <= sz-fwd
	steps := fwd
	if !cw {
		steps = sz - fwd
	}
	cur := int(m.Src)
	for i := 0; i < steps; i++ {
		if cw {
			t = n.claimLink(cur*2, cur, now, t, ser)
			cur++
			if cur == sz {
				cur = 0
			}
		} else {
			t = n.claimLink(cur*2+1, cur, now, t, ser)
			cur--
			if cur < 0 {
				cur = sz - 1
			}
		}
	}
	return t + n.cfg.HopLatency
}

// Port is a message sink that stamps the sender. L1 controllers send
// through a Port so the same controller works attached directly to the
// network (hierarchical configurations) or behind a translation unit
// (Spandex configurations).
type Port interface {
	Send(m *proto.Message)
}

type directPort struct {
	net *Network
	id  proto.NodeID
}

func (p directPort) Send(m *proto.Message) {
	m.Src = p.id
	p.net.Send(m)
}

// PortFor returns a Port sending directly onto the network as node id.
func (n *Network) PortFor(id proto.NodeID) Port { return directPort{net: n, id: id} }

// SetInterceptor installs a capture hook: when non-nil, Send hands every
// message (already copied and validated) to fn instead of modeling latency
// and scheduling delivery. The interceptor owns the message; it delivers
// it — whenever it chooses — via Deliver. This is the model checker's
// entry point for enumerating delivery interleavings (internal/mcheck);
// traffic accounting and the latency model are bypassed entirely.
func (n *Network) SetInterceptor(fn func(m *proto.Message)) { n.intercept = fn }

// Deliver hands m synchronously to its destination handler, bypassing the
// latency model. Only meaningful under SetInterceptor, where the caller —
// not the network — decides delivery order.
func (n *Network) Deliver(m *proto.Message) {
	h := n.eps[m.Dst].handler
	if h == nil {
		panic(fmt.Sprintf("noc: no handler registered for node %d (msg %s)", m.Dst, m))
	}
	h.HandleMessage(m)
}

// Send queues m for delivery. The message is copied; callers may reuse the
// struct. Traffic is accounted at send time.
func (n *Network) Send(m *proto.Message) {
	if m.Src < 0 || int(m.Src) >= len(n.eps) || m.Dst < 0 || int(m.Dst) >= len(n.eps) {
		panic(fmt.Sprintf("noc: bad endpoints in %s", m))
	}
	if n.intercept != nil {
		cp := *m
		n.intercept(&cp)
		return
	}
	size := m.Bytes()
	n.st.Traffic.Add(proto.ClassOf(m.Type), size)

	now := n.eng.Now()
	ser := sim.Time(size) * n.cfg.TicksPerByte

	src := &n.eps[m.Src]
	start := now
	if src.egressFree > start {
		start = src.egressFree
	}
	src.egressFree = start + ser

	var arrive sim.Time
	switch n.cfg.Topology {
	case TopoDirect:
		arrive = start + ser + n.cfg.HopLatency*n.hops(m.Src, m.Dst)
	case TopoMesh:
		arrive = n.routeMesh(m, now, start+ser, ser)
	case TopoRing:
		arrive = n.routeRing(m, now, start+ser, ser)
	default:
		panic("noc: unknown topology")
	}

	dst := &n.eps[m.Dst]
	deliver := arrive
	if dst.ingressFree > deliver {
		deliver = dst.ingressFree
	}
	pair := int(m.Src)*len(n.eps) + int(m.Dst)
	if last := n.pairLast[pair]; deliver <= last {
		deliver = last + 1
	}
	n.pairLast[pair] = deliver
	dst.ingressFree = deliver + ser

	d := n.pool.Get()
	d.net = n
	d.msg = *m
	if n.obs != nil {
		n.obs.Emit(obs.Event{At: now, Kind: obs.EvMsgSend, Node: m.Src,
			Trace: m.Trace, Msg: &d.msg, Arg: uint64(deliver)})
		// Link telemetry: queuing delay absorbed at a busy egress or
		// ingress link (zero-backlog sends stay silent).
		if start > now {
			n.obs.Emit(obs.Event{At: now, Kind: obs.EvLinkBacklog,
				Node: m.Src, Res: "egress", Arg: uint64(start - now)})
		}
		if deliver > arrive {
			n.obs.Emit(obs.Event{At: now, Kind: obs.EvLinkBacklog,
				Node: m.Dst, Res: "ingress", Arg: uint64(deliver - arrive)})
		}
	}
	n.eng.ScheduleEventAt(deliver, d)
}
