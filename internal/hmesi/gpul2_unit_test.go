package hmesi

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// l2rig drives a GPUL2 with a scripted L3 and scripted children: every
// peer is a recorder, and tests inject protocol messages by hand to hit
// the transaction windows integration tests cannot time precisely.
type l2rig struct {
	t   *testing.T
	eng *sim.Engine
	net *noc.Network
	l2  *GPUL2
	// recorders: node 0,1 = children; node 3 = L3; node 4 = a requestor.
	recv map[proto.NodeID][]proto.Message
}

const (
	l2Child0 = proto.NodeID(0)
	l2Child1 = proto.NodeID(1)
	l2Node   = proto.NodeID(2)
	l2L3     = proto.NodeID(3)
	l2Peer   = proto.NodeID(4)
)

type l2rec struct {
	id  proto.NodeID
	rig *l2rig
}

func (r *l2rec) HandleMessage(m *proto.Message) {
	r.rig.recv[r.id] = append(r.rig.recv[r.id], *m)
}

func newL2Rig(t *testing.T) *l2rig {
	r := &l2rig{t: t, eng: sim.New(), recv: map[proto.NodeID][]proto.Message{}}
	st := stats.New()
	r.net = noc.New(r.eng, st, noc.Config{HopLatency: 10, TicksPerByte: 1, MeshWidth: 3}, 5)
	r.l2 = NewGPUL2(l2Node, r.eng, r.net, st, L2Config{
		SizeBytes: 16 * 1024, Ways: 4, AccessLatency: 5, ParentID: l2L3,
	})
	for _, id := range []proto.NodeID{l2Child0, l2Child1, l2L3, l2Peer} {
		r.net.Register(id, &l2rec{id: id, rig: r})
	}
	r.l2.RegisterChild(l2Child0)
	r.l2.RegisterChild(l2Child1)
	return r
}

func (r *l2rig) run() {
	if !r.eng.RunUntil(1 << 40) {
		r.t.Fatal("l2rig: did not drain")
	}
}

func (r *l2rig) send(m *proto.Message) {
	r.net.Send(m)
	r.run()
}

func (r *l2rig) lastTo(id proto.NodeID, typ proto.MsgType) *proto.Message {
	msgs := r.recv[id]
	for i := len(msgs) - 1; i >= 0; i-- {
		if msgs[i].Type == typ {
			return &msgs[i]
		}
	}
	return nil
}

// fill grants the L2 a line in the given MESI state.
func (r *l2rig) fill(line memaddr.LineAddr, grant proto.MsgType, data memaddr.LineData) {
	// A child ReqV/ReqWT forces the fetch; here we trigger via ReqWT for M
	// or ReqV for S/E.
	trigger := proto.ReqV
	if grant == proto.MDataM {
		trigger = proto.ReqWT
	}
	r.send(&proto.Message{Type: trigger, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 1, Line: line, Mask: 0b1, HasData: trigger == proto.ReqWT})
	req := r.lastTo(l2L3, proto.MGetS)
	if trigger == proto.ReqWT {
		req = r.lastTo(l2L3, proto.MGetM)
	}
	if req == nil {
		r.t.Fatal("no fetch issued")
	}
	r.send(&proto.Message{Type: grant, Src: l2L3, Dst: l2Node,
		ReqID: req.ReqID, Line: line, Mask: memaddr.FullMask, HasData: true, Data: data})
}

func TestL2FwdDeferredDuringFetch(t *testing.T) {
	r := newL2Rig(t)
	// Child write forces a GetM.
	r.send(&proto.Message{Type: proto.ReqWT, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 1, Line: 0x1000, Mask: 0b1, HasData: true})
	getm := r.lastTo(l2L3, proto.MGetM)
	if getm == nil {
		t.Fatal("no GetM")
	}
	// The L3 forwards a GetS before the grant lands (grant in flight from
	// an old owner): the L2 must defer, not respond from a stale frame.
	r.send(&proto.Message{Type: proto.MFwdGetS, Src: l2L3, Dst: l2Node,
		Requestor: l2Peer, ReqID: 50, Line: 0x1000, Mask: memaddr.FullMask})
	if r.lastTo(l2Peer, proto.MDataS) != nil {
		t.Fatal("forward answered before the grant")
	}
	// Grant arrives: the child write applies, then the deferred forward
	// is served with the fresh data.
	r.send(&proto.Message{Type: proto.MDataM, Src: l2L3, Dst: l2Node,
		ReqID: getm.ReqID, Line: 0x1000, Mask: memaddr.FullMask, HasData: true})
	rsp := r.lastTo(l2Peer, proto.MDataS)
	if rsp == nil {
		t.Fatal("deferred forward never served")
	}
	if r.lastTo(l2L3, proto.MWBData) == nil {
		t.Fatal("L3 never unblocked")
	}
	if r.lastTo(l2Child0, proto.RspWT) == nil {
		t.Fatal("child write never acked")
	}
}

func TestL2FwdRevokesChildrenFirst(t *testing.T) {
	r := newL2Rig(t)
	var d memaddr.LineData
	r.fill(0x2000, proto.MDataM, d)
	// Child 1 takes word ownership.
	r.send(&proto.Message{Type: proto.ReqO, Src: l2Child1, Dst: l2Node,
		Requestor: l2Child1, ReqID: 2, Line: 0x2000, Mask: 0b10})
	if r.lastTo(l2Child1, proto.RspO) == nil {
		t.Fatal("child grant failed")
	}
	// L3 FwdGetM: the L2 must revoke child 1 before responding.
	r.send(&proto.Message{Type: proto.MFwdGetM, Src: l2L3, Dst: l2Node,
		Requestor: l2Peer, ReqID: 51, Line: 0x2000, Mask: memaddr.FullMask})
	rvk := r.lastTo(l2Child1, proto.RvkO)
	if rvk == nil {
		t.Fatal("child not revoked")
	}
	if r.lastTo(l2Peer, proto.MDataM) != nil {
		t.Fatal("responded before the child wrote back")
	}
	// Child writes back (echoing the probe's identity); the forward
	// completes with the child's data.
	var cd memaddr.LineData
	cd[1] = 99
	r.send(&proto.Message{Type: proto.RspRvkO, Src: l2Child1, Dst: l2Node,
		Requestor: rvk.Requestor, ReqID: rvk.ReqID,
		Line: 0x2000, Mask: 0b10, HasData: true, Data: cd})
	rsp := r.lastTo(l2Peer, proto.MDataM)
	if rsp == nil || rsp.Data[1] != 99 {
		t.Fatalf("forward lost child data: %v", rsp)
	}
}

func TestL2ChildWBSatisfiesRevocation(t *testing.T) {
	r := newL2Rig(t)
	var d memaddr.LineData
	r.fill(0x3000, proto.MDataM, d)
	r.send(&proto.Message{Type: proto.ReqO, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 3, Line: 0x3000, Mask: 0b1})
	// An atomic from child 1 needs the word home: RvkO goes to child 0.
	r.send(&proto.Message{Type: proto.ReqWTData, Src: l2Child1, Dst: l2Node,
		Requestor: l2Child1, ReqID: 4, Line: 0x3000, Mask: 0b1,
		Atomic: proto.AtomicFetchAdd, Operand: 1})
	if r.lastTo(l2Child0, proto.RvkO) == nil {
		t.Fatal("no revocation")
	}
	// Child 0 answers with a racing ReqWB instead of RspRvkO (§III-C2).
	var cd memaddr.LineData
	cd[0] = 7
	r.send(&proto.Message{Type: proto.ReqWB, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 5, Line: 0x3000, Mask: 0b1, HasData: true, Data: cd})
	rsp := r.lastTo(l2Child1, proto.RspWTData)
	if rsp == nil || rsp.Data[0] != 7 {
		t.Fatalf("atomic did not complete off the racing write-back: %v", rsp)
	}
	if r.lastTo(l2Child0, proto.RspWB) == nil {
		t.Fatal("write-back not acked")
	}
}

func TestL2InvDuringFetchSetsInvalidated(t *testing.T) {
	r := newL2Rig(t)
	var d memaddr.LineData
	r.fill(0x4000, proto.MDataS, d)
	// Upgrade in flight (child write on an S line).
	r.send(&proto.Message{Type: proto.ReqWT, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 6, Line: 0x4000, Mask: 0b1, HasData: true})
	getm := r.lastTo(l2L3, proto.MGetM)
	if getm == nil {
		t.Fatal("no upgrade GetM")
	}
	// A racing writer invalidates our S copy.
	r.send(&proto.Message{Type: proto.MInv, Src: l2L3, Dst: l2Node,
		Line: 0x4000, Mask: memaddr.FullMask})
	if r.lastTo(l2L3, proto.MInvAck) == nil {
		t.Fatal("Inv not acked")
	}
	// The grant then carries data (the directory saw us leave the sharer
	// set) and the write completes.
	var nd memaddr.LineData
	nd[5] = 3
	r.send(&proto.Message{Type: proto.MDataM, Src: l2L3, Dst: l2Node,
		ReqID: getm.ReqID, Line: 0x4000, Mask: memaddr.FullMask, HasData: true, Data: nd})
	if r.lastTo(l2Child0, proto.RspWT) == nil {
		t.Fatal("upgrade write lost")
	}
	// Fresh data visible to child reads.
	r.send(&proto.Message{Type: proto.ReqV, Src: l2Child1, Dst: l2Node,
		Requestor: l2Child1, ReqID: 7, Line: 0x4000, Mask: 0b100000})
	rsp := r.lastTo(l2Child1, proto.RspV)
	if rsp == nil || rsp.Data[5] != 3 {
		t.Fatalf("post-upgrade data stale: %v", rsp)
	}
}

func TestL2RecallWritesBackToL3(t *testing.T) {
	r := newL2Rig(t)
	var d memaddr.LineData
	d[1] = 42 // word 0 is clobbered by fill's triggering write
	r.fill(0x5000, proto.MDataM, d)
	// Recall (L3 eviction): Requestor == Src == L3.
	r.send(&proto.Message{Type: proto.MFwdGetM, Src: l2L3, Dst: l2Node,
		Requestor: l2L3, Line: 0x5000, Mask: memaddr.FullMask})
	wb := r.lastTo(l2L3, proto.MWBData)
	if wb == nil || !wb.HasData || wb.Data[1] != 42 {
		t.Fatalf("recall response wrong: %v", wb)
	}
}

func TestL2QueuesChildRequestsBehindRevocation(t *testing.T) {
	r := newL2Rig(t)
	var d memaddr.LineData
	r.fill(0x6000, proto.MDataM, d)
	r.send(&proto.Message{Type: proto.ReqO, Src: l2Child0, Dst: l2Node,
		Requestor: l2Child0, ReqID: 8, Line: 0x6000, Mask: 0b1})
	// Atomic triggers revocation; a second child read arrives while the
	// revocation is pending and must queue, then drain in order.
	r.net.Send(&proto.Message{Type: proto.ReqWTData, Src: l2Child1, Dst: l2Node,
		Requestor: l2Child1, ReqID: 9, Line: 0x6000, Mask: 0b1,
		Atomic: proto.AtomicFetchAdd, Operand: 1})
	r.net.Send(&proto.Message{Type: proto.ReqV, Src: l2Child1, Dst: l2Node,
		Requestor: l2Child1, ReqID: 10, Line: 0x6000, Mask: 0b1})
	r.run()
	if r.lastTo(l2Child1, proto.RspV) != nil {
		t.Fatal("queued read served before revocation completed")
	}
	rvk := r.lastTo(l2Child0, proto.RvkO)
	if rvk == nil {
		t.Fatal("child not revoked")
	}
	var cd memaddr.LineData
	cd[0] = 5
	r.send(&proto.Message{Type: proto.RspRvkO, Src: l2Child0, Dst: l2Node,
		Requestor: rvk.Requestor, ReqID: rvk.ReqID,
		Line: 0x6000, Mask: 0b1, HasData: true, Data: cd})
	atomicRsp := r.lastTo(l2Child1, proto.RspWTData)
	readRsp := r.lastTo(l2Child1, proto.RspV)
	if atomicRsp == nil || atomicRsp.Data[0] != 5 {
		t.Fatalf("atomic wrong: %v", atomicRsp)
	}
	if readRsp == nil || readRsp.Data[0] != 6 {
		t.Fatalf("queued read must see the post-atomic value: %v", readRsp)
	}
}
