package hmesi

import (
	"spandex/internal/cache"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/proto"
)

// allocate reserves a frame for a missing line, evicting asynchronously if
// needed, then sends the fetch request recorded in the transaction.
func (l *GPUL2) allocate(line memaddr.LineAddr, wantM bool) {
	victim := l.array.VictimWhere(line, func(e *cache.Entry[l2Line]) bool {
		_, busy := l.txns[e.Line]
		return !busy
	})
	if victim == nil {
		l.eng.Schedule(victimRetry, func() { l.allocate(line, wantM) })
		return
	}
	install := func() {
		frame := l.array.Victim(line)
		if frame.Valid {
			panic("hmesi: reserved frame stolen")
		}
		l.array.Install(frame, line)
		frame.State.state = mesi.I
		l.sendFetch(line, wantM)
	}
	if !victim.Valid {
		install()
		return
	}
	l.evictL2(victim, install)
}

func (l *GPUL2) sendFetch(line memaddr.LineAddr, wantM bool) {
	typ := proto.MGetS
	if wantM {
		typ = proto.MGetM
		l.st.Inc("gpul2.getm", 1)
	} else {
		l.st.Inc("gpul2.gets", 1)
	}
	l.sendV(proto.Message{
		Type: typ, Dst: l.cfg.ParentID, Requestor: l.ID,
		ReqID: l.nextReq(), Line: line, Mask: memaddr.FullMask,
	})
}

// evictL2 frees a victim: child-owned words come home first, then M/E
// lines write back to the L3.
func (l *GPUL2) evictL2(victim *cache.Entry[l2Line], resume func()) {
	line := victim.Line
	l.st.Inc("gpul2.evict", 1)
	finish := func() {
		e := l.array.Peek(line)
		if e == nil {
			panic("hmesi: victim vanished")
		}
		if e.State.state == mesi.M || e.State.state == mesi.E {
			l.wbs[line] = &pendingL2WB{data: e.State.data, dirty: e.State.state == mesi.M}
			l.sendV(proto.Message{
				Type: proto.MPutM, Dst: l.cfg.ParentID, Requestor: l.ID,
				ReqID: l.nextReq(), Line: line, Mask: memaddr.FullMask,
				HasData: true, Data: e.State.data,
			})
		}
		l.array.Invalidate(line)
		resume()
	}
	if victim.State.childMask != 0 {
		l.revokeChildren(victim, victim.State.childMask, nil, finish)
		return
	}
	finish()
}

// handleGrant completes an outstanding L3 fetch.
func (l *GPUL2) handleGrant(m *proto.Message, grant mesi.State) {
	t, ok := l.txns[m.Line]
	if !ok || t.kind != l2Fetch {
		panic("hmesi: grant without fetch txn")
	}
	e := l.array.Lookup(m.Line)
	if e == nil {
		panic("hmesi: grant for unreserved line")
	}
	if m.HasData {
		e.State.data = m.Data
	} else if t.invalidated {
		panic("hmesi: data-less grant after invalidation")
	}
	e.State.state = grant
	delete(l.txns, m.Line)
	// The child requests that triggered this fetch were serialized here
	// first: apply them while we hold the grant, then serve the L3
	// forwards that arrived mid-flight (they downgrade the line after our
	// writes, exactly as the MESI L1 orders its own case-2 epilogue).
	l.drain(t)
	for i := range t.deferred {
		l.redispatch(&t.deferred[i])
	}
	l.freeTxn(t)
}

func (l *GPUL2) handleL3Inv(m *proto.Message) {
	if t, ok := l.txns[m.Line]; ok && t.kind == l2Fetch {
		t.invalidated = true
		t.wasS = false
	}
	if e := l.array.Peek(m.Line); e != nil && e.State.state == mesi.S {
		// Shared lines never hold child-owned words; drop in place. The
		// GPU L1s' own stale copies are covered by their self-invalidation
		// at synchronization (DRF), so no probes go further down.
		e.State.state = mesi.I
	}
	l.st.Inc("gpul2.invalidated", 1)
	l.sendV(proto.Message{
		Type: proto.MInvAck, Dst: m.Src, Requestor: l.ID,
		ReqID: m.ReqID, Line: m.Line, Mask: m.Mask,
	})
}

func (l *GPUL2) handleL3Fwd(m *proto.Message) {
	if wb, ok := l.wbs[m.Line]; ok {
		l.respondL3FwdFrom(m, wb.data, nil)
		return
	}
	if t, ok := l.txns[m.Line]; ok {
		switch t.kind {
		case l2Fetch:
			// Grant in flight: defer until data arrives (§III-C1).
			t.deferred = append(t.deferred, *m)
		case l2Rvk, l2Evict:
			// Mid-revocation or eviction: serialize behind it.
			t.waiting = append(t.waiting, *m)
		}
		return
	}
	e := l.array.Peek(m.Line)
	if e == nil || (e.State.state != mesi.M && e.State.state != mesi.E) {
		panic("hmesi: L3 forward for line not owned at L2")
	}
	if e.State.childMask != 0 {
		cp := *m
		l.revokeChildren(e, e.State.childMask, nil, func() { l.respondL3Fwd(&cp) })
		return
	}
	l.respondL3Fwd(m)
}

func (l *GPUL2) respondL3Fwd(m *proto.Message) {
	e := l.array.Peek(m.Line)
	if e == nil {
		panic("hmesi: forward response for absent line")
	}
	l.respondL3FwdFrom(m, e.State.data, e)
}

func (l *GPUL2) respondL3FwdFrom(m *proto.Message, data memaddr.LineData, e *cache.Entry[l2Line]) {
	switch m.Type {
	case proto.MFwdGetS:
		if e != nil {
			e.State.state = mesi.S
		}
		l.sendV(proto.Message{
			Type: proto.MDataS, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
			HasData: true, Data: data,
		})
		l.sendV(proto.Message{
			Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
			HasData: true, Data: data,
		})
	case proto.MFwdGetM:
		if e != nil {
			l.array.Invalidate(m.Line)
		}
		if m.Requestor == m.Src {
			// Recall from the directory (L3 eviction).
			l.sendV(proto.Message{
				Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
				ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
				HasData: true, Data: data,
			})
			return
		}
		l.sendV(proto.Message{
			Type: proto.MDataM, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
			HasData: true, Data: data,
		})
		l.sendV(proto.Message{
			Type: proto.MWBData, Dst: m.Src, Requestor: l.ID,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		})
	default:
		panic("hmesi: bad forward type")
	}
}

// redispatch routes a drained message to the right handler family.
func (l *GPUL2) redispatch(m *proto.Message) {
	switch m.Type {
	case proto.MFwdGetS, proto.MFwdGetM:
		l.handleL3Fwd(m)
	case proto.MInv:
		l.handleL3Inv(m)
	case proto.ReqV, proto.ReqWT, proto.ReqWTData, proto.ReqO, proto.ReqOData:
		if t, ok := l.txns[m.Line]; ok {
			t.waiting = append(t.waiting, *m)
			return
		}
		l.process(m)
	default:
		panic("hmesi: GPU L2 cannot redispatch " + m.Type.String())
	}
}
