package hmesi

import (
	"testing"

	"spandex/internal/denovo"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/gpucoh"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// hrig builds the full hierarchical stack: CPU MESI L1s + GPU L1s (GPU
// coherence or DeNovo) under a GPU L2, all under the MESI L3 directory.
type hrig struct {
	t    *testing.T
	eng  *sim.Engine
	st   *stats.Stats
	net  *noc.Network
	dir  *Directory
	l2   *GPUL2
	mem  *dram.Memory
	cpus []*mesi.L1
	gpus []device.L1Cache
}

func newHRig(t *testing.T, nCPU, nGPU int, gpuDeNovo bool) *hrig {
	r := &hrig{t: t, eng: sim.New(), st: stats.New()}
	// layout: [cpus][gpus][l2][dir][mem]
	n := nCPU + nGPU
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), n+3)
	l2ID := proto.NodeID(n)
	dirID := proto.NodeID(n + 1)
	memID := proto.NodeID(n + 2)
	r.dir = NewDirectory(dirID, memID, r.eng, r.net, r.st,
		DirConfig{SizeBytes: 256 * 1024, Ways: 16, AccessLatency: 24 * sim.CPUCycle})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	r.l2 = NewGPUL2(l2ID, r.eng, r.net, r.st,
		L2Config{SizeBytes: 128 * 1024, Ways: 16, AccessLatency: 12 * sim.CPUCycle, ParentID: dirID})
	r.dir.RegisterDevice(l2ID)
	for i := 0; i < nCPU; i++ {
		id := proto.NodeID(i)
		l1 := mesi.New(id, r.eng, r.net.PortFor(id), r.st, mesi.DefaultConfig(dirID))
		r.net.Register(id, l1)
		r.dir.RegisterDevice(id)
		r.cpus = append(r.cpus, l1)
	}
	for i := 0; i < nGPU; i++ {
		id := proto.NodeID(nCPU + i)
		if gpuDeNovo {
			l1 := denovo.New(id, r.eng, r.net.PortFor(id), r.st, denovo.DefaultConfig(l2ID, true))
			r.net.Register(id, l1)
			r.gpus = append(r.gpus, l1)
		} else {
			l1 := gpucoh.New(id, r.eng, r.net.PortFor(id), r.st, gpucoh.DefaultConfig(l2ID))
			r.net.Register(id, l1)
			r.gpus = append(r.gpus, l1)
		}
		r.l2.RegisterChild(id)
	}
	return r
}

func (r *hrig) run() {
	if !r.eng.RunUntil(1 << 42) {
		r.t.Fatal("hrig: did not drain")
	}
}

func (r *hrig) access(l1 device.L1Cache, op device.Op) uint32 {
	var got uint32
	ok := false
	for tries := 0; ; tries++ {
		if l1.Access(op, func(v uint32) { got = v; ok = true }) {
			break
		}
		if !r.eng.Step() || tries > 1<<20 {
			r.t.Fatal("access rejected forever")
		}
	}
	r.run()
	if !ok {
		r.t.Fatalf("%v never completed", op.Kind)
	}
	return got
}

func (r *hrig) load(l1 device.L1Cache, a memaddr.Addr) uint32 {
	return r.access(l1, device.Op{Kind: device.OpLoad, Addr: a})
}

// store buffers a write and flushes it to global visibility.
func (r *hrig) store(l1 device.L1Cache, a memaddr.Addr, v uint32) {
	r.access(l1, device.Op{Kind: device.OpStore, Addr: a, Value: v})
	l1.Flush(func() {})
	r.run()
}
func (r *hrig) rmw(l1 device.L1Cache, a memaddr.Addr, k proto.AtomicKind, v uint32) uint32 {
	return r.access(l1, device.Op{Kind: device.OpAtomic, Addr: a, Atomic: k, Value: v})
}

func TestGPULoadThroughHierarchy(t *testing.T) {
	r := newHRig(t, 1, 2, false)
	var init memaddr.LineData
	init[3] = 99
	r.mem.Poke(0x1000, init)
	if v := r.load(r.gpus[0], 0x100c); v != 99 {
		t.Fatalf("v = %d", v)
	}
	// Sibling L1 load: filtered at the L2 (no extra L3 request).
	gets := r.st.Get("gpul2.gets")
	if v := r.load(r.gpus[1], 0x100c); v != 99 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("gpul2.gets") != gets {
		t.Fatal("sibling miss was not filtered by the L2")
	}
}

func TestCPUGPUCommunicationIndirection(t *testing.T) {
	r := newHRig(t, 1, 1, false)
	cpu, gpu := r.cpus[0], r.gpus[0]
	r.store(cpu, 0x2000, 5)
	// GPU read: L1 miss → L2 miss → L3 → FwdGetS to the CPU owner.
	if v := r.load(gpu, 0x2000); v != 5 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("dir.fwd_gets") == 0 {
		t.Fatal("no forward to CPU owner")
	}
	// GPU write-through: needs M at L2 → invalidates CPU sharer.
	r.store(gpu, 0x2004, 6)
	r.run()
	if s := cpu.State(0x2000); s != mesi.I {
		t.Fatalf("CPU state = %v, want I after GPU write", s)
	}
	if v := r.load(cpu, 0x2004); v != 6 {
		t.Fatalf("CPU read-back = %d", v)
	}
	if v := r.load(cpu, 0x2000); v != 5 {
		t.Fatal("GPU write clobbered CPU word")
	}
}

func TestGPUAtomicsAtL2(t *testing.T) {
	r := newHRig(t, 0, 2, false)
	a := r.rmw(r.gpus[0], 0x3000, proto.AtomicFetchAdd, 1)
	b := r.rmw(r.gpus[1], 0x3000, proto.AtomicFetchAdd, 1)
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
	if r.st.Get("gpul2.atomics") != 2 {
		t.Fatalf("L2 atomics = %d", r.st.Get("gpul2.atomics"))
	}
}

func TestCPUGPUAtomicPingPong(t *testing.T) {
	r := newHRig(t, 1, 1, false)
	for i := 0; i < 8; i++ {
		var old uint32
		if i%2 == 0 {
			old = r.rmw(r.cpus[0], 0x4000, proto.AtomicFetchAdd, 1)
		} else {
			old = r.rmw(r.gpus[0], 0x4000, proto.AtomicFetchAdd, 1)
		}
		if old != uint32(i) {
			t.Fatalf("iter %d: old = %d", i, old)
		}
	}
	// Each handoff goes through the L3 (FwdGetM in one direction or the
	// other) — the hierarchical synchronization cost.
	if r.st.Get("dir.fwd_getm") < 4 {
		t.Fatalf("fwd_getm = %d", r.st.Get("dir.fwd_getm"))
	}
}

func TestDeNovoChildrenUnderL2(t *testing.T) {
	r := newHRig(t, 1, 2, true)
	g0, g1 := r.gpus[0], r.gpus[1]
	r.store(g0, 0x5000, 11)
	r.store(g1, 0x5004, 22)
	r.run()
	// Both words child-owned at the L2.
	owned := r.l2.ProbeOwned()
	if owned[0x5000] != 0b11 {
		t.Fatalf("child-owned = %#x", owned[0x5000])
	}
	// Sibling reads each other's word through L2 forwards.
	if v := r.load(g0, 0x5004); v != 22 {
		t.Fatalf("cross-read = %d", v)
	}
	// CPU read: L3 FwdGetS → L2 must revoke children, then serve.
	if v := r.load(r.cpus[0], 0x5000); v != 11 {
		t.Fatalf("cpu read = %d", v)
	}
	if v := r.load(r.cpus[0], 0x5004); v != 22 {
		t.Fatalf("cpu read = %d", v)
	}
	if r.st.Get("gpul2.rvk") == 0 {
		t.Fatal("no child revocation happened")
	}
	if r.l2.ProbeOwned()[0x5000] != 0 {
		t.Fatal("children still own after downgrade")
	}
}

func TestCPUWriteInvalidatesL2(t *testing.T) {
	r := newHRig(t, 1, 1, false)
	gpu, cpu := r.gpus[0], r.cpus[0]
	if v := r.load(gpu, 0x6000); v != 0 {
		t.Fatal("bad init")
	}
	r.store(cpu, 0x6000, 7)
	r.run()
	// GPU L1 still holds a stale copy until it self-invalidates (DRF).
	gpu.SelfInvalidate()
	if v := r.load(gpu, 0x6000); v != 7 {
		t.Fatalf("post-sync read = %d", v)
	}
}

func TestL2EvictionWithChildren(t *testing.T) {
	r := newHRig(t, 0, 1, true)
	gpu := r.gpus[0]
	// L2: 128KB/16-way = 128 sets; conflict stride = 128*64 = 8KB.
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x100000 + i*128*64) }
	for i := 0; i < 20; i++ {
		r.store(gpu, conflict(i), uint32(i+1))
	}
	r.run()
	if r.st.Get("gpul2.evict") == 0 {
		t.Fatal("no L2 eviction")
	}
	for i := 0; i < 20; i++ {
		if v := r.load(gpu, conflict(i)); v != uint32(i+1) {
			t.Fatalf("line %d = %d", i, v)
		}
	}
}

func TestHierarchicalStress(t *testing.T) {
	r := newHRig(t, 2, 2, true)
	total := 0
	all := []device.L1Cache{r.cpus[0], r.cpus[1], r.gpus[0], r.gpus[1]}
	for round := 0; round < 6; round++ {
		for _, d := range all {
			for !d.Access(device.Op{Kind: device.OpAtomic, Addr: 0x7000,
				Atomic: proto.AtomicFetchAdd, Value: 1}, func(uint32) {}) {
				if !r.eng.Step() {
					t.Fatal("stuck")
				}
			}
			total++
		}
		for i := 0; i < 80; i++ {
			r.eng.Step()
		}
	}
	r.run()
	if v := r.load(r.cpus[0], 0x7000); v != uint32(total) {
		t.Fatalf("counter = %d, want %d", v, total)
	}
}
