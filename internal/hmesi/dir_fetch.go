package hmesi

import (
	"spandex/internal/cache"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

const victimRetry = 8 * sim.CPUCycle

func (d *Directory) startFetch(m *proto.Message) {
	t := d.newTxn(dirFetch, m.Line)
	t.waiting = append(t.waiting, *m)
	d.txns[m.Line] = t
	d.st.Inc("dir.miss", 1)
	d.allocate(m.Line)
}

func (d *Directory) allocate(line memaddr.LineAddr) {
	victim := d.array.VictimWhere(line, func(e *cache.Entry[dirLine]) bool {
		_, busy := d.txns[e.Line]
		return !busy
	})
	if victim == nil {
		d.eng.Schedule(victimRetry, func() { d.allocate(line) })
		return
	}
	if !victim.Valid {
		d.installAndRead(victim, line)
		return
	}
	d.evict(victim, func() { d.installAndRead(victim, line) })
}

// evict recalls the owner or invalidates sharers, writes dirty data to
// memory, and frees the frame.
func (d *Directory) evict(victim *cache.Entry[dirLine], resume func()) {
	st := &victim.State
	line := victim.Line
	d.st.Inc("dir.evict", 1)

	finish := func() {
		e := d.array.Peek(line)
		if e == nil {
			panic("hmesi: victim vanished")
		}
		if e.State.dirty {
			d.sendV(proto.Message{
				Type: proto.MemWrite, Dst: d.MemID, Requestor: d.ID,
				Line: line, Mask: memaddr.FullMask, HasData: true, Data: e.State.data,
			})
		}
		d.array.Invalidate(line)
		resume()
	}

	if st.owner != noOwner {
		// Recall: FwdGetM with ourselves as requestor; the owner answers
		// with MWBData carrying the line.
		d.sendV(proto.Message{
			Type: proto.MFwdGetM, Dst: d.devices[st.owner],
			Requestor: d.ID, Line: line, Mask: memaddr.FullMask,
		})
		t := d.newTxn(dirEvict, line)
		t.resume = finish
		d.txns[line] = t
		return
	}
	if st.sharers != 0 {
		t := d.newTxn(dirEvict, line)
		t.resume = finish
		for i := 0; i < len(d.devices); i++ {
			if st.sharers&(1<<i) == 0 {
				continue
			}
			t.pendingAcks++
			d.sendV(proto.Message{
				Type: proto.MInv, Dst: d.devices[i], Requestor: d.devices[i],
				Line: line, Mask: memaddr.FullMask,
			})
		}
		st.sharers = 0
		d.txns[line] = t
		return
	}
	finish()
}

func (d *Directory) installAndRead(frame *cache.Entry[dirLine], line memaddr.LineAddr) {
	d.array.Install(frame, line)
	frame.State.fetching = true
	frame.State.owner = noOwner
	d.sendV(proto.Message{
		Type: proto.MemRead, Dst: d.MemID, Requestor: d.ID,
		Line: line, Mask: memaddr.FullMask,
	})
}

func (d *Directory) handleMemRsp(m *proto.Message) {
	e := d.array.Peek(m.Line)
	if e == nil || !e.State.fetching {
		panic("hmesi: memory response for non-fetching line")
	}
	e.State.data = m.Data
	e.State.fetching = false
	t, ok := d.txns[m.Line]
	if !ok || t.kind != dirFetch {
		panic("hmesi: memory response without fetch txn")
	}
	delete(d.txns, m.Line)
	d.drain(t)
	d.freeTxn(t)
}
