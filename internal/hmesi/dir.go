// Package hmesi implements the hierarchical MESI baseline the paper
// evaluates Spandex against (§II-D, §IV-A): a line-granularity MESI L3
// directory that caches data and coherence state for CPU MESI L1s and an
// intermediate GPU L2, which in turn filters requests from the GPU L1s.
// CPU↔GPU communication pays hierarchical indirection — through the GPU L2
// and the L3 — and the L3's transient blocking states serialize conflicting
// requests; these are exactly the overheads the evaluation measures.
package hmesi

import (
	"fmt"

	"spandex/internal/cache"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

const noOwner = -1

// dirLine is per-line directory + data state at the L3.
type dirLine struct {
	owner    int8 // device index of the M/E owner, or noOwner
	sharers  uint64
	fetching bool
	data     memaddr.LineData
	dirty    bool
}

type dirTxnKind uint8

const (
	dirFetch dirTxnKind = iota
	dirInv
	dirFwd
	dirEvict
)

type dirTxn struct {
	kind        dirTxnKind
	line        memaddr.LineAddr
	waiting     []proto.Message
	origin      proto.Message
	pendingAcks int
	resume      func()
}

// DirConfig parameterizes the L3 directory cache.
type DirConfig struct {
	SizeBytes     int
	Ways          int
	AccessLatency sim.Time
}

// Directory is the hierarchical baseline's MESI LLC (L3).
type Directory struct {
	ID    proto.NodeID
	MemID proto.NodeID

	eng *sim.Engine
	net *noc.Network
	st  *stats.Stats
	cfg DirConfig

	array *cache.Array[dirLine]
	txns  map[memaddr.LineAddr]*dirTxn

	devices []proto.NodeID

	// out is the sendV scratch slot (see sendV).
	out    proto.Message
	devIdx map[proto.NodeID]int

	// txnPool recycles completed dirTxns; waiting queues keep their
	// backing arrays, so blocking a line allocates nothing steady-state.
	txnPool sim.Pool[dirTxn]

	// dispq defers each delivered message by AccessLatency into dispatch
	// (pooled; see noc.DelayQueue).
	dispq *noc.DelayQueue
}

// NewDirectory creates the L3 endpoint.
func NewDirectory(id, memID proto.NodeID, eng *sim.Engine, net *noc.Network, st *stats.Stats, cfg DirConfig) *Directory {
	d := &Directory{
		ID: id, MemID: memID, eng: eng, net: net, st: st, cfg: cfg,
		array:  cache.NewArray[dirLine](cfg.SizeBytes, cfg.Ways),
		txns:   make(map[memaddr.LineAddr]*dirTxn),
		devIdx: make(map[proto.NodeID]int),
	}
	d.dispq = noc.NewDelayQueue(eng, cfg.AccessLatency, d.dispatch)
	net.Register(id, d)
	return d
}

// RegisterDevice declares a client (CPU L1 or GPU L2).
func (d *Directory) RegisterDevice(id proto.NodeID) {
	if _, ok := d.devIdx[id]; ok {
		panic("hmesi: device registered twice")
	}
	d.devIdx[id] = len(d.devices)
	d.devices = append(d.devices, id)
}

// newTxn returns a reset pooled transaction for line (waiting keeps its
// previous backing array, truncated).
func (d *Directory) newTxn(kind dirTxnKind, line memaddr.LineAddr) *dirTxn {
	t := d.txnPool.Get()
	*t = dirTxn{kind: kind, line: line, waiting: t.waiting[:0]}
	return t
}

// freeTxn recycles a completed transaction; touching t afterwards is a
// use-after-free.
func (d *Directory) freeTxn(t *dirTxn) { d.txnPool.Put(t) }

func (d *Directory) dev(id proto.NodeID) int {
	i, ok := d.devIdx[id]
	if !ok {
		panic(fmt.Sprintf("hmesi: unregistered device %d", id))
	}
	return i
}

// HandleMessage implements noc.Handler.
func (d *Directory) HandleMessage(m *proto.Message) {
	d.dispq.Post(m)
}

func (d *Directory) dispatch(m *proto.Message) {
	// Flow facts (spandex-flow): child requests queue behind a busy line;
	// the open transaction resolves through memory fills, invalidation
	// acks and owner write-backs, all of which are processed immediately.
	//
	//spandex:flow queue MGetS,MGetM
	//spandex:flow wait busy awaits=MemReadRsp,MInvAck,MWBData via=MemRead,MInv,MFwdGetS,MFwdGetM opener=any
	switch m.Type {
	case proto.MWBData:
		d.handleWBData(m)
		return
	case proto.MInvAck:
		d.handleInvAck(m)
		return
	case proto.MemReadRsp:
		d.handleMemRsp(m)
		return
	case proto.MPutM:
		d.handlePutM(m)
		return
	case proto.MGetS, proto.MGetM:
		// Child requests fall through to the blocked-line queue below.
	default:
		panic("hmesi: directory cannot handle " + m.Type.String())
	}
	if t, ok := d.txns[m.Line]; ok {
		t.waiting = append(t.waiting, *m)
		d.st.Inc("dir.queued", 1)
		return
	}
	e := d.array.Lookup(m.Line)
	if e == nil {
		d.startFetch(m)
		return
	}
	d.process(e, m)
}

func (d *Directory) process(e *cache.Entry[dirLine], m *proto.Message) {
	switch m.Type {
	case proto.MGetS:
		d.handleGetS(e, m)
	case proto.MGetM:
		d.handleGetM(e, m)
	default:
		panic("hmesi: directory cannot handle " + m.Type.String())
	}
}

func (d *Directory) send(m *proto.Message) {
	m.Src = d.ID
	d.net.Send(m)
}

// sendV transmits a by-value message. Every network/port Send copies the
// message synchronously before anything downstream can run, so a single
// scratch slot per sender is safe and avoids a heap allocation per send
// (the &proto.Message{...} literal idiom escapes through the Port
// interface).
func (d *Directory) sendV(m proto.Message) {
	d.out = m
	d.send(&d.out)
}

func (d *Directory) handleGetS(e *cache.Entry[dirLine], m *proto.Message) {
	st := &e.State
	reqIdx := d.dev(m.Requestor)
	if st.owner != noOwner {
		// Blocking forward: the owner supplies data to the requestor and
		// writes back here (paper §II-A: transient blocking states).
		d.st.Inc("dir.fwd_gets", 1)
		d.sendV(proto.Message{
			Type: proto.MFwdGetS, Dst: d.devices[st.owner],
			Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask,
		})
		t := d.newTxn(dirFwd, m.Line)
		t.origin = *m
		d.txns[m.Line] = t
		return
	}
	if st.sharers == 0 {
		// Exclusive optimization: no sharer anywhere → grant E.
		st.owner = int8(reqIdx)
		d.sendV(proto.Message{
			Type: proto.MDataE, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
			HasData: true, Data: st.data,
		})
		return
	}
	st.sharers |= 1 << reqIdx
	d.sendV(proto.Message{
		Type: proto.MDataS, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		HasData: true, Data: st.data,
	})
}

func (d *Directory) handleGetM(e *cache.Entry[dirLine], m *proto.Message) {
	st := &e.State
	reqIdx := d.dev(m.Requestor)
	if st.owner != noOwner {
		if int(st.owner) == reqIdx {
			// Race: the owner's clean-evict PutM crossed with this GetM;
			// treat like a miss from Invalid (grant fresh ownership).
			st.owner = int8(reqIdx)
			d.grantM(m, e)
			return
		}
		d.st.Inc("dir.fwd_getm", 1)
		d.sendV(proto.Message{
			Type: proto.MFwdGetM, Dst: d.devices[st.owner],
			Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask,
		})
		t := d.newTxn(dirFwd, m.Line)
		t.origin = *m
		d.txns[m.Line] = t
		return
	}
	remote := st.sharers &^ (1 << reqIdx)
	if remote != 0 {
		t := d.newTxn(dirInv, m.Line)
		t.origin = *m
		for i := 0; i < len(d.devices); i++ {
			if remote&(1<<i) == 0 {
				continue
			}
			t.pendingAcks++
			d.sendV(proto.Message{
				Type: proto.MInv, Dst: d.devices[i], Requestor: d.devices[i],
				Line: m.Line, Mask: memaddr.FullMask,
			})
		}
		st.sharers = 0
		d.txns[m.Line] = t
		d.st.Inc("dir.blocked_inv", 1)
		return
	}
	st.sharers = 0
	st.owner = int8(reqIdx)
	d.grantM(m, e)
}

// grantM sends the Modified grant, always carrying data. A data-less
// upgrade grant would only be sound if a set sharer bit guaranteed the
// requestor still holds the line, but L1s drop Shared lines silently, so
// the sharer list over-approximates: an upgrade granted against a stale
// bit would leave the requestor assembling the line from a zero-filled
// frame and later writing those zeros back over memory.
func (d *Directory) grantM(m *proto.Message, e *cache.Entry[dirLine]) {
	d.sendV(proto.Message{
		Type: proto.MDataM, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		HasData: true, Data: e.State.data,
	})
}

func (d *Directory) handlePutM(m *proto.Message) {
	e := d.array.Peek(m.Line)
	senderIdx := int8(d.dev(m.Src))
	if e != nil && e.State.owner == senderIdx {
		if m.HasData {
			e.State.data = m.Data
			e.State.dirty = true
		}
		e.State.owner = noOwner
	} else {
		d.st.Inc("dir.putm_nonowner", 1)
	}
	d.sendV(proto.Message{
		Type: proto.MAckWB, Dst: m.Src, Requestor: m.Src,
		ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
	})
}

// handleWBData resolves a blocking forward (or an eviction recall).
func (d *Directory) handleWBData(m *proto.Message) {
	t, ok := d.txns[m.Line]
	if !ok {
		// The owner answered a forward whose transaction a racing PutM
		// already resolved; absorb data if we still track the sender as
		// owner (we don't), else drop.
		d.st.Inc("dir.wbdata_stray", 1)
		return
	}
	e := d.array.Peek(m.Line)
	if e == nil {
		panic("hmesi: WBData for absent line")
	}
	st := &e.State
	if m.HasData {
		st.data = m.Data
		st.dirty = true
	}
	delete(d.txns, m.Line)
	switch t.kind {
	case dirFwd:
		switch t.origin.Type {
		case proto.MGetS:
			// Owner downgraded M→S and sent DataS directly; both are
			// sharers now.
			st.sharers |= 1 << d.dev(t.origin.Requestor)
			if st.owner != noOwner {
				st.sharers |= 1 << st.owner
			}
			st.owner = noOwner
		case proto.MGetM:
			st.owner = int8(d.dev(t.origin.Requestor))
		default:
			panic("hmesi: bad fwd origin")
		}
	case dirEvict:
		st.owner = noOwner
		t.resume()
	default:
		panic("hmesi: WBData for non-fwd txn")
	}
	d.drain(t)
	d.freeTxn(t)
}

func (d *Directory) handleInvAck(m *proto.Message) {
	t, ok := d.txns[m.Line]
	if !ok || (t.kind != dirInv && t.kind != dirEvict) {
		panic("hmesi: stray InvAck")
	}
	t.pendingAcks--
	if t.pendingAcks > 0 {
		return
	}
	delete(d.txns, m.Line)
	if t.kind == dirEvict {
		t.resume()
		d.drain(t)
		d.freeTxn(t)
		return
	}
	e := d.array.Peek(m.Line)
	if e == nil {
		panic("hmesi: InvAck for absent line")
	}
	e.State.owner = int8(d.dev(t.origin.Requestor))
	d.grantM(&t.origin, e)
	d.drain(t)
	d.freeTxn(t)
}

// drain replays t's waiting queue in arrival order; remainders transfer
// (by value) onto any new transaction a replay opens on the same line.
func (d *Directory) drain(t *dirTxn) {
	for i := range t.waiting {
		m := &t.waiting[i]
		if nt, ok := d.txns[t.line]; ok {
			nt.waiting = append(nt.waiting, t.waiting[i:]...)
			return
		}
		e := d.array.Lookup(t.line)
		if e == nil {
			rest := t.waiting[i:]
			d.startFetch(m)
			if nt, ok := d.txns[t.line]; ok && len(rest) > 1 {
				nt.waiting = append(nt.waiting, rest[1:]...)
			}
			return
		}
		d.process(e, m)
	}
}
