package hmesi

import (
	"fmt"

	"spandex/internal/cache"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// l2Line is the GPU L2's per-line state: a MESI state toward the L3 plus a
// word-granularity mini-directory for DeNovo child ownership.
type l2Line struct {
	state      mesi.State
	childMask  memaddr.WordMask
	childOwner [memaddr.WordsPerLine]int8
	data       memaddr.LineData
}

type l2TxnKind uint8

const (
	l2Fetch l2TxnKind = iota // MGetS/MGetM outstanding to the L3
	l2Rvk                    // revoking child owners
	l2Evict
)

type l2Txn struct {
	kind    l2TxnKind
	line    memaddr.LineAddr
	waiting []proto.Message

	// fetch state
	wantM       bool
	wasS        bool
	invalidated bool
	// deferred L3 forwards that arrived while the grant was in flight.
	deferred []proto.Message

	// revocation state
	rvkMask memaddr.WordMask
	after   func()
	// rvkID stamps this revocation's RvkO probes so a child's late
	// RspRvkO from an earlier, already-resolved revocation of the same
	// line (raced by its ReqWB) cannot corrupt a newer epoch.
	rvkID uint64

	origin *proto.Message
	resume func()
}

// L2Config parameterizes the intermediate GPU L2.
type L2Config struct {
	SizeBytes     int
	Ways          int
	AccessLatency sim.Time
	ParentID      proto.NodeID
}

// GPUL2 is the hierarchical baseline's intermediate GPU cache: it speaks
// the Spandex request vocabulary to the GPU L1s beneath it (GPU coherence
// or DeNovo) and behaves as one large MESI client toward the L3 directory.
// GPU atomics are performed here — the GPU's "backing cache" (paper §II-B)
// — which forces a full MESI ownership round-trip through the L3 whenever
// CPU and GPU synchronize: the hierarchical indirection cost the paper
// measures.
type GPUL2 struct {
	ID  proto.NodeID
	eng *sim.Engine
	net *noc.Network
	st  *stats.Stats
	cfg L2Config

	array *cache.Array[l2Line]
	txns  map[memaddr.LineAddr]*l2Txn
	wbs   map[memaddr.LineAddr]*pendingL2WB

	children []proto.NodeID
	childIdx map[proto.NodeID]int

	reqSeq uint64

	// out is the sendV scratch slot (see sendV).
	out proto.Message

	// txnPool recycles completed l2Txns; their waiting/deferred backing
	// arrays survive the round trip, so blocking a line allocates nothing
	// in the steady state.
	txnPool sim.Pool[l2Txn]

	// dispq defers each delivered message by AccessLatency into dispatch
	// (pooled; see noc.DelayQueue).
	dispq *noc.DelayQueue
}

// newTxn returns a reset pooled transaction registered for line. The
// waiting/deferred queues keep their previous backing arrays (truncated).
func (l *GPUL2) newTxn(kind l2TxnKind, line memaddr.LineAddr) *l2Txn {
	t := l.txnPool.Get()
	*t = l2Txn{kind: kind, line: line,
		waiting: t.waiting[:0], deferred: t.deferred[:0]}
	return t
}

// freeTxn recycles a completed transaction. The caller must be done with
// the waiting/deferred contents (drain and any deferred replay finished);
// touching t afterwards is a use-after-free.
func (l *GPUL2) freeTxn(t *l2Txn) { l.txnPool.Put(t) }

type pendingL2WB struct {
	data  memaddr.LineData
	dirty bool
}

// NewGPUL2 creates the intermediate cache endpoint.
func NewGPUL2(id proto.NodeID, eng *sim.Engine, net *noc.Network, st *stats.Stats, cfg L2Config) *GPUL2 {
	l := &GPUL2{
		ID: id, eng: eng, net: net, st: st, cfg: cfg,
		array:    cache.NewArray[l2Line](cfg.SizeBytes, cfg.Ways),
		txns:     make(map[memaddr.LineAddr]*l2Txn),
		wbs:      make(map[memaddr.LineAddr]*pendingL2WB),
		childIdx: make(map[proto.NodeID]int),
	}
	l.dispq = noc.NewDelayQueue(eng, cfg.AccessLatency, l.dispatch)
	net.Register(id, l)
	return l
}

// RegisterChild declares a GPU L1 beneath this L2.
func (l *GPUL2) RegisterChild(id proto.NodeID) {
	if _, ok := l.childIdx[id]; ok {
		panic("hmesi: child registered twice")
	}
	l.childIdx[id] = len(l.children)
	l.children = append(l.children, id)
}

func (l *GPUL2) child(id proto.NodeID) int {
	i, ok := l.childIdx[id]
	if !ok {
		panic(fmt.Sprintf("hmesi: unregistered child %d", id))
	}
	return i
}

func (l *GPUL2) nextReq() uint64 {
	l.reqSeq++
	return l.reqSeq
}

func (l *GPUL2) send(m *proto.Message) {
	m.Src = l.ID
	l.net.Send(m)
}

// sendV transmits a by-value message. Every network/port Send copies the
// message synchronously before anything downstream can run, so a single
// scratch slot per sender is safe and avoids a heap allocation per send
// (the &proto.Message{...} literal idiom escapes through the Port
// interface).
func (l *GPUL2) sendV(m proto.Message) {
	l.out = m
	l.send(&l.out)
}

// ProbeOwned lets system-level checkers audit child ownership records.
func (l *GPUL2) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask {
	out := make(map[memaddr.LineAddr]memaddr.WordMask)
	l.array.ForEach(func(e *cache.Entry[l2Line]) {
		if e.State.childMask != 0 {
			out[e.Line] = e.State.childMask
		}
	})
	return out
}

// HandleMessage implements noc.Handler.
func (l *GPUL2) HandleMessage(m *proto.Message) {
	l.dispq.Post(m)
}

func (l *GPUL2) dispatch(m *proto.Message) {
	// Flow facts (spandex-flow): child requests queue behind a busy line;
	// L3 forwards that land while our own grant is in flight are parked
	// on the transaction's deferred list. Both waits resolve through
	// guaranteed-sinkable completions. Forwards and revocations only
	// target the owner-capable child kind (gpucoh never takes ownership).
	//
	//spandex:flow queue ReqV,ReqWT,ReqWTData,ReqO,ReqOData,MFwdGetS,MFwdGetM
	//spandex:flow wait grant awaits=MDataS,MDataE,MDataM via=MGetS,MGetM opener=any
	//spandex:flow wait rvk awaits=RspRvkO via=RvkO opener=any
	//spandex:flow emit ReqV dst=denovo-l1
	//spandex:flow emit ReqWT dst=denovo-l1
	//spandex:flow emit ReqO dst=denovo-l1
	//spandex:flow emit ReqOData dst=denovo-l1
	//spandex:flow emit RvkO dst=denovo-l1
	switch m.Type {
	// L3-facing responses and probes.
	case proto.MDataS:
		l.handleGrant(m, mesi.S)
		return
	case proto.MDataE:
		l.handleGrant(m, mesi.E)
		return
	case proto.MDataM:
		l.handleGrant(m, mesi.M)
		return
	case proto.MAckWB:
		delete(l.wbs, m.Line)
		return
	case proto.MInv:
		l.handleL3Inv(m)
		return
	case proto.MFwdGetS, proto.MFwdGetM:
		l.handleL3Fwd(m)
		return
	// Child-facing completions that must never queue.
	case proto.ReqWB:
		l.handleChildWB(m)
		return
	case proto.RspRvkO:
		l.handleChildRvkRsp(m)
		return
	case proto.ReqV, proto.ReqWT, proto.ReqWTData, proto.ReqO, proto.ReqOData:
		// Child requests fall through to the blocked-line queue below.
	default:
		panic("hmesi: GPU L2 cannot handle " + m.Type.String())
	}

	if t, ok := l.txns[m.Line]; ok {
		t.waiting = append(t.waiting, *m)
		l.st.Inc("gpul2.queued", 1)
		return
	}
	l.process(m)
}

func (l *GPUL2) process(m *proto.Message) {
	switch m.Type {
	case proto.ReqV:
		l.handleReqV(m)
	case proto.ReqWT:
		l.handleReqWT(m)
	case proto.ReqWTData:
		l.handleReqWTData(m)
	case proto.ReqO, proto.ReqOData:
		l.handleReqOwn(m)
	default:
		panic("hmesi: GPU L2 cannot handle " + m.Type.String())
	}
}

// need ensures the line is present with (at least) the required state,
// queuing m behind a fetch/upgrade transaction when it is not. It returns
// the entry when the request may proceed now.
func (l *GPUL2) need(m *proto.Message, wantM bool) *cache.Entry[l2Line] {
	e := l.array.Lookup(m.Line)
	if e != nil {
		switch {
		case !wantM && e.State.state != mesi.I:
			return e
		case wantM && (e.State.state == mesi.M || e.State.state == mesi.E):
			e.State.state = mesi.M
			return e
		}
	}
	t := l.newTxn(l2Fetch, m.Line)
	t.wantM = wantM
	t.waiting = append(t.waiting, *m)
	l.txns[m.Line] = t
	if e != nil {
		// The frame exists (Shared upgrade, or a line the L3 invalidated
		// in place): request the missing permission directly.
		if e.State.state == mesi.S && wantM {
			t.wasS = true
		}
		l.sendFetch(m.Line, wantM)
		return nil
	}
	l.allocate(m.Line, wantM)
	return nil
}

// --- child request handlers (Spandex vocabulary) ---

func (l *GPUL2) handleReqV(m *proto.Message) {
	e := l.need(m, false)
	if e == nil {
		return
	}
	st := &e.State
	if m.Mask&^st.childMask != 0 {
		l.sendV(proto.Message{
			Type: proto.RspV, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask &^ st.childMask,
			HasData: true, Data: st.data,
		})
	}
	for _, ow := range l.childOwners(st, m.Mask&st.childMask) {
		l.sendV(proto.Message{
			Type: proto.ReqV, Dst: l.children[ow.owner],
			Requestor: m.Requestor, ReqID: m.ReqID, Line: m.Line, Mask: ow.words,
		})
	}
}

// childOwnerWords pairs a child index with its owned words in one line.
type childOwnerWords struct {
	owner int
	words memaddr.WordMask
}

// childOwners groups mask's words by owning child, in ascending child
// order (deterministic message emission).
func (l *GPUL2) childOwners(st *l2Line, mask memaddr.WordMask) []childOwnerWords {
	if mask == 0 {
		return nil
	}
	var byOwner [64]memaddr.WordMask
	max := -1
	mask.ForEach(func(i int) {
		o := int(st.childOwner[i])
		byOwner[o] |= memaddr.MaskOf(i)
		if o > max {
			max = o
		}
	})
	var out []childOwnerWords
	for o := 0; o <= max; o++ {
		if byOwner[o] != 0 {
			out = append(out, childOwnerWords{owner: o, words: byOwner[o]})
		}
	}
	return out
}

func (l *GPUL2) handleReqWT(m *proto.Message) {
	e := l.need(m, true)
	if e == nil {
		return
	}
	st := &e.State
	owned := m.Mask & st.childMask
	plain := m.Mask &^ owned
	if plain != 0 {
		st.data.Merge(&m.Data, plain)
		l.sendV(proto.Message{
			Type: proto.RspWT, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: plain,
		})
	}
	if owned != 0 {
		for _, ow := range l.childOwners(st, owned) {
			l.sendV(proto.Message{
				Type: proto.ReqWT, Dst: l.children[ow.owner],
				Requestor: m.Requestor, ReqID: m.ReqID, Line: m.Line, Mask: ow.words,
			})
		}
		st.data.Merge(&m.Data, owned)
		st.childMask &^= owned
	}
}

func (l *GPUL2) handleReqWTData(m *proto.Message) {
	e := l.need(m, true)
	if e == nil {
		return
	}
	st := &e.State
	owned := m.Mask & st.childMask
	if owned != 0 {
		cp := *m
		l.revokeChildren(e, owned, &cp, func() { l.performUpdate(&cp) })
		return
	}
	l.performUpdate(m)
}

// performUpdate applies an atomic at the L2 (the GPU's backing cache).
func (l *GPUL2) performUpdate(m *proto.Message) {
	e := l.array.Lookup(m.Line)
	if e == nil {
		panic("hmesi: update on absent line")
	}
	st := &e.State
	rsp := proto.Message{
		Type: proto.RspWTData, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, HasData: true,
	}
	m.Mask.ForEach(func(i int) {
		old := st.data[i]
		var operand uint32
		if m.HasData {
			operand = m.Data[i]
		} else {
			operand = m.Operand
		}
		nv, wrote := m.Atomic.Apply(old, operand, m.Compare)
		rsp.Data[i] = old
		if wrote {
			st.data[i] = nv
		}
	})
	l.st.Inc("gpul2.atomics", 1)
	l.sendV(rsp)
}

func (l *GPUL2) handleReqOwn(m *proto.Message) {
	e := l.need(m, true)
	if e == nil {
		return
	}
	st := &e.State
	reqIdx := int8(l.child(m.Requestor))
	owned := m.Mask & st.childMask
	var self memaddr.WordMask
	owned.ForEach(func(i int) {
		if st.childOwner[i] == reqIdx {
			self |= memaddr.MaskOf(i)
		}
	})
	transfer := owned &^ self
	plain := m.Mask &^ owned

	fwdType := proto.ReqO
	rspType := proto.RspO
	withData := false
	if m.Type == proto.ReqOData {
		fwdType, rspType, withData = proto.ReqOData, proto.RspOData, true
	}
	for _, ow := range l.childOwners(st, transfer) {
		l.sendV(proto.Message{
			Type: fwdType, Dst: l.children[ow.owner],
			Requestor: m.Requestor, ReqID: m.ReqID, Line: m.Line, Mask: ow.words,
		})
	}
	m.Mask.ForEach(func(i int) { st.childOwner[i] = reqIdx })
	st.childMask |= m.Mask
	if plain|self != 0 {
		rsp := proto.Message{
			Type: rspType, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: plain | self,
		}
		if withData {
			rsp.HasData = true
			rsp.Data = st.data
		}
		l.sendV(rsp)
	}
}

func (l *GPUL2) handleChildWB(m *proto.Message) {
	e := l.array.Peek(m.Line)
	senderIdx := int8(l.child(m.Src))
	if e != nil {
		st := &e.State
		applied := memaddr.WordMask(0)
		(m.Mask & st.childMask).ForEach(func(i int) {
			if st.childOwner[i] == senderIdx {
				applied |= memaddr.MaskOf(i)
			}
		})
		if applied != 0 {
			st.data.Merge(&m.Data, applied)
			st.childMask &^= applied
		}
	}
	l.sendV(proto.Message{
		Type: proto.RspWB, Dst: m.Src, Requestor: m.Src, ReqID: m.ReqID,
		Line: m.Line, Mask: m.Mask,
	})
	l.maybeCompleteRvk(m.Line)
}

func (l *GPUL2) handleChildRvkRsp(m *proto.Message) {
	// Only meaningful while the revocation that sent the RvkO is still
	// open (the response echoes the probe's Requestor/ReqID). Without a
	// match, the revocation already resolved via the child's racing ReqWB
	// and the line may have been evicted or the child re-granted since —
	// applying the stale response would corrupt the newer state.
	t, ok := l.txns[m.Line]
	if !ok || t.kind != l2Rvk || m.Requestor != l.ID || m.ReqID != t.rvkID {
		l.st.Inc("gpul2.rvk.stale", 1)
		return
	}
	e := l.array.Peek(m.Line)
	if e == nil {
		panic("hmesi: RspRvkO for absent L2 line")
	}
	st := &e.State
	senderIdx := int8(l.child(m.Src))
	applied := memaddr.WordMask(0)
	(m.Mask & st.childMask).ForEach(func(i int) {
		if st.childOwner[i] == senderIdx {
			applied |= memaddr.MaskOf(i)
		}
	})
	if applied != 0 {
		if m.HasData {
			st.data.Merge(&m.Data, applied)
		}
		st.childMask &^= applied
	}
	l.maybeCompleteRvk(m.Line)
}

// revokeChildren pulls the masked words home, then runs after. Requests to
// the line queue behind the revocation.
func (l *GPUL2) revokeChildren(e *cache.Entry[l2Line], mask memaddr.WordMask, origin *proto.Message, after func()) {
	st := &e.State
	t := l.newTxn(l2Rvk, e.Line)
	t.rvkMask, t.after, t.origin = mask, after, origin
	l.reqSeq++
	t.rvkID = l.reqSeq
	for _, ow := range l.childOwners(st, mask) {
		l.sendV(proto.Message{
			Type: proto.RvkO, Dst: l.children[ow.owner], Requestor: l.ID,
			ReqID: t.rvkID, Line: e.Line, Mask: ow.words,
		})
	}
	l.txns[e.Line] = t
	l.st.Inc("gpul2.rvk", 1)
}

func (l *GPUL2) maybeCompleteRvk(line memaddr.LineAddr) {
	t, ok := l.txns[line]
	if !ok || t.kind != l2Rvk {
		return
	}
	e := l.array.Peek(line)
	if e == nil {
		panic("hmesi: rvk txn on absent line")
	}
	if e.State.childMask&t.rvkMask != 0 {
		return
	}
	delete(l.txns, line)
	if t.after != nil {
		t.after()
	}
	l.drain(t)
	l.freeTxn(t)
}

// drain replays t's waiting queue in arrival order. If a replay opens a new
// transaction on the same line, the remainder transfers (by value) onto the
// new transaction's queue.
func (l *GPUL2) drain(t *l2Txn) {
	for i := range t.waiting {
		if nt, ok := l.txns[t.line]; ok {
			nt.waiting = append(nt.waiting, t.waiting[i:]...)
			return
		}
		l.redispatch(&t.waiting[i])
	}
}
