package hmesi

import (
	"testing"

	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

type rig struct {
	t   *testing.T
	eng *sim.Engine
	st  *stats.Stats
	net *noc.Network
	dir *Directory
	mem *dram.Memory
	l1s []*mesi.L1
}

func newRig(t *testing.T, n int) *rig {
	r := &rig{t: t, eng: sim.New(), st: stats.New()}
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), n+2)
	dirID, memID := proto.NodeID(n), proto.NodeID(n+1)
	r.dir = NewDirectory(dirID, memID, r.eng, r.net, r.st,
		DirConfig{SizeBytes: 64 * 1024, Ways: 8, AccessLatency: 20 * sim.CPUCycle})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	for i := 0; i < n; i++ {
		id := proto.NodeID(i)
		l1 := mesi.New(id, r.eng, r.net.PortFor(id), r.st, mesi.DefaultConfig(dirID))
		r.net.Register(id, l1)
		r.dir.RegisterDevice(id)
		r.l1s = append(r.l1s, l1)
	}
	return r
}

func (r *rig) run() {
	if !r.eng.RunUntil(1 << 42) {
		r.t.Fatal("rig: did not drain")
	}
}

func (r *rig) access(l1 *mesi.L1, op device.Op) uint32 {
	var got uint32
	ok := false
	for tries := 0; ; tries++ {
		if l1.Access(op, func(v uint32) { got = v; ok = true }) {
			break
		}
		if !r.eng.Step() || tries > 1<<20 {
			r.t.Fatal("access rejected forever")
		}
	}
	r.run()
	if !ok {
		r.t.Fatalf("%v never completed", op.Kind)
	}
	return got
}

func (r *rig) load(l1 *mesi.L1, a memaddr.Addr) uint32 {
	return r.access(l1, device.Op{Kind: device.OpLoad, Addr: a})
}

// store buffers a write and flushes it to global visibility.
func (r *rig) store(l1 *mesi.L1, a memaddr.Addr, v uint32) {
	r.access(l1, device.Op{Kind: device.OpStore, Addr: a, Value: v})
	l1.Flush(func() {})
	r.run()
}
func (r *rig) rmw(l1 *mesi.L1, a memaddr.Addr, k proto.AtomicKind, v uint32) uint32 {
	return r.access(l1, device.Op{Kind: device.OpAtomic, Addr: a, Atomic: k, Value: v})
}

func TestExclusiveGrant(t *testing.T) {
	r := newRig(t, 2)
	var init memaddr.LineData
	init[0] = 5
	r.mem.Poke(0x1000, init)
	if v := r.load(r.l1s[0], 0x1000); v != 5 {
		t.Fatalf("v = %d", v)
	}
	if s := r.l1s[0].State(0x1000); s != mesi.E {
		t.Fatalf("state = %v, want E (exclusive optimization)", s)
	}
	// Second reader: first is downgraded to S via FwdGetS.
	if v := r.load(r.l1s[1], 0x1000); v != 5 {
		t.Fatalf("v = %d", v)
	}
	if s := r.l1s[0].State(0x1000); s != mesi.S {
		t.Fatalf("old owner state = %v, want S", s)
	}
	if s := r.l1s[1].State(0x1000); s != mesi.S {
		t.Fatalf("reader state = %v, want S", s)
	}
}

func TestSilentEUpgrade(t *testing.T) {
	r := newRig(t, 1)
	r.load(r.l1s[0], 0x2000)
	getms := r.st.Get("mesil1.getm")
	r.store(r.l1s[0], 0x2000, 9)
	if r.st.Get("mesil1.getm") != getms {
		t.Fatal("store to E line issued a GetM")
	}
	if s := r.l1s[0].State(0x2000); s != mesi.M {
		t.Fatalf("state = %v", s)
	}
}

func TestWriterInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3)
	for _, l1 := range r.l1s {
		r.load(l1, 0x3000)
	}
	r.store(r.l1s[0], 0x3000, 42)
	if s := r.l1s[1].State(0x3000); s != mesi.I {
		t.Fatalf("sharer 1 state = %v, want I", s)
	}
	if s := r.l1s[2].State(0x3000); s != mesi.I {
		t.Fatalf("sharer 2 state = %v, want I", s)
	}
	if v := r.load(r.l1s[1], 0x3000); v != 42 {
		t.Fatalf("reload = %d", v)
	}
	// Reader triggered FwdGetS: writer downgraded to S.
	if s := r.l1s[0].State(0x3000); s != mesi.S {
		t.Fatalf("writer state = %v", s)
	}
}

func TestModifiedMigration(t *testing.T) {
	r := newRig(t, 2)
	r.store(r.l1s[0], 0x4000, 1)
	r.store(r.l1s[1], 0x4000, 2)
	if s := r.l1s[0].State(0x4000); s != mesi.I {
		t.Fatalf("old owner = %v", s)
	}
	if s := r.l1s[1].State(0x4000); s != mesi.M {
		t.Fatalf("new owner = %v", s)
	}
	if v := r.load(r.l1s[0], 0x4000); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 2)
	r.load(r.l1s[0], 0x5000)
	r.load(r.l1s[1], 0x5000) // both S
	r.store(r.l1s[0], 0x5004, 7)
	if s := r.l1s[0].State(0x5000); s != mesi.M {
		t.Fatalf("upgrader = %v", s)
	}
	if s := r.l1s[1].State(0x5000); s != mesi.I {
		t.Fatalf("other sharer = %v", s)
	}
	if v := r.load(r.l1s[1], memaddr.Addr(0x5004)); v != 7 {
		t.Fatalf("v = %d", v)
	}
}

func TestEvictionWriteBack(t *testing.T) {
	r := newRig(t, 1)
	l1 := r.l1s[0]
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x100000 + i*64*64) }
	for i := 0; i < 12; i++ {
		r.store(l1, conflict(i), uint32(i+1))
	}
	if r.st.Get("mesil1.wb_evict") == 0 {
		t.Fatal("no write-back")
	}
	for i := 0; i < 12; i++ {
		if v := r.load(l1, conflict(i)); v != uint32(i+1) {
			t.Fatalf("line %d = %d", i, v)
		}
	}
}

func TestAtomicPingPong(t *testing.T) {
	r := newRig(t, 2)
	for i := 0; i < 10; i++ {
		who := r.l1s[i%2]
		if old := r.rmw(who, 0x6000, proto.AtomicFetchAdd, 1); old != uint32(i) {
			t.Fatalf("iteration %d: old = %d", i, old)
		}
	}
	if v := r.load(r.l1s[0], 0x6000); v != 10 {
		t.Fatalf("final = %d", v)
	}
}

func TestFalseSharingPingPong(t *testing.T) {
	// MESI's line granularity: writes to different words of one line still
	// ping-pong ownership (the pathology Spandex's word tracking avoids).
	r := newRig(t, 2)
	fwds := r.st.Get("dir.fwd_getm")
	for i := 0; i < 6; i++ {
		r.store(r.l1s[0], 0x7000, uint32(i))
		r.store(r.l1s[1], 0x7004, uint32(i))
	}
	if r.st.Get("dir.fwd_getm") <= fwds+6 {
		t.Fatalf("expected heavy false-sharing forwards, got %d", r.st.Get("dir.fwd_getm")-fwds)
	}
	if v := r.load(r.l1s[0], 0x7000); v != 5 {
		t.Fatalf("word0 = %d", v)
	}
	if v := r.load(r.l1s[0], 0x7004); v != 5 {
		t.Fatalf("word1 = %d", v)
	}
}

func TestStoreBufferCoalescing(t *testing.T) {
	r := newRig(t, 1)
	for i := 0; i < 8; i++ {
		if !r.l1s[0].Access(device.Op{Kind: device.OpStore,
			Addr: memaddr.Addr(0x8000 + i*4), Value: uint32(i)}, func(uint32) {}) {
			t.Fatal("store rejected")
		}
	}
	r.l1s[0].Flush(func() {})
	r.run()
	if n := r.st.Get("mesil1.getm"); n != 1 {
		t.Fatalf("GetMs = %d, want 1", n)
	}
	for i := 0; i < 8; i++ {
		if v := r.load(r.l1s[0], memaddr.Addr(0x8000+i*4)); v != uint32(i) {
			t.Fatalf("word %d = %d", i, v)
		}
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	r := newRig(t, 4)
	total := 0
	for round := 0; round < 8; round++ {
		for i, l1 := range r.l1s {
			for !l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0x9000,
				Atomic: proto.AtomicFetchAdd, Value: 1}, func(uint32) {}) {
				if !r.eng.Step() {
					t.Fatal("stuck")
				}
			}
			total++
			l1.Access(device.Op{Kind: device.OpStore,
				Addr: memaddr.Addr(0xa000 + i*4), Value: uint32(round)}, func(uint32) {})
			l1.Access(device.Op{Kind: device.OpLoad, Addr: 0x9040}, func(uint32) {})
		}
		for i := 0; i < 60; i++ {
			r.eng.Step()
		}
	}
	for _, l1 := range r.l1s {
		l1.Flush(func() {})
	}
	r.run()
	if v := r.load(r.l1s[0], 0x9000); v != uint32(total) {
		t.Fatalf("counter = %d, want %d", v, total)
	}
	for i := range r.l1s {
		if v := r.load(r.l1s[3], memaddr.Addr(0xa000+i*4)); v != 7 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}
