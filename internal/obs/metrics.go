package obs

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// MetricsConfig selects what the metrics engine collects. The zero value
// collects nothing; DefaultMetricsConfig enables everything. All knobs
// are purely observational: collection is fed from the same event stream
// sinks see and never touches simulator state.
type MetricsConfig struct {
	// Links collects per-endpoint NoC telemetry: bandwidth (bytes per
	// window), egress/ingress queuing delay, and message counts.
	Links bool
	// LLC collects contention telemetry at the coherence point: MSHR and
	// request-queue occupancy series, per-set conflict/eviction counts,
	// and indirection/revocation/eviction/conflict rate series.
	LLC bool
	// DRAM collects memory bandwidth series and row-level access counts.
	DRAM bool
	// Lines maintains the per-line history table (access counts,
	// request-type mix, sharer churn, ownership migrations) and the
	// address-space region histogram.
	Lines bool

	// BucketTicks is the initial time-series bucket width in ticks
	// (default 1<<14 = 16 ns). MaxBuckets caps each series' length
	// (default 512): when a sample lands past the end, adjacent buckets
	// merge pairwise and the width doubles.
	BucketTicks uint64
	MaxBuckets  int
	// LineTableCap bounds the per-line history table; least recently
	// touched lines age out (default 4096). The aged-out count is
	// reported so a capped table is never mistaken for full coverage.
	LineTableCap int
}

// DefaultMetricsConfig enables every collector with default sizing.
func DefaultMetricsConfig() MetricsConfig {
	return MetricsConfig{Links: true, LLC: true, DRAM: true, Lines: true}
}

// dramRowShift buckets DRAM line addresses into 2 KiB rows — a
// representative DRAM row-buffer size — for the row-level access counts.
const dramRowShift = 11

// regionShift buckets line addresses into 4 KiB regions for the
// address-space heatmap.
const regionShift = 12

// linkAgg is one NoC endpoint's accumulating telemetry.
type linkAgg struct {
	msgs, bytes    uint64
	egressBytes    *tseries
	egressBacklog  *tseries
	ingressBacklog *tseries
}

// setAgg is one LLC set's conflict/eviction tally.
type setAgg struct {
	conflicts, evictions uint64
}

// rowAgg is one DRAM row's access tally.
type rowAgg struct {
	reads, writes uint64
}

// lineAgg is one line's history entry. Entries form an intrusive LRU
// list; the least recently touched ages out past MetricsConfig.
// LineTableCap.
type lineAgg struct {
	line memaddr.LineAddr
	// access counts requests delivered at an LLC node for this line;
	// mix splits them by traffic class.
	access uint64
	mix    [proto.NumClasses]uint64
	// sharerChurn sums sharer-set bit flips; ownerMoves sums words whose
	// ownership moved; revokes sums words revoked by RvkO probes;
	// forwards counts owner-indirection forwards.
	sharerChurn uint64
	ownerMoves  uint64
	revokes     uint64
	forwards    uint64
	// requestors is a bitset of device node ids (capped at 63) that
	// requested the line — a sharing-diversity signal.
	requestors uint64
	lastAt     sim.Time

	prev, next *lineAgg
}

// Metrics is the deterministic system-level metrics engine: a registry of
// cycle-bucketed time series plus contention tallies, fed exclusively
// from Recorder.Emit's event stream. Like the Recorder it belongs to one
// System and is single-threaded by construction; everything it aggregates
// is a pure function of the (deterministic) event stream, so two
// identical runs produce byte-identical reports.
type Metrics struct {
	cfg MetricsConfig

	// Topology, bound by obs.New from the Recorder's Config.
	llc   map[proto.NodeID]bool
	memID proto.NodeID
	names map[int]string

	links map[proto.NodeID]*linkAgg
	occ   map[occKey]*tseries

	sets        map[int]*setAgg
	indirection *tseries
	revocations *tseries
	evictions   *tseries
	conflicts   *tseries

	dramRead, dramWrite           *tseries
	dramReads, dramWrites         uint64
	dramReadBytes, dramWriteBytes uint64
	rows                          map[uint64]*rowAgg

	lines        map[memaddr.LineAddr]*lineAgg
	lruHead      *lineAgg // most recently touched
	lruTail      *lineAgg // least recently touched
	linesEvicted uint64
	regions      map[uint64]uint64
}

// NewMetrics creates a metrics engine. Install it via Config.Metrics; the
// Recorder binds the run's topology and feeds it every event.
func NewMetrics(cfg MetricsConfig) *Metrics {
	if cfg.BucketTicks == 0 {
		cfg.BucketTicks = seriesDefaultWidth
	}
	if cfg.MaxBuckets <= 1 {
		cfg.MaxBuckets = seriesDefaultBuckets
	}
	if cfg.LineTableCap <= 0 {
		cfg.LineTableCap = 4096
	}
	m := &Metrics{
		cfg:   cfg,
		llc:   make(map[proto.NodeID]bool),
		names: make(map[int]string),
	}
	if cfg.Links {
		m.links = make(map[proto.NodeID]*linkAgg)
	}
	if cfg.LLC {
		m.occ = make(map[occKey]*tseries)
		m.sets = make(map[int]*setAgg)
		m.indirection = m.series()
		m.revocations = m.series()
		m.evictions = m.series()
		m.conflicts = m.series()
	}
	if cfg.DRAM {
		m.dramRead = m.series()
		m.dramWrite = m.series()
		m.rows = make(map[uint64]*rowAgg)
	}
	if cfg.Lines {
		m.lines = make(map[memaddr.LineAddr]*lineAgg)
		m.regions = make(map[uint64]uint64)
	}
	return m
}

func (m *Metrics) series() *tseries {
	return newTSeries(m.cfg.BucketTicks, m.cfg.MaxBuckets)
}

// bind installs the run's topology (called by obs.New).
func (m *Metrics) bind(llc map[proto.NodeID]bool, memID proto.NodeID) {
	m.llc = llc
	m.memID = memID
}

// SetNodeName labels a node for rendering (same interface the Chrome sink
// exposes, so System.nameNodes covers both).
func (m *Metrics) SetNodeName(node int, name string) { m.names[node] = name }

// isLineRequest reports whether a delivered message type is a device
// request the per-line history should count (responses, probes, acks and
// memory traffic are effects, not demand).
func isLineRequest(t proto.MsgType) bool {
	//spandex:partialswitch predicate: the non-request message types (responses, probes, acks, memory traffic) fall through to false by design
	switch t {
	case proto.ReqV, proto.ReqS, proto.ReqWT, proto.ReqO,
		proto.ReqWTData, proto.ReqOData, proto.ReqWB,
		proto.MGetS, proto.MGetM, proto.MPutM:
		return true
	default:
		return false
	}
}

// observe folds one event into the registry. Called from Recorder.Emit
// behind a nil check, so disabled runs never reach here.
func (m *Metrics) observe(ev Event) {
	//spandex:partialswitch op issue/done and LLC block/unblock events feed the latency layer, not the metrics registry
	switch ev.Kind {
	case EvMsgSend:
		if m.cfg.Links && ev.Msg != nil {
			l := m.link(ev.Node)
			l.msgs++
			sz := uint64(ev.Msg.Bytes())
			l.bytes += sz
			l.egressBytes.add(ev.At, sz)
		}
	case EvLinkBacklog:
		if m.cfg.Links {
			l := m.link(ev.Node)
			if ev.Res == "egress" {
				l.egressBacklog.add(ev.At, ev.Arg)
			} else {
				l.ingressBacklog.add(ev.At, ev.Arg)
			}
		}
	case EvMsgDeliver:
		if m.cfg.Lines && ev.Msg != nil && m.llc[ev.Node] && isLineRequest(ev.Msg.Type) {
			la := m.touchLine(ev.Msg.Line, ev.At)
			la.access++
			la.mix[proto.ClassOf(ev.Msg.Type)]++
			if r := ev.Msg.Requestor; r >= 0 {
				bit := uint(r)
				if bit > 63 {
					bit = 63
				}
				la.requestors |= 1 << bit
			}
			m.regions[uint64(ev.Msg.Line)>>regionShift]++
		}
	case EvOccupancy:
		if m.cfg.LLC {
			k := occKey{node: ev.Node, res: ev.Res}
			s := m.occ[k]
			if s == nil {
				s = m.series()
				m.occ[k] = s
			}
			s.add(ev.At, ev.Arg)
		}
	case EvLLCForward:
		if m.cfg.LLC {
			m.indirection.add(ev.At, 1)
		}
		if m.cfg.Lines && ev.Msg != nil {
			m.touchLine(ev.Msg.Line, ev.At).forwards++
		}
	case EvLLCRevoke:
		if m.cfg.LLC {
			m.revocations.add(ev.At, ev.Arg)
		}
		if m.cfg.Lines {
			m.touchLine(ev.Addr.Line(), ev.At).revokes += ev.Arg
		}
	case EvLLCEvict:
		if m.cfg.LLC {
			m.evictions.add(ev.At, 1)
			m.set(int(ev.Arg)).evictions++
		}
	case EvLLCConflict:
		if m.cfg.LLC {
			m.conflicts.add(ev.At, 1)
			m.set(int(ev.Arg)).conflicts++
		}
	case EvLineOwner:
		if m.cfg.Lines {
			m.touchLine(ev.Addr.Line(), ev.At).ownerMoves += ev.Arg
		}
	case EvLineSharer:
		if m.cfg.Lines {
			m.touchLine(ev.Addr.Line(), ev.At).sharerChurn += ev.Arg
		}
	case EvDRAMAccess:
		if m.cfg.DRAM {
			row := m.row(uint64(ev.Addr.Line()) >> dramRowShift)
			if ev.Res == "rd" {
				m.dramReads++
				m.dramReadBytes += ev.Arg
				m.dramRead.add(ev.At, ev.Arg)
				row.reads++
			} else {
				m.dramWrites++
				m.dramWriteBytes += ev.Arg
				m.dramWrite.add(ev.At, ev.Arg)
				row.writes++
			}
		}
	}
}

func (m *Metrics) link(id proto.NodeID) *linkAgg {
	l := m.links[id]
	if l == nil {
		l = &linkAgg{
			egressBytes:    m.series(),
			egressBacklog:  m.series(),
			ingressBacklog: m.series(),
		}
		m.links[id] = l
	}
	return l
}

func (m *Metrics) set(idx int) *setAgg {
	s := m.sets[idx]
	if s == nil {
		s = &setAgg{}
		m.sets[idx] = s
	}
	return s
}

func (m *Metrics) row(idx uint64) *rowAgg {
	r := m.rows[idx]
	if r == nil {
		r = &rowAgg{}
		m.rows[idx] = r
	}
	return r
}

// touchLine returns line's history entry, creating it (and aging out the
// LRU entry past the cap) as needed, and moves it to the front of the LRU
// list. The aging order is a pure function of the event stream, so the
// surviving table is deterministic.
func (m *Metrics) touchLine(line memaddr.LineAddr, at sim.Time) *lineAgg {
	la := m.lines[line]
	if la == nil {
		la = &lineAgg{line: line}
		m.lines[line] = la
		m.lruPush(la)
		if len(m.lines) > m.cfg.LineTableCap {
			old := m.lruTail
			m.lruRemove(old)
			delete(m.lines, old.line)
			m.linesEvicted++
		}
	} else if m.lruHead != la {
		m.lruRemove(la)
		m.lruPush(la)
	}
	la.lastAt = at
	return la
}

func (m *Metrics) lruPush(la *lineAgg) {
	la.prev = nil
	la.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = la
	}
	m.lruHead = la
	if m.lruTail == nil {
		m.lruTail = la
	}
}

func (m *Metrics) lruRemove(la *lineAgg) {
	if la.prev != nil {
		la.prev.next = la.next
	} else {
		m.lruHead = la.next
	}
	if la.next != nil {
		la.next.prev = la.prev
	} else {
		m.lruTail = la.prev
	}
	la.prev, la.next = nil, nil
}
