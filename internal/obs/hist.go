package obs

import "math/bits"

// histBuckets is the number of log2 latency buckets: bucket b counts
// latencies v with bits.Len64(v) == b, i.e. [2^(b-1), 2^b). Bucket 0
// counts zero-latency completions (same-tick hits and buffered stores).
const histBuckets = 64

// Hist is a log2-bucketed latency histogram. Percentiles are bucket
// upper bounds (conservative); Max is exact.
type Hist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one latency observation. Values at or above 2^63 saturate
// into the last bucket (whose quantile bound is capped by Max anyway).
func (h *Hist) Add(v uint64) {
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge folds another histogram into h: buckets, counts and sums add,
// the maxima take the larger value. Merging preserves every quantile
// bound the union of observations would produce.
func (h *Hist) Merge(o *Hist) {
	for b := range h.Buckets {
		h.Buckets[b] += o.Buckets[b]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (0 < q <= 1), or 0 for an empty histogram. The
// exact maximum caps the answer, so Quantile(1) == Max.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= rank {
			if b == histBuckets-1 {
				// The last bucket saturates (it also holds values past
				// 2^63); its only honest bound is the exact maximum.
				return h.Max
			}
			hi := bucketUpper(b)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Mean returns the exact mean latency.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// bucketUpper is the largest value bucket b can hold: 2^b - 1 (0 for
// bucket 0).
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}
