package obs

import "math/bits"

// histBuckets is the number of log2 latency buckets: bucket b counts
// latencies v with bits.Len64(v) == b, i.e. [2^(b-1), 2^b). Bucket 0
// counts zero-latency completions (same-tick hits and buffered stores).
const histBuckets = 64

// Hist is a log2-bucketed latency histogram. Percentiles are bucket
// upper bounds (conservative); Max is exact.
type Hist struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one latency observation.
func (h *Hist) Add(v uint64) {
	h.Buckets[bits.Len64(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (0 < q <= 1), or 0 for an empty histogram. The
// exact maximum caps the answer, so Quantile(1) == Max.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for b := 0; b < histBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= rank {
			hi := bucketUpper(b)
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// Mean returns the exact mean latency.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// bucketUpper is the largest value bucket b can hold: 2^b - 1 (0 for
// bucket 0).
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}
