package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Add(v)
	}
	if h.Count != 7 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Max != 1<<40 {
		t.Fatalf("max = %d", h.Max)
	}
	if h.Buckets[0] != 1 { // the zero observation
		t.Fatalf("bucket 0 = %d", h.Buckets[0])
	}
	if h.Buckets[2] != 2 { // 2 and 3 share [2,4)
		t.Fatalf("bucket 2 = %d", h.Buckets[2])
	}
	if want := float64(0+1+2+3+4+1000+1<<40) / 7; h.Mean() != want {
		t.Fatalf("mean = %f, want %f", h.Mean(), want)
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	// 100 observations of 10 (bucket [8,16)) and one of 1000.
	for i := 0; i < 100; i++ {
		h.Add(10)
	}
	h.Add(1000)
	if q := h.Quantile(0.50); q != 15 {
		t.Fatalf("p50 = %d, want bucket upper bound 15", q)
	}
	if q := h.Quantile(1.0); q != h.Max {
		t.Fatalf("p100 = %d, want max %d", q, h.Max)
	}
	// Quantiles are monotone in q.
	prev := uint64(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%f: %d < %d", q, v, prev)
		}
		prev = v
	}
	// The max caps bucket upper bounds: a single large value reports
	// exactly, not its bucket's upper bound.
	var h2 Hist
	h2.Add(1000)
	if q := h2.Quantile(0.99); q != 1000 {
		t.Fatalf("single-value p99 = %d, want exact 1000", q)
	}
}

// emit drives a recorder with a shorthand event list.
func emit(r *Recorder, evs ...Event) {
	for _, ev := range evs {
		r.Emit(ev)
	}
}

// TestPhaseMachineLLCPath walks one request through issue → network →
// LLC (with a blocked interval) → DRAM → response and checks every tick
// lands in the right phase with an exact total.
func TestPhaseMachineLLCPath(t *testing.T) {
	llc := proto.NodeID(4)
	mem := proto.NodeID(5)
	r := New(Config{Latency: true, LLCNodes: []proto.NodeID{llc}, MemID: mem})
	tr := r.NextTrace()
	if tr != 1 {
		t.Fatalf("first trace id = %d", tr)
	}
	req := &proto.Message{Src: 0, Dst: llc}
	memRd := &proto.Message{Src: llc, Dst: mem}
	memRsp := &proto.Message{Src: mem, Dst: llc}
	rsp := &proto.Message{Src: llc, Dst: 0}
	emit(r,
		Event{At: 100, Kind: EvOpIssue, Node: 0, Trace: tr, Class: ClassLoad},  // L1: 100..150
		Event{At: 150, Kind: EvMsgSend, Node: 0, Trace: tr, Msg: req},          // Net: 150..400
		Event{At: 400, Kind: EvMsgDeliver, Node: llc, Trace: tr, Msg: req},     // LLC: 400..500
		Event{At: 500, Kind: EvLLCBlock, Node: llc, Trace: tr},                 // Blocked: 500..900
		Event{At: 900, Kind: EvLLCUnblock, Node: llc, Trace: tr},               // LLC: 900..1000
		Event{At: 1000, Kind: EvMsgSend, Node: llc, Trace: tr, Msg: memRd},     // DRAM: 1000..1600
		Event{At: 1600, Kind: EvMsgDeliver, Node: mem, Trace: tr, Msg: memRsp}, // DRAM (src=mem): wait, deliver at mem
		Event{At: 1600, Kind: EvMsgSend, Node: mem, Trace: tr, Msg: memRsp},    // DRAM: 1600..2200
		Event{At: 2200, Kind: EvMsgDeliver, Node: llc, Trace: tr, Msg: memRsp}, // LLC: 2200..2300
		Event{At: 2300, Kind: EvMsgSend, Node: llc, Trace: tr, Msg: rsp},       // Net: 2300..2800
		Event{At: 2800, Kind: EvMsgDeliver, Node: 0, Trace: tr, Msg: rsp},      // L1: 2800..3000
		Event{At: 3000, Kind: EvOpDone, Node: 0, Trace: tr, Class: ClassLoad},
	)
	rep := r.Report()
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "load" {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	c := rep.Classes[0]
	if c.TotalTicks != 2900 || c.Count != 1 {
		t.Fatalf("total = %d count = %d", c.TotalTicks, c.Count)
	}
	want := [NumPhases]uint64{
		PhaseL1:          50 + 200,
		PhaseNet:         250 + 500,
		PhaseLLC:         100 + 100 + 100,
		PhaseBlocked:     400,
		PhaseIndirection: 0,
		PhaseDRAM:        600 + 0 + 600,
	}
	if c.Phases != want {
		t.Fatalf("phases = %v, want %v", c.Phases, want)
	}
	if c.PhaseSum() != c.TotalTicks {
		t.Fatalf("phase sum %d != total %d", c.PhaseSum(), c.TotalTicks)
	}
	if rep.Unfinished != 0 || rep.Requests != 1 {
		t.Fatalf("unfinished=%d requests=%d", rep.Unfinished, rep.Requests)
	}
}

// TestPhaseMachineIndirection checks the owner-forwarding path: after
// EvLLCForward, time until the owner's response reaches the requestor is
// attributed to PhaseIndirection.
func TestPhaseMachineIndirection(t *testing.T) {
	llc := proto.NodeID(4)
	r := New(Config{Latency: true, LLCNodes: []proto.NodeID{llc}, MemID: 5})
	tr := r.NextTrace()
	req := &proto.Message{Src: 1, Dst: llc}
	fwd := &proto.Message{Src: llc, Dst: 2} // forwarded to owner node 2
	rsp := &proto.Message{Src: 2, Dst: 1}   // owner responds directly
	emit(r,
		Event{At: 0, Kind: EvOpIssue, Node: 1, Trace: tr, Class: ClassLoad},
		Event{At: 100, Kind: EvMsgSend, Node: 1, Trace: tr, Msg: req},      // Net 100..300
		Event{At: 300, Kind: EvMsgDeliver, Node: llc, Trace: tr, Msg: req}, // LLC 300..400
		Event{At: 400, Kind: EvLLCForward, Node: llc, Trace: tr, Msg: fwd}, // Ind 400..
		Event{At: 400, Kind: EvMsgSend, Node: llc, Trace: tr, Msg: fwd},
		Event{At: 700, Kind: EvMsgDeliver, Node: 2, Trace: tr, Msg: fwd},  // still Ind (owner L1)
		Event{At: 800, Kind: EvMsgSend, Node: 2, Trace: tr, Msg: rsp},     // still Ind
		Event{At: 1100, Kind: EvMsgDeliver, Node: 1, Trace: tr, Msg: rsp}, // L1 1100..1200
		Event{At: 1200, Kind: EvOpDone, Node: 1, Trace: tr, Class: ClassLoad},
	)
	c := r.Report().Classes[0]
	want := [NumPhases]uint64{
		PhaseL1:          100 + 100,
		PhaseNet:         200,
		PhaseLLC:         100,
		PhaseIndirection: 700,
	}
	if c.Phases != want {
		t.Fatalf("phases = %v, want %v", c.Phases, want)
	}
	if c.PhaseSum() != c.TotalTicks {
		t.Fatalf("phase sum %d != total %d", c.PhaseSum(), c.TotalTicks)
	}
}

// TestPhaseMachineIgnoresUntracked: zero-trace and stale-trace events must
// not corrupt live requests or crash.
func TestPhaseMachineIgnoresUntracked(t *testing.T) {
	r := New(Config{Latency: true, LLCNodes: []proto.NodeID{4}, MemID: 5})
	tr := r.NextTrace()
	emit(r,
		Event{At: 0, Kind: EvOpIssue, Node: 0, Trace: tr, Class: ClassStore},
		Event{At: 10, Kind: EvMsgSend, Node: 0, Trace: 0, Msg: &proto.Message{Src: 0, Dst: 4}},   // untracked
		Event{At: 20, Kind: EvMsgSend, Node: 0, Trace: 999, Msg: &proto.Message{Src: 0, Dst: 4}}, // unknown trace
		Event{At: 50, Kind: EvOpDone, Node: 0, Trace: tr, Class: ClassStore},
		Event{At: 60, Kind: EvLLCBlock, Node: 4, Trace: tr}, // stale: already finalized
	)
	rep := r.Report()
	if rep.Requests != 1 || rep.Unfinished != 0 {
		t.Fatalf("requests=%d unfinished=%d", rep.Requests, rep.Unfinished)
	}
	if c := rep.Classes[0]; c.TotalTicks != 50 || c.Phases[PhaseL1] != 50 {
		t.Fatalf("store latency misattributed: %+v", c)
	}
}

func TestOccupancyDecimation(t *testing.T) {
	r := New(Config{Occupancy: true})
	for i := 0; i < occMaxSamples*3; i++ {
		r.Emit(Event{At: sim.Time(i), Kind: EvOccupancy, Node: 2, Res: "mshr", Arg: uint64(i % 7)})
	}
	rep := r.Report()
	if len(rep.Occupancy) != 1 {
		t.Fatalf("series = %d", len(rep.Occupancy))
	}
	s := rep.Occupancy[0]
	if s.Node != 2 || s.Res != "mshr" {
		t.Fatalf("series key = %d/%s", s.Node, s.Res)
	}
	if len(s.Points) == 0 || len(s.Points) >= occMaxSamples {
		t.Fatalf("decimation failed: %d points", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].At <= s.Points[i-1].At {
			t.Fatal("occupancy series not strictly increasing in time")
		}
	}
}

func TestTeeAndFuncSink(t *testing.T) {
	var a, b int
	s := Tee(FuncSink(func(Event) { a++ }), nil, FuncSink(func(Event) { b++ }))
	s.Event(Event{})
	s.Event(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("tee counts = %d/%d", a, b)
	}
}

func TestJSONLSinkShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Event(Event{At: 42, Kind: EvOpIssue, Node: 1, Trace: 7, Class: ClassAtomic, Addr: memaddr.Addr(0x1234)})
	s.Event(Event{At: 50, Kind: EvMsgSend, Node: 1, Trace: 7, Arg: 99,
		Msg: &proto.Message{Type: proto.ReqV, Src: 1, Dst: 4, Line: memaddr.LineAddr(0x10000 >> 6)}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["ev"] != "OpIssue" || rec["class"] != "atomic" || rec["addr"] != float64(0x1234) {
		t.Fatalf("issue record = %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec["msg"] != "ReqV" || rec["src"] != float64(1) || rec["dst"] != float64(4) {
		t.Fatalf("send record = %v", rec)
	}
}

// TestChromeSinkRoundTrip: a synthetic event stream exports to a trace
// that passes validation, with named tracks and closed slices.
func TestChromeSinkRoundTrip(t *testing.T) {
	s := NewChromeSink()
	s.SetNodeName(0, "cpu0")
	s.SetNodeName(4, "llc")
	msg := &proto.Message{Type: proto.ReqV, Src: 0, Dst: 4, Line: 1}
	s.Event(Event{At: 0, Kind: EvOpIssue, Node: 0, Trace: 1, Class: ClassLoad, Addr: 0x40})
	s.Event(Event{At: 100, Kind: EvMsgSend, Node: 0, Trace: 1, Msg: msg, Arg: 400})
	s.Event(Event{At: 400, Kind: EvLLCBlock, Node: 4, Trace: 1})
	s.Event(Event{At: 600, Kind: EvLLCUnblock, Node: 4, Trace: 1})
	s.Event(Event{At: 650, Kind: EvLLCForward, Node: 4, Trace: 1})
	s.Event(Event{At: 700, Kind: EvOccupancy, Node: 4, Res: "txn", Arg: 3})
	s.Event(Event{At: 900, Kind: EvOpDone, Node: 0, Trace: 1, Class: ClassLoad})
	// A slice deliberately left open: Close must close it at the last
	// timestamp so the file still validates.
	s.Event(Event{At: 950, Kind: EvOpIssue, Node: 0, Trace: 2, Class: ClassStore, Addr: 0x80})
	var buf bytes.Buffer
	if err := s.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round trip failed validation: %v", err)
	}
	out := buf.String()
	for _, frag := range []string{"cpu0", "llc", "process_name", `"ph":"C"`, "forward"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace missing %q", frag)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         `{"traceEvents":`,
		"empty":            `{"traceEvents":[]}`,
		"missing ph":       `{"traceEvents":[{"name":"x","ts":0,"pid":0}]}`,
		"unknown ph":       `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":0}]}`,
		"end w/o begin":    `{"traceEvents":[{"name":"x","cat":"op","ph":"e","id":"t1","ts":1,"pid":0}]}`,
		"never closed":     `{"traceEvents":[{"name":"x","cat":"op","ph":"b","id":"t1","ts":0,"pid":0}]}`,
		"duplicate begin":  `{"traceEvents":[{"name":"x","cat":"op","ph":"b","id":"t1","ts":0,"pid":0},{"name":"x","cat":"op","ph":"b","id":"t1","ts":1,"pid":0}]}`,
		"end before begin": `{"traceEvents":[{"name":"x","cat":"op","ph":"b","id":"t1","ts":5,"pid":0},{"name":"x","cat":"op","ph":"e","id":"t1","ts":1,"pid":0}]}`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

// TestRecorderDisabledPaths: with Latency and Occupancy off, events flow
// to the sink but no state accumulates.
func TestRecorderDisabledPaths(t *testing.T) {
	var seen int
	r := New(Config{Sink: FuncSink(func(Event) { seen++ })})
	tr := r.NextTrace()
	emit(r,
		Event{At: 0, Kind: EvOpIssue, Trace: tr, Class: ClassLoad},
		Event{At: 5, Kind: EvOccupancy, Node: 1, Res: "mshr", Arg: 1},
		Event{At: 9, Kind: EvOpDone, Trace: tr, Class: ClassLoad},
	)
	if seen != 3 {
		t.Fatalf("sink saw %d events", seen)
	}
	rep := r.Report()
	if rep.Requests != 0 || len(rep.Occupancy) != 0 {
		t.Fatalf("disabled recorder accumulated state: %+v", rep)
	}
}
