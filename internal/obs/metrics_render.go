package obs

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// sparkBlocks are the eight block glyphs used for sparkline rendering.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a series' bucket sums as a fixed-width sparkline.
// Buckets are resampled into cols columns (summing), then scaled to the
// column maximum; empty columns render as spaces.
func sparkline(s TimeSeries, cols int) string {
	if cols <= 0 || len(s.Points) == 0 {
		return ""
	}
	span := s.Last() + 1
	vals := make([]uint64, cols)
	for _, p := range s.Points {
		c := p.Index * cols / span
		if c >= cols {
			c = cols - 1
		}
		vals[c] += p.Sum
	}
	var max uint64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", cols)
	}
	var b strings.Builder
	for _, v := range vals {
		if v == 0 {
			b.WriteRune(' ')
			continue
		}
		lvl := int(v * uint64(len(sparkBlocks)-1) / max)
		b.WriteRune(sparkBlocks[lvl])
	}
	return b.String()
}

// fmtTicks renders a tick count as nanoseconds (1 tick = 1 ps).
func fmtTicks(t uint64) string {
	return fmt.Sprintf("%.1fns", float64(t)/1e3)
}

// RenderSummary writes the human-readable overview: per-link traffic,
// occupancy peaks, LLC contention totals, DRAM totals and line-table
// coverage.
func (r *MetricsReport) RenderSummary(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "bucket width\t%s (initial)\n", fmtTicks(r.BucketTicks))
	if len(r.Links) > 0 {
		fmt.Fprintf(tw, "\nlink\tmsgs\tbytes\tpeak B/win\tegress qd\tingress qd\n")
		for _, l := range r.Links {
			var peak uint64
			for _, p := range l.Egress.Points {
				if p.Sum > peak {
					peak = p.Sum
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\n",
				r.NodeName(l.Node), l.Msgs, l.Bytes, peak,
				fmtTicks(l.EgressBacklog.Total()), fmtTicks(l.IngressBacklog.Total()))
		}
	}
	if len(r.Occupancy) > 0 {
		fmt.Fprintf(tw, "\noccupancy\tpeak\tsamples\n")
		for _, o := range r.Occupancy {
			var peak, count uint64
			for _, p := range o.Series.Points {
				if p.Max > peak {
					peak = p.Max
				}
				count += p.Count
			}
			fmt.Fprintf(tw, "%s.%s\t%d\t%d\n", r.NodeName(o.Node), o.Res, peak, count)
		}
	}
	if r.LLC != nil {
		fmt.Fprintf(tw, "\nllc indirection\t%d fwds\n", r.LLC.Indirection.Total())
		fmt.Fprintf(tw, "llc revocations\t%d words\n", r.LLC.Revocations.Total())
		fmt.Fprintf(tw, "llc evictions\t%d lines\n", r.LLC.Evictions.Total())
		fmt.Fprintf(tw, "llc set conflicts\t%d stalls across %d sets\n",
			r.LLC.Conflicts.Total(), len(r.LLC.Sets))
	}
	if r.DRAM != nil {
		fmt.Fprintf(tw, "\ndram reads\t%d (%d B)\n", r.DRAM.Reads, r.DRAM.ReadBytes)
		fmt.Fprintf(tw, "dram writes\t%d (%d B)\n", r.DRAM.Writes, r.DRAM.WriteBytes)
		fmt.Fprintf(tw, "dram rows touched\t%d\n", len(r.DRAM.Rows))
	}
	if len(r.Lines) > 0 || r.LinesAgedOut > 0 {
		fmt.Fprintf(tw, "\nlines tracked\t%d (+%d aged out)\n", len(r.Lines), r.LinesAgedOut)
		fmt.Fprintf(tw, "regions touched\t%d × 4KiB\n", len(r.Regions))
	}
	tw.Flush()
}

// RenderTimeline writes one sparkline per telemetry series: link egress
// bandwidth and backlog, occupancy, LLC rates and DRAM bandwidth.
func (r *MetricsReport) RenderTimeline(w io.Writer, cols int) {
	if cols <= 0 {
		cols = 64
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	line := func(name string, s TimeSeries) {
		if len(s.Points) == 0 {
			return
		}
		end := uint64(s.Last()+1) * s.Width
		fmt.Fprintf(tw, "%s\t|%s|\ttotal %d, to %s\n", name, sparkline(s, cols), s.Total(), fmtTicks(end))
	}
	for _, l := range r.Links {
		line(r.NodeName(l.Node)+".egress", l.Egress)
		line(r.NodeName(l.Node)+".egressq", l.EgressBacklog)
		line(r.NodeName(l.Node)+".ingressq", l.IngressBacklog)
	}
	for _, o := range r.Occupancy {
		line(r.NodeName(o.Node)+"."+o.Res, o.Series)
	}
	if r.LLC != nil {
		line("llc.indirection", r.LLC.Indirection)
		line("llc.revocations", r.LLC.Revocations)
		line("llc.evictions", r.LLC.Evictions)
		line("llc.conflicts", r.LLC.Conflicts)
	}
	if r.DRAM != nil {
		line("dram.read", r.DRAM.Read)
		line("dram.write", r.DRAM.Write)
	}
	tw.Flush()
}

// RenderTopLines writes the top-n contended-lines table plus the top-n
// conflicted LLC sets and busiest DRAM rows.
func (r *MetricsReport) RenderTopLines(w io.Writer, n int) {
	if n <= 0 {
		n = 10
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if lines := r.TopLines(n); len(lines) > 0 {
		fmt.Fprintf(tw, "line\tcontention\taccess\treqors\tchurn\towner\trevoke\tfwd\tmix\n")
		for _, l := range lines {
			var mix []string
			for _, k := range []string{"ReqV", "ReqS", "ReqWT", "ReqO", "ReqWB", "Atomic", "Probe", "Mem"} {
				if v := l.Mix[k]; v > 0 {
					mix = append(mix, fmt.Sprintf("%s:%d", k, v))
				}
			}
			fmt.Fprintf(tw, "%#x\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				l.Line, l.Contention(), l.Access, l.RequestorCount(),
				l.SharerChurn, l.OwnerMoves, l.Revokes, l.Forwards,
				strings.Join(mix, " "))
		}
	}
	if sets := r.TopSets(n); len(sets) > 0 {
		fmt.Fprintf(tw, "\nllc set\tconflicts\tevictions\n")
		for _, s := range sets {
			fmt.Fprintf(tw, "%d\t%d\t%d\n", s.Set, s.Conflicts, s.Evictions)
		}
	}
	if rows := r.TopRows(n); len(rows) > 0 {
		fmt.Fprintf(tw, "\ndram row\treads\twrites\n")
		for _, d := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\n", d.Row, d.Reads, d.Writes)
		}
	}
	tw.Flush()
}

// RenderHeatmap writes the text address-space heatmap: one row per 4 KiB
// region, with an access-count bar scaled to the hottest region.
func (r *MetricsReport) RenderHeatmap(w io.Writer, cols int) {
	if cols <= 0 {
		cols = 40
	}
	var max uint64
	for _, rg := range r.Regions {
		if rg.Access > max {
			max = rg.Access
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "no region accesses recorded")
		return
	}
	fmt.Fprintf(w, "address-space heatmap (%d regions × 4KiB, hottest = %d accesses)\n", len(r.Regions), max)
	for _, rg := range r.Regions {
		bar := int(rg.Access * uint64(cols) / max)
		if bar == 0 && rg.Access > 0 {
			bar = 1
		}
		fmt.Fprintf(w, "%#010x  %-*s %d\n", rg.Region<<regionShift, cols,
			strings.Repeat("█", bar), rg.Access)
	}
}

// WriteHeatmapDOT writes the heatmap as a Graphviz strip: one box per
// touched region, red-shaded by relative access intensity, chained in
// address order so `dot -Tsvg` lays them out as an address-space band.
func (r *MetricsReport) WriteHeatmapDOT(w io.Writer) error {
	var max uint64
	for _, rg := range r.Regions {
		if rg.Access > max {
			max = rg.Access
		}
	}
	if _, err := fmt.Fprintln(w, "digraph heatmap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, style=filled, fontname=\"monospace\"];")
	for _, rg := range r.Regions {
		// Shade from white (cold) to red (hot) via the green/blue channels.
		level := 0xff
		if max > 0 {
			level = 0xff - int(rg.Access*0xff/max)
		}
		fmt.Fprintf(w, "  r%d [label=\"%#x\\n%d\", fillcolor=\"#ff%02x%02x\"];\n",
			rg.Region, rg.Region<<regionShift, rg.Access, level, level)
	}
	for i := 1; i < len(r.Regions); i++ {
		fmt.Fprintf(w, "  r%d -> r%d [style=invis];\n", r.Regions[i-1].Region, r.Regions[i].Region)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteHeatmapCSV writes the heatmap as region,address,access rows.
func (r *MetricsReport) WriteHeatmapCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "region,address,access"); err != nil {
		return err
	}
	for _, rg := range r.Regions {
		if _, err := fmt.Fprintf(w, "%d,%#x,%d\n", rg.Region, rg.Region<<regionShift, rg.Access); err != nil {
			return err
		}
	}
	return nil
}
