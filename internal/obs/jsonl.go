package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the wire form of one Event: flat, stable field names,
// message fields inlined (the *proto.Message must not be retained).
type jsonlEvent struct {
	At    uint64 `json:"at"`
	Ev    string `json:"ev"`
	Node  int    `json:"node"`
	Trace uint64 `json:"trace,omitempty"`
	Class string `json:"class,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
	Msg   string `json:"msg,omitempty"`
	Line  uint64 `json:"line,omitempty"`
	Src   int    `json:"src,omitempty"`
	Dst   int    `json:"dst,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Res   string `json:"res,omitempty"`
}

// JSONLSink streams every event as one JSON object per line. Close
// flushes the underlying buffer.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w in a streaming JSONL sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Event implements Sink.
func (s *JSONLSink) Event(ev Event) {
	if s.err != nil {
		return
	}
	rec := jsonlEvent{
		At:    uint64(ev.At),
		Ev:    ev.Kind.String(),
		Node:  int(ev.Node),
		Trace: ev.Trace,
		Arg:   ev.Arg,
		Res:   ev.Res,
	}
	//spandex:partialswitch only op events carry class/addr; every kind shares the flat fields above
	switch ev.Kind {
	case EvOpIssue, EvOpDone:
		rec.Class = ev.Class.String()
		rec.Addr = uint64(ev.Addr)
	}
	if ev.Msg != nil {
		rec.Msg = ev.Msg.Type.Ident()
		rec.Line = uint64(ev.Msg.Line)
		rec.Src = int(ev.Msg.Src)
		rec.Dst = int(ev.Msg.Dst)
	}
	s.err = s.enc.Encode(rec)
}

// Close flushes buffered output and reports the first write error.
func (s *JSONLSink) Close() error {
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	return s.err
}
