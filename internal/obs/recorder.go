package obs

import (
	"strings"

	"spandex/internal/detsort"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// Config parameterizes a Recorder with the run's topology and the
// features to record.
type Config struct {
	// Latency enables the per-request phase state machine and the
	// latency histograms.
	Latency bool
	// Occupancy enables the queue/MSHR occupancy time series.
	Occupancy bool
	// Sink receives every event (may be nil).
	Sink Sink
	// Metrics, when non-nil, receives every event into the system-level
	// metrics registry (time series, contention tallies, line history).
	Metrics *Metrics

	// LLCNodes are the node ids whose delivery means "LLC service":
	// the Spandex LLC, or the GPU L2 and the L3 directory in the
	// hierarchical baseline.
	LLCNodes []proto.NodeID
	// MemID is the DRAM node id.
	MemID proto.NodeID
}

// reqState is the phase machine of one live request.
type reqState struct {
	class   OpClass
	origin  proto.NodeID
	issueAt sim.Time
	cur     Phase
	since   sim.Time
	fwd     bool
	phases  [NumPhases]uint64
}

// ClassAgg aggregates completed requests of one operation class.
type classAgg struct {
	count  uint64
	total  uint64
	phases [NumPhases]uint64
	hist   Hist
}

type occKey struct {
	node proto.NodeID
	res  string
}

// occMaxSamples caps each occupancy series; when full the series is
// decimated by dropping every other sample and the sampling stride
// doubles, keeping memory bounded and the result deterministic.
const occMaxSamples = 4096

type occSeries struct {
	points []OccPoint
	stride uint64
	skip   uint64
}

func (s *occSeries) add(at sim.Time, v uint64) {
	if s.stride == 0 {
		s.stride = 1
	}
	s.skip++
	if s.skip < s.stride {
		return
	}
	s.skip = 0
	s.points = append(s.points, OccPoint{At: uint64(at), Value: v})
	if len(s.points) >= occMaxSamples {
		kept := s.points[:0]
		for i := 0; i < len(s.points); i += 2 {
			kept = append(kept, s.points[i])
		}
		s.points = kept
		s.stride *= 2
	}
}

// Recorder is the per-System event consumer: it assigns trace ids, runs
// the phase machine, aggregates histograms and occupancy series, and
// forwards events to the configured sink. A Recorder belongs to exactly
// one System and is not safe for concurrent use — the simulator is
// single-threaded, so no locking is needed (run isolation gives sweep
// parallelism).
type Recorder struct {
	cfg  Config
	llc  map[proto.NodeID]bool
	next uint64
	live map[uint64]*reqState
	agg  [NumOpClasses]classAgg
	occ  map[occKey]*occSeries
}

// New creates a Recorder.
func New(cfg Config) *Recorder {
	r := &Recorder{
		cfg:  cfg,
		llc:  make(map[proto.NodeID]bool, len(cfg.LLCNodes)),
		live: make(map[uint64]*reqState),
		occ:  make(map[occKey]*occSeries),
	}
	for _, id := range cfg.LLCNodes {
		r.llc[id] = true
	}
	if cfg.Metrics != nil {
		cfg.Metrics.bind(r.llc, cfg.MemID)
	}
	return r
}

// Metrics returns the attached metrics registry (nil if none).
func (r *Recorder) Metrics() *Metrics { return r.cfg.Metrics }

// SetSink installs (or replaces) the recorder's event sink.
func (r *Recorder) SetSink(s Sink) { r.cfg.Sink = s }

// Sink returns the current sink (nil if none).
func (r *Recorder) Sink() Sink { return r.cfg.Sink }

// NextTrace allocates the next request id. Ids are 1-based and
// deterministic: they follow device issue order, which is fixed by the
// event ordering of the deterministic engine.
func (r *Recorder) NextTrace() uint64 {
	r.next++
	return r.next
}

// Emit consumes one event. It must only be called from instrumentation
// sites guarded by a nil check on the Recorder pointer, so the disabled
// path costs a single comparison.
func (r *Recorder) Emit(ev Event) {
	if r.cfg.Sink != nil {
		r.cfg.Sink.Event(ev)
	}
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.observe(ev)
	}
	if ev.Kind == EvOccupancy {
		if r.cfg.Occupancy {
			k := occKey{node: ev.Node, res: ev.Res}
			s := r.occ[k]
			if s == nil {
				s = &occSeries{stride: 1}
				r.occ[k] = s
			}
			s.add(ev.At, ev.Arg)
		}
		return
	}
	if !r.cfg.Latency {
		return
	}
	r.step(ev)
}

// step advances the phase machine for the event's request. Events whose
// trace is zero or already finalized are ignored here (sinks still saw
// them): e.g. probes the LLC initiates on its own behalf, evictions,
// and writebacks carrying a stale trace of a completed request.
func (r *Recorder) step(ev Event) {
	if ev.Kind == EvOpIssue {
		r.live[ev.Trace] = &reqState{
			class:   ev.Class,
			origin:  ev.Node,
			issueAt: ev.At,
			cur:     PhaseL1,
			since:   ev.At,
		}
		return
	}
	st := r.live[ev.Trace]
	if st == nil {
		return
	}
	// Close the current phase interval up to this event.
	st.phases[st.cur] += uint64(ev.At - st.since)
	st.since = ev.At

	//spandex:partialswitch EvOpIssue returned above and Emit filters EvOccupancy; both are unreachable here
	switch ev.Kind {
	case EvOpDone:
		agg := &r.agg[st.class]
		agg.count++
		total := uint64(ev.At - st.issueAt)
		agg.total += total
		for p := Phase(0); p < NumPhases; p++ {
			agg.phases[p] += st.phases[p]
		}
		agg.hist.Add(total)
		delete(r.live, ev.Trace)
	case EvMsgSend:
		switch {
		case ev.Msg != nil && (ev.Msg.Dst == r.cfg.MemID || ev.Msg.Src == r.cfg.MemID):
			st.cur = PhaseDRAM
		case st.fwd:
			st.cur = PhaseIndirection
		default:
			st.cur = PhaseNet
		}
	case EvMsgDeliver:
		switch {
		case ev.Msg != nil && ev.Msg.Dst == st.origin:
			st.cur = PhaseL1
			st.fwd = false
		case r.llc[ev.Node]:
			st.cur = PhaseLLC
		case ev.Node == r.cfg.MemID:
			st.cur = PhaseDRAM
		default:
			st.cur = PhaseIndirection
		}
	case EvLLCBlock:
		st.cur = PhaseBlocked
	case EvLLCUnblock:
		st.cur = PhaseLLC
	case EvLLCForward:
		st.fwd = true
		st.cur = PhaseIndirection
	}
}

// Report flattens the aggregates into the exportable LatencyReport.
// Iteration orders are normalized by sorting, so the report is
// deterministic.
func (r *Recorder) Report() *LatencyReport {
	rep := &LatencyReport{}
	for c := OpClass(0); c < NumOpClasses; c++ {
		agg := &r.agg[c]
		if agg.count == 0 {
			continue
		}
		cl := ClassLatency{
			Class:      c.String(),
			Count:      agg.count,
			TotalTicks: agg.total,
			Mean:       agg.hist.Mean(),
			P50:        agg.hist.Quantile(0.50),
			P90:        agg.hist.Quantile(0.90),
			P99:        agg.hist.Quantile(0.99),
			Max:        agg.hist.Max,
		}
		for p := Phase(0); p < NumPhases; p++ {
			cl.Phases[p] = agg.phases[p]
		}
		rep.Classes = append(rep.Classes, cl)
		rep.Requests += agg.count
	}
	rep.Unfinished = len(r.live)

	keys := detsort.KeysFunc(r.occ, func(a, b occKey) int {
		if a.node != b.node {
			return int(a.node) - int(b.node)
		}
		return strings.Compare(a.res, b.res)
	})
	for _, k := range keys {
		rep.Occupancy = append(rep.Occupancy, OccSeries{
			Node:   int(k.node),
			Res:    k.res,
			Points: r.occ[k].points,
		})
	}
	return rep
}
