package obs

// LatencyReport is the run-level latency attribution summary merged into
// a Result. All times are in ticks (1 tick = 1 ps); renderers convert to
// cycles.
type LatencyReport struct {
	// Classes holds one row per operation class that completed at least
	// one request, in OpClass order.
	Classes []ClassLatency `json:"classes"`
	// Occupancy holds the sampled queue/MSHR occupancy time series,
	// sorted by (node, resource).
	Occupancy []OccSeries `json:"occupancy,omitempty"`
	// Requests is the total completed tracked requests.
	Requests uint64 `json:"requests"`
	// Unfinished counts requests issued but never completed — always
	// zero after a successful run.
	Unfinished int `json:"unfinished,omitempty"`
}

// ClassLatency is one operation class's latency aggregate.
type ClassLatency struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`
	// TotalTicks is the summed end-to-end latency of all requests.
	TotalTicks uint64 `json:"totalTicks"`
	// Phases attributes TotalTicks to phases; the entries sum to
	// TotalTicks exactly (the phase machine closes every interval).
	Phases [NumPhases]uint64 `json:"phases"`
	Mean   float64           `json:"mean"`
	P50    uint64            `json:"p50"`
	P90    uint64            `json:"p90"`
	P99    uint64            `json:"p99"`
	Max    uint64            `json:"max"`
}

// PhaseSum returns the summed phase attribution, which equals
// TotalTicks by construction (tested by TestPhaseReconciliation).
func (c ClassLatency) PhaseSum() uint64 {
	var sum uint64
	for _, v := range c.Phases {
		sum += v
	}
	return sum
}

// OccPoint is one occupancy sample.
type OccPoint struct {
	At    uint64 `json:"at"`
	Value uint64 `json:"value"`
}

// OccSeries is one resource's occupancy time series.
type OccSeries struct {
	Node   int        `json:"node"`
	Res    string     `json:"res"`
	Points []OccPoint `json:"points"`
}
