package obs

import (
	"bytes"
	"encoding/csv"
	"sort"
	"strings"
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

func TestTSeriesBucketsAndRescale(t *testing.T) {
	s := newTSeries(16, 4) // 4 buckets of 16 ticks
	s.add(0, 1)
	s.add(17, 2)
	s.add(63, 3)
	if len(s.buckets) != 4 || s.width != 16 {
		t.Fatalf("pre-rescale shape: %d buckets width %d", len(s.buckets), s.width)
	}
	// A sample past the cap rescales: pairs merge, width doubles.
	s.add(64, 4) // idx 4 at width 16 → rescale once → idx 2 at width 32
	if s.width != 32 {
		t.Fatalf("width after rescale = %d, want 32", s.width)
	}
	ts := s.export()
	if ts.Total() != 1+2+3+4 {
		t.Errorf("total = %d, want 10 (rescale must preserve sums)", ts.Total())
	}
	// Bucket 0 now covers [0,32): samples 1 and 2. Bucket 1 covers [32,64):
	// sample 3. Bucket 2 covers [64,96): sample 4.
	want := map[int]SeriesBucket{
		0: {Sum: 3, Count: 2, Max: 2},
		1: {Sum: 3, Count: 1, Max: 3},
		2: {Sum: 4, Count: 1, Max: 4},
	}
	if len(ts.Points) != len(want) {
		t.Fatalf("points = %+v", ts.Points)
	}
	for _, p := range ts.Points {
		if w, ok := want[p.Index]; !ok || p.SeriesBucket != w {
			t.Errorf("bucket %d = %+v, want %+v", p.Index, p.SeriesBucket, want[p.Index])
		}
	}
}

func TestTSeriesDistantSampleRescalesRepeatedly(t *testing.T) {
	s := newTSeries(16, 4)
	s.add(3, 5)
	s.add(16*4*1000, 7) // forces ~10 doublings
	if got := s.export().Total(); got != 12 {
		t.Errorf("total = %d, want 12", got)
	}
	if s.width <= 16 || s.width&(s.width-1) != 0 {
		t.Errorf("width %d must be a power-of-two multiple of the initial width", s.width)
	}
	if len(s.buckets) > 4 {
		t.Errorf("bucket count %d exceeds cap 4", len(s.buckets))
	}
}

// TestTSeriesDeterminism: identical sample streams produce identical
// exports — the rescale schedule is a pure function of sample times.
func TestTSeriesDeterminism(t *testing.T) {
	build := func() TimeSeries {
		s := newTSeries(16, 8)
		for i := 0; i < 10000; i++ {
			s.add(sim.Time(i*37), uint64(i%11))
		}
		return s.export()
	}
	a, b := build(), build()
	if a.Width != b.Width || len(a.Points) != len(b.Points) {
		t.Fatalf("shapes differ: %d/%d vs %d/%d", a.Width, len(a.Points), b.Width, len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// touch registers a line-request delivery at an LLC node, the event that
// feeds the per-line history table.
func touch(m *Metrics, line uint64, at sim.Time) {
	msg := &proto.Message{Type: proto.ReqV, Line: memaddr.LineAddr(line), Requestor: 1}
	m.observe(Event{At: at, Kind: EvMsgDeliver, Node: 9, Msg: msg})
}

func newLineMetrics(cap int) *Metrics {
	cfg := DefaultMetricsConfig()
	cfg.LineTableCap = cap
	m := NewMetrics(cfg)
	m.bind(map[proto.NodeID]bool{9: true}, 10)
	return m
}

func TestLineTableLRUCap(t *testing.T) {
	m := newLineMetrics(2)
	touch(m, 0, 1)
	touch(m, 64, 2)
	touch(m, 0, 3)   // line 0 most recent
	touch(m, 128, 4) // evicts line 64 (LRU), not line 0
	if len(m.lines) != 2 {
		t.Fatalf("table size %d, want 2", len(m.lines))
	}
	if _, ok := m.lines[64]; ok {
		t.Error("line 64 should have aged out")
	}
	if _, ok := m.lines[0]; !ok {
		t.Error("line 0 (recently touched) should survive")
	}
	if m.linesEvicted != 1 {
		t.Errorf("linesEvicted = %d, want 1", m.linesEvicted)
	}
	rep := m.Report()
	if rep.LinesAgedOut != 1 {
		t.Errorf("report LinesAgedOut = %d, want 1", rep.LinesAgedOut)
	}
}

func TestLineHistoryCounts(t *testing.T) {
	m := newLineMetrics(0) // default cap
	touch(m, 64, 1)
	touch(m, 64, 2)
	m.observe(Event{At: 3, Kind: EvLineOwner, Node: 9, Addr: 64, Arg: 4})
	m.observe(Event{At: 4, Kind: EvLineSharer, Node: 9, Addr: 64, Arg: 2})
	m.observe(Event{At: 5, Kind: EvLLCRevoke, Node: 9, Addr: 64, Arg: 3})
	rep := m.Report()
	if len(rep.Lines) != 1 {
		t.Fatalf("lines: %+v", rep.Lines)
	}
	l := rep.Lines[0]
	if l.Line != 64 || l.Access != 2 || l.OwnerMoves != 4 || l.SharerChurn != 2 || l.Revokes != 3 {
		t.Errorf("history = %+v", l)
	}
	if l.Contention() != 4+2+3 {
		t.Errorf("contention = %d", l.Contention())
	}
	if l.Mix["ReqV"] != 2 {
		t.Errorf("mix = %v", l.Mix)
	}
	if l.RequestorCount() != 1 || l.RequestorSet != 1<<1 {
		t.Errorf("requestors = %#x", l.RequestorSet)
	}
}

// TestReportOrdering: map-backed aggregates must export in sorted key
// order regardless of insertion order.
func TestReportOrdering(t *testing.T) {
	m := NewMetrics(DefaultMetricsConfig())
	m.bind(map[proto.NodeID]bool{9: true}, 10)
	for _, line := range []uint64{64 * 7, 64 * 2, 64 * 9, 64 * 1} {
		touch(m, line, 1)
	}
	m.observe(Event{At: 1, Kind: EvLLCConflict, Node: 9, Addr: 0, Arg: 5})
	m.observe(Event{At: 2, Kind: EvLLCConflict, Node: 9, Addr: 0, Arg: 1})
	m.observe(Event{At: 3, Kind: EvLLCEvict, Node: 9, Addr: 0, Arg: 3})
	rep := m.Report()
	if !sort.SliceIsSorted(rep.Lines, func(i, j int) bool { return rep.Lines[i].Line < rep.Lines[j].Line }) {
		t.Errorf("lines not sorted: %+v", rep.Lines)
	}
	if !sort.SliceIsSorted(rep.Regions, func(i, j int) bool { return rep.Regions[i].Region < rep.Regions[j].Region }) {
		t.Errorf("regions not sorted: %+v", rep.Regions)
	}
	if !sort.SliceIsSorted(rep.LLC.Sets, func(i, j int) bool { return rep.LLC.Sets[i].Set < rep.LLC.Sets[j].Set }) {
		t.Errorf("sets not sorted: %+v", rep.LLC.Sets)
	}
}

func TestTopRankingsDeterministic(t *testing.T) {
	rep := &MetricsReport{
		Lines: []LineMetrics{
			{Line: 192, OwnerMoves: 5},
			{Line: 64, OwnerMoves: 5}, // tie on contention and access → address asc
			{Line: 128, OwnerMoves: 9},
		},
	}
	top := rep.TopLines(2)
	if len(top) != 2 || top[0].Line != 128 || top[1].Line != 64 {
		t.Errorf("top lines: %+v", top)
	}
}

func buildSampleMetrics() *Metrics {
	m := NewMetrics(DefaultMetricsConfig())
	m.bind(map[proto.NodeID]bool{9: true}, 10)
	m.SetNodeName(0, "cpu0")
	m.SetNodeName(9, "llc")
	msg := &proto.Message{Type: proto.ReqV, Line: 64, Src: 0, Dst: 9, Requestor: 0, Mask: 1}
	m.observe(Event{At: 5, Kind: EvMsgSend, Node: 0, Msg: msg, Arg: 100})
	m.observe(Event{At: 5, Kind: EvLinkBacklog, Node: 0, Res: "egress", Arg: 40})
	m.observe(Event{At: 100, Kind: EvMsgDeliver, Node: 9, Msg: msg})
	m.observe(Event{At: 101, Kind: EvOccupancy, Node: 9, Res: "llc.reqq", Arg: 1})
	m.observe(Event{At: 120, Kind: EvLLCConflict, Node: 9, Addr: 64, Arg: 1})
	m.observe(Event{At: 130, Kind: EvLLCEvict, Node: 9, Addr: 64, Arg: 1})
	m.observe(Event{At: 140, Kind: EvDRAMAccess, Node: 10, Res: "rd", Addr: 64, Arg: 64})
	m.observe(Event{At: 150, Kind: EvDRAMAccess, Node: 10, Res: "wr", Addr: 64, Arg: 8})
	return m
}

func TestMetricsExportRoundTrip(t *testing.T) {
	rep := buildSampleMetrics().Report()

	var jsonl bytes.Buffer
	if err := rep.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	counts, err := ValidateMetricsJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatalf("export fails validation: %v\n%s", err, jsonl.String())
	}
	for _, kind := range []string{"meta", "link", "series", "set", "dram", "row", "line", "region"} {
		if counts[kind] == 0 {
			t.Errorf("export has no %q records", kind)
		}
	}

	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(csvBuf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(records) < 5 {
		t.Fatalf("suspiciously small CSV: %d rows", len(records))
	}
	if got := strings.Join(records[0], ","); got != "record,name,node,res,key,width,sum,count,max" {
		t.Errorf("CSV header = %q", got)
	}
}

func TestValidateMetricsJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"not meta first": `{"kind":"line","line":64}`,
		"unknown kind":   `{"kind":"meta","bucketTicks":16}` + "\n" + `{"kind":"bogus"}`,
		"bad width":      `{"kind":"meta","bucketTicks":16}` + "\n" + `{"kind":"series","name":"x","width":3}`,
		"unaligned line": `{"kind":"meta","bucketTicks":16}` + "\n" + `{"kind":"line","line":65,"access":1}`,
		"empty":          ``,
	}
	for name, in := range cases {
		if _, err := ValidateMetricsJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

func TestMetricsRenderSmoke(t *testing.T) {
	rep := buildSampleMetrics().Report()
	var b strings.Builder
	rep.RenderSummary(&b)
	for _, frag := range []string{"cpu0", "llc.reqq", "dram reads", "regions touched"} {
		if !strings.Contains(b.String(), frag) {
			t.Errorf("summary missing %q:\n%s", frag, b.String())
		}
	}
	b.Reset()
	rep.RenderTimeline(&b, 32)
	if !strings.Contains(b.String(), "cpu0.egress") || !strings.Contains(b.String(), "dram.read") {
		t.Errorf("timeline missing series:\n%s", b.String())
	}
	b.Reset()
	rep.RenderTopLines(&b, 5)
	if !strings.Contains(b.String(), "contention") {
		t.Errorf("top-lines missing header:\n%s", b.String())
	}
	b.Reset()
	rep.RenderHeatmap(&b, 20)
	if !strings.Contains(b.String(), "heatmap") {
		t.Errorf("heatmap missing header:\n%s", b.String())
	}
	b.Reset()
	if err := rep.WriteHeatmapDOT(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "digraph heatmap {") || !strings.Contains(b.String(), "fillcolor") {
		t.Errorf("DOT heatmap malformed:\n%s", b.String())
	}
	b.Reset()
	if err := rep.WriteHeatmapCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "region,address,access") {
		t.Errorf("heatmap CSV malformed:\n%s", b.String())
	}
}

// TestMetricsOffIsNil: a zero MetricsConfig collects nothing, and observe
// is safe to call on every event kind.
func TestMetricsZeroConfigCollectsNothing(t *testing.T) {
	m := NewMetrics(MetricsConfig{})
	m.bind(map[proto.NodeID]bool{9: true}, 10)
	msg := &proto.Message{Type: proto.ReqV, Line: 64, Requestor: 0}
	for k := EventKind(0); k < numEventKinds; k++ {
		m.observe(Event{At: 1, Kind: k, Node: 9, Msg: msg, Res: "egress"})
	}
	rep := m.Report()
	if len(rep.Links) != 0 || len(rep.Lines) != 0 || rep.LLC != nil || rep.DRAM != nil {
		t.Errorf("zero config collected data: %+v", rep)
	}
}
