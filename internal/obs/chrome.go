package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"spandex/internal/detsort"
	"spandex/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// flavour Perfetto loads). Async begin/end pairs ("b"/"e") are used for
// slices because message flights and warp operations overlap freely —
// duration ("X") events would violate stack nesting.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// tsOf converts simulated ticks (1 tick = 1 ps) to the trace format's
// microseconds.
func tsOf(t sim.Time) float64 { return float64(t) / 1e6 }

type chromeOpen struct {
	pid int
	cat string
	nm  string
}

// ChromeSink accumulates events and writes a Chrome trace-event file on
// Close. Tracks: one process per node (devices, LLC banks, DRAM), async
// slices for message flights ("msg"), operation lifetimes ("op") and LLC
// blocking intervals ("llc"), counter tracks for occupancy.
type ChromeSink struct {
	events  []chromeEvent
	names   map[int]string
	pids    map[int]bool
	openOp  map[uint64]chromeOpen
	openBlk map[uint64]chromeOpen
	seq     uint64
	last    sim.Time
}

// NewChromeSink returns an empty sink.
func NewChromeSink() *ChromeSink {
	return &ChromeSink{
		names:   make(map[int]string),
		pids:    make(map[int]bool),
		openOp:  make(map[uint64]chromeOpen),
		openBlk: make(map[uint64]chromeOpen),
	}
}

// SetNodeName labels a node's process track ("cpu0", "LLC", "MEM", …).
func (s *ChromeSink) SetNodeName(node int, name string) { s.names[node] = name }

// Event implements Sink.
func (s *ChromeSink) Event(ev Event) {
	if ev.At > s.last {
		s.last = ev.At
	}
	//spandex:partialswitch EvMsgDeliver draws nothing: EvMsgSend already emitted the full flight slice
	switch ev.Kind {
	case EvMsgSend:
		if ev.Msg == nil {
			return
		}
		s.seq++
		id := fmt.Sprintf("m%d", s.seq)
		pid := int(ev.Msg.Src)
		args := map[string]any{
			"line": fmt.Sprintf("%#x", uint64(ev.Msg.Line)),
			"dst":  int(ev.Msg.Dst),
		}
		if ev.Trace != 0 {
			args["trace"] = ev.Trace
		}
		s.add(chromeEvent{Name: ev.Msg.Type.Ident(), Cat: "msg", Ph: "b",
			Ts: tsOf(ev.At), Pid: pid, ID: id, Args: args})
		s.add(chromeEvent{Name: ev.Msg.Type.Ident(), Cat: "msg", Ph: "e",
			Ts: tsOf(sim.Time(ev.Arg)), Pid: pid, ID: id})
		if sim.Time(ev.Arg) > s.last {
			s.last = sim.Time(ev.Arg)
		}
	case EvOpIssue:
		if _, dup := s.openOp[ev.Trace]; dup {
			return
		}
		o := chromeOpen{pid: int(ev.Node), cat: "op", nm: ev.Class.String()}
		s.openOp[ev.Trace] = o
		s.add(chromeEvent{Name: o.nm, Cat: o.cat, Ph: "b", Ts: tsOf(ev.At),
			Pid: o.pid, ID: fmt.Sprintf("t%d", ev.Trace),
			Args: map[string]any{"addr": fmt.Sprintf("%#x", uint64(ev.Addr))}})
	case EvOpDone:
		o, ok := s.openOp[ev.Trace]
		if !ok {
			return
		}
		delete(s.openOp, ev.Trace)
		s.add(chromeEvent{Name: o.nm, Cat: o.cat, Ph: "e", Ts: tsOf(ev.At),
			Pid: o.pid, ID: fmt.Sprintf("t%d", ev.Trace)})
	case EvLLCBlock:
		if _, dup := s.openBlk[ev.Trace]; dup || ev.Trace == 0 {
			return
		}
		o := chromeOpen{pid: int(ev.Node), cat: "llc", nm: "blocked"}
		s.openBlk[ev.Trace] = o
		s.add(chromeEvent{Name: o.nm, Cat: o.cat, Ph: "b", Ts: tsOf(ev.At),
			Pid: o.pid, ID: fmt.Sprintf("blk%d", ev.Trace)})
	case EvLLCUnblock:
		o, ok := s.openBlk[ev.Trace]
		if !ok {
			return
		}
		delete(s.openBlk, ev.Trace)
		s.add(chromeEvent{Name: o.nm, Cat: o.cat, Ph: "e", Ts: tsOf(ev.At),
			Pid: o.pid, ID: fmt.Sprintf("blk%d", ev.Trace)})
	case EvLLCForward:
		s.add(chromeEvent{Name: "forward", Cat: "llc", Ph: "i",
			Ts: tsOf(ev.At), Pid: int(ev.Node), S: "t",
			Args: map[string]any{"trace": ev.Trace}})
	case EvOccupancy:
		s.add(chromeEvent{Name: ev.Res, Ph: "C", Ts: tsOf(ev.At),
			Pid: int(ev.Node), Args: map[string]any{"value": ev.Arg}})
	}
}

func (s *ChromeSink) add(e chromeEvent) {
	s.pids[e.Pid] = true
	s.events = append(s.events, e)
}

// Close finalizes the trace (closing any still-open slices at the last
// observed timestamp, in deterministic order), prepends process-name
// metadata, sorts events by timestamp and writes the JSON file.
func (s *ChromeSink) Close(w io.Writer) error {
	closeAll := func(open map[uint64]chromeOpen, prefix string) {
		for _, id := range detsort.Keys(open) {
			o := open[id]
			s.add(chromeEvent{Name: o.nm, Cat: o.cat, Ph: "e",
				Ts: tsOf(s.last), Pid: o.pid, ID: fmt.Sprintf("%s%d", prefix, id)})
			delete(open, id)
		}
	}
	closeAll(s.openOp, "t")
	closeAll(s.openBlk, "blk")

	pids := detsort.Keys(s.pids)
	meta := make([]chromeEvent, 0, len(pids))
	for _, pid := range pids {
		name := s.names[pid]
		if name == "" {
			name = fmt.Sprintf("node%d", pid)
		}
		meta = append(meta, chromeEvent{Name: "process_name", Ph: "M",
			Pid: pid, Args: map[string]any{"name": name}})
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Ts < s.events[j].Ts })
	out := chromeFile{TraceEvents: append(meta, s.events...)}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChromeTrace checks that r holds a loadable Chrome trace-event
// file with well-formed event nesting: every async end matches a prior
// begin with the same (cat, id, pid) at a non-decreasing timestamp, and
// no slice is left open. This is the CI trace-smoke gate.
func ValidateChromeTrace(r io.Reader) error {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("chrome trace: not valid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return fmt.Errorf("chrome trace: no traceEvents")
	}
	type key struct {
		cat, id string
		pid     int
	}
	open := make(map[key]float64)
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case "b":
			k := key{e.Cat, e.ID, e.Pid}
			if _, dup := open[k]; dup {
				return fmt.Errorf("chrome trace: event %d: duplicate begin for %s/%s pid=%d", i, e.Cat, e.ID, e.Pid)
			}
			open[k] = e.Ts
		case "e":
			k := key{e.Cat, e.ID, e.Pid}
			ts, ok := open[k]
			if !ok {
				return fmt.Errorf("chrome trace: event %d: end without begin for %s/%s pid=%d", i, e.Cat, e.ID, e.Pid)
			}
			if e.Ts < ts {
				return fmt.Errorf("chrome trace: event %d: end before begin for %s/%s pid=%d", i, e.Cat, e.ID, e.Pid)
			}
			delete(open, k)
		case "M", "i", "C":
			// metadata, instants and counters carry no nesting
		case "":
			return fmt.Errorf("chrome trace: event %d: missing ph", i)
		default:
			return fmt.Errorf("chrome trace: event %d: unexpected ph %q", i, e.Ph)
		}
	}
	if len(open) != 0 {
		return fmt.Errorf("chrome trace: %d slice(s) never closed", len(open))
	}
	return nil
}
