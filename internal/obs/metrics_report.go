package obs

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"spandex/internal/detsort"
	"spandex/internal/proto"
)

// MetricsReport is the exportable form of one run's Metrics registry.
// Every slice is sorted (node id, set index, row address, line address),
// so identical runs produce byte-identical JSON. Like LatencyReport it is
// excluded from Result.Fingerprint: metrics observe, they never perturb.
type MetricsReport struct {
	// BucketTicks is the configured initial series bucket width; each
	// series carries its own final (possibly rescaled) Width.
	BucketTicks uint64 `json:"bucketTicks"`
	// Links holds one entry per NoC endpoint that sent a message.
	Links []LinkMetrics `json:"links,omitempty"`
	// Occupancy holds the bucketed occupancy series by (node, resource):
	// L1 MSHRs ("mshr"), the LLC transaction table ("llc.txns"), and the
	// LLC request queue ("llc.reqq").
	Occupancy []OccMetrics `json:"occupancy,omitempty"`
	// LLC carries the coherence-point contention telemetry.
	LLC *LLCMetrics `json:"llc,omitempty"`
	// DRAM carries memory bandwidth and row access counts.
	DRAM *DRAMMetrics `json:"dram,omitempty"`
	// Lines is the per-line history table (up to LineTableCap entries);
	// LinesAgedOut counts entries the LRU cap discarded. Regions is the
	// 4 KiB-granular address-space access histogram behind the heatmap.
	Lines        []LineMetrics   `json:"lines,omitempty"`
	LinesAgedOut uint64          `json:"linesAgedOut,omitempty"`
	Regions      []RegionMetrics `json:"regions,omitempty"`
	// Names labels node ids ("cpu0", "llc", "mem") for rendering.
	Names map[int]string `json:"names,omitempty"`
}

// LinkMetrics is one NoC endpoint's telemetry.
type LinkMetrics struct {
	Node  int    `json:"node"`
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
	// Egress buckets bytes sent per window (utilization = Sum *
	// TicksPerByte / Width). EgressBacklog and IngressBacklog bucket the
	// queuing delay (ticks) messages absorbed at the busy link.
	Egress         TimeSeries `json:"egress"`
	EgressBacklog  TimeSeries `json:"egressBacklog"`
	IngressBacklog TimeSeries `json:"ingressBacklog"`
}

// OccMetrics is one resource's bucketed occupancy series.
type OccMetrics struct {
	Node   int    `json:"node"`
	Res    string `json:"res"`
	Series TimeSeries
}

// LLCMetrics is the coherence point's contention telemetry.
type LLCMetrics struct {
	// Sets lists conflict/eviction counts for every set that saw either.
	Sets []SetMetrics `json:"sets,omitempty"`
	// Indirection buckets owner-forwarded requests per window;
	// Revocations buckets revoked words; Evictions and Conflicts bucket
	// line evictions and full-set allocation stalls.
	Indirection TimeSeries `json:"indirection"`
	Revocations TimeSeries `json:"revocations"`
	Evictions   TimeSeries `json:"evictions"`
	Conflicts   TimeSeries `json:"conflicts"`
}

// SetMetrics is one LLC set's tally.
type SetMetrics struct {
	Set       int    `json:"set"`
	Conflicts uint64 `json:"conflicts"`
	Evictions uint64 `json:"evictions"`
}

// DRAMMetrics is the memory-side telemetry.
type DRAMMetrics struct {
	Reads      uint64 `json:"reads"`
	Writes     uint64 `json:"writes"`
	ReadBytes  uint64 `json:"readBytes"`
	WriteBytes uint64 `json:"writeBytes"`
	// Read/Write bucket data bytes moved per window.
	Read  TimeSeries `json:"read"`
	Write TimeSeries `json:"write"`
	// Rows lists access counts per 2 KiB DRAM row.
	Rows []RowMetrics `json:"rows,omitempty"`
}

// RowMetrics is one DRAM row's access tally.
type RowMetrics struct {
	// Row is the row index (line address >> 11).
	Row    uint64 `json:"row"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
}

// LineMetrics is one cache line's history entry.
type LineMetrics struct {
	// Line is the line's byte address.
	Line uint64 `json:"line"`
	// Access counts device requests delivered for the line; Mix splits
	// them by traffic class name (ReqV/ReqS/ReqWT/ReqO/ReqWB/Atomic).
	Access uint64            `json:"access"`
	Mix    map[string]uint64 `json:"mix,omitempty"`
	// SharerChurn sums sharer-set bit flips; OwnerMoves sums words whose
	// ownership moved between devices or back to the LLC; Revokes sums
	// words revoked by RvkO probes; Forwards counts owner-indirection
	// forwards.
	SharerChurn uint64 `json:"sharerChurn,omitempty"`
	OwnerMoves  uint64 `json:"ownerMoves,omitempty"`
	Revokes     uint64 `json:"revokes,omitempty"`
	Forwards    uint64 `json:"forwards,omitempty"`
	// RequestorSet is a bitset of requestor device ids (bit 63 collects
	// any id past 63); LastAt is the last touch time in ticks.
	RequestorSet uint64 `json:"requestors,omitempty"`
	LastAt       uint64 `json:"lastAt,omitempty"`
}

// Contention scores a line's coherence contention: every sharer-set
// flip, ownership move, revoked word and indirection forward counts
// once. It is the default top-N ranking key for "which lines ping-pong".
func (l LineMetrics) Contention() uint64 {
	return l.SharerChurn + l.OwnerMoves + l.Revokes + l.Forwards
}

// RequestorCount returns the number of distinct requestor devices seen.
func (l LineMetrics) RequestorCount() int {
	return bits.OnesCount64(l.RequestorSet)
}

// RegionMetrics is one 4 KiB address-space region's access count.
type RegionMetrics struct {
	// Region is the region index (byte address >> 12).
	Region uint64 `json:"region"`
	Access uint64 `json:"access"`
}

// Report flattens the registry into a MetricsReport. Every map is walked
// in sorted key order, so the report is deterministic.
func (m *Metrics) Report() *MetricsReport {
	rep := &MetricsReport{BucketTicks: m.cfg.BucketTicks}
	if len(m.names) > 0 {
		rep.Names = make(map[int]string, len(m.names))
		for k, v := range m.names {
			rep.Names[k] = v
		}
	}

	for _, id := range detsort.Keys(m.links) {
		l := m.links[id]
		rep.Links = append(rep.Links, LinkMetrics{
			Node: int(id), Msgs: l.msgs, Bytes: l.bytes,
			Egress:         l.egressBytes.export(),
			EgressBacklog:  l.egressBacklog.export(),
			IngressBacklog: l.ingressBacklog.export(),
		})
	}

	occKeys := detsort.KeysFunc(m.occ, func(a, b occKey) int {
		if a.node != b.node {
			return int(a.node) - int(b.node)
		}
		return strings.Compare(a.res, b.res)
	})
	for _, k := range occKeys {
		rep.Occupancy = append(rep.Occupancy, OccMetrics{
			Node: int(k.node), Res: k.res, Series: m.occ[k].export(),
		})
	}

	if m.cfg.LLC {
		llc := &LLCMetrics{
			Indirection: m.indirection.export(),
			Revocations: m.revocations.export(),
			Evictions:   m.evictions.export(),
			Conflicts:   m.conflicts.export(),
		}
		for _, s := range detsort.Keys(m.sets) {
			a := m.sets[s]
			llc.Sets = append(llc.Sets, SetMetrics{
				Set: s, Conflicts: a.conflicts, Evictions: a.evictions,
			})
		}
		rep.LLC = llc
	}

	if m.cfg.DRAM {
		d := &DRAMMetrics{
			Reads: m.dramReads, Writes: m.dramWrites,
			ReadBytes: m.dramReadBytes, WriteBytes: m.dramWriteBytes,
			Read: m.dramRead.export(), Write: m.dramWrite.export(),
		}
		for _, r := range detsort.Keys(m.rows) {
			a := m.rows[r]
			d.Rows = append(d.Rows, RowMetrics{Row: r, Reads: a.reads, Writes: a.writes})
		}
		rep.DRAM = d
	}

	if m.cfg.Lines {
		for _, line := range detsort.Keys(m.lines) {
			la := m.lines[line]
			lm := LineMetrics{
				Line: uint64(la.line), Access: la.access,
				SharerChurn: la.sharerChurn, OwnerMoves: la.ownerMoves,
				Revokes: la.revokes, Forwards: la.forwards,
				RequestorSet: la.requestors, LastAt: uint64(la.lastAt),
			}
			for c := proto.Class(0); c < proto.NumClasses; c++ {
				if la.mix[c] == 0 {
					continue
				}
				if lm.Mix == nil {
					lm.Mix = make(map[string]uint64, 4)
				}
				lm.Mix[c.String()] = la.mix[c]
			}
			rep.Lines = append(rep.Lines, lm)
		}
		rep.LinesAgedOut = m.linesEvicted
		for _, r := range detsort.Keys(m.regions) {
			rep.Regions = append(rep.Regions, RegionMetrics{Region: r, Access: m.regions[r]})
		}
	}
	return rep
}

// NodeName returns the label for a node id, falling back to "node<N>".
func (r *MetricsReport) NodeName(node int) string {
	if n, ok := r.Names[node]; ok {
		return n
	}
	return "node" + strconv.Itoa(node)
}

// TopLines returns the n most contended lines (Contention desc, then
// access count desc, then address asc — fully deterministic).
func (r *MetricsReport) TopLines(n int) []LineMetrics {
	out := append([]LineMetrics(nil), r.Lines...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if ca, cb := a.Contention(), b.Contention(); ca != cb {
			return ca > cb
		}
		if a.Access != b.Access {
			return a.Access > b.Access
		}
		return a.Line < b.Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopSets returns the n most conflicted LLC sets (conflicts+evictions
// desc, then set index asc).
func (r *MetricsReport) TopSets(n int) []SetMetrics {
	if r.LLC == nil {
		return nil
	}
	out := append([]SetMetrics(nil), r.LLC.Sets...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if sa, sb := a.Conflicts+a.Evictions, b.Conflicts+b.Evictions; sa != sb {
			return sa > sb
		}
		return a.Set < b.Set
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopRows returns the n busiest DRAM rows (reads+writes desc, row asc).
func (r *MetricsReport) TopRows(n int) []RowMetrics {
	if r.DRAM == nil {
		return nil
	}
	out := append([]RowMetrics(nil), r.DRAM.Rows...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if sa, sb := a.Reads+a.Writes, b.Reads+b.Writes; sa != sb {
			return sa > sb
		}
		return a.Row < b.Row
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
