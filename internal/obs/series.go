package obs

import "spandex/internal/sim"

// seriesDefaultBuckets caps each time series; seriesDefaultWidth is the
// initial bucket width in ticks (16 ns at 1 tick = 1 ps). When a sample
// lands past the last bucket, adjacent bucket pairs merge and the width
// doubles — the same deterministic decimation idea as the occupancy
// sampler (occSeries), but keyed by simulated time instead of sample
// count, so every series of one run shares a common time axis.
const (
	seriesDefaultBuckets = 512
	seriesDefaultWidth   = 1 << 14
)

// SeriesBucket aggregates the samples of one time window.
type SeriesBucket struct {
	// Sum is the total of sample values in the window (bytes for
	// bandwidth series, ticks for backlog series, 1-per-event for rates).
	Sum uint64 `json:"sum"`
	// Count is the number of samples.
	Count uint64 `json:"count"`
	// Max is the largest single sample.
	Max uint64 `json:"max"`
}

// SeriesPoint is one non-empty bucket of an exported series.
type SeriesPoint struct {
	// Index is the bucket index: the bucket covers simulated time
	// [Index*Width, (Index+1)*Width).
	Index int `json:"i"`
	SeriesBucket
}

// TimeSeries is the exported form of one cycle-bucketed series: a bucket
// width in ticks plus the non-empty buckets in index order. The shape is
// a deterministic function of the event stream — the rescaling schedule
// depends only on sample times, never on host state.
type TimeSeries struct {
	Width  uint64        `json:"width"`
	Points []SeriesPoint `json:"points"`
}

// Last returns the largest covered bucket index (-1 when empty).
func (s TimeSeries) Last() int {
	if len(s.Points) == 0 {
		return -1
	}
	return s.Points[len(s.Points)-1].Index
}

// Total sums every bucket's Sum.
func (s TimeSeries) Total() uint64 {
	var t uint64
	for _, p := range s.Points {
		t += p.Sum
	}
	return t
}

// tseries is the accumulating (pre-export) form of a TimeSeries.
type tseries struct {
	width   uint64
	maxBkts int
	buckets []SeriesBucket
}

func newTSeries(width uint64, maxBuckets int) *tseries {
	if width == 0 {
		width = seriesDefaultWidth
	}
	if maxBuckets <= 1 {
		maxBuckets = seriesDefaultBuckets
	}
	return &tseries{width: width, maxBkts: maxBuckets}
}

// add folds one sample into the bucket covering at, rescaling first if the
// sample lands past the cap.
func (s *tseries) add(at sim.Time, v uint64) {
	idx := uint64(at) / s.width
	for idx >= uint64(s.maxBkts) {
		s.rescale()
		idx = uint64(at) / s.width
	}
	for int(idx) >= len(s.buckets) {
		s.buckets = append(s.buckets, SeriesBucket{})
	}
	b := &s.buckets[idx]
	b.Sum += v
	b.Count++
	if v > b.Max {
		b.Max = v
	}
}

// rescale merges adjacent bucket pairs and doubles the width, halving the
// series' resolution while preserving Sum/Count totals and the Max.
func (s *tseries) rescale() {
	half := (len(s.buckets) + 1) / 2
	for i := 0; i < half; i++ {
		b := s.buckets[2*i]
		if 2*i+1 < len(s.buckets) {
			o := s.buckets[2*i+1]
			b.Sum += o.Sum
			b.Count += o.Count
			if o.Max > b.Max {
				b.Max = o.Max
			}
		}
		s.buckets[i] = b
	}
	s.buckets = s.buckets[:half]
	s.width *= 2
}

// export flattens to the sparse exported form (empty buckets dropped).
func (s *tseries) export() TimeSeries {
	out := TimeSeries{Width: s.width}
	for i, b := range s.buckets {
		if b.Count == 0 {
			continue
		}
		out.Points = append(out.Points, SeriesPoint{Index: i, SeriesBucket: b})
	}
	return out
}
