// Package obs is the observability layer: request-lifecycle tracing,
// latency attribution and timeline export for the simulated memory system.
//
// Every core memory operation can be assigned a request id (a "trace"),
// carried as pure metadata through device.Op and proto.Message. The
// instrumented components — device cores, the NoC, the Spandex LLC, DRAM
// — emit Events into a per-System Recorder, which
//
//  1. runs a per-request phase state machine attributing every tick
//     between issue and completion to exactly one phase (L1/MSHR wait,
//     network, LLC service, LLC blocking, owner indirection, DRAM), so
//     phase totals reconcile with end-to-end latency exactly;
//  2. aggregates log-bucketed latency histograms (p50/p90/p99/max) per
//     operation class plus the phase-breakdown table; and
//  3. forwards every event to an optional Sink — the streaming JSONL
//     sink or the Chrome trace-event (Perfetto-loadable) exporter.
//
// The layer is strictly zero-overhead when disabled: instrumentation
// sites are nil-checks on a Recorder pointer, traces stay zero, and no
// event is ever constructed. Tracing observes and never perturbs — a run
// with every knob enabled produces a bit-identical Result.Fingerprint to
// a bare run (enforced by TestObserverNeutrality).
package obs

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// Phase is one latency-attribution bucket of a request's lifetime.
type Phase uint8

const (
	// PhaseL1 covers time in the device and its L1/TU: issue, MSHR wait,
	// secondary-miss coalescing, store buffering, fence drains, and the
	// final response-to-completion hop.
	PhaseL1 Phase = iota
	// PhaseNet is time on the interconnect (serialization + hops) for
	// non-forwarded, non-memory messages.
	PhaseNet
	// PhaseLLC is LLC service time: queued at the bank and being
	// processed, excluding blocked transactions.
	PhaseLLC
	// PhaseBlocked is time the request spent parked behind a blocking
	// LLC transaction (fetch, revocation, invalidation, eviction).
	PhaseBlocked
	// PhaseIndirection is the owner-indirection round trip: from the
	// moment the LLC forwards the request to the current owner until the
	// owner's direct response reaches the requestor (paper Fig. 1c/1d).
	PhaseIndirection
	// PhaseDRAM is the memory round trip: from the MemRead leaving the
	// LLC until the MemReadRsp is delivered back.
	PhaseDRAM

	// NumPhases is the number of phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"L1/MSHR", "Network", "LLC", "LLC-blocked", "Indirection", "DRAM",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "Phase?"
}

// OpClass buckets device operations for latency reporting. It is defined
// here (not in internal/device) so protocol packages can report classes
// without importing the device package.
type OpClass uint8

const (
	// ClassLoad is a data load.
	ClassLoad OpClass = iota
	// ClassStore is a data store (latency is time to buffer acceptance).
	ClassStore
	// ClassAtomic is a read-modify-write or atomic read.
	ClassAtomic
	// ClassFence is a fence (latency is the ordering drain it waited on).
	ClassFence

	// NumOpClasses is the number of operation classes.
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{"load", "store", "atomic", "fence"}

func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "class?"
}

// EventKind enumerates instrumentation points.
type EventKind uint8

const (
	// EvOpIssue: a device issued a memory operation (Trace, Class, Node,
	// Addr are set).
	EvOpIssue EventKind = iota
	// EvOpDone: the operation's completion callback fired.
	EvOpDone
	// EvMsgSend: the NoC accepted a message; Arg is its computed
	// delivery time, so one event carries the full slice.
	EvMsgSend
	// EvMsgDeliver: the NoC handed the message to its destination.
	EvMsgDeliver
	// EvLLCBlock: the LLC parked the message behind a blocking
	// transaction (or started one on its behalf).
	EvLLCBlock
	// EvLLCUnblock: the blocking transaction resolved; the message
	// resumes LLC service.
	EvLLCUnblock
	// EvLLCForward: the LLC forwarded the request to the current owner
	// instead of answering (owner indirection).
	EvLLCForward
	// EvOccupancy: a resource's occupancy changed; Res names the
	// resource, Arg is the new occupancy.
	EvOccupancy
	// EvLinkBacklog: a message queued behind a busy NoC link at send
	// time; Node is the endpoint, Res is "egress" or "ingress", Arg is
	// the queuing delay in ticks the message will absorb there.
	EvLinkBacklog
	// EvLLCConflict: a line fetch parked because every frame in its
	// target set is mid-transaction; Addr is the line, Arg the set index.
	EvLLCConflict
	// EvLLCEvict: the LLC evicted a valid victim line; Addr is the
	// victim, Arg the set index.
	EvLLCEvict
	// EvLLCRevoke: the LLC sent an ownership-revocation probe (RvkO);
	// Addr is the line, Arg the number of words revoked.
	EvLLCRevoke
	// EvLineOwner: word ownership of a line moved between devices (or
	// returned to the LLC); Addr is the line, Arg the word count.
	EvLineOwner
	// EvLineSharer: a line's sharer set changed; Addr is the line, Arg
	// the number of sharer bits that flipped.
	EvLineSharer
	// EvDRAMAccess: DRAM served an access; Node is the memory endpoint,
	// Res is "rd" or "wr", Addr the line, Arg the data bytes moved.
	EvDRAMAccess

	numEventKinds
)

var eventNames = [numEventKinds]string{
	"OpIssue", "OpDone", "MsgSend", "MsgDeliver",
	"LLCBlock", "LLCUnblock", "LLCForward", "Occupancy",
	"LinkBacklog", "LLCConflict", "LLCEvict", "LLCRevoke",
	"LineOwner", "LineSharer", "DRAMAccess",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "Event?"
}

// Event is one instrumentation record. Which fields are meaningful
// depends on Kind; unused fields are zero.
type Event struct {
	// At is the simulated time the event happened.
	At sim.Time
	// Kind is the instrumentation point.
	Kind EventKind
	// Node is the component the event happened at.
	Node proto.NodeID
	// Trace is the request id the event belongs to (0 = untracked).
	Trace uint64
	// Class is the operation class (EvOpIssue/EvOpDone).
	Class OpClass
	// Addr is the operation's byte address (EvOpIssue).
	Addr memaddr.Addr
	// Msg is the message concerned (EvMsg*/EvLLC*). It is the network's
	// delivered copy: sinks must treat it as read-only and must not
	// retain it past the Event call.
	Msg *proto.Message
	// Arg is the event's auxiliary value: delivery time for EvMsgSend,
	// occupancy for EvOccupancy.
	Arg uint64
	// Res names the resource an EvOccupancy sample belongs to.
	Res string
}

// Sink consumes the event stream. Implementations must not mutate or
// retain Event.Msg and must not touch simulator state: a sink observes.
type Sink interface {
	Event(Event)
}

// FuncSink adapts a function into a Sink.
type FuncSink func(Event)

// Event implements Sink.
func (f FuncSink) Event(ev Event) { f(ev) }

// Tee fans the event stream out to multiple sinks in order.
func Tee(sinks ...Sink) Sink {
	out := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type teeSink []Sink

func (t teeSink) Event(ev Event) {
	for _, s := range t {
		s.Event(ev)
	}
}
