package obs

import (
	"math"
	"testing"
)

func TestHistEmptyQuantiles(t *testing.T) {
	var h Hist
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty hist Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty hist Mean = %v, want 0", h.Mean())
	}
}

func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Add(1000)
	// With one observation every quantile is that observation; the
	// log-bucket bound is conservative but the exact Max caps it.
	for _, q := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 1000 {
			t.Errorf("Quantile(%v) = %d, want 1000 (bucket bound capped by Max)", q, got)
		}
	}
	if h.Mean() != 1000 {
		t.Errorf("Mean = %v, want 1000", h.Mean())
	}
	if h.Count != 1 || h.Sum != 1000 || h.Max != 1000 {
		t.Errorf("counters: count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)
	}
}

func TestHistZeroLatency(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(0)
	if h.Buckets[0] != 2 {
		t.Errorf("zero-latency samples not in bucket 0: %d", h.Buckets[0])
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %d, want 0", got)
	}
}

func TestHistMaxBucketSaturation(t *testing.T) {
	var h Hist
	// Values at and above 2^63 must saturate into the last bucket, not
	// index out of range.
	h.Add(math.MaxUint64)
	h.Add(1 << 63)
	if h.Buckets[histBuckets-1] != 2 {
		t.Fatalf("huge values not saturated into last bucket: %d", h.Buckets[histBuckets-1])
	}
	if got := h.Quantile(1.0); got != math.MaxUint64 {
		t.Errorf("Quantile(1.0) = %d, want MaxUint64 (exact max caps bound)", got)
	}
	if h.Max != math.MaxUint64 {
		t.Errorf("Max = %d", h.Max)
	}
}

func TestHistMergeDisjointRanges(t *testing.T) {
	// a holds small latencies, b holds large ones — disjoint bucket
	// ranges, so the merge must interleave correctly.
	var a, b Hist
	for i := 0; i < 90; i++ {
		a.Add(10) // bucket 4
	}
	for i := 0; i < 10; i++ {
		b.Add(1 << 20) // bucket 21
	}
	merged := a
	merged.Merge(&b)

	if merged.Count != 100 {
		t.Fatalf("merged count = %d, want 100", merged.Count)
	}
	if want := uint64(90*10 + 10*(1<<20)); merged.Sum != want {
		t.Errorf("merged sum = %d, want %d", merged.Sum, want)
	}
	if merged.Max != 1<<20 {
		t.Errorf("merged max = %d, want %d", merged.Max, uint64(1<<20))
	}
	// p50 falls in a's bucket, p99 in b's.
	if got := merged.Quantile(0.50); got != bucketUpper(4) {
		t.Errorf("merged p50 = %d, want %d", got, bucketUpper(4))
	}
	if got := merged.Quantile(0.99); got != 1<<20 {
		t.Errorf("merged p99 = %d, want %d (b's bucket, capped by max)", got, uint64(1<<20))
	}

	// Merge must equal adding every observation into one histogram.
	var all Hist
	for i := 0; i < 90; i++ {
		all.Add(10)
	}
	for i := 0; i < 10; i++ {
		all.Add(1 << 20)
	}
	if all != merged {
		t.Error("merge differs from direct accumulation")
	}
}

func TestHistMergeWithEmpty(t *testing.T) {
	var a, empty Hist
	a.Add(5)
	a.Add(7)
	want := a
	a.Merge(&empty)
	if a != want {
		t.Error("merging an empty histogram changed the receiver")
	}
	empty.Merge(&a)
	if empty != want {
		t.Error("merging into an empty histogram lost observations")
	}
}
