package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"spandex/internal/memaddr"
)

// metricsRecord is the wire form of one metrics JSONL line. Kind selects
// which fields are meaningful:
//
//	meta    — bucketTicks, linesAgedOut, names (always the first line)
//	link    — node, msgs, bytes
//	series  — name, node, res, width, points
//	set     — set, conflicts, evictions
//	dram    — reads, writes, readBytes, writeBytes
//	row     — row, reads, writes
//	line    — the LineMetrics fields
//	region  — region, access
type metricsRecord struct {
	Kind string `json:"kind"`

	BucketTicks  uint64         `json:"bucketTicks,omitempty"`
	LinesAgedOut uint64         `json:"linesAgedOut,omitempty"`
	Names        map[int]string `json:"names,omitempty"`

	Name   string        `json:"name,omitempty"`
	Node   int           `json:"node,omitempty"`
	Res    string        `json:"res,omitempty"`
	Width  uint64        `json:"width,omitempty"`
	Points []SeriesPoint `json:"points,omitempty"`

	Msgs  uint64 `json:"msgs,omitempty"`
	Bytes uint64 `json:"bytes,omitempty"`

	Set       int    `json:"set,omitempty"`
	Conflicts uint64 `json:"conflicts,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`

	Reads      uint64 `json:"reads,omitempty"`
	Writes     uint64 `json:"writes,omitempty"`
	ReadBytes  uint64 `json:"readBytes,omitempty"`
	WriteBytes uint64 `json:"writeBytes,omitempty"`
	Row        uint64 `json:"row,omitempty"`

	Line         uint64            `json:"line,omitempty"`
	Access       uint64            `json:"access,omitempty"`
	Mix          map[string]uint64 `json:"mix,omitempty"`
	SharerChurn  uint64            `json:"sharerChurn,omitempty"`
	OwnerMoves   uint64            `json:"ownerMoves,omitempty"`
	Revokes      uint64            `json:"revokes,omitempty"`
	Forwards     uint64            `json:"forwards,omitempty"`
	RequestorSet uint64            `json:"requestors,omitempty"`

	Region uint64 `json:"region,omitempty"`
}

// metricsKinds is the closed set of JSONL record kinds; validation
// rejects anything else.
var metricsKinds = map[string]bool{
	"meta": true, "link": true, "series": true, "set": true,
	"dram": true, "row": true, "line": true, "region": true,
}

// WriteJSONL streams the report as one JSON object per line: a leading
// meta record, then links, series, sets, DRAM totals, rows, lines and
// regions — each in the report's (sorted, deterministic) order.
func (r *MetricsReport) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(rec metricsRecord) error { return enc.Encode(rec) }

	if err := emit(metricsRecord{Kind: "meta", BucketTicks: r.BucketTicks,
		LinesAgedOut: r.LinesAgedOut, Names: r.Names}); err != nil {
		return err
	}
	series := func(name string, node int, res string, s TimeSeries) error {
		return emit(metricsRecord{Kind: "series", Name: name, Node: node,
			Res: res, Width: s.Width, Points: s.Points})
	}
	for _, l := range r.Links {
		if err := emit(metricsRecord{Kind: "link", Node: l.Node,
			Msgs: l.Msgs, Bytes: l.Bytes}); err != nil {
			return err
		}
		for _, s := range []struct {
			name string
			ts   TimeSeries
		}{
			{"link.egress", l.Egress},
			{"link.egressBacklog", l.EgressBacklog},
			{"link.ingressBacklog", l.IngressBacklog},
		} {
			if err := series(s.name, l.Node, "", s.ts); err != nil {
				return err
			}
		}
	}
	for _, o := range r.Occupancy {
		if err := series("occ", o.Node, o.Res, o.Series); err != nil {
			return err
		}
	}
	if r.LLC != nil {
		for _, s := range []struct {
			name string
			ts   TimeSeries
		}{
			{"llc.indirection", r.LLC.Indirection},
			{"llc.revocations", r.LLC.Revocations},
			{"llc.evictions", r.LLC.Evictions},
			{"llc.conflicts", r.LLC.Conflicts},
		} {
			if err := series(s.name, 0, "", s.ts); err != nil {
				return err
			}
		}
		for _, s := range r.LLC.Sets {
			if err := emit(metricsRecord{Kind: "set", Set: s.Set,
				Conflicts: s.Conflicts, Evictions: s.Evictions}); err != nil {
				return err
			}
		}
	}
	if r.DRAM != nil {
		if err := emit(metricsRecord{Kind: "dram",
			Reads: r.DRAM.Reads, Writes: r.DRAM.Writes,
			ReadBytes: r.DRAM.ReadBytes, WriteBytes: r.DRAM.WriteBytes}); err != nil {
			return err
		}
		if err := series("dram.read", 0, "", r.DRAM.Read); err != nil {
			return err
		}
		if err := series("dram.write", 0, "", r.DRAM.Write); err != nil {
			return err
		}
		for _, row := range r.DRAM.Rows {
			if err := emit(metricsRecord{Kind: "row", Row: row.Row,
				Reads: row.Reads, Writes: row.Writes}); err != nil {
				return err
			}
		}
	}
	for _, l := range r.Lines {
		if err := emit(metricsRecord{Kind: "line", Line: l.Line,
			Access: l.Access, Mix: l.Mix, SharerChurn: l.SharerChurn,
			OwnerMoves: l.OwnerMoves, Revokes: l.Revokes,
			Forwards: l.Forwards, RequestorSet: l.RequestorSet}); err != nil {
			return err
		}
	}
	for _, rg := range r.Regions {
		if err := emit(metricsRecord{Kind: "region", Region: rg.Region,
			Access: rg.Access}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes a flat plotting-friendly CSV. Columns:
//
//	record,name,node,res,key,width,sum,count,max
//
// series rows carry one bucket each (key = bucket index, at = key*width);
// set rows put conflicts in sum and evictions in count; row rows put
// reads in sum and writes in count; line rows put access in sum,
// contention in count and distinct requestors in max; region rows put
// access in sum.
func (r *MetricsReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	u := strconv.FormatUint
	row := func(record, name string, node int, res string, key, width, sum, count, max uint64) error {
		return cw.Write([]string{record, name, strconv.Itoa(node), res,
			u(key, 10), u(width, 10), u(sum, 10), u(count, 10), u(max, 10)})
	}
	if err := cw.Write([]string{"record", "name", "node", "res", "key", "width", "sum", "count", "max"}); err != nil {
		return err
	}
	series := func(name string, node int, res string, s TimeSeries) error {
		for _, p := range s.Points {
			if err := row("series", name, node, res, uint64(p.Index), s.Width, p.Sum, p.Count, p.Max); err != nil {
				return err
			}
		}
		return nil
	}
	for _, l := range r.Links {
		if err := row("link", r.NodeName(l.Node), l.Node, "", 0, 0, l.Bytes, l.Msgs, 0); err != nil {
			return err
		}
		if err := series("link.egress", l.Node, "", l.Egress); err != nil {
			return err
		}
		if err := series("link.egressBacklog", l.Node, "", l.EgressBacklog); err != nil {
			return err
		}
		if err := series("link.ingressBacklog", l.Node, "", l.IngressBacklog); err != nil {
			return err
		}
	}
	for _, o := range r.Occupancy {
		if err := series("occ", o.Node, o.Res, o.Series); err != nil {
			return err
		}
	}
	if r.LLC != nil {
		if err := series("llc.indirection", 0, "", r.LLC.Indirection); err != nil {
			return err
		}
		if err := series("llc.revocations", 0, "", r.LLC.Revocations); err != nil {
			return err
		}
		if err := series("llc.evictions", 0, "", r.LLC.Evictions); err != nil {
			return err
		}
		if err := series("llc.conflicts", 0, "", r.LLC.Conflicts); err != nil {
			return err
		}
		for _, s := range r.LLC.Sets {
			if err := row("set", "", 0, "", uint64(s.Set), 0, s.Conflicts, s.Evictions, 0); err != nil {
				return err
			}
		}
	}
	if r.DRAM != nil {
		if err := series("dram.read", 0, "", r.DRAM.Read); err != nil {
			return err
		}
		if err := series("dram.write", 0, "", r.DRAM.Write); err != nil {
			return err
		}
		for _, d := range r.DRAM.Rows {
			if err := row("row", "", 0, "", d.Row, 0, d.Reads, d.Writes, 0); err != nil {
				return err
			}
		}
	}
	for _, l := range r.Lines {
		if err := row("line", "", 0, "", l.Line, 0, l.Access, l.Contention(), uint64(l.RequestorCount())); err != nil {
			return err
		}
	}
	for _, rg := range r.Regions {
		if err := row("region", "", 0, "", rg.Region, 0, rg.Access, 0, 0); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ValidateMetricsJSONL checks a metrics JSONL export: every line parses,
// the first record is meta, every kind is known, series records carry a
// name and a power-of-two width, line records are line-aligned, and
// bucket indices are strictly increasing within each series. It returns
// the record counts per kind for reporting.
func ValidateMetricsJSONL(r io.Reader) (map[string]int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	counts := make(map[string]int)
	n := 0
	for sc.Scan() {
		n++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec metricsRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return counts, fmt.Errorf("line %d: %w", n, err)
		}
		if !metricsKinds[rec.Kind] {
			return counts, fmt.Errorf("line %d: unknown record kind %q", n, rec.Kind)
		}
		if n == 1 && rec.Kind != "meta" {
			return counts, fmt.Errorf("line 1: expected meta record, got %q", rec.Kind)
		}
		switch rec.Kind {
		case "meta":
			if n != 1 {
				return counts, fmt.Errorf("line %d: duplicate meta record", n)
			}
			if rec.BucketTicks == 0 {
				return counts, fmt.Errorf("line %d: meta record without bucketTicks", n)
			}
		case "series":
			if rec.Name == "" {
				return counts, fmt.Errorf("line %d: series record without name", n)
			}
			if rec.Width == 0 || rec.Width&(rec.Width-1) != 0 {
				return counts, fmt.Errorf("line %d: series %q width %d is not a power of two", n, rec.Name, rec.Width)
			}
			last := -1
			for _, p := range rec.Points {
				if p.Index <= last {
					return counts, fmt.Errorf("line %d: series %q bucket indices not increasing (%d after %d)", n, rec.Name, p.Index, last)
				}
				last = p.Index
			}
		case "line":
			if rec.Line%memaddr.LineBytes != 0 {
				return counts, fmt.Errorf("line %d: line address %#x not %d-byte aligned", n, rec.Line, memaddr.LineBytes)
			}
			var mixSum uint64
			for _, v := range rec.Mix {
				mixSum += v
			}
			if mixSum > rec.Access {
				return counts, fmt.Errorf("line %d: line %#x mix sum %d exceeds access count %d", n, rec.Line, mixSum, rec.Access)
			}
		}
		counts[rec.Kind]++
	}
	if err := sc.Err(); err != nil {
		return counts, err
	}
	if counts["meta"] == 0 {
		return counts, fmt.Errorf("no meta record (empty export?)")
	}
	return counts, nil
}
