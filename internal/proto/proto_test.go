package proto

import (
	"strings"
	"testing"
	"testing/quick"

	"spandex/internal/memaddr"
)

func TestEveryMessageTypeHasNameAndClass(t *testing.T) {
	for mt := MsgType(0); mt < numMsgTypes; mt++ {
		if s := mt.String(); s == "" || strings.HasPrefix(s, "MsgType(") {
			t.Errorf("message type %d has no name", mt)
		}
		// ClassOf must not panic and must return a valid class.
		if c := ClassOf(mt); c >= NumClasses {
			t.Errorf("message type %v has invalid class %v", mt, c)
		}
	}
}

func TestClassPairing(t *testing.T) {
	// Each request class includes its responses (the paper's Figure 2/3
	// accounting convention).
	pairs := [][2]MsgType{
		{ReqV, RspV}, {ReqS, RspS}, {ReqWT, RspWT}, {ReqO, RspO},
		{ReqWTData, RspWTData}, {ReqOData, RspOData}, {ReqWB, RspWB},
		{RvkO, RspRvkO}, {Inv, InvAck},
		{MGetS, MDataS}, {MGetM, MDataM}, {MPutM, MAckWB},
		{MFwdGetS, MInvAck}, {MemRead, MemReadRsp},
	}
	for _, p := range pairs {
		if ClassOf(p[0]) != ClassOf(p[1]) {
			t.Errorf("%v (class %v) and %v (class %v) not paired",
				p[0], ClassOf(p[0]), p[1], ClassOf(p[1]))
		}
	}
	// MESI-native messages map onto the unified classes.
	if ClassOf(MGetS) != ClassReqS || ClassOf(MGetM) != ClassReqO ||
		ClassOf(MPutM) != ClassReqWB || ClassOf(MInv) != ClassProbe {
		t.Error("MESI-native class mapping broken")
	}
	// Probes cover Inv and RvkO (paper: the "Probe" legend entry).
	if ClassOf(Inv) != ClassProbe || ClassOf(RvkO) != ClassProbe {
		t.Error("probe classification broken")
	}
}

func TestAtomicApply(t *testing.T) {
	cases := []struct {
		kind         AtomicKind
		old, op, cmp uint32
		want         uint32
		wrote        bool
	}{
		{AtomicNone, 5, 9, 0, 9, true},
		{AtomicFetchAdd, 5, 3, 0, 8, true},
		{AtomicFetchAdd, ^uint32(0), 1, 0, 0, true}, // wraps
		{AtomicExchange, 5, 9, 0, 9, true},
		{AtomicCAS, 5, 9, 5, 9, true},
		{AtomicCAS, 5, 9, 4, 5, false},
		{AtomicRead, 5, 9, 0, 5, false},
		{AtomicMin, 5, 3, 0, 3, true},
		{AtomicMin, 5, 7, 0, 5, false},
	}
	for _, c := range cases {
		got, wrote := c.kind.Apply(c.old, c.op, c.cmp)
		if got != c.want || wrote != c.wrote {
			t.Errorf("%v.Apply(%d,%d,%d) = %d,%v want %d,%v",
				c.kind, c.old, c.op, c.cmp, got, wrote, c.want, c.wrote)
		}
	}
}

func TestAtomicKindStrings(t *testing.T) {
	for k := AtomicNone; k <= AtomicMin; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "AtomicKind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestMessageBytes(t *testing.T) {
	// Control message, full mask: header only.
	m := &Message{Type: ReqV, Mask: memaddr.FullMask}
	if m.Bytes() != 16 {
		t.Errorf("full-mask control = %d bytes", m.Bytes())
	}
	// Partial mask adds the bitmask overhead (paper §III-F).
	m = &Message{Type: ReqO, Mask: 0b11}
	if m.Bytes() != 18 {
		t.Errorf("partial-mask control = %d bytes", m.Bytes())
	}
	// Data adds 4 bytes per selected word.
	m = &Message{Type: RspV, Mask: 0b1111, HasData: true}
	if m.Bytes() != 16+2+16 {
		t.Errorf("4-word data = %d bytes", m.Bytes())
	}
	// Full-line data: 64 bytes, no mask overhead.
	m = &Message{Type: RspV, Mask: memaddr.FullMask, HasData: true}
	if m.Bytes() != 16+64 {
		t.Errorf("line data = %d bytes", m.Bytes())
	}
	// Atomic operations carry operand+compare.
	m = &Message{Type: ReqWTData, Mask: 1, Atomic: AtomicFetchAdd}
	if m.Bytes() != 16+2+8 {
		t.Errorf("atomic = %d bytes", m.Bytes())
	}
}

func TestMessageBytesMonotonicInMask(t *testing.T) {
	f := func(mask uint16) bool {
		if mask == 0 {
			return true
		}
		m := &Message{Type: RspV, Mask: memaddr.WordMask(mask), HasData: true}
		full := &Message{Type: RspV, Mask: memaddr.FullMask, HasData: true}
		return m.Bytes() <= full.Bytes()+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	want := map[string][2]string{
		"MESI":          {"writer-invalidation", "ownership"},
		"GPU Coherence": {"self-invalidation", "write-through"},
		"DeNovo":        {"self-invalidation", "ownership"},
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected strategy %q", r.Name)
			continue
		}
		if r.StaleInvalidation != w[0] || r.WritePropagation != w[1] {
			t.Errorf("%s: %s/%s, want %s/%s",
				r.Name, r.StaleInvalidation, r.WritePropagation, w[0], w[1])
		}
	}
	// Granularities per Table I.
	for _, r := range rows {
		switch r.Name {
		case "MESI":
			if r.LoadGranularity != "line" || r.StoreGranularity != "line" {
				t.Error("MESI granularity wrong")
			}
		case "GPU Coherence":
			if r.LoadGranularity != "line" || r.StoreGranularity != "word" {
				t.Error("GPU coherence granularity wrong")
			}
		case "DeNovo":
			if r.LoadGranularity != "flexible" || r.StoreGranularity != "word" {
				t.Error("DeNovo granularity wrong")
			}
		}
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Type: ReqWT, Src: 3, Dst: 24, Requestor: 3, ReqID: 7,
		Line: 0x1000, Mask: 0b101, HasData: true}
	s := m.String()
	for _, frag := range []string{"ReqWT", "0x1000", "3->24", "#7"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
