package proto

import "spandex/internal/memaddr"

// Bank-sharded LLC addressing. A Spandex LLC may be split into an
// address-interleaved array of banks occupying consecutive NodeIDs; every
// requestor maps a line to its home bank with the same pure function, so
// the directory for any line lives in exactly one place (the flat-
// directory property the paper argues for, preserved under distribution).

// BankOf returns the bank index line maps to among `banks`
// address-interleaved banks: consecutive lines round-robin across banks.
// With banks <= 1 every line maps to bank 0.
func BankOf(line memaddr.LineAddr, banks int) int {
	if banks <= 1 {
		return 0
	}
	return int((uint64(line) >> memaddr.LineShift) % uint64(banks))
}

// HomeOf returns the NodeID of line's home bank for an LLC whose banks
// occupy NodeIDs base .. base+banks-1.
func HomeOf(base NodeID, banks int, line memaddr.LineAddr) NodeID {
	return base + NodeID(BankOf(line, banks))
}
