// Package proto defines the coherence message vocabulary shared by every
// protocol controller in the repository.
//
// Two families coexist:
//
//   - The Spandex request interface (paper §III-A): ReqV, ReqS, ReqWT, ReqO,
//     ReqWT+data, ReqO+data, ReqWB and their responses, plus the
//     LLC-initiated probes RvkO and Inv. GPU-coherence and DeNovo L1
//     controllers speak this vocabulary natively (paper Table II), both to a
//     Spandex LLC and to the intermediate GPU L2 of the hierarchical
//     baseline.
//
//   - MESI-native directory messages (GetS/GetM/PutM, Fwd*, Data*) used by
//     MESI L1 caches and by the hierarchical MESI LLC baseline. Under a
//     Spandex LLC these are translated by the per-device TU (paper §III-D).
//
// Every message type maps onto one traffic class so that network traffic can
// be broken down exactly as in the paper's Figures 2 and 3 (each request
// class includes its responses; "Probe" covers Inv and RvkO).
package proto

import (
	"fmt"
	"strings"

	"spandex/internal/memaddr"
)

// NodeID identifies an endpoint on the interconnect (an L1 controller, the
// GPU L2, the LLC, or memory).
type NodeID int

// None is the zero NodeID used when a field does not apply.
const None NodeID = -1

// MsgType enumerates every coherence message.
type MsgType uint8

const (
	// --- Spandex device requests (paper §III-A) ---

	// ReqV requests up-to-date data for a self-invalidated read miss.
	ReqV MsgType = iota
	// ReqS requests data plus Shared state (writer-invalidated read miss).
	ReqS
	// ReqWT writes through store data; no up-to-date data needed.
	ReqWT
	// ReqO requests ownership without data (store overwrites all of it).
	ReqO
	// ReqWTData performs an update operation at the LLC and returns the
	// prior value (used for atomics performed at the LLC).
	ReqWTData
	// ReqOData requests ownership plus up-to-date data (RMW performed
	// locally, or partial-line store from a line-granularity owner cache).
	ReqOData
	// ReqWB writes Owned data back to the LLC.
	ReqWB

	// --- Spandex responses ---

	RspV
	RspS
	RspWT
	RspO
	RspWTData
	RspOData
	RspWB
	// NackV rejects a forwarded ReqV whose presumed owner no longer owns
	// the data (paper §III-C3). The requestor must retry.
	NackV

	// --- LLC-initiated probes (paper §III-B) ---

	// RvkO revokes ownership and triggers a write-back.
	RvkO
	// RspRvkO answers RvkO, carrying data unless a racing write-back
	// already supplied it.
	RspRvkO
	// Inv invalidates Shared data in a sharer device.
	Inv
	// InvAck answers Inv.
	InvAck

	// --- MESI-native messages (hierarchical baseline; TU-translated
	// under Spandex) ---

	MGetS    // read miss: request Shared
	MGetM    // write miss / upgrade: request Modified
	MPutM    // write back Modified (or clean-evict Exclusive) line
	MFwdGetS // directory asks owner to supply data and downgrade to S
	MFwdGetM // directory asks owner to supply data and invalidate
	MInv     // directory invalidates a sharer
	MInvAck  // sharer acknowledgment, collected at the directory
	MDataS   // data grant in Shared state
	MDataE   // data grant in Exclusive state (no other sharer existed)
	MDataM   // data grant in Modified state
	MAckWB   // directory acknowledgment of MPutM
	MWBData  // owner's data sent to directory for FwdGetS/FwdGetM service

	// --- Memory interface ---

	MemRead    // LLC fetches a line from DRAM
	MemReadRsp // DRAM data response
	MemWrite   // LLC writes a line back to DRAM

	numMsgTypes
)

var msgNames = [numMsgTypes]string{
	ReqV: "ReqV", ReqS: "ReqS", ReqWT: "ReqWT", ReqO: "ReqO",
	ReqWTData: "ReqWT+data", ReqOData: "ReqO+data", ReqWB: "ReqWB",
	RspV: "RspV", RspS: "RspS", RspWT: "RspWT", RspO: "RspO",
	RspWTData: "RspWT+data", RspOData: "RspO+data", RspWB: "RspWB",
	NackV: "NackV",
	RvkO:  "RvkO", RspRvkO: "RspRvkO", Inv: "Inv", InvAck: "InvAck",
	MGetS: "GetS", MGetM: "GetM", MPutM: "PutM",
	MFwdGetS: "FwdGetS", MFwdGetM: "FwdGetM", MInv: "Inv(M)",
	MInvAck: "InvAck(M)", MDataS: "DataS", MDataE: "DataE", MDataM: "DataM",
	MAckWB: "AckWB", MWBData: "WBData",
	MemRead: "MemRead", MemReadRsp: "MemReadRsp", MemWrite: "MemWrite",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) && msgNames[t] != "" {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// identNames are the Go identifier spellings of each message type
// (ReqWTData rather than String()'s display form "ReqWT+data"). They are
// the canonical vocabulary shared by the static transition graphs
// (internal/analysis/transgraph reads these identifiers out of the source)
// and the dynamic coverage records, so the two sides diff exactly.
var identNames = [numMsgTypes]string{
	ReqV: "ReqV", ReqS: "ReqS", ReqWT: "ReqWT", ReqO: "ReqO",
	ReqWTData: "ReqWTData", ReqOData: "ReqOData", ReqWB: "ReqWB",
	RspV: "RspV", RspS: "RspS", RspWT: "RspWT", RspO: "RspO",
	RspWTData: "RspWTData", RspOData: "RspOData", RspWB: "RspWB",
	NackV: "NackV",
	RvkO:  "RvkO", RspRvkO: "RspRvkO", Inv: "Inv", InvAck: "InvAck",
	MGetS: "MGetS", MGetM: "MGetM", MPutM: "MPutM",
	MFwdGetS: "MFwdGetS", MFwdGetM: "MFwdGetM", MInv: "MInv",
	MInvAck: "MInvAck", MDataS: "MDataS", MDataE: "MDataE", MDataM: "MDataM",
	MAckWB: "MAckWB", MWBData: "MWBData",
	MemRead: "MemRead", MemReadRsp: "MemReadRsp", MemWrite: "MemWrite",
}

// Ident returns the Go identifier name of the message type.
func (t MsgType) Ident() string {
	if int(t) < len(identNames) && identNames[t] != "" {
		return identNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// MsgTypeFromIdent resolves a Go identifier name back to its MsgType,
// reporting false for unknown names. Used to validate coverage files.
func MsgTypeFromIdent(s string) (MsgType, bool) {
	for t, name := range identNames {
		if name == s {
			return MsgType(t), true
		}
	}
	return 0, false
}

// Class buckets message types for traffic accounting, matching the legend
// of the paper's Figures 2 and 3. Each request class includes its
// responses; ClassProbe covers Inv and RvkO (and MESI forwards); ClassAtomic
// covers update operations performed at the LLC (ReqWT+data).
type Class uint8

const (
	ClassReqV Class = iota
	ClassReqS
	ClassReqWT
	ClassReqO
	ClassReqWB
	ClassProbe
	ClassAtomic
	ClassMem
	NumClasses
)

var classNames = [NumClasses]string{
	"ReqV", "ReqS", "ReqWT", "ReqO", "ReqWB", "Probe", "Atomic", "Mem",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassOf maps a message type to its traffic class.
func ClassOf(t MsgType) Class {
	switch t {
	case ReqV, RspV, NackV:
		return ClassReqV
	case ReqS, RspS, MGetS, MDataS, MDataE:
		return ClassReqS
	case ReqWT, RspWT:
		return ClassReqWT
	case ReqO, RspO, ReqOData, RspOData, MGetM, MDataM:
		return ClassReqO
	case ReqWB, RspWB, MPutM, MAckWB, MWBData:
		return ClassReqWB
	case RvkO, RspRvkO, Inv, InvAck, MFwdGetS, MFwdGetM, MInv, MInvAck:
		return ClassProbe
	case ReqWTData, RspWTData:
		return ClassAtomic
	case MemRead, MemReadRsp, MemWrite:
		return ClassMem
	}
	panic("proto: unclassified message type " + t.String())
}

// AtomicKind selects the update operation a ReqWT+data performs at the LLC
// (paper §III-A: "this request must specify the required update operation").
type AtomicKind uint8

const (
	// AtomicNone: plain write-through of the carried data (used for
	// sub-word stores that must not clobber the rest of the word).
	AtomicNone AtomicKind = iota
	// AtomicFetchAdd adds Operand to the word and returns the old value.
	AtomicFetchAdd
	// AtomicExchange stores Operand and returns the old value.
	AtomicExchange
	// AtomicCAS stores Operand if the word equals Compare; returns the
	// old value either way.
	AtomicCAS
	// AtomicRead returns the current value without modifying it (an
	// acquire load performed at the LLC, e.g. GPU flag polling).
	AtomicRead
	// AtomicMin stores min(word, Operand) and returns the old value.
	AtomicMin
	// AtomicByteMerge implements byte-granularity stores (paper §III-B:
	// "Spandex requires byte granularity stores to use word granularity
	// ReqWT+data or ReqO+data … to ensure non-modified data in the
	// requested word remains up-to-date"): the word becomes
	// (old &^ Compare) | (Operand & Compare), where Compare is the
	// byte-lane bit mask.
	AtomicByteMerge
)

func (k AtomicKind) String() string {
	switch k {
	case AtomicNone:
		return "none"
	case AtomicFetchAdd:
		return "fetch-add"
	case AtomicExchange:
		return "exchange"
	case AtomicCAS:
		return "cas"
	case AtomicRead:
		return "read"
	case AtomicMin:
		return "min"
	case AtomicByteMerge:
		return "byte-merge"
	}
	return fmt.Sprintf("AtomicKind(%d)", uint8(k))
}

// Apply performs the update on old, returning the new value and whether the
// word was actually modified.
func (k AtomicKind) Apply(old, operand, compare uint32) (newVal uint32, wrote bool) {
	switch k {
	case AtomicNone, AtomicExchange:
		return operand, true
	case AtomicFetchAdd:
		return old + operand, true
	case AtomicCAS:
		if old == compare {
			return operand, true
		}
		return old, false
	case AtomicRead:
		return old, false
	case AtomicMin:
		if operand < old {
			return operand, true
		}
		return old, false
	case AtomicByteMerge:
		return (old &^ compare) | (operand & compare), true
	}
	panic("proto: unknown atomic kind")
}

// Message is one coherence transaction hop on the interconnect.
type Message struct {
	Type MsgType
	Src  NodeID // immediate sender
	Dst  NodeID // immediate receiver

	// Requestor is the device whose transaction this message belongs to.
	// For forwarded requests it differs from Src; owners respond directly
	// to Requestor (paper Fig. 1c/1d).
	Requestor NodeID
	// ReqID matches responses to the requestor's outstanding transaction.
	ReqID uint64

	Line memaddr.LineAddr
	// Mask selects the words this message concerns. Line-granularity
	// requests use memaddr.FullMask.
	Mask memaddr.WordMask

	// HasData marks messages that carry word data for the masked words.
	HasData bool
	Data    memaddr.LineData

	// Atomic describes the update operation of a ReqWT+data.
	Atomic  AtomicKind
	Operand uint32
	Compare uint32

	// AckCount lets a directory tell a requestor how many MInvAcks to
	// expect, and probes tell devices auxiliary counts where needed.
	AckCount int

	// Trace is the observability request id (internal/obs) of the device
	// operation this message serves, or zero when untracked. It is pure
	// metadata: it never affects Bytes(), routing, or protocol decisions,
	// so tracing cannot perturb simulated behaviour.
	Trace uint64
}

// Control/header overhead per message, in bytes: destination, type,
// address, requestor, transaction id. The paper (§III-F) notes Spandex may
// add at most one identifier bit; we charge identical headers to every
// protocol.
const headerBytes = 16

// maskBytes is the multi-word request bitmask overhead (§III-F).
const maskBytes = 2

// Bytes returns the network payload size used for traffic accounting.
func (m *Message) Bytes() int {
	n := headerBytes
	if m.Mask != memaddr.FullMask && m.Mask != 0 {
		n += maskBytes
	}
	if m.HasData {
		n += m.Mask.Bytes()
	}
	if m.Type == ReqWTData {
		n += 8 // operand + compare
	}
	return n
}

func (m *Message) String() string {
	name := m.Type.String()
	if m.HasData && !strings.Contains(name, "+data") {
		name += "+data"
	}
	return fmt.Sprintf("%s line=%#x mask=%#04x %d->%d (req %d#%d)",
		name, uint64(m.Line), uint16(m.Mask), m.Src, m.Dst, m.Requestor, m.ReqID)
}

// Strategy describes a coherence strategy along the paper's three design
// dimensions (Table I).
type Strategy struct {
	Name              string
	StaleInvalidation string // "writer-invalidation" or "self-invalidation"
	WritePropagation  string // "ownership" or "write-through"
	LoadGranularity   string
	StoreGranularity  string
}

// TableI reproduces the paper's Table I classification.
func TableI() []Strategy {
	return []Strategy{
		{"MESI", "writer-invalidation", "ownership", "line", "line"},
		{"GPU Coherence", "self-invalidation", "write-through", "line", "word"},
		{"DeNovo", "self-invalidation", "ownership", "flexible", "word"},
	}
}
