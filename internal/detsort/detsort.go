// Package detsort provides deterministic map-iteration helpers for the sim
// path. Go randomizes map iteration order; any map range whose effects are
// order-sensitive therefore perturbs the determinism fingerprint the sweep
// runner verifies. The spandex-lint determinism analyzer rejects such
// ranges in sim-path packages and points here: iterate Keys(m) instead.
//
// detsort itself is deliberately not on the analyzer's sim-path list — the
// append inside Keys is the one place unordered iteration is allowed,
// because the sort immediately erases the order.
package detsort

import (
	"cmp"
	"slices"
)

// Keys returns m's keys in ascending order.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// KeysFunc returns m's keys ordered by cmp, for maps whose key type is a
// struct (composite keys cannot satisfy cmp.Ordered). cmp must be a total
// order or the result is still nondeterministic.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, cmp func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cmp)
	return keys
}
