package detsort

import (
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[uint64]string{9: "c", 1: "a", 4: "b"}
	for i := 0; i < 50; i++ {
		got := Keys(m)
		if want := []uint64{1, 4, 9}; !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if got := Keys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}
