package dram

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

type sink struct {
	eng  *sim.Engine
	got  []proto.Message
	when []sim.Time
}

func (s *sink) HandleMessage(m *proto.Message) {
	s.got = append(s.got, *m)
	s.when = append(s.when, s.eng.Now())
}

func setup(t *testing.T, latency sim.Time) (*sim.Engine, *noc.Network, *Memory, *sink) {
	t.Helper()
	eng := sim.New()
	st := stats.New()
	net := noc.New(eng, st, noc.Config{HopLatency: 0, TicksPerByte: 0, MeshWidth: 2}, 2)
	mem := New(1, eng, net, latency)
	s := &sink{eng: eng}
	net.Register(0, s)
	return eng, net, mem, s
}

func TestReadReturnsPokedData(t *testing.T) {
	eng, net, mem, s := setup(t, 500)
	var data memaddr.LineData
	data[5] = 42
	mem.Poke(0x1000, data)
	net.Send(&proto.Message{Type: proto.MemRead, Src: 0, Dst: 1,
		Requestor: 0, ReqID: 9, Line: 0x1000, Mask: memaddr.FullMask})
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("responses = %d", len(s.got))
	}
	r := s.got[0]
	if r.Type != proto.MemReadRsp || !r.HasData || r.Data[5] != 42 || r.ReqID != 9 {
		t.Fatalf("bad response %+v", r)
	}
	// The access latency is charged before the response is sent.
	if s.when[0] < 500 {
		t.Fatalf("response at %d, want ≥ latency", s.when[0])
	}
}

func TestUnknownLineReadsZero(t *testing.T) {
	eng, net, _, s := setup(t, 1)
	net.Send(&proto.Message{Type: proto.MemRead, Src: 0, Dst: 1,
		Requestor: 0, Line: 0xbeef00, Mask: memaddr.FullMask})
	eng.Run()
	if s.got[0].Data != (memaddr.LineData{}) {
		t.Fatal("uninitialized line not zero")
	}
}

func TestPartialWriteMerges(t *testing.T) {
	eng, net, mem, _ := setup(t, 1)
	var init memaddr.LineData
	for i := range init {
		init[i] = uint32(i)
	}
	mem.Poke(0x2000, init)
	var upd memaddr.LineData
	upd[3] = 333
	upd[7] = 777
	net.Send(&proto.Message{Type: proto.MemWrite, Src: 0, Dst: 1,
		Line: 0x2000, Mask: 0b10001000, HasData: true, Data: upd})
	eng.Run()
	got := mem.Peek(0x2000)
	if got[3] != 333 || got[7] != 777 {
		t.Fatal("written words lost")
	}
	if got[0] != 0 || got[5] != 5 {
		t.Fatal("unwritten words clobbered")
	}
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	eng, net, _, s := setup(t, 10)
	var d memaddr.LineData
	d[0] = 1
	net.Send(&proto.Message{Type: proto.MemWrite, Src: 0, Dst: 1,
		Line: 0x3000, Mask: 1, HasData: true, Data: d})
	net.Send(&proto.Message{Type: proto.MemRead, Src: 0, Dst: 1,
		Requestor: 0, Line: 0x3000, Mask: memaddr.FullMask})
	eng.Run()
	if len(s.got) != 1 || s.got[0].Data[0] != 1 {
		t.Fatal("read did not observe the prior write")
	}
}

func TestUnexpectedMessagePanics(t *testing.T) {
	eng, net, _, _ := setup(t, 1)
	net.Send(&proto.Message{Type: proto.ReqV, Src: 0, Dst: 1, Mask: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad message type")
		}
	}()
	eng.Run()
}
