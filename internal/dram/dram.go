// Package dram models the backing memory: a fixed-latency store of cache
// lines addressed at line granularity. It is the ultimate home of every
// line; the LLC fetches lines with MemRead and evicts dirty lines with
// MemWrite.
package dram

import (
	"spandex/internal/detsort"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// Memory is a DRAM model. It answers MemRead after a configurable access
// latency and absorbs MemWrite.
type Memory struct {
	ID      proto.NodeID
	eng     *sim.Engine
	net     *noc.Network
	latency sim.Time
	lines   map[memaddr.LineAddr]memaddr.LineData
}

// New creates a memory endpoint with the given access latency in ticks.
func New(id proto.NodeID, eng *sim.Engine, net *noc.Network, latency sim.Time) *Memory {
	m := &Memory{ID: id, eng: eng, net: net, latency: latency,
		lines: make(map[memaddr.LineAddr]memaddr.LineData)}
	net.Register(id, m)
	return m
}

// HandleMessage implements noc.Handler.
func (m *Memory) HandleMessage(msg *proto.Message) {
	switch msg.Type {
	case proto.MemRead:
		line, req, id, src, tr := msg.Line, msg.Requestor, msg.ReqID, msg.Src, msg.Trace
		m.eng.Schedule(m.latency, func() {
			data := m.lines[line]
			m.net.Send(&proto.Message{
				Type: proto.MemReadRsp, Src: m.ID, Dst: src,
				Requestor: req, ReqID: id,
				Line: line, Mask: memaddr.FullMask,
				HasData: true, Data: data, Trace: tr,
			})
		})
	case proto.MemWrite:
		cur := m.lines[msg.Line]
		cur.Merge(&msg.Data, msg.Mask)
		m.lines[msg.Line] = cur
	default:
		panic("dram: unexpected message " + msg.Type.String())
	}
}

// Peek returns the current contents of a line (testing/oracle use).
func (m *Memory) Peek(line memaddr.LineAddr) memaddr.LineData { return m.lines[line] }

// Poke sets the contents of a line directly (workload initialization).
func (m *Memory) Poke(line memaddr.LineAddr, data memaddr.LineData) { m.lines[line] = data }

// Fingerprint returns a deterministic FNV-1a hash of the current memory
// image: every populated line's address and contents, visited in sorted
// address order so the hash is independent of map iteration. Note this is
// the DRAM image only — dirty words still held in caches at quiescence are
// not included — but it is a deterministic function of the run, which is
// what sweep determinism verification needs.
func (m *Memory) Fingerprint() uint64 {
	h := stats.FNVOffset()
	for _, a := range detsort.Keys(m.lines) {
		h = stats.FNVAdd(h, uint64(a))
		line := m.lines[a]
		for _, w := range line {
			h = stats.FNVAdd(h, uint64(w))
		}
	}
	return h
}
