// Package dram models the backing memory: a fixed-latency store of cache
// lines addressed at line granularity. It is the ultimate home of every
// line; the LLC fetches lines with MemRead and evicts dirty lines with
// MemWrite.
package dram

import (
	"spandex/internal/detsort"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// Memory is a DRAM model. It answers MemRead after a configurable access
// latency and absorbs MemWrite.
type Memory struct {
	ID      proto.NodeID
	eng     *sim.Engine
	net     *noc.Network
	latency sim.Time
	lines   map[memaddr.LineAddr]memaddr.LineData
	obs     *obs.Recorder
	pool    sim.Pool[readRsp]
}

// readRsp is a pooled pending MemRead answer; the line data is looked up
// at response time, after the access latency has elapsed. out is the
// response scratch slot: Send copies the message before returning, so
// building it in the pooled struct avoids a heap-allocated literal.
type readRsp struct {
	mem  *Memory
	line memaddr.LineAddr
	req  proto.NodeID
	id   uint64
	src  proto.NodeID
	tr   uint64
	out  proto.Message
}

func (r *readRsp) Fire() {
	m := r.mem
	r.out = proto.Message{
		Type: proto.MemReadRsp, Src: m.ID, Dst: r.src,
		Requestor: r.req, ReqID: r.id,
		Line: r.line, Mask: memaddr.FullMask,
		HasData: true, Data: m.lines[r.line], Trace: r.tr,
	}
	m.net.Send(&r.out)
	m.pool.Put(r)
}

// New creates a memory endpoint with the given access latency in ticks.
func New(id proto.NodeID, eng *sim.Engine, net *noc.Network, latency sim.Time) *Memory {
	m := &Memory{ID: id, eng: eng, net: net, latency: latency,
		lines: make(map[memaddr.LineAddr]memaddr.LineData)}
	net.Register(id, m)
	return m
}

// SetObserver installs the observability recorder; nil disables
// instrumentation. HandleMessage emits EvDRAMAccess per access with the
// data bytes moved in Arg.
func (m *Memory) SetObserver(r *obs.Recorder) { m.obs = r }

// HandleMessage implements noc.Handler.
func (m *Memory) HandleMessage(msg *proto.Message) {
	switch msg.Type {
	case proto.MemRead:
		r := m.pool.Get()
		r.mem = m
		r.line, r.req, r.id = msg.Line, msg.Requestor, msg.ReqID
		r.src, r.tr = msg.Src, msg.Trace
		if m.obs != nil {
			m.obs.Emit(obs.Event{At: m.eng.Now(), Kind: obs.EvDRAMAccess,
				Node: m.ID, Res: "rd", Addr: memaddr.Addr(msg.Line),
				Arg: memaddr.LineBytes})
		}
		m.eng.ScheduleEvent(m.latency, r)
	case proto.MemWrite:
		cur := m.lines[msg.Line]
		cur.Merge(&msg.Data, msg.Mask)
		m.lines[msg.Line] = cur
		if m.obs != nil {
			m.obs.Emit(obs.Event{At: m.eng.Now(), Kind: obs.EvDRAMAccess,
				Node: m.ID, Res: "wr", Addr: memaddr.Addr(msg.Line),
				Arg: uint64(msg.Mask.Bytes())})
		}
	default:
		panic("dram: unexpected message " + msg.Type.String())
	}
}

// Peek returns the current contents of a line (testing/oracle use).
func (m *Memory) Peek(line memaddr.LineAddr) memaddr.LineData { return m.lines[line] }

// Poke sets the contents of a line directly (workload initialization).
func (m *Memory) Poke(line memaddr.LineAddr, data memaddr.LineData) { m.lines[line] = data }

// Fingerprint returns a deterministic FNV-1a hash of the current memory
// image: every populated line's address and contents, visited in sorted
// address order so the hash is independent of map iteration. Note this is
// the DRAM image only — dirty words still held in caches at quiescence are
// not included — but it is a deterministic function of the run, which is
// what sweep determinism verification needs.
func (m *Memory) Fingerprint() uint64 {
	h := stats.FNVOffset()
	for _, a := range detsort.Keys(m.lines) {
		h = stats.FNVAdd(h, uint64(a))
		line := m.lines[a]
		for _, w := range line {
			h = stats.FNVAdd(h, uint64(w))
		}
	}
	return h
}
