package conform

import (
	"fmt"

	"spandex"
)

// caseLayout fixes the address-space placement of a case's regions. It is
// a pure function of the case geometry, so the executor, the expectation
// model and the final-image read-back all agree on addresses.
type caseLayout struct {
	barrier spandex.Barrier
	ro      spandex.Addr
	chunks  spandex.Addr
	atomics spandex.Addr
	private []spandex.Addr

	// words lists every allocated word address in a fixed order (including
	// line-alignment padding); the final memory image is read and compared
	// in this order, so a stray write anywhere in the span is caught.
	words []spandex.Addr
}

// layout allocates the case's regions. Allocation order is part of the
// format: barrier counter, barrier generation, ro, chunks, atomics, then
// one private region per thread.
func (c *Case) layout() *caseLayout {
	lay := spandex.NewLayout()
	l := &caseLayout{}
	start := lay.Words(0)
	counter := lay.Words(16)
	gen := lay.Words(16)
	l.barrier = spandex.Barrier{Counter: counter, Gen: gen, N: uint32(len(c.Threads))}
	l.ro = lay.Words(maxInt(c.ROWords, 1))
	l.chunks = lay.Words(maxInt(c.Chunks*c.ChunkWords, 1))
	l.atomics = lay.Words(maxInt(c.AtomicWords, 1))
	for range c.Threads {
		l.private = append(l.private, lay.Words(maxInt(c.PrivateWords, 1)))
	}
	end := lay.Words(0)
	for a := start; a < end; a += 4 {
		l.words = append(l.words, a)
	}
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addrOf resolves an op's target address for thread t.
func (l *caseLayout) addrOf(c *Case, t int, op Op) spandex.Addr {
	switch op.Region {
	case RegPrivate:
		return spandex.WordAddr(l.private[t], op.Word)
	case RegRO:
		return spandex.WordAddr(l.ro, op.Word)
	case RegChunk:
		return spandex.WordAddr(l.chunks, op.Chunk*c.ChunkWords+op.Word)
	case RegAtomic:
		return spandex.WordAddr(l.atomics, op.Word)
	}
	panic("conform: unresolvable op region " + string(op.Region))
}

// describe names an address for failure messages ("chunk 1 word 3",
// "thread 2 private word 0", ...).
func (l *caseLayout) describe(c *Case, a spandex.Addr) string {
	word := func(base spandex.Addr) int { return int(a-base) / 4 }
	switch {
	case a >= l.barrier.Counter && a < l.barrier.Gen:
		return fmt.Sprintf("barrier counter word %d", word(l.barrier.Counter))
	case a >= l.barrier.Gen && a < l.ro:
		return fmt.Sprintf("barrier generation word %d", word(l.barrier.Gen))
	case a >= l.ro && a < l.chunks:
		return fmt.Sprintf("ro word %d", word(l.ro))
	case a >= l.chunks && a < l.atomics:
		w := word(l.chunks)
		if c.ChunkWords > 0 && w < c.Chunks*c.ChunkWords {
			return fmt.Sprintf("chunk %d word %d", w/c.ChunkWords, w%c.ChunkWords)
		}
		return fmt.Sprintf("chunk region word %d", w)
	case a >= l.atomics && len(l.private) > 0 && a < l.private[0]:
		return fmt.Sprintf("atomic word %d", word(l.atomics))
	}
	for t := len(l.private) - 1; t >= 0; t-- {
		if a >= l.private[t] {
			return fmt.Sprintf("thread %d private word %d", t, word(l.private[t]))
		}
	}
	return fmt.Sprintf("word %#x", uint64(a))
}

// initVal is the deterministic pre-execution value of region words: a
// region tag mixed with the word's coordinates, so every seeded word is
// distinct and a misdirected read is recognizable.
func initVal(region byte, a, b int) uint32 {
	x := uint32(region)<<24 ^ uint32(a)<<12 ^ uint32(b)
	return x * 2654435761
}

// inits returns the memory seeding shared by the executor (Program.Init)
// and the expectation model: every ro, chunk and private word gets a
// distinct deterministic value; atomic and barrier words start at zero.
func (c *Case) inits(l *caseLayout) []spandex.WordInit {
	var out []spandex.WordInit
	for i := 0; i < c.ROWords; i++ {
		out = append(out, spandex.WordInit{Addr: spandex.WordAddr(l.ro, i), Val: initVal('R', 0, i)})
	}
	for k := 0; k < c.Chunks; k++ {
		for w := 0; w < c.ChunkWords; w++ {
			out = append(out, spandex.WordInit{Addr: spandex.WordAddr(l.chunks, k*c.ChunkWords+w), Val: initVal('C', k, w)})
		}
	}
	for t := range c.Threads {
		for w := 0; w < c.PrivateWords; w++ {
			out = append(out, spandex.WordInit{Addr: spandex.WordAddr(l.private[t], w), Val: initVal('P', t, w)})
		}
	}
	return out
}
