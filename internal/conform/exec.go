package conform

import (
	"fmt"

	"spandex"
)

// DefaultMaxTime bounds one conformance run at 10 ms of simulated time —
// three orders of magnitude beyond a healthy case's execution, so hitting
// it means a protocol deadlock, while keeping a deadlocked spin loop cheap
// to abandon.
const DefaultMaxTime spandex.Time = 10_000_000_000

// RunOpts configures how cases are executed.
type RunOpts struct {
	// NoCheck disables the per-transition invariant audit
	// (Options.CheckEveryTransition). The audit is on by default: a fuzzer
	// run should catch an invariant violation even when it never becomes
	// observable divergence.
	NoCheck bool
	// MaxTime overrides DefaultMaxTime (0 keeps the default).
	MaxTime spandex.Time
	// Params overrides the FastParams base geometry (cores and CUs are
	// still resized to fit the case).
	Params *spandex.SystemParams
}

// PressureParams returns a machine whose every cache level holds only a
// handful of lines (4-line L1s, 1-2 KB shared levels), so generated cases
// constantly evict and write back. Conformance must hold regardless of
// geometry, and the eviction-dominated regime reaches protocol paths —
// ReqWB, owner recalls, silent Shared drops — that the default FastParams
// footprint never exercises. This is the regime that exposed the
// hierarchical directory's data-less upgrade-grant bug.
func PressureParams() *spandex.SystemParams {
	p := spandex.FastParams()
	p.L1SizeBytes = 256
	p.L1Ways = 2
	p.SpandexLLCBytes = 1024
	p.SpandexLLCWays = 2
	p.GPUL2Bytes = 1024
	p.GPUL2Ways = 2
	p.L3Bytes = 2048
	p.L3Ways = 2
	return &p
}

// BankedParams returns the FastParams machine with the Spandex LLC sharded
// into two address-interleaved banks on a mesh NoC. Every generated case
// then spreads its layout across two independent directories, and the
// oracle requires behaviour observationally identical to the flat LLC (the
// hierarchical baseline is never banked, so the cross-config comparison is
// itself a flat-vs-banked check).
func BankedParams() *spandex.SystemParams {
	p := spandex.FastParams()
	p.LLCBanks = 2
	p.Topology = spandex.TopoMesh
	return &p
}

// BankedPressureParams combines the sharded LLC with eviction-dominated
// geometry: two banks of four lines each (2 sets × 2 ways per bank), so
// the per-bank directory is under constant replacement pressure and the
// eviction/revocation/write-back races cross bank boundaries.
func BankedPressureParams() *spandex.SystemParams {
	p := PressureParams()
	p.SpandexLLCBytes = 512
	p.LLCBanks = 2
	p.Topology = spandex.TopoMesh
	return p
}

// Outcome is one case's observed behaviour on one configuration.
type Outcome struct {
	Config string
	// Res carries the run's measurements, including Transitions (the
	// dynamic coverage the fuzzer feeds into the transition-graph
	// cross-check).
	Res spandex.Result
	// RunErr is a run-level failure: deadlock, exceeded MaxTime, or a
	// coherence invariant violation. Logs may be partial and Image nil.
	RunErr error
	// Logs[t] is thread t's observation log: the value of every plain
	// load, in program order.
	Logs [][]uint32
	// SelfErrs[t] is thread t's first divergence from the model-predicted
	// log, or nil. The thread keeps executing after recording it, so the
	// barrier protocol stays intact and the full logs and image remain
	// comparable across configurations.
	SelfErrs []error
	// Image is the coherent post-run read-back of every layout word (the
	// architectural final memory state, read through the real protocol),
	// and ImageErr its first divergence from the model.
	Image    []uint32
	ImageErr error
}

// SelfErr returns the first per-thread model divergence, or nil.
func (o *Outcome) SelfErr() error {
	for _, err := range o.SelfErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// caseWorkload adapts a Case to the workload API for one run. A fresh
// value is built per run (never registered), so the capture buffers it
// carries are private to that run.
type caseWorkload struct {
	c   *Case
	l   *caseLayout
	e   *Expectation
	out *Outcome
}

func (w *caseWorkload) Meta() spandex.Meta {
	return spandex.Meta{
		Name:  "conform:" + w.c.Name,
		Suite: "Conformance",
		Pattern: "generated DRF region-discipline program; exact-value " +
			"checks on every load (differential oracle)",
		Partitioning:    "data",
		Synchronization: "coarse-grain (global barriers)",
		Sharing:         "flat",
		Locality:        "low",
		Params:          fmt.Sprintf("threads: %d, phases: %d, ops: %d", len(w.c.Threads), w.c.Phases, w.c.NumOps()),
	}
}

func (w *caseWorkload) body(t int) func(th *spandex.Thread) {
	c, l, e, out := w.c, w.l, w.e, w.out
	return func(th *spandex.Thread) {
		li := 0
		for p := 0; p < c.Phases; p++ {
			for _, op := range c.Threads[t].Ops[p] {
				switch op.Kind {
				case OpLoad:
					got := th.Load(l.addrOf(c, t, op))
					out.Logs[t] = append(out.Logs[t], got)
					if want := e.Logs[t][li]; got != want && out.SelfErrs[t] == nil {
						out.SelfErrs[t] = fmt.Errorf("thread %d load #%d (phase %d, %s): observed %#x, model predicts %#x",
							t, li, p, l.describe(c, l.addrOf(c, t, op)), got, want)
					}
					li++
				case OpStore:
					th.Store(l.addrOf(c, t, op), op.Val)
				case OpFetchAdd:
					th.FetchAdd(l.addrOf(c, t, op), op.Val, false, false)
				case OpFence:
					th.Fence(true, true)
				case OpCompute:
					th.Compute(op.Val%256 + 1)
				}
			}
			th.Wait(l.barrier)
		}
	}
}

func (w *caseWorkload) Build(m spandex.Machine, seed uint64) *spandex.Program {
	p := &spandex.Program{Init: w.c.inits(w.l)}
	var cpu []spandex.OpStream
	var gpu [][]spandex.OpStream
	for t, th := range w.c.Threads {
		s := spandex.GoThread(w.body(t))
		if th.OnGPU {
			gpu = append(gpu, []spandex.OpStream{s})
		} else {
			cpu = append(cpu, s)
		}
	}
	p.CPU, p.GPU = cpu, gpu
	p.Validate = func(read func(spandex.Addr) uint32) error {
		img := make([]uint32, len(w.l.words))
		for i, a := range w.l.words {
			img[i] = read(a)
		}
		w.out.Image = img
		for i, got := range img {
			if want := w.e.Image[i]; got != want {
				w.out.ImageErr = fmt.Errorf("final image: %s (%#x) = %#x, model predicts %#x",
					w.l.describe(w.c, w.l.words[i]), uint64(w.l.words[i]), got, want)
				break
			}
		}
		// Divergences are reported through the Outcome, not as a run error:
		// the oracle wants the complete image from every configuration so
		// it can tell a protocol bug from a model bug.
		return nil
	}
	return p
}

// params shapes the simulated machine to the case: one CPU core or GPU CU
// per thread (one warp per CU keeps the thread↔device mapping direct), at
// least one CPU core so post-run validation has a coherent reader.
func (c *Case) params(base *spandex.SystemParams) spandex.SystemParams {
	p := spandex.FastParams()
	if base != nil {
		p = *base
	}
	nCPU, nGPU := 0, 0
	for _, th := range c.Threads {
		if th.OnGPU {
			nGPU++
		} else {
			nCPU++
		}
	}
	p.CPUCores = maxInt(nCPU, 1)
	p.GPUCUs = nGPU
	p.WarpsPerCU = 1
	return p
}

// RecheckDeterminism runs a case twice on one configuration and explains
// the first divergent measurement if the runs were not bit-identical. The
// explanation names a counter (spandex.DiffResults / stats.FirstDiff), not
// a fingerprint hash. A non-nil result means the failure being chased is
// itself nondeterministic — simulator bug territory — and shrinking
// against it would thrash.
func RecheckDeterminism(c *Case, config string, ro RunOpts) error {
	a, b := RunCase(c, config, ro), RunCase(c, config, ro)
	if (a.RunErr == nil) != (b.RunErr == nil) {
		return fmt.Errorf("run error is nondeterministic: %v vs %v", a.RunErr, b.RunErr)
	}
	return spandex.DiffResults(a.Res, b.Res)
}

// RunCase executes a case on one configuration and captures everything the
// differential oracle compares. The case must already be Validated.
// A panic inside the simulated protocol (a stuck-state assertion firing)
// is recovered into RunErr so the oracle treats it like any other failing
// run — shrinkable and replayable — instead of killing the fuzzer.
func RunCase(c *Case, config string, ro RunOpts) (out *Outcome) {
	out = &Outcome{
		Config:   config,
		Logs:     make([][]uint32, len(c.Threads)),
		SelfErrs: make([]error, len(c.Threads)),
	}
	defer func() {
		if r := recover(); r != nil {
			out.RunErr = fmt.Errorf("panic: %v", r)
		}
	}()
	runCase(c, config, ro, out)
	return out
}

func runCase(c *Case, config string, ro RunOpts, out *Outcome) {
	l := c.layout()
	e := c.Expect(l)
	w := &caseWorkload{c: c, l: l, e: e, out: out}
	params := c.params(ro.Params)
	maxTime := ro.MaxTime
	if maxTime == 0 {
		maxTime = DefaultMaxTime
	}
	res, err := spandex.Run(w, spandex.Options{
		ConfigName:           config,
		Params:               &params,
		Seed:                 c.Seed,
		CheckInvariants:      true,
		CheckEveryTransition: !ro.NoCheck,
		RecordTransitions:    true,
		Validate:             true,
		MaxTime:              maxTime,
	})
	out.Res = res
	out.RunErr = err
}
