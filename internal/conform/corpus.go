package conform

// The checked-in litmus corpus: hand-written cases pinning the sharing
// patterns the random generator only hits probabilistically. Each is an
// ordinary Case, so it runs through the same differential oracle as fuzzed
// programs, is checked into testdata/conform/ in both reproducer forms
// (regenerate with spandex-fuzz -write-corpus), and is executed as a table
// test on every configuration by the conformance tests.

// CorpusCases returns the corpus, one fresh copy per call.
func CorpusCases() []*Case {
	return []*Case{
		ownershipPingPong(),
		readersThenWriter(),
		falseSharingChunks(),
		atomicRendezvous(),
	}
}

// ownershipPingPong bounces one chunk between a CPU thread and a GPU
// thread every phase. Each new owner first loads every word (it must see
// the previous owner's stores exactly — the ownership-transfer path:
// Spandex ReqO/ReqWTfwd revocations, MESI forwarding) and then overwrites
// them all.
func ownershipPingPong() *Case {
	const words = 6
	c := &Case{
		Name:       "ownership-pingpong",
		Phases:     4,
		Chunks:     1,
		ChunkWords: words,
		Owner:      [][]int{{0}, {1}, {0}, {1}},
		Threads: []ThreadCase{
			{OnGPU: false},
			{OnGPU: true},
		},
	}
	for t := range c.Threads {
		for p := 0; p < c.Phases; p++ {
			var ops []Op
			if c.Owner[p][0] == t {
				if p > 0 {
					for w := 0; w < words; w++ {
						ops = append(ops, Op{Kind: OpLoad, Region: RegChunk, Word: w})
					}
				}
				for w := 0; w < words; w++ {
					ops = append(ops, Op{Kind: OpStore, Region: RegChunk, Word: w,
						Val: uint32(0xb0b0<<16) | uint32(p)<<8 | uint32(w)})
				}
			} else {
				ops = append(ops, Op{Kind: OpCompute, Val: 20})
			}
			c.Threads[t].Ops = append(c.Threads[t].Ops, ops)
		}
	}
	return c
}

// readersThenWriter alternates a chunk between read-shared phases (three
// threads load every word — self-invalidating readers must refetch after
// the barrier) and exclusive phases (one thread rewrites it). Stresses the
// downgrade/upgrade cycle: shared copies must die when ownership is taken
// and reads must miss to the new data when it returns to read-shared.
func readersThenWriter() *Case {
	const words = 4
	c := &Case{
		Name:       "readers-then-writer",
		Phases:     4,
		Chunks:     1,
		ChunkWords: words,
		Owner:      [][]int{{ReadShared}, {2}, {ReadShared}, {0}},
		Threads: []ThreadCase{
			{OnGPU: false},
			{OnGPU: true},
			{OnGPU: true},
		},
	}
	for t := range c.Threads {
		for p := 0; p < c.Phases; p++ {
			var ops []Op
			switch owner := c.Owner[p][0]; {
			case owner == ReadShared:
				for w := 0; w < words; w++ {
					ops = append(ops, Op{Kind: OpLoad, Region: RegChunk, Word: w})
				}
			case owner == t:
				for w := 0; w < words; w++ {
					ops = append(ops, Op{Kind: OpStore, Region: RegChunk, Word: w,
						Val: uint32(0xfeed<<16) | uint32(p)<<8 | uint32(w)})
				}
			default:
				ops = append(ops, Op{Kind: OpCompute, Val: 10})
			}
			c.Threads[t].Ops = append(c.Threads[t].Ops, ops)
		}
	}
	return c
}

// falseSharingChunks gives four threads four sub-line chunks (3 words each,
// so a 16-word cache line spans chunks with different owners): concurrent
// same-line writes under different coherence strategies, the word- vs
// line-granularity boundary. Each phase rotates the chunk assignment and
// each owner verifies the previous owner's values before overwriting.
func falseSharingChunks() *Case {
	const words = 3
	c := &Case{
		Name:       "false-sharing-chunks",
		Phases:     3,
		Chunks:     4,
		ChunkWords: words,
		Owner: [][]int{
			{0, 1, 2, 3},
			{1, 2, 3, 0},
			{2, 3, 0, 1},
		},
		Threads: []ThreadCase{
			{OnGPU: false},
			{OnGPU: false},
			{OnGPU: true},
			{OnGPU: true},
		},
	}
	for t := range c.Threads {
		for p := 0; p < c.Phases; p++ {
			var ops []Op
			for k := 0; k < c.Chunks; k++ {
				if c.Owner[p][k] != t {
					continue
				}
				if p > 0 {
					for w := 0; w < words; w++ {
						ops = append(ops, Op{Kind: OpLoad, Region: RegChunk, Chunk: k, Word: w})
					}
				}
				for w := 0; w < words; w++ {
					ops = append(ops, Op{Kind: OpStore, Region: RegChunk, Chunk: k, Word: w,
						Val: uint32(0xfa15e<<12) | uint32(p)<<8 | uint32(k)<<4 | uint32(w)})
				}
			}
			c.Threads[t].Ops = append(c.Threads[t].Ops, ops)
		}
	}
	return c
}

// atomicRendezvous hammers two atomic words with fenced fetch-adds from a
// CPU/GPU mix while private traffic runs alongside — the contended-RMW
// serialization path. Return values are timing-dependent and unlogged; the
// deterministic final sums are what the oracle checks.
func atomicRendezvous() *Case {
	c := &Case{
		Name:         "atomic-rendezvous",
		Phases:       2,
		PrivateWords: 2,
		AtomicWords:  2,
		Threads: []ThreadCase{
			{OnGPU: false},
			{OnGPU: true},
			{OnGPU: true},
		},
	}
	c.Owner = [][]int{nil, nil}
	for p := range c.Owner {
		c.Owner[p] = []int{}
	}
	for t := range c.Threads {
		for p := 0; p < c.Phases; p++ {
			var ops []Op
			for i := 0; i < 4; i++ {
				ops = append(ops,
					Op{Kind: OpFetchAdd, Region: RegAtomic, Word: i % 2, Val: uint32(t + 1)},
					Op{Kind: OpStore, Region: RegPrivate, Word: i % 2, Val: uint32(t)<<16 | uint32(p)<<8 | uint32(i)},
					Op{Kind: OpFence},
					Op{Kind: OpLoad, Region: RegPrivate, Word: i % 2},
				)
			}
			c.Threads[t].Ops = append(c.Threads[t].Ops, ops)
		}
	}
	return c
}
