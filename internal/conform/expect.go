package conform

import "spandex"

// LogRef locates one observation-log entry back in the case, so log
// divergences report as "thread 2 load #5 (phase 1, chunk 3 word 2)"
// rather than a bare index.
type LogRef struct {
	Phase, OpIdx int
	Op           Op
}

// Expectation is the model-predicted observable behaviour of a case: the
// exact value every plain load must observe, and the exact final value of
// every allocated word. It is computed from the case alone — no simulation
// — which is what lets the oracle separate protocol bugs (configurations
// diverge from each other) from model bugs (all configurations agree with
// each other but not with the model).
type Expectation struct {
	// Logs[t] is thread t's expected observation log: one value per OpLoad
	// in program order.
	Logs [][]uint32
	// Refs[t][i] locates Logs[t][i]'s load in the case.
	Refs [][]LogRef
	// Image is the expected final value of every layout word, in layout
	// word order.
	Image []uint32
}

// Expect computes the model prediction. The model exploits the discipline:
// within a phase all written words are disjoint across threads, and any
// value a thread loads was either written before the phase (ordered by the
// barrier) or by the thread itself earlier in the phase. Replaying threads
// one at a time per phase against a single memory model therefore yields
// exactly the values the real concurrent execution must observe.
// Fetch-adds are commutative, so their summed effect on the model is
// order-independent even though their return values (never logged) are not.
func (c *Case) Expect(l *caseLayout) *Expectation {
	mem := make(map[spandex.Addr]uint32)
	for _, init := range c.inits(l) {
		mem[init.Addr] = init.Val
	}
	e := &Expectation{
		Logs: make([][]uint32, len(c.Threads)),
		Refs: make([][]LogRef, len(c.Threads)),
	}
	for p := 0; p < c.Phases; p++ {
		for t, th := range c.Threads {
			for i, op := range th.Ops[p] {
				switch op.Kind {
				case OpLoad:
					a := l.addrOf(c, t, op)
					e.Logs[t] = append(e.Logs[t], mem[a])
					e.Refs[t] = append(e.Refs[t], LogRef{Phase: p, OpIdx: i, Op: op})
				case OpStore:
					mem[l.addrOf(c, t, op)] = op.Val
				case OpFetchAdd:
					mem[l.addrOf(c, t, op)] += op.Val
				}
			}
		}
	}
	// The sense-reversing barrier leaves its counter reset to zero and its
	// generation at the number of completed waits per thread (one per
	// phase).
	mem[l.barrier.Gen] = uint32(c.Phases)
	e.Image = make([]uint32, len(l.words))
	for i, a := range l.words {
		e.Image[i] = mem[a]
	}
	return e
}
