package conform

// Shrink delta-debugs a failing case down to a minimal reproducer: it
// repeatedly tries structural reductions — drop a thread, drop a phase,
// drop runs of operations (largest chunks first, ddmin style) — keeping a
// candidate only when fails still holds, until no reduction sticks or the
// evaluation budget runs out. Every candidate is re-validated against the
// race-freedom discipline (reductions preserve it by construction, since
// removing operations or reassigning an absent thread's chunks never adds
// an access) and its expectation model is recomputed from scratch on
// execution, so the shrunken case is exactly as self-checking as the
// original.
//
// fails must be deterministic; with a deterministic property the shrink is
// a pure function of (c, fails, maxEvals). It returns the minimized case
// and the number of property evaluations spent.
func Shrink(c *Case, fails func(*Case) bool, maxEvals int) (*Case, int) {
	cur := c.Clone()
	evals := 0
	budget := func() bool { return evals < maxEvals }
	attempt := func(cand *Case) bool {
		if cand == nil || !budget() || cand.Validate() != nil {
			return false
		}
		evals++
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}

	for changed := true; changed && budget(); {
		changed = false

		// Threads, last first (keeps earlier indices stable).
		for t := len(cur.Threads) - 1; t >= 0 && len(cur.Threads) > 1 && budget(); t-- {
			if attempt(removeThread(cur, t)) {
				changed = true
			}
		}

		// Phases, last first.
		for p := cur.Phases - 1; p >= 0 && cur.Phases > 1 && budget(); p-- {
			if attempt(removePhase(cur, p)) {
				changed = true
			}
		}

		// Operations: per (thread, phase) list, try removing spans of
		// halving size.
		for t := 0; t < len(cur.Threads) && budget(); t++ {
			for p := 0; p < cur.Phases && budget(); p++ {
				for size := len(cur.Threads[t].Ops[p]); size >= 1; size /= 2 {
					for start := 0; start < len(cur.Threads[t].Ops[p]) && budget(); {
						if attempt(removeOps(cur, t, p, start, size)) {
							changed = true // same start now names the next span
						} else {
							start += size
						}
					}
				}
			}
		}
	}
	return cur, evals
}

// removeThread drops thread t, collapsing thread indices above it and
// reassigning its chunks (which now have no accessor) to thread 0.
func removeThread(c *Case, t int) *Case {
	out := c.Clone()
	out.Threads = append(out.Threads[:t], out.Threads[t+1:]...)
	for p, row := range out.Owner {
		for k, o := range row {
			switch {
			case o == ReadShared:
			case o == t:
				out.Owner[p][k] = 0
			case o > t:
				out.Owner[p][k] = o - 1
			}
		}
	}
	return out
}

// removePhase drops phase p from the schedule and every thread.
func removePhase(c *Case, p int) *Case {
	out := c.Clone()
	out.Phases--
	out.Owner = append(out.Owner[:p], out.Owner[p+1:]...)
	for t := range out.Threads {
		ops := out.Threads[t].Ops
		out.Threads[t].Ops = append(ops[:p], ops[p+1:]...)
	}
	return out
}

// removeOps drops up to n operations of thread t's phase p starting at
// start; nil when the span is empty.
func removeOps(c *Case, t, p, start, n int) *Case {
	ops := c.Threads[t].Ops[p]
	if start >= len(ops) || n <= 0 {
		return nil
	}
	end := start + n
	if end > len(ops) {
		end = len(ops)
	}
	out := c.Clone()
	out.Threads[t].Ops[p] = append(out.Threads[t].Ops[p][:start], out.Threads[t].Ops[p][end:]...)
	return out
}
