package conform

import (
	"strings"
	"testing"
)

// TestPressureSweepConforms fuzzes under PressureParams, where every cache
// level is a few lines and evictions dominate. This sweep is what exposed
// the hierarchical directory's data-less upgrade-grant bug (an L1 that had
// silently dropped its Shared copy assembled the "upgraded" line in a
// zero-filled frame and later wrote the zeros back over memory).
func TestPressureSweepConforms(t *testing.T) {
	ro := RunOpts{Params: PressureParams()}
	for seed := uint64(0); seed < 24; seed++ {
		c := Generate(seed, GenParams{})
		rep := CheckCase(c, nil, ro)
		if rep.Failed() {
			t.Fatalf("seed %d under cache pressure (%s):\n%v", seed, rep.Kind, rep.Err())
		}
	}
}

// TestPressureRegressions replays the minimized reproducers of the three
// protocol races the pressure fuzzer exposed in the Spandex configurations,
// under the same tiny-cache geometry that surfaced them:
//
//   - seed-13-min: the LLC resolved an owner revocation through a crossing
//     ReqWB, re-granted ownership, then let the late RspRvkO from the
//     abandoned probe clear the new epoch's ownership and merge stale data
//     (SMG livelock). The GPU L2 had the same hole for child revocations.
//   - seed-894-min: a MESI L1 eviction invalidates its frame instantly but
//     the MPutM crossed the TU port with latency, so an external forwarded
//     request in that window found Invalid with no write-back record and
//     panicked. The record is now created synchronously.
//   - seed-2712-min: an Inv from a later writer overtook an in-flight read
//     grant travelling from the previous owner on a different channel; the
//     L1 acked the Inv, then installed a stale Shared copy off the grant
//     (SMD stale final image). The TU now downgrades such grants to
//     Invalid after the waiting loads complete.
func TestPressureRegressions(t *testing.T) {
	for _, name := range []string{"seed-13-min", "seed-894-min", "seed-2712-min"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := LoadCaseFile("../../testdata/conform/" + name + ".json")
			if err != nil {
				t.Fatal(err)
			}
			if rep := CheckCase(c, nil, RunOpts{Params: PressureParams()}); rep.Failed() {
				t.Fatalf("%s under cache pressure (%s):\n%v", name, rep.Kind, rep.Err())
			}
		})
	}
}

// TestPressureUpgradeRegression pins the seed that minimized to the
// upgrade-grant reproducer: two CPU threads share one line (sub-line
// chunks), the 4-line L1 silently evicts a Shared copy between load and
// store, and the store's GetM grant must carry data — a data-less grant
// loses every word of the line the store didn't touch.
func TestPressureUpgradeRegression(t *testing.T) {
	c := Generate(4, GenParams{})
	rep := CheckCase(c, []string{"HMG", "HMD"}, RunOpts{Params: PressureParams()})
	if !rep.Failed() {
		return
	}
	for _, f := range rep.Failures {
		if strings.Contains(f, "= 0x0") {
			t.Fatalf("zero-filled line resurfaced (data-less upgrade grant?): %v", f)
		}
	}
	t.Fatalf("seed 4 under pressure failed (%s): %v", rep.Kind, rep.Err())
}
