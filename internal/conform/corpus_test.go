package conform

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpusCasesConform runs every hand-written corpus case through the
// full differential oracle.
func TestCorpusCasesConform(t *testing.T) {
	for _, c := range CorpusCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if rep := CheckCase(c, nil, RunOpts{}); rep.Failed() {
				t.Fatal(rep.Err())
			}
		})
	}
}

// TestCorpusFilesInSync checks the corpus checked into testdata/conform/
// matches CorpusCases — both the JSON and the generated Go reproducer.
// Regenerate with: go run ./cmd/spandex-fuzz -write-corpus testdata/conform
// (from the repository root).
func TestCorpusFilesInSync(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "conform")
	for _, c := range CorpusCases() {
		for ext, want := range map[string][]byte{
			".json": c.ToJSON(),
			".go":   GoReproSource(c),
		} {
			path := filepath.Join(dir, sanitizeName(c.Name)+ext)
			got, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("%s: %v (regenerate with spandex-fuzz -write-corpus)", path, err)
				continue
			}
			if string(got) != string(want) {
				t.Errorf("%s is stale (regenerate with spandex-fuzz -write-corpus)", path)
			}
		}
	}
}

// TestCorpusReplayFromJSON replays every checked-in JSON case through the
// oracle — the exact path a minimized fuzz reproducer takes.
func TestCorpusReplayFromJSON(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "conform", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no JSON cases under testdata/conform")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			c, err := LoadCaseFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rep := CheckCase(c, nil, RunOpts{}); rep.Failed() {
				t.Fatal(rep.Err())
			}
		})
	}
}
