package conform

import (
	"fmt"
	"strings"
	"sync"

	"spandex"
)

// Report kinds, in failure-precedence order.
const (
	// KindPass: every configuration completed, agreed with every other and
	// with the model.
	KindPass = "pass"
	// KindRunError: at least one configuration deadlocked, timed out or
	// broke a coherence invariant.
	KindRunError = "run-error"
	// KindDivergence: configurations completed but observed different
	// values or final memory — an SC-for-DRF violation in at least one.
	KindDivergence = "divergence"
	// KindModelBug: every configuration agreed with every other but all
	// disagreed with the model identically. That unanimity points at the
	// conformance model (or a hand-edited case), not the protocols.
	KindModelBug = "model-bug"
)

// Report is the differential oracle's verdict on one case.
type Report struct {
	Case     *Case
	Configs  []string
	Outcomes []*Outcome
	// Kind classifies the verdict (KindPass..KindModelBug) and Failures
	// carries one human-readable line per finding.
	Kind     string
	Failures []string
}

// Failed reports whether the case found anything.
func (r *Report) Failed() bool { return r.Kind != KindPass }

// Err summarizes the report as an error, or nil on a pass.
func (r *Report) Err() error {
	if !r.Failed() {
		return nil
	}
	return fmt.Errorf("conform: case %s: %s:\n  %s", r.Case.Name, r.Kind, strings.Join(r.Failures, "\n  "))
}

// CheckCase runs one validated case on every named configuration (nil
// means all six) and compares the observations pairwise against the first
// configuration that completed. Runs execute concurrently — each on a
// fully isolated System — and their Results are deterministic, so the
// report is independent of scheduling.
func CheckCase(c *Case, configs []string, ro RunOpts) *Report {
	if len(configs) == 0 {
		configs = spandex.ConfigNames()
	}
	r := &Report{Case: c, Configs: configs, Outcomes: make([]*Outcome, len(configs))}
	var wg sync.WaitGroup
	for i, cn := range configs {
		wg.Add(1)
		go func(i int, cn string) {
			defer wg.Done()
			r.Outcomes[i] = RunCase(c, cn, ro)
		}(i, cn)
	}
	wg.Wait()
	classify(r)
	return r
}

// classify fills Report.Kind and Report.Failures from the outcomes.
func classify(r *Report) {
	c := r.Case
	l := c.layout()
	e := c.Expect(l)

	var ref *Outcome
	for _, o := range r.Outcomes {
		if o.RunErr != nil {
			r.Failures = append(r.Failures, fmt.Sprintf("%s: %v", o.Config, o.RunErr))
		} else if ref == nil {
			ref = o
		}
	}
	runErrors := len(r.Failures) > 0

	divergence := false
	for _, o := range r.Outcomes {
		if o.RunErr != nil || o == ref || ref == nil {
			continue
		}
		if diffs := diffOutcomes(c, l, e, ref, o); len(diffs) > 0 {
			divergence = true
			r.Failures = append(r.Failures, diffs...)
		}
	}

	// Model disagreement only matters when the configurations agree with
	// each other: any cross-config divergence already explains the self
	// errors and pins them on a protocol.
	modelBug := false
	if !runErrors && !divergence && ref != nil {
		if err := firstModelErr(ref); err != nil {
			modelBug = true
			r.Failures = append(r.Failures,
				fmt.Sprintf("all configurations agree with each other but not the model (likely a case/model bug): %v", err))
		}
	}

	switch {
	case runErrors:
		r.Kind = KindRunError
	case divergence:
		r.Kind = KindDivergence
	case modelBug:
		r.Kind = KindModelBug
	default:
		r.Kind = KindPass
	}
}

func firstModelErr(o *Outcome) error {
	if err := o.SelfErr(); err != nil {
		return err
	}
	return o.ImageErr
}

// diffOutcomes reports every observable difference between two completed
// runs of the same case: per-thread observation logs first (with the load
// located back in the case), then the final memory image (with the word
// named by region). Any non-empty result is an SC-for-DRF violation.
func diffOutcomes(c *Case, l *caseLayout, e *Expectation, a, b *Outcome) []string {
	var out []string
	for t := range c.Threads {
		la, lb := a.Logs[t], b.Logs[t]
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		diverged := false
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				ref := e.Refs[t][i]
				out = append(out, fmt.Sprintf("thread %d load #%d (phase %d, %s): %s observed %#x, %s observed %#x (model predicts %#x)",
					t, i, ref.Phase, l.describe(c, l.addrOf(c, t, ref.Op)),
					a.Config, la[i], b.Config, lb[i], e.Logs[t][i]))
				diverged = true
				break
			}
		}
		if !diverged && len(la) != len(lb) {
			out = append(out, fmt.Sprintf("thread %d: %s logged %d loads, %s logged %d",
				t, a.Config, len(la), b.Config, len(lb)))
		}
	}
	if a.Image != nil && b.Image != nil {
		for i := range a.Image {
			if a.Image[i] != b.Image[i] {
				out = append(out, fmt.Sprintf("final image: %s (%#x): %s read %#x, %s read %#x (model predicts %#x)",
					l.describe(c, l.words[i]), uint64(l.words[i]),
					a.Config, a.Image[i], b.Config, b.Image[i], e.Image[i]))
				break
			}
		}
	}
	return out
}
