package conform

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCase builds a small hand-written case: two threads, two phases, one
// chunk that migrates from thread 0 to thread 1 across the barrier.
func tinyCase() *Case {
	return &Case{
		Name:         "tiny",
		Phases:       2,
		PrivateWords: 2,
		ROWords:      2,
		Chunks:       1,
		ChunkWords:   2,
		AtomicWords:  1,
		Owner:        [][]int{{0}, {1}},
		Threads: []ThreadCase{
			{Ops: [][]Op{
				{
					{Kind: OpStore, Region: RegChunk, Chunk: 0, Word: 0, Val: 0x1111},
					{Kind: OpStore, Region: RegChunk, Chunk: 0, Word: 1, Val: 0x2222},
					{Kind: OpLoad, Region: RegChunk, Chunk: 0, Word: 0},
					{Kind: OpFetchAdd, Region: RegAtomic, Word: 0, Val: 5},
				},
				{
					{Kind: OpLoad, Region: RegRO, Word: 1},
					{Kind: OpStore, Region: RegPrivate, Word: 0, Val: 0x3333},
					{Kind: OpLoad, Region: RegPrivate, Word: 0},
				},
			}},
			{OnGPU: true, Ops: [][]Op{
				{
					{Kind: OpLoad, Region: RegRO, Word: 0},
					{Kind: OpFetchAdd, Region: RegAtomic, Word: 0, Val: 7},
				},
				{
					// After the barrier this thread owns the chunk: it must
					// see thread 0's phase-0 stores, then overwrite them.
					{Kind: OpLoad, Region: RegChunk, Chunk: 0, Word: 0},
					{Kind: OpLoad, Region: RegChunk, Chunk: 0, Word: 1},
					{Kind: OpStore, Region: RegChunk, Chunk: 0, Word: 0, Val: 0x4444},
				},
			}},
		},
	}
}

func TestTinyCaseExpectation(t *testing.T) {
	c := tinyCase()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	l := c.layout()
	e := c.Expect(l)

	// Thread 0: chunk load sees its own store, private load its own store,
	// ro load the seeded value.
	want0 := []uint32{0x1111, initVal('R', 0, 1), 0x3333}
	if len(e.Logs[0]) != len(want0) {
		t.Fatalf("thread 0 log: %v, want %v", e.Logs[0], want0)
	}
	for i, w := range want0 {
		if e.Logs[0][i] != w {
			t.Errorf("thread 0 log[%d] = %#x, want %#x", i, e.Logs[0][i], w)
		}
	}
	// Thread 1: ro seed, then thread 0's phase-0 chunk stores.
	want1 := []uint32{initVal('R', 0, 0), 0x1111, 0x2222}
	for i, w := range want1 {
		if e.Logs[1][i] != w {
			t.Errorf("thread 1 log[%d] = %#x, want %#x", i, e.Logs[1][i], w)
		}
	}

	// Final image: chunk word 0 holds thread 1's overwrite, word 1 thread
	// 0's store; the atomic word sums both fetch-adds.
	img := func(a uint32) uint32 {
		for i, addr := range l.words {
			if uint32(addr) == a {
				return e.Image[i]
			}
		}
		t.Fatalf("address %#x not in layout", a)
		return 0
	}
	if got := img(uint32(l.chunks)); got != 0x4444 {
		t.Errorf("chunk word 0 = %#x, want 0x4444", got)
	}
	if got := img(uint32(l.chunks) + 4); got != 0x2222 {
		t.Errorf("chunk word 1 = %#x, want 0x2222", got)
	}
	if got := img(uint32(l.atomics)); got != 12 {
		t.Errorf("atomic word 0 = %d, want 12", got)
	}
}

func TestTinyCasePassesAllConfigs(t *testing.T) {
	rep := CheckCase(tinyCase(), nil, RunOpts{})
	if rep.Failed() {
		t.Fatal(rep.Err())
	}
	if len(rep.Outcomes) != 6 {
		t.Fatalf("ran %d configurations, want 6", len(rep.Outcomes))
	}
	for _, o := range rep.Outcomes {
		// Transition coverage exists only where a Spandex LLC does (the
		// hierarchical baselines have no audited transition graph).
		if strings.HasPrefix(o.Config, "S") && len(o.Res.Transitions) == 0 {
			t.Errorf("%s: no transitions recorded", o.Config)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		a := Generate(seed, GenParams{}).ToJSON()
		b := Generate(seed, GenParams{}).ToJSON()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if bytes.Equal(Generate(1, GenParams{}).ToJSON(), Generate(2, GenParams{}).ToJSON()) {
		t.Fatal("distinct seeds produced identical cases")
	}
}

func TestGeneratedCasesValidate(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		c := Generate(seed, GenParams{})
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGeneratedCasesConform(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rep := CheckCase(Generate(seed, GenParams{}), nil, RunOpts{})
		if rep.Failed() {
			t.Fatalf("seed %d: %v", seed, rep.Err())
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Generate(7, GenParams{})
	data := c.ToJSON()
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.ToJSON(), data) {
		t.Fatal("round trip changed the case")
	}
}

func TestValidateRejectsRaces(t *testing.T) {
	breakCase := func(mut func(*Case)) *Case {
		c := tinyCase()
		mut(c)
		return c
	}
	cases := []struct {
		name string
		c    *Case
		want string
	}{
		{"store to unowned chunk", breakCase(func(c *Case) {
			c.Threads[1].Ops[0] = append(c.Threads[1].Ops[0],
				Op{Kind: OpStore, Region: RegChunk, Chunk: 0, Word: 0, Val: 1})
		}), "race"},
		{"load of unowned chunk", breakCase(func(c *Case) {
			c.Threads[1].Ops[0] = append(c.Threads[1].Ops[0],
				Op{Kind: OpLoad, Region: RegChunk, Chunk: 0, Word: 0})
		}), "race"},
		{"store to ro", breakCase(func(c *Case) {
			c.Threads[0].Ops[0] = append(c.Threads[0].Ops[0],
				Op{Kind: OpStore, Region: RegRO, Word: 0, Val: 1})
		}), "read-only"},
		{"plain load on atomic word", breakCase(func(c *Case) {
			c.Threads[0].Ops[0] = append(c.Threads[0].Ops[0],
				Op{Kind: OpLoad, Region: RegAtomic, Word: 0})
		}), "race"},
		{"fetchadd outside atomic region", breakCase(func(c *Case) {
			c.Threads[0].Ops[0] = append(c.Threads[0].Ops[0],
				Op{Kind: OpFetchAdd, Region: RegPrivate, Word: 0, Val: 1})
		}), "confined"},
		{"owner out of range", breakCase(func(c *Case) { c.Owner[0][0] = 9 }), "out of range"},
		{"owner schedule shape", breakCase(func(c *Case) { c.Owner = c.Owner[:1] }), "phases"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken case")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestClassifyPrecedence perturbs real outcomes to drive each verdict.
func TestClassifyPrecedence(t *testing.T) {
	c := tinyCase()
	base := func() *Report {
		return CheckCase(c, []string{"HMG", "SDD"}, RunOpts{})
	}

	if rep := base(); rep.Kind != KindPass {
		t.Fatalf("baseline: %v", rep.Err())
	}

	rep := base()
	rep.Outcomes[1].Logs[1][1] ^= 0xdead
	rep.Failures, rep.Kind = nil, ""
	classify(rep)
	if rep.Kind != KindDivergence {
		t.Fatalf("perturbed log classified %s, want %s (%v)", rep.Kind, KindDivergence, rep.Failures)
	}
	if len(rep.Failures) == 0 || !strings.Contains(rep.Failures[0], "thread 1") {
		t.Fatalf("divergence failure does not locate the load: %v", rep.Failures)
	}

	rep = base()
	rep.Outcomes[1].Image[len(rep.Outcomes[1].Image)-1]++
	rep.Failures, rep.Kind = nil, ""
	classify(rep)
	if rep.Kind != KindDivergence {
		t.Fatalf("perturbed image classified %s, want %s", rep.Kind, KindDivergence)
	}

	// An identical model disagreement in every configuration is a model
	// bug, not a protocol bug.
	rep = base()
	for _, o := range rep.Outcomes {
		o.SelfErrs[0] = errFake{}
	}
	rep.Failures, rep.Kind = nil, ""
	classify(rep)
	if rep.Kind != KindModelBug {
		t.Fatalf("unanimous self-error classified %s, want %s", rep.Kind, KindModelBug)
	}

	// A run error outranks everything.
	rep = base()
	rep.Outcomes[0].RunErr = errFake{}
	rep.Outcomes[1].Logs[1][1] ^= 0xdead
	rep.Failures, rep.Kind = nil, ""
	classify(rep)
	if rep.Kind != KindRunError {
		t.Fatalf("run error classified %s, want %s", rep.Kind, KindRunError)
	}
}

type errFake struct{}

func (errFake) Error() string { return "synthetic failure" }
