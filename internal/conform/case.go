// Package conform implements differential conformance fuzzing for the
// six cache configurations: a seeded generator of data-race-free programs
// over the workload API, an oracle that runs each program on every
// configuration and requires observationally identical behaviour, and a
// delta-debugging shrinker that reduces a failing program to a minimal
// reproducer.
//
// The paper's central claim (§III-E) is that very different device
// coherence strategies integrate under one Spandex LLC while preserving
// SC-for-DRF semantics. For data-race-free programs that claim has a sharp
// observational consequence: every configuration must produce the same
// per-thread sequence of loaded values and the same final memory image.
// Programs here are race-free by construction (the region discipline
// below), so any divergence between configurations is a protocol bug, not
// a test bug — and a failure shared identically by all six configurations
// is a bug in the conformance model itself, which the oracle classifies
// separately.
//
// # Region discipline
//
// A Case carves the address space into four region kinds and restricts
// which thread may touch which words in which barrier-delimited phase:
//
//   - private: one region per thread; only that thread loads or stores it.
//   - ro: read-only data seeded before execution; any thread may load it,
//     nobody stores.
//   - chunk: ownership-migrating regions. In each phase a chunk is either
//     owned by exactly one thread (only the owner loads/stores it) or
//     read-shared (any thread loads, nobody stores). Ownership moves
//     between phases, including across the CPU/GPU boundary — the
//     request-granularity × strategy interactions the fuzzer targets.
//   - atomic: words touched only through atomics, restricted to
//     commutative updates (fetch-add), so the final value is deterministic
//     while per-op return values — which legitimately depend on timing —
//     stay out of the comparison.
//
// All threads join a global sense-reversing barrier between phases; its
// release/acquire semantics order cross-phase accesses, so every plain
// load has exactly one visible writer and the program is DRF.
package conform

import (
	"encoding/json"
	"fmt"
)

// OpKind is the kind of one conformance-program operation.
type OpKind string

// Operation kinds. Loads append their observed value to the thread's
// observation log; the other kinds log nothing.
const (
	OpLoad     OpKind = "load"
	OpStore    OpKind = "store"
	OpFetchAdd OpKind = "fetchadd"
	OpFence    OpKind = "fence"
	OpCompute  OpKind = "compute"
)

// RegionKind names the region an operation targets.
type RegionKind string

// Region kinds (see the package comment for the access discipline).
const (
	RegPrivate RegionKind = "private"
	RegRO      RegionKind = "ro"
	RegChunk   RegionKind = "chunk"
	RegAtomic  RegionKind = "atomic"
)

// ReadShared marks a chunk as read-shared for a phase in Case.Owner: any
// thread may load it, no thread may store it.
const ReadShared = -1

// Op is one operation of a thread's per-phase program.
type Op struct {
	Kind OpKind `json:"kind"`
	// Region, Chunk and Word locate the target for load/store/fetchadd:
	// Chunk selects the chunk for RegChunk (ignored otherwise), Word
	// indexes a word within the region (within the chunk for RegChunk).
	Region RegionKind `json:"region,omitempty"`
	Chunk  int        `json:"chunk,omitempty"`
	Word   int        `json:"word,omitempty"`
	// Val is the store value, the fetch-add delta, or the compute cycle
	// count. Fences ignore it.
	Val uint32 `json:"val,omitempty"`
}

// ThreadCase is one thread's placement and per-phase programs.
type ThreadCase struct {
	// OnGPU places the thread on a GPU compute unit instead of a CPU core,
	// so it runs under the configuration's GPU L1 protocol.
	OnGPU bool `json:"on_gpu,omitempty"`
	// Ops[p] is the thread's program for phase p; len(Ops) == Case.Phases.
	Ops [][]Op `json:"ops"`
}

// Case is one self-contained conformance program: explicit per-thread,
// per-phase operation lists plus the region geometry and ownership
// schedule. It is independent of the generator that produced it, so it
// serializes to JSON, replays deterministically, and shrinks structurally.
type Case struct {
	// Name labels the case in reports and emitted reproducers.
	Name string `json:"name,omitempty"`
	// Seed records the generator seed the case came from (provenance only;
	// replay never re-derives anything from it).
	Seed uint64 `json:"seed,omitempty"`

	// Phases is the number of barrier-delimited phases.
	Phases int `json:"phases"`

	// Region geometry, in words.
	PrivateWords int `json:"private_words"`
	ROWords      int `json:"ro_words"`
	Chunks       int `json:"chunks"`
	ChunkWords   int `json:"chunk_words"`
	AtomicWords  int `json:"atomic_words"`

	// Owner[p][k] is the thread owning chunk k during phase p, or
	// ReadShared (-1) when the chunk is read-shared for that phase.
	Owner [][]int `json:"owner"`

	Threads []ThreadCase `json:"threads"`
}

// Clone returns a deep copy.
func (c *Case) Clone() *Case {
	out := *c
	out.Owner = make([][]int, len(c.Owner))
	for p, row := range c.Owner {
		out.Owner[p] = append([]int(nil), row...)
	}
	out.Threads = make([]ThreadCase, len(c.Threads))
	for t, th := range c.Threads {
		nt := ThreadCase{OnGPU: th.OnGPU, Ops: make([][]Op, len(th.Ops))}
		for p, ops := range th.Ops {
			nt.Ops[p] = append([]Op(nil), ops...)
		}
		out.Threads[t] = nt
	}
	return &out
}

// NumOps counts every operation across all threads and phases (the size
// measure the shrinker minimizes; barrier waits are implicit and uncounted).
func (c *Case) NumOps() int {
	n := 0
	for _, th := range c.Threads {
		for _, ops := range th.Ops {
			n += len(ops)
		}
	}
	return n
}

// Validate checks the case is well-formed and obeys the race-freedom
// discipline: region indices in range, the ownership schedule shaped
// phases × chunks, chunk loads only by the owner (or anyone when
// read-shared), chunk stores only by the owner, atomics only on atomic
// words. A valid case is DRF by construction.
func (c *Case) Validate() error {
	if c.Phases < 1 {
		return fmt.Errorf("conform: case needs at least one phase, has %d", c.Phases)
	}
	if len(c.Threads) < 1 {
		return fmt.Errorf("conform: case has no threads")
	}
	if c.PrivateWords < 0 || c.ROWords < 0 || c.Chunks < 0 || c.ChunkWords < 0 || c.AtomicWords < 0 {
		return fmt.Errorf("conform: negative region geometry")
	}
	if len(c.Owner) != c.Phases {
		return fmt.Errorf("conform: owner schedule has %d phases, case has %d", len(c.Owner), c.Phases)
	}
	for p, row := range c.Owner {
		if len(row) != c.Chunks {
			return fmt.Errorf("conform: owner schedule phase %d covers %d chunks, case has %d", p, len(row), c.Chunks)
		}
		for k, o := range row {
			if o != ReadShared && (o < 0 || o >= len(c.Threads)) {
				return fmt.Errorf("conform: owner[%d][%d] = %d out of range", p, k, o)
			}
		}
	}
	for t, th := range c.Threads {
		if len(th.Ops) != c.Phases {
			return fmt.Errorf("conform: thread %d has %d phase programs, case has %d phases", t, len(th.Ops), c.Phases)
		}
		for p, ops := range th.Ops {
			for i, op := range ops {
				if err := c.validateOp(t, p, op); err != nil {
					return fmt.Errorf("thread %d phase %d op %d: %w", t, p, i, err)
				}
			}
		}
	}
	return nil
}

func (c *Case) validateOp(t, p int, op Op) error {
	switch op.Kind {
	case OpFence, OpCompute:
		return nil
	case OpLoad, OpStore, OpFetchAdd:
	default:
		return fmt.Errorf("conform: unknown op kind %q", op.Kind)
	}
	inRange := func(n int) error {
		if op.Word < 0 || op.Word >= n {
			return fmt.Errorf("conform: word %d out of range (region has %d)", op.Word, n)
		}
		return nil
	}
	switch op.Region {
	case RegPrivate:
		if op.Kind == OpFetchAdd {
			return fmt.Errorf("conform: atomics are confined to the atomic region")
		}
		return inRange(c.PrivateWords)
	case RegRO:
		if op.Kind != OpLoad {
			return fmt.Errorf("conform: %s on the read-only region", op.Kind)
		}
		return inRange(c.ROWords)
	case RegChunk:
		if op.Kind == OpFetchAdd {
			return fmt.Errorf("conform: atomics are confined to the atomic region")
		}
		if op.Chunk < 0 || op.Chunk >= c.Chunks {
			return fmt.Errorf("conform: chunk %d out of range (case has %d)", op.Chunk, c.Chunks)
		}
		owner := c.Owner[p][op.Chunk]
		if op.Kind == OpStore && owner != t {
			return fmt.Errorf("conform: store to chunk %d owned by %d (race)", op.Chunk, owner)
		}
		if op.Kind == OpLoad && owner != t && owner != ReadShared {
			return fmt.Errorf("conform: load of chunk %d owned by %d (race)", op.Chunk, owner)
		}
		return inRange(c.ChunkWords)
	case RegAtomic:
		if op.Kind != OpFetchAdd {
			return fmt.Errorf("conform: plain %s on an atomic word (race)", op.Kind)
		}
		return inRange(c.AtomicWords)
	default:
		return fmt.Errorf("conform: unknown region %q", op.Region)
	}
}

// ToJSON serializes the case in the stable format checked into
// testdata/conform/ and emitted for failing seeds.
func (c *Case) ToJSON() []byte {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic("conform: case marshal: " + err.Error()) // no unmarshalable fields
	}
	return append(data, '\n')
}

// FromJSON parses and validates a serialized case.
func FromJSON(data []byte) (*Case, error) {
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("conform: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
