package conform

import (
	"fmt"

	"spandex"
)

// GenParams bounds the random program generator. Zero values take the
// defaults noted per field.
type GenParams struct {
	MinThreads, MaxThreads int // 2, 5
	MinPhases, MaxPhases   int // 2, 4
	OpsPerPhase            int // 8 (mean per thread per phase)
	PrivateWords           int // 8
	ROWords                int // 16
	Chunks                 int // 4
	ChunkWords             int // 6 (sub-line, so adjacent chunks share cache lines)
	AtomicWords            int // 4
}

func (p GenParams) norm() GenParams {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&p.MinThreads, 2)
	def(&p.MaxThreads, 5)
	def(&p.MinPhases, 2)
	def(&p.MaxPhases, 4)
	def(&p.OpsPerPhase, 8)
	def(&p.PrivateWords, 8)
	def(&p.ROWords, 16)
	def(&p.Chunks, 4)
	// ChunkWords deliberately defaults below a full line (16 words):
	// adjacent chunks then share cache lines, so different owners write
	// disjoint words of one line concurrently — DRF false sharing, the
	// word- vs line-granularity boundary the protocols must all get right.
	def(&p.ChunkWords, 6)
	def(&p.AtomicWords, 4)
	if p.MaxThreads < p.MinThreads {
		p.MaxThreads = p.MinThreads
	}
	if p.MaxPhases < p.MinPhases {
		p.MaxPhases = p.MinPhases
	}
	return p
}

// Generate builds a random race-free case from a seed. The result is a
// pure function of (seed, params): the case stores explicit operation
// lists, so replay and shrinking never consult the generator again.
// Generated cases always pass Validate.
func Generate(seed uint64, gp GenParams) *Case {
	gp = gp.norm()
	rng := spandex.NewRand(seed)
	nThr := gp.MinThreads + rng.Intn(gp.MaxThreads-gp.MinThreads+1)
	c := &Case{
		Name:         fmt.Sprintf("seed-%d", seed),
		Seed:         seed,
		Phases:       gp.MinPhases + rng.Intn(gp.MaxPhases-gp.MinPhases+1),
		PrivateWords: gp.PrivateWords,
		ROWords:      gp.ROWords,
		Chunks:       gp.Chunks,
		ChunkWords:   gp.ChunkWords,
		AtomicWords:  gp.AtomicWords,
	}
	for t := 0; t < nThr; t++ {
		c.Threads = append(c.Threads, ThreadCase{OnGPU: rng.Intn(2) == 1})
	}
	// Ownership schedule: each (phase, chunk) is read-shared 1 time in 4,
	// otherwise owned by a random thread. Consecutive phases frequently
	// hand a chunk to a different thread — and with GPU placement random,
	// to a different coherence strategy.
	for p := 0; p < c.Phases; p++ {
		row := make([]int, c.Chunks)
		for k := range row {
			if rng.Intn(4) == 0 {
				row[k] = ReadShared
			} else {
				row[k] = rng.Intn(nThr)
			}
		}
		c.Owner = append(c.Owner, row)
	}
	for t := 0; t < nThr; t++ {
		for p := 0; p < c.Phases; p++ {
			n := 1 + rng.Intn(2*gp.OpsPerPhase)
			ops := make([]Op, 0, n)
			for i := 0; i < n; i++ {
				ops = append(ops, c.genOp(rng, t, p))
			}
			c.Threads[t].Ops = append(c.Threads[t].Ops, ops)
		}
	}
	return c
}

// genOp picks one discipline-respecting operation for thread t in phase p.
func (c *Case) genOp(rng *spandex.Rand, t, p int) Op {
	var owned, readable []int
	for k, o := range c.Owner[p] {
		if o == t {
			owned = append(owned, k)
		}
		if o == t || o == ReadShared {
			readable = append(readable, k)
		}
	}
	type choice struct {
		weight int
		make   func() Op
	}
	choices := []choice{
		{12, func() Op {
			return Op{Kind: OpLoad, Region: RegPrivate, Word: rng.Intn(c.PrivateWords)}
		}},
		{12, func() Op {
			return Op{Kind: OpStore, Region: RegPrivate, Word: rng.Intn(c.PrivateWords), Val: rng.U32()}
		}},
		{10, func() Op {
			return Op{Kind: OpLoad, Region: RegRO, Word: rng.Intn(c.ROWords)}
		}},
		{10, func() Op {
			return Op{Kind: OpFetchAdd, Region: RegAtomic, Word: rng.Intn(c.AtomicWords), Val: uint32(1 + rng.Intn(9))}
		}},
		{3, func() Op { return Op{Kind: OpFence} }},
		{5, func() Op { return Op{Kind: OpCompute, Val: uint32(rng.Intn(200))} }},
	}
	if len(owned) > 0 {
		choices = append(choices,
			choice{22, func() Op {
				return Op{Kind: OpStore, Region: RegChunk, Chunk: owned[rng.Intn(len(owned))],
					Word: rng.Intn(c.ChunkWords), Val: rng.U32()}
			}},
			choice{14, func() Op {
				return Op{Kind: OpLoad, Region: RegChunk, Chunk: owned[rng.Intn(len(owned))],
					Word: rng.Intn(c.ChunkWords)}
			}})
	}
	if len(readable) > 0 {
		choices = append(choices, choice{12, func() Op {
			return Op{Kind: OpLoad, Region: RegChunk, Chunk: readable[rng.Intn(len(readable))],
				Word: rng.Intn(c.ChunkWords)}
		}})
	}
	total := 0
	for _, ch := range choices {
		total += ch.weight
	}
	pick := rng.Intn(total)
	for _, ch := range choices {
		if pick < ch.weight {
			return ch.make()
		}
		pick -= ch.weight
	}
	panic("conform: weighted pick out of range")
}
