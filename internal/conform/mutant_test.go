//go:build spandexmut

// Mutation-detection acceptance tests: with a seeded protocol fault armed,
// the fuzzer must find a failing case within a bounded seed budget, the
// shrinker must reduce it to a small reproducer, and the reproducer must
// replay deterministically from its JSON form. Run with:
//
//	go test -tags spandexmut -run TestMutant ./internal/conform/
package conform

import (
	"testing"

	"spandex/internal/core"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

const mutantSeedBudget = 500

// mutants pairs each seeded fault with the configurations able to expose
// it (the hooks live in the Spandex LLC, so only S* configurations reach
// them; skiprvko additionally needs a self-invalidating owner facing a
// MESI ReqS, which only SMD wires up).
var mutants = []struct {
	name    string
	arm     func()
	disarm  func()
	configs []string
}{
	{
		name:    "dropinvack",
		arm:     func() { core.SetMutDropInvAck(func(m *proto.Message) bool { return true }) },
		disarm:  func() { core.SetMutDropInvAck(nil) },
		configs: []string{"SMG", "SMD"},
	},
	{
		name:    "skiprvko",
		arm:     func() { core.SetMutSkipRvkOFwd(func(mask memaddr.WordMask) memaddr.WordMask { return 0 }) },
		disarm:  func() { core.SetMutSkipRvkOFwd(nil) },
		configs: []string{"SMD"},
	},
}

func TestMutantDetection(t *testing.T) {
	for _, m := range mutants {
		m := m
		t.Run(m.name, func(t *testing.T) {
			m.arm()
			defer m.disarm()

			var failing *Case
			var rep *Report
			for seed := uint64(0); seed < mutantSeedBudget; seed++ {
				c := Generate(seed, GenParams{})
				if r := CheckCase(c, m.configs, RunOpts{}); r.Failed() {
					failing, rep = c, r
					break
				}
			}
			if failing == nil {
				t.Fatalf("mutation %s undetected across %d seeds", m.name, mutantSeedBudget)
			}
			if rep.Kind != KindRunError {
				t.Logf("note: detected as %s rather than run-error", rep.Kind)
			}

			fails := func(c *Case) bool { return CheckCase(c, m.configs, RunOpts{}).Failed() }
			min, evals := Shrink(failing, fails, 400)
			t.Logf("%s: seed %d shrunk from %d threads / %d ops to %d threads / %d ops in %d evals",
				m.name, failing.Seed, len(failing.Threads), failing.NumOps(),
				len(min.Threads), min.NumOps(), evals)
			if got := len(min.Threads); got > 4 {
				t.Errorf("minimized case has %d threads, want <= 4", got)
			}
			if got := min.NumOps(); got > 16 {
				t.Errorf("minimized case has %d ops, want <= 16", got)
			}

			// The JSON reproducer must replay the failure deterministically.
			back, err := FromJSON(min.ToJSON())
			if err != nil {
				t.Fatalf("minimized case does not round-trip: %v", err)
			}
			for i := 0; i < 3; i++ {
				if !CheckCase(back, m.configs, RunOpts{}).Failed() {
					t.Fatalf("replay %d of the minimized case did not reproduce", i)
				}
			}
		})
	}
}

// TestMutantInvisibleWhenDisarmed re-runs a short seed range with no fault
// armed, guarding against hooks leaking between tests.
func TestMutantInvisibleWhenDisarmed(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		if rep := CheckCase(Generate(seed, GenParams{}), nil, RunOpts{}); rep.Failed() {
			t.Fatalf("seed %d fails with no mutation armed: %v", seed, rep.Err())
		}
	}
}
