package conform

import "testing"

// TestBankedSweepConforms fuzzes the bank-sharded LLC on the mesh NoC: the
// same generated DRF cases must behave observationally identically whether
// their lines all resolve at one flat directory or interleave across two
// independent banks. Because the hierarchical baseline (HMG/HMD) is never
// banked, every cross-config comparison inside a report doubles as a
// flat-vs-banked differential check.
func TestBankedSweepConforms(t *testing.T) {
	ro := RunOpts{Params: BankedParams()}
	for seed := uint64(0); seed < 16; seed++ {
		c := Generate(seed, GenParams{})
		rep := CheckCase(c, nil, ro)
		if rep.Failed() {
			t.Fatalf("seed %d on banked LLC (%s):\n%v", seed, rep.Kind, rep.Err())
		}
	}
}

// TestBankedPressureSweepConforms combines banking with tiny per-bank
// capacity (four lines per bank): directory evictions, revocations and
// write-backs now race across two banks that cannot see each other's
// transaction tables. This is the regime the bank-* mcheck scenarios
// explore exhaustively at small scale; here the full simulator runs it
// with real cache hierarchies and the differential oracle.
func TestBankedPressureSweepConforms(t *testing.T) {
	ro := RunOpts{Params: BankedPressureParams()}
	for seed := uint64(0); seed < 16; seed++ {
		c := Generate(seed, GenParams{})
		rep := CheckCase(c, nil, ro)
		if rep.Failed() {
			t.Fatalf("seed %d on banked LLC under pressure (%s):\n%v", seed, rep.Kind, rep.Err())
		}
	}
}

// TestBankedRegressionCorpus replays the checked-in minimized reproducers
// on the banked geometry: the races they pin were found on the flat LLC,
// and their fixes must hold when the lines involved land on different
// banks.
func TestBankedRegressionCorpus(t *testing.T) {
	for _, name := range []string{"seed-13-min", "seed-894-min", "seed-2712-min"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := LoadCaseFile("../../testdata/conform/" + name + ".json")
			if err != nil {
				t.Fatal(err)
			}
			if rep := CheckCase(c, nil, RunOpts{Params: BankedPressureParams()}); rep.Failed() {
				t.Fatalf("%s on banked LLC (%s):\n%v", name, rep.Kind, rep.Err())
			}
		})
	}
}
