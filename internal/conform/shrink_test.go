package conform

import "testing"

// hasFetchAdd is the synthetic "bug" used to exercise the shrinker: a
// deterministic structural property that single operations can carry, so
// the minimal reproducer is known exactly (one thread, one phase, one op).
func hasFetchAdd(c *Case) bool {
	for _, th := range c.Threads {
		for _, ops := range th.Ops {
			for _, op := range ops {
				if op.Kind == OpFetchAdd {
					return true
				}
			}
		}
	}
	return false
}

func TestShrinkToMinimal(t *testing.T) {
	c := Generate(3, GenParams{})
	if !hasFetchAdd(c) {
		t.Fatal("seed 3 generated no fetch-add; pick another seed")
	}
	min, evals := Shrink(c, hasFetchAdd, 10_000)
	if !hasFetchAdd(min) {
		t.Fatal("shrink lost the property")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunken case invalid: %v", err)
	}
	if len(min.Threads) != 1 || min.Phases != 1 || min.NumOps() != 1 {
		t.Fatalf("shrunk to %d threads / %d phases / %d ops, want 1/1/1 (%d evals)",
			len(min.Threads), min.Phases, min.NumOps(), evals)
	}
	if min.Threads[0].Ops[0][0].Kind != OpFetchAdd {
		t.Fatalf("surviving op is %s, want fetchadd", min.Threads[0].Ops[0][0].Kind)
	}
}

func TestShrinkRespectsBudget(t *testing.T) {
	c := Generate(4, GenParams{})
	if !hasFetchAdd(c) {
		t.Fatal("seed 4 generated no fetch-add; pick another seed")
	}
	min, evals := Shrink(c, hasFetchAdd, 5)
	if evals > 5 {
		t.Fatalf("shrink spent %d evaluations, budget was 5", evals)
	}
	if !hasFetchAdd(min) {
		t.Fatal("shrink lost the property")
	}
}

func TestShrinkDeterministic(t *testing.T) {
	c := Generate(5, GenParams{})
	if !hasFetchAdd(c) {
		t.Fatal("seed 5 generated no fetch-add; pick another seed")
	}
	a, _ := Shrink(c, hasFetchAdd, 1000)
	b, _ := Shrink(c, hasFetchAdd, 1000)
	if string(a.ToJSON()) != string(b.ToJSON()) {
		t.Fatal("two shrinks of the same case differ")
	}
}

// TestShrinkPreservesDiscipline drives the shrinker with a property over
// chunk stores, where thread removal has to renumber the ownership
// schedule to keep candidates valid.
func TestShrinkPreservesDiscipline(t *testing.T) {
	hasChunkStore := func(c *Case) bool {
		for _, th := range c.Threads {
			for _, ops := range th.Ops {
				for _, op := range ops {
					if op.Kind == OpStore && op.Region == RegChunk {
						return true
					}
				}
			}
		}
		return false
	}
	c := Generate(6, GenParams{})
	if !hasChunkStore(c) {
		t.Fatal("seed 6 generated no chunk store; pick another seed")
	}
	min, _ := Shrink(c, hasChunkStore, 10_000)
	if !hasChunkStore(min) {
		t.Fatal("shrink lost the property")
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunken case breaks the race-freedom discipline: %v", err)
	}
	if n := min.NumOps(); n > 2 {
		t.Fatalf("shrunk to %d ops, want <= 2", n)
	}
}
