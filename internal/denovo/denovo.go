// Package denovo implements the DeNovo coherence protocol (paper §II-C):
// word-granularity ownership for stores and atomics, self-invalidation of
// Valid (but not Owned) data at acquires, and flexible-granularity reads.
// DeNovo sits between MESI's complexity and GPU coherence's expensive
// synchronization: Owned words survive synchronization, so written and
// atomic data keeps its reuse.
//
// The controller speaks the Spandex vocabulary natively (Table II:
// Read→ReqV word, Write→ReqO word, RMW→ReqO+data word, owned
// replacement→ReqWB word) and handles word-granularity partial responses
// and forwarded requests itself, as the paper notes a DeNovo cache does.
// The one TU duty — escalating a twice-Nacked ReqV to ReqO+data
// (§III-C3) — is folded in here so it also protects the hierarchical
// configuration, where the GPU L2 forwards ReqVs between sibling L1s.
package denovo

import (
	"fmt"

	"spandex/internal/cache"
	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// Config parameterizes a DeNovo L1.
type Config struct {
	SizeBytes          int
	Ways               int
	MSHREntries        int
	WriteBufferEntries int
	HitLatency         sim.Time
	ParentID           proto.NodeID
	// ParentBanks makes the parent an address-interleaved bank array at
	// NodeIDs ParentID..ParentID+ParentBanks-1; requests go to the target
	// line's home bank. 0 or 1 is the flat single parent.
	ParentBanks int
	// AtomicsAtLLC sends atomics as ReqWT+data to be performed at the
	// backing cache instead of obtaining ownership. The SDG configuration
	// uses this for CPU caches to match the GPU's strategy and avoid
	// blocking states on inter-device synchronization (paper §IV-A).
	AtomicsAtLLC bool
}

// DefaultConfig returns the paper's Table VI L1 parameters.
func DefaultConfig(parent proto.NodeID, gpuClock bool) Config {
	cyc := sim.CPUCycle
	if gpuClock {
		cyc = sim.GPUCycle
	}
	return Config{
		SizeBytes: 32 * 1024, Ways: 8,
		MSHREntries: 128, WriteBufferEntries: 128,
		HitLatency: cyc,
		ParentID:   parent,
	}
}

// line holds per-word state: valid ⊇ owned, plus data.
type line struct {
	valid memaddr.WordMask
	owned memaddr.WordMask
	data  memaddr.LineData
}

type waiter struct {
	word int
	done func(uint32)
}

// readMiss tracks an outstanding ReqV for a line.
type readMiss struct {
	reqID   uint64
	trace   uint64
	want    memaddr.WordMask
	arrived memaddr.WordMask
	retried memaddr.WordMask
	// escalated words were re-requested as ReqO+data and arrive owned.
	escalated memaddr.WordMask
	ownedGot  memaddr.WordMask
	data      memaddr.LineData
	waiters   []waiter
}

// ownReq tracks an outstanding ReqO (store ownership) for a line.
type ownReq struct {
	reqID   uint64
	issued  memaddr.WordMask
	arrived memaddr.WordMask
	// downgraded words were taken by another device while our grant was
	// in flight (paper §III-C2): they complete without Owned state.
	downgraded memaddr.WordMask
	data       memaddr.LineData
}

// atomicReq tracks an outstanding ReqO+data (or ReqWT+data) for one word.
type atomicReq struct {
	op   device.Op
	done func(uint32)
	// deferred external requests for this word, processed once data
	// arrives (paper §III-C1). Held by value: the queue's backing array
	// is the only allocation, amortized across the atom's lifetime.
	deferred []proto.Message
	// downgradeAfter marks that a deferred external revokes our ownership
	// as soon as the atomic completes.
	atLLC bool
}

// pendingWB is a write-back in flight; data is retained until the RspWB
// arrives (paper §III-A: "up-to-date data must be retained until the
// write-back has completed").
type pendingWB struct {
	mask memaddr.WordMask
	data memaddr.LineData
}

// L1 is a DeNovo L1 cache controller.
type L1 struct {
	ID  proto.NodeID
	eng *sim.Engine
	st  *stats.Stats
	cfg Config

	port noc.Port

	// out is the sendV scratch slot (see sendV).
	out proto.Message

	array *cache.Array[line]
	reads *cache.MSHR[readMiss]
	wb    *cache.WriteBuffer
	owns  map[memaddr.LineAddr]*ownReq
	atoms map[uint64]atomicReq
	// atomByWord finds the pending atomic covering a word for deferral.
	atomByWord map[memaddr.Addr]uint64
	wbs        map[memaddr.LineAddr]*pendingWB

	flushWaiters []func()
	reqSeq       uint64

	// ownPool recycles ownReq records across ownership transactions.
	ownPool sim.Pool[ownReq]

	obs *obs.Recorder
	// curTrace is the trace id of the operation currently inside Access,
	// carried onto the read miss (loads) it opens. Coalesced stores issue
	// their ReqO after the store has retired, so ownership requests stay
	// untracked; atomics carry op.Trace directly.
	curTrace uint64
}

// SetObserver installs the observability recorder; nil disables
// instrumentation (MSHR occupancy samples and request-trace threading).
func (l *L1) SetObserver(r *obs.Recorder) { l.obs = r }

// mshrOcc samples the read-MSHR occupancy (caller checks l.obs != nil).
func (l *L1) mshrOcc() {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvOccupancy,
		Node: l.ID, Res: "mshr", Arg: uint64(l.reads.Len())})
}

// New creates a DeNovo L1.
func New(id proto.NodeID, eng *sim.Engine, port noc.Port, st *stats.Stats, cfg Config) *L1 {
	return &L1{
		ID: id, eng: eng, st: st, cfg: cfg, port: port,
		array:      cache.NewArray[line](cfg.SizeBytes, cfg.Ways),
		reads:      cache.NewMSHR[readMiss](cfg.MSHREntries),
		wb:         cache.NewWriteBuffer(cfg.WriteBufferEntries),
		owns:       make(map[memaddr.LineAddr]*ownReq),
		atoms:      make(map[uint64]atomicReq),
		atomByWord: make(map[memaddr.Addr]uint64),
		wbs:        make(map[memaddr.LineAddr]*pendingWB),
	}
}

var _ device.L1Cache = (*L1)(nil)

// sendV transmits a by-value message through the port. Every port Send
// copies the message synchronously before anything downstream can run, so
// a single scratch slot per sender is safe and avoids a heap allocation
// per send (the &proto.Message{...} literal idiom escapes through the
// Port interface).
func (l *L1) sendV(m proto.Message) {
	l.out = m
	l.port.Send(&l.out)
}

// parent returns line's home node: ParentID for a flat parent, the
// line's bank for an interleaved one (see Config.ParentBanks).
func (l *L1) parent(line memaddr.LineAddr) proto.NodeID {
	return proto.HomeOf(l.cfg.ParentID, l.cfg.ParentBanks, line)
}

func (l *L1) nextReq() uint64 {
	l.reqSeq++
	return l.reqSeq
}

// Access implements device.L1Cache.
func (l *L1) Access(op device.Op, done func(uint32)) bool {
	l.curTrace = op.Trace
	switch op.Kind {
	case device.OpLoad:
		return l.load(op.Addr, done)
	case device.OpStore:
		if op.IsSubWordStore() {
			// Byte-granularity stores become word-granularity RMWs so the
			// unmodified bytes stay up-to-date (paper §III-B).
			return l.atomic(op.AsByteMerge(), done)
		}
		return l.store(op.Addr, op.Value, done)
	case device.OpAtomic:
		return l.atomic(op, done)
	default:
		panic(fmt.Sprintf("denovo: bad op %v", op.Kind))
	}
}

func (l *L1) load(addr memaddr.Addr, done func(uint32)) bool {
	la, w := addr.Line(), addr.WordIndex()
	if v, ok := l.wb.ReadForward(addr); ok {
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if o := l.owns[la]; o != nil && o.issued.Has(w) {
		v := o.data[w]
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if e := l.array.Lookup(la); e != nil && e.State.valid.Has(w) {
		v := e.State.data[w]
		l.st.Inc("dnl1.hit", 1)
		l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
		return true
	}
	if r := l.reads.Lookup(la); r != nil {
		if r.arrived.Has(w) {
			v := r.data[w]
			l.eng.ScheduleCall(l.cfg.HitLatency, done, v)
			return true
		}
		r.waiters = append(r.waiters, waiter{word: w, done: done})
		if !r.want.Has(w) {
			// Extend the outstanding read (word granularity, Table II).
			r.want |= addr.WordMaskOf()
			l.sendV(proto.Message{
				Type: proto.ReqV, Dst: l.parent(la), Requestor: l.ID,
				ReqID: r.reqID, Line: la, Mask: addr.WordMaskOf(),
				Trace: l.curTrace,
			})
		}
		return true
	}
	if l.reads.Full() {
		l.st.Inc("dnl1.mshr_stall", 1)
		return false
	}
	r := l.reads.AllocReuse(la)
	*r = readMiss{reqID: l.nextReq(), trace: l.curTrace,
		want: addr.WordMaskOf(), waiters: r.waiters[:0]}
	r.waiters = append(r.waiters, waiter{word: w, done: done})
	l.st.Inc("dnl1.miss", 1)
	if l.obs != nil {
		l.mshrOcc()
	}
	l.sendV(proto.Message{
		Type: proto.ReqV, Dst: l.parent(la), Requestor: l.ID,
		ReqID: r.reqID, Line: la, Mask: addr.WordMaskOf(), Trace: r.trace,
	})
	return true
}

func (l *L1) store(addr memaddr.Addr, value uint32, done func(uint32)) bool {
	la, w := addr.Line(), addr.WordIndex()
	// Store to an already-owned word hits locally (the DeNovo advantage:
	// owned data survives synchronization and keeps its write locality).
	if e := l.array.Lookup(la); e != nil && e.State.owned.Has(w) {
		e.State.data[w] = value
		l.st.Inc("dnl1.store_hit", 1)
		done(0)
		return true
	}
	if o := l.owns[la]; o != nil {
		if o.issued.Has(w) {
			// Grant in flight for this word: update the in-flight value.
			o.data[w] = value
			done(0)
			return true
		}
		// Another word of a line with an in-flight ReqO: stall briefly to
		// keep one ownership transaction per line outstanding.
		l.st.Inc("dnl1.own_conflict", 1)
		return false
	}
	e := l.wb.Lookup(la)
	switch {
	case e != nil && !e.Issued:
		l.wb.Put(addr, value)
	case l.wb.Full():
		l.st.Inc("dnl1.wb_stall", 1)
		return false
	default:
		l.wb.Put(addr, value)
		// Lazy drain: ownership requests issue under occupancy pressure or
		// at a release flush, so same-line stores coalesce into one
		// multi-word ReqO (paper §II-C).
		l.drainPressure()
	}
	done(0)
	return true
}

// drainPressure issues the oldest buffered lines while the unissued
// population exceeds three quarters of capacity.
func (l *L1) drainPressure() {
	for l.wb.UnissuedCount() > l.cfg.WriteBufferEntries*3/4 {
		e := l.wb.NextUnissued()
		if e == nil {
			return
		}
		l.issueOwn(e.Line)
	}
}

// issueOwn converts a coalesced write-buffer entry into a ReqO.
func (l *L1) issueOwn(la memaddr.LineAddr) {
	e := l.wb.Lookup(la)
	if e == nil || e.Issued {
		return
	}
	l.wb.MarkIssued(e)
	o := l.ownPool.Get()
	*o = ownReq{reqID: l.nextReq(), issued: e.Mask, data: e.Data}
	l.owns[la] = o
	l.st.Inc("dnl1.reqo", 1)
	l.sendV(proto.Message{
		Type: proto.ReqO, Dst: l.parent(la), Requestor: l.ID,
		ReqID: o.reqID, Line: la, Mask: e.Mask,
	})
}

func (l *L1) atomic(op device.Op, done func(uint32)) bool {
	la, w := op.Addr.Line(), op.Addr.WordIndex()
	// Owned word: perform the operation locally (paper §II-C) — this is
	// where DeNovo's atomic reuse comes from.
	if !l.cfg.AtomicsAtLLC || op.Atomic == proto.AtomicRead {
		if e := l.array.Lookup(la); e != nil && e.State.owned.Has(w) {
			if _, busy := l.atomByWord[op.Addr]; !busy {
				old := e.State.data[w]
				nv, wrote := op.Atomic.Apply(old, op.Value, op.Compare)
				if wrote {
					e.State.data[w] = nv
				}
				l.st.Inc("dnl1.atomic_hit", 1)
				l.eng.ScheduleCall(l.cfg.HitLatency, done, old)
				return true
			}
		}
	}
	if len(l.atoms) >= l.cfg.MSHREntries {
		return false
	}
	if _, busy := l.atomByWord[op.Addr]; busy {
		// One outstanding atomic per word; serializes naturally.
		return false
	}
	// Atomic updates obtain ownership (Table II: RMW → ReqO+data), unless
	// this cache performs atomics at the LLC (the SDG CPU mode, §IV-A).
	// Atomic *reads* of un-owned words are performed at the LLC instead:
	// acquiring ownership for a synchronization poll would make every
	// spin-waiter steal the flag word and ping-pong it.
	atLLC := l.cfg.AtomicsAtLLC || op.Atomic == proto.AtomicRead
	id := l.nextReq()
	l.atoms[id] = atomicReq{op: op, done: done, atLLC: atLLC}
	l.atomByWord[op.Addr] = id
	typ := proto.ReqOData
	if atLLC {
		typ = proto.ReqWTData
	}
	l.st.Inc("dnl1.atomic_miss", 1)
	l.sendV(proto.Message{
		Type: typ, Dst: l.parent(la), Requestor: l.ID,
		ReqID: id, Line: la, Mask: op.Addr.WordMaskOf(),
		Atomic: op.Atomic, Operand: op.Value, Compare: op.Compare,
		Trace: op.Trace,
	})
	return true
}

// SelfInvalidateRegion implements DeNovo's regions optimization (paper
// §II-C): software indicates that only [lo, hi) may be stale, so the
// acquire flash drops Valid words in that range only, keeping read reuse
// in the rest of the cache.
func (l *L1) SelfInvalidateRegion(lo, hi memaddr.Addr) {
	l.array.InvalidateWhere(func(e *cache.Entry[line]) bool {
		if memaddr.Addr(e.Line)+memaddr.LineBytes <= lo || memaddr.Addr(e.Line) >= hi {
			return false
		}
		e.State.valid &= e.State.owned
		return e.State.valid == 0 && e.State.owned == 0
	})
	l.st.Inc("dnl1.selfinv_region", 1)
}

var _ device.RegionInvalidator = (*L1)(nil)

// SelfInvalidate drops Valid-but-not-Owned words (the acquire flash).
// Owned words keep both state and data — DeNovo's key reuse property.
func (l *L1) SelfInvalidate() {
	l.array.InvalidateWhere(func(e *cache.Entry[line]) bool {
		e.State.valid &= e.State.owned
		return e.State.valid == 0 && e.State.owned == 0
	})
	l.st.Inc("dnl1.selfinv", 1)
}

// Flush drains the write buffer: every store has obtained ownership (or
// been written through) when done fires.
func (l *L1) Flush(done func()) {
	for _, e := range l.wb.Unissued() {
		l.issueOwn(e.Line)
	}
	if l.wb.Empty() {
		done()
		return
	}
	l.flushWaiters = append(l.flushWaiters, done)
}

func (l *L1) checkFlush() {
	if !l.wb.Empty() {
		return
	}
	ws := l.flushWaiters
	l.flushWaiters = nil
	for _, w := range ws {
		w()
	}
}

// ProbeOwned implements the checker probe.
func (l *L1) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask {
	out := make(map[memaddr.LineAddr]memaddr.WordMask)
	l.array.ForEach(func(e *cache.Entry[line]) {
		if e.State.owned != 0 {
			out[e.Line] = e.State.owned
		}
	})
	return out
}

// ensureLine returns the array entry for la, allocating (and evicting a
// victim) if needed.
func (l *L1) ensureLine(la memaddr.LineAddr) *cache.Entry[line] {
	if e := l.array.Lookup(la); e != nil {
		return e
	}
	frame := l.array.Victim(la)
	if frame.Valid {
		l.evict(frame)
		frame = l.array.Victim(la)
		if frame.Valid {
			panic("denovo: victim not freed")
		}
	}
	l.array.Install(frame, la)
	return frame
}

// evict releases a victim frame, writing back owned words (Table II:
// Owned Repl → ReqWB word).
func (l *L1) evict(frame *cache.Entry[line]) {
	st := &frame.State
	if st.owned != 0 {
		wb := &pendingWB{mask: st.owned, data: st.data}
		if old, ok := l.wbs[frame.Line]; ok {
			// Merge with an earlier still-unacked write-back.
			old.data.Merge(&st.data, st.owned)
			old.mask |= st.owned
			wb = old
		}
		l.wbs[frame.Line] = wb
		l.st.Inc("dnl1.wb_evict", 1)
		l.sendV(proto.Message{
			Type: proto.ReqWB, Dst: l.parent(frame.Line), Requestor: l.ID,
			ReqID: l.nextReq(), Line: frame.Line, Mask: st.owned,
			HasData: true, Data: st.data,
		})
	}
	l.array.Invalidate(frame.Line)
}
