package denovo

import (
	"testing"

	"spandex/internal/core"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/gpucoh"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// rig wires DeNovo L1s (and optionally GPU-coherence L1s) to a Spandex LLC.
type rig struct {
	t   *testing.T
	eng *sim.Engine
	st  *stats.Stats
	net *noc.Network
	llc *core.LLC
	mem *dram.Memory
	dn  []*L1
	gpu []*gpucoh.L1
	chk *core.Checker
}

func newRig(t *testing.T, nDN, nGPU int) *rig {
	r := &rig{t: t, eng: sim.New(), st: stats.New()}
	n := nDN + nGPU
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), n+2)
	llcID, memID := proto.NodeID(n), proto.NodeID(n+1)
	r.llc = core.NewLLC(llcID, memID, r.eng, r.net, r.st,
		core.Config{SizeBytes: 64 * 1024, Ways: 8, AccessLatency: 12 * sim.CPUCycle})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	r.chk = core.NewChecker()
	r.llc.SetChecker(r.chk)
	for i := 0; i < nDN; i++ {
		id := proto.NodeID(i)
		l1 := New(id, r.eng, r.net.PortFor(id), r.st, DefaultConfig(llcID, false))
		r.net.Register(id, l1)
		r.llc.RegisterDevice(id, false)
		r.chk.AttachDevice(id, l1)
		r.dn = append(r.dn, l1)
	}
	for i := 0; i < nGPU; i++ {
		id := proto.NodeID(nDN + i)
		l1 := gpucoh.New(id, r.eng, r.net.PortFor(id), r.st, gpucoh.DefaultConfig(llcID))
		r.net.Register(id, l1)
		r.llc.RegisterDevice(id, false)
		r.chk.AttachDevice(id, l1)
		r.gpu = append(r.gpu, l1)
	}
	return r
}

func (r *rig) run() {
	if !r.eng.RunUntil(1 << 42) {
		r.t.Fatal("rig: did not drain")
	}
	if err := r.chk.CheckQuiescent(r.llc); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) access(l1 device.L1Cache, op device.Op) uint32 {
	var got uint32
	ok := false
	for tries := 0; ; tries++ {
		if l1.Access(op, func(v uint32) { got = v; ok = true }) {
			break
		}
		if !r.eng.Step() || tries > 1<<20 {
			r.t.Fatal("access rejected forever")
		}
	}
	r.run()
	if !ok {
		r.t.Fatalf("%v op never completed", op.Kind)
	}
	return got
}

func (r *rig) load(l1 device.L1Cache, a memaddr.Addr) uint32 {
	return r.access(l1, device.Op{Kind: device.OpLoad, Addr: a})
}

// store buffers a write and flushes it to global visibility.
func (r *rig) store(l1 device.L1Cache, a memaddr.Addr, v uint32) {
	r.access(l1, device.Op{Kind: device.OpStore, Addr: a, Value: v})
	l1.Flush(func() {})
	r.run()
}
func (r *rig) rmw(l1 device.L1Cache, a memaddr.Addr, k proto.AtomicKind, v uint32) uint32 {
	return r.access(l1, device.Op{Kind: device.OpAtomic, Addr: a, Atomic: k, Value: v})
}

func TestStoreObtainsOwnership(t *testing.T) {
	r := newRig(t, 2, 0)
	r.store(r.dn[0], 0x1000, 42)
	if r.st.Get("dnl1.reqo") != 1 {
		t.Fatalf("reqo = %d", r.st.Get("dnl1.reqo"))
	}
	owned := r.dn[0].ProbeOwned()
	if owned[0x1000] != 0b1 {
		t.Fatalf("owned = %v", owned)
	}
	// Re-write after self-invalidation still hits (Owned survives).
	r.dn[0].SelfInvalidate()
	r.store(r.dn[0], 0x1000, 43)
	if r.st.Get("dnl1.store_hit") == 0 {
		t.Fatal("owned store did not hit")
	}
	// Remote reader gets the value from the owner via forwarding.
	if v := r.load(r.dn[1], 0x1000); v != 43 {
		t.Fatalf("remote read = %d", v)
	}
	if r.st.Get("llc.forwards") == 0 {
		t.Fatal("no forward happened")
	}
}

func TestStoreCoalescingIntoMultiWordReqO(t *testing.T) {
	r := newRig(t, 1, 0)
	// Issue back-to-back, within the coalescing window (stores complete
	// into the write buffer synchronously).
	for i := 0; i < 4; i++ {
		if !r.dn[0].Access(device.Op{Kind: device.OpStore,
			Addr: memaddr.Addr(0x2000 + i*4), Value: uint32(10 + i)}, func(uint32) {}) {
			t.Fatal("store rejected")
		}
	}
	r.dn[0].Flush(func() {})
	r.run()
	if n := r.st.Get("dnl1.reqo"); n != 1 {
		t.Fatalf("reqo = %d, want 1 coalesced request", n)
	}
	if r.dn[0].ProbeOwned()[0x2000] != 0b1111 {
		t.Fatalf("owned mask = %#x", r.dn[0].ProbeOwned()[0x2000])
	}
}

func TestSelfInvalidationKeepsOwnedDropsValid(t *testing.T) {
	r := newRig(t, 2, 0)
	a, b := r.dn[0], r.dn[1]
	r.store(a, 0x3000, 1) // a owns word 0
	if v := r.load(a, 0x3040); v != 0 {
		t.Fatal("load failed")
	}
	// Remote write-through... DeNovo writes get ownership; b takes word of
	// the second line.
	r.store(b, 0x3040, 7)
	a.SelfInvalidate()
	// Owned word still hits.
	hitBefore := r.st.Get("dnl1.hit")
	if v := r.load(a, 0x3000); v != 1 {
		t.Fatalf("owned read = %d", v)
	}
	if r.st.Get("dnl1.hit") != hitBefore+1 {
		t.Fatal("owned word did not hit after self-invalidation")
	}
	// Valid word was dropped; reload sees b's value via forward.
	if v := r.load(a, 0x3040); v != 7 {
		t.Fatalf("reload = %d", v)
	}
}

func TestAtomicLocalReuse(t *testing.T) {
	r := newRig(t, 1, 0)
	l1 := r.dn[0]
	if old := r.rmw(l1, 0x4000, proto.AtomicFetchAdd, 1); old != 0 {
		t.Fatalf("old = %d", old)
	}
	missBefore := r.st.Get("dnl1.atomic_miss")
	for i := 1; i < 10; i++ {
		if old := r.rmw(l1, 0x4000, proto.AtomicFetchAdd, 1); old != uint32(i) {
			t.Fatalf("old = %d, want %d", old, i)
		}
	}
	if r.st.Get("dnl1.atomic_miss") != missBefore {
		t.Fatal("owned atomics missed — no reuse")
	}
}

func TestAtomicOwnershipMigrates(t *testing.T) {
	r := newRig(t, 2, 0)
	a, b := r.dn[0], r.dn[1]
	if old := r.rmw(a, 0x5000, proto.AtomicFetchAdd, 1); old != 0 {
		t.Fatal("bad first rmw")
	}
	// b's atomic must revoke a's ownership (fwd ReqO+data) and see 1.
	if old := r.rmw(b, 0x5000, proto.AtomicFetchAdd, 1); old != 1 {
		t.Fatal("atomic value lost in migration")
	}
	if old := r.rmw(a, 0x5000, proto.AtomicFetchAdd, 1); old != 2 {
		t.Fatal("migration back lost value")
	}
	if a.ProbeOwned()[0x5000] != 0b1 || b.ProbeOwned()[0x5000] != 0 {
		t.Fatal("ownership bookkeeping wrong")
	}
}

func TestAtomicsAtLLCMode(t *testing.T) {
	r := newRig(t, 0, 0)
	id := proto.NodeID(0)
	_ = id
	// Build a dedicated rig with AtomicsAtLLC.
	r2 := newRig(t, 1, 0)
	cfg := DefaultConfig(proto.NodeID(1), false)
	cfg.AtomicsAtLLC = true
	// Replace the L1 with an AtomicsAtLLC one.
	_ = r
	l1 := r2.dn[0]
	l1.cfg.AtomicsAtLLC = true
	if old := r2.rmw(l1, 0x6000, proto.AtomicFetchAdd, 5); old != 0 {
		t.Fatal("bad rmw")
	}
	if l1.ProbeOwned()[0x6000] != 0 {
		t.Fatal("AtomicsAtLLC must not obtain ownership")
	}
	if v := r2.load(l1, 0x6000); v != 5 {
		t.Fatalf("value = %d", v)
	}
}

func TestEvictionWritesBackOwned(t *testing.T) {
	r := newRig(t, 1, 0)
	l1 := r.dn[0]
	// 32KB 8-way = 64 sets; lines 64*64B = 4KB apart collide.
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x100000 + i*64*64) }
	for i := 0; i < 12; i++ {
		r.store(l1, conflict(i), uint32(100+i))
	}
	r.run()
	if r.st.Get("dnl1.wb_evict") == 0 {
		t.Fatal("no write-back happened")
	}
	for i := 0; i < 12; i++ {
		if v := r.load(l1, conflict(i)); v != uint32(100+i) {
			t.Fatalf("line %d = %d", i, v)
		}
	}
}

func TestGPUReadsDeNovoOwnedWord(t *testing.T) {
	r := newRig(t, 1, 1)
	dn, gpu := r.dn[0], r.gpu[0]
	r.store(dn, 0x7000, 31)
	// GPU line read: word 0 forwarded to the DeNovo owner, rest from LLC.
	if v := r.load(gpu, 0x7000); v != 31 {
		t.Fatalf("gpu read = %d", v)
	}
	if r.st.Get("llc.forwards") == 0 {
		t.Fatal("expected a forward")
	}
}

func TestGPUWriteThroughRevokesDeNovoWord(t *testing.T) {
	r := newRig(t, 1, 1)
	dn, gpu := r.dn[0], r.gpu[0]
	r.store(dn, 0x8000, 1)
	r.store(gpu, 0x8000, 2)
	r.run()
	if dn.ProbeOwned()[0x8000] != 0 {
		t.Fatal("DeNovo still owns a written-through word")
	}
	if v := r.load(r.dn[0], 0x8000); v != 2 {
		t.Fatalf("value = %d", v)
	}
}

func TestNackEscalationAcrossEviction(t *testing.T) {
	// A GPU ReqV is forwarded to a DeNovo owner; the owner silently lost
	// the words via a racing eviction completed before the forward
	// arrives. The requestor must retry and eventually succeed.
	r := newRig(t, 1, 1)
	dn, gpu := r.dn[0], r.gpu[0]
	r.store(dn, 0x9000, 5)

	// Issue the GPU read and, concurrently, force the owner to evict.
	var got uint32
	ok := false
	gpu.Access(device.Op{Kind: device.OpLoad, Addr: 0x9000}, func(v uint32) { got = v; ok = true })
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x9000 + i*64*64) }
	for i := 1; i < 10; i++ {
		dn.Access(device.Op{Kind: device.OpStore, Addr: conflict(i), Value: 1}, func(uint32) {})
	}
	r.run()
	if !ok {
		t.Fatal("GPU load never completed (starved)")
	}
	if got != 5 {
		t.Fatalf("got %d, want 5", got)
	}
}

func TestWriteBufferFlush(t *testing.T) {
	r := newRig(t, 1, 0)
	l1 := r.dn[0]
	r.store(l1, 0xa000, 1)
	done := false
	l1.Flush(func() { done = true })
	r.run()
	if !done {
		t.Fatal("flush never completed")
	}
	if l1.ProbeOwned()[0xa000] != 0b1 {
		t.Fatal("flush completed without ownership")
	}
}

// TestOwnershipPingPongStress hammers one word from two DeNovo caches and
// one GPU cache with interleaved in-flight operations, then audits
// invariants and the final value.
func TestOwnershipPingPongStress(t *testing.T) {
	r := newRig(t, 2, 1)
	total := 0
	issue := func(l1 device.L1Cache, n int) {
		for i := 0; i < n; i++ {
			for !l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0xb000,
				Atomic: proto.AtomicFetchAdd, Value: 1}, func(uint32) {}) {
				if !r.eng.Step() {
					t.Fatal("stuck")
				}
			}
			total++
		}
	}
	// Interleave issuance without draining in between.
	for round := 0; round < 10; round++ {
		issue(r.dn[0], 3)
		issue(r.dn[1], 3)
		issue(r.gpu[0], 2)
		// Let a few events fire to create in-flight races.
		for i := 0; i < 50; i++ {
			r.eng.Step()
		}
	}
	r.run()
	if v := r.load(r.dn[0], 0xb000); v != uint32(total) {
		t.Fatalf("final counter = %d, want %d", v, total)
	}
}
