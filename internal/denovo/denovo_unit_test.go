package denovo

import (
	"testing"

	"spandex/internal/device"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// scriptPort captures outbound messages for hand-driven protocol tests.
type scriptPort struct{ sent []proto.Message }

func (p *scriptPort) Send(m *proto.Message) { p.sent = append(p.sent, *m) }
func (p *scriptPort) take() []proto.Message {
	out := p.sent
	p.sent = nil
	return out
}
func (p *scriptPort) last() *proto.Message {
	if len(p.sent) == 0 {
		return nil
	}
	return &p.sent[len(p.sent)-1]
}

type drig struct {
	t    *testing.T
	eng  *sim.Engine
	port *scriptPort
	l1   *L1
}

func newDRig(t *testing.T) *drig {
	eng := sim.New()
	port := &scriptPort{}
	l1 := New(0, eng, port, stats.New(), DefaultConfig(99, false))
	return &drig{t: t, eng: eng, port: port, l1: l1}
}

// own makes the L1 the stable owner of the masked words with given values.
func (r *drig) own(line memaddr.LineAddr, mask memaddr.WordMask, data memaddr.LineData) {
	for i := 0; i < memaddr.WordsPerLine; i++ {
		if mask.Has(i) {
			if !r.l1.Access(device.Op{Kind: device.OpStore,
				Addr: line.Addr(i), Value: data[i]}, func(uint32) {}) {
				r.t.Fatal("store rejected")
			}
		}
	}
	r.l1.Flush(func() {})
	r.eng.Run()
	req := r.port.last()
	if req == nil || req.Type != proto.ReqO {
		r.t.Fatalf("expected ReqO, got %v", req)
	}
	r.l1.HandleMessage(&proto.Message{Type: proto.RspO, Src: 99,
		ReqID: req.ReqID, Line: line, Mask: mask})
	r.eng.Run()
	r.port.take()
	if r.l1.ProbeOwned()[line]&mask != mask {
		r.t.Fatal("ownership setup failed")
	}
}

// --- Table IV rows against a stable owner ---

func TestExtReqVOnOwned(t *testing.T) {
	r := newDRig(t)
	var d memaddr.LineData
	d[2] = 7
	r.own(0x1000, 0b100, d)
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqV, Src: 99, Requestor: 5,
		ReqID: 40, Line: 0x1000, Mask: 0b100})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspV || sent[0].Dst != 5 || sent[0].Data[2] != 7 {
		t.Fatalf("RspV wrong: %v", sent)
	}
	// Table IV: ReqV leaves the owner in O.
	if r.l1.ProbeOwned()[0x1000] != 0b100 {
		t.Fatal("ReqV changed owner state")
	}
}

func TestExtReqVOnMissingNacks(t *testing.T) {
	r := newDRig(t)
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqV, Src: 99, Requestor: 5,
		ReqID: 41, Line: 0x2000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.NackV || sent[0].Dst != 5 {
		t.Fatalf("expected NackV, got %v", sent)
	}
}

func TestExtReqOOnOwnedDowngrades(t *testing.T) {
	r := newDRig(t)
	var d memaddr.LineData
	d[0] = 3
	r.own(0x3000, 0b1, d)
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqO, Src: 99, Requestor: 6,
		ReqID: 42, Line: 0x3000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspO || sent[0].Dst != 6 || sent[0].HasData {
		t.Fatalf("RspO wrong: %v", sent)
	}
	if r.l1.ProbeOwned()[0x3000] != 0 {
		t.Fatal("Table IV: ReqO must leave the old owner in I")
	}
}

func TestExtReqODataCarriesData(t *testing.T) {
	r := newDRig(t)
	var d memaddr.LineData
	d[1] = 9
	r.own(0x4000, 0b10, d)
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqOData, Src: 99, Requestor: 7,
		ReqID: 43, Line: 0x4000, Mask: 0b10})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspOData || !sent[0].HasData || sent[0].Data[1] != 9 {
		t.Fatalf("RspO+data wrong: %v", sent)
	}
	if r.l1.ProbeOwned()[0x4000] != 0 {
		t.Fatal("ownership not surrendered")
	}
}

func TestRvkOWritesBackToLLC(t *testing.T) {
	r := newDRig(t)
	var d memaddr.LineData
	d[3] = 12
	r.own(0x5000, 0b1000, d)
	r.l1.HandleMessage(&proto.Message{Type: proto.RvkO, Src: 99, Requestor: 99,
		Line: 0x5000, Mask: 0b1000})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspRvkO || sent[0].Dst != 99 ||
		!sent[0].HasData || sent[0].Data[3] != 12 {
		t.Fatalf("RspRvkO wrong: %v", sent)
	}
	if r.l1.ProbeOwned()[0x5000] != 0 {
		t.Fatal("Table IV: RvkO must end in I")
	}
}

func TestExtReqWTDowngradesAndAcksRequestor(t *testing.T) {
	r := newDRig(t)
	var d memaddr.LineData
	r.own(0x6000, 0b1, d)
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqWT, Src: 99, Requestor: 8,
		ReqID: 44, Line: 0x6000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspWT || sent[0].Dst != 8 {
		t.Fatalf("RspWT wrong: %v", sent)
	}
	if r.l1.ProbeOwned()[0x6000] != 0 {
		t.Fatal("ReqWT must downgrade the written word")
	}
	// The local copy must also be dropped (the LLC has the new value).
	if v, ok := r.loadLocal(0x6000); ok {
		t.Fatalf("stale local copy survived: %d", v)
	}
}

func (r *drig) loadLocal(a memaddr.Addr) (uint32, bool) {
	e := r.l1.array.Peek(a.Line())
	if e == nil || !e.State.valid.Has(a.WordIndex()) {
		return 0, false
	}
	return e.State.data[a.WordIndex()], true
}

func TestInvAckedWithoutState(t *testing.T) {
	r := newDRig(t)
	r.l1.HandleMessage(&proto.Message{Type: proto.Inv, Src: 99,
		Line: 0x7000, Mask: memaddr.FullMask})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.InvAck {
		t.Fatalf("Inv not acked: %v", sent)
	}
}

// --- §III-C races ---

func TestExtReqOAgainstPendingGrant(t *testing.T) {
	// Our ReqO is outstanding; a forwarded ReqO for the same word arrives
	// first (the LLC already serialized our grant, then the transfer).
	// §III-C2: respond immediately; the eventual grant must not install
	// ownership.
	r := newDRig(t)
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x8000, Value: 5}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	req := r.port.last()
	if req == nil || req.Type != proto.ReqO {
		t.Fatalf("no ReqO: %v", req)
	}
	r.port.take()
	// The racing forward arrives before our RspO.
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqO, Src: 99, Requestor: 6,
		ReqID: 45, Line: 0x8000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspO || sent[0].Dst != 6 {
		t.Fatalf("pending-grant downgrade not answered: %v", sent)
	}
	// Our grant lands afterwards: the word must NOT become owned.
	r.l1.HandleMessage(&proto.Message{Type: proto.RspO, Src: 99,
		ReqID: req.ReqID, Line: 0x8000, Mask: 0b1})
	r.eng.Run()
	if r.l1.ProbeOwned()[0x8000] != 0 {
		t.Fatal("downgraded word installed as owned")
	}
}

func TestExtReqODataAgainstPendingGrantSuppliesStoreValue(t *testing.T) {
	// §III-C1: for a pending ReqO the up-to-date data IS our store value;
	// the external data request is answered immediately from it.
	r := newDRig(t)
	r.l1.Access(device.Op{Kind: device.OpStore, Addr: 0x9000, Value: 77}, func(uint32) {})
	r.l1.Flush(func() {})
	r.eng.Run()
	req := r.port.last()
	r.port.take()
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqOData, Src: 99, Requestor: 4,
		ReqID: 46, Line: 0x9000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspOData || sent[0].Data[0] != 77 {
		t.Fatalf("store value not supplied: %v", sent)
	}
	r.l1.HandleMessage(&proto.Message{Type: proto.RspO, Src: 99,
		ReqID: req.ReqID, Line: 0x9000, Mask: 0b1})
	r.eng.Run()
	if r.l1.ProbeOwned()[0x9000] != 0 {
		t.Fatal("downgraded word installed as owned")
	}
}

func TestExtAgainstPendingWriteBack(t *testing.T) {
	// §III-C2: requests for words with an in-flight ReqWB are served from
	// the retained copy, and downgrades complete the write-back locally.
	r := newDRig(t)
	var d memaddr.LineData
	d[0] = 21
	r.own(0xa000, 0b1, d)
	// Evict by filling the set (64 sets; 4KB stride).
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0xa000 + i*64*64) }
	for i := 1; i <= 8; i++ {
		var dd memaddr.LineData
		dd[0] = uint32(i)
		r.own(conflict(i).Line(), 0b1, dd)
	}
	// The ReqWB for 0xa000 must be among the sent messages, unacked.
	if _, ok := r.l1.wbs[0xa000]; !ok {
		t.Fatal("no pending write-back record")
	}
	r.port.take()
	// A forwarded ReqV is served from the record...
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqV, Src: 99, Requestor: 3,
		ReqID: 47, Line: 0xa000, Mask: 0b1})
	r.eng.Run()
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspV || sent[0].Data[0] != 21 {
		t.Fatalf("pending-WB ReqV wrong: %v", sent)
	}
	// ...and a downgrade completes the record locally.
	r.l1.HandleMessage(&proto.Message{Type: proto.ReqO, Src: 99, Requestor: 3,
		ReqID: 48, Line: 0xa000, Mask: 0b1})
	r.eng.Run()
	if _, ok := r.l1.wbs[0xa000]; ok {
		t.Fatal("downgrade did not complete the pending write-back")
	}
	// The late RspWB is now a no-op.
	r.l1.HandleMessage(&proto.Message{Type: proto.RspWB, Src: 99,
		Line: 0xa000, Mask: 0b1})
	r.eng.Run()
}

func TestExtDeferredBehindPendingAtomic(t *testing.T) {
	// §III-C1: an external request for a word with a pending ReqO+data
	// (atomic) waits until the data arrives, then observes the atomic's
	// result.
	r := newDRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpAtomic, Addr: 0xb000,
		Atomic: proto.AtomicFetchAdd, Value: 5}, func(v uint32) { got = v; done = true })
	r.eng.Run()
	req := r.port.last()
	if req == nil || req.Type != proto.ReqOData {
		t.Fatalf("no ReqOData: %v", req)
	}
	r.port.take()
	// A revocation races in before our data.
	r.l1.HandleMessage(&proto.Message{Type: proto.RvkO, Src: 99, Requestor: 99,
		Line: 0xb000, Mask: 0b1})
	r.eng.Run()
	if len(r.port.take()) != 0 {
		t.Fatal("revocation answered before the atomic's data arrived")
	}
	// Data arrives: atomic applies, then the deferred RvkO drains with the
	// post-atomic value.
	var d memaddr.LineData
	d[0] = 10
	r.l1.HandleMessage(&proto.Message{Type: proto.RspOData, Src: 99,
		ReqID: req.ReqID, Line: 0xb000, Mask: 0b1, HasData: true, Data: d})
	r.eng.Run()
	if !done || got != 10 {
		t.Fatalf("atomic result %d,%v", got, done)
	}
	sent := r.port.take()
	if len(sent) != 1 || sent[0].Type != proto.RspRvkO || sent[0].Data[0] != 15 {
		t.Fatalf("deferred RvkO wrong: %v", sent)
	}
	if r.l1.ProbeOwned()[0xb000] != 0 {
		t.Fatal("revoked word still owned")
	}
}

func TestNackRetryThenEscalateToReqOData(t *testing.T) {
	r := newDRig(t)
	var got uint32
	done := false
	r.l1.Access(device.Op{Kind: device.OpLoad, Addr: 0xc000},
		func(v uint32) { got = v; done = true })
	r.eng.Run()
	first := r.port.take()
	if len(first) != 1 || first[0].Type != proto.ReqV {
		t.Fatalf("first = %v", first)
	}
	// First Nack → retry as ReqV.
	r.l1.HandleMessage(&proto.Message{Type: proto.NackV, Src: 50,
		ReqID: first[0].ReqID, Line: 0xc000, Mask: 0b1})
	r.eng.Run()
	second := r.port.take()
	if len(second) != 1 || second[0].Type != proto.ReqV {
		t.Fatalf("retry = %v", second)
	}
	// Second Nack → escalate to ReqO+data (§III-C3).
	r.l1.HandleMessage(&proto.Message{Type: proto.NackV, Src: 50,
		ReqID: second[0].ReqID, Line: 0xc000, Mask: 0b1})
	r.eng.Run()
	third := r.port.take()
	if len(third) != 1 || third[0].Type != proto.ReqOData {
		t.Fatalf("escalation = %v", third)
	}
	var d memaddr.LineData
	d[0] = 5
	r.l1.HandleMessage(&proto.Message{Type: proto.RspOData, Src: 99,
		ReqID: third[0].ReqID, Line: 0xc000, Mask: 0b1, HasData: true, Data: d})
	r.eng.Run()
	if !done || got != 5 {
		t.Fatalf("escalated load got %d,%v", got, done)
	}
	if r.l1.ProbeOwned()[0xc000] != 0b1 {
		t.Fatal("escalated word not owned")
	}
}

func TestRegionInvalidate(t *testing.T) {
	r := newDRig(t)
	// Two valid lines via fills.
	for i, la := range []memaddr.LineAddr{0xd000, 0xe000} {
		r.l1.Access(device.Op{Kind: device.OpLoad, Addr: memaddr.Addr(la)}, func(uint32) {})
		r.eng.Run()
		req := r.port.last()
		var d memaddr.LineData
		d[0] = uint32(i + 1)
		r.l1.HandleMessage(&proto.Message{Type: proto.RspV, Src: 99,
			ReqID: req.ReqID, Line: la, Mask: memaddr.FullMask, HasData: true, Data: d})
		r.eng.Run()
		r.port.take()
	}
	// Region covering only the first line.
	r.l1.SelfInvalidateRegion(0xd000, 0xd040)
	if _, ok := r.loadLocal(0xd000); ok {
		t.Fatal("region line survived")
	}
	if v, ok := r.loadLocal(0xe000); !ok || v != 2 {
		t.Fatal("out-of-region line dropped")
	}
	// Full flash drops the rest.
	r.l1.SelfInvalidate()
	if _, ok := r.loadLocal(0xe000); ok {
		t.Fatal("full flash missed a line")
	}
}
