package denovo

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// HandleMessage implements noc.Handler: responses for this cache's own
// requests plus forwarded requests and probes for words it owns
// (paper Table IV and §III-C race handling).
func (l *L1) HandleMessage(m *proto.Message) {
	// Flow facts (spandex-flow): external requests hitting a word with an
	// outstanding miss are deferred until its data arrives; the responses
	// that complete the miss are always consumed immediately.
	//
	//spandex:flow queue ReqV,ReqO,ReqOData,ReqWT
	//spandex:flow wait pending awaits=RspV,NackV,RspO,RspOData,RspWTData,RspWB via=ReqV,ReqOData,ReqWB opener=any
	switch m.Type {
	case proto.RspV:
		l.handleRspV(m)
	case proto.NackV:
		l.handleNack(m)
	case proto.RspO:
		l.handleRspO(m)
	case proto.RspOData:
		l.handleRspOData(m)
	case proto.RspWTData:
		l.handleRspWTData(m)
	case proto.RspWB:
		l.handleRspWB(m)
	case proto.RspWT:
		// Only AtomicsAtLLC mode writes through, and those are ReqWT+data;
		// plain RspWT means a protocol bug.
		panic("denovo: unexpected RspWT")
	case proto.ReqV:
		l.handleExtReqV(m)
	case proto.ReqO, proto.ReqOData:
		l.handleExtOwn(m)
	case proto.ReqWT:
		l.handleExtReqWT(m)
	case proto.RvkO:
		l.handleRvkO(m)
	case proto.Inv:
		l.handleInv(m)
	default:
		panic("denovo: unexpected message " + m.Type.String())
	}
}

func (l *L1) handleRspV(m *proto.Message) {
	r := l.reads.Lookup(m.Line)
	if r == nil {
		return // entry already completed (e.g. by escalation)
	}
	fresh := m.Mask &^ r.arrived
	r.arrived |= fresh
	r.data.Merge(&m.Data, fresh)
	l.completeRead(m.Line, r)
}

func (l *L1) handleNack(m *proto.Message) {
	r := l.reads.Lookup(m.Line)
	if r == nil {
		return
	}
	fresh := m.Mask &^ r.retried &^ r.arrived
	if fresh != 0 {
		r.retried |= fresh
		l.st.Inc("dnl1.nack_retry", 1)
		l.sendV(proto.Message{
			Type: proto.ReqV, Dst: l.parent(m.Line), Requestor: l.ID,
			ReqID: r.reqID, Line: m.Line, Mask: fresh, Trace: r.trace,
		})
	}
	// Second failure: escalate to ReqO+data, which enforces global
	// ordering against racing ownership requests (paper §III-C3).
	escalate := (m.Mask & r.retried &^ r.arrived &^ r.escalated) & ^fresh
	if escalate != 0 {
		r.escalated |= escalate
		l.st.Inc("dnl1.nack_escalate", 1)
		l.sendV(proto.Message{
			Type: proto.ReqOData, Dst: l.parent(m.Line), Requestor: l.ID,
			ReqID: r.reqID, Line: m.Line, Mask: escalate, Trace: r.trace,
		})
	}
}

// completeRead fires waiters whose words arrived and installs the line
// when the outstanding set is fully covered.
func (l *L1) completeRead(la memaddr.LineAddr, r *readMiss) {
	// Compact still-waiting entries in place: rest aliases r.waiters'
	// backing array (appends lag the scan), so the slot keeps its waiter
	// capacity across Free/AllocReuse cycles.
	rest := r.waiters[:0]
	for _, w := range r.waiters {
		if r.arrived.Has(w.word) {
			v := r.data[w.word]
			l.eng.ScheduleCall(0, w.done, v)
		} else {
			rest = append(rest, w)
		}
	}
	r.waiters = rest
	if r.arrived&r.want != r.want {
		return
	}
	e := l.ensureLine(la)
	install := r.arrived &^ e.State.owned
	if o := l.owns[la]; o != nil {
		install &^= o.issued
	}
	if wbe := l.wb.Lookup(la); wbe != nil {
		install &^= wbe.Mask
	}
	e.State.data.Merge(&r.data, install)
	e.State.valid |= install
	e.State.owned |= r.ownedGot & install
	l.reads.Free(la)
	if l.obs != nil {
		l.mshrOcc()
	}
}

func (l *L1) handleRspO(m *proto.Message) {
	o := l.owns[m.Line]
	if o == nil {
		return
	}
	o.arrived |= m.Mask & o.issued
	l.completeOwn(m.Line, o)
}

func (l *L1) completeOwn(la memaddr.LineAddr, o *ownReq) {
	if o.arrived|o.downgraded != o.issued {
		return
	}
	grant := o.issued &^ o.downgraded
	if grant != 0 {
		e := l.ensureLine(la)
		e.State.owned |= grant
		e.State.valid |= grant
		e.State.data.Merge(&o.data, grant)
	}
	delete(l.owns, la)
	l.ownPool.Put(o)
	l.wb.Complete(la)
	l.checkFlush()
}

func (l *L1) handleRspOData(m *proto.Message) {
	if a, ok := l.atoms[m.ReqID]; ok {
		l.finishAtomic(m.ReqID, a, m)
		return
	}
	// Read escalation fill: the word arrives with ownership.
	r := l.reads.Lookup(m.Line)
	if r == nil {
		return
	}
	fresh := m.Mask &^ r.arrived
	r.arrived |= fresh
	r.ownedGot |= fresh
	r.data.Merge(&m.Data, fresh)
	l.completeRead(m.Line, r)
}

func (l *L1) finishAtomic(id uint64, a atomicReq, m *proto.Message) {
	la, w := a.op.Addr.Line(), a.op.Addr.WordIndex()
	old := m.Data[w]
	if a.atLLC {
		// Performed at the LLC; the local copy (if any) is stale.
		if e := l.array.Peek(la); e != nil {
			e.State.valid &^= a.op.Addr.WordMaskOf()
		}
	} else {
		// Perform the RMW locally and keep the word Owned.
		nv, _ := a.op.Atomic.Apply(old, a.op.Value, a.op.Compare)
		e := l.ensureLine(la)
		e.State.owned |= a.op.Addr.WordMaskOf()
		e.State.valid |= a.op.Addr.WordMaskOf()
		e.State.data[w] = nv
	}
	deferred := a.deferred
	delete(l.atoms, id)
	delete(l.atomByWord, a.op.Addr)
	a.done(old)
	// Externals that raced with the pending atomic resume against the now
	// stable state (paper §III-C1: delayed until the data request completes).
	for i := range deferred {
		l.HandleMessage(&deferred[i])
	}
}

func (l *L1) handleRspWTData(m *proto.Message) {
	a, ok := l.atoms[m.ReqID]
	if !ok {
		return
	}
	l.finishAtomic(m.ReqID, a, m)
}

func (l *L1) handleRspWB(m *proto.Message) {
	wb, ok := l.wbs[m.Line]
	if !ok {
		return // completed locally by a racing downgrade (paper §III-C2)
	}
	wb.mask &^= m.Mask
	if wb.mask == 0 {
		delete(l.wbs, m.Line)
	}
}

// deferToAtomic queues the single-word slice of an external request behind
// the pending atomic covering that word.
func (l *L1) deferToAtomic(m *proto.Message, word int) {
	addr := m.Line.Addr(word)
	id := l.atomByWord[addr]
	cp := *m
	cp.Mask = memaddr.MaskOf(word)
	a := l.atoms[id]
	a.deferred = append(a.deferred, cp)
	l.atoms[id] = a
}

// splitExternal partitions an external request's words by where their
// up-to-date copy lives right now.
type extSplit struct {
	deferred memaddr.WordMask // pending atomic: delay (§III-C1)
	stable   memaddr.WordMask // owned in the array
	inWB     memaddr.WordMask // pending write-back (§III-C2)
	pending  memaddr.WordMask // ReqO grant in flight (§III-C2)
	missing  memaddr.WordMask // no claim at all (ReqV/Inv only, §III-C3)
}

func (l *L1) split(m *proto.Message) extSplit {
	var s extSplit
	e := l.array.Peek(m.Line)
	wb := l.wbs[m.Line]
	o := l.owns[m.Line]
	m.Mask.ForEach(func(i int) {
		bit := memaddr.MaskOf(i)
		switch {
		// A live write-back record always wins: the LLC's RspWB precedes
		// any new-epoch forward (point-to-point FIFO), so a still-recorded
		// word means this request targets the epoch being written back.
		// Deferring it behind our own pending request instead can deadlock
		// through the LLC.
		case wb != nil && wb.mask.Has(i):
			s.inWB |= bit
		case l.hasAtom(m.Line, i):
			s.deferred |= bit
		case e != nil && e.State.owned.Has(i):
			s.stable |= bit
		case o != nil && o.issued.Has(i) && !o.downgraded.Has(i):
			s.pending |= bit
		default:
			s.missing |= bit
		}
	})
	return s
}

func (l *L1) hasAtom(la memaddr.LineAddr, w int) bool {
	_, ok := l.atomByWord[la.Addr(w)]
	return ok
}

// gatherData merges the up-to-date value of each selected word from its
// current home (array, pending write-back, or in-flight store data).
func (l *L1) gatherData(m *proto.Message, s extSplit) memaddr.LineData {
	var data memaddr.LineData
	if e := l.array.Peek(m.Line); e != nil {
		data.Merge(&e.State.data, s.stable)
	}
	if wb := l.wbs[m.Line]; wb != nil {
		data.Merge(&wb.data, s.inWB)
	}
	if o := l.owns[m.Line]; o != nil {
		data.Merge(&o.data, s.pending)
	}
	return data
}

func (l *L1) handleExtReqV(m *proto.Message) {
	s := l.split(m)
	s.deferred.ForEach(func(i int) { l.deferToAtomic(m, i) })
	serve := s.stable | s.inWB | s.pending
	if serve != 0 {
		// Flexible-granularity response (paper §II-C): include every
		// *owned* word of the line, not just the requested ones — they
		// are guaranteed fresh and ride along for free. (Merely Valid
		// words must not be forwarded: they may predate the requestor's
		// acquire.)
		extra := m
		if e := l.array.Peek(m.Line); e != nil {
			if bonus := e.State.owned &^ m.Mask; bonus != 0 {
				cp := *m
				cp.Mask = m.Mask | bonus
				extra = &cp
				s = l.split(extra)
				serve = s.stable | s.inWB | s.pending
			}
		}
		data := l.gatherData(extra, s)
		l.sendV(proto.Message{
			Type: proto.RspV, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: serve, HasData: true, Data: data,
			Trace: m.Trace,
		})
	}
	if s.missing != 0 {
		// We no longer own these words: Nack so the requestor retries
		// (paper §III-C3).
		l.st.Inc("dnl1.nack_sent", 1)
		l.sendV(proto.Message{
			Type: proto.NackV, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: s.missing, Trace: m.Trace,
		})
	}
}

// handleExtOwn serves forwarded ReqO / ReqO+data: ownership (and data for
// ReqO+data) transfers to the requestor; our copy downgrades.
func (l *L1) handleExtOwn(m *proto.Message) {
	s := l.split(m)
	s.deferred.ForEach(func(i int) { l.deferToAtomic(m, i) })
	act := s.stable | s.inWB | s.pending
	if act == 0 {
		return
	}
	rsp := proto.Message{
		Type: proto.RspO, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: act, Trace: m.Trace,
	}
	if m.Type == proto.ReqOData {
		rsp.Type = proto.RspOData
		rsp.HasData = true
		rsp.Data = l.gatherData(m, s)
	}
	l.downgrade(m.Line, s)
	l.sendV(rsp)
}

// handleExtReqWT: the LLC already serialized the remote write-through and
// took its data; we downgrade the written words and ack the requestor
// directly (paper Fig. 1d).
func (l *L1) handleExtReqWT(m *proto.Message) {
	s := l.split(m)
	s.deferred.ForEach(func(i int) { l.deferToAtomic(m, i) })
	act := s.stable | s.inWB | s.pending
	if act == 0 {
		return
	}
	l.downgrade(m.Line, s)
	l.sendV(proto.Message{
		Type: proto.RspWT, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: act, Trace: m.Trace,
	})
}

// handleRvkO writes owned data back to the LLC and downgrades
// (paper Fig. 1b). For words whose ReqWB is already in flight, the
// response carries no new information but still clears our claim.
func (l *L1) handleRvkO(m *proto.Message) {
	s := l.split(m)
	s.deferred.ForEach(func(i int) { l.deferToAtomic(m, i) })
	act := s.stable | s.inWB | s.pending
	if act == 0 {
		return
	}
	data := l.gatherData(m, s)
	l.downgrade(m.Line, s)
	l.sendV(proto.Message{
		Type: proto.RspRvkO, Dst: m.Src, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: act, HasData: true, Data: data,
		Trace: m.Trace,
	})
}

// downgrade clears our claim on the split's actionable words.
func (l *L1) downgrade(la memaddr.LineAddr, s extSplit) {
	if e := l.array.Peek(la); e != nil && s.stable != 0 {
		e.State.owned &^= s.stable
		e.State.valid &^= s.stable
	}
	if wb := l.wbs[la]; wb != nil && s.inWB != 0 {
		// The LLC no longer considers us owner: complete the pending
		// write-back locally (paper §III-C2).
		wb.mask &^= s.inWB
		if wb.mask == 0 {
			delete(l.wbs, la)
		}
	}
	if o := l.owns[la]; o != nil && s.pending != 0 {
		o.downgraded |= s.pending
		l.completeOwn(la, o)
	}
}

func (l *L1) handleInv(m *proto.Message) {
	// DeNovo holds no Shared state; an Inv (LLC evicting a Shared line)
	// can only concern Valid words, which drop silently (§III-C3).
	if e := l.array.Peek(m.Line); e != nil {
		e.State.valid &= e.State.owned
	}
	l.sendV(proto.Message{Type: proto.InvAck, Dst: m.Src, Line: m.Line, Mask: m.Mask, Trace: m.Trace})
}

// HoldsExternalFor reports whether the L1 is holding any external request
// slice deferred behind a pending atomic (deferToAtomic) whose eventual
// response targets dev. The model checker's partial-order reduction
// consults this between actions — while it holds, the delivery completing
// the atomic at *this* device releases the deferred response onto a
// possibly empty FIFO toward dev, so dev's action group is not persistent
// (DESIGN.md §10).
func (l *L1) HoldsExternalFor(dev proto.NodeID) bool {
	//spandex:maprange any-exists query; iteration order cannot change the boolean result
	for _, a := range l.atoms {
		for i := range a.deferred {
			if a.deferred[i].Requestor == dev {
				return true
			}
		}
	}
	return false
}
