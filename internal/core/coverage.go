package core

import (
	"sort"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// stateLabel returns the canonical label of a line's current LLC state —
// the vocabulary shared with the static transition graph
// (docs/transitions/core.json). Base states: I (line absent), F (present
// but data still fetching), V (valid, no sharers or owners), S (Shared),
// O (some words Owned), SO (Shared with owned words, the transient of a
// blocking ReqS(1) revocation). While a blocking transaction holds the
// line, the transaction kind is appended: e.g. "S+inv", "O+rvk",
// "I+fetch".
func (l *LLC) stateLabel(line memaddr.LineAddr) string {
	base := "I"
	if e := l.array.Peek(line); e != nil {
		st := &e.State
		switch {
		case st.fetching:
			base = "F"
		case st.shared && st.ownedMask != 0:
			base = "SO"
		case st.shared:
			base = "S"
		case st.ownedMask != 0:
			base = "O"
		default:
			base = "V"
		}
	}
	if t, ok := l.txns[line]; ok {
		base += "+" + t.kind.String()
	}
	return base
}

// TransitionKey is one dynamically observed (LLC state, incoming message)
// pair.
type TransitionKey struct {
	State string
	Msg   string
}

// TransitionCoverage counts the (state, message) pairs the LLC actually
// processed during a run. It is the dynamic half of the transition-graph
// cross-check: pairs recorded here but absent from the statically
// extracted graph indicate an extraction bug; static transitions never
// recorded are coverage gaps.
type TransitionCoverage struct {
	counts map[TransitionKey]uint64
}

// NewTransitionCoverage returns an empty recorder.
func NewTransitionCoverage() *TransitionCoverage {
	return &TransitionCoverage{counts: make(map[TransitionKey]uint64)}
}

// Record notes one processed (state, message) pair.
func (tc *TransitionCoverage) Record(state string, msg proto.MsgType) {
	tc.counts[TransitionKey{State: state, Msg: msg.Ident()}]++
}

// Merge folds another recorder's counts into tc.
func (tc *TransitionCoverage) Merge(o *TransitionCoverage) {
	if o == nil {
		return
	}
	for k, n := range o.counts {
		tc.counts[k] += n
	}
}

// Snapshot flattens the counts into a "State|Msg" → count map, the
// serialization format of coverage files (cmd/spandex-bench -coverage-out,
// cmd/spandex-mcheck -coverage-out) consumed by spandex-transgraph -diff.
func (tc *TransitionCoverage) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(tc.counts))
	for k, n := range tc.counts {
		out[k.State+"|"+k.Msg] = n
	}
	return out
}

// AddSnapshot folds a Snapshot-format map back into the recorder.
func (tc *TransitionCoverage) AddSnapshot(s map[string]uint64) {
	//spandex:maprange commutative keyed accumulation: += into counts keyed by the loop key
	for k, n := range s {
		for i := 0; i < len(k); i++ {
			if k[i] == '|' {
				tc.counts[TransitionKey{State: k[:i], Msg: k[i+1:]}] += n
				break
			}
		}
	}
}

// Keys returns the observed pairs in deterministic (state, msg) order.
func (tc *TransitionCoverage) Keys() []TransitionKey {
	keys := make([]TransitionKey, 0, len(tc.counts))
	//spandex:maprange order normalized by the sort below
	for k := range tc.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].State != keys[j].State {
			return keys[i].State < keys[j].State
		}
		return keys[i].Msg < keys[j].Msg
	})
	return keys
}

// Count returns the number of times a pair was observed.
func (tc *TransitionCoverage) Count(k TransitionKey) uint64 { return tc.counts[k] }

// SetCoverage installs a transition-coverage recorder on the LLC; nil
// disables recording.
func (l *LLC) SetCoverage(tc *TransitionCoverage) { l.coverage = tc }

// observe records the (pre-state, message) pair the LLC is about to
// process — for the dynamic coverage cross-check — and primes the
// checker's violation context with it, so any invariant broken while
// handling this message reports the cycle/line/state/msg that broke it.
func (l *LLC) observe(m *proto.Message) {
	if l.coverage == nil && l.checker == nil {
		return
	}
	st := l.stateLabel(m.Line)
	if l.checker != nil {
		l.checker.SetContext(l.eng.Now(), m.Line, st, m.Type.Ident())
	}
	if l.coverage != nil {
		l.coverage.Record(st, m.Type)
	}
}
