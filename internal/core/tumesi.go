package core

import (
	"spandex/internal/detsort"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// MESITU is the per-device translation unit that attaches an unmodified
// line-granularity MESI cache to the Spandex LLC (paper §III-D). It
// translates the cache's directory-protocol requests into Spandex requests
// (Table II: Read→ReqS line, Write/RMW→ReqO+data line, Owned
// Repl→ReqWB line), coalesces word-granularity partial responses from
// multiple sources into single line grants, and implements the three
// pending-state cases for word-granularity external requests:
//
//  1. stable O — external requests are converted to line granularity; a
//     partial-line downgrade triggers a ReqWB for the untouched words;
//  2. pending O request — ownership-only downgrades are answered
//     immediately and remembered; data-requiring requests wait for the
//     grant; afterwards the line transitions to I, writing back words that
//     received no downgrade request;
//  3. pending write-back — requests are answered from the retained copy.
type MESITU struct {
	ID  proto.NodeID
	eng *sim.Engine
	net *noc.Network
	st  *stats.Stats

	llcID proto.NodeID
	// llcBanks routes each line to its home bank at NodeID
	// llcID+BankOf(line) when the LLC is bank-sharded; <=1 keeps every
	// line homed at llcID (the flat LLC).
	llcBanks int
	// Latency models the TU's single-cycle lookup in each direction
	// (paper §III-F / §IV).
	latency sim.Time

	l1 *mesi.L1

	pend   map[memaddr.LineAddr]*tuPending
	wbs    map[memaddr.LineAddr]*tuWB
	probes map[uint64]*tuProbe
	// probeLines marks lines with an in-flight synthesized probe; externals
	// arriving in that window queue behind it (the line is already
	// invalidated at the L1 but its data has not reached the TU yet).
	probeLines map[memaddr.LineAddr]uint64
	// internalInvs are synthesized MInv ids (option-2 downgrades) whose
	// acks must not be relayed to the LLC.
	internalInvs map[uint64]bool
	reqSeq       uint64

	// out is the sendV scratch slot (see sendV); toL1 is the same idiom
	// for synchronous L1 injections (see l1V).
	out  proto.Message
	toL1 proto.Message

	// pendPool/probePool/wbPool recycle the TU's transient records (and
	// their queues' backing arrays) across transactions.
	pendPool  sim.Pool[tuPending]
	probePool sim.Pool[tuProbe]
	wbPool    sim.Pool[tuWB]

	checker *Checker

	// fromL1Q/fromNetQ defer messages by the TU lookup latency into the
	// translation paths (pooled; see noc.DelayQueue).
	fromL1Q  *noc.DelayQueue
	fromNetQ *noc.DelayQueue
}

type tuKind uint8

const (
	pendS tuKind = iota // MGetS → ReqS outstanding
	pendM               // MGetM → ReqO+data outstanding
)

type tuPending struct {
	kind    tuKind
	l1ReqID uint64
	// trace is the observability request id carried by the L1's request,
	// re-stamped on every retry/escalation the TU issues for it.
	trace   uint64
	arrived memaddr.WordMask
	data    memaddr.LineData
	// owned marks words granted with ownership (RspO+data parts).
	owned memaddr.WordMask
	// opt2 marks a ReqS the LLC answered as a ReqV (Table III option 2):
	// the cache must downgrade to Invalid after the read completes.
	opt2 bool
	// retried/escalated track the §III-C3 Nack handling for option-2
	// reads, whose forwarded ReqVs can fail.
	retried   memaddr.WordMask
	escalated memaddr.WordMask
	// downgraded: words answered to external ownership requests while the
	// grant was pending (case 2).
	downgraded memaddr.WordMask
	// invalidated marks a read grant that an external Inv overtook: the
	// LLC registered this TU as a sharer when it processed the ReqS, a
	// later writer invalidated the sharer set, and the Inv arrived before
	// the grant data (which travels from the previous owner on a
	// different channel, so pairwise FIFO cannot order them). The grant
	// still serves the waiting loads — they are ordered before the
	// invalidating write — but the line must not stay resident.
	invalidated bool
	// deferred holds externals by value; the backing array is recycled
	// with the tuPending through pendPool.
	deferred []proto.Message
}

type tuWB struct {
	mask memaddr.WordMask
	data memaddr.LineData
}

type tuProbe struct {
	// orig is the external Spandex request that triggered the synthesized
	// MESI probe; hasOrig is false for the case-2 post-grant cleanup.
	orig    proto.Message
	hasOrig bool
	// downgraded: words not written back after a case-2 cleanup.
	downgraded memaddr.WordMask
	// afterward: externals that arrived while the probe was in flight,
	// held by value (backing array recycled through probePool).
	afterward []proto.Message
}

// NewMESITU creates the TU for one MESI device. Call Bind with the L1
// (constructed with the TU as its port) before running.
func NewMESITU(id proto.NodeID, eng *sim.Engine, net *noc.Network, st *stats.Stats, llcID proto.NodeID, latency sim.Time) *MESITU {
	tu := &MESITU{
		ID: id, eng: eng, net: net, st: st, llcID: llcID, latency: latency,
		pend:         make(map[memaddr.LineAddr]*tuPending),
		wbs:          make(map[memaddr.LineAddr]*tuWB),
		probes:       make(map[uint64]*tuProbe),
		probeLines:   make(map[memaddr.LineAddr]uint64),
		internalInvs: make(map[uint64]bool),
	}
	tu.fromL1Q = noc.NewDelayQueue(eng, latency, func(m *proto.Message) {
		tu.fromL1(m)
		tu.audit(m)
	})
	tu.fromNetQ = noc.NewDelayQueue(eng, latency, func(m *proto.Message) {
		tu.fromNet(m)
		tu.audit(m)
	})
	net.Register(id, tu)
	return tu
}

// Bind attaches the MESI cache behind this TU.
func (tu *MESITU) Bind(l1 *mesi.L1) { tu.l1 = l1 }

// SetChecker installs the invariant checker. The TU audits its own
// bookkeeping after every message when CheckEveryTransition is armed.
func (tu *MESITU) SetChecker(c *Checker) { tu.checker = c }

// audit validates the TU's transient bookkeeping after a message has been
// fully processed (CheckEveryTransition mode): write-back records must
// cover at least one word, every line marked as probe-blocked must point
// at a live probe, and a pending grant whose words have all arrived must
// have completed (a fully-arrived entry still pending means a lost
// completion).
func (tu *MESITU) audit(m *proto.Message) {
	c := tu.checker
	if c == nil || !c.CheckEveryTransition {
		return
	}
	tu.st.Inc("check.transition", 1)
	// Stamp the triggering message as the violation context; "TU" marks
	// the audit as device-side (the state label vocabulary is the LLC's).
	c.SetContext(tu.eng.Now(), m.Line, "TU", m.Type.Ident())
	for _, line := range detsort.Keys(tu.wbs) {
		if tu.wbs[line].mask == 0 {
			c.fail("TU %d: write-back record for line %#x covers no words", tu.ID, uint64(line))
		}
	}
	for _, line := range detsort.Keys(tu.probeLines) {
		if _, ok := tu.probes[tu.probeLines[line]]; !ok {
			c.fail("TU %d: line %#x blocked on probe %d which no longer exists",
				tu.ID, uint64(line), tu.probeLines[line])
		}
	}
	for _, line := range detsort.Keys(tu.pend) {
		if tu.pend[line].arrived == memaddr.FullMask {
			c.fail("TU %d: pending grant for line %#x fully arrived but never completed",
				tu.ID, uint64(line))
		}
	}
}

// ProbeOwned reports the device's owned words for the system checker.
func (tu *MESITU) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask {
	return tu.l1.ProbeOwned()
}

var _ noc.Port = (*MESITU)(nil)

func (tu *MESITU) nextReq() uint64 {
	tu.reqSeq++
	return tu.reqSeq
}

// SetLLCBanks declares the LLC an interleaved array of n banks at
// consecutive NodeIDs starting at the constructor's llcID. Call before
// running; the default is the flat single-bank LLC.
func (tu *MESITU) SetLLCBanks(n int) { tu.llcBanks = n }

func (tu *MESITU) sendLLC(m *proto.Message) {
	m.Src = tu.ID
	m.Dst = proto.HomeOf(tu.llcID, tu.llcBanks, m.Line)
	tu.net.Send(m)
}

func (tu *MESITU) sendNet(m *proto.Message) {
	m.Src = tu.ID
	tu.net.Send(m)
}

// sendV transmits a by-value message. Every network/port Send copies the
// message synchronously before anything downstream can run, so a single
// scratch slot per sender is safe and avoids a heap allocation per send
// (the &proto.Message{...} literal idiom escapes through the Port
// interface).
func (tu *MESITU) sendNetV(m proto.Message) {
	tu.out = m
	tu.sendNet(&tu.out)
}

func (tu *MESITU) sendLLCV(m proto.Message) {
	tu.out = m
	tu.sendLLC(&tu.out)
}

// l1V injects a by-value message into the MESI cache. L1.HandleMessage
// consumes the message synchronously (anything it retains is copied), so
// one scratch slot is safe — the same contract sendV relies on.
func (tu *MESITU) l1V(m proto.Message) {
	tu.toL1 = m
	tu.l1.HandleMessage(&tu.toL1)
}

// newPending takes a grant record from the pool, keeping the deferred
// queue's backing array from its previous life.
func (tu *MESITU) newPending(kind tuKind, l1ReqID, trace uint64) *tuPending {
	p := tu.pendPool.Get()
	*p = tuPending{kind: kind, l1ReqID: l1ReqID, trace: trace, deferred: p.deferred[:0]}
	return p
}

// Send implements noc.Port: it receives everything the MESI L1 emits.
func (tu *MESITU) Send(m *proto.Message) {
	if m.Type == proto.MPutM {
		// Record the write-back synchronously: the L1 invalidates its
		// frame in the same instant it announces the eviction, so the
		// record must exist before any concurrently delivered external
		// probes the now-Invalid cache (the port latency models moving
		// the data, not the state change). Externals may consume words
		// from the record before fromL1 emits the ReqWB.
		wb := tu.wbPool.Get()
		*wb = tuWB{mask: memaddr.FullMask, data: m.Data}
		tu.wbs[m.Line] = wb
	}
	tu.fromL1Q.Post(m)
}

func (tu *MESITU) fromL1(m *proto.Message) {
	switch m.Type {
	case proto.MGetS:
		p := tu.newPending(pendS, m.ReqID, m.Trace)
		tu.pend[m.Line] = p
		tu.sendLLCV(proto.Message{
			Type: proto.ReqS, Requestor: tu.ID, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask, Trace: p.trace,
		})
	case proto.MGetM:
		p := tu.newPending(pendM, m.ReqID, m.Trace)
		tu.pend[m.Line] = p
		tu.sendLLCV(proto.Message{
			Type: proto.ReqOData, Requestor: tu.ID, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask, Trace: p.trace,
		})
	case proto.MPutM:
		// The write-back record was created synchronously in Send (and
		// externals may have consumed words from it since); only the
		// ReqWB emission pays the port latency.
		tu.sendLLCV(proto.Message{
			Type: proto.ReqWB, Requestor: tu.ID, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask, HasData: true, Data: m.Data,
		})
	case proto.MInvAck:
		if tu.internalInvs[m.ReqID] {
			delete(tu.internalInvs, m.ReqID)
			return
		}
		tu.sendLLCV(proto.Message{
			Type: proto.InvAck, Requestor: tu.ID, ReqID: m.ReqID,
			Line: m.Line, Mask: m.Mask, Trace: m.Trace,
		})
	case proto.MWBData:
		probe, ok := tu.probes[m.ReqID]
		if !ok {
			panic("core: TU got WBData for unknown probe")
		}
		delete(tu.probes, m.ReqID)
		tu.probeDone(probe, m)
		tu.probePool.Put(probe)
	case proto.MDataS, proto.MDataM:
		// Duplicate copies of probe responses addressed to ourselves;
		// MWBData carries everything the TU needs.
		if _, ok := tu.probes[m.ReqID]; !ok {
			panic("core: TU got stray data response from L1")
		}
	default:
		panic("core: TU cannot translate L1 message " + m.Type.String())
	}
}

// HandleMessage implements noc.Handler for network-side traffic.
func (tu *MESITU) HandleMessage(m *proto.Message) {
	tu.fromNetQ.Post(m)
}

func (tu *MESITU) fromNet(m *proto.Message) {
	// Flow facts (spandex-flow): external requests that need data are
	// parked behind an in-flight grant (tuPending.deferred) or probe
	// (tuProbe.afterward); both waits resolve through responses the TU
	// consumes immediately — LLC grants and L1 probe completions.
	//
	//spandex:flow queue ReqV,ReqS,ReqWT,ReqO,ReqOData
	//spandex:flow wait grant awaits=RspS,RspOData,RspV,NackV via=ReqS,ReqOData opener=any
	//spandex:flow wait probe awaits=MDataS,MDataM,MWBData,MInvAck via=MFwdGetS,MFwdGetM,MInv opener=any
	switch m.Type {
	case proto.RspS:
		tu.handleGrantPart(m, false)
	case proto.RspOData:
		tu.handleGrantPart(m, true)
	case proto.RspV:
		// Only an option-2 ReqS produces RspV parts for this TU.
		if p, ok := tu.pend[m.Line]; ok {
			p.opt2 = true
		}
		tu.handleGrantPart(m, false)
	case proto.NackV:
		tu.handleOpt2Nack(m)
	case proto.RspWB:
		if wb, ok := tu.wbs[m.Line]; ok {
			wb.mask &^= m.Mask
			if wb.mask == 0 {
				delete(tu.wbs, m.Line)
				tu.wbPool.Put(wb)
			}
		}
		tu.l1V(proto.Message{
			Type: proto.MAckWB, Src: tu.ID, Requestor: tu.ID,
			ReqID: m.ReqID, Line: m.Line, Mask: memaddr.FullMask,
		})
	case proto.Inv:
		if p, ok := tu.pend[m.Line]; ok && p.kind == pendS {
			p.invalidated = true
		}
		tu.l1V(proto.Message{
			Type: proto.MInv, Src: tu.ID, Requestor: tu.ID,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask,
		})
	case proto.ReqV, proto.ReqO, proto.ReqOData, proto.ReqWT, proto.ReqS, proto.RvkO:
		tu.handleExternal(m)
	default:
		panic("core: TU cannot handle " + m.Type.String())
	}
}

// handleOpt2Nack retries a Nacked forwarded ReqV once, then escalates the
// starving words to ReqO+data (paper §III-C3) — only option-2 reads can be
// Nacked, since options (1) and (3) never forward ReqV.
func (tu *MESITU) handleOpt2Nack(m *proto.Message) {
	p, ok := tu.pend[m.Line]
	if !ok {
		return
	}
	fresh := m.Mask &^ p.retried &^ p.arrived
	if fresh != 0 {
		p.retried |= fresh
		tu.st.Inc("tu.nack_retry", 1)
		tu.sendLLCV(proto.Message{
			Type: proto.ReqS, Requestor: tu.ID, ReqID: p.l1ReqID,
			Line: m.Line, Mask: fresh, Trace: p.trace,
		})
	}
	escalate := (m.Mask & p.retried &^ p.arrived &^ p.escalated) & ^fresh
	if escalate != 0 {
		p.escalated |= escalate
		tu.st.Inc("tu.nack_escalate", 1)
		tu.sendLLCV(proto.Message{
			Type: proto.ReqOData, Requestor: tu.ID, ReqID: p.l1ReqID,
			Line: m.Line, Mask: escalate, Trace: p.trace,
		})
	}
}

// handleGrantPart coalesces partial grant responses (which may come from
// the LLC and several previous owners) into a single line grant.
func (tu *MESITU) handleGrantPart(m *proto.Message, owned bool) {
	p, ok := tu.pend[m.Line]
	if !ok {
		return
	}
	fresh := m.Mask &^ p.arrived
	p.arrived |= fresh
	p.data.Merge(&m.Data, fresh)
	if owned {
		p.owned |= fresh
	}
	if p.arrived != memaddr.FullMask {
		return
	}
	delete(tu.pend, m.Line)

	var grant proto.MsgType
	switch {
	case p.kind == pendM:
		grant = proto.MDataM
	case p.owned == memaddr.FullMask && !p.opt2 && !p.invalidated:
		// ReqS answered via option (3): exclusive ownership (paper §IV:
		// "similar to MESI's response to a Shared request with Exclusive
		// state").
		grant = proto.MDataE
	default:
		grant = proto.MDataS
	}
	tu.l1V(proto.Message{
		Type: grant, Src: tu.ID, Requestor: tu.ID, ReqID: p.l1ReqID,
		Line: m.Line, Mask: memaddr.FullMask, HasData: true, Data: p.data,
		Trace: p.trace,
	})

	if p.opt2 || p.invalidated {
		// Option (2) contract — or a grant an Inv overtook: downgrade to
		// Invalid after the read is satisfied (the waiting loads completed
		// off the grant above), and release any words we were left owning.
		id := tu.nextReq()
		tu.internalInvs[id] = true
		tu.l1V(proto.Message{
			Type: proto.MInv, Src: tu.ID, Requestor: tu.ID, ReqID: id,
			Line: m.Line, Mask: memaddr.FullMask,
		})
		tu.writeBack(m.Line, p.owned, p.data)
	}

	if p.downgraded != 0 {
		// Case 2 epilogue: the line must end Invalid; write back every
		// word that received no downgrade request (paper §III-D). The
		// deferred externals resume once the write-back record exists.
		id := tu.probe(m.Line, proto.MFwdGetM, nil, p.downgraded)
		// Copy, not alias: p (and its deferred backing array) returns to
		// the pool now, while the probe's queue lives on.
		pr := tu.probes[id]
		pr.afterward = append(pr.afterward, p.deferred...)
		tu.pendPool.Put(p)
		return
	}
	for i := range p.deferred {
		tu.fromNet(&p.deferred[i])
	}
	tu.pendPool.Put(p)
}

// probe synthesizes a MESI-native probe so the unmodified cache performs
// the downgrade; the response returns through Send as MWBData.
func (tu *MESITU) probe(line memaddr.LineAddr, typ proto.MsgType, orig *proto.Message, downgraded memaddr.WordMask) uint64 {
	id := tu.nextReq()
	pr := tu.probePool.Get()
	*pr = tuProbe{downgraded: downgraded, afterward: pr.afterward[:0]}
	if orig != nil {
		pr.orig, pr.hasOrig = *orig, true
	}
	tu.probes[id] = pr
	tu.probeLines[line] = id
	tu.st.Inc("tu.probe", 1)
	tu.l1V(proto.Message{
		Type: typ, Src: tu.ID, Requestor: tu.ID, ReqID: id,
		Line: line, Mask: memaddr.FullMask,
	})
	return id
}

// probeDone finishes an external request once the cache surrendered the
// line (wb carries the line data), then replays externals that queued
// behind the probe — by then the write-back record (if any) exists.
func (tu *MESITU) probeDone(p *tuProbe, wb *proto.Message) {
	delete(tu.probeLines, wb.Line)
	defer func() {
		for i := range p.afterward {
			tu.handleExternal(&p.afterward[i])
		}
	}()
	if !p.hasOrig {
		// Case-2 cleanup: write back the words that were not downgraded.
		rest := memaddr.FullMask &^ p.downgraded
		tu.writeBack(wb.Line, rest, wb.Data)
		return
	}
	m := &p.orig
	rest := memaddr.FullMask &^ m.Mask
	switch m.Type {
	case proto.ReqO:
		tu.respond(m, proto.RspO, m.Mask, nil)
		tu.writeBack(m.Line, rest, wb.Data)
	case proto.ReqOData:
		tu.respond(m, proto.RspOData, m.Mask, &wb.Data)
		tu.writeBack(m.Line, rest, wb.Data)
	case proto.ReqWT:
		// The writer's data is already home at the LLC (Fig. 1d); ack the
		// requestor and write back the untouched words.
		tu.respond(m, proto.RspWT, m.Mask, nil)
		tu.writeBack(m.Line, rest, wb.Data)
	case proto.ReqS:
		// M→S downgrade: data to the reader, write-back to the LLC. The
		// full line's ownership clears at the LLC.
		tu.respond(m, proto.RspS, m.Mask, &wb.Data)
		tu.sendLLCV(proto.Message{
			Type: proto.RspRvkO, Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask, HasData: true, Data: wb.Data,
			Trace: m.Trace,
		})
	case proto.RvkO:
		tu.sendLLCV(proto.Message{
			Type: proto.RspRvkO, Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: memaddr.FullMask, HasData: true, Data: wb.Data,
			Trace: m.Trace,
		})
	default:
		panic("core: TU probe for " + m.Type.String())
	}
}

// writeBack sends the masked words home and records them until acked.
func (tu *MESITU) writeBack(line memaddr.LineAddr, mask memaddr.WordMask, data memaddr.LineData) {
	if mask == 0 {
		return
	}
	if wb, ok := tu.wbs[line]; ok {
		wb.mask |= mask
		wb.data.Merge(&data, mask)
	} else {
		wb := tu.wbPool.Get()
		*wb = tuWB{mask: mask, data: data}
		tu.wbs[line] = wb
	}
	tu.sendLLCV(proto.Message{
		Type: proto.ReqWB, Requestor: tu.ID, ReqID: tu.nextReq(),
		Line: line, Mask: mask, HasData: true, Data: data,
	})
}

func (tu *MESITU) respond(m *proto.Message, typ proto.MsgType, mask memaddr.WordMask, data *memaddr.LineData) {
	rsp := proto.Message{
		Type: typ, Dst: m.Requestor, Requestor: m.Requestor, ReqID: m.ReqID,
		Line: m.Line, Mask: mask, Trace: m.Trace,
	}
	if data != nil {
		rsp.HasData = true
		rsp.Data = *data
	}
	tu.sendNetV(rsp)
}

// handleExternal routes a forwarded request or probe by the line's current
// condition (paper §III-D cases 1-3).
//
// Words still covered by an unacknowledged write-back record are always
// served from that record first: the LLC's RspWB precedes any forward that
// could concern a newer ownership epoch (point-to-point FIFO), so a live
// record proves the forward targets the epoch being written back. Checking
// the pending-request state first instead can deadlock — the forward would
// wait on our grant while our grant waits, through the LLC, on this very
// response.
func (tu *MESITU) handleExternal(m *proto.Message) {
	if wb, ok := tu.wbs[m.Line]; ok && m.Mask&wb.mask != 0 {
		rest := m.Mask &^ wb.mask
		sub := *m
		sub.Mask = m.Mask & wb.mask
		tu.fromWBRecord(&sub, wb)
		if rest != 0 {
			sub = *m
			sub.Mask = rest
			tu.handleExternal(&sub)
		}
		return
	}
	if id, ok := tu.probeLines[m.Line]; ok {
		pr := tu.probes[id]
		pr.afterward = append(pr.afterward, *m)
		return
	}
	if p, ok := tu.pend[m.Line]; ok {
		if p.kind == pendM && (m.Type == proto.ReqO || m.Type == proto.ReqWT) {
			// Case 2: ownership-only downgrades are answered immediately.
			typ := proto.RspO
			if m.Type == proto.ReqWT {
				typ = proto.RspWT
			}
			p.downgraded |= m.Mask
			tu.respond(m, typ, m.Mask, nil)
			tu.st.Inc("tu.case2_immediate", 1)
			return
		}
		// Data-requiring requests wait for the grant.
		p.deferred = append(p.deferred, *m)
		tu.st.Inc("tu.case2_deferred", 1)
		return
	}
	_, st := tu.l1.PeekLine(m.Line)
	if st == mesi.M || st == mesi.E {
		if m.Type == proto.ReqV {
			// ReqV changes no state at the owning core (paper §III-C3).
			// Respond with the whole line: "the responding device may
			// include any available up-to-date data in the line".
			data, _ := tu.l1.PeekLine(m.Line)
			tu.respond(m, proto.RspV, memaddr.FullMask, &data)
			return
		}
		fwd := proto.MFwdGetM
		if m.Type == proto.ReqS {
			fwd = proto.MFwdGetS
		}
		tu.probe(m.Line, fwd, m, 0)
		return
	}
	// Stable state other than expected: only ReqV may arrive (the line
	// moved on before the forward landed) and must be Nacked (§III-C3).
	if m.Type == proto.ReqV {
		tu.st.Inc("tu.nack_sent", 1)
		tu.respond(m, proto.NackV, m.Mask, nil)
		return
	}
	panic("core: TU external " + m.Type.String() + " for line in state " + st.String())
}

// fromWBRecord answers externals for a line whose write-back is in flight
// (case 3); downgrades complete the record locally.
func (tu *MESITU) fromWBRecord(m *proto.Message, wb *tuWB) {
	avail := m.Mask & wb.mask
	missing := m.Mask &^ wb.mask
	la := m.Line
	clear := func(mask memaddr.WordMask) {
		wb.mask &^= mask
		if wb.mask == 0 {
			delete(tu.wbs, la)
			tu.wbPool.Put(wb)
		}
	}
	switch m.Type {
	case proto.ReqV:
		if avail != 0 {
			tu.respond(m, proto.RspV, avail, &wb.data)
		}
		if missing != 0 {
			tu.respond(m, proto.NackV, missing, nil)
		}
	case proto.ReqO:
		tu.respond(m, proto.RspO, m.Mask, nil)
		clear(m.Mask)
	case proto.ReqOData:
		tu.respond(m, proto.RspOData, m.Mask, &wb.data)
		clear(m.Mask)
	case proto.ReqWT:
		tu.respond(m, proto.RspWT, m.Mask, nil)
		clear(m.Mask)
	case proto.ReqS:
		tu.respond(m, proto.RspS, m.Mask, &wb.data)
		tu.sendLLCV(proto.Message{
			Type: proto.RspRvkO, Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: m.Mask, HasData: true, Data: wb.data,
			Trace: m.Trace,
		})
		clear(m.Mask)
	case proto.RvkO:
		tu.sendLLCV(proto.Message{
			Type: proto.RspRvkO, Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: m.Mask, HasData: true, Data: wb.data,
			Trace: m.Trace,
		})
		clear(m.Mask)
	default:
		panic("core: TU WB-record external " + m.Type.String())
	}
}

// HoldsExternalFor reports whether the TU is internally holding any
// external whose eventual handling can emit a direct device→device
// response to dev: a data-requiring forward deferred behind an in-flight
// grant (tuPending.deferred), the original external of an in-flight
// synthesized probe, or an external that queued behind such a probe. The
// model checker's partial-order reduction consults this between actions —
// while it holds, a delivery to *this* device can release a fresh message
// onto a previously empty FIFO toward dev, so dev's action group is not
// persistent (DESIGN.md §10).
func (tu *MESITU) HoldsExternalFor(dev proto.NodeID) bool {
	//spandex:maprange any-exists query; iteration order cannot change the boolean result
	for _, p := range tu.pend {
		for i := range p.deferred {
			if p.deferred[i].Requestor == dev {
				return true
			}
		}
	}
	//spandex:maprange any-exists query; iteration order cannot change the boolean result
	for _, pr := range tu.probes {
		if pr.hasOrig && pr.orig.Requestor == dev {
			return true
		}
		for i := range pr.afterward {
			if pr.afterward[i].Requestor == dev {
				return true
			}
		}
	}
	return false
}
