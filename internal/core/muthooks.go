package core

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// Fault-injection hooks for mutation testing. Both are nil in every normal
// build, so the hot paths pay only a nil check; the setters that arm them
// compile only under the spandexmut build tag (muthooks_mut.go), keeping
// the fault injection out of reach of production callers. The two shapes
// re-introduce historical bug classes the model checker must catch:
//
//   - mutDropInvAck: the LLC silently drops a sharer's invalidation ack,
//     so a txnInv never completes (lost-ack deadlock).
//   - mutSkipRvkOFwd: handleReqS forgets the RvkO forward for words owned
//     by self-invalidating devices, so the txnRvk it just created waits on
//     ownership that is never revoked.
var (
	mutDropInvAck  func(m *proto.Message) bool
	mutSkipRvkOFwd func(mask memaddr.WordMask) memaddr.WordMask
)
