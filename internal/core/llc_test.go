package core

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

func TestReqVFetchesAndResponds(t *testing.T) {
	h := newHarness(t, 2)
	var init memaddr.LineData
	for i := range init {
		init[i] = uint32(100 + i)
	}
	h.mem.Poke(L0, init)

	id := h.devs[0].req(proto.ReqV, L0, memaddr.FullMask, nil)
	h.quiesce()

	rsps := h.devs[0].rspOf(id)
	if len(rsps) != 1 || rsps[0].Type != proto.RspV {
		t.Fatalf("rsps = %v", rsps)
	}
	if !rsps[0].HasData || rsps[0].Data != init {
		t.Fatalf("data = %v", rsps[0].Data)
	}
	st := h.line(L0)
	if st == nil || st.shared || st.ownedMask != 0 {
		t.Fatalf("LLC state after ReqV: %+v", st)
	}
	if h.st.Get("llc.miss") != 1 {
		t.Fatal("expected one LLC miss")
	}
}

func TestReqWTUpdatesLLCNoData(t *testing.T) {
	h := newHarness(t, 2)
	id := h.devs[0].req(proto.ReqWT, L0, 0b101, func(m *proto.Message) {
		m.HasData = true
		m.Data[0] = 7
		m.Data[2] = 9
	})
	h.quiesce()
	rsps := h.devs[0].rspOf(id)
	if len(rsps) != 1 || rsps[0].Type != proto.RspWT || rsps[0].HasData {
		t.Fatalf("rsps = %v", rsps)
	}
	st := h.line(L0)
	if st.data[0] != 7 || st.data[2] != 9 {
		t.Fatalf("LLC data = %v", st.data)
	}
	if st.dirty != 0b101 {
		t.Fatalf("dirty = %#x", st.dirty)
	}
	// A later ReqV sees the written values.
	id2 := h.devs[1].req(proto.ReqV, L0, memaddr.FullMask, nil)
	h.quiesce()
	r := h.devs[1].rspOf(id2)
	if r[0].Data[0] != 7 || r[0].Data[2] != 9 {
		t.Fatal("ReqV did not observe write-through")
	}
}

// TestFigure1a reproduces paper Fig. 1a: a word-granularity ReqO triggers
// an immediate ownership transition and data-less RspO; a ReqWT from
// another device to *different* words of the same line proceeds without
// blocking, data responses, or false sharing.
func TestFigure1a(t *testing.T) {
	h := newHarness(t, 3)
	acc, gpu := h.devs[0], h.devs[1]

	idO := acc.req(proto.ReqO, L0, 0b0011, func(m *proto.Message) {
		m.HasData = true
		m.Data[0], m.Data[1] = 11, 22
	})
	h.quiesce()
	r := acc.rspOf(idO)
	if len(r) != 1 || r[0].Type != proto.RspO || r[0].HasData {
		t.Fatalf("ReqO rsps = %v", r)
	}
	st := h.line(L0)
	if st.ownedMask != 0b0011 || st.owner[0] != 0 || st.owner[1] != 0 {
		t.Fatalf("owned=%#x owners=%v", st.ownedMask, st.owner[:2])
	}

	// GPU writes through disparate words: handled immediately, data-less,
	// no blocking, no probe traffic.
	probesBefore := h.st.Traffic.Messages[proto.ClassProbe]
	idW := gpu.req(proto.ReqWT, L0, 0b1100, func(m *proto.Message) {
		m.HasData = true
		m.Data[2], m.Data[3] = 33, 44
	})
	h.quiesce()
	r = gpu.rspOf(idW)
	if len(r) != 1 || r[0].Type != proto.RspWT || r[0].HasData {
		t.Fatalf("ReqWT rsps = %v", r)
	}
	if h.st.Traffic.Messages[proto.ClassProbe] != probesBefore {
		t.Fatal("false sharing: probes sent for disjoint-word accesses")
	}
	st = h.line(L0)
	if st.ownedMask != 0b0011 || st.data[2] != 33 || st.data[3] != 44 {
		t.Fatalf("line state after disjoint WT: owned=%#x data=%v", st.ownedMask, st.data[:4])
	}
}

// TestFigure1b reproduces paper Fig. 1b: ReqWT+data to a remotely-owned
// word revokes ownership (RvkO), blocks, and performs the update at the
// LLC once the owner writes the line back.
func TestFigure1b(t *testing.T) {
	h := newHarness(t, 3)
	acc, gpu := h.devs[0], h.devs[1]

	// Accelerator owns words 0-1 with values 5, 6.
	acc.req(proto.ReqO, L0, 0b0011, nil)
	h.quiesce()
	d := acc.data[L0]
	d[0], d[1] = 5, 6
	acc.data[L0] = d

	id := gpu.req(proto.ReqWTData, L0, 0b0001, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.Operand = 10
	})
	h.quiesce()

	r := gpu.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspWTData {
		t.Fatalf("rsps = %v", r)
	}
	if r[0].Data[0] != 5 {
		t.Fatalf("atomic returned %d, want pre-update 5", r[0].Data[0])
	}
	st := h.line(L0)
	if st.ownedMask != 0 {
		t.Fatalf("ownership not revoked: %#x", st.ownedMask)
	}
	if st.data[0] != 15 || st.data[1] != 6 {
		t.Fatalf("update not applied: %v", st.data[:2])
	}
	// The accelerator received a RvkO probe.
	sawRvk := false
	for _, m := range acc.recv {
		if m.Type == proto.RvkO {
			sawRvk = true
		}
	}
	if !sawRvk {
		t.Fatal("owner never received RvkO")
	}
	if h.st.Get("llc.blocked.rvk") != 1 {
		t.Fatal("expected one blocking revocation")
	}
}

// TestFigure1c reproduces paper Fig. 1c: a line-granularity ReqV for a
// line with remotely-owned words gets an immediate partial RspV from the
// LLC plus a direct RspV from the owner; no LLC state transition.
func TestFigure1c(t *testing.T) {
	h := newHarness(t, 3)
	acc, gpu := h.devs[0], h.devs[1]

	acc.req(proto.ReqO, L0, 0b0011, nil)
	h.quiesce()
	d := acc.data[L0]
	d[0], d[1] = 77, 88
	acc.data[L0] = d

	id := gpu.req(proto.ReqV, L0, memaddr.FullMask, nil)
	h.quiesce()

	r := gpu.rspOf(id)
	if len(r) != 2 {
		t.Fatalf("want 2 partial responses, got %v", r)
	}
	var fromLLC, fromOwner *proto.Message
	for i := range r {
		if r[i].Src == h.llc.ID {
			fromLLC = &r[i]
		} else if r[i].Src == acc.id {
			fromOwner = &r[i]
		}
	}
	if fromLLC == nil || fromOwner == nil {
		t.Fatalf("responses from wrong sources: %v", r)
	}
	if fromOwner.Mask != 0b0011 || fromOwner.Data[0] != 77 || fromOwner.Data[1] != 88 {
		t.Fatalf("owner response wrong: %+v", fromOwner)
	}
	if fromLLC.Mask&0b0011 != 0 {
		t.Fatal("LLC responded for owned words")
	}
	if fromLLC.Mask|fromOwner.Mask != memaddr.FullMask {
		t.Fatal("partial responses do not cover the line")
	}
	// No state transition: accelerator still owns words 0-1.
	st := h.line(L0)
	if st.ownedMask != 0b0011 {
		t.Fatalf("ReqV changed ownership: %#x", st.ownedMask)
	}
}

// TestFigure1d reproduces paper Fig. 1d: word ReqWT to a word owned by a
// line-granularity cache — the LLC updates immediately and forwards; the
// owner downgrades and acks the requestor directly.
func TestFigure1d(t *testing.T) {
	h := newHarness(t, 3, 2) // dev 2 is a MESI cache
	gpu, mesi := h.devs[0], h.devs[2]

	mesi.req(proto.ReqOData, L0, memaddr.FullMask, nil)
	h.quiesce()

	id := gpu.req(proto.ReqWT, L0, 0b0100, func(m *proto.Message) {
		m.HasData = true
		m.Data[2] = 99
	})
	h.quiesce()

	r := gpu.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspWT || r[0].Src != mesi.id {
		t.Fatalf("requestor must be acked by the old owner: %v", r)
	}
	st := h.line(L0)
	if st.ownedMask.Has(2) {
		t.Fatal("written word still owned")
	}
	if st.data[2] != 99 {
		t.Fatalf("LLC data[2] = %d", st.data[2])
	}
	if st.ownedMask != memaddr.FullMask&^0b0100 {
		t.Fatalf("other words lost ownership: %#x", st.ownedMask)
	}
}

func TestReqOTransfersOwnershipNonBlocking(t *testing.T) {
	h := newHarness(t, 3)
	a, b := h.devs[0], h.devs[1]
	a.req(proto.ReqO, L0, 0b1111, nil)
	h.quiesce()

	blockedBefore := h.st.Get("llc.blocked.rvk") + h.st.Get("llc.blocked.inv")
	id := b.req(proto.ReqO, L0, 0b0110, nil)
	h.quiesce()

	r := b.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspO || r[0].Src != a.id {
		t.Fatalf("rsps = %v", r)
	}
	st := h.line(L0)
	if st.owner[1] != 1 || st.owner[2] != 1 || st.owner[0] != 0 || st.owner[3] != 0 {
		t.Fatalf("owners = %v", st.owner[:4])
	}
	if h.st.Get("llc.blocked.rvk")+h.st.Get("llc.blocked.inv") != blockedBefore {
		t.Fatal("ownership transfer blocked at the LLC")
	}
	if a.owned[L0] != 0b1001 {
		t.Fatalf("old owner mask = %#x", a.owned[L0])
	}
}

func TestReqSOption1SharersInvalidatedOnWrite(t *testing.T) {
	h := newHarness(t, 3, 0, 1) // devs 0,1 MESI
	m0, m1, w := h.devs[0], h.devs[1], h.devs[2]

	m0.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	m1.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	st := h.line(L0)
	if !st.shared || st.sharers != 0b11 {
		t.Fatalf("shared=%v sharers=%#x", st.shared, st.sharers)
	}

	// Write from dev 2: both sharers must be invalidated first.
	id := w.req(proto.ReqWT, L0, 0b1, func(m *proto.Message) {
		m.HasData = true
		m.Data[0] = 5
	})
	h.quiesce()
	st = h.line(L0)
	if st.shared || st.sharers != 0 {
		t.Fatalf("sharers survive write: %+v", st)
	}
	if st.data[0] != 5 {
		t.Fatal("write lost")
	}
	inv0, inv1 := 0, 0
	for _, m := range m0.recv {
		if m.Type == proto.Inv {
			inv0++
		}
	}
	for _, m := range m1.recv {
		if m.Type == proto.Inv {
			inv1++
		}
	}
	if inv0 != 1 || inv1 != 1 {
		t.Fatalf("inv counts = %d,%d", inv0, inv1)
	}
	if len(w.rspOf(id)) != 1 {
		t.Fatal("write never completed")
	}
	if h.st.Get("llc.blocked.inv") != 1 {
		t.Fatal("expected one blocking invalidation")
	}
}

func TestReqSFromMESIOwnedByMESIUsesOption1(t *testing.T) {
	h := newHarness(t, 3, 0, 1)
	owner, reader := h.devs[0], h.devs[1]
	owner.req(proto.ReqOData, L0, memaddr.FullMask, nil)
	h.quiesce()
	d := owner.data[L0]
	d[0] = 42
	owner.data[L0] = d

	id := reader.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	r := reader.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspS || r[0].Src != owner.id {
		t.Fatalf("rsps = %v", r)
	}
	if r[0].Data[0] != 42 {
		t.Fatal("stale data from downgraded owner")
	}
	st := h.line(L0)
	if !st.shared || st.ownedMask != 0 {
		t.Fatalf("post state: shared=%v owned=%#x", st.shared, st.ownedMask)
	}
	// Both the old owner and the reader are sharers.
	if st.sharers != 0b11 {
		t.Fatalf("sharers = %#x", st.sharers)
	}
	// LLC must have absorbed the written-back data.
	if st.data[0] != 42 {
		t.Fatal("write-back not absorbed")
	}
}

func TestReqSUnownedUsesOption3(t *testing.T) {
	h := newHarness(t, 2, 0)
	m0 := h.devs[0]
	id := m0.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	r := m0.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspOData {
		t.Fatalf("want RspOData (option 3 / E-state grant), got %v", r)
	}
	st := h.line(L0)
	if st.shared || st.ownedMask != memaddr.FullMask {
		t.Fatalf("option 3 state wrong: shared=%v owned=%#x", st.shared, st.ownedMask)
	}
}

func TestReqSOwnedByNonMESIUsesOption3(t *testing.T) {
	h := newHarness(t, 3, 1) // dev1 MESI; dev0 is DeNovo-like
	dn, mesi := h.devs[0], h.devs[1]
	dn.req(proto.ReqO, L0, 0b0011, nil)
	h.quiesce()
	d := dn.data[L0]
	d[0], d[1] = 3, 4
	dn.data[L0] = d

	id := mesi.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	r := mesi.rspOf(id)
	// Option 3: ownership grant; words 0-1 come from the DeNovo owner, the
	// rest from the LLC — all as RspOData.
	total := memaddr.WordMask(0)
	for _, m := range r {
		if m.Type != proto.RspOData {
			t.Fatalf("non-option-3 response: %v", m)
		}
		total |= m.Mask
	}
	if total != memaddr.FullMask {
		t.Fatalf("coverage = %#x", total)
	}
	st := h.line(L0)
	if st.ownedMask != memaddr.FullMask || st.owner[0] != 1 {
		t.Fatalf("ownership not transferred: %#x owner0=%d", st.ownedMask, st.owner[0])
	}
	if dn.owned[L0] != 0 {
		t.Fatal("old owner kept words")
	}
}

func TestReqWBFromNonOwnerDropped(t *testing.T) {
	h := newHarness(t, 3)
	a, b := h.devs[0], h.devs[1]
	a.req(proto.ReqO, L0, 0b1, func(m *proto.Message) { m.HasData = true; m.Data[0] = 10 })
	h.quiesce()
	ad := a.data[L0]
	ad[0] = 10
	a.data[L0] = ad

	// b (never an owner) writes back garbage: must be dropped but acked.
	id := b.req(proto.ReqWB, L0, 0b1, func(m *proto.Message) {
		m.HasData = true
		m.Data[0] = 666
	})
	h.quiesce()
	r := b.rspOf(id)
	if len(r) != 1 || r[0].Type != proto.RspWB {
		t.Fatalf("non-owner WB not acked: %v", r)
	}
	st := h.line(L0)
	if !st.ownedMask.Has(0) || st.owner[0] != 0 {
		t.Fatal("non-owner WB disturbed ownership")
	}
	if h.st.Get("llc.wb.nonowner") != 1 {
		t.Fatal("non-owner WB not counted")
	}

	// Owner's WB applies.
	a.req(proto.ReqWB, L0, 0b1, func(m *proto.Message) {
		m.HasData = true
		m.Data[0] = 10
	})
	a.owned[L0] = 0
	h.quiesce()
	st = h.line(L0)
	if st.ownedMask != 0 || st.data[0] != 10 {
		t.Fatalf("owner WB failed: owned=%#x data0=%d", st.ownedMask, st.data[0])
	}
}

func TestForwardedReqVNack(t *testing.T) {
	h := newHarness(t, 3)
	a, b := h.devs[0], h.devs[1]
	a.req(proto.ReqO, L0, 0b1, nil)
	h.quiesce()
	a.nackReqV = true

	id := b.req(proto.ReqV, L0, 0b1, nil)
	h.quiesce()
	sawNack := false
	for _, m := range b.rspOf(id) {
		if m.Type == proto.NackV {
			sawNack = true
		}
	}
	if !sawNack {
		t.Fatal("requestor never saw the Nack")
	}
}

func TestEvictionRevokesOwnersAndWritesBack(t *testing.T) {
	h := newHarness(t, 2)
	a := h.devs[0]
	// LLC: 16KB, 8-way, 64B lines → 32 sets. Lines that collide in set 0
	// are 32 lines (2KB) apart.
	conflict := func(i uint64) memaddr.LineAddr {
		return memaddr.LineAddr(i * 32 * 64)
	}
	// Own a word in the first line, then stream 8 more conflicting lines.
	a.req(proto.ReqO, conflict(0), 0b1, nil)
	h.quiesce()
	d := a.data[conflict(0)]
	d[0] = 123
	a.data[conflict(0)] = d

	for i := uint64(1); i <= 8; i++ {
		a.req(proto.ReqV, conflict(i), memaddr.FullMask, nil)
		h.quiesce()
	}
	if h.st.Get("llc.evict") == 0 {
		t.Fatal("no eviction occurred")
	}
	if a.owned[conflict(0)] != 0 {
		t.Fatal("owner not revoked by eviction")
	}
	if h.line(conflict(0)) != nil {
		t.Fatal("victim still present")
	}
	if got := h.mem.Peek(conflict(0)); got[0] != 123 {
		t.Fatalf("dirty owned data lost on eviction: %v", got[0])
	}
	// Refetch sees the written-back value.
	id := a.req(proto.ReqV, conflict(0), 0b1, nil)
	h.quiesce()
	r := a.rspOf(id)
	if len(r) == 0 || r[0].Data[0] != 123 {
		t.Fatal("refetch lost data")
	}
}

func TestQueuedRequestsDrainInOrder(t *testing.T) {
	h := newHarness(t, 3)
	a, b, c := h.devs[0], h.devs[1], h.devs[2]
	// Warm the line.
	a.req(proto.ReqV, L0, 0b1, nil)
	h.quiesce()
	// a owns word 0; two atomics queue behind the revocation.
	a.req(proto.ReqO, L0, 0b1, func(m *proto.Message) { m.HasData = true })
	h.quiesce()
	d := a.data[L0]
	d[0] = 100
	a.data[L0] = d

	id1 := b.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.Operand = 1
	})
	id2 := c.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.Operand = 1
	})
	h.quiesce()
	r1, r2 := b.rspOf(id1), c.rspOf(id2)
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("rsps %v %v", r1, r2)
	}
	if r1[0].Data[0] != 100 || r2[0].Data[0] != 101 {
		t.Fatalf("atomics not serialized in order: %d, %d", r1[0].Data[0], r2[0].Data[0])
	}
	if h.line(L0).data[0] != 102 {
		t.Fatalf("final value %d", h.line(L0).data[0])
	}
}

func TestMultiDeviceOwnershipPingPong(t *testing.T) {
	h := newHarness(t, 3)
	a, b := h.devs[0], h.devs[1]
	for i := 0; i < 10; i++ {
		a.req(proto.ReqO, L0, 0b1, nil)
		h.quiesce()
		b.req(proto.ReqO, L0, 0b1, nil)
		h.quiesce()
	}
	st := h.line(L0)
	if st.owner[0] != 1 || a.owned[L0] != 0 || b.owned[L0] != 0b1 {
		t.Fatalf("ping-pong end state wrong: llc=%d a=%#x b=%#x",
			st.owner[0], a.owned[L0], b.owned[L0])
	}
}
