package core

import (
	"math/bits"

	"spandex/internal/cache"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// startFetch begins allocating and fetching a missing line to serve m.
// The request (and any later ones) queue on a txnFetch until data arrives.
func (l *LLC) startFetch(m *proto.Message) {
	// Any device request can miss; the victim eviction (if one is needed)
	// accounts for the RvkO/Inv/MemWrite emissions. Until a frame frees up
	// the line stays I+fetch; once installed it is F+fetch.
	//spandex:transition ReqV from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	//spandex:transition ReqS from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	//spandex:transition ReqWT from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	//spandex:transition ReqO from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	//spandex:transition ReqWTData from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	//spandex:transition ReqOData from=I to=F+fetch|I+fetch emits=MemRead,RvkO,Inv,MemWrite
	l.observe(m)
	t := l.newTxn(txnFetch, m.Line)
	t.waiting = append(t.waiting, *m)
	l.txns[m.Line] = t
	l.st.Inc("llc.miss", 1)
	if l.obs != nil {
		l.blockEv(m)
		l.txnOcc()
	}

	line := m.Line
	victim := l.pickVictim(line)
	if victim == nil {
		// Every frame in the set is mid-transaction: park the fetch until a
		// transaction resolves (txnResolved wakes the list). Event-driven
		// rather than timer-polled so progress never depends on retry
		// timing — a blocked fetch is re-attempted exactly when something
		// that could unblock it happened.
		l.allocWait = append(l.allocWait, line)
		if l.obs != nil {
			l.conflictEv(line)
		}
		return
	}
	if !victim.Valid {
		l.installAndRead(victim, line)
		return
	}
	l.evict(victim, func() {
		l.installAndRead(victim, line)
	})
}

// txnResolved is called after a transaction leaves l.txns: if any fetch is
// parked waiting for a frame, re-attempt allocation once the current
// handler finishes (a fresh event avoids reentering the LLC mid-handler).
func (l *LLC) txnResolved() {
	if len(l.allocWait) > 0 && !l.allocWakeup {
		l.allocWakeup = true
		l.eng.Schedule(0, l.retryAllocWaiters)
	}
}

// retryAllocWaiters re-attempts frame allocation for every parked fetch,
// in arrival order. Fetches whose set is still fully busy park again.
func (l *LLC) retryAllocWaiters() {
	l.allocWakeup = false
	waiters := l.allocWait
	l.allocWait = nil
	for i, line := range waiters {
		t, ok := l.txns[line]
		if !ok || t.kind != txnFetch {
			continue
		}
		victim := l.pickVictim(line)
		if victim == nil {
			l.allocWait = append(l.allocWait, waiters[i])
			continue
		}
		if !victim.Valid {
			l.installAndRead(victim, line)
			continue
		}
		l.evict(victim, func() { l.installAndRead(victim, line) })
	}
}

// pickVictim selects a replacement frame, never choosing a line with an
// active transaction (it may be mid-revocation or mid-fetch).
func (l *LLC) pickVictim(line memaddr.LineAddr) *cache.Entry[llcLine] {
	return l.array.VictimWhere(line, func(e *cache.Entry[llcLine]) bool {
		_, busy := l.txns[e.Line]
		return !busy
	})
}

// evict removes a valid victim line: revoking owners / invalidating
// sharers, writing dirty words to memory, then invoking resume. Requests
// targeting the victim line queue on a txnEvict meanwhile.
func (l *LLC) evict(victim *cache.Entry[llcLine], resume func()) {
	st := &victim.State
	line := victim.Line
	l.st.Inc("llc.evict", 1)
	if l.obs != nil {
		l.evictEv(line)
	}

	finish := func() {
		e := l.array.Peek(line)
		if e == nil {
			panic("core: victim vanished during eviction")
		}
		if e.State.dirty != 0 {
			l.sendV(proto.Message{
				Type: proto.MemWrite, Dst: l.MemID, Requestor: l.ID,
				Line: line, Mask: e.State.dirty, HasData: true, Data: e.State.data,
			})
		}
		l.array.Invalidate(line)
		resume()
	}

	t := l.newTxn(txnEvict, line)
	t.resume = finish

	if st.ownedMask != 0 {
		t.rvkMask = st.ownedMask
		l.rvkSeq++
		t.rvkID = l.rvkSeq
		var owb ownerBuf
		for _, ow := range ownersOf(st, st.ownedMask, &owb) {
			if l.obs != nil {
				l.revokeEv(line, ow.words)
			}
			l.sendV(proto.Message{
				Type: proto.RvkO, Dst: l.devices[ow.owner], Requestor: l.ID,
				ReqID: t.rvkID, Line: line, Mask: ow.words,
			})
		}
		l.txns[line] = t
		l.afterTransition(line)
		return
	}
	if st.shared {
		for i := 0; i < len(l.devices); i++ {
			if st.sharers&(1<<i) == 0 {
				continue
			}
			t.pendingAcks++
			l.sendV(proto.Message{
				Type: proto.Inv, Dst: l.devices[i], Requestor: l.devices[i],
				Line: line, Mask: memaddr.FullMask,
			})
		}
		if l.obs != nil {
			l.sharerEv(line, bits.OnesCount64(st.sharers))
		}
		st.shared = false
		st.sharers = 0
		if t.pendingAcks > 0 {
			l.txns[line] = t
			l.afterTransition(line)
			return
		}
	}
	// Neither owners nor sharers: the txn was never installed.
	l.freeTxn(t)
	finish()
	l.afterTransition(line)
}

// installAndRead claims the frame for line and requests its data.
func (l *LLC) installAndRead(frame *cache.Entry[llcLine], line memaddr.LineAddr) {
	l.array.Install(frame, line)
	frame.State.fetching = true
	for i := range frame.State.owner {
		frame.State.owner[i] = noOwner
	}
	// The fetch is charged to the request that triggered it: the first
	// queued message's trace rides on the MemRead (and back on the
	// MemReadRsp), so the memory round trip lands in PhaseDRAM.
	var tr uint64
	if t, ok := l.txns[line]; ok && len(t.waiting) > 0 {
		tr = t.waiting[0].Trace
	}
	l.sendV(proto.Message{
		Type: proto.MemRead, Dst: l.MemID, Requestor: l.ID,
		Line: line, Mask: memaddr.FullMask, Trace: tr,
	})
	l.afterTransition(line)
}

// handleMemRsp fills a fetched line and replays the queued requests.
func (l *LLC) handleMemRsp(m *proto.Message) {
	// Queued requests drain after the fill; each is observed at its own
	// processing state.
	//spandex:transition MemReadRsp from=F+fetch to=V
	l.observe(m)
	e := l.array.Peek(m.Line)
	if e == nil || !e.State.fetching {
		panic("core: memory response for non-fetching line")
	}
	e.State.data = m.Data
	e.State.fetching = false
	t, ok := l.txns[m.Line]
	if !ok || t.kind != txnFetch {
		panic("core: memory response without fetch txn")
	}
	delete(l.txns, m.Line)
	l.txnResolved()
	if l.obs != nil {
		l.txnOcc()
	}
	l.afterTransition(m.Line)
	l.drain(t)
	l.freeTxn(t)
}
