package core

import (
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// PassTU is the translation unit for devices that speak the Spandex
// vocabulary natively (GPU coherence and DeNovo caches). Their translation
// needs — partial-response coalescing and Nack retry/escalation — live in
// the controllers themselves (see those packages), so this shim models
// only the TU's lookup latency in each direction (paper §III-F: "we model
// TU queuing latency, assuming a single-cycle lookup").
type PassTU struct {
	ID      proto.NodeID
	eng     *sim.Engine
	net     *noc.Network
	latency sim.Time
	inner   noc.Handler

	// outQ/inQ defer messages by the TU lookup latency in each direction
	// (pooled; see noc.DelayQueue).
	outQ *noc.DelayQueue
	inQ  *noc.DelayQueue
}

// NewPassTU creates the shim and registers it as node id's handler. Attach
// the device with Bind, and give the device the TU as its port.
func NewPassTU(id proto.NodeID, eng *sim.Engine, net *noc.Network, latency sim.Time) *PassTU {
	tu := &PassTU{ID: id, eng: eng, net: net, latency: latency}
	tu.outQ = noc.NewDelayQueue(eng, latency, func(m *proto.Message) { tu.net.Send(m) })
	tu.inQ = noc.NewDelayQueue(eng, latency, func(m *proto.Message) { tu.inner.HandleMessage(m) })
	net.Register(id, tu)
	return tu
}

// Bind attaches the device controller behind the shim.
func (tu *PassTU) Bind(h noc.Handler) { tu.inner = h }

// Send implements noc.Port for the device's outbound messages.
func (tu *PassTU) Send(m *proto.Message) {
	cp := *m
	cp.Src = tu.ID
	tu.outQ.Post(&cp)
}

// HandleMessage implements noc.Handler for inbound messages.
func (tu *PassTU) HandleMessage(m *proto.Message) {
	tu.inQ.Post(m)
}
