//go:build spandexmut

package core

import (
	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// SetMutDropInvAck arms (or, with nil, disarms) the lost-InvAck fault:
// acks for which f returns true are dropped before the LLC counts them.
func SetMutDropInvAck(f func(m *proto.Message) bool) { mutDropInvAck = f }

// SetMutSkipRvkOFwd arms (or, with nil, disarms) the missing-RvkO fault:
// f maps the set of words handleReqS would revoke from self-invalidating
// owners to the set actually forwarded (return 0 to drop the probe).
func SetMutSkipRvkOFwd(f func(mask memaddr.WordMask) memaddr.WordMask) { mutSkipRvkOFwd = f }
