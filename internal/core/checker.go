package core

import (
	"fmt"

	"spandex/internal/detsort"
	"spandex/internal/memaddr"
	"spandex/internal/proto"
	"spandex/internal/sim"
)

// DefaultMaxViolations caps Checker.Violations when MaxViolations is left
// zero: a badly corrupted run repeats the same broken invariant on every
// transition, and an unbounded slice would turn one bug into an OOM.
const DefaultMaxViolations = 100

// Violation is one failed invariant, carrying enough context — simulation
// cycle, line address, and the (LLC state, message) pair being processed —
// to reproduce the failure standalone (re-run the same config/workload with
// -check and break at the cycle).
type Violation struct {
	// Cycle is the simulation time at which the invariant failed.
	Cycle sim.Time
	// Line is the line address the violated invariant concerns.
	Line memaddr.LineAddr
	// State is the canonical LLC state label (see stateLabel) the line was
	// in when the triggering message began processing; empty if the
	// violation was raised outside message processing (e.g. a TU audit).
	State string
	// Msg is the Ident of the message being processed, if any.
	Msg string
	// Text is the human-readable description of the broken invariant.
	Text string
}

func (v Violation) String() string {
	ctx := fmt.Sprintf("cycle=%d line=%#x", uint64(v.Cycle), uint64(v.Line))
	if v.State != "" {
		ctx += " state=" + v.State
	}
	if v.Msg != "" {
		ctx += " msg=" + v.Msg
	}
	return "[" + ctx + "] " + v.Text
}

// DeviceProbe lets the checker inspect a device cache's coherence state
// without going through the protocol.
type DeviceProbe interface {
	// ProbeOwned returns every word the device currently holds in stable
	// Owned state. Words whose ownership grant is still in flight toward
	// the device are excluded — only stable O is reported.
	ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask
}

// Checker validates Spandex coherence invariants. Per-transition checks
// are structural and cheap; CheckQuiescent performs a global cross-device
// audit once the system has drained.
type Checker struct {
	probes map[proto.NodeID]DeviceProbe
	// Violations collects failed invariants instead of panicking when
	// Collect is true (used by tests asserting detection). At most
	// MaxViolations entries are kept; Dropped counts the overflow.
	Collect    bool
	Violations []Violation
	// MaxViolations bounds len(Violations); zero means
	// DefaultMaxViolations.
	MaxViolations int
	// Dropped counts violations discarded once the cap was reached.
	Dropped int
	// ctx is the (cycle, line, state, msg) context of the message currently
	// being processed, stamped onto every violation raised under it.
	ctx Violation
	// CheckEveryTransition arms the deep per-transition audit: on top of
	// CheckLine's structural checks, every LLC state change is audited for
	// SWMR/disjointness invariants (CheckTransition) and every MESI TU
	// message for bookkeeping consistency (MESITU audit). Costs roughly a
	// full scan of the TU's pending maps per message; see EXPERIMENTS.md
	// for the measured overhead.
	CheckEveryTransition bool
}

// NewChecker creates an empty checker.
func NewChecker() *Checker {
	return &Checker{probes: make(map[proto.NodeID]DeviceProbe)}
}

// AttachDevice registers a device's probe for quiescent auditing.
func (c *Checker) AttachDevice(id proto.NodeID, p DeviceProbe) {
	c.probes[id] = p
}

// SetContext stamps the processing context copied onto every violation
// raised until the next SetContext. The LLC calls it (via observe) when a
// message starts processing; the MESI TU calls it from its audit.
func (c *Checker) SetContext(cycle sim.Time, line memaddr.LineAddr, state, msg string) {
	c.ctx = Violation{Cycle: cycle, Line: line, State: state, Msg: msg}
}

func (c *Checker) fail(format string, args ...interface{}) {
	v := c.ctx
	v.Text = fmt.Sprintf(format, args...)
	if c.Collect {
		max := c.MaxViolations
		if max <= 0 {
			max = DefaultMaxViolations
		}
		if len(c.Violations) >= max {
			c.Dropped++
			return
		}
		c.Violations = append(c.Violations, v)
		return
	}
	panic("core: invariant violated: " + v.String())
}

// CheckLine validates the structural invariants of one LLC line after a
// transition.
func (c *Checker) CheckLine(l *LLC, line memaddr.LineAddr) {
	e := l.array.Peek(line)
	if e == nil {
		return
	}
	st := &e.State
	for i := 0; i < memaddr.WordsPerLine; i++ {
		owned := st.ownedMask.Has(i)
		if owned && (st.owner[i] < 0 || int(st.owner[i]) >= len(l.devices)) {
			c.fail("line %#x word %d owned with bad owner %d", uint64(line), i, st.owner[i])
		}
		if !owned && st.owner[i] != noOwner {
			c.fail("line %#x word %d not owned but owner %d recorded", uint64(line), i, st.owner[i])
		}
	}
	if st.shared {
		// Shared and Owned coexist only during a blocking ReqS(1)
		// revocation (paper §III-B).
		if st.ownedMask != 0 {
			if t, ok := l.txns[line]; !ok || t.kind != txnRvk {
				c.fail("line %#x Shared with owned words %#04x outside a revocation",
					uint64(line), uint16(st.ownedMask))
			}
		}
		if st.sharers == 0 {
			c.fail("line %#x Shared with empty sharer set", uint64(line))
		}
	}
	if st.fetching {
		if _, ok := l.txns[line]; !ok {
			c.fail("line %#x fetching without a transaction", uint64(line))
		}
	}
}

// CheckTransition performs the deep per-transition audit of one LLC line
// (CheckEveryTransition mode). CheckLine validates the owner-array
// representation; this adds the invariants that must hold in every stable
// state: sharer bits only for registered devices, no sharers without the
// line-level Shared state, no ownership or sharers on a line whose data
// has not arrived from memory, and — outside a blocking transaction — no
// device simultaneously owning a word and sharing the line (SWMR).
func (c *Checker) CheckTransition(l *LLC, line memaddr.LineAddr) {
	e := l.array.Peek(line)
	if e == nil {
		return
	}
	st := &e.State
	if extra := st.sharers >> uint(len(l.devices)); extra != 0 {
		c.fail("line %#x has sharer bits %#x beyond the %d registered devices",
			uint64(line), st.sharers, len(l.devices))
	}
	if !st.shared && st.sharers != 0 {
		c.fail("line %#x has sharer bits %#x without Shared state", uint64(line), st.sharers)
	}
	if st.fetching {
		if st.ownedMask != 0 {
			c.fail("line %#x fetching with owned words %#04x", uint64(line), uint16(st.ownedMask))
		}
		if st.shared || st.sharers != 0 {
			c.fail("line %#x fetching with sharers", uint64(line))
		}
	}
	if _, mid := l.txns[line]; !mid && st.shared {
		st.ownedMask.ForEach(func(i int) {
			o := st.owner[i]
			if o >= 0 && int(o) < len(l.devices) && st.sharers&(1<<uint(o)) != 0 {
				c.fail("line %#x word %d: device index %d both owns the word and shares the line",
					uint64(line), i, o)
			}
		})
	}
}

// CheckQuiescent audits the whole system after the simulation drains:
// every word the LLC records as owned must be owned by exactly that
// device, every device-owned word must be recorded at the LLC (the
// inclusivity requirement, paper §III-F), and no transactions may remain.
func (c *Checker) CheckQuiescent(l *LLC) error {
	if len(l.txns) != 0 {
		line := detsort.Keys(l.txns)[0]
		t := l.txns[line]
		return fmt.Errorf("core: line %#x still has %s txn with %d waiters at quiescence",
			uint64(line), t.kind, len(t.waiting))
	}

	deviceOwned := make(map[memaddr.LineAddr][memaddr.WordsPerLine]int8)
	for _, id := range detsort.Keys(c.probes) {
		idx := int8(l.devIdx[id])
		owned := c.probes[id].ProbeOwned()
		for _, line := range detsort.Keys(owned) {
			if !l.HomesLine(line) {
				// Another bank of an interleaved LLC homes this line; its
				// own CheckQuiescent call audits it.
				continue
			}
			mask := owned[line]
			owners := deviceOwned[line]
			conflict := error(nil)
			mask.ForEach(func(i int) {
				if owners[i] != 0 {
					conflict = fmt.Errorf("core: word %d of line %#x owned by two devices (%d and %d)",
						i, uint64(line), owners[i]-1, idx)
				}
				owners[i] = idx + 1 // +1 so zero means "none"
			})
			if conflict != nil {
				return conflict
			}
			deviceOwned[line] = owners
		}
	}

	var err error
	l.array.ForEach(func(e *cacheEntry) {
		if err != nil {
			return
		}
		st := &e.State
		owners := deviceOwned[e.Line]
		for i := 0; i < memaddr.WordsPerLine; i++ {
			llcSays := st.ownedMask.Has(i)
			devSays := owners[i] != 0
			switch {
			case llcSays && !devSays:
				err = fmt.Errorf("core: LLC thinks device %d owns word %d of line %#x; no device agrees",
					st.owner[i], i, uint64(e.Line))
			case !llcSays && devSays:
				err = fmt.Errorf("core: device %d owns word %d of line %#x but the LLC lost the record (inclusivity)",
					owners[i]-1, i, uint64(e.Line))
			case llcSays && devSays && st.owner[i] != owners[i]-1:
				err = fmt.Errorf("core: owner mismatch on word %d of line %#x: LLC=%d device=%d",
					i, uint64(e.Line), st.owner[i], owners[i]-1)
			}
			if err != nil {
				return
			}
		}
		delete(deviceOwned, e.Line)
	})
	if err != nil {
		return err
	}
	for _, line := range detsort.Keys(deviceOwned) {
		owners := deviceOwned[line]
		for i, o := range owners {
			if o != 0 {
				return fmt.Errorf("core: device %d owns word %d of uncached line %#x (inclusivity)",
					o-1, i, uint64(line))
			}
		}
	}
	return nil
}
