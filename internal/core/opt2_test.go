package core_test

import (
	"testing"

	"spandex/internal/core"
	"spandex/internal/denovo"
	"spandex/internal/dram"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// opt2Rig: one MESI CPU (behind a TU) and one DeNovo device on an LLC
// configured for ReqS option (2) — every MESI read is answered as a ReqV
// and the requestor downgrades afterwards (Table III option 2).
func newOpt2Rig(t *testing.T) *srig {
	r := &srig{t: t, eng: sim.New(), st: stats.New()}
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), 4)
	llcID, memID := proto.NodeID(2), proto.NodeID(3)
	r.llc = core.NewLLC(llcID, memID, r.eng, r.net, r.st,
		core.Config{SizeBytes: 64 * 1024, Ways: 8,
			AccessLatency: 12 * sim.CPUCycle, ReqSOption2: true})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	r.chk = core.NewChecker()
	r.llc.SetChecker(r.chk)

	tu := core.NewMESITU(0, r.eng, r.net, r.st, llcID, sim.CPUCycle)
	m := mesi.New(0, r.eng, tu, r.st, mesi.DefaultConfig(llcID))
	tu.Bind(m)
	r.llc.RegisterDevice(0, true)
	r.chk.AttachDevice(0, tu)
	r.mesi = append(r.mesi, m)

	ptu := core.NewPassTU(1, r.eng, r.net, sim.CPUCycle)
	d := denovo.New(1, r.eng, ptu, r.st, denovo.DefaultConfig(llcID, false))
	ptu.Bind(d)
	r.llc.RegisterDevice(1, false)
	r.chk.AttachDevice(1, d)
	r.dn = append(r.dn, d)
	return r
}

func TestReqSOption2ReadCompletesButDoesNotCache(t *testing.T) {
	r := newOpt2Rig(t)
	cpu := r.mesi[0]
	// Seed memory through the DeNovo device.
	r.store(r.dn[0], 0x1000, 42)

	if v := r.load(cpu, 0x1000); v != 42 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("llc.reqs.opt2") == 0 {
		t.Fatal("option 2 path not taken")
	}
	// Option 2: the line must NOT be cached afterwards — the next read
	// misses again.
	if s := cpu.State(0x1000); s != mesi.I {
		t.Fatalf("state = %v, want I (downgrade after read)", s)
	}
	misses := r.st.Get("mesil1.miss")
	if v := r.load(cpu, 0x1000); v != 42 {
		t.Fatalf("v = %d", v)
	}
	if r.st.Get("mesil1.miss") != misses+1 {
		t.Fatal("second read did not miss")
	}
	// No Shared state and no ownership transfer at the LLC (the whole
	// point of option 2: zero coherence-state overhead for reads).
	if r.st.Get("llc.reqs.opt1") != 0 || r.st.Get("llc.reqs.opt3") != 0 {
		t.Fatal("other ReqS options used under ReqSOption2")
	}
}

func TestReqSOption2ReadFromOwner(t *testing.T) {
	// The DeNovo device keeps ownership across an option-2 read: the read
	// is forwarded as ReqV and the owner is not downgraded.
	r := newOpt2Rig(t)
	r.store(r.dn[0], 0x2000, 7)
	if v := r.load(r.mesi[0], 0x2000); v != 7 {
		t.Fatalf("v = %d", v)
	}
	if r.dn[0].ProbeOwned()[0x2000] != 0b1 {
		t.Fatal("option-2 read revoked the owner")
	}
}

func TestReqSOption2WritesStillWork(t *testing.T) {
	r := newOpt2Rig(t)
	cpu := r.mesi[0]
	r.store(cpu, 0x3000, 9)
	if s := cpu.State(0x3000); s != mesi.M {
		t.Fatalf("state = %v", s)
	}
	if v := r.load(r.dn[0], 0x3000); v != 9 {
		t.Fatalf("remote v = %d", v)
	}
	r.run()
}
