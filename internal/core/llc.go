// Package core implements the paper's primary contribution: the Spandex
// LLC (paper §III-B) and the per-device translation units (§III-D) that
// let MESI, GPU-coherence and DeNovo caches — and future devices — share
// one flat coherence interface.
//
// The LLC tracks four stable states. Invalid/Valid/Shared are line-level
// (two bits per line), while Owned is tracked per word with the owning
// device's ID (paper: the owner ID is stored in the data field of owned
// words; we model that with an explicit owner array and charge the storage
// overhead in documentation rather than bytes). In the common case requests
// are handled immediately with no blocking state; the only blocking
// transitions are (1) writes to Shared lines, which wait for sharer
// invalidations, (2) ReqS/ReqWT+data to remotely-owned words, which wait
// for the owner's write-back, and (3) structural line fetches/evictions.
package core

import (
	"fmt"
	"math/bits"
	"strings"

	"spandex/internal/cache"
	"spandex/internal/detsort"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/obs"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// noOwner marks an un-owned word in the owner array.
const noOwner = -1

// cacheEntry abbreviates the LLC's array entry type.
type cacheEntry = cache.Entry[llcLine]

// llcLine is the Spandex LLC's per-line state.
type llcLine struct {
	// shared is the line-level S state (writer-invalidated sharers exist).
	shared bool
	// fetching marks a line whose data is still arriving from memory.
	fetching bool
	// sharers is a bitset of device indices holding the line in S.
	sharers uint64
	// ownedMask marks words owned by some device.
	ownedMask memaddr.WordMask
	// owner[i] is the device index owning word i (valid iff ownedMask bit).
	owner [memaddr.WordsPerLine]int8
	// data holds the up-to-date value of every non-owned word.
	data memaddr.LineData
	// dirty marks words modified relative to DRAM.
	dirty memaddr.WordMask
}

// txnKind classifies an in-flight blocking transaction on a line.
type txnKind uint8

const (
	// txnFetch: line being allocated and fetched from memory.
	txnFetch txnKind = iota
	// txnInv: waiting for sharer invalidation acks.
	txnInv
	// txnRvk: waiting for an owner's write-back (RvkO or forwarded ReqS).
	txnRvk
	// txnEvict: victim line being revoked/flushed before replacement.
	txnEvict
)

func (k txnKind) String() string {
	switch k {
	case txnFetch:
		return "fetch"
	case txnInv:
		return "inv"
	case txnRvk:
		return "rvk"
	case txnEvict:
		return "evict"
	}
	return "txn?"
}

// llcTxn is one blocking transaction. While it exists, new requests to the
// same line queue in waiting and are re-dispatched in order on completion.
type llcTxn struct {
	kind    txnKind
	line    memaddr.LineAddr
	waiting []proto.Message

	// origin is the request that started a txnInv/txnRvk, completed when
	// the transaction resolves. Valid only for those kinds (txns are
	// pool-recycled, so a stale origin may linger on other kinds).
	origin proto.Message

	// pendingAcks counts outstanding InvAcks (txnInv).
	pendingAcks int
	// rvkMask is the set of words whose ownership must clear (txnRvk).
	rvkMask memaddr.WordMask
	// serveMask: words of a blocked ReqS the LLC itself must answer once
	// their (non-MESI) owners have written back.
	serveMask memaddr.WordMask

	// evict bookkeeping (txnEvict): the fetch transaction to resume.
	resume func()
	// rvkID stamps a txnEvict's RvkO probes so late RspRvkOs from an
	// earlier eviction epoch of the same line cannot be mistaken for
	// answers to this one (txnRvk probes are identified by origin's
	// Requestor/ReqID instead).
	rvkID uint64
}

// newTxn takes a transaction from the pool and resets it for kind/line,
// keeping the waiting queue's backing array from its previous life. The
// caller fills kind-specific fields (origin, masks, resume) afterwards.
func (l *LLC) newTxn(kind txnKind, line memaddr.LineAddr) *llcTxn {
	t := l.txnPool.Get()
	*t = llcTxn{kind: kind, line: line, waiting: t.waiting[:0]}
	return t
}

// freeTxn returns a resolved transaction to the pool. It must only be
// called after the transaction is out of l.txns and fully drained: the
// next newTxn reuses both the struct and its queue memory.
func (l *LLC) freeTxn(t *llcTxn) { l.txnPool.Put(t) }

// Config holds the Spandex LLC parameters.
type Config struct {
	SizeBytes int
	Ways      int
	// AccessLatency is charged to every request the LLC processes.
	AccessLatency sim.Time
	// ReqSOption2 selects Table III's option (2) for every ReqS: treat it
	// as a ReqV, with the requesting cache downgrading to Invalid after
	// the read. It avoids Shared-state complexity entirely but precludes
	// requestor-side reuse; the paper's evaluation uses options (1)/(3)
	// (the default here), and this knob exists for the ablation the
	// paper's discussion invites.
	ReqSOption2 bool
	// BankStride is the bank count of the address-interleaved LLC this
	// instance is one bank of. A bank only ever sees lines whose index is
	// congruent to its bank number mod the stride, so set selection
	// divides the line index by it first (see cache.Array.SetIndexStride).
	// 0 or 1 means a single flat LLC.
	BankStride int
	// BankIndex is this bank's position in the interleaved array (0 when
	// BankStride <= 1). A line is homed here iff
	// proto.BankOf(line, BankStride) == BankIndex.
	BankIndex int
}

// LLC is the Spandex last-level cache and coherence point.
type LLC struct {
	ID    proto.NodeID
	MemID proto.NodeID

	eng *sim.Engine
	net *noc.Network
	st  *stats.Stats
	cfg Config

	array *cache.Array[llcLine]
	txns  map[memaddr.LineAddr]*llcTxn

	// txnPool recycles llcTxn structs (and their waiting queues' backing
	// arrays) across blocking transactions; see newTxn/freeTxn.
	txnPool sim.Pool[llcTxn]

	devices []proto.NodeID

	// out is the sendV scratch slot (see sendV).
	out    proto.Message
	devIdx map[proto.NodeID]int
	isMESI []bool

	checker  *Checker
	coverage *TransitionCoverage
	obs      *obs.Recorder

	// rvkSeq numbers eviction revocation probes (see llcTxn.rvkID).
	rvkSeq uint64

	// dispq defers each delivered message by AccessLatency into dispatch
	// (pooled; see noc.DelayQueue).
	dispq *noc.DelayQueue

	// allocWait holds lines whose fetch is parked because every frame in
	// the target set is mid-transaction; txnResolved wakes them (see
	// retryAllocWaiters). allocWakeup coalesces wakeup events.
	allocWait   []memaddr.LineAddr
	allocWakeup bool
}

// NewLLC creates a Spandex LLC endpoint.
func NewLLC(id, memID proto.NodeID, eng *sim.Engine, net *noc.Network, st *stats.Stats, cfg Config) *LLC {
	l := &LLC{
		ID: id, MemID: memID, eng: eng, net: net, st: st, cfg: cfg,
		array:  cache.NewArray[llcLine](cfg.SizeBytes, cfg.Ways),
		txns:   make(map[memaddr.LineAddr]*llcTxn),
		devIdx: make(map[proto.NodeID]int),
	}
	l.array.SetIndexStride(cfg.BankStride)
	l.dispq = noc.NewDelayQueue(eng, cfg.AccessLatency, l.dispatch)
	net.Register(id, l)
	return l
}

// RegisterDevice declares a device endpoint attached to the LLC. isMESI
// devices trigger the ReqS option-(1) policy when they own target words
// (paper §III-B "Supporting Shared State").
func (l *LLC) RegisterDevice(id proto.NodeID, isMESI bool) {
	if _, ok := l.devIdx[id]; ok {
		panic("core: device registered twice")
	}
	if len(l.devices) >= 64 {
		panic("core: more than 64 devices")
	}
	l.devIdx[id] = len(l.devices)
	l.devices = append(l.devices, id)
	l.isMESI = append(l.isMESI, isMESI)
}

// HomesLine reports whether this LLC instance is the target line's home
// bank (always true for a flat single-bank LLC).
func (l *LLC) HomesLine(line memaddr.LineAddr) bool {
	return l.cfg.BankStride <= 1 || proto.BankOf(line, l.cfg.BankStride) == l.cfg.BankIndex
}

// SetChecker installs an invariant checker consulted on every transition.
func (l *LLC) SetChecker(c *Checker) { l.checker = c }

// SetObserver installs the observability recorder; nil disables
// instrumentation. The LLC emits EvLLCBlock when a tracked request parks
// behind (or starts) a blocking transaction, EvLLCUnblock when it
// resumes, EvLLCForward on owner indirection, and EvOccupancy samples of
// the live blocking-transaction count.
func (l *LLC) SetObserver(r *obs.Recorder) { l.obs = r }

// blockEv/unblockEv/txnOcc are the nil-guarded emission helpers; callers
// check l.obs != nil before calling so the disabled path is one compare.
func (l *LLC) blockEv(m *proto.Message) {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCBlock,
		Node: l.ID, Trace: m.Trace, Msg: m})
}

func (l *LLC) unblockEv(m *proto.Message) {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCUnblock,
		Node: l.ID, Trace: m.Trace, Msg: m})
}

func (l *LLC) txnOcc() {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvOccupancy,
		Node: l.ID, Res: "llc.txns", Arg: uint64(len(l.txns))})
}

// conflictEv/evictEv/revokeEv/ownerEv/sharerEv feed the metrics engine's
// contention telemetry: set conflicts, evictions, revoked words, word-
// ownership moves, and sharer-set churn. Same nil-guard convention.
func (l *LLC) conflictEv(line memaddr.LineAddr) {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCConflict,
		Node: l.ID, Addr: memaddr.Addr(line), Arg: uint64(l.array.SetIndex(line))})
}

func (l *LLC) evictEv(line memaddr.LineAddr) {
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCEvict,
		Node: l.ID, Addr: memaddr.Addr(line), Arg: uint64(l.array.SetIndex(line))})
}

func (l *LLC) revokeEv(line memaddr.LineAddr, words memaddr.WordMask) {
	if words == 0 {
		return
	}
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCRevoke,
		Node: l.ID, Addr: memaddr.Addr(line), Arg: uint64(words.Count())})
}

func (l *LLC) ownerEv(line memaddr.LineAddr, words memaddr.WordMask) {
	if words == 0 {
		return
	}
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLineOwner,
		Node: l.ID, Addr: memaddr.Addr(line), Arg: uint64(words.Count())})
}

func (l *LLC) sharerEv(line memaddr.LineAddr, flipped int) {
	if flipped == 0 {
		return
	}
	l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLineSharer,
		Node: l.ID, Addr: memaddr.Addr(line), Arg: uint64(flipped)})
}

// StuckReport describes every in-flight blocking transaction, one line
// each: kind, line address, outstanding acks, unrevoked words, and the
// queued request types. When a run aborts at MaxTime this is the state
// that tells a deadlocked protocol cycle apart from a merely slow run —
// the fuzzer folds it into the abort error so a minimized deadlock names
// the transactions that wedged.
func (l *LLC) StuckReport() string {
	var b strings.Builder
	for _, line := range detsort.Keys(l.txns) {
		t := l.txns[line]
		fmt.Fprintf(&b, "  llc txn %s line %#x", t.kind, uint64(line))
		if t.pendingAcks != 0 {
			fmt.Fprintf(&b, " pendingAcks=%d", t.pendingAcks)
		}
		if t.rvkMask != 0 {
			fmt.Fprintf(&b, " rvkMask=%#x", uint64(t.rvkMask))
		}
		if len(t.waiting) > 0 {
			fmt.Fprintf(&b, " waiting=[")
			for i, w := range t.waiting {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "%s from dev%d", w.Type, l.dev(w.Requestor))
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// afterTransition runs the configured invariant checks once a message has
// finished mutating a line's state.
func (l *LLC) afterTransition(line memaddr.LineAddr) {
	if l.checker == nil {
		return
	}
	l.checker.CheckLine(l, line)
	if l.checker.CheckEveryTransition {
		l.st.Inc("check.transition", 1)
		l.checker.CheckTransition(l, line)
	}
}

func (l *LLC) dev(id proto.NodeID) int {
	i, ok := l.devIdx[id]
	if !ok {
		panic(fmt.Sprintf("core: message from unregistered device %d", id))
	}
	return i
}

// HandleMessage implements noc.Handler. Requests are charged the LLC
// access latency and then processed atomically in arrival order.
func (l *LLC) HandleMessage(m *proto.Message) {
	l.dispq.Post(m)
	if l.obs != nil {
		l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvOccupancy,
			Node: l.ID, Res: "llc.reqq", Arg: uint64(l.dispq.Depth())})
	}
}

// dispatch routes a message, queuing requests that hit a blocked line.
func (l *LLC) dispatch(m *proto.Message) {
	// Proofs for (state, message) pairs that can never occur, consumed by
	// spandex-transgraph -diff (gap classification) and spandex-flow
	// (completeness exceptions). "Plain SO" below means SO with no open
	// transaction on the line.
	//
	//spandex:unreachable ReqV,ReqS,ReqWT,ReqO,ReqWTData,ReqOData,ReqWB,RspRvkO at=SO plain SO never exists at rest: Shared is only granted by line-granularity MESI ReqS, whose option-(1) revocation (SO+rvk) covers every owned word and resolves to S, writes clear sharing before granting ownership, and requests queue while the revocation is open
	//spandex:unreachable InvAck,ReqWB,RspRvkO at=O+inv txnInv opens via invalidateSharers on a shared line, and a shared line at rest has no owned words (plain SO is unreachable), so a sharer invalidation always runs with base state V — O+inv never occurs
	//spandex:unreachable ReqWB,RspRvkO at=SO+evict evict() only captures victims with no open transaction, and plain SO never exists at rest, so an eviction never starts from SO
	//spandex:unreachable InvAck at=I|I+fetch|F+fetch|V|S|O|SO|O+rvk|SO+rvk|O+evict|SO+evict every Inv is solicited by the open txnInv/txnEvict on its line and counted in pendingAcks, and the transaction cannot resolve before the last ack arrives, so an InvAck always finds V+inv, O+inv or V+evict
	//spandex:unreachable MemReadRsp at=I|I+fetch|V|S|O|SO|V+inv|O+inv|O+rvk|SO+rvk|V+evict|O+evict|SO+evict MemRead is issued exactly once per fetch, after the frame is installed (F+fetch), and a fetching line is never chosen as an eviction victim, so the response always finds F+fetch
	//
	// Flow facts for the whole-system checker (spandex-flow). Device
	// requests queue behind any open transaction; completions never do.
	// Each transaction suffix waits for the listed responses, supplied by
	// the probes/reads sent when it opened. Forwards and revocations only
	// target owner-capable device kinds (gpucoh never takes ownership),
	// and the full-line MESI ReqS is only ever forwarded to a MESI TU —
	// denovo owners are revoked instead (option 1).
	//
	//spandex:flow queue ReqV,ReqS,ReqWT,ReqO,ReqWTData,ReqOData at=I+fetch|F+fetch|V+inv|O+inv|O+rvk|SO+rvk|V+evict|O+evict|SO+evict
	//spandex:flow wait +fetch awaits=MemReadRsp via=MemRead
	//spandex:flow wait +inv awaits=InvAck via=Inv
	//spandex:flow wait +rvk awaits=RspRvkO,ReqWB via=RvkO
	//spandex:flow wait +evict awaits=RspRvkO,InvAck via=RvkO,Inv opener=any
	//spandex:flow emit ReqV dst=core-mesitu,denovo-l1
	//spandex:flow emit ReqS dst=core-mesitu
	//spandex:flow emit ReqWT dst=core-mesitu,denovo-l1
	//spandex:flow emit ReqO dst=core-mesitu,denovo-l1
	//spandex:flow emit ReqOData dst=core-mesitu,denovo-l1
	//spandex:flow emit RvkO dst=core-mesitu,denovo-l1
	switch m.Type {
	case proto.RspRvkO:
		l.handleRspRvkO(m)
		return
	case proto.InvAck:
		l.handleInvAck(m)
		return
	case proto.MemReadRsp:
		l.handleMemRsp(m)
		return
	case proto.ReqWB:
		// Write-backs are never queued: they may be exactly what a txnRvk
		// is waiting for, and the writer retains data until acked, so
		// processing them immediately is always safe.
		l.handleReqWB(m)
		return
	case proto.ReqV, proto.ReqS, proto.ReqWT, proto.ReqO, proto.ReqWTData, proto.ReqOData:
		// Device requests fall through to the blocked-line queue below.
	default:
		panic("core: LLC cannot handle " + m.Type.String())
	}

	if t, ok := l.txns[m.Line]; ok {
		t.waiting = append(t.waiting, *m)
		l.st.Inc("llc.queued", 1)
		if l.obs != nil {
			l.blockEv(m)
		}
		return
	}

	e := l.array.Lookup(m.Line)
	if e == nil {
		l.startFetch(m)
		return
	}
	l.process(e, m)
}

// process handles a request against a present, unblocked line.
func (l *LLC) process(e *cache.Entry[llcLine], m *proto.Message) {
	l.observe(m)
	switch m.Type {
	case proto.ReqV:
		l.handleReqV(e, m)
	case proto.ReqS:
		l.handleReqS(e, m)
	case proto.ReqWT:
		l.handleReqWT(e, m)
	case proto.ReqO:
		l.handleReqO(e, m)
	case proto.ReqWTData:
		l.handleReqWTData(e, m)
	case proto.ReqOData:
		l.handleReqOData(e, m)
	default:
		panic("core: LLC cannot handle " + m.Type.String())
	}
	l.afterTransition(m.Line)
}

// send transmits a message from the LLC.
func (l *LLC) send(m *proto.Message) {
	m.Src = l.ID
	l.net.Send(m)
}

// sendV transmits a by-value message. Every network/port Send copies the
// message synchronously before anything downstream can run, so a single
// scratch slot per sender is safe and avoids a heap allocation per send
// (the &proto.Message{...} literal idiom escapes through the Port
// interface).
func (l *LLC) sendV(m proto.Message) {
	l.out = m
	l.send(&l.out)
}

// respond sends a response type for the masked words of m's line.
func (l *LLC) respond(m *proto.Message, typ proto.MsgType, mask memaddr.WordMask, withData bool, e *cache.Entry[llcLine]) {
	if mask == 0 {
		return
	}
	rsp := proto.Message{
		Type: typ, Dst: m.Requestor, Requestor: m.Requestor, ReqID: m.ReqID,
		Line: m.Line, Mask: mask, Trace: m.Trace,
	}
	if withData {
		rsp.HasData = true
		rsp.Data = e.State.data
	}
	l.sendV(rsp)
}

// ownerWords pairs a device index with the words it owns in one line.
type ownerWords struct {
	owner int
	words memaddr.WordMask
}

// ownerBuf is the caller-provided backing for ownersOf: sized for one
// entry per word (the worst case), it lives on the caller's stack so
// grouping owners does not allocate.
type ownerBuf [memaddr.WordsPerLine]ownerWords

// ownersOf groups the owned words of mask by owning device index, in
// ascending owner order (deterministic message emission). Results are
// appended into buf and the filled prefix returned.
func ownersOf(st *llcLine, mask memaddr.WordMask, buf *ownerBuf) []ownerWords {
	owned := mask & st.ownedMask
	if owned == 0 {
		return nil
	}
	var byOwner [64]memaddr.WordMask
	max := -1
	owned.ForEach(func(i int) {
		o := int(st.owner[i])
		byOwner[o] |= memaddr.MaskOf(i)
		if o > max {
			max = o
		}
	})
	out := buf[:0]
	for o := 0; o <= max; o++ {
		if byOwner[o] != 0 {
			out = append(out, ownerWords{owner: o, words: byOwner[o]})
		}
	}
	return out
}

// forward relays a request to each owner of the masked words, preserving
// the original requestor so owners respond directly (paper Fig. 1c/1d).
func (l *LLC) forward(e *cache.Entry[llcLine], m *proto.Message, typ proto.MsgType, mask memaddr.WordMask) {
	var owb ownerBuf
	for _, ow := range ownersOf(&e.State, mask, &owb) {
		fwd := proto.Message{
			Type: typ, Dst: l.devices[ow.owner],
			Requestor: m.Requestor, ReqID: m.ReqID,
			Line: m.Line, Mask: ow.words,
			Atomic: m.Atomic, Operand: m.Operand, Compare: m.Compare,
		}
		// RvkO forwards belong to a blocking revocation, not owner
		// indirection: the origin's wait is attributed to PhaseBlocked, so
		// the probe itself stays untracked.
		if typ != proto.RvkO {
			fwd.Trace = m.Trace
			if l.obs != nil {
				cp := fwd
				l.obs.Emit(obs.Event{At: l.eng.Now(), Kind: obs.EvLLCForward,
					Node: l.ID, Trace: m.Trace, Msg: &cp})
			}
		} else if l.obs != nil {
			l.revokeEv(m.Line, ow.words)
		}
		l.sendV(fwd)
		l.st.Inc("llc.forwards", 1)
	}
}

// --- request handlers (paper Table III) ---

// handleReqV: no LLC state change ever. Non-owned words answered from the
// LLC copy — including any other non-owned words of the line, implementing
// DeNovo's flexible-granularity responses ("the responding device may
// include any available up-to-date data in the line"). Owned words are
// forwarded to their owners, who respond directly to the requestor.
func (l *LLC) handleReqV(e *cache.Entry[llcLine], m *proto.Message) {
	//spandex:transition ReqV from=V|S|O|SO emits=RspV,ReqV
	st := &e.State
	fromLLC := memaddr.FullMask &^ st.ownedMask
	if m.Mask == 0 {
		panic("core: empty ReqV")
	}
	if m.Mask&^st.ownedMask != 0 {
		l.respond(m, proto.RspV, fromLLC, true, e)
	}
	l.forward(e, m, proto.ReqV, m.Mask&st.ownedMask)
}

// reqSPolicyOption1 decides between ReqS handling options (paper §IV:
// option (1) — grant Shared — if the line is already Shared or any target
// word is owned in a MESI core; otherwise option (3) — treat the request
// as ReqO+data, granting ownership).
func (l *LLC) reqSPolicyOption1(st *llcLine, mask memaddr.WordMask) bool {
	if st.shared {
		return true
	}
	opt1 := false
	(mask & st.ownedMask).ForEach(func(i int) {
		if l.isMESI[st.owner[i]] {
			opt1 = true
		}
	})
	return opt1
}

func (l *LLC) handleReqS(e *cache.Entry[llcLine], m *proto.Message) {
	// Table III, the three ReqS handling options:
	//spandex:transition ReqS from=V|S|O|SO emits=RspV,ReqV
	//spandex:transition ReqS from=V|O to=O emits=RspOData,ReqOData
	//spandex:transition ReqS from=S to=S emits=RspS
	//spandex:transition ReqS from=S|O|SO to=SO+rvk emits=RspS,ReqS,RvkO
	st := &e.State
	if l.cfg.ReqSOption2 {
		// Option (2): answer like a ReqV; the requestor's TU downgrades
		// its cache to Invalid once the read is satisfied, so no Shared
		// state or ownership transfer is needed.
		l.st.Inc("llc.reqs.opt2", 1)
		l.handleReqV(e, m)
		return
	}
	if !l.reqSPolicyOption1(st, m.Mask) {
		// Option (3): grant ownership instead of Shared state.
		l.st.Inc("llc.reqs.opt3", 1)
		l.handleReqOData(e, m)
		return
	}
	l.st.Inc("llc.reqs.opt1", 1)
	oldSharers := st.sharers
	st.shared = true
	st.sharers |= 1 << l.dev(m.Requestor)

	immediate := m.Mask &^ st.ownedMask
	l.respond(m, proto.RspS, immediate, true, e)

	ownedReq := m.Mask & st.ownedMask
	if ownedReq == 0 {
		if l.obs != nil {
			l.sharerEv(m.Line, bits.OnesCount64(st.sharers&^oldSharers))
		}
		return
	}
	// Owned words block the line until ownership clears (Table III:
	// ReqS(1) on O is a blocking transition to S). MESI owners handle a
	// forwarded ReqS natively: they downgrade M→S (joining the sharer
	// set), answer the requestor with RspS, and write back here. Words
	// owned by self-invalidating devices — which have no Shared state to
	// downgrade into — are revoked with RvkO instead, and the LLC answers
	// for them once the write-back lands.
	var mesiOwned, otherOwned memaddr.WordMask
	ownedReq.ForEach(func(i int) {
		if l.isMESI[st.owner[i]] {
			mesiOwned |= memaddr.MaskOf(i)
		} else {
			otherOwned |= memaddr.MaskOf(i)
		}
	})
	var owb ownerBuf
	for _, ow := range ownersOf(st, mesiOwned, &owb) {
		st.sharers |= 1 << ow.owner
	}
	if l.obs != nil {
		l.sharerEv(m.Line, bits.OnesCount64(st.sharers&^oldSharers))
	}
	l.forward(e, m, proto.ReqS, mesiOwned)
	rvkFwd := otherOwned
	if mutSkipRvkOFwd != nil {
		rvkFwd = mutSkipRvkOFwd(rvkFwd)
	}
	l.forward(e, m, proto.RvkO, rvkFwd)
	t := l.newTxn(txnRvk, m.Line)
	t.origin = *m
	t.rvkMask, t.serveMask = ownedReq, otherOwned
	l.txns[m.Line] = t
	l.st.Inc("llc.blocked.rvk", 1)
	if l.obs != nil {
		l.blockEv(m)
		l.txnOcc()
	}
}

// invalidateSharers begins a txnInv for a write request to a Shared line.
// The original message is re-processed once all acks arrive.
func (l *LLC) invalidateSharers(e *cache.Entry[llcLine], m *proto.Message) {
	st := &e.State
	t := l.newTxn(txnInv, m.Line)
	t.origin = *m
	reqIdx := -1
	if i, ok := l.devIdx[m.Requestor]; ok {
		reqIdx = i
	}
	for i := 0; i < len(l.devices); i++ {
		if st.sharers&(1<<i) == 0 || i == reqIdx {
			continue
		}
		t.pendingAcks++
		l.sendV(proto.Message{
			Type: proto.Inv, Dst: l.devices[i], Requestor: l.devices[i],
			Line: m.Line, Mask: memaddr.FullMask,
		})
	}
	// The requestor's own copy (if it was a sharer) upgrades in place;
	// the sharer set clears and the write re-processes once acks arrive.
	if l.obs != nil {
		l.sharerEv(m.Line, bits.OnesCount64(st.sharers))
	}
	st.sharers = 0
	st.shared = false
	if t.pendingAcks == 0 {
		// No remote sharers: proceed immediately.
		l.freeTxn(t)
		l.process(e, m)
		return
	}
	l.txns[m.Line] = t
	l.st.Inc("llc.blocked.inv", 1)
	if l.obs != nil {
		l.blockEv(m)
		l.txnOcc()
	}
}

func (l *LLC) handleReqWT(e *cache.Entry[llcLine], m *proto.Message) {
	//spandex:transition ReqWT from=S|SO to=V+inv|O+inv|V|O emits=Inv
	//spandex:transition ReqWT from=V|O to=V|O emits=RspWT,ReqWT
	st := &e.State
	if st.shared {
		l.invalidateSharers(e, m)
		return
	}
	owned := m.Mask & st.ownedMask
	plain := m.Mask &^ owned

	// Non-owned words: update the LLC copy and respond data-lessly.
	if plain != 0 {
		st.data.Merge(&m.Data, plain)
		st.dirty |= plain
	}
	l.respond(m, proto.RspWT, plain, false, e)

	// Owned words (Table III: ReqWT on O → V, forward ReqWT): the LLC
	// takes the new value immediately, clears ownership, and the old
	// owner — told via the forward — downgrades and acks the requestor
	// directly (paper Fig. 1d).
	if owned != 0 {
		l.forward(e, m, proto.ReqWT, owned)
		st.data.Merge(&m.Data, owned)
		st.dirty |= owned
		st.ownedMask &^= owned
		owned.ForEach(func(i int) { st.owner[i] = noOwner })
		if l.obs != nil {
			l.ownerEv(m.Line, owned)
		}
	}
}

func (l *LLC) handleReqO(e *cache.Entry[llcLine], m *proto.Message) {
	//spandex:transition ReqO from=S|SO to=V+inv|O+inv|O emits=Inv
	//spandex:transition ReqO from=V|O to=O emits=RspO,ReqO
	st := &e.State
	if st.shared {
		l.invalidateSharers(e, m)
		return
	}
	reqIdx := int8(l.dev(m.Requestor))
	owned := m.Mask & st.ownedMask
	// Words the requestor already owns (e.g. replays) need no transfer.
	var self memaddr.WordMask
	owned.ForEach(func(i int) {
		if st.owner[i] == reqIdx {
			self |= memaddr.MaskOf(i)
		}
	})
	transfer := owned &^ self
	plain := m.Mask &^ owned

	// Non-blocking ownership transfer (Table III: ReqO on O → O, fwd ReqO):
	// old owners are told to downgrade and ack the requestor directly.
	l.forward(e, m, proto.ReqO, transfer)
	m.Mask.ForEach(func(i int) { st.owner[i] = reqIdx })
	st.ownedMask |= m.Mask
	if l.obs != nil {
		l.ownerEv(m.Line, transfer|plain)
	}
	// Owned words' LLC copy is stale by definition; mark dirty so eviction
	// write-back fetches from the owner first.
	l.respond(m, proto.RspO, plain|self, false, e)
}

func (l *LLC) handleReqWTData(e *cache.Entry[llcLine], m *proto.Message) {
	//spandex:transition ReqWTData from=S|SO to=V+inv|O+inv|V emits=Inv,RspWTData
	//spandex:transition ReqWTData from=O to=O+rvk emits=RvkO
	//spandex:transition ReqWTData from=V to=V emits=RspWTData
	st := &e.State
	if st.shared {
		l.invalidateSharers(e, m)
		return
	}
	owned := m.Mask & st.ownedMask
	if owned != 0 {
		// Table III: ReqWT+data on O → blocking RvkO to the owner; the
		// update is performed here once up-to-date data returns (Fig. 1b).
		l.forward(e, m, proto.RvkO, owned)
		t := l.newTxn(txnRvk, m.Line)
		t.origin = *m
		t.rvkMask = owned
		l.txns[m.Line] = t
		l.st.Inc("llc.blocked.rvk", 1)
		if l.obs != nil {
			l.blockEv(m)
			l.txnOcc()
		}
		return
	}
	l.performUpdate(e, m)
}

// performUpdate applies a ReqWT+data operation at the LLC and responds
// with the pre-update value (paper §III-A).
func (l *LLC) performUpdate(e *cache.Entry[llcLine], m *proto.Message) {
	st := &e.State
	rsp := proto.Message{
		Type: proto.RspWTData, Dst: m.Requestor, Requestor: m.Requestor,
		ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, HasData: true,
		Trace: m.Trace,
	}
	m.Mask.ForEach(func(i int) {
		old := st.data[i]
		var operand uint32
		if m.HasData {
			operand = m.Data[i]
		} else {
			operand = m.Operand
		}
		nv, wrote := m.Atomic.Apply(old, operand, m.Compare)
		rsp.Data[i] = old
		if wrote {
			st.data[i] = nv
			st.dirty |= memaddr.MaskOf(i)
		}
	})
	l.sendV(rsp)
	l.st.Inc("llc.atomics", 1)
}

func (l *LLC) handleReqOData(e *cache.Entry[llcLine], m *proto.Message) {
	//spandex:transition ReqOData from=S|SO to=V+inv|O+inv|O emits=Inv
	//spandex:transition ReqOData from=V|O to=O emits=RspOData,ReqOData
	st := &e.State
	if st.shared {
		l.invalidateSharers(e, m)
		return
	}
	reqIdx := int8(l.dev(m.Requestor))
	owned := m.Mask & st.ownedMask
	var self memaddr.WordMask
	owned.ForEach(func(i int) {
		if st.owner[i] == reqIdx {
			self |= memaddr.MaskOf(i)
		}
	})
	transfer := owned &^ self
	plain := m.Mask &^ owned

	// Old owners hand data and ownership directly to the requestor;
	// no blocking state (paper §II-C / Table III: ReqO+data on O → O).
	// A ReqS resolved via option (3) also lands here; its requestor's TU
	// expects RspOData and grants Exclusive to the MESI cache.
	l.forward(e, m, proto.ReqOData, transfer)
	m.Mask.ForEach(func(i int) { st.owner[i] = reqIdx })
	st.ownedMask |= m.Mask
	if l.obs != nil {
		l.ownerEv(m.Line, transfer|plain)
	}
	if plain|self != 0 {
		l.respond(m, proto.RspOData, plain|self, true, e)
	}
}

// handleReqWB applies a write-back. Words the sender still owns are
// updated; words it no longer owns raced with an ownership transfer and
// are dropped (Table III: "ReqWB from non-owner → —").
func (l *LLC) handleReqWB(m *proto.Message) {
	// From an owner the write-back applies and may resolve a revocation or
	// eviction transaction (emitting the blocked request's response and, on
	// evictions, the victim flush + fetch); from a non-owner — after losing
	// a race with an ownership transfer, invalidation, or eviction, in
	// whatever state the line is in by then — it is dropped and acked.
	//spandex:transition ReqWB from=O|SO|O+rvk|SO+rvk|O+evict|SO+evict|O+inv to=V|S|O|SO|I|F+fetch emits=RspWB,RspS,RspWTData,MemWrite,MemRead
	//spandex:transition ReqWB from=V|S|I|I+fetch|F+fetch|V+inv|V+evict emits=RspWB
	l.observe(m)
	e := l.array.Peek(m.Line)
	senderIdx := int8(l.dev(m.Src))
	if e != nil {
		st := &e.State
		applied := memaddr.WordMask(0)
		(m.Mask & st.ownedMask).ForEach(func(i int) {
			if st.owner[i] == senderIdx {
				applied |= memaddr.MaskOf(i)
			}
		})
		if applied != 0 {
			st.data.Merge(&m.Data, applied)
			st.dirty |= applied
			st.ownedMask &^= applied
			applied.ForEach(func(i int) { st.owner[i] = noOwner })
			if l.obs != nil {
				l.ownerEv(m.Line, applied)
			}
		} else {
			l.st.Inc("llc.wb.nonowner", 1)
		}
	} else {
		// Inclusivity for owned data means the line must be present while
		// owned; a miss here means the sender lost ownership to an
		// eviction race and the data is stale.
		l.st.Inc("llc.wb.nonowner", 1)
	}
	l.sendV(proto.Message{
		Type: proto.RspWB, Dst: m.Src, Requestor: m.Src, ReqID: m.ReqID,
		Line: m.Line, Mask: m.Mask, Trace: m.Trace,
	})
	l.maybeCompleteRvk(m.Line)
	l.afterTransition(m.Line)
}

// handleRspRvkO absorbs an owner's write-back triggered by RvkO or a
// forwarded ReqS. Data is applied for words the sender still owns; the
// mask may be larger than requested (line-granularity devices write back
// the whole line, paper Fig. 1b).
func (l *LLC) handleRspRvkO(m *proto.Message) {
	// A revocation write-back is only meaningful while the transaction
	// whose RvkO solicited it is still open; the response echoes the
	// probe's (Requestor, ReqID) and both must match. Without a match the
	// transaction already resolved via the owner's racing ReqWB — and any
	// ownership the sender appears to hold *now* is a newer grant it
	// re-acquired after that write-back, so applying the response's stale
	// data or clearing the fresh ownership would corrupt the line. (Found
	// by the pressure fuzzer: a ReqWB/RvkO/ReqO crossing on a barrier
	// line left the LLC answering GPU spin reads from a stale copy.)
	//spandex:transition RspRvkO from=O+rvk|SO+rvk|O+evict|SO+evict to=V|S|O|SO|I|F+fetch|O+rvk|SO+rvk|O+evict|SO+evict emits=RspS,RspWTData,MemWrite,MemRead
	//spandex:transition RspRvkO from=V|S|O|SO|I|I+fetch|F+fetch|V+inv|O+inv|V+evict to=V|S|O|SO|I|I+fetch|F+fetch|V+inv|O+inv|V+evict
	l.observe(m)
	t, ok := l.txns[m.Line]
	if !ok || (t.kind != txnRvk && t.kind != txnEvict) || !l.rvkEchoMatches(t, m) {
		l.st.Inc("llc.rvko.stale", 1)
		return
	}
	e := l.array.Peek(m.Line)
	if e == nil {
		panic("core: RspRvkO for absent line")
	}
	if !m.HasData {
		// Data-less RspRvkO: the owner's write-back is already in flight
		// with the data (paper §III-C2, footnote 5); ownership clears when
		// that ReqWB arrives, which also resolves the waiting transaction.
		return
	}
	st := &e.State
	senderIdx := int8(l.dev(m.Src))
	applied := memaddr.WordMask(0)
	(m.Mask & st.ownedMask).ForEach(func(i int) {
		if st.owner[i] == senderIdx {
			applied |= memaddr.MaskOf(i)
		}
	})
	if applied != 0 {
		st.data.Merge(&m.Data, applied)
		st.dirty |= applied
		st.ownedMask &^= applied
		applied.ForEach(func(i int) { st.owner[i] = noOwner })
		if l.obs != nil {
			l.ownerEv(m.Line, applied)
		}
	}
	l.maybeCompleteRvk(m.Line)
	l.afterTransition(m.Line)
}

// rvkEchoMatches reports whether a RspRvkO echoes the identity of the
// revocation probe t sent: forwarded revocations (txnRvk) carry the origin
// request's (Requestor, ReqID); eviction revocations carry the LLC's own
// ID and the eviction sequence number. A mismatch means the response
// answers an older, already-resolved revocation of the same line.
func (l *LLC) rvkEchoMatches(t *llcTxn, m *proto.Message) bool {
	if t.kind == txnRvk {
		return m.Requestor == t.origin.Requestor && m.ReqID == t.origin.ReqID
	}
	return m.Requestor == l.ID && m.ReqID == t.rvkID
}

// maybeCompleteRvk resolves a txnRvk (or txnEvict) once every word it was
// waiting on has ceased to be owned — whether via RspRvkO or a racing
// ReqWB from the owner (paper §III-C2).
func (l *LLC) maybeCompleteRvk(line memaddr.LineAddr) {
	t, ok := l.txns[line]
	if !ok || (t.kind != txnRvk && t.kind != txnEvict) {
		return
	}
	e := l.array.Peek(line)
	if e == nil {
		panic("core: revocation txn on absent line")
	}
	if e.State.ownedMask&t.rvkMask != 0 {
		return // still waiting on some word
	}
	if t.pendingAcks > 0 {
		// A sharer-invalidating eviction has no revoked words, so the
		// ownedMask check above is vacuous; a stale non-owner ReqWB
		// arriving mid-eviction must not resolve it out from under the
		// outstanding InvAcks.
		return
	}
	delete(l.txns, line)
	l.txnResolved()
	if t.kind == txnEvict {
		t.resume()
		l.drain(t)
		l.freeTxn(t)
		return
	}
	if l.obs != nil {
		l.unblockEv(&t.origin)
		l.txnOcc()
	}
	// The blocked request resumes: for ReqWT+data, perform the update
	// now that data is home; for ReqS(1), MESI owners already sent
	// RspS directly, and the LLC now answers for any words it revoked
	// from self-invalidating owners.
	switch t.origin.Type {
	case proto.ReqWTData:
		l.performUpdate(e, &t.origin)
	case proto.ReqS:
		l.respond(&t.origin, proto.RspS, t.serveMask, true, e)
	default:
		panic("core: unexpected rvk origin " + t.origin.Type.String())
	}
	l.drain(t)
	l.freeTxn(t)
}

// handleInvAck counts sharer invalidation acks; when the last arrives the
// blocked write request proceeds.
func (l *LLC) handleInvAck(m *proto.Message) {
	// The last ack re-dispatches the blocked write (whose own handling is
	// observed separately) or, for evictions, flushes and replaces the
	// victim. Sharer invalidation clears the shared bit up front, so acks
	// arrive in V+inv (no owned words) or O+inv, never S+inv.
	//spandex:transition InvAck from=V+inv|O+inv to=V|O|O+rvk|V+inv|O+inv emits=RspWT,RspO,RspOData,RspWTData,RvkO,Inv
	//spandex:transition InvAck from=V+evict to=I|V+evict|F+fetch emits=MemWrite,MemRead
	if mutDropInvAck != nil && mutDropInvAck(m) {
		return
	}
	l.observe(m)
	t, ok := l.txns[m.Line]
	if !ok || (t.kind != txnInv && t.kind != txnEvict) {
		panic("core: stray InvAck")
	}
	t.pendingAcks--
	if t.pendingAcks > 0 {
		return
	}
	delete(l.txns, m.Line)
	l.txnResolved()
	if t.kind == txnEvict {
		t.resume()
		l.drain(t)
		l.freeTxn(t)
		return
	}
	e := l.array.Peek(m.Line)
	if e == nil {
		panic("core: InvAck for absent line")
	}
	if l.obs != nil {
		l.unblockEv(&t.origin)
		l.txnOcc()
	}
	l.process(e, &t.origin)
	l.drain(t)
	l.freeTxn(t)
}

// drain re-dispatches requests queued behind a completed transaction. If a
// re-dispatched request starts a new transaction, the remainder transfers
// to its queue, preserving order.
func (l *LLC) drain(t *llcTxn) {
	for i := range t.waiting {
		m := &t.waiting[i]
		if nt, ok := l.txns[t.line]; ok {
			nt.waiting = append(nt.waiting, t.waiting[i:]...)
			return
		}
		if l.obs != nil {
			l.unblockEv(m)
		}
		e := l.array.Lookup(t.line)
		if e == nil {
			rest := t.waiting[i:]
			l.startFetch(m)
			if nt, ok := l.txns[t.line]; ok && len(rest) > 1 {
				nt.waiting = append(nt.waiting, rest[1:]...)
			}
			return
		}
		l.process(e, m)
	}
}
