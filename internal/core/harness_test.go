package core

import (
	"testing"

	"spandex/internal/dram"
	"spandex/internal/memaddr"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// testDev is a scriptable device endpoint. By default it behaves like a
// well-formed word-granularity owner cache: it answers probes and forwards
// from its local owned-word store, which tests populate via ReqO/ReqO+data
// or directly.
type testDev struct {
	id   proto.NodeID
	h    *harness
	mesi bool

	owned map[memaddr.LineAddr]memaddr.WordMask
	data  map[memaddr.LineAddr]memaddr.LineData

	recv []proto.Message

	// nackReqV makes the device Nack forwarded ReqVs (simulating an owner
	// that already transitioned away, paper §III-C3).
	nackReqV bool
	// mute suppresses all automatic probe responses.
	mute bool
}

func (d *testDev) ProbeOwned() map[memaddr.LineAddr]memaddr.WordMask { return d.owned }

func (d *testDev) HandleMessage(m *proto.Message) {
	d.recv = append(d.recv, *m)
	if d.mute {
		return
	}
	switch m.Type {
	case proto.RspO, proto.RspOData:
		// Ownership grant: record it.
		d.owned[m.Line] |= m.Mask
		ld := d.data[m.Line]
		if m.HasData {
			ld.Merge(&m.Data, m.Mask)
		}
		d.data[m.Line] = ld
	case proto.RspV, proto.RspS, proto.RspWT, proto.RspWTData, proto.RspWB,
		proto.NackV, proto.RspRvkO:
		// responses: recorded only
	case proto.RvkO:
		d.respondRvk(m)
	case proto.Inv:
		d.send(&proto.Message{Type: proto.InvAck, Dst: d.h.llc.ID, Line: m.Line, Mask: m.Mask})
	case proto.ReqV:
		if d.nackReqV || d.owned[m.Line]&m.Mask != m.Mask {
			d.send(&proto.Message{Type: proto.NackV, Dst: m.Requestor,
				Requestor: m.Requestor, ReqID: m.ReqID, Line: m.Line, Mask: m.Mask})
			return
		}
		d.send(&proto.Message{Type: proto.RspV, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, HasData: true, Data: d.data[m.Line]})
	case proto.ReqO:
		d.owned[m.Line] &^= m.Mask
		d.send(&proto.Message{Type: proto.RspO, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask})
	case proto.ReqOData:
		rsp := &proto.Message{Type: proto.RspOData, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, HasData: true, Data: d.data[m.Line]}
		d.owned[m.Line] &^= m.Mask
		d.send(rsp)
	case proto.ReqWT:
		// Fig 1d: downgrade the written words and ack the requestor.
		d.owned[m.Line] &^= m.Mask
		d.send(&proto.Message{Type: proto.RspWT, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask})
	case proto.ReqS:
		// Owner downgrades to S: data to requestor, write-back to LLC.
		d.send(&proto.Message{Type: proto.RspS, Dst: m.Requestor, Requestor: m.Requestor,
			ReqID: m.ReqID, Line: m.Line, Mask: m.Mask, HasData: true, Data: d.data[m.Line]})
		d.respondRvk(m)
	default:
		panic("testDev: unhandled " + m.Type.String())
	}
}

func (d *testDev) respondRvk(m *proto.Message) {
	mask := d.owned[m.Line]
	if mask == 0 {
		mask = m.Mask
	}
	d.owned[m.Line] = 0
	// Echo the probe's identity (all real devices do): the LLC matches
	// RspRvkO against the open transaction's Requestor/ReqID.
	d.send(&proto.Message{Type: proto.RspRvkO, Dst: d.h.llc.ID,
		Requestor: m.Requestor, ReqID: m.ReqID, Line: m.Line,
		Mask: mask, HasData: true, Data: d.data[m.Line]})
}

func (d *testDev) send(m *proto.Message) {
	m.Src = d.id
	d.h.net.Send(m)
}

// req sends a Spandex request from the device and returns its ReqID.
func (d *testDev) req(typ proto.MsgType, line memaddr.LineAddr, mask memaddr.WordMask, mod func(*proto.Message)) uint64 {
	d.h.reqID++
	m := &proto.Message{Type: typ, Dst: d.h.llc.ID, Requestor: d.id,
		ReqID: d.h.reqID, Line: line, Mask: mask}
	if mod != nil {
		mod(m)
	}
	d.send(m)
	return d.h.reqID
}

// rspOf returns the recorded responses matching a request id.
func (d *testDev) rspOf(id uint64) []proto.Message {
	var out []proto.Message
	for _, m := range d.recv {
		if m.ReqID == id {
			out = append(out, m)
		}
	}
	return out
}

type harness struct {
	t     *testing.T
	eng   *sim.Engine
	st    *stats.Stats
	net   *noc.Network
	llc   *LLC
	mem   *dram.Memory
	devs  []*testDev
	chk   *Checker
	reqID uint64
}

// newHarness builds an LLC with n scriptable devices; devs[i].mesi is set
// for indices in mesiIdx.
func newHarness(t *testing.T, n int, mesiIdx ...int) *harness {
	h := &harness{t: t, eng: sim.New(), st: stats.New()}
	h.net = noc.New(h.eng, h.st, noc.DefaultConfig(), n+2)
	llcID := proto.NodeID(n)
	memID := proto.NodeID(n + 1)
	h.llc = NewLLC(llcID, memID, h.eng, h.net, h.st, Config{
		SizeBytes: 16 * 1024, Ways: 8, AccessLatency: 10 * sim.CPUCycle,
	})
	h.mem = dram.New(memID, h.eng, h.net, 100*sim.CPUCycle)
	h.chk = NewChecker()
	h.llc.SetChecker(h.chk)
	isMESI := map[int]bool{}
	for _, i := range mesiIdx {
		isMESI[i] = true
	}
	for i := 0; i < n; i++ {
		d := &testDev{id: proto.NodeID(i), h: h, mesi: isMESI[i],
			owned: map[memaddr.LineAddr]memaddr.WordMask{},
			data:  map[memaddr.LineAddr]memaddr.LineData{}}
		h.devs = append(h.devs, d)
		h.net.Register(d.id, d)
		h.llc.RegisterDevice(d.id, isMESI[i])
		h.chk.AttachDevice(d.id, d)
	}
	return h
}

func (h *harness) run() {
	if !h.eng.RunUntil(1 << 40) {
		h.t.Fatal("harness: simulation did not drain")
	}
}

// line returns the LLC state of a line, or nil.
func (h *harness) line(line memaddr.LineAddr) *llcLine {
	e := h.llc.array.Peek(line)
	if e == nil {
		return nil
	}
	return &e.State
}

func (h *harness) quiesce() {
	h.run()
	if err := h.chk.CheckQuiescent(h.llc); err != nil {
		h.t.Fatal(err)
	}
}

const L0 = memaddr.LineAddr(0x1000)
