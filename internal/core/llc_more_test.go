package core

import (
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

func TestCheckerDetectsDoubleOwner(t *testing.T) {
	h := newHarness(t, 2)
	h.devs[0].req(proto.ReqO, L0, 0b1, nil)
	h.quiesce()
	// Corrupt device 1's view: it claims a word the LLC assigned to dev 0.
	h.devs[1].owned[L0] = 0b1
	h.run()
	if err := h.chk.CheckQuiescent(h.llc); err == nil {
		t.Fatal("checker missed a double owner")
	}
}

func TestCheckerDetectsLostOwnership(t *testing.T) {
	h := newHarness(t, 2)
	h.devs[0].req(proto.ReqO, L0, 0b1, nil)
	h.quiesce()
	// The device silently drops its ownership (a protocol bug).
	h.devs[0].owned[L0] = 0
	if err := h.chk.CheckQuiescent(h.llc); err == nil {
		t.Fatal("checker missed LLC-side stale ownership")
	}
}

func TestCheckerDetectsInclusivityViolation(t *testing.T) {
	h := newHarness(t, 2)
	// Device claims a word of a line the LLC never cached.
	h.devs[0].owned[0x777000] = 0b1
	if err := h.chk.CheckQuiescent(h.llc); err == nil {
		t.Fatal("checker missed an inclusivity violation")
	}
}

func TestCheckerCollectMode(t *testing.T) {
	h := newHarness(t, 1)
	h.chk.Collect = true
	h.devs[0].req(proto.ReqV, L0, memaddr.FullMask, nil)
	h.run()
	// Corrupt the line in place: Shared with empty sharer set.
	e := h.llc.array.Peek(L0)
	e.State.shared = true
	h.chk.CheckLine(h.llc, L0)
	if len(h.chk.Violations) == 0 {
		t.Fatal("collect mode recorded nothing")
	}
}

func TestSharedLineEvictionInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 2, 0, 1) // both MESI
	m0, m1 := h.devs[0], h.devs[1]
	// Two sharers of line 0 (16KB/8way = 32 sets; 2KB stride conflicts).
	conflict := func(i uint64) memaddr.LineAddr { return memaddr.LineAddr(i * 32 * 64) }
	m0.req(proto.ReqS, conflict(0), memaddr.FullMask, nil)
	h.quiesce()
	m1.req(proto.ReqS, conflict(0), memaddr.FullMask, nil)
	h.quiesce()
	if !h.line(conflict(0)).shared {
		t.Fatal("line not Shared")
	}
	// Stream conflicting lines until the Shared victim is evicted.
	for i := uint64(1); i <= 8; i++ {
		m0.req(proto.ReqV, conflict(i), memaddr.FullMask, nil)
		h.quiesce()
	}
	if h.line(conflict(0)) != nil {
		t.Fatal("shared victim still cached")
	}
	inv0, inv1 := 0, 0
	for _, m := range m0.recv {
		if m.Type == proto.Inv && m.Line == conflict(0) {
			inv0++
		}
	}
	for _, m := range m1.recv {
		if m.Type == proto.Inv && m.Line == conflict(0) {
			inv1++
		}
	}
	if inv0 == 0 || inv1 == 0 {
		t.Fatalf("sharers not invalidated on eviction: %d/%d", inv0, inv1)
	}
}

func TestReqSMixedMESIAndDeNovoOwners(t *testing.T) {
	// Line with word 0 owned by a MESI device and word 1 by a DeNovo-like
	// device: option 1 applies; the MESI owner gets a forwarded ReqS, the
	// other owner gets RvkO, and the LLC serves the revoked word itself.
	h := newHarness(t, 3, 0) // dev0 MESI; dev1 plain
	mesiDev, dnDev, reader := h.devs[0], h.devs[1], h.devs[2]
	mesiDev.req(proto.ReqOData, L0, 0b1, nil)
	h.quiesce()
	dnDev.req(proto.ReqO, L0, 0b10, nil)
	h.quiesce()
	d := mesiDev.data[L0]
	d[0] = 10
	mesiDev.data[L0] = d
	d = dnDev.data[L0]
	d[1] = 20
	dnDev.data[L0] = d

	// Make the reader a MESI device so option 1 triggers... the policy
	// keys on the *owners*, so any reader works; use dev2.
	id := reader.req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	var total memaddr.WordMask
	var w0, w1 uint32
	for _, m := range reader.rspOf(id) {
		if m.Type != proto.RspS {
			t.Fatalf("non-RspS response %v", m.Type)
		}
		total |= m.Mask
		if m.Mask.Has(0) {
			w0 = m.Data[0]
		}
		if m.Mask.Has(1) {
			w1 = m.Data[1]
		}
	}
	if total != memaddr.FullMask {
		t.Fatalf("coverage %#x", total)
	}
	if w0 != 10 || w1 != 20 {
		t.Fatalf("data %d/%d, want 10/20", w0, w1)
	}
	st := h.line(L0)
	if !st.shared || st.ownedMask != 0 {
		t.Fatalf("post state shared=%v owned=%#x", st.shared, st.ownedMask)
	}
	// The MESI owner saw ReqS; the other owner saw RvkO.
	sawReqS, sawRvk := false, false
	for _, m := range mesiDev.recv {
		if m.Type == proto.ReqS {
			sawReqS = true
		}
	}
	for _, m := range dnDev.recv {
		if m.Type == proto.RvkO {
			sawRvk = true
		}
	}
	if !sawReqS || !sawRvk {
		t.Fatalf("probe types wrong: ReqS=%v RvkO=%v", sawReqS, sawRvk)
	}
}

func TestRvkOOnLLCEvictionWithMultipleOwners(t *testing.T) {
	h := newHarness(t, 3)
	conflict := func(i uint64) memaddr.LineAddr { return memaddr.LineAddr(i * 32 * 64) }
	h.devs[0].req(proto.ReqO, conflict(0), 0b0011, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqO, conflict(0), 0b1100, nil)
	h.quiesce()
	d := h.devs[0].data[conflict(0)]
	d[0], d[1] = 1, 2
	h.devs[0].data[conflict(0)] = d
	d = h.devs[1].data[conflict(0)]
	d[2], d[3] = 3, 4
	h.devs[1].data[conflict(0)] = d

	for i := uint64(1); i <= 8; i++ {
		h.devs[2].req(proto.ReqV, conflict(i), memaddr.FullMask, nil)
		h.quiesce()
	}
	if h.devs[0].owned[conflict(0)] != 0 || h.devs[1].owned[conflict(0)] != 0 {
		t.Fatal("eviction did not revoke both owners")
	}
	got := h.mem.Peek(conflict(0))
	if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("multi-owner eviction lost data: %v", got[:4])
	}
}

func TestWriteToFetchingLineQueues(t *testing.T) {
	h := newHarness(t, 2)
	// Two requests race on a cold line: both must be served after the
	// single memory fetch, in order.
	id1 := h.devs[0].req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.Operand = 5
	})
	id2 := h.devs[1].req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.Operand = 7
	})
	h.quiesce()
	r1, r2 := h.devs[0].rspOf(id1), h.devs[1].rspOf(id2)
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatal("atomics lost during fetch")
	}
	if r1[0].Data[0] != 0 || r2[0].Data[0] != 5 {
		t.Fatalf("fetch-queued atomics misordered: %d, %d", r1[0].Data[0], r2[0].Data[0])
	}
	if h.st.Get("llc.miss") != 1 {
		t.Fatalf("misses = %d, want 1 (second request queued)", h.st.Get("llc.miss"))
	}
}

func TestReqVRetryThenEscalationForcedStarvation(t *testing.T) {
	// A device that always Nacks models an owner whose ownership keeps
	// moving (§III-C3). The LLC still believes it owns the word, so plain
	// retries starve; the requestor's escape is escalation, which the
	// harness device cannot perform — so here we verify the LLC forwards
	// each retry and the requestor escalates exactly once via ReqWT+data
	// (observed at the LLC as a performed update).
	h := newHarness(t, 2)
	owner, reader := h.devs[0], h.devs[1]
	owner.req(proto.ReqO, L0, 0b1, func(m *proto.Message) { m.HasData = true })
	h.quiesce()
	owner.nackReqV = true

	// First try + one retry, both Nacked.
	id := reader.req(proto.ReqV, L0, 0b1, nil)
	h.quiesce()
	nacks := 0
	for _, m := range reader.rspOf(id) {
		if m.Type == proto.NackV {
			nacks++
		}
	}
	if nacks == 0 {
		t.Fatal("no Nack observed")
	}
	// Escalate by hand (the real L1s do this automatically — covered by
	// their own tests): a ReqWT+data read is globally ordered and revokes.
	id2 := reader.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicRead
	})
	h.quiesce()
	r := reader.rspOf(id2)
	if len(r) != 1 || r[0].Type != proto.RspWTData {
		t.Fatalf("escalation failed: %v", r)
	}
	if h.line(L0).ownedMask != 0 {
		t.Fatal("escalation did not revoke the racing owner")
	}
}

func TestLLCAtomicMinAndExchange(t *testing.T) {
	h := newHarness(t, 1)
	d := h.devs[0]
	d.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicExchange
		m.Operand = 50
	})
	h.quiesce()
	id := d.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicMin
		m.Operand = 30
	})
	h.quiesce()
	if r := d.rspOf(id); r[0].Data[0] != 50 {
		t.Fatalf("min returned %d", r[0].Data[0])
	}
	if h.line(L0).data[0] != 30 {
		t.Fatalf("min result %d", h.line(L0).data[0])
	}
	id2 := d.req(proto.ReqWTData, L0, 0b1, func(m *proto.Message) {
		m.Atomic = proto.AtomicMin
		m.Operand = 99
	})
	h.quiesce()
	if r := d.rspOf(id2); r[0].Data[0] != 30 || h.line(L0).data[0] != 30 {
		t.Fatal("min overwrote a smaller value")
	}
}

func TestMultiWordAtomicUpdate(t *testing.T) {
	// A multi-word ReqWT+data applies the operation per word and returns
	// all pre-update values.
	h := newHarness(t, 1)
	d := h.devs[0]
	d.req(proto.ReqWT, L0, 0b11, func(m *proto.Message) {
		m.HasData = true
		m.Data[0], m.Data[1] = 10, 20
	})
	h.quiesce()
	id := d.req(proto.ReqWTData, L0, 0b11, func(m *proto.Message) {
		m.Atomic = proto.AtomicFetchAdd
		m.HasData = true
		m.Data[0], m.Data[1] = 1, 2
	})
	h.quiesce()
	r := d.rspOf(id)
	if len(r) != 1 || r[0].Data[0] != 10 || r[0].Data[1] != 20 {
		t.Fatalf("pre-update values %v", r[0].Data[:2])
	}
	st := h.line(L0)
	if st.data[0] != 11 || st.data[1] != 22 {
		t.Fatalf("post state %v", st.data[:2])
	}
}
