package core

import (
	"strings"
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// TestCheckEveryTransitionDetectsCorruptedOwner corrupts an owner entry in
// place after a legitimate ownership grant and asserts the per-transition
// audit catches it on the very next LLC state change (no quiescent audit
// needed).
func TestCheckEveryTransitionDetectsCorruptedOwner(t *testing.T) {
	h := newHarness(t, 2)
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	h.devs[0].req(proto.ReqO, L0, 0b1, nil)
	h.run()
	if len(h.chk.Violations) != 0 {
		t.Fatalf("healthy run recorded violations: %v", h.chk.Violations)
	}

	// Corrupt the owner record: word 0 stays marked owned, but the owner
	// index now points at a device that does not exist.
	e := h.llc.array.Peek(L0)
	if e == nil || !e.State.ownedMask.Has(0) {
		t.Fatal("setup failed: word 0 of L0 is not owned")
	}
	e.State.owner[0] = 5

	// Any transition on the line must now trip the audit. Request an
	// unowned word so the handler itself never dereferences the bad index.
	h.devs[1].req(proto.ReqV, L0, 0b10, nil)
	h.run()

	if len(h.chk.Violations) == 0 {
		t.Fatal("per-transition audit missed the corrupted owner entry")
	}
	if !strings.Contains(h.chk.Violations[0], "bad owner") {
		t.Fatalf("unexpected violation: %q", h.chk.Violations[0])
	}
}

// TestCheckEveryTransitionDetectsSharerCorruption corrupts the sharer set
// with a bit beyond the registered devices — an invariant only the deep
// CheckTransition audit (not CheckLine) verifies.
func TestCheckEveryTransitionDetectsSharerCorruption(t *testing.T) {
	h := newHarness(t, 2, 0, 1) // both devices MESI so ReqS registers sharers
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	// First ReqS on a cold line grants ownership (option 3); the second,
	// hitting MESI-owned words, revokes and installs Shared (option 1).
	h.devs[0].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	e := h.llc.array.Peek(L0)
	if e == nil || !e.State.shared {
		t.Fatal("setup failed: L0 is not Shared")
	}
	e.State.sharers |= 1 << 7 // only 2 devices are registered

	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	if len(h.chk.Violations) == 0 {
		t.Fatal("per-transition audit missed the out-of-range sharer bit")
	}
	if !strings.Contains(h.chk.Violations[0], "registered devices") {
		t.Fatalf("unexpected violation: %q", h.chk.Violations[0])
	}
	if h.st.Get("check.transition") == 0 {
		t.Fatal("check.transition counter never incremented")
	}
}

// TestCheckEveryTransitionCleanRun drives a mixed request sequence with the
// deep audit armed and asserts a healthy system never trips it.
func TestCheckEveryTransitionCleanRun(t *testing.T) {
	h := newHarness(t, 2)
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	h.devs[0].req(proto.ReqO, L0, 0b11, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqWT, L0, 0b100, func(m *proto.Message) {
		m.HasData = true
		m.Data[2] = 7
	})
	h.quiesce()

	if len(h.chk.Violations) != 0 {
		t.Fatalf("healthy run recorded violations: %v", h.chk.Violations)
	}
	if h.st.Get("check.transition") == 0 {
		t.Fatal("check.transition counter never incremented")
	}
}
