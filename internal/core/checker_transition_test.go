package core

import (
	"strings"
	"testing"

	"spandex/internal/memaddr"
	"spandex/internal/proto"
)

// TestCheckEveryTransitionDetectsCorruptedOwner corrupts an owner entry in
// place after a legitimate ownership grant and asserts the per-transition
// audit catches it on the very next LLC state change (no quiescent audit
// needed).
func TestCheckEveryTransitionDetectsCorruptedOwner(t *testing.T) {
	h := newHarness(t, 2)
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	h.devs[0].req(proto.ReqO, L0, 0b1, nil)
	h.run()
	if len(h.chk.Violations) != 0 {
		t.Fatalf("healthy run recorded violations: %v", h.chk.Violations)
	}

	// Corrupt the owner record: word 0 stays marked owned, but the owner
	// index now points at a device that does not exist.
	e := h.llc.array.Peek(L0)
	if e == nil || !e.State.ownedMask.Has(0) {
		t.Fatal("setup failed: word 0 of L0 is not owned")
	}
	e.State.owner[0] = 5

	// Any transition on the line must now trip the audit. Request an
	// unowned word so the handler itself never dereferences the bad index.
	h.devs[1].req(proto.ReqV, L0, 0b10, nil)
	h.run()

	if len(h.chk.Violations) == 0 {
		t.Fatal("per-transition audit missed the corrupted owner entry")
	}
	if !strings.Contains(h.chk.Violations[0].Text, "bad owner") {
		t.Fatalf("unexpected violation: %q", h.chk.Violations[0])
	}

	// The violation must carry standalone-reproduction context: the cycle,
	// the line, and the (state, message) pair whose processing tripped it.
	v := h.chk.Violations[0]
	if v.Line != L0 {
		t.Errorf("violation line = %#x, want %#x", uint64(v.Line), uint64(L0))
	}
	if v.Msg != "ReqV" {
		t.Errorf("violation msg = %q, want ReqV", v.Msg)
	}
	if v.State != "O" {
		t.Errorf("violation state = %q, want O (word 0 owned)", v.State)
	}
	if v.Cycle == 0 {
		t.Error("violation cycle not stamped")
	}
	for _, part := range []string{"cycle=", "line=", "state=O", "msg=ReqV", "bad owner"} {
		if !strings.Contains(v.String(), part) {
			t.Errorf("violation String() %q missing %q", v.String(), part)
		}
	}
}

// TestViolationCap asserts Violations cannot grow unboundedly: a corrupted
// run that trips the checker on every transition keeps only the first
// MaxViolations entries (DefaultMaxViolations when unset) and counts the
// rest in Dropped.
func TestViolationCap(t *testing.T) {
	c := NewChecker()
	c.Collect = true
	c.MaxViolations = 5
	for i := 0; i < 22; i++ {
		c.fail("violation %d", i)
	}
	if len(c.Violations) != 5 {
		t.Fatalf("len(Violations) = %d, want cap 5", len(c.Violations))
	}
	if c.Dropped != 17 {
		t.Fatalf("Dropped = %d, want 17", c.Dropped)
	}
	if c.Violations[0].Text != "violation 0" {
		t.Fatalf("cap must keep the earliest violations, got %q first", c.Violations[0].Text)
	}

	d := NewChecker()
	d.Collect = true
	for i := 0; i < DefaultMaxViolations+3; i++ {
		d.fail("v")
	}
	if len(d.Violations) != DefaultMaxViolations || d.Dropped != 3 {
		t.Fatalf("default cap: len=%d dropped=%d, want %d and 3",
			len(d.Violations), d.Dropped, DefaultMaxViolations)
	}
}

// TestCheckEveryTransitionDetectsSharerCorruption corrupts the sharer set
// with a bit beyond the registered devices — an invariant only the deep
// CheckTransition audit (not CheckLine) verifies.
func TestCheckEveryTransitionDetectsSharerCorruption(t *testing.T) {
	h := newHarness(t, 2, 0, 1) // both devices MESI so ReqS registers sharers
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	// First ReqS on a cold line grants ownership (option 3); the second,
	// hitting MESI-owned words, revokes and installs Shared (option 1).
	h.devs[0].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	e := h.llc.array.Peek(L0)
	if e == nil || !e.State.shared {
		t.Fatal("setup failed: L0 is not Shared")
	}
	e.State.sharers |= 1 << 7 // only 2 devices are registered

	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()

	if len(h.chk.Violations) == 0 {
		t.Fatal("per-transition audit missed the out-of-range sharer bit")
	}
	if !strings.Contains(h.chk.Violations[0].Text, "registered devices") {
		t.Fatalf("unexpected violation: %q", h.chk.Violations[0])
	}
	if h.st.Get("check.transition") == 0 {
		t.Fatal("check.transition counter never incremented")
	}
}

// TestCheckEveryTransitionCleanRun drives a mixed request sequence with the
// deep audit armed and asserts a healthy system never trips it.
func TestCheckEveryTransitionCleanRun(t *testing.T) {
	h := newHarness(t, 2)
	h.chk.Collect = true
	h.chk.CheckEveryTransition = true

	h.devs[0].req(proto.ReqO, L0, 0b11, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqS, L0, memaddr.FullMask, nil)
	h.quiesce()
	h.devs[1].req(proto.ReqWT, L0, 0b100, func(m *proto.Message) {
		m.HasData = true
		m.Data[2] = 7
	})
	h.quiesce()

	if len(h.chk.Violations) != 0 {
		t.Fatalf("healthy run recorded violations: %v", h.chk.Violations)
	}
	if h.st.Get("check.transition") == 0 {
		t.Fatal("check.transition counter never incremented")
	}
}
