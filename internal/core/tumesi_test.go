package core_test

import (
	"testing"

	"spandex/internal/core"
	"spandex/internal/denovo"
	"spandex/internal/device"
	"spandex/internal/dram"
	"spandex/internal/gpucoh"
	"spandex/internal/memaddr"
	"spandex/internal/mesi"
	"spandex/internal/noc"
	"spandex/internal/proto"
	"spandex/internal/sim"
	"spandex/internal/stats"
)

// srig builds a flat Spandex system with MESI CPUs (behind MESITUs) plus
// DeNovo and GPU-coherence devices (behind PassTUs) — the SM*/SD* shapes.
type srig struct {
	t    *testing.T
	eng  *sim.Engine
	st   *stats.Stats
	net  *noc.Network
	llc  *core.LLC
	mem  *dram.Memory
	chk  *core.Checker
	mesi []*mesi.L1
	dn   []*denovo.L1
	gpu  []*gpucoh.L1
}

func newSRig(t *testing.T, nMESI, nDN, nGPU int) *srig {
	r := &srig{t: t, eng: sim.New(), st: stats.New()}
	n := nMESI + nDN + nGPU
	r.net = noc.New(r.eng, r.st, noc.DefaultConfig(), n+2)
	llcID, memID := proto.NodeID(n), proto.NodeID(n+1)
	r.llc = core.NewLLC(llcID, memID, r.eng, r.net, r.st,
		core.Config{SizeBytes: 64 * 1024, Ways: 8, AccessLatency: 12 * sim.CPUCycle})
	r.mem = dram.New(memID, r.eng, r.net, 80*sim.CPUCycle)
	r.chk = core.NewChecker()
	r.llc.SetChecker(r.chk)
	id := proto.NodeID(0)
	for i := 0; i < nMESI; i++ {
		tu := core.NewMESITU(id, r.eng, r.net, r.st, llcID, sim.CPUCycle)
		l1 := mesi.New(id, r.eng, tu, r.st, mesi.DefaultConfig(llcID))
		tu.Bind(l1)
		r.llc.RegisterDevice(id, true)
		r.chk.AttachDevice(id, tu)
		r.mesi = append(r.mesi, l1)
		id++
	}
	for i := 0; i < nDN; i++ {
		tu := core.NewPassTU(id, r.eng, r.net, sim.CPUCycle)
		l1 := denovo.New(id, r.eng, tu, r.st, denovo.DefaultConfig(llcID, false))
		tu.Bind(l1)
		r.llc.RegisterDevice(id, false)
		r.chk.AttachDevice(id, l1)
		r.dn = append(r.dn, l1)
		id++
	}
	for i := 0; i < nGPU; i++ {
		tu := core.NewPassTU(id, r.eng, r.net, sim.GPUCycle)
		l1 := gpucoh.New(id, r.eng, tu, r.st, gpucoh.DefaultConfig(llcID))
		tu.Bind(l1)
		r.llc.RegisterDevice(id, false)
		r.chk.AttachDevice(id, l1)
		r.gpu = append(r.gpu, l1)
		id++
	}
	return r
}

func (r *srig) run() {
	if !r.eng.RunUntil(1 << 42) {
		r.t.Fatal("srig: did not drain")
	}
	if err := r.chk.CheckQuiescent(r.llc); err != nil {
		r.t.Fatal(err)
	}
}

func (r *srig) access(l1 device.L1Cache, op device.Op) uint32 {
	var got uint32
	ok := false
	for tries := 0; ; tries++ {
		if l1.Access(op, func(v uint32) { got = v; ok = true }) {
			break
		}
		if !r.eng.Step() || tries > 1<<20 {
			r.t.Fatal("access rejected forever")
		}
	}
	r.run()
	if !ok {
		r.t.Fatalf("%v never completed", op.Kind)
	}
	return got
}

func (r *srig) load(l1 device.L1Cache, a memaddr.Addr) uint32 {
	return r.access(l1, device.Op{Kind: device.OpLoad, Addr: a})
}

// store buffers a write and flushes it to global visibility.
func (r *srig) store(l1 device.L1Cache, a memaddr.Addr, v uint32) {
	r.access(l1, device.Op{Kind: device.OpStore, Addr: a, Value: v})
	l1.Flush(func() {})
	r.run()
}
func (r *srig) rmw(l1 device.L1Cache, a memaddr.Addr, k proto.AtomicKind, v uint32) uint32 {
	return r.access(l1, device.Op{Kind: device.OpAtomic, Addr: a, Atomic: k, Value: v})
}

func TestMESIUnderSpandexBasics(t *testing.T) {
	r := newSRig(t, 2, 0, 0)
	var init memaddr.LineData
	init[0] = 5
	r.mem.Poke(0x1000, init)

	// First read: ReqS answered via option 3 → Exclusive grant.
	if v := r.load(r.mesi[0], 0x1000); v != 5 {
		t.Fatalf("v = %d", v)
	}
	if s := r.mesi[0].State(0x1000); s != mesi.E {
		t.Fatalf("state = %v, want E", s)
	}
	// Second reader: option 1 — first owner downgrades to S.
	if v := r.load(r.mesi[1], 0x1000); v != 5 {
		t.Fatalf("v = %d", v)
	}
	if s := r.mesi[0].State(0x1000); s != mesi.S {
		t.Fatalf("owner state = %v, want S", s)
	}
	if s := r.mesi[1].State(0x1000); s != mesi.S {
		t.Fatalf("reader state = %v, want S", s)
	}
	// Writer invalidates both sharers.
	r.store(r.mesi[0], 0x1000, 9)
	if s := r.mesi[1].State(0x1000); s != mesi.I {
		t.Fatalf("sharer = %v, want I", s)
	}
	if v := r.load(r.mesi[1], 0x1000); v != 9 {
		t.Fatalf("reload = %d", v)
	}
}

func TestMESIWriteMigrationUnderSpandex(t *testing.T) {
	r := newSRig(t, 2, 0, 0)
	r.store(r.mesi[0], 0x2000, 1)
	r.store(r.mesi[1], 0x2000, 2)
	if s := r.mesi[0].State(0x2000); s != mesi.I {
		t.Fatalf("old owner = %v", s)
	}
	if v := r.load(r.mesi[0], 0x2000); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestGPUWriteThroughToMESIOwnedLine(t *testing.T) {
	// Paper Fig. 1d end to end: GPU word write to a MESI-owned line. The
	// MESI cache invalidates, acks the GPU directly, and writes back the
	// other 15 words.
	r := newSRig(t, 1, 0, 1)
	cpu, gpu := r.mesi[0], r.gpu[0]
	for i := 0; i < 16; i++ {
		r.store(cpu, memaddr.Addr(0x3000+i*4), uint32(100+i))
	}
	r.store(gpu, 0x3008, 7)
	r.run()
	if s := cpu.State(0x3000); s != mesi.I {
		t.Fatalf("cpu state = %v, want I", s)
	}
	// All 16 words must be recoverable: 15 from the MESI write-back, one
	// from the GPU write.
	for i := 0; i < 16; i++ {
		want := uint32(100 + i)
		if i == 2 {
			want = 7
		}
		if v := r.load(r.gpu[0], memaddr.Addr(0x3000+i*4)); v != want {
			t.Fatalf("word %d = %d, want %d", i, v, want)
		}
	}
}

func TestDeNovoWordOwnershipInsideMESILine(t *testing.T) {
	// False-sharing avoidance: DeNovo owns word 0; MESI writes the line.
	r := newSRig(t, 1, 1, 0)
	cpu, dn := r.mesi[0], r.dn[0]
	r.store(dn, 0x4000, 11)
	r.store(cpu, 0x4004, 22)
	r.run()
	// The MESI GetM (ReqO+data) must have revoked DeNovo's word.
	if dn.ProbeOwned()[0x4000] != 0 {
		t.Fatal("DeNovo still owns after MESI ReqO+data")
	}
	if v := r.load(r.dn[0], 0x4000); v != 11 {
		t.Fatalf("word0 = %d", v)
	}
	if v := r.load(r.dn[0], 0x4004); v != 22 {
		t.Fatalf("word1 = %d", v)
	}
}

func TestMESIReadsDeNovoOwnedWord(t *testing.T) {
	r := newSRig(t, 1, 1, 0)
	cpu, dn := r.mesi[0], r.dn[0]
	r.store(dn, 0x5000, 33)
	// CPU ReqS: option 1 does not apply (owner is not MESI) → option 3
	// with a forwarded ReqO+data to the DeNovo owner.
	if v := r.load(cpu, 0x5000); v != 33 {
		t.Fatalf("v = %d", v)
	}
	if s := cpu.State(0x5000); s != mesi.E {
		t.Fatalf("cpu state = %v, want E (option 3)", s)
	}
	if dn.ProbeOwned()[0x5000] != 0 {
		t.Fatal("DeNovo kept ownership")
	}
}

func TestAtomicAcrossThreeProtocols(t *testing.T) {
	r := newSRig(t, 1, 1, 1)
	devs := []device.L1Cache{r.mesi[0], r.dn[0], r.gpu[0]}
	for i := 0; i < 9; i++ {
		who := devs[i%3]
		if old := r.rmw(who, 0x6000, proto.AtomicFetchAdd, 1); old != uint32(i) {
			t.Fatalf("iter %d: old = %d", i, old)
		}
	}
	if v := r.load(r.gpu[0], 0x6000); v != 9 {
		t.Fatalf("final = %d", v)
	}
}

func TestMESIEvictionUnderSpandex(t *testing.T) {
	r := newSRig(t, 1, 0, 0)
	cpu := r.mesi[0]
	conflict := func(i int) memaddr.Addr { return memaddr.Addr(0x100000 + i*64*64) }
	for i := 0; i < 12; i++ {
		r.store(cpu, conflict(i), uint32(i+1))
	}
	r.run()
	for i := 0; i < 12; i++ {
		if v := r.load(cpu, conflict(i)); v != uint32(i+1) {
			t.Fatalf("line %d = %d", i, v)
		}
	}
}

func TestGPUReqVToMESIOwnerServedWithoutDowngrade(t *testing.T) {
	r := newSRig(t, 1, 0, 1)
	cpu, gpu := r.mesi[0], r.gpu[0]
	r.store(cpu, 0x7000, 44)
	if v := r.load(gpu, 0x7000); v != 44 {
		t.Fatalf("v = %d", v)
	}
	// ReqV affects no coherence state: the CPU keeps M.
	if s := cpu.State(0x7000); s != mesi.M {
		t.Fatalf("cpu state = %v, want M", s)
	}
}

func TestMixedStressThreeProtocols(t *testing.T) {
	r := newSRig(t, 2, 2, 2)
	devs := []device.L1Cache{r.mesi[0], r.mesi[1], r.dn[0], r.dn[1], r.gpu[0], r.gpu[1]}
	total := 0
	for round := 0; round < 6; round++ {
		for di, d := range devs {
			for !d.Access(device.Op{Kind: device.OpAtomic, Addr: 0x8000,
				Atomic: proto.AtomicFetchAdd, Value: 1}, func(uint32) {}) {
				if !r.eng.Step() {
					t.Fatal("stuck")
				}
			}
			total++
			for !d.Access(device.Op{Kind: device.OpStore,
				Addr: memaddr.Addr(0x9000 + di*4), Value: uint32(round + 1)}, func(uint32) {}) {
				if !r.eng.Step() {
					t.Fatal("stuck")
				}
			}
			d.Access(device.Op{Kind: device.OpLoad,
				Addr: memaddr.Addr(0x8040)}, func(uint32) {})
		}
		for i := 0; i < 100; i++ {
			r.eng.Step()
		}
	}
	for _, d := range devs {
		d.Flush(func() {})
	}
	r.run()
	if v := r.load(r.dn[0], 0x8000); v != uint32(total) {
		t.Fatalf("counter = %d, want %d", v, total)
	}
	for di := range devs {
		if v := r.load(r.gpu[0], memaddr.Addr(0x9000+di*4)); v != 6 {
			t.Fatalf("slot %d = %d", di, v)
		}
	}
}
